// GNN inference-kernel bench: gates the two claims the batched
// message-passing path makes (DESIGN.md §14):
//
//   1. identity: predict_graphs() over a batch is bit-identical to calling
//      the scalar per-graph predict() — checked at batch 64 and at a few
//      ragged shapes (1, 7, the full corpus);
//   2. batch: predict_graphs() over 64 graphs (contiguous chunks fanned out
//      across the thread pool, one engine per chunk) is >= 2x faster than
//      64 scalar calls.  Both paths share the same matmul kernel, so the
//      win comes from parallelism; the throughput gate is enforced only
//      when the runner has >= 4 hardware threads (bench_spec precedent) and
//      is report-only on smaller boxes, where bit-identity still gates.
//
// Emits BENCH_gnn.json; run with --smoke for a CI-sized workload.  Timings
// are min-of-reps to shed scheduler noise.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "aig/aig.hpp"
#include "flow/datagen.hpp"
#include "gen/designs.hpp"
#include "ml/gnn.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace aigml;

namespace {

std::vector<aig::Aig> make_corpus(const std::string& design, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<aig::Aig> pool{gen::build_design(design).cleanup()};
  std::unordered_set<std::uint64_t> seen{pool.front().structural_hash()};
  int attempts = 0;
  while (static_cast<int>(pool.size()) < count && attempts < count * 20) {
    ++attempts;
    const std::size_t pick = std::max(rng.next_below(pool.size()), rng.next_below(pool.size()));
    aig::Aig candidate = flow::random_variant_step(pool[pick], rng);
    if (!seen.insert(candidate.structural_hash()).second) continue;
    pool.push_back(std::move(candidate));
  }
  return pool;
}

template <typename Fn>
double min_of_reps(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    fn();
    best = rep == 0 ? t.elapsed_s() : std::min(best, t.elapsed_s());
  }
  return best;
}

bool identical_at_shape(const ml::GnnModel& model, const std::vector<const aig::Aig*>& graphs,
                        std::size_t n) {
  const std::span<const aig::Aig* const> batch(graphs.data(), n);
  const std::vector<double> batched = model.predict_graphs(batch);
  for (std::size_t i = 0; i < n; ++i) {
    if (batched[i] != model.predict(*graphs[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_gnn.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  // A serving-shaped workload: 64+ distinct structural variants of one
  // design, weights from a short real fit so the activations are not all
  // dead ReLUs.
  const int corpus_size = smoke ? 72 : 200;
  std::printf("gnn bench: building %d structural variants of EX00...\n", corpus_size);
  const std::vector<aig::Aig> corpus = make_corpus("EX00", corpus_size, 0xC4);
  std::vector<const aig::Aig*> graphs;
  std::size_t total_nodes = 0;
  for (const aig::Aig& g : corpus) {
    graphs.push_back(&g);
    total_nodes += g.num_nodes();
  }
  std::vector<double> labels;
  for (const aig::Aig& g : corpus) {
    labels.push_back(static_cast<double>(g.num_ands()));  // any finite target
  }
  ml::GnnParams params;
  params.hidden = 16;
  params.layers = 2;
  params.epochs = smoke ? 4 : 12;
  ml::GnnTrainLog log;
  const ml::GnnModel model = ml::GnnModel::train(graphs, labels, params, &log);
  std::printf("gnn bench: hidden %d, layers %d, %zu graphs (%zu nodes), trained %.2f s\n",
              params.hidden, params.layers, graphs.size(), total_nodes, log.train_seconds);

  // ---- identity: batched == scalar, bit for bit ------------------------------
  const std::size_t kGateBatch = 64;
  bool identical = identical_at_shape(model, graphs, 1) &&
                   identical_at_shape(model, graphs, std::min<std::size_t>(7, graphs.size())) &&
                   identical_at_shape(model, graphs, std::min(kGateBatch, graphs.size())) &&
                   identical_at_shape(model, graphs, graphs.size());
  std::printf("identity: batched vs scalar at shapes {1, 7, %zu, %zu} -> %s\n",
              std::min(kGateBatch, graphs.size()), graphs.size(),
              identical ? "BIT-IDENTICAL" : "MISMATCH");

  // ---- batch: one concatenated pass vs 64 scalar calls -----------------------
  const std::size_t bench_n = std::min(kGateBatch, graphs.size());
  const std::span<const aig::Aig* const> bench_batch(graphs.data(), bench_n);
  const int reps = smoke ? 5 : 10;
  const double batched_s =
      min_of_reps(reps, [&] { (void)model.predict_graphs(bench_batch); });
  const double scalar_s = min_of_reps(reps, [&] {
    double sink = 0.0;
    for (std::size_t i = 0; i < bench_n; ++i) sink += model.predict(*graphs[i]);
    if (!std::isfinite(sink)) std::abort();  // keep the loop observable
  });
  const double speedup = batched_s > 0.0 ? scalar_s / batched_s : 0.0;
  std::printf("batch: scalar %.2f ms, batched %.2f ms over %zu graphs -> %.2fx "
              "(%.1f us/graph batched)\n",
              1e3 * scalar_s, 1e3 * batched_s, bench_n, speedup,
              1e6 * batched_s / static_cast<double>(bench_n));

  // The batched win is parallel fan-out over the same matmul kernel, so the
  // throughput gate only binds where parallelism exists (same policy as
  // bench_spec: enforce at >= 4 hardware threads, report-only below).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = default_num_threads();
  const bool enforce_batch = hw >= 4 && threads >= 4;
  const bool batch_ok = !enforce_batch || speedup >= 2.0;
  std::printf(
      "gate: identity %s, batch %.2fx (need >= 2x at >= 4 hw threads; have %d hw, %d pool) "
      "%s -> %s\n",
      identical ? "PASS" : "FAIL", speedup, hw, threads,
              enforce_batch ? (batch_ok ? "PASS" : "FAIL") : "REPORT-ONLY",
              identical && batch_ok ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"gnn\",\n  \"hidden\": " << params.hidden
      << ",\n  \"layers\": " << params.layers << ",\n  \"graphs\": " << graphs.size()
      << ",\n  \"total_nodes\": " << total_nodes << ",\n  \"batch\": " << bench_n
      << ",\n  \"train_s\": " << log.train_seconds
      << ",\n  \"scalar_predict_ms\": " << 1e3 * scalar_s
      << ",\n  \"batched_predict_ms\": " << 1e3 * batched_s
      << ",\n  \"batch_speedup\": " << speedup
      << ",\n  \"batched_us_per_graph\": " << 1e6 * batched_s / static_cast<double>(bench_n)
      << ",\n  \"threads\": " << threads
      << ",\n  \"batch_gate_enforced\": " << (enforce_batch ? "true" : "false")
      << ",\n  \"bit_identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return identical && batch_ok ? 0 : 1;
}
