// Incremental move-evaluation bench: runs the same SA workload twice — once
// with the incremental evaluation protocol (dirty-region AnalysisCache
// repair + delta feature extraction, DESIGN.md §8) and once through the
// from-scratch path — and gates on both halves of the PR contract:
//
//   1. the accepted-move trajectories are bit-identical, and
//   2. incremental per-eval time is >= 3x faster on the ML-guided workload.
//
// Emits BENCH_eval.json so the hot-path perf trajectory is tracked across
// PRs.  Run with --smoke for a CI-sized workload.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/designs.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"

using namespace aigml;

namespace {

ml::GbdtModel train_standin(const aig::Aig& base, bool area_label, int num_trees) {
  // Label quality is irrelevant to eval throughput; levels / AND counts of
  // script variants give the trees realistic structure to traverse.
  ml::Dataset data(features::feature_names());
  const auto& registry = transforms::script_registry();
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    const aig::Aig g = registry.apply(registry.random_index(rng), base);
    const double label = area_label ? static_cast<double>(g.num_ands())
                                    : static_cast<double>(aig::aig_level(g));
    data.append(features::extract(g), label, "bench");
  }
  ml::GbdtParams params;
  params.num_trees = num_trees;
  params.max_depth = 5;
  return ml::GbdtModel::train(data, params);
}

bool same_trajectory(const opt::OptResult& a, const opt::OptResult& b) {
  if (a.history.size() != b.history.size() || a.eval_count != b.eval_count) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].script_index != b.history[i].script_index ||
        a.history[i].delay != b.history[i].delay || a.history[i].area != b.history[i].area ||
        a.history[i].cost != b.history[i].cost ||
        a.history[i].accepted != b.history[i].accepted) {
      return false;
    }
  }
  return a.best_cost == b.best_cost && a.best.structural_hash() == b.best.structural_hash();
}

struct Leg {
  opt::OptResult result;
  double per_eval_us = 0.0;
  bool self_consistent = true;
};

// Runs the configuration twice and keeps the faster leg's timing (classic
// min-of-N to shed scheduler noise on shared CI runners); the two runs must
// themselves be bit-identical or the leg reports a mismatch.
template <typename MakeEvaluator>
Leg run_leg(const aig::Aig& g, const opt::SaParams& base_params, bool incremental,
            MakeEvaluator make_evaluator) {
  opt::SaParams params = base_params;
  params.incremental = incremental;
  Leg leg;
  for (int rep = 0; rep < 2; ++rep) {
    auto evaluator = make_evaluator();
    opt::OptResult result = opt::simulated_annealing(g, *evaluator, params);
    const double per_eval_us =
        result.eval_count > 0
            ? 1e6 * result.total_eval_seconds / static_cast<double>(result.eval_count)
            : 0.0;
    if (rep == 0) {
      leg.result = std::move(result);
      leg.per_eval_us = per_eval_us;
    } else {
      leg.self_consistent = same_trajectory(leg.result, result);
      leg.per_eval_us = std::min(leg.per_eval_us, per_eval_us);
    }
  }
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_eval.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  // EX54 is the largest generated design (~2.2k AND nodes) — the regime
  // where per-move analysis cost dominates and the paper's "cheap reward
  // calculation" claim is actually at stake.
  const char* design = "EX54";
  const aig::Aig g = gen::build_design(design);
  // The smoke size still has to reach the converged phase: repeat-heavy
  // late moves are where incremental evaluation pays, and they also push
  // the measured ratio far enough from the 3x gate that CI-runner noise
  // (sub-3.5x was observed at 150 iterations) cannot flake it.
  const int iterations = smoke ? 250 : 400;

  const ml::GbdtModel delay_model = train_standin(g, false, smoke ? 120 : 240);
  const ml::GbdtModel area_model = train_standin(g, true, smoke ? 120 : 240);

  opt::SaParams params;
  params.iterations = iterations;
  params.seed = 7;
  params.weight_delay = 1.0;
  params.weight_area = 0.5;

  std::printf("eval bench: design=%s (%zu ands), %d SA iterations, ml cost\n", design,
              g.num_ands(), iterations);

  // ML-guided legs (the gated workload).
  const auto make_ml = [&] { return std::make_unique<opt::MlCost>(delay_model, area_model); };
  const Leg ml_scratch = run_leg(g, params, /*incremental=*/false, make_ml);
  const Leg ml_inc = run_leg(g, params, /*incremental=*/true, make_ml);
  const bool ml_identical = same_trajectory(ml_scratch.result, ml_inc.result) &&
                            ml_scratch.self_consistent && ml_inc.self_consistent;
  const double ml_speedup =
      ml_inc.per_eval_us > 0 ? ml_scratch.per_eval_us / ml_inc.per_eval_us : 0.0;
  std::printf("ml  per-eval: from-scratch %.1f us, incremental %.1f us -> %.2fx (%s)\n",
              ml_scratch.per_eval_us, ml_inc.per_eval_us, ml_speedup,
              ml_identical ? "IDENTICAL" : "MISMATCH");

  // Proxy legs (informational: the proxy evaluator is already nearly free).
  const auto make_proxy = [] { return std::make_unique<opt::ProxyCost>(); };
  const Leg proxy_scratch = run_leg(g, params, /*incremental=*/false, make_proxy);
  const Leg proxy_inc = run_leg(g, params, /*incremental=*/true, make_proxy);
  const bool proxy_identical = same_trajectory(proxy_scratch.result, proxy_inc.result) &&
                               proxy_scratch.self_consistent && proxy_inc.self_consistent;
  const double proxy_speedup =
      proxy_inc.per_eval_us > 0 ? proxy_scratch.per_eval_us / proxy_inc.per_eval_us : 0.0;
  std::printf("proxy per-eval: from-scratch %.1f us, incremental %.1f us -> %.2fx (%s)\n",
              proxy_scratch.per_eval_us, proxy_inc.per_eval_us, proxy_speedup,
              proxy_identical ? "IDENTICAL" : "MISMATCH");

  const bool identical = ml_identical && proxy_identical;
  const bool fast_enough = ml_speedup >= 3.0;
  std::printf("gate: trajectories %s, ml per-eval speedup %.2fx (need >= 3x) -> %s\n",
              identical ? "identical" : "MISMATCH", ml_speedup,
              identical && fast_enough ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"eval\",\n  \"design\": \"" << design
      << "\",\n  \"ands\": " << g.num_ands() << ",\n  \"iterations\": " << iterations
      << ",\n  \"evals\": " << ml_inc.result.eval_count
      << ",\n  \"ml_per_eval_us_scratch\": " << ml_scratch.per_eval_us
      << ",\n  \"ml_per_eval_us_incremental\": " << ml_inc.per_eval_us
      << ",\n  \"ml_speedup_per_eval\": " << ml_speedup
      << ",\n  \"proxy_per_eval_us_scratch\": " << proxy_scratch.per_eval_us
      << ",\n  \"proxy_per_eval_us_incremental\": " << proxy_inc.per_eval_us
      << ",\n  \"proxy_speedup_per_eval\": " << proxy_speedup
      << ",\n  \"identical_trajectories\": " << (identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return identical && fast_enough ? 0 : 1;
}
