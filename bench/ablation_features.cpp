// Ablation (ours; DESIGN.md §5) — contribution of each Table II feature
// group to delay-prediction accuracy.
//
// Protocol: retrain the delay model with one feature group disabled (its
// columns zeroed, which makes them unsplittable constants) and measure the
// change in mean absolute %error on the unseen test designs.  Also reports
// the full model's gain-based feature importance.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "features/features.hpp"
#include "gen/designs.hpp"
#include "ml/gbdt.hpp"
#include "util/stats.hpp"

using namespace aigml;

namespace {

/// Copies a dataset with the given feature columns zeroed out.
ml::Dataset zero_columns(const ml::Dataset& src, const std::vector<int>& columns) {
  ml::Dataset out(src.feature_names());
  std::vector<double> row(src.num_features());
  for (std::size_t i = 0; i < src.num_rows(); ++i) {
    const auto r = src.row(i);
    std::copy(r.begin(), r.end(), row.begin());
    for (const int c : columns) row[static_cast<std::size_t>(c)] = 0.0;
    out.append(row, src.label(i), src.tag(i));
  }
  return out;
}

double test_error(const flow::ExperimentData& data, const ml::GbdtModel& model,
                  const std::vector<int>& zeroed) {
  RunningStats err;
  for (const auto& name : gen::test_designs()) {
    const auto& ds = data.per_design.at(name).delay;
    const ml::Dataset masked = zeroed.empty() ? ds : zero_columns(ds, zeroed);
    const auto pred = model.predict_all(masked);
    err.add(absolute_percent_error(pred, masked.labels()).mean_pct);
  }
  return err.mean();
}

}  // namespace

int main() {
  bench::print_header("Ablation: feature groups",
                      "drop-one-group retraining + gain importance of the full model");
  auto pipeline = bench::load_pipeline();
  ml::GbdtParams params = flow::default_gbdt_params();
  // Keep the ablation affordable: the relative deltas are stable with a
  // smaller ensemble.
  params.num_trees = std::min(params.num_trees, 250);

  const auto baseline_model = ml::GbdtModel::train(pipeline.data.delay_train, params);
  const double baseline_err = test_error(pipeline.data, baseline_model, {});
  std::printf("\nfull model (%d trees): test mean %%err = %.2f%%\n\n", params.num_trees,
              baseline_err);

  std::printf("%-30s %-16s %-12s\n", "group removed", "test mean %err", "delta");
  struct Row {
    std::string name;
    double err;
  };
  std::vector<Row> rows;
  for (const auto& group : features::feature_groups()) {
    const ml::Dataset masked_train = zero_columns(pipeline.data.delay_train, group.indices);
    const auto model = ml::GbdtModel::train(masked_train, params);
    const double err = test_error(pipeline.data, model, group.indices);
    rows.push_back({group.name, err});
    std::printf("%-30s %-16.2f %+.2f\n", group.name.c_str(), err, err - baseline_err);
  }

  std::printf("\n-- gain-based feature importance (full model) --\n");
  const auto importance = pipeline.models.delay.feature_importance();
  const auto& names = features::feature_names();
  std::vector<std::size_t> order(importance.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return importance[a] > importance[b]; });
  for (const std::size_t i : order) {
    if (importance[i] < 1e-4) continue;
    std::printf("  %-38s %6.2f%%\n", names[i].c_str(), importance[i] * 100.0);
  }

  double worst_delta = 0.0;
  std::string worst_group;
  for (const auto& row : rows) {
    if (row.err - baseline_err > worst_delta) {
      worst_delta = row.err - baseline_err;
      worst_group = row.name;
    }
  }
  std::printf("\n");
  char measured[200];
  std::snprintf(measured, sizeof measured,
                "most load-bearing group: '%s' (+%.2f pts of test error when removed)",
                worst_group.c_str(), worst_delta);
  bench::print_claim(
      "Table II groups each capture a distinct miscorrelation source (depth change, fanout "
      "load, path multiplicity)",
      measured);
  return 0;
}
