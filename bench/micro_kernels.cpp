// Microbenchmarks (google-benchmark) for the substrate kernels behind every
// experiment: cut enumeration, technology mapping, STA, feature extraction,
// GBDT inference, transforms, simulation, and equivalence checking.
//
// These quantify the per-iteration cost structure of the three flows (the
// raw material of Fig. 2 / Table IV) and expose regressions.

#include <benchmark/benchmark.h>

#include <map>

#include "aig/analysis.hpp"
#include "aig/cuts.hpp"
#include "aig/sim.hpp"
#include "features/features.hpp"
#include "flow/experiment.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "sta/sta.hpp"
#include "transforms/balance.hpp"
#include "transforms/resynth.hpp"

using namespace aigml;

namespace {

const aig::Aig& design(const std::string& name) {
  static std::map<std::string, aig::Aig> cache;
  auto it = cache.find(name);
  if (it == cache.end()) it = cache.emplace(name, gen::build_design(name)).first;
  return it->second;
}

void BM_CutEnumeration(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    aig::CutSets cuts(g, aig::CutParams{k, 8});
    benchmark::DoNotOptimize(cuts.cuts(static_cast<aig::NodeId>(g.num_nodes() - 1)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_ands()));
}
BENCHMARK(BM_CutEnumeration)->Arg(3)->Arg(4)->Arg(6);

void BM_Mapping(benchmark::State& state) {
  const aig::Aig& g = design(state.range(0) == 0 ? "EX68" : "EX02");
  const auto& lib = cell::mini_sky130();
  for (auto _ : state) {
    auto netlist = map::map_to_cells(g, lib);
    benchmark::DoNotOptimize(netlist.num_gates());
  }
}
BENCHMARK(BM_Mapping)->Arg(0)->Arg(1);

void BM_Sta(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  const auto& lib = cell::mini_sky130();
  const auto netlist = map::map_to_cells(g, lib);
  for (auto _ : state) {
    auto result = sta::run_sta(netlist, lib, {});
    benchmark::DoNotOptimize(result.max_delay_ps);
  }
}
BENCHMARK(BM_Sta);

void BM_MapPlusSta(benchmark::State& state) {
  // The ground-truth evaluation (one Fig. 2 / Table IV iteration's cost).
  const aig::Aig& g = design("EX02");
  const auto& lib = cell::mini_sky130();
  for (auto _ : state) {
    const auto netlist = map::map_to_cells(g, lib);
    const auto result = sta::run_sta(netlist, lib, {});
    benchmark::DoNotOptimize(result.max_delay_ps);
  }
}
BENCHMARK(BM_MapPlusSta);

void BM_FeatureExtraction(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  for (auto _ : state) {
    auto f = features::extract(g);
    benchmark::DoNotOptimize(f[0]);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_AnalysisCache(benchmark::State& state) {
  // The fused sweep feeding features, cost evaluators, and datagen.
  const aig::Aig& g = design("EX02");
  for (auto _ : state) {
    aig::AnalysisCache cache(g);
    benchmark::DoNotOptimize(cache.max_depth());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_AnalysisCache);

void BM_GbdtInference(benchmark::State& state) {
  // Model shape comparable to the repo-scale delay model.
  ml::Dataset train(features::feature_names());
  Rng rng(1);
  std::vector<double> row(features::kNumFeatures);
  for (int i = 0; i < 300; ++i) {
    for (auto& v : row) v = rng.next_double(0, 100);
    train.append(row, rng.next_double(500, 5000), "syn");
  }
  ml::GbdtParams p;
  p.num_trees = static_cast<int>(state.range(0));
  const auto model = ml::GbdtModel::train(train, p);
  const auto f = features::extract(design("EX02"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(f));
  }
}
BENCHMARK(BM_GbdtInference)->Arg(100)->Arg(600);

void BM_GbdtPredictAll(benchmark::State& state) {
  // Batched inference over the flattened SoA forest (dataset-accuracy path).
  ml::Dataset train(features::feature_names());
  Rng rng(4);
  std::vector<double> row(features::kNumFeatures);
  for (int i = 0; i < 300; ++i) {
    for (auto& v : row) v = rng.next_double(0, 100);
    train.append(row, rng.next_double(500, 5000), "syn");
  }
  ml::GbdtParams p;
  p.num_trees = 200;
  const auto model = ml::GbdtModel::train(train, p);
  for (auto _ : state) {
    auto preds = model.predict_all(train);
    benchmark::DoNotOptimize(preds[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(train.num_rows()));
}
BENCHMARK(BM_GbdtPredictAll);

void BM_MlEvaluation(benchmark::State& state) {
  // Features + inference: the ML flow's per-iteration evaluation cost.
  ml::Dataset train(features::feature_names());
  Rng rng(2);
  std::vector<double> row(features::kNumFeatures);
  for (int i = 0; i < 300; ++i) {
    for (auto& v : row) v = rng.next_double(0, 100);
    train.append(row, rng.next_double(500, 5000), "syn");
  }
  const auto model = ml::GbdtModel::train(train, flow::default_gbdt_params());
  const aig::Aig& g = design("EX02");
  for (auto _ : state) {
    const auto f = features::extract(g);
    benchmark::DoNotOptimize(model.predict(f));
  }
}
BENCHMARK(BM_MlEvaluation);

void BM_Balance(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  for (auto _ : state) {
    auto t = transforms::balance(g);
    benchmark::DoNotOptimize(t.num_ands());
  }
}
BENCHMARK(BM_Balance);

void BM_Rewrite(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  for (auto _ : state) {
    auto t = transforms::rewrite(g);
    benchmark::DoNotOptimize(t.num_ands());
  }
}
BENCHMARK(BM_Rewrite);

void BM_Refactor(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  for (auto _ : state) {
    auto t = transforms::refactor(g);
    benchmark::DoNotOptimize(t.num_ands());
  }
}
BENCHMARK(BM_Refactor);

void BM_Simulation64(benchmark::State& state) {
  const aig::Aig& g = design("EX02");
  Rng rng(3);
  std::vector<std::uint64_t> words(g.num_inputs());
  for (auto& w : words) w = rng.next();
  for (auto _ : state) {
    auto out = aig::simulate_words(g, words);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Simulation64);

void BM_EquivalenceCheck(benchmark::State& state) {
  const aig::Aig& g = design("EX68");
  const aig::Aig t = transforms::rewrite(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::equivalent(g, t));
  }
}
BENCHMARK(BM_EquivalenceCheck);

}  // namespace

BENCHMARK_MAIN();
