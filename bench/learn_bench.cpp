// Active-learning bench: runs the closed loop end to end on a real design —
// ground-truth-labeled base dataset, GBDT base models, an SA search guided
// by serve::LiveMlCost with the learn/ subsystem attached — and gates on
// the PR contract:
//
//   1. learn=0 stays bit-identical: a LiveMlCost over an untouched registry
//      reproduces the pinned MlCost trajectory exactly;
//   2. the loop actually closes: >= 1 retrain fires within the budget; and
//   3. it pays off: the refreshed model's error on the harvested states is
//      lower than the base model's error on the same states.
//
// Emits BENCH_learn.json so harvest yield, retrain count, and the error
// drop are tracked across PRs.  Run with --smoke for a CI-sized workload.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "celllib/library.hpp"
#include "flow/datagen.hpp"
#include "gen/designs.hpp"
#include "learn/loop.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"
#include "serve/live_cost.hpp"
#include "serve/registry.hpp"
#include "util/timer.hpp"

using namespace aigml;

namespace {

bool same_trajectory(const opt::OptResult& a, const opt::OptResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].script_index != b.history[i].script_index ||
        a.history[i].delay != b.history[i].delay || a.history[i].area != b.history[i].area ||
        a.history[i].accepted != b.history[i].accepted) {
      return false;
    }
  }
  return a.best_cost == b.best_cost;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_learn.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const char* design = "EX02";
  const aig::Aig g = gen::build_design(design);
  const cell::Library& lib = cell::mini_sky130();
  const int iterations = smoke ? 120 : 300;
  const int budget = smoke ? 32 : 80;

  // Ground-truth base dataset + models — the state of the world before the
  // loop exists: a predictor trained offline on the datagen distribution.
  flow::DataGenParams datagen;
  datagen.num_variants = smoke ? 48 : 120;
  datagen.seed = 0x1ea52;
  Timer prep_timer;
  const flow::GeneratedData base_data = flow::generate_dataset(g, design, lib, datagen);
  ml::GbdtParams gbdt;
  gbdt.num_trees = smoke ? 120 : 240;
  gbdt.max_depth = 5;
  const ml::GbdtModel base_delay = ml::GbdtModel::train(base_data.delay, gbdt);
  const ml::GbdtModel base_area = ml::GbdtModel::train(base_data.area, gbdt);
  const double prep_seconds = prep_timer.elapsed_s();
  std::printf("learn bench: design=%s (%zu ands), %zu base rows (%.1f s), %d SA iterations, "
              "budget %d\n",
              design, g.num_ands(), base_data.delay.num_rows(), prep_seconds, iterations,
              budget);

  opt::SaParams sa;
  sa.iterations = iterations;
  sa.seed = 11;
  const opt::SaStrategy strategy(sa);
  const opt::StopCondition stop{.max_iterations = iterations};

  // Gate 1: with the loop off, the live evaluator must be a bystander.
  serve::ModelRegistry frozen;
  frozen.install("delay", base_delay);
  frozen.install("area", base_area);
  opt::MlCost pinned(frozen.get("delay"), frozen.get("area"));
  serve::LiveMlCost live_off(frozen);
  Timer off_timer;
  const opt::OptResult plain = strategy.run(g, pinned, stop);
  const double plain_seconds = off_timer.elapsed_s();
  const opt::OptResult live_untouched = strategy.run(g, live_off, stop);
  const bool off_identical = same_trajectory(plain, live_untouched);
  std::printf("learn=0: live-vs-pinned trajectories %s (%.2f s/run)\n",
              off_identical ? "IDENTICAL" : "MISMATCH", plain_seconds);

  // Gate 2+3: the closed loop.
  serve::ModelRegistry registry;
  registry.install("delay", base_delay);
  registry.install("area", base_area);
  learn::LearnParams params;
  params.harvest.budget = budget;
  params.harvest.min_disagreement = 0.05;
  params.retrain.min_new_rows = std::max(4, budget / 4);
  params.retrain.extra_trees = smoke ? 40 : 80;
  learn::ActiveLearner learner(lib, registry, params);
  learner.set_base(base_data.delay, base_data.area);
  serve::LiveMlCost live(registry);
  Timer learn_timer;
  const opt::OptResult looped = strategy.run(g, live, stop, &learner);
  const double learn_seconds = learn_timer.elapsed_s();
  learn::LearnStats stats = learner.stats();
  stats.swaps_observed = live.swaps_observed();

  std::printf("learn=1: %zu/%zu harvested, %zu labeled, %zu retrains, %llu swaps (%.2f s, "
              "%.2fx the plain run)\n",
              stats.selected, stats.considered, stats.labeled, stats.retrains,
              static_cast<unsigned long long>(stats.swaps_observed), learn_seconds,
              plain_seconds > 0 ? learn_seconds / plain_seconds : 0.0);
  std::printf("error on harvested states: base %.2f%% -> refreshed %.2f%%\n",
              stats.base_error_pct, stats.final_error_pct);

  const bool retrained = stats.retrains >= 1;
  const bool improved = stats.final_error_pct < stats.base_error_pct;
  const bool pass = off_identical && retrained && improved;
  std::printf("gate: learn=0 %s, retrains %zu (need >= 1), error %.2f%% -> %.2f%% "
              "(need lower) -> %s\n",
              off_identical ? "identical" : "MISMATCH", stats.retrains, stats.base_error_pct,
              stats.final_error_pct, pass ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"learn\",\n  \"design\": \"" << design
      << "\",\n  \"ands\": " << g.num_ands() << ",\n  \"iterations\": " << iterations
      << ",\n  \"base_rows\": " << base_data.delay.num_rows()
      << ",\n  \"budget\": " << budget << ",\n  \"considered\": " << stats.considered
      << ",\n  \"harvested\": " << stats.selected << ",\n  \"labeled\": " << stats.labeled
      << ",\n  \"retrains\": " << stats.retrains << ",\n  \"swaps\": " << stats.swaps_observed
      << ",\n  \"base_error_pct\": " << stats.base_error_pct
      << ",\n  \"refreshed_error_pct\": " << stats.final_error_pct
      << ",\n  \"plain_best_cost\": " << plain.best_cost
      << ",\n  \"learn_best_cost\": " << looped.best_cost
      << ",\n  \"plain_seconds\": " << plain_seconds
      << ",\n  \"learn_seconds\": " << learn_seconds
      << ",\n  \"learn_off_identical\": " << (off_identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
