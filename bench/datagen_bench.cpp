// Datagen throughput bench: measures labeled variants/second of
// flow::generate_dataset across thread counts, checks the determinism
// contract (same seed => identical datasets at every thread count), and
// emits BENCH_datagen.json so the perf trajectory is tracked across PRs.
// Run with --smoke for a CI-sized workload.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "flow/datagen.hpp"
#include "gen/designs.hpp"
#include "util/parallel.hpp"

using namespace aigml;

namespace {

bool same_dataset(const ml::Dataset& a, const ml::Dataset& b) {
  if (a.num_rows() != b.num_rows() || a.num_features() != b.num_features()) return false;
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    if (a.label(i) != b.label(i) || a.tag(i) != b.tag(i)) return false;
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      if (ra[j] != rb[j]) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_datagen.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const aig::Aig base = gen::build_design("EX02");
  const auto& lib = cell::mini_sky130();

  flow::DataGenParams params;
  params.num_variants = smoke ? 40 : 200;

  struct Row {
    int threads;
    std::size_t variants;
    double seconds;
    double vps;
  };
  std::vector<Row> rows;
  flow::GeneratedData reference;
  bool deterministic = true;
  for (const int threads : {1, 2, 4}) {
    params.num_threads = threads;
    auto data = flow::generate_dataset(base, "EX02", lib, params);
    const double vps = static_cast<double>(data.unique_variants) / data.generation_seconds;
    std::printf("datagen[threads=%d]: %zu variants in %.2f s = %.1f variants/s\n", threads,
                data.unique_variants, data.generation_seconds, vps);
    rows.push_back({threads, data.unique_variants, data.generation_seconds, vps});
    if (threads == 1) {
      reference = std::move(data);
    } else if (!same_dataset(reference.delay, data.delay) ||
               !same_dataset(reference.area, data.area)) {
      deterministic = false;
    }
  }
  std::printf("determinism (threads=1 vs others): %s\n", deterministic ? "IDENTICAL" : "MISMATCH");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"datagen\",\n  \"design\": \"EX02\",\n  \"hardware_threads\": "
      << default_num_threads() << ",\n  \"deterministic_across_threads\": "
      << (deterministic ? "true" : "false") << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"threads\": " << rows[i].threads << ", \"variants\": " << rows[i].variants
        << ", \"seconds\": " << rows[i].seconds << ", \"variants_per_sec\": " << rows[i].vps
        << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}
