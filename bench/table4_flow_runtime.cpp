// Table IV — Runtime for the three flows (per SA iteration).
//
// Paper columns: Baseline(s) | Ground-Truth-flow Mapping+STA(s) | ML-flow
// ML-inference(s) with % reduction vs the ground-truth flow.  Headline:
// the ML flow cuts the evaluation overhead by 80.83% on average and up to
// 88.79% while preserving solution quality.

#include <cstdio>

#include "bench/common.hpp"
#include "gen/designs.hpp"
#include "opt/recipe.hpp"
#include "util/stats.hpp"

using namespace aigml;

int main() {
  bench::print_header("Table IV", "per-iteration evaluation runtime of the three flows");
  const auto pipeline = bench::load_pipeline();
  const int iterations = scaled(30, 8);
  std::printf("protocol: %d SA iterations per design per flow; columns report the\n"
              "evaluation component per iteration (the quantity Table IV isolates)\n\n",
              iterations);

  std::printf("%-8s %-14s %-22s %-26s\n", "design", "baseline (s)", "GT mapping+STA (s)",
              "ML inference (s)  (reduction)");
  RunningStats reductions;
  double max_reduction = 0.0;
  opt::CostContext ctx;
  ctx.library = &cell::mini_sky130();
  ctx.delay_model = opt::borrow_model(pipeline.models.delay);
  ctx.area_model = opt::borrow_model(pipeline.models.area);
  for (const auto& spec : gen::design_specs()) {
    const aig::Aig g = gen::build_design(spec.name);
    opt::Recipe recipe;
    recipe.iterations = iterations;
    recipe.seed = 0x7AB4;

    recipe.cost = "proxy";
    const auto base_run = opt::run(recipe, g, ctx);
    // Baseline column: full per-iteration cost (transform + graph processing)
    // as in the paper.
    const double base_s = base_run.seconds_per_iteration();

    // Per-iteration evaluation cost from the history records only —
    // OptResult::total_eval_seconds also counts the initial evaluation,
    // which is not part of any iteration.
    const auto per_iteration_eval_s = [](const opt::OptResult& r) {
      double seconds = 0.0;
      for (const auto& record : r.history) seconds += record.eval_seconds;
      return seconds / static_cast<double>(r.history.size());
    };

    recipe.cost = "gt";
    const auto gt_run = opt::run(recipe, g, ctx);
    const double gt_eval_s = per_iteration_eval_s(gt_run);

    recipe.cost = "ml";
    const auto ml_run = opt::run(recipe, g, ctx);
    const double ml_eval_s = per_iteration_eval_s(ml_run);

    const double reduction_pct = (1.0 - ml_eval_s / gt_eval_s) * 100.0;
    reductions.add(reduction_pct);
    max_reduction = std::max(max_reduction, reduction_pct);
    std::printf("%-8s %-14.4f %-22.4f %.4f  (%+.2f%%)\n", spec.name.c_str(), base_s, gt_eval_s,
                ml_eval_s, -reduction_pct);
  }
  std::printf("\nAvg reduction: -%.2f%%   Max reduction: -%.2f%%\n\n", reductions.mean(),
              max_reduction);

  char measured[200];
  std::snprintf(measured, sizeof measured,
                "ML inference replaces mapping+STA with an average -%.2f%% (max -%.2f%%) "
                "evaluation-time reduction",
                reductions.mean(), max_reduction);
  bench::print_claim("-80.83% average / -88.79% max evaluation-runtime reduction vs the "
                     "ground-truth flow",
                     measured);
  std::printf("shape %s: ML evaluation is a small fraction of mapping+STA\n",
              reductions.mean() > 50.0 ? "HOLDS" : "DEVIATES");
  return 0;
}
