// Serving throughput bench: predictions/second of the three ways this repo
// can consume a trained GBDT —
//
//   reload_per_call     the pre-serve baseline: GbdtModel::load from disk +
//                       extract + predict for every query (what `aigml
//                       predict` cost per AIG before the serving layer)
//   service_sequential  in-process PredictService, one outstanding request
//                       (pays the micro-batch coalescing window per call)
//   service_batched     concurrent clients submitting futures in bulk —
//                       the intended serving shape
//
// Emits BENCH_serve.json so the serving-throughput trajectory is tracked
// across PRs alongside BENCH_datagen.json.  Exit status enforces the two
// serve acceptance invariants: batched results bit-identical to single-call
// GbdtModel::predict, and batched throughput >= 5x reload_per_call.
// Run with --smoke for a CI-sized workload.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace aigml;

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t num_variants = smoke ? 24 : 64;
  const std::size_t num_queries = smoke ? 120 : 480;
  const int num_clients = 4;

  // Distinct AIG variants of one design (random optimization scripts), the
  // query stream every leg replays in the same order.
  const aig::Aig base = gen::multiplier(6);
  const auto& registry_scripts = transforms::script_registry();
  Rng rng(0x5e47e0);
  std::vector<aig::Aig> variants;
  variants.reserve(num_variants);
  for (std::size_t i = 0; i < num_variants; ++i) {
    variants.push_back(registry_scripts.apply(registry_scripts.random_index(rng), base));
  }

  // A small delay model trained on the variants themselves (label: level as
  // a stand-in — throughput does not depend on label quality).
  ml::Dataset data(features::feature_names());
  for (const aig::Aig& g : variants) {
    data.append(features::extract(g), static_cast<double>(aig::aig_level(g)), "bench");
  }
  // Repo-scale tree count (DESIGN.md §4): the reload baseline must pay a
  // realistic model-parse cost, and the service legs a realistic forest.
  ml::GbdtParams params;
  params.num_trees = smoke ? 240 : 400;
  params.max_depth = 5;
  const ml::GbdtModel model = ml::GbdtModel::train(data, params);
  const std::filesystem::path model_dir =
      std::filesystem::temp_directory_path() / "aigml_serve_bench_models";
  std::filesystem::create_directories(model_dir);
  const std::filesystem::path model_path = model_dir / "delay.gbdt";
  model.save(model_path);

  // Reference answers: one-at-a-time GbdtModel::predict (the bit-identity
  // oracle for every serving leg).
  std::vector<double> reference;
  reference.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    reference.push_back(model.predict(features::extract(variants[q % num_variants])));
  }

  struct Run {
    std::string mode;
    double seconds = 0.0;
    double preds_per_sec = 0.0;
    bool identical = true;
  };
  std::vector<Run> runs;
  auto record = [&](const std::string& mode, double seconds,
                    const std::vector<double>& results) {
    Run run{mode, seconds, static_cast<double>(num_queries) / seconds, true};
    for (std::size_t q = 0; q < num_queries; ++q) {
      if (results[q] != reference[q]) run.identical = false;
    }
    std::printf("%-20s %8.3f s  %10.1f preds/s  %s\n", mode.c_str(), seconds,
                run.preds_per_sec, run.identical ? "identical" : "MISMATCH");
    runs.push_back(run);
  };

  {  // Leg 1: reload the .gbdt from disk for every query.
    std::vector<double> results(num_queries);
    Timer timer;
    for (std::size_t q = 0; q < num_queries; ++q) {
      const ml::GbdtModel fresh = ml::GbdtModel::load(model_path);
      results[q] = fresh.predict(features::extract(variants[q % num_variants]));
    }
    record("reload_per_call", timer.elapsed_s(), results);
  }

  serve::ModelRegistry registry(model_dir);
  serve::PredictService service(registry);

  {  // Leg 2: in-process service, one outstanding request at a time.
    std::vector<double> results(num_queries);
    Timer timer;
    for (std::size_t q = 0; q < num_queries; ++q) {
      results[q] = service.predict("delay", variants[q % num_variants]);
    }
    record("service_sequential", timer.elapsed_s(), results);
  }

  {  // Leg 3: concurrent clients, futures submitted in bulk.
    std::vector<double> results(num_queries);
    Timer timer;
    std::vector<std::thread> clients;
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::pair<std::size_t, std::future<double>>> futures;
        for (std::size_t q = static_cast<std::size_t>(c); q < num_queries;
             q += static_cast<std::size_t>(num_clients)) {
          futures.emplace_back(q, service.submit("delay", variants[q % num_variants]));
        }
        for (auto& [q, future] : futures) results[q] = future.get();
      });
    }
    for (auto& t : clients) t.join();
    record("service_batched", timer.elapsed_s(), results);
  }

  const serve::ServiceStats stats = service.stats();
  const double speedup = runs[2].preds_per_sec / runs[0].preds_per_sec;
  const bool identical = runs[0].identical && runs[1].identical && runs[2].identical;
  std::printf("batched vs reload_per_call: %.1fx  (batches=%llu, max_batch=%llu)\n", speedup,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch));

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"serve\",\n  \"design\": \"mult6\",\n  \"queries\": " << num_queries
      << ",\n  \"variants\": " << num_variants << ",\n  \"model_trees\": " << model.num_trees()
      << ",\n  \"clients\": " << num_clients << ",\n  \"batches\": " << stats.batches
      << ",\n  \"max_batch\": " << stats.max_batch
      << ",\n  \"identical_to_single_predict\": " << (identical ? "true" : "false")
      << ",\n  \"speedup_batched_vs_reload\": " << speedup << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "    {\"mode\": \"" << runs[i].mode << "\", \"seconds\": " << runs[i].seconds
        << ", \"preds_per_sec\": " << runs[i].preds_per_sec << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: batched predictions differ from single-call predict\n");
    return 1;
  }
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: batched speedup %.1fx < 5x over reload_per_call\n", speedup);
    return 1;
  }
  return 0;
}
