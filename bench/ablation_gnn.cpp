// Ablation (paper §III-B, in text) — GNN vs decision-tree model.
//
// Paper: "not only is the GNN-based timing prediction 2% worse than the
// decision-tree-based model on average across the designs ..., but the
// training cost is also much higher than the lightweight decision-tree-based
// model."  Rationale: per-node features in an AIG are too poor for message
// passing to beat engineered graph-level features, and max-delay is
// dominated by a few long paths that are hard to capture with local
// aggregation.

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "features/features.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "sta/sta.hpp"
#include "transforms/scripts.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace aigml;

namespace {

struct LabeledGraph {
  aig::Aig graph;
  double delay_ps = 0.0;
  std::string design;
};

std::vector<LabeledGraph> make_corpus(const std::string& design, int count, std::uint64_t seed) {
  const auto& lib = cell::mini_sky130();
  Rng rng(seed);
  std::vector<LabeledGraph> out;
  std::vector<aig::Aig> pool{gen::build_design(design).cleanup()};
  std::unordered_set<std::uint64_t> seen{pool.front().structural_hash()};
  auto label = [&](const aig::Aig& g) {
    const auto sta = sta::run_sta(map::map_to_cells(g, lib), lib, {});
    out.push_back(LabeledGraph{g, sta.max_delay_ps, design});
  };
  label(pool.front());
  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < count * 20) {
    ++attempts;
    const std::size_t pick = std::max(rng.next_below(pool.size()), rng.next_below(pool.size()));
    aig::Aig candidate = flow::random_variant_step(pool[pick], rng);
    if (!seen.insert(candidate.structural_hash()).second) continue;
    label(candidate);
    pool.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Ablation: GNN vs GBDT",
                      "graph-level features + trees vs message-passing GNN");
  const int per_small = scaled(90, 20);
  const int per_large = scaled(30, 8);
  std::printf("corpus: EX00 x%d, EX68 x%d (small), EX02 x%d (large); 70/30 train/test split\n\n",
              per_small, per_small, per_large);

  std::vector<LabeledGraph> corpus;
  for (auto& item : make_corpus("EX00", per_small, 1)) corpus.push_back(std::move(item));
  for (auto& item : make_corpus("EX68", per_small, 2)) corpus.push_back(std::move(item));
  for (auto& item : make_corpus("EX02", per_large, 3)) corpus.push_back(std::move(item));

  // Deterministic interleaved split.
  std::vector<const LabeledGraph*> train, test;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    (i % 10 < 7 ? train : test).push_back(&corpus[i]);
  }
  std::printf("train graphs: %zu, test graphs: %zu\n", train.size(), test.size());

  // ---- GBDT on Table II features ------------------------------------------------
  Timer gbdt_timer;
  ml::Dataset train_ds(features::feature_names());
  for (const auto* item : train) {
    train_ds.append(features::extract(item->graph), item->delay_ps, item->design);
  }
  ml::GbdtParams gp = flow::default_gbdt_params();
  const auto gbdt = ml::GbdtModel::train(train_ds, gp);
  const double gbdt_train_s = gbdt_timer.elapsed_s();

  std::vector<double> gbdt_pred, truth;
  for (const auto* item : test) {
    gbdt_pred.push_back(gbdt.predict(features::extract(item->graph)));
    truth.push_back(item->delay_ps);
  }
  const auto gbdt_err = absolute_percent_error(gbdt_pred, truth);

  // ---- GNN on raw graphs ---------------------------------------------------------
  std::vector<const aig::Aig*> train_graphs;
  std::vector<double> train_labels;
  for (const auto* item : train) {
    train_graphs.push_back(&item->graph);
    train_labels.push_back(item->delay_ps);
  }
  ml::GnnParams gnn_params;
  gnn_params.hidden = 16;
  gnn_params.layers = 2;
  gnn_params.epochs = scaled(25, 8);
  ml::GnnTrainLog gnn_log;
  const auto gnn = ml::GnnModel::train(train_graphs, train_labels, gnn_params, &gnn_log);

  // Through the family-agnostic interface, one batched message-passing pass
  // over the whole test set (bit-identical to per-graph predict — model.hpp).
  const ml::Model& gnn_model = gnn;
  std::vector<const aig::Aig*> test_graphs;
  for (const auto* item : test) test_graphs.push_back(&item->graph);
  const std::vector<double> gnn_pred = gnn_model.predict_graphs(test_graphs);
  const auto gnn_err = absolute_percent_error(gnn_pred, truth);

  std::printf("\n%-18s %-14s %-14s %-14s %-14s\n", "model", "mean %err", "max %err",
              "std %err", "train time (s)");
  std::printf("%-18s %-14.2f %-14.2f %-14.2f %-14.2f\n", "GBDT (features)", gbdt_err.mean_pct,
              gbdt_err.max_pct, gbdt_err.std_pct, gbdt_train_s);
  std::printf("%-18s %-14.2f %-14.2f %-14.2f %-14.2f\n\n", "GNN (msg-passing)", gnn_err.mean_pct,
              gnn_err.max_pct, gnn_err.std_pct, gnn_log.train_seconds);

  char measured[256];
  std::snprintf(measured, sizeof measured,
                "GNN mean %%err %.2f%% vs GBDT %.2f%% (GNN %+.2f pts worse); GNN training "
                "%.1fx the GBDT cost",
                gnn_err.mean_pct, gbdt_err.mean_pct, gnn_err.mean_pct - gbdt_err.mean_pct,
                gnn_log.train_seconds / std::max(1e-9, gbdt_train_s));
  bench::print_claim("GNN prediction ~2% worse than the decision-tree model, with much "
                     "higher training cost",
                     measured);
  const bool holds =
      gnn_err.mean_pct >= gbdt_err.mean_pct && gnn_log.train_seconds > gbdt_train_s;
  std::printf("shape %s: trees on engineered features win on both axes\n",
              holds ? "HOLDS" : "DEVIATES");
  return 0;
}
