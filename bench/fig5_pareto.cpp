// Fig. 5 — Pareto-optimal delay/area fronts of the three flows on a test
// design, plus the §II-B iso-area delay comparison.
//
// Paper: sweeping the SA hyperparameters (cost weights x temperature decay)
// per flow, the ML flow's front nearly coincides with the ground-truth
// front, and both clearly dominate the baseline (proxy) front.  §II-B:
// at equal area, ground-truth-optimized AIGs can be up to 22.7% better in
// delay than baseline-optimized ones.

#include <cstdio>

#include "bench/common.hpp"
#include "gen/designs.hpp"
#include "opt/sweep.hpp"
#include "util/stats.hpp"

using namespace aigml;

namespace {

void print_front(const char* name, const std::vector<opt::ParetoPoint>& front) {
  std::printf("%s front (%zu points):\n", name, front.size());
  std::printf("  %-14s %-14s\n", "delay (ps)", "area (um2)");
  for (const auto& p : front) {
    std::printf("  %-14.1f %-14.1f\n", p.delay, p.area);
  }
}

/// Mean best-delay advantage of front `a` over front `b` across the area
/// budgets where both are defined (positive = a is better).
double mean_delay_advantage(const std::vector<opt::ParetoPoint>& a,
                            const std::vector<opt::ParetoPoint>& b) {
  RunningStats adv;
  for (const auto& probe : b) {
    const double da = opt::delay_at_area(a, probe.area);
    const double db = opt::delay_at_area(b, probe.area);
    if (std::isfinite(da) && std::isfinite(db) && db > 0) {
      adv.add((db - da) / db * 100.0);
    }
  }
  return adv.mean();
}

}  // namespace

int main() {
  bench::print_header("Fig. 5", "Pareto fronts of baseline vs ground-truth vs ML flows");
  const auto pipeline = bench::load_pipeline();

  const std::string design = "EX02";  // a test (unseen) design, as in the paper
  const aig::Aig g = gen::build_design(design);
  std::printf("design: %s (test split; %zu AND nodes)\n", design.c_str(), g.num_ands());

  opt::SweepConfig config;
  config.iterations = scaled(120, 20);
  config.weight_pairs = {{1.0, 0.0}, {1.0, 0.3}, {1.0, 0.7}, {0.6, 1.0}};
  config.decays = {0.93, 0.975};
  std::printf("sweep: %zu weight pairs x %zu decays, %d iterations each\n\n",
              config.weight_pairs.size(), config.decays.size(), config.iterations);

  const auto& lib = cell::mini_sky130();

  // Recipe lists per flow, executed in parallel on the process-default
  // thread pool (bit-identical to a serial sweep).
  opt::CostContext ctx;
  ctx.library = &lib;
  ctx.delay_model = opt::borrow_model(pipeline.models.delay);
  ctx.area_model = opt::borrow_model(pipeline.models.area);

  config.cost = "proxy";
  const auto base = opt::run_sweep(g, config.to_recipes(), ctx, 0);
  std::printf("[baseline]     total %.1f s\n", base.total_seconds);

  config.cost = "gt";
  const auto truth = opt::run_sweep(g, config.to_recipes(), ctx, 0);
  std::printf("[ground truth] total %.1f s\n", truth.total_seconds);

  config.cost = "ml";
  const auto mlf = opt::run_sweep(g, config.to_recipes(), ctx, 0);
  std::printf("[ml flow]      total %.1f s\n\n", mlf.total_seconds);

  print_front("baseline (proxy)", base.front);
  print_front("ground-truth", truth.front);
  print_front("ml", mlf.front);

  const double gt_vs_base = mean_delay_advantage(truth.front, base.front);
  const double ml_vs_base = mean_delay_advantage(mlf.front, base.front);
  const double ml_vs_gt = mean_delay_advantage(mlf.front, truth.front);

  std::printf("\niso-area delay advantage (mean over area budgets):\n");
  std::printf("  ground-truth vs baseline: %+.1f%%\n", gt_vs_base);
  std::printf("  ml           vs baseline: %+.1f%%\n", ml_vs_base);
  std::printf("  ml           vs ground-truth: %+.1f%% (≈0 means matching quality)\n\n",
              ml_vs_gt);

  char measured[256];
  std::snprintf(measured, sizeof measured,
                "ground-truth front beats baseline by %+.1f%% iso-area delay; ML front beats "
                "baseline by %+.1f%% and tracks ground truth within %+.1f%%",
                gt_vs_base, ml_vs_base, ml_vs_gt);
  bench::print_claim(
      "ML front nearly coincides with the ground-truth front; both dominate the baseline; "
      "ground truth up to 22.7% better delay at iso-area (SEC. II-B)",
      measured);
  // Shape: ground truth dominates the baseline, and the ML front tracks the
  // ground-truth front closely (the repo-scale predictor is trained on 67x
  // less data than the paper's, so "closely" is a few percent here).
  const bool holds = gt_vs_base > 0.0 && ml_vs_gt > -5.0;
  std::printf("shape %s: ground truth beats proxies and the ML front tracks ground truth\n",
              holds ? "HOLDS" : "DEVIATES");
  return 0;
}
