// High-concurrency serving bench: the PR-7 gate artifact (DESIGN.md §11).
//
// Two legs over the SAME trained model and the SAME query stream, each
// driven by serve::run_loadgen (one event-loop thread multiplexing >= 200
// concurrent connections):
//
//   legacy_threads   serve::PredictServer — thread-per-connection, text
//                    protocol, one outstanding request per connection (the
//                    pre-PR-7 serving shape)
//   event_loop       serve::BatchServer — epoll/poll reactor + slot
//                    scheduler + continuous batching, binary protocol,
//                    pipelined requests per connection
//
// Emits BENCH_server.json.  Exit status enforces the acceptance gates:
// every response from BOTH legs bit-identical to local GbdtModel::predict,
// zero losses, and event_loop throughput >= 3x legacy_threads at >= 200
// concurrent connections.  p50/p90/p99 service latency is reported per leg.
// Run with --smoke for a CI-sized workload (same connection count, fewer
// requests).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "serve/batch_server.hpp"
#include "serve/loadgen.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"

using namespace aigml;

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t num_variants = smoke ? 24 : 64;
  const std::size_t connections = 200;  // the gate is defined at >= 200
  const std::size_t legacy_requests = smoke ? 1000 : 4000;
  const std::size_t batch_requests = smoke ? 4000 : 40000;
  const std::size_t batch_pipeline = 16;

  // Feature rows from distinct optimized variants of one design — the query
  // stream both legs replay (request i sends rows[i % rows.size()]).
  const aig::Aig base = gen::multiplier(6);
  const auto& scripts = transforms::script_registry();
  Rng rng(0x5e47e0);
  std::vector<std::vector<double>> rows;
  ml::Dataset data(features::feature_names());
  rows.reserve(num_variants);
  for (std::size_t i = 0; i < num_variants; ++i) {
    const aig::Aig g = scripts.apply(scripts.random_index(rng), base);
    const features::FeatureVector fv = features::extract(g);
    rows.emplace_back(fv.begin(), fv.end());
    data.append(fv, static_cast<double>(aig::aig_level(g)), "bench");
  }

  // Repo-scale forest (DESIGN.md §4) so per-request predict cost is honest.
  ml::GbdtParams params;
  params.num_trees = smoke ? 240 : 400;
  params.max_depth = 5;
  const ml::GbdtModel model = ml::GbdtModel::train(data, params);
  const std::filesystem::path model_dir =
      std::filesystem::temp_directory_path() / "aigml_server_bench_models";
  std::filesystem::create_directories(model_dir);
  model.save(model_dir / "delay.gbdt");

  // Bit-identity oracle: local single-call predict per variant.
  std::vector<double> reference;
  reference.reserve(num_variants);
  for (const std::vector<double>& row : rows) reference.push_back(model.predict(row));

  struct Leg {
    std::string mode;
    std::size_t requests = 0;
    std::size_t pipeline = 1;
    bool binary = false;
    serve::LoadGenResult result;
    bool identical = true;
  };
  std::vector<Leg> legs;

  auto drive = [&](const std::string& mode, std::uint16_t port, std::size_t requests,
                   std::size_t pipeline, bool binary) {
    serve::LoadGenParams lg;
    lg.port = port;
    lg.connections = connections;
    lg.requests = requests;
    lg.pipeline = pipeline;
    lg.binary = binary;
    lg.model = "delay";
    lg.rows = rows;
    Leg leg{mode, requests, pipeline, binary, serve::run_loadgen(lg), true};
    for (std::size_t i = 0; i < requests; ++i) {
      if (leg.result.values[i] != reference[i % num_variants]) leg.identical = false;
    }
    std::printf("%-14s %6zu conns  %7zu reqs  %8.3f s  %10.1f req/s  p99 %7.0f us  %s\n",
                mode.c_str(), connections, requests, leg.result.seconds,
                leg.result.throughput_rps, leg.result.latency.percentile_us(99.0),
                leg.identical ? "identical" : "MISMATCH");
    legs.push_back(std::move(leg));
  };

  serve::ModelRegistry registry(model_dir);
  serve::PredictService service(registry);

  {  // Leg 1: thread-per-connection text server, one outstanding per conn.
    serve::ServerParams sp;
    sp.max_connections = 0;  // the bench wants contention, not accept sheds
    serve::PredictServer server(registry, service, sp);
    server.start();
    drive("legacy_threads", server.port(), legacy_requests, 1, false);
    server.stop();
  }

  {  // Leg 2: continuous-batching event loop, binary protocol, pipelined.
    serve::BatchServer server(registry, service);
    server.start();
    drive("event_loop", server.port(), batch_requests, batch_pipeline, true);
    server.stop();
  }

  const Leg& legacy = legs[0];
  const Leg& batch = legs[1];
  const double speedup = legacy.result.throughput_rps > 0.0
                             ? batch.result.throughput_rps / legacy.result.throughput_rps
                             : 0.0;
  const bool identical = legacy.identical && batch.identical;
  const bool lossless = legacy.result.ok == legacy.requests && batch.result.ok == batch.requests;
  std::printf("event_loop vs legacy_threads: %.1fx\n", speedup);

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"server\",\n  \"design\": \"mult6\",\n  \"connections\": "
      << connections << ",\n  \"variants\": " << num_variants
      << ",\n  \"model_trees\": " << model.num_trees()
      << ",\n  \"identical_to_local_predict\": " << (identical ? "true" : "false")
      << ",\n  \"lossless\": " << (lossless ? "true" : "false")
      << ",\n  \"speedup_event_loop_vs_legacy\": " << speedup << ",\n  \"legs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    const LatencyHistogram& h = leg.result.latency;
    out << "    {\"mode\": \"" << leg.mode << "\", \"protocol\": \""
        << (leg.binary ? "binary" : "text") << "\", \"requests\": " << leg.requests
        << ", \"pipeline\": " << leg.pipeline << ", \"ok\": " << leg.result.ok
        << ", \"busy\": " << leg.result.busy << ", \"errors\": " << leg.result.errors
        << ", \"seconds\": " << leg.result.seconds
        << ", \"throughput_rps\": " << leg.result.throughput_rps
        << ", \"latency_us\": {\"mean\": " << h.mean_us() << ", \"p50\": " << h.percentile_us(50.0)
        << ", \"p90\": " << h.percentile_us(90.0) << ", \"p99\": " << h.percentile_us(99.0)
        << ", \"max\": " << h.max_us() << "}}" << (i + 1 < legs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: served predictions differ from local GbdtModel::predict\n");
    return 1;
  }
  if (!lossless) {
    std::fprintf(stderr, "FAIL: lost requests (legacy ok=%zu/%zu, event_loop ok=%zu/%zu)\n",
                 legacy.result.ok, legacy.requests, batch.result.ok, batch.requests);
    return 1;
  }
  if (speedup < 3.0) {
    std::fprintf(stderr, "FAIL: event_loop speedup %.1fx < 3x over legacy_threads\n", speedup);
    return 1;
  }
  return 0;
}
