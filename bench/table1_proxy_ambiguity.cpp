// Table I — Post-mapping performance for two AIGs with the same number of
// levels and nodes.
//
// Paper: two AIG variants of the same circuit with identical (level, node
// count) proxies map to netlists with substantially different delay
// (1.75 ns vs 1.33 ns) and area (803.27 vs 770.74 um^2).  A proxy-driven
// optimizer cannot distinguish them and may discard the better candidate.

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>
#include <vector>

#include "aig/analysis.hpp"
#include "bench/common.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "mapper/mapper.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

using namespace aigml;

int main() {
  bench::print_header("Table I", "same (level, node-count) proxy, different post-mapping PPA");
  const int count = scaled(400, 60);
  std::printf("workload: 7x7 array multiplier, %d unique AIG variants\n\n", count);

  const auto& lib = cell::mini_sky130();
  Rng rng(0x7AB1E1);

  struct Entry {
    double delay_ps, area_um2;
  };
  std::map<std::pair<std::uint32_t, std::size_t>, std::vector<Entry>> buckets;

  std::vector<aig::Aig> pool{gen::multiplier(7).cleanup()};
  std::unordered_set<std::uint64_t> seen{pool.front().structural_hash()};
  int made = 1, attempts = 0;
  while (made < count && attempts < count * 20) {
    ++attempts;
    const std::size_t pick = std::max(rng.next_below(pool.size()), rng.next_below(pool.size()));
    aig::Aig candidate = flow::random_variant_step(pool[pick], rng);
    if (!seen.insert(candidate.structural_hash()).second) continue;
    const auto netlist = map::map_to_cells(candidate, lib);
    const auto sta = sta::run_sta(netlist, lib, {});
    buckets[{aig::aig_level(candidate), candidate.num_ands()}].push_back(
        Entry{sta.max_delay_ps, sta.total_area_um2});
    pool.push_back(std::move(candidate));
    ++made;
  }

  // Find the proxy bucket with the widest delay gap.
  double best_ratio = 1.0;
  std::pair<std::uint32_t, std::size_t> best_key{0, 0};
  Entry slow{}, fast{};
  int ambiguous_buckets = 0;
  for (const auto& [key, entries] : buckets) {
    if (entries.size() < 2) continue;
    ++ambiguous_buckets;
    const auto [lo, hi] = std::minmax_element(
        entries.begin(), entries.end(),
        [](const Entry& a, const Entry& b) { return a.delay_ps < b.delay_ps; });
    const double ratio = hi->delay_ps / lo->delay_ps;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_key = key;
      slow = *hi;
      fast = *lo;
    }
  }

  std::printf("proxy buckets with >= 2 structurally distinct AIGs: %d\n\n", ambiguous_buckets);
  std::printf("%-12s %-8s %-12s %-22s %-22s\n", "AIG", "Level", "Node Count",
              "Post-mapping Delay (ps)", "Post-mapping Area (um2)");
  std::printf("%-12s %-8u %-12zu %-22.1f %-22.1f\n", "AIG1 (slow)", best_key.first,
              best_key.second, slow.delay_ps, slow.area_um2);
  std::printf("%-12s %-8u %-12zu %-22.1f %-22.1f\n\n", "AIG2 (fast)", best_key.first,
              best_key.second, fast.delay_ps, fast.area_um2);

  char measured[256];
  std::snprintf(measured, sizeof measured,
                "equal proxies (level %u, %zu nodes) hide a %.1f%% delay gap (%.0f vs %.0f ps) "
                "and a %.1f%% area gap",
                best_key.first, best_key.second, (best_ratio - 1.0) * 100.0, slow.delay_ps,
                fast.delay_ps, (slow.area_um2 / fast.area_um2 - 1.0) * 100.0);
  bench::print_claim(
      "AIG1/AIG2: identical proxies (14 levels, 178 nodes) but 1.75 vs 1.33 ns delay "
      "(31.6% gap) and 803.27 vs 770.74 um2 area (4.2% gap)",
      measured);
  std::printf("shape %s: identical proxies conceal a real delay difference\n",
              best_ratio > 1.015 ? "HOLDS" : "DEVIATES");
  std::printf(
      "note: the paper mines 40k variants/design for its extreme pair; this pool is %d\n"
      "variants, so the widest same-proxy gap found is correspondingly smaller. The\n"
      "qualitative point — an optimizer ranking by (level, nodes) cannot separate these\n"
      "candidates — is unchanged. Raise AIGML_SCALE for wider pools.\n",
      count);
  return 0;
}
