#pragma once
// Shared harness utilities for the experiment benches: headers, PAPER vs
// MEASURED summary lines, scaled budgets, and the shared dataset/model
// pipeline (cached under AIGML_CACHE_DIR so the expensive labeling runs
// once across all benches).

#include <cstdio>
#include <filesystem>
#include <string>

#include "flow/experiment.hpp"
#include "util/env.hpp"

namespace aigml::bench {

inline void print_header(const std::string& experiment, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("scale: AIGML_SCALE=%.2f (1.0 = repo default, ~67 = paper scale)\n", env_scale());
  std::printf("================================================================\n");
}

inline void print_claim(const std::string& paper, const std::string& measured) {
  std::printf("PAPER:    %s\n", paper.c_str());
  std::printf("MEASURED: %s\n", measured.c_str());
}

/// Default per-design variant budget for dataset-backed experiments.
inline int variants_per_design() { return scaled(600, 24); }

/// Shared experiment pipeline: datasets (cached) + trained delay/area models
/// (also cached, keyed by the dataset and model configuration).
struct Pipeline {
  flow::ExperimentData data;
  flow::TrainedModels models;
};

inline Pipeline load_pipeline() {
  const std::filesystem::path cache_dir = env_cache_dir();
  flow::DataGenParams gen_params;
  gen_params.num_variants = variants_per_design();
  std::printf("[pipeline] preparing datasets (%d variants/design, cache: %s)...\n",
              gen_params.num_variants, cache_dir.string().c_str());
  Pipeline p;
  p.data = flow::prepare_experiment_data(cell::mini_sky130(), gen_params, cache_dir);

  const ml::GbdtParams gbdt = flow::default_gbdt_params();
  const std::string model_stem = "model_n" + std::to_string(gen_params.num_variants) + "_t" +
                                 std::to_string(gbdt.num_trees) + "_d" +
                                 std::to_string(gbdt.max_depth);
  const auto delay_path = cache_dir / (model_stem + "_delay.gbdt");
  const auto area_path = cache_dir / (model_stem + "_area.gbdt");
  if (std::filesystem::exists(delay_path) && std::filesystem::exists(area_path)) {
    std::printf("[pipeline] loading cached models\n");
    p.models.delay = ml::GbdtModel::load(delay_path);
    p.models.area = ml::GbdtModel::load(area_path);
  } else {
    std::printf("[pipeline] training GBDT models (%d trees, depth %d, lr %.3f)...\n",
                gbdt.num_trees, gbdt.max_depth, gbdt.learning_rate);
    p.models = flow::train_models(p.data, gbdt);
    p.models.delay.save(delay_path);
    p.models.area.save(area_path);
    std::printf("[pipeline] trained in %.1f s (delay) + %.1f s (area)\n",
                p.models.delay_log.train_seconds, p.models.area_log.train_seconds);
  }
  return p;
}

}  // namespace aigml::bench
