// Ablation (ours; paper §IV motivates SA over deterministic search) —
// simulated annealing vs greedy first-improvement descent.
//
// Paper's rationale for SA: "SA allows [accepting] temporary
// cost-increasing solutions with a certain probability ... allowing
// 'hill-climbing' that can enable the optimization to potentially find
// better solutions later."  This bench quantifies that choice under the
// ground-truth cost on several designs and seeds.

#include <cstdio>

#include "bench/common.hpp"
#include "gen/designs.hpp"
#include "opt/recipe.hpp"
#include "util/stats.hpp"

using namespace aigml;

int main() {
  bench::print_header("Ablation: SA vs greedy",
                      "hill-climbing acceptance vs strict descent (ground-truth cost)");
  const int iterations = scaled(80, 16);
  std::printf("protocol: %d iterations, 3 seeds per design, weights (1.0, 0.5)\n\n", iterations);

  std::printf("%-8s %-10s %-14s %-14s %-10s\n", "design", "seed", "SA best cost",
              "greedy best", "SA wins?");
  RunningStats sa_costs, greedy_costs;
  int sa_wins = 0, ties = 0, total = 0;
  opt::CostContext ctx;
  ctx.library = &cell::mini_sky130();
  for (const char* name : {"EX00", "EX68", "EX02"}) {
    const aig::Aig g = gen::build_design(name);
    for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
      opt::Recipe recipe;
      recipe.iterations = iterations;
      recipe.seed = seed;
      recipe.cost = "gt";

      recipe.strategy = "sa";
      const auto sa = opt::run(recipe, g, ctx);

      recipe.strategy = "greedy";
      const auto greedy = opt::run(recipe, g, ctx);

      sa_costs.add(sa.best_cost);
      greedy_costs.add(greedy.best_cost);
      const bool win = sa.best_cost < greedy.best_cost - 1e-9;
      const bool tie = std::abs(sa.best_cost - greedy.best_cost) <= 1e-9;
      sa_wins += win;
      ties += tie;
      ++total;
      std::printf("%-8s %-10llu %-14.4f %-14.4f %s\n", name,
                  static_cast<unsigned long long>(seed), sa.best_cost, greedy.best_cost,
                  tie ? "tie" : (win ? "yes" : "no"));
    }
  }

  std::printf("\nSA mean best cost %.4f vs greedy %.4f; SA wins %d/%d (ties %d)\n\n",
              sa_costs.mean(), greedy_costs.mean(), sa_wins, total, ties);
  char measured[220];
  std::snprintf(measured, sizeof measured,
                "SA mean best cost %.4f vs greedy %.4f across %d runs (SA wins %d, ties %d)",
                sa_costs.mean(), greedy_costs.mean(), total, sa_wins, ties);
  bench::print_claim("SA's hill-climbing escapes local optima a strict-descent search gets "
                     "stuck in (SEC. IV rationale)",
                     measured);
  if (sa_costs.mean() <= greedy_costs.mean() + 1e-6) {
    std::printf("shape HOLDS: SA at least matches greedy on average\n");
  } else {
    std::printf(
        "shape NUANCED (honest negative result at this scale): with *macro-script* moves —\n"
        "each move is itself a full optimization pass — and repo-scale budgets (%d\n"
        "iterations), strict descent is the stronger search: exploratory acceptance wastes\n"
        "evaluations that greedy spends exploiting. The paper's SA rationale concerns\n"
        "thousands-of-iteration budgets [5] and tunable cost trade-offs, which this bench's\n"
        "budget does not reach; raise AIGML_SCALE to probe the crossover.\n",
        iterations);
  }
  return 0;
}
