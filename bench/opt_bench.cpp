// Recipe-sweep throughput bench: runs the same recipe list serially and in
// parallel on util::ThreadPool, checks the determinism contract (identical
// runs and Pareto front at every thread count), and emits BENCH_opt.json so
// the optimization-layer perf trajectory is tracked across PRs.  Run with
// --smoke for a CI-sized workload.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "gen/designs.hpp"
#include "opt/sweep.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace aigml;

namespace {

bool same_runs(const opt::SweepResult& a, const opt::SweepResult& b) {
  if (a.runs.size() != b.runs.size() || a.front.size() != b.front.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (a.runs[i].ground_truth.delay != b.runs[i].ground_truth.delay ||
        a.runs[i].ground_truth.area != b.runs[i].ground_truth.area ||
        a.runs[i].evaluator_claimed.delay != b.runs[i].evaluator_claimed.delay ||
        a.runs[i].evaluator_claimed.area != b.runs[i].evaluator_claimed.area ||
        a.runs[i].evals != b.runs[i].evals) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    if (a.front[i].delay != b.front[i].delay || a.front[i].area != b.front[i].area ||
        a.front[i].origin != b.front[i].origin) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_opt.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const aig::Aig g = gen::build_design("EX68");
  const auto& lib = cell::mini_sky130();
  opt::CostContext ctx;
  ctx.library = &lib;

  // Ground-truth-guided sweep: every iteration maps + times the candidate,
  // so the per-recipe tasks are heavy enough for the pool to matter.
  opt::SweepConfig config;
  config.iterations = smoke ? 12 : 60;
  config.weight_pairs = {{1.0, 0.0}, {1.0, 0.5}, {1.0, 1.0}, {0.5, 1.0}};
  config.decays = {0.93, 0.97};
  config.cost = "gt";
  const std::vector<opt::Recipe> recipes = config.to_recipes();
  std::printf("sweep: %zu recipes (cost=%s, %d iterations each)\n", recipes.size(),
              config.cost.c_str(), config.iterations);

  struct Row {
    int threads;
    double seconds;
  };
  std::vector<Row> rows;
  opt::SweepResult reference;
  bool deterministic = true;
  for (const int threads : {1, 2, 4}) {
    auto result = opt::run_sweep(g, recipes, ctx, threads);
    std::printf("run_sweep[threads=%d]: %zu runs in %.2f s (front: %zu points)\n", threads,
                result.runs.size(), result.total_seconds, result.front.size());
    rows.push_back({threads, result.total_seconds});
    if (threads == 1) {
      reference = std::move(result);
    } else if (!same_runs(reference, result)) {
      deterministic = false;
    }
  }
  const double speedup = rows.back().seconds > 0 ? rows.front().seconds / rows.back().seconds : 0;
  std::printf("determinism (serial vs parallel): %s; serial/4-thread speedup %.2fx\n",
              deterministic ? "IDENTICAL" : "MISMATCH", speedup);

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"opt\",\n  \"design\": \"EX68\",\n  \"recipes\": " << recipes.size()
      << ",\n  \"iterations\": " << config.iterations
      << ",\n  \"cost\": \"" << config.cost << "\",\n  \"hardware_threads\": "
      << default_num_threads() << ",\n  \"deterministic_across_threads\": "
      << (deterministic ? "true" : "false") << ",\n  \"speedup_1_to_4\": " << speedup
      << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"threads\": " << rows[i].threads << ", \"seconds\": " << rows[i].seconds
        << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return deterministic ? 0 : 1;
}
