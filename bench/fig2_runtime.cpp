// Fig. 2 — Runtime comparison for one iteration of the original (proxy)
// logic optimization flow vs. the ground-truth-based flow.
//
// Paper: adding technology mapping + STA to every iteration makes the flow
// up to ~20x slower across the eight IWLS designs; the x-axis annotates
// each design with its AIG node count.

#include <cstdio>

#include "bench/common.hpp"
#include "gen/designs.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"

using namespace aigml;

int main() {
  bench::print_header("Fig. 2",
                      "per-iteration runtime: baseline (proxy) vs ground-truth flow");
  const int iterations = scaled(30, 8);
  std::printf("protocol: %d SA iterations per design per flow; per-iteration wall time\n\n",
              iterations);

  std::printf("%-8s %-10s %-16s %-18s %-10s\n", "design", "nodes", "baseline (s/it)",
              "ground-truth (s/it)", "slowdown");
  double max_slowdown = 0.0, sum_slowdown = 0.0;
  int designs = 0;
  for (const auto& spec : gen::design_specs()) {
    const aig::Aig g = gen::build_design(spec.name);

    opt::SaParams params;
    params.iterations = iterations;
    params.seed = 0xF162;

    opt::ProxyCost proxy;
    const auto base_run = opt::simulated_annealing(g, proxy, params);

    opt::GroundTruthCost gt(cell::mini_sky130());
    const auto gt_run = opt::simulated_annealing(g, gt, params);

    const double base_s = base_run.seconds_per_iteration();
    const double gt_s = gt_run.seconds_per_iteration();
    const double slowdown = gt_s / base_s;
    max_slowdown = std::max(max_slowdown, slowdown);
    sum_slowdown += slowdown;
    ++designs;
    std::printf("%-8s %-10zu %-16.4f %-18.4f %-10.2fx\n", spec.name.c_str(), g.num_ands(),
                base_s, gt_s, slowdown);
  }

  char measured[200];
  std::snprintf(measured, sizeof measured,
                "ground-truth flow is %.1fx slower on average, up to %.1fx",
                sum_slowdown / designs, max_slowdown);
  bench::print_claim("ground-truth-based flow is up to ~20x slower per iteration", measured);
  std::printf("shape %s: mapping+STA dominates the per-iteration cost\n",
              max_slowdown > 1.5 ? "HOLDS" : "DEVIATES");
  std::printf(
      "note: our from-scratch mapper is lighter than ABC's `map`, so the absolute factor is\n"
      "smaller; the ordering (ground truth >> baseline, growing with design size) is the\n"
      "reproduced shape.\n");
  return 0;
}
