// Table III — Accuracy of the XGBoost-style model for timing prediction.
//
// Paper: trained on 40k variants each of EX00/EX08/EX28/EX68 and tested on
// the unseen designs EX02/EX11/EX16/EX54, the delay model achieves 4.03%
// mean absolute error on average (max 39.85%, average std 3.27%).

#include <cstdio>

#include "bench/common.hpp"
#include "gen/designs.hpp"
#include "ml/gbdt.hpp"
#include "util/stats.hpp"

using namespace aigml;

int main() {
  bench::print_header("Table III", "GBDT timing-prediction accuracy, train vs unseen designs");
  const auto pipeline = bench::load_pipeline();

  const auto rows = flow::evaluate_accuracy(pipeline.data, pipeline.models);

  std::printf("\n-- delay model --\n");
  std::printf("%-10s %-8s %-10s %-12s %-12s %-12s\n", "design", "PI/PO", "#rows",
              "mean %err", "max %err", "std %err");
  RunningStats mean_acc, std_acc;
  double global_max = 0.0;
  auto print_block = [&](bool training) {
    std::printf("%s\n", training ? "Training" : "Test");
    for (const auto& row : rows) {
      if (row.training != training) continue;
      const auto& spec = gen::design_spec(row.design);
      char pipo[16];
      std::snprintf(pipo, sizeof pipo, "%d/%d", spec.num_inputs, spec.num_outputs);
      std::printf("%-10s %-8s %-10zu %-12.2f %-12.2f %-12.2f\n", row.design.c_str(), pipo,
                  row.delay_error.count, row.delay_error.mean_pct, row.delay_error.max_pct,
                  row.delay_error.std_pct);
      mean_acc.add(row.delay_error.mean_pct);
      std_acc.add(row.delay_error.std_pct);
      global_max = std::max(global_max, row.delay_error.max_pct);
    }
  };
  print_block(true);
  print_block(false);
  std::printf("%-10s %-8s %-10s %-12.2f %-12.2f %-12.2f\n", "Avg/Max", "", "", mean_acc.mean(),
              global_max, std_acc.mean());

  std::printf("\n-- area model (paper predicts area alongside delay) --\n");
  std::printf("%-10s %-12s %-12s %-12s\n", "design", "mean %err", "max %err", "std %err");
  for (const auto& row : rows) {
    std::printf("%-10s %-12.2f %-12.2f %-12.2f\n", row.design.c_str(), row.area_error.mean_pct,
                row.area_error.max_pct, row.area_error.std_pct);
  }

  // Generalization summary: test-design mean error.
  RunningStats train_err, test_err;
  for (const auto& row : rows) {
    (row.training ? train_err : test_err).add(row.delay_error.mean_pct);
  }

  std::printf("\n");
  char measured[256];
  std::snprintf(measured, sizeof measured,
                "delay mean %%err: %.2f%% avg across designs (train %.2f%%, unseen %.2f%%), "
                "max %.2f%%, avg std %.2f%%",
                mean_acc.mean(), train_err.mean(), test_err.mean(), global_max, std_acc.mean());
  bench::print_claim(
      "average prediction error 4.03% across designs, max 39.85%, average std 3.27%; "
      "test designs only modestly worse than training designs (good generalization)",
      measured);
  std::printf("shape %s: single-digit mean error, generalizing to unseen designs\n",
              mean_acc.mean() < 10.0 && test_err.mean() < 10.0 ? "HOLDS" : "DEVIATES");
  std::printf("note: at AIGML_SCALE=1 the dataset is %d variants/design vs the paper's 40k;\n"
              "      accuracy improves with scale (run with AIGML_SCALE=10 or more).\n",
              bench::variants_per_design());
  return 0;
}
