// Fig. 1 — Scatter: post-mapping circuit delay vs. the number of AIG levels.
//
// Paper: for AIG variants of a multiplier design, the Pearson correlation
// between AIG level count (the proxy delay metric) and post-mapping maximum
// delay is only ~0.74; the best post-mapping delay is NOT achieved by the
// minimum-level AIG, and some lower-level AIG has >1.5x the optimal delay.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "bench/common.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "mapper/mapper.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace aigml;

namespace {

struct VariantPoint {
  std::uint32_t levels = 0;
  std::size_t nodes = 0;
  double delay_ps = 0.0;
  double area_um2 = 0.0;
};

std::vector<VariantPoint> generate_variant_pool(const aig::Aig& base, int count,
                                                std::uint64_t seed) {
  const auto& lib = cell::mini_sky130();
  Rng rng(seed);
  std::vector<aig::Aig> pool{base.cleanup()};
  std::unordered_set<std::uint64_t> seen{pool.front().structural_hash()};
  std::vector<VariantPoint> points;
  auto add_point = [&](const aig::Aig& g) {
    const auto netlist = map::map_to_cells(g, lib);
    const auto sta = sta::run_sta(netlist, lib, {});
    points.push_back(VariantPoint{aig::aig_level(g), g.num_ands(), sta.max_delay_ps,
                                  sta.total_area_um2});
  };
  add_point(pool.front());
  int attempts = 0;
  while (static_cast<int>(points.size()) < count && attempts < count * 20) {
    ++attempts;
    const std::size_t n = pool.size();
    const std::size_t pick = std::max(rng.next_below(n), rng.next_below(n));
    aig::Aig candidate = flow::random_variant_step(pool[pick], rng);
    if (!seen.insert(candidate.structural_hash()).second) continue;
    add_point(candidate);
    pool.push_back(std::move(candidate));
  }
  return points;
}

}  // namespace

int main() {
  bench::print_header("Fig. 1", "post-mapping delay vs AIG levels (proxy miscorrelation)");
  const int count = scaled(400, 40);
  std::printf("workload: 7x7 array multiplier, %d unique AIG variants\n\n", count);

  const auto points = generate_variant_pool(gen::multiplier(7), count, 0xF161);

  std::vector<double> levels, delays;
  for (const auto& p : points) {
    levels.push_back(static_cast<double>(p.levels));
    delays.push_back(p.delay_ps);
  }
  const double r = pearson(levels, delays);
  const double rho = spearman(levels, delays);

  // Scatter summary: per-level delay spread (the textual form of the plot).
  std::printf("%-8s %-8s %-12s %-12s %-12s\n", "levels", "count", "min_ps", "mean_ps", "max_ps");
  std::uint32_t min_level = ~0u, max_level = 0;
  for (const auto& p : points) {
    min_level = std::min(min_level, p.levels);
    max_level = std::max(max_level, p.levels);
  }
  for (std::uint32_t lvl = min_level; lvl <= max_level; ++lvl) {
    RunningStats s;
    for (const auto& p : points) {
      if (p.levels == lvl) s.add(p.delay_ps);
    }
    if (s.count() == 0) continue;
    std::printf("%-8u %-8zu %-12.1f %-12.1f %-12.1f\n", lvl, s.count(), s.min(), s.mean(),
                s.max());
  }

  // Best-delay point vs minimum-level points.
  const auto best = *std::min_element(points.begin(), points.end(),
                                      [](const auto& a, const auto& b) { return a.delay_ps < b.delay_ps; });
  double best_delay_at_min_level = 1e300;
  double worst_delay_below_best_level = 0.0;
  for (const auto& p : points) {
    if (p.levels == min_level) best_delay_at_min_level = std::min(best_delay_at_min_level, p.delay_ps);
    if (p.levels <= best.levels) {
      worst_delay_below_best_level = std::max(worst_delay_below_best_level, p.delay_ps);
    }
  }

  std::printf("\nbest delay: %.1f ps at %u levels (min level in pool: %u)\n", best.delay_ps,
              best.levels, min_level);
  std::printf("best delay among min-level AIGs: %.1f ps (%.2fx the true optimum)\n",
              best_delay_at_min_level, best_delay_at_min_level / best.delay_ps);
  std::printf("worst delay among AIGs with <= best-point levels: %.2fx optimum\n\n",
              worst_delay_below_best_level / best.delay_ps);

  char measured[256];
  std::snprintf(measured, sizeof measured,
                "Pearson r = %.2f (Spearman rho = %.2f) over %zu variants; "
                "min-level AIG is %.2fx the best delay",
                r, rho, points.size(), best_delay_at_min_level / best.delay_ps);
  bench::print_claim(
      "correlation between max delay and AIG levels is only 0.74; the best mapped delay does "
      "not come from the minimum-level AIG; a lower-level AIG can be >1.5x slower",
      measured);
  const bool shape_holds = r > 0.3 && r < 0.97;
  std::printf("shape %s: correlation is positive but clearly imperfect\n",
              shape_holds ? "HOLDS" : "DEVIATES");
  return 0;
}
