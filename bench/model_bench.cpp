// Model container + inference-kernel bench: gates the two perf claims of
// the .gbdt2 subsystem (DESIGN.md §13) and re-proves the correctness
// contract on the bench-sized model:
//
//   1. load: mmap'ed .gbdt2 load is >= 10x faster than parsing the same
//      ensemble from the text .gbdt format,
//   2. batch: the SoA batched predict_all is >= 4x faster than the scalar
//      per-row walk over the same matrix, and
//   3. identity: v2-loaded predictions at quant=none are bit-identical to
//      the text-loaded model's, and batched == scalar exactly.
//
// Also reports the measured fp16/int16 quantization error (normalized to
// the prediction spread) so the error model in DESIGN.md stays anchored to
// a number CI reproduces.  Emits BENCH_model.json; run with --smoke for a
// CI-sized workload.  Timings are min-of-reps to shed scheduler noise.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/model_v2.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace aigml;

namespace {

namespace fs = std::filesystem;

ml::Dataset synthetic(std::size_t rows, std::size_t width, std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < width; ++i) names.push_back("f" + std::to_string(i));
  ml::Dataset d(names);
  Rng rng(seed);
  std::vector<double> row(width);
  for (std::size_t i = 0; i < rows; ++i) {
    for (double& v : row) v = rng.next_double(-10.0, 10.0);
    const double label = 3.0 * row[0] - 2.0 * row[1] + row[2] * row[3] +
                         0.5 * std::abs(row[4]) + 0.25 * static_cast<double>(rng.next_below(8));
    d.append(row, label, "bench");
  }
  return d;
}

std::vector<double> random_matrix(std::uint64_t seed, std::size_t rows, std::size_t width) {
  Rng rng(seed);
  std::vector<double> values(rows * width);
  for (double& v : values) v = rng.next_double(-12.0, 12.0);
  return values;
}

template <typename Fn>
double min_of_reps(int reps, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer t;
    fn();
    best = rep == 0 ? t.elapsed_s() : std::min(best, t.elapsed_s());
  }
  return best;
}

struct QuantError {
  double max_norm = 0.0;
  double rmse_norm = 0.0;
};

QuantError quant_error(const std::vector<double>& ref, const std::vector<double>& got) {
  double lo = ref[0], hi = ref[0], worst = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    lo = std::min(lo, ref[i]);
    hi = std::max(hi, ref[i]);
    const double err = std::abs(got[i] - ref[i]);
    worst = std::max(worst, err);
    sum_sq += err * err;
  }
  const double spread = hi - lo > 0.0 ? hi - lo : 1.0;
  QuantError e;
  e.max_norm = worst / spread;
  e.rmse_norm = std::sqrt(sum_sq / static_cast<double>(ref.size())) / spread;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_model.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  // A serving-shaped ensemble: enough trees/depth that the text parser does
  // real work and the batched kernel has a forest worth streaming.
  const std::size_t width = 22;
  ml::GbdtParams params;
  params.num_trees = smoke ? 150 : 400;
  params.max_depth = 6;
  const ml::Dataset data = synthetic(smoke ? 800 : 2000, width, 0xB0);
  std::printf("model bench: training %d trees (depth %d) on %zu rows...\n", params.num_trees,
              params.max_depth, data.num_rows());
  const ml::GbdtModel trained = ml::GbdtModel::train(data, params);
  std::printf("model bench: %zu trees, %zu flat nodes\n", trained.num_trees(),
              trained.forest_nodes().size());

  const fs::path dir = fs::temp_directory_path() / "aigml_model_bench";
  fs::create_directories(dir);
  const fs::path text_path = dir / "m.gbdt";
  const fs::path v2_path = dir / "m.gbdt2";
  trained.save(text_path);
  trained.save_v2(v2_path);
  const auto text_bytes = fs::file_size(text_path);
  const auto v2_bytes = fs::file_size(v2_path);

  // ---- load: text parse vs mmap ---------------------------------------------
  const int load_reps = smoke ? 5 : 10;
  const double text_load_s =
      min_of_reps(load_reps, [&] { (void)ml::GbdtModel::load(text_path); });
  const double v2_load_s =
      min_of_reps(load_reps, [&] { (void)ml::GbdtModel::load_v2(v2_path); });
  const double load_speedup = v2_load_s > 0.0 ? text_load_s / v2_load_s : 0.0;
  std::printf("load: text %.2f ms (%zu KB), v2 %.2f ms (%zu KB) -> %.1fx\n",
              1e3 * text_load_s, static_cast<std::size_t>(text_bytes) / 1024,
              1e3 * v2_load_s, static_cast<std::size_t>(v2_bytes) / 1024, load_speedup);

  // ---- identity: text == v2 at quant=none, batched == scalar -----------------
  const ml::GbdtModel from_text = ml::GbdtModel::load(text_path);
  const ml::GbdtModel from_v2 = ml::GbdtModel::load_v2(v2_path);
  const std::size_t rows = smoke ? 4096 : 16384;
  const auto values = random_matrix(0xB1, rows, width);
  const auto batched = from_v2.predict_all(values, rows);
  std::vector<double> scalar(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    scalar[r] = from_text.predict(std::span<const double>(values.data() + r * width, width));
  }
  const bool identical = batched == scalar;
  std::printf("identity: v2 batched vs text scalar over %zu rows -> %s\n", rows,
              identical ? "BIT-IDENTICAL" : "MISMATCH");

  // ---- batch: SoA kernel vs scalar walk (same mapped model both legs) --------
  const int predict_reps = smoke ? 3 : 5;
  const double batched_s =
      min_of_reps(predict_reps, [&] { (void)from_v2.predict_all(values, rows); });
  const double scalar_s = min_of_reps(predict_reps, [&] {
    double sink = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      sink += from_v2.predict(std::span<const double>(values.data() + r * width, width));
    }
    if (!std::isfinite(sink)) std::abort();  // keep the loop observable
  });
  const double batch_speedup = batched_s > 0.0 ? scalar_s / batched_s : 0.0;
  std::printf("batch: scalar %.1f ms, batched %.1f ms over %zu rows -> %.2fx "
              "(%.0f ns/row batched)\n",
              1e3 * scalar_s, 1e3 * batched_s, rows, batch_speedup,
              1e9 * batched_s / static_cast<double>(rows));

  // ---- quantization error (informational; gated loosely) ---------------------
  const ml::GbdtModel fp16 = ml::GbdtModel::load_v2(v2_path, ml::QuantMode::kFp16);
  const ml::GbdtModel int16 = ml::GbdtModel::load_v2(v2_path, ml::QuantMode::kInt16);
  const QuantError fp16_err = quant_error(batched, fp16.predict_all(values, rows));
  const QuantError int16_err = quant_error(batched, int16.predict_all(values, rows));
  std::printf("quant: fp16 max %.4f%% / rmse %.4f%%, int16 max %.4f%% / rmse %.4f%% "
              "(of prediction spread)\n",
              100.0 * fp16_err.max_norm, 100.0 * fp16_err.rmse_norm,
              100.0 * int16_err.max_norm, 100.0 * int16_err.rmse_norm);
  const bool quant_sane = fp16_err.max_norm < 0.05 && int16_err.max_norm < 0.05;

  const bool load_ok = load_speedup >= 10.0;
  const bool batch_ok = batch_speedup >= 4.0;
  std::printf("gate: identity %s, load %.1fx (need >= 10x) %s, batch %.2fx (need >= 4x) %s, "
              "quant error %s -> %s\n",
              identical ? "PASS" : "FAIL", load_speedup, load_ok ? "PASS" : "FAIL",
              batch_speedup, batch_ok ? "PASS" : "FAIL", quant_sane ? "PASS" : "FAIL",
              identical && load_ok && batch_ok && quant_sane ? "PASS" : "FAIL");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"model\",\n  \"trees\": " << trained.num_trees()
      << ",\n  \"nodes\": " << trained.forest_nodes().size() << ",\n  \"rows\": " << rows
      << ",\n  \"text_bytes\": " << text_bytes << ",\n  \"v2_bytes\": " << v2_bytes
      << ",\n  \"text_load_ms\": " << 1e3 * text_load_s
      << ",\n  \"v2_load_ms\": " << 1e3 * v2_load_s
      << ",\n  \"load_speedup\": " << load_speedup
      << ",\n  \"scalar_predict_ms\": " << 1e3 * scalar_s
      << ",\n  \"batched_predict_ms\": " << 1e3 * batched_s
      << ",\n  \"batch_speedup\": " << batch_speedup
      << ",\n  \"batched_ns_per_row\": " << 1e9 * batched_s / static_cast<double>(rows)
      << ",\n  \"fp16_max_err_norm\": " << fp16_err.max_norm
      << ",\n  \"fp16_rmse_norm\": " << fp16_err.rmse_norm
      << ",\n  \"int16_max_err_norm\": " << int16_err.max_norm
      << ",\n  \"int16_rmse_norm\": " << int16_err.rmse_norm
      << ",\n  \"bit_identical\": " << (identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  fs::remove_all(dir);
  return identical && load_ok && batch_ok && quant_sane ? 0 : 1;
}
