// Speculative parallel search bench: runs the same windowed SA workload
// through the serial engine (par=0) and the parallel engine (par=1) at 2 and
// 8 threads, and gates on both halves of the PR contract (DESIGN.md §12):
//
//   1. all three trajectories are bit-identical (always enforced — this is
//      the determinism contract, independent of the machine), and
//   2. committed-move throughput at 8 threads is >= 2x the serial engine
//      (enforced only on runners with >= 4 hardware threads; a 1-core
//      container cannot speed anything up and would only measure pool
//      overhead — the JSON records whether the gate was live).
//
// Emits BENCH_spec.json so the parallel-search perf trajectory is tracked
// across PRs.  Run with --smoke for a CI-sized workload.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/designs.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"
#include "transforms/scripts.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

using namespace aigml;

namespace {

ml::GbdtModel train_standin(const aig::Aig& base, bool area_label, int num_trees) {
  // Label quality is irrelevant to engine throughput; levels / AND counts of
  // script variants give the trees realistic structure to traverse.
  ml::Dataset data(features::feature_names());
  const auto& registry = transforms::script_registry();
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    const aig::Aig g = registry.apply(registry.random_index(rng), base);
    const double label = area_label ? static_cast<double>(g.num_ands())
                                    : static_cast<double>(aig::aig_level(g));
    data.append(features::extract(g), label, "bench");
  }
  ml::GbdtParams params;
  params.num_trees = num_trees;
  params.max_depth = 5;
  return ml::GbdtModel::train(data, params);
}

bool same_trajectory(const opt::OptResult& a, const opt::OptResult& b) {
  if (a.history.size() != b.history.size() || a.eval_count != b.eval_count ||
      a.spec.rounds != b.spec.rounds || a.spec.committed != b.spec.committed ||
      a.spec.aborted != b.spec.aborted) {
    return false;
  }
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].script_index != b.history[i].script_index ||
        a.history[i].delay != b.history[i].delay || a.history[i].area != b.history[i].area ||
        a.history[i].cost != b.history[i].cost ||
        a.history[i].accepted != b.history[i].accepted) {
      return false;
    }
  }
  return a.best_cost == b.best_cost && a.best.structural_hash() == b.best.structural_hash();
}

struct Leg {
  opt::OptResult result;
  double seconds = 0.0;  ///< min-of-2 total wall-clock
  bool self_consistent = true;
};

// Runs the configuration twice and keeps the faster leg's timing (min-of-N
// to shed scheduler noise on shared CI runners); the two runs must
// themselves be bit-identical or the leg reports a mismatch.
Leg run_leg(const aig::Aig& g, const opt::SaParams& base_params, bool parallel, int threads,
            const ml::GbdtModel& delay_model, const ml::GbdtModel& area_model) {
  opt::SaParams params = base_params;
  params.parallel = parallel;
  set_default_threads(parallel ? threads : 0);
  Leg leg;
  for (int rep = 0; rep < 2; ++rep) {
    opt::MlCost cost(delay_model, area_model);
    opt::OptResult result = opt::simulated_annealing(g, cost, params);
    if (rep == 0) {
      leg.result = std::move(result);
      leg.seconds = leg.result.total_seconds;
    } else {
      leg.self_consistent = same_trajectory(leg.result, result);
      leg.seconds = std::min(leg.seconds, result.total_seconds);
    }
  }
  set_default_threads(0);
  return leg;
}

double ms_per_commit(const Leg& leg) {
  return leg.result.spec.committed > 0
             ? 1e3 * leg.seconds / static_cast<double>(leg.result.spec.committed)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_spec.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  // EX54 is the largest generated design — big enough that per-proposal
  // transform + evaluation work dominates the serial DECIDE phase, which is
  // the regime speculative parallelism exists for.
  const char* design = "EX54";
  const aig::Aig g = gen::build_design(design);
  const int iterations = smoke ? 160 : 320;
  const int windows = 8;

  const ml::GbdtModel delay_model = train_standin(g, false, smoke ? 120 : 240);
  const ml::GbdtModel area_model = train_standin(g, true, smoke ? 120 : 240);

  opt::SaParams params;
  params.iterations = iterations;
  params.seed = 7;
  params.weight_delay = 1.0;
  params.weight_area = 0.5;
  params.windows = windows;

  std::printf("spec bench: design=%s (%zu ands), %d proposals, windows=%d, ml cost\n", design,
              g.num_ands(), iterations, windows);

  const Leg serial = run_leg(g, params, /*parallel=*/false, 0, delay_model, area_model);
  const Leg par2 = run_leg(g, params, /*parallel=*/true, 2, delay_model, area_model);
  const Leg par8 = run_leg(g, params, /*parallel=*/true, 8, delay_model, area_model);

  const bool identical = same_trajectory(serial.result, par2.result) &&
                         same_trajectory(serial.result, par8.result) &&
                         serial.self_consistent && par2.self_consistent && par8.self_consistent;
  const double speedup_8t = par8.seconds > 0.0 ? serial.seconds / par8.seconds : 0.0;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool throughput_gate = hw_threads >= 4;

  const auto& spec = serial.result.spec;
  std::printf("rounds %llu, proposed %llu, committed %llu, aborted %llu (%.1f%% abort rate)\n",
              static_cast<unsigned long long>(spec.rounds),
              static_cast<unsigned long long>(spec.proposed),
              static_cast<unsigned long long>(spec.committed),
              static_cast<unsigned long long>(spec.aborted), 100.0 * spec.abort_rate());
  std::printf("ms/commit: serial %.2f, par=1@2t %.2f, par=1@8t %.2f -> %.2fx at 8t (%s)\n",
              ms_per_commit(serial), ms_per_commit(par2), ms_per_commit(par8), speedup_8t,
              identical ? "IDENTICAL" : "MISMATCH");
  std::printf("gate: trajectories %s; throughput %s (%u hw threads)%s\n",
              identical ? "identical" : "MISMATCH",
              throughput_gate ? (speedup_8t >= 2.0 ? "PASS" : "FAIL") : "skipped", hw_threads,
              throughput_gate ? " need >= 2x at 8 threads" : " — needs >= 4 to be meaningful");

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"spec\",\n  \"design\": \"" << design
      << "\",\n  \"ands\": " << g.num_ands() << ",\n  \"proposals\": " << iterations
      << ",\n  \"windows\": " << windows << ",\n  \"rounds\": " << spec.rounds
      << ",\n  \"committed\": " << spec.committed << ",\n  \"aborted\": " << spec.aborted
      << ",\n  \"abort_rate\": " << spec.abort_rate()
      << ",\n  \"ms_per_commit_serial\": " << ms_per_commit(serial)
      << ",\n  \"ms_per_commit_par_2t\": " << ms_per_commit(par2)
      << ",\n  \"ms_per_commit_par_8t\": " << ms_per_commit(par8)
      << ",\n  \"speedup_8t\": " << speedup_8t << ",\n  \"hardware_threads\": " << hw_threads
      << ",\n  \"throughput_gate_enforced\": " << (throughput_gate ? "true" : "false")
      << ",\n  \"identical_trajectories\": " << (identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) return 1;
  return throughput_gate && speedup_8t < 2.0 ? 1 : 0;
}
