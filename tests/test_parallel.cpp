// Tests for the parallel labeling subsystem: ThreadPool semantics, the
// datagen determinism contract (same seed => identical datasets at any
// thread count), AnalysisCache-vs-legacy equivalence, and flat-forest GBDT
// inference consistency.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "aig/analysis.hpp"
#include "celllib/library.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "transforms/shuffle.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out = pool.parallel_map<std::size_t>(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, EmptyRangeAndReuse) {
  ThreadPool pool(3);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
  // The pool must survive many consecutive jobs (epoch handling).
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(Rng, TaskForkIsDeterministicAndConst) {
  Rng parent(42);
  const std::uint64_t before = parent.next();
  Rng parent2(42);
  (void)parent2.next();
  // Same parent state + same task id => same stream; parent not advanced.
  Rng a = parent.fork(std::uint64_t{7});
  Rng b = parent2.fork(std::uint64_t{7});
  EXPECT_EQ(a.next(), b.next());
  Rng c = parent.fork(std::uint64_t{8});
  Rng d = parent.fork(std::uint64_t{7});
  EXPECT_NE(c.next(), d.next());
  EXPECT_EQ(parent.next(), parent2.next());
  (void)before;
}

// ---- datagen determinism ------------------------------------------------------

std::string dataset_csv(const ml::Dataset& d) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("aigml_det_" + std::to_string(::getpid()) + ".csv");
  d.save(path);
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::filesystem::remove(path);
  return ss.str();
}

TEST(DatagenDeterminism, SameSeedAnyThreadCountByteIdenticalCsv) {
  const aig::Aig base = gen::adder_cla(4);
  const auto& lib = cell::mini_sky130();
  flow::DataGenParams params;
  params.num_variants = 20;
  params.seed = 0xfeedULL;

  params.num_threads = 1;
  const auto ref = flow::generate_dataset(base, "cla4", lib, params);
  EXPECT_EQ(ref.unique_variants, 20u);
  const std::string ref_delay = dataset_csv(ref.delay);
  const std::string ref_area = dataset_csv(ref.area);

  for (const int threads : {2, 8}) {
    params.num_threads = threads;
    const auto got = flow::generate_dataset(base, "cla4", lib, params);
    EXPECT_EQ(got.unique_variants, ref.unique_variants);
    EXPECT_EQ(dataset_csv(got.delay), ref_delay) << "threads=" << threads;
    EXPECT_EQ(dataset_csv(got.area), ref_area) << "threads=" << threads;
  }
}

TEST(DatagenDeterminism, DifferentSeedsDiffer) {
  const aig::Aig base = gen::adder_cla(4);
  const auto& lib = cell::mini_sky130();
  flow::DataGenParams params;
  params.num_variants = 10;
  params.seed = 1;
  const auto a = flow::generate_dataset(base, "cla4", lib, params);
  params.seed = 2;
  const auto b = flow::generate_dataset(base, "cla4", lib, params);
  EXPECT_NE(dataset_csv(a.delay), dataset_csv(b.delay));
}

// ---- AnalysisCache equivalence ------------------------------------------------

std::vector<aig::Aig> equivalence_corpus() {
  std::vector<aig::Aig> corpus;
  corpus.push_back(gen::multiplier(4));
  corpus.push_back(gen::adder_kogge_stone(8));
  corpus.push_back(gen::alu(4));
  corpus.push_back(gen::parity_tree(16));
  corpus.push_back(gen::comparator(6));
  // Randomly restructured variants exercise irregular fanout/depth shapes.
  Rng rng(0xcafeULL);
  for (int i = 0; i < 6; ++i) {
    const aig::Aig& base = corpus[static_cast<std::size_t>(i) % 5];
    corpus.push_back(transforms::randomized_rebalance(base, rng.next()));
    corpus.push_back(transforms::randomized_resynthesis(base, rng.next()));
  }
  return corpus;
}

TEST(AnalysisCache, MatchesLegacyTraversals) {
  for (const aig::Aig& g : equivalence_corpus()) {
    const aig::AnalysisCache cache(g);
    EXPECT_EQ(cache.levels(), aig::levels(g));
    EXPECT_EQ(cache.depths(), aig::node_depths(g));
    EXPECT_EQ(cache.fanouts(), aig::fanout_counts(g));
    EXPECT_EQ(cache.path_counts(), aig::path_counts(g));
    EXPECT_EQ(cache.critical_nodes(), aig::critical_path_nodes(g));
    EXPECT_EQ(cache.aig_level(), aig::aig_level(g));

    const auto fanout = aig::fanout_counts(g);
    std::vector<double> w(g.num_nodes());
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<double>(fanout[i]);
    EXPECT_EQ(cache.fanout_weighted_depths(), aig::weighted_depths(g, w));
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = fanout[i] >= 2 ? 1.0 : 0.0;
    EXPECT_EQ(cache.binary_weighted_depths(), aig::weighted_depths(g, w));

    // And the feature vector built on the cache matches the one-shot path.
    const auto f1 = features::extract(g);
    const auto f2 = features::extract(g, cache);
    for (int i = 0; i < features::kNumFeatures; ++i) {
      EXPECT_DOUBLE_EQ(f1[static_cast<std::size_t>(i)], f2[static_cast<std::size_t>(i)]);
    }
  }
}

// ---- flat-forest GBDT ---------------------------------------------------------

TEST(GbdtFlatForest, SerializeRoundTripPredictsIdentically) {
  ml::Dataset train(features::feature_names());
  Rng rng(99);
  std::vector<double> row(features::kNumFeatures);
  for (int i = 0; i < 200; ++i) {
    for (auto& v : row) v = rng.next_double(0, 50);
    train.append(row, row[0] * 3.0 + row[5] - 0.1 * row[11] + rng.next_gaussian(), "syn");
  }
  ml::GbdtParams p;
  p.num_trees = 30;
  const auto model = ml::GbdtModel::train(train, p);

  std::stringstream buf;
  model.serialize(buf);
  const auto loaded = ml::GbdtModel::deserialize(buf);

  const auto a = model.predict_all(train);
  const auto b = loaded.predict_all(train);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // predict_all must agree with row-at-a-time predict.
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    EXPECT_EQ(a[i], model.predict(train.row(i)));
  }
}

}  // namespace
}  // namespace aigml
