// Tests for the transform family.  The paramount property — checked for
// every primitive on every circuit class — is functional equivalence.
// Secondary properties: balance never increases depth, transforms are
// deterministic, scripts compose, and the registry has exactly the paper's
// 103 combinations.

#include <gtest/gtest.h>

#include <set>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "transforms/balance.hpp"
#include "transforms/resynth.hpp"
#include "transforms/scripts.hpp"
#include "transforms/shuffle.hpp"

namespace aigml::transforms {
namespace {

using aig::Aig;
using aig::aig_level;
using aig::equivalent;

Aig circuit_by_name(const std::string& name) {
  if (name == "mult6") return gen::multiplier(6);
  if (name == "cla8") return gen::adder_cla(8);
  if (name == "alu4") return gen::alu(4);
  if (name == "parity9") return gen::parity_tree(9);
  if (name == "prio8") return gen::priority_encoder(8);
  if (name == "cmp6") return gen::comparator(6);
  if (name == "ctrl") return gen::random_control(11, 5, 280, 3);
  return gen::build_design(name);
}

class PrimitiveEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(PrimitiveEquivalence, PreservesFunctionAndInterface) {
  const auto [primitive, circuit] = GetParam();
  const Aig g = circuit_by_name(circuit);
  const Aig t = apply_primitive(primitive, g);
  EXPECT_EQ(t.num_inputs(), g.num_inputs());
  EXPECT_EQ(t.num_outputs(), g.num_outputs());
  EXPECT_TRUE(t.check_acyclic_order());
  const auto eq = aig::check_equivalence(g, t);
  EXPECT_TRUE(eq.equivalent) << primitive << " broke " << circuit << " output "
                             << eq.failing_output;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimitivesAllCircuits, PrimitiveEquivalence,
    ::testing::Combine(::testing::Values("b", "rw", "rwd", "rw3", "rf", "rfd", "rs"),
                       ::testing::Values("mult6", "cla8", "alu4", "parity9", "prio8", "cmp6",
                                         "ctrl", "EX00", "EX68")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" + std::get<1>(info.param);
    });

TEST(Balance, NeverIncreasesDepth) {
  for (const char* name : {"mult6", "cla8", "alu4", "ctrl", "EX00", "EX68", "EX02"}) {
    const Aig g = circuit_by_name(name);
    const Aig b = balance(g);
    EXPECT_LE(aig_level(b), aig_level(g)) << name;
  }
}

TEST(Balance, FlattensAndChainToLogDepth) {
  // A linear chain of 8 ANDs must balance to depth 3.
  Aig g;
  std::vector<aig::Lit> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(g.add_input());
  aig::Lit acc = ins[0];
  for (int i = 1; i < 8; ++i) acc = g.make_and(acc, ins[i]);
  g.add_output(acc);
  EXPECT_EQ(aig_level(g), 7u);
  const Aig b = balance(g);
  EXPECT_EQ(aig_level(b), 3u);
  EXPECT_TRUE(equivalent(g, b));
}

TEST(Balance, RespectsComplementBoundaries) {
  // !(a&b) & c: the complemented edge is a tree boundary; function preserved.
  Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  const auto c = g.add_input();
  g.add_output(g.make_and(g.make_nand(a, b), c));
  const Aig t = balance(g);
  EXPECT_TRUE(equivalent(g, t));
}

TEST(Rewrite, ReducesRedundantLogic) {
  // mux(s, x, x) == x: rewriting should collapse it.
  Aig g;
  const auto s = g.add_input();
  const auto x = g.add_input();
  const auto y = g.add_input();
  const auto redundant = g.make_mux(s, g.make_and(x, y), g.make_and(x, y));
  g.add_output(redundant);
  EXPECT_GE(g.num_ands(), 3u);
  const Aig t = rewrite(g);
  EXPECT_TRUE(equivalent(g, t));
  EXPECT_LE(t.num_ands(), 1u);
}

TEST(Rewrite, CollapsesReconvergentConstant) {
  // AND(a&b, a&!b) == 0 — zero-leaf cut candidate wins.
  Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  const auto x = g.make_and(a, b);
  const auto y = g.make_and(a, aig::lit_not(b));
  g.add_output(g.make_and(x, y), "zero");
  const Aig t = rewrite(g);
  EXPECT_TRUE(equivalent(g, t));
  EXPECT_EQ(t.num_ands(), 0u);
}

TEST(Rewrite, NeverIncreasesNodeCount) {
  // The default reconstruction is always a candidate, so a rewrite pass can
  // only tie or shrink the (live) node count.
  for (const char* name : {"mult6", "cla8", "alu4", "ctrl", "EX00"}) {
    const Aig g = circuit_by_name(name).cleanup();
    const Aig t = rewrite(g);
    EXPECT_LE(t.num_ands(), g.num_ands()) << name;
  }
}

TEST(RewriteDepth, TendsToReduceDepthOnDeepCircuits) {
  const Aig g = circuit_by_name("EX02");
  const Aig t = rewrite_depth(g);
  EXPECT_TRUE(t.num_ands() > 0);
  // Depth preference must not *increase* depth beyond the original.
  EXPECT_LE(aig_level(t), aig_level(g) + 1);
}

TEST(Resub, FindsSharedDivisors) {
  // z = (a&b)|c and w = a&b: resub of a cone recomputing a&b should reuse it.
  Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  const auto c = g.add_input();
  const auto ab = g.make_and(a, b);
  g.add_output(g.make_or(ab, c), "z");
  // A second, structurally different computation of the same function:
  const auto ab2 = aig::lit_not(g.make_nand(b, a));
  g.add_output(g.make_or(ab2, aig::lit_not(aig::lit_not(c))), "w");
  const Aig t = resub(g);
  EXPECT_TRUE(equivalent(g, t));
  // Structural hashing already shares nand(b,a)==and(a,b); resub must not
  // blow the graph up.
  EXPECT_LE(t.num_ands(), g.num_ands());
}

TEST(Transforms, DeterministicAcrossRuns) {
  const Aig g = circuit_by_name("ctrl");
  for (const char* p : {"b", "rw", "rf", "rs"}) {
    const Aig t1 = apply_primitive(p, g);
    const Aig t2 = apply_primitive(p, g);
    EXPECT_EQ(t1.structural_hash(), t2.structural_hash()) << p;
  }
}

TEST(Transforms, UnknownPrimitiveThrows) {
  const Aig g = gen::parity_tree(3);
  EXPECT_THROW((void)apply_primitive("xyzzy", g), std::out_of_range);
}

TEST(Transforms, ParamValidation) {
  const Aig g = gen::parity_tree(3);
  ResynthParams p;
  p.cut_size = 1;
  EXPECT_THROW((void)resynthesize(g, p), std::invalid_argument);
  p.cut_size = 7;
  EXPECT_THROW((void)resynthesize(g, p), std::invalid_argument);
  p.cut_size = 4;
  p.reconv_max_leaves = 1;
  EXPECT_THROW((void)resynthesize(g, p), std::invalid_argument);
}

// ---- randomized restructurings (variant generation) ------------------------------

class ShuffleEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffleEquivalence, RandomizedRebalancePreservesFunction) {
  for (const char* name : {"mult6", "cla8", "alu4", "EX00", "EX68"}) {
    const Aig g = circuit_by_name(name);
    const Aig t = randomized_rebalance(g, GetParam());
    EXPECT_TRUE(equivalent(g, t)) << name << " seed " << GetParam();
    EXPECT_EQ(t.num_inputs(), g.num_inputs());
    EXPECT_EQ(t.num_outputs(), g.num_outputs());
  }
}

TEST_P(ShuffleEquivalence, RandomizedResynthesisPreservesFunction) {
  for (const char* name : {"mult6", "cla8", "parity9", "EX00", "EX68"}) {
    const Aig g = circuit_by_name(name);
    const Aig t = randomized_resynthesis(g, GetParam(), 0.3);
    EXPECT_TRUE(equivalent(g, t)) << name << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffleEquivalence, ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(Shuffle, DeterministicInSeed) {
  const Aig g = circuit_by_name("EX00");
  EXPECT_EQ(randomized_rebalance(g, 7).structural_hash(),
            randomized_rebalance(g, 7).structural_hash());
  EXPECT_EQ(randomized_resynthesis(g, 7).structural_hash(),
            randomized_resynthesis(g, 7).structural_hash());
}

TEST(Shuffle, SeedsProduceStructuralDiversity) {
  // The whole point of the randomized moves: many distinct structures from
  // one source graph (the deterministic scripts saturate quickly).
  const Aig g = circuit_by_name("cla8");
  std::set<std::uint64_t> hashes;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    hashes.insert(randomized_rebalance(g, seed).structural_hash());
    hashes.insert(randomized_resynthesis(g, seed, 0.4).structural_hash());
  }
  // At least ~40% distinct across 48 draws (scripts alone saturate below 10).
  EXPECT_GE(hashes.size(), 20u);
}

// ---- scripts -------------------------------------------------------------------

TEST(Scripts, RegistryHasExactly103DistinctScripts) {
  const auto& reg = script_registry();
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(kNumScripts));
  std::set<std::string> names;
  for (const auto& s : reg.scripts()) names.insert(s.name);
  EXPECT_EQ(names.size(), reg.size());
  // Composition: 7 singletons + 49 pairs + 47 triples.
  int len1 = 0, len2 = 0, len3 = 0;
  for (const auto& s : reg.scripts()) {
    if (s.steps.size() == 1) ++len1;
    if (s.steps.size() == 2) ++len2;
    if (s.steps.size() == 3) ++len3;
  }
  EXPECT_EQ(len1, 7);
  EXPECT_EQ(len2, 49);
  EXPECT_EQ(len3, 47);
}

TEST(Scripts, NamesMatchSteps) {
  const auto& reg = script_registry();
  EXPECT_EQ(reg.script(0).name, "b");
  EXPECT_EQ(reg.script(7).name, "b;b");
  for (const auto& s : reg.scripts()) {
    std::string joined;
    for (std::size_t i = 0; i < s.steps.size(); ++i) {
      if (i) joined += ';';
      joined += s.steps[i];
    }
    EXPECT_EQ(s.name, joined);
  }
}

class ScriptEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScriptEquivalence, SampledScriptsPreserveFunction) {
  const auto& reg = script_registry();
  const Aig g = gen::multiplier(5);
  const Aig t = reg.apply(GetParam(), g);
  EXPECT_TRUE(equivalent(g, t)) << reg.script(GetParam()).name;
}

INSTANTIATE_TEST_SUITE_P(Sampled, ScriptEquivalence,
                         ::testing::Values(0u, 5u, 9u, 23u, 42u, 55u, 70u, 88u, 102u));

TEST(Scripts, RandomIndexIsInRange) {
  Rng rng(3);
  const auto& reg = script_registry();
  for (int i = 0; i < 300; ++i) {
    EXPECT_LT(reg.random_index(rng), reg.size());
  }
}

TEST(Scripts, ProduceDiverseStructures) {
  // Different scripts applied to the same design should explore different
  // structures — the premise of the SA move set.
  const auto& reg = script_registry();
  const Aig g = circuit_by_name("EX00");
  std::set<std::uint64_t> hashes;
  for (const std::size_t idx : {0u, 1u, 2u, 4u, 5u, 6u, 10u, 20u, 42u}) {
    hashes.insert(reg.apply(idx, g).structural_hash());
  }
  EXPECT_GE(hashes.size(), 4u);
}

}  // namespace
}  // namespace aigml::transforms
