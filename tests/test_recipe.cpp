// Tests for the Strategy + Recipe optimization API: recipe parsing and
// round-tripping, cost-spec factories (including the serve-backed remote
// evaluator), bit-identical equivalence with the legacy free functions,
// unified budgets, observer callbacks, portfolio multi-start, run-local
// evaluator accounting, and serial-vs-parallel sweep determinism.

#include <gtest/gtest.h>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost_spec.hpp"
#include "opt/greedy.hpp"
#include "opt/portfolio.hpp"
#include "opt/recipe.hpp"
#include "opt/sa.hpp"
#include "opt/sweep.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

using aig::Aig;
using cell::mini_sky130;

// ---- recipe grammar --------------------------------------------------------------

TEST(Recipe, ParseDefaults) {
  const auto r = opt::Recipe::parse("");
  EXPECT_EQ(r.strategy, "sa");
  EXPECT_EQ(r.iterations, 200);
  EXPECT_EQ(r.cost, "proxy");
  EXPECT_DOUBLE_EQ(r.weight_delay, 1.0);
  EXPECT_DOUBLE_EQ(r.weight_area, 0.5);
  EXPECT_EQ(r.seed, 1u);
  EXPECT_DOUBLE_EQ(r.initial_temperature, 0.08);
  EXPECT_DOUBLE_EQ(r.decay, 0.97);
}

TEST(Recipe, ParseAllKeys) {
  const auto r = opt::Recipe::parse(
      "strategy=portfolio;iters=42;max_seconds=1.5;max_evals=99;wd=2;wa=0.25;seed=7;"
      "temp=0.1;decay=0.9;tol=0.02;starts=5;inner=greedy;cost=ml:models");
  EXPECT_EQ(r.strategy, "portfolio");
  EXPECT_EQ(r.iterations, 42);
  EXPECT_DOUBLE_EQ(r.max_seconds, 1.5);
  EXPECT_EQ(r.max_evals, 99u);
  EXPECT_DOUBLE_EQ(r.weight_delay, 2.0);
  EXPECT_DOUBLE_EQ(r.weight_area, 0.25);
  EXPECT_EQ(r.seed, 7u);
  EXPECT_DOUBLE_EQ(r.initial_temperature, 0.1);
  EXPECT_DOUBLE_EQ(r.decay, 0.9);
  EXPECT_DOUBLE_EQ(r.tolerance, 0.02);
  EXPECT_EQ(r.starts, 5);
  EXPECT_EQ(r.inner, "greedy");
  EXPECT_EQ(r.cost, "ml:models");
}

TEST(Recipe, ParseToleratesEmptySegmentsAndCostColons) {
  const auto r = opt::Recipe::parse(";;strategy=sa;;cost=serve:127.0.0.1:9000;;");
  EXPECT_EQ(r.strategy, "sa");
  EXPECT_EQ(r.cost, "serve:127.0.0.1:9000");
}

/// Malformed recipes throw invalid_argument whose message names the
/// offending segment (actionable, not just "parse error").
TEST(Recipe, ParseErrorsAreActionable) {
  const auto expect_throw_with = [](const std::string& text, const std::string& needle) {
    try {
      (void)opt::Recipe::parse(text);
      FAIL() << "no exception for '" << text << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  expect_throw_with("bogus=1", "unknown key 'bogus'");
  expect_throw_with("iters=abc", "not an integer");
  expect_throw_with("iters=12x", "trailing garbage");
  expect_throw_with("iters=0", "must be >= 1");
  expect_throw_with("decay=1.5", "must be in (0, 1]");
  expect_throw_with("decay=0", "must be in (0, 1]");
  expect_throw_with("strategy=genetic", "expected sa | greedy | portfolio");
  expect_throw_with("inner=portfolio", "expected sa | greedy");
  expect_throw_with("wd=", "empty value");
  expect_throw_with("justakey", "not key=value");
  expect_throw_with("tol=-0.1", "must be >= 0");
  expect_throw_with("starts=0", "must be >= 1");
}

TEST(Recipe, ToStringRoundTrips) {
  for (const char* text : {
           "",
           "strategy=sa;iters=17;temp=0.1;decay=0.93;wd=1;wa=0.3;seed=9;cost=gt",
           "strategy=greedy;iters=5;tol=0.015;cost=ml:some/dir",
           "strategy=portfolio;starts=4;inner=greedy;tol=0.1;max_evals=1000",
           "max_seconds=2.5;wd=0.1;wa=0.333333333333333314829616256247",
           "cost=serve:localhost:1234:delay,area",
           // Knobs the selected strategy ignores still round-trip.
           "strategy=greedy;temp=0.5;decay=0.5;starts=7",
           "strategy=sa;tol=0.25;inner=greedy",
       }) {
    const auto r = opt::Recipe::parse(text);
    const auto round = opt::Recipe::parse(r.to_string());
    EXPECT_EQ(r, round) << "round trip changed '" << text << "' via '" << r.to_string() << "'";
  }
}

TEST(Recipe, ToStringIsCanonical) {
  const auto r = opt::Recipe::parse("iters=30;cost=proxy;seed=5");
  EXPECT_EQ(r.to_string(),
            "strategy=sa;iters=30;temp=0.08;decay=0.97;wd=1;wa=0.5;seed=5;cost=proxy");
}

// ---- cost specs ------------------------------------------------------------------

TEST(CostSpec, FactoryBuildsEachFlavor) {
  opt::CostContext ctx;
  EXPECT_EQ(opt::make_cost("proxy", ctx)->name(), "proxy");
  ctx.library = &mini_sky130();
  EXPECT_EQ(opt::make_cost("gt", ctx)->name(), "ground-truth");
  EXPECT_EQ(opt::make_cost("truth", ctx)->name(), "ground-truth");

  // In-memory ML models via the context.
  ml::Dataset data(features::feature_names());
  const Aig g = gen::parity_tree(5);
  const auto f = features::extract(g);
  for (int i = 0; i < 8; ++i) data.append(f, 10.0, "x");
  ml::GbdtParams p;
  p.num_trees = 2;
  auto model = std::make_shared<const ml::GbdtModel>(ml::GbdtModel::train(data, p));
  ctx.delay_model = model;
  ctx.area_model = model;
  EXPECT_EQ(opt::make_cost("ml", ctx)->name(), "ml");
}

TEST(CostSpec, ErrorsAreActionable) {
  const auto expect_throw_with = [](const std::string& spec, const opt::CostContext& ctx,
                                    const std::string& needle) {
    try {
      (void)opt::make_cost(spec, ctx);
      FAIL() << "no exception for '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  opt::CostContext empty;
  expect_throw_with("gt", empty, "needs a cell library");
  expect_throw_with("ml", empty, "needs in-memory models");
  expect_throw_with("ml:/nonexistent/dir", empty, "delay.gbdt");
  expect_throw_with("serve:", empty, "expected serve:<host>:<port>");
  expect_throw_with("serve:localhost", empty, "expected serve:<host>:<port>");
  expect_throw_with("serve:localhost:", empty, "missing port");
  expect_throw_with("serve:localhost:99999", empty, "out of range");
  expect_throw_with("serve:localhost:abc", empty, "not a port number");
  expect_throw_with("serve:localhost:7000:,", empty, "empty model name");
  expect_throw_with("mystery", empty, "unknown evaluator");
  // Nothing listens on port 1: the factory reports the unreachable server
  // and how to start one.
  expect_throw_with("serve:127.0.0.1:1", empty, "cannot reach server");
}

// ---- equivalence with the legacy entry points ------------------------------------

void expect_same_trajectory(const opt::OptResult& a, const opt::OptResult& b) {
  EXPECT_EQ(a.best.structural_hash(), b.best.structural_hash());
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_DOUBLE_EQ(a.best_eval.delay, b.best_eval.delay);
  EXPECT_DOUBLE_EQ(a.best_eval.area, b.best_eval.area);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].script_index, b.history[i].script_index) << "iteration " << i;
    EXPECT_DOUBLE_EQ(a.history[i].cost, b.history[i].cost) << "iteration " << i;
    EXPECT_EQ(a.history[i].accepted, b.history[i].accepted) << "iteration " << i;
  }
}

TEST(RecipeEquivalence, SaMatchesLegacyBitIdentically) {
  const Aig g = gen::build_design("EX68");
  opt::CostContext ctx;
  ctx.library = &mini_sky130();
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    opt::SaParams params;
    params.iterations = 25;
    params.seed = seed;
    params.weight_delay = 1.0;
    params.weight_area = 0.4;
    opt::ProxyCost proxy;
    const auto legacy = opt::simulated_annealing(g, proxy, params);

    const auto recipe = opt::Recipe::parse("strategy=sa;iters=25;wd=1;wa=0.4;seed=" +
                                           std::to_string(seed) + ";cost=proxy");
    const auto modern = opt::run(recipe, g, ctx);
    expect_same_trajectory(legacy, modern);
  }
}

TEST(RecipeEquivalence, SaMatchesLegacyUnderGroundTruthCost) {
  const Aig g = gen::build_design("EX68");
  opt::CostContext ctx;
  ctx.library = &mini_sky130();
  opt::SaParams params;
  params.iterations = 8;
  params.seed = 21;
  opt::GroundTruthCost gt(mini_sky130());
  const auto legacy = opt::simulated_annealing(g, gt, params);
  const auto modern = opt::run("strategy=sa;iters=8;seed=21;cost=gt", g, ctx);
  expect_same_trajectory(legacy, modern);
}

TEST(RecipeEquivalence, GreedyMatchesLegacyBitIdentically) {
  const Aig g = gen::build_design("EX00");
  opt::CostContext ctx;
  ctx.library = &mini_sky130();
  for (const std::uint64_t seed : {5ULL, 17ULL}) {
    opt::GreedyParams params;
    params.iterations = 25;
    params.tolerance = 0.01;
    params.seed = seed;
    opt::ProxyCost proxy;
    const auto legacy = opt::greedy_descent(g, proxy, params);

    const auto modern = opt::run("strategy=greedy;iters=25;tol=0.01;seed=" +
                                     std::to_string(seed) + ";cost=proxy",
                                 g, ctx);
    expect_same_trajectory(legacy, modern);
  }
}

// ---- budgets, observers, accounting ----------------------------------------------

TEST(Strategy, EvalBudgetStopsTheRun) {
  const Aig g = gen::build_design("EX00");
  opt::CostContext ctx;
  const auto result = opt::run("strategy=sa;iters=1000;max_evals=10;cost=proxy", g, ctx);
  EXPECT_EQ(result.eval_count, 10u);  // initial eval + 9 iterations
  EXPECT_EQ(result.history.size(), 9u);
  EXPECT_EQ(result.stop_reason, opt::StopReason::kEvalBudget);
}

TEST(Strategy, NoBudgetThrows) {
  opt::ProxyCost proxy;
  const Aig g = gen::parity_tree(4);
  opt::SaParams params;
  const opt::SaStrategy strategy(params);
  opt::StopCondition stop;  // everything unlimited
  EXPECT_THROW((void)strategy.run(g, proxy, stop), std::invalid_argument);
  stop.max_iterations = -1;
  EXPECT_THROW((void)strategy.run(g, proxy, stop), std::invalid_argument);
}

TEST(Strategy, WallTimeBudgetReported) {
  opt::ProxyCost proxy;
  const Aig g = gen::build_design("EX00");
  opt::SaParams params;
  const opt::SaStrategy strategy(params);
  opt::StopCondition stop;
  stop.max_seconds = 1e-9;  // expires before the first iteration
  const auto result = strategy.run(g, proxy, stop);
  EXPECT_TRUE(result.history.empty());
  EXPECT_EQ(result.stop_reason, opt::StopReason::kWallTime);
  // The initial evaluation still defines best/initial.
  EXPECT_DOUBLE_EQ(result.best_cost, params.weight_delay + params.weight_area);
}

/// Consecutive runs sharing one evaluator each report run-local accounting
/// (the pre-Strategy sweep leaked run N's eval time into run N+1's report).
TEST(Strategy, AccountingIsRunLocalAcrossSharedEvaluator) {
  opt::ProxyCost shared;
  const Aig g = gen::build_design("EX00");
  opt::SaParams params;
  params.iterations = 10;
  opt::StopCondition stop;
  stop.max_iterations = 10;
  const opt::SaStrategy strategy(params);
  const auto first = strategy.run(g, shared, stop);
  const auto second = strategy.run(g, shared, stop);
  EXPECT_EQ(first.eval_count, 11u);   // initial + 10 iterations
  EXPECT_EQ(second.eval_count, 11u);  // not 22: deltas, not cumulative totals
  EXPECT_EQ(shared.eval_count(), 22u);
  EXPECT_LE(second.total_eval_seconds, shared.eval_seconds());
  EXPECT_GE(second.total_eval_seconds, 0.0);
}

/// Counts callbacks and checks improvements are monotone decreasing with
/// on_finish landing on the final best — the contract both single
/// strategies and portfolios must satisfy.
struct CountingObserver final : opt::Observer {
  int starts = 0, iterations = 0, improvements = 0, finishes = 0;
  double last_best = 0.0;
  void on_start(const Aig&, const opt::QualityEval&, double cost) override {
    ++starts;
    last_best = cost;
  }
  void on_iteration(int, const opt::IterationRecord&) override { ++iterations; }
  void on_improvement(int, const opt::QualityEval&, double cost) override {
    ++improvements;
    EXPECT_LT(cost, last_best);
    last_best = cost;
  }
  void on_finish(const opt::OptResult& result) override {
    ++finishes;
    EXPECT_DOUBLE_EQ(result.best_cost, last_best);
  }
};

TEST(Strategy, ObserverSeesEveryIteration) {
  CountingObserver observer;
  const Aig g = gen::multiplier(5);
  opt::CostContext ctx;
  const auto result =
      opt::run(opt::Recipe::parse("strategy=sa;iters=20;seed=5;cost=proxy"), g, ctx, &observer);
  EXPECT_EQ(observer.starts, 1);
  EXPECT_EQ(observer.finishes, 1);
  EXPECT_EQ(observer.iterations, static_cast<int>(result.history.size()));
  EXPECT_GE(observer.improvements, 1);
  EXPECT_LE(observer.improvements, static_cast<int>(result.accepted_moves()));
  EXPECT_DOUBLE_EQ(result.initial_cost, 1.5);  // wd + wa of a fresh evaluation
}

// ---- portfolio -------------------------------------------------------------------

TEST(Portfolio, KeepsBestStartAndConcatenatesHistory) {
  const Aig g = gen::build_design("EX68");
  opt::CostContext ctx;
  const auto recipe = opt::Recipe::parse("strategy=portfolio;starts=3;iters=12;seed=9");
  const auto result = opt::run(recipe, g, ctx);
  EXPECT_EQ(result.history.size(), 3u * 12u);
  EXPECT_EQ(result.eval_count, 3u * 13u);
  EXPECT_EQ(result.stop_reason, opt::StopReason::kIterations);

  // The portfolio's best can never be worse than its own first start.
  opt::ProxyCost proxy;
  opt::SaParams start0;
  start0.iterations = 12;
  start0.seed = opt::derive_seed(9, 0);
  const auto single = opt::simulated_annealing(g, proxy, start0);
  EXPECT_LE(result.best_cost, single.best_cost + 1e-12);

  // Deterministic: rerunning reproduces the identical result.
  const auto again = opt::run(recipe, g, ctx);
  EXPECT_EQ(result.best.structural_hash(), again.best.structural_hash());
  EXPECT_DOUBLE_EQ(result.best_cost, again.best_cost);
}

TEST(Portfolio, ObserverSeesOneRunWithGlobalImprovements) {
  CountingObserver observer;
  const Aig g = gen::build_design("EX68");
  opt::CostContext ctx;
  const auto result = opt::run(
      opt::Recipe::parse("strategy=portfolio;starts=3;iters=12;seed=9"), g, ctx, &observer);
  // One logical run: a single start/finish pair, iterations spanning every
  // start, and improvements that only ever lower the *global* best (the
  // CountingObserver asserts monotonicity internally).
  EXPECT_EQ(observer.starts, 1);
  EXPECT_EQ(observer.finishes, 1);
  EXPECT_EQ(observer.iterations, static_cast<int>(result.history.size()));
  EXPECT_DOUBLE_EQ(result.initial_cost, 1.5);
}

TEST(Portfolio, SharedEvalBudgetSpansStarts) {
  const Aig g = gen::build_design("EX00");
  opt::CostContext ctx;
  const auto result =
      opt::run("strategy=portfolio;starts=4;iters=10;max_evals=18;cost=proxy", g, ctx);
  EXPECT_EQ(result.eval_count, 18u);  // start 0: 11 evals; start 1 truncated at 7
  EXPECT_EQ(result.stop_reason, opt::StopReason::kEvalBudget);
}

// ---- sweep -----------------------------------------------------------------------

TEST(Sweep, ParallelMatchesSerialBitIdentically) {
  const Aig g = gen::build_design("EX68");
  opt::SweepConfig config;
  config.weight_pairs = {{1.0, 0.0}, {1.0, 0.5}, {0.5, 1.0}};
  config.decays = {0.93, 0.97};
  config.iterations = 8;
  opt::CostContext ctx;
  ctx.library = &mini_sky130();
  const auto recipes = config.to_recipes();
  ASSERT_EQ(recipes.size(), 6u);

  const auto serial = opt::run_sweep(g, recipes, ctx, 1);
  const auto parallel = opt::run_sweep(g, recipes, ctx, 4);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].recipe, parallel.runs[i].recipe);
    EXPECT_DOUBLE_EQ(serial.runs[i].ground_truth.delay, parallel.runs[i].ground_truth.delay);
    EXPECT_DOUBLE_EQ(serial.runs[i].ground_truth.area, parallel.runs[i].ground_truth.area);
    EXPECT_DOUBLE_EQ(serial.runs[i].evaluator_claimed.delay,
                     parallel.runs[i].evaluator_claimed.delay);
    EXPECT_EQ(serial.runs[i].evals, parallel.runs[i].evals);
  }
  ASSERT_EQ(serial.front.size(), parallel.front.size());
  for (std::size_t i = 0; i < serial.front.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.front[i].delay, parallel.front[i].delay);
    EXPECT_DOUBLE_EQ(serial.front[i].area, parallel.front[i].area);
    EXPECT_EQ(serial.front[i].origin, parallel.front[i].origin);
  }
}

TEST(Sweep, SeedsMatchLegacyGridOrder) {
  opt::SweepConfig config;
  config.weight_pairs = {{1.0, 0.0}, {0.5, 1.0}};
  config.decays = {0.92, 0.97};
  config.seed = 7;
  const auto recipes = config.to_recipes();
  ASSERT_EQ(recipes.size(), 4u);
  // Weights outer, decays inner, seed incrementing — the pre-recipe driver.
  EXPECT_EQ(recipes[0].seed, 7u);
  EXPECT_DOUBLE_EQ(recipes[0].decay, 0.92);
  EXPECT_EQ(recipes[1].seed, 8u);
  EXPECT_DOUBLE_EQ(recipes[1].decay, 0.97);
  EXPECT_DOUBLE_EQ(recipes[2].weight_delay, 0.5);
  EXPECT_EQ(recipes[3].seed, 10u);
}

TEST(Sweep, RequiresLibrary) {
  const Aig g = gen::parity_tree(4);
  opt::CostContext ctx;  // no library
  const auto recipes = opt::SweepConfig{}.to_recipes();
  EXPECT_THROW((void)opt::run_sweep(g, recipes, ctx), std::invalid_argument);
}

// ---- the serve-backed remote evaluator -------------------------------------------

/// Small GBDT mapping features to (levels + noise)-style labels, served
/// under both model names the remote evaluator queries.
ml::GbdtModel train_tiny_model(std::uint64_t seed) {
  const Aig base = gen::multiplier(4);
  const auto& scripts = transforms::script_registry();
  Rng rng(seed);
  ml::Dataset data(features::feature_names());
  for (int i = 0; i < 16; ++i) {
    const Aig variant = scripts.apply(scripts.random_index(rng), base);
    data.append(features::extract(variant),
                static_cast<double>(aig::aig_level(variant)) +
                    0.1 * static_cast<double>(rng.next_below(10)),
                "fx");
  }
  ml::GbdtParams params;
  params.num_trees = 20;
  params.max_depth = 3;
  params.seed = seed;
  return ml::GbdtModel::train(data, params);
}

TEST(RemoteCost, ServeCostDrivesOptimizationBitIdenticallyToLocalMl) {
  serve::ModelRegistry registry;
  registry.install("delay", train_tiny_model(0xD));
  registry.install("area", train_tiny_model(0xA));
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service, {});
  server.start();  // ephemeral port

  const Aig g = gen::multiplier(5);
  opt::CostContext local_ctx;
  local_ctx.delay_model = registry.get("delay");
  local_ctx.area_model = registry.get("area");
  auto recipe = opt::Recipe::parse("strategy=sa;iters=15;seed=6;cost=ml");
  const auto local = opt::run(recipe, g, local_ctx);

  recipe.cost = "serve:127.0.0.1:" + std::to_string(server.port());
  opt::CostContext remote_ctx;  // everything comes over the wire
  const auto remote = opt::run(recipe, g, remote_ctx);

  // %.17g round-trips IEEE doubles exactly, so the TCP path reproduces the
  // local trajectory bit for bit.
  expect_same_trajectory(local, remote);
  EXPECT_EQ(remote.eval_count, 16u);
}

TEST(RemoteCost, NamesCustomModels) {
  serve::ModelRegistry registry;
  registry.install("d2", train_tiny_model(1));
  registry.install("a2", train_tiny_model(2));
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service, {});
  server.start();

  const std::string spec =
      "serve:127.0.0.1:" + std::to_string(server.port()) + ":d2,a2";
  const auto evaluator = opt::make_cost(spec, {});
  const Aig g = gen::multiplier(4);
  const auto q = evaluator->evaluate(g);
  const auto f = features::extract(g);
  EXPECT_DOUBLE_EQ(q.delay, registry.get("d2")->predict(f));
  EXPECT_DOUBLE_EQ(q.area, registry.get("a2")->predict(f));

  // Unknown model names surface as runtime errors from evaluate().
  const auto bad = opt::make_cost(
      "serve:127.0.0.1:" + std::to_string(server.port()) + ":nope", {});
  EXPECT_THROW((void)bad->evaluate(g), std::runtime_error);
}

}  // namespace
}  // namespace aigml
