// Tests for technology mapping and static timing analysis.
//
// The central property: for every generator circuit and parameter setting,
// the mapped netlist re-extracted as an AIG must be equivalent to the source
// AIG (mapping preserves function).  STA is validated on hand-computed
// netlists and by metamorphic properties (monotonicity under load, area
// additivity, delay-vs-area mode trade-off).

#include <gtest/gtest.h>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "celllib/library.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace aigml {
namespace {

using aig::Aig;
using cell::mini_sky130;
using map::map_to_cells;
using map::MapMode;
using map::MapParams;
using net::Netlist;
using sta::run_sta;
using sta::StaParams;

// ---- netlist basics ----------------------------------------------------------

TEST(Netlist, ConstructionAndStats) {
  const auto& lib = mini_sky130();
  Netlist n;
  const auto a = n.add_pi_net(0, "a");
  const auto b = n.add_pi_net(1, "b");
  const auto y = n.add_gate(lib.cell_id("NAND2_X1"), {a, b});
  const auto z = n.add_gate(lib.cell_id("INV_X1"), {y});
  n.add_output(z, "out");
  EXPECT_EQ(n.num_gates(), 2u);
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_outputs(), 1u);
  EXPECT_TRUE(n.check_topological());
  const double area = lib.cell(lib.cell_id("NAND2_X1")).area_um2 +
                      lib.cell(lib.cell_id("INV_X1")).area_um2;
  EXPECT_DOUBLE_EQ(n.total_area_um2(lib), area);
  const auto fanout = n.net_fanout_counts();
  EXPECT_EQ(fanout[a], 1u);
  EXPECT_EQ(fanout[y], 1u);
  EXPECT_EQ(fanout[z], 0u);  // PO reference tracked separately
  EXPECT_TRUE(n.net_drives_po()[z]);
  const auto hist = n.cell_histogram(lib);
  ASSERT_EQ(hist.size(), 2u);
}

TEST(Netlist, ToAigRebuildsFunction) {
  const auto& lib = mini_sky130();
  Netlist n;
  const auto a = n.add_pi_net(0);
  const auto b = n.add_pi_net(1);
  const auto y = n.add_gate(lib.cell_id("XOR2_X1"), {a, b});
  n.add_output(y, "x");
  const Aig g = net::to_aig(n, lib);
  ASSERT_EQ(g.num_inputs(), 2u);
  ASSERT_EQ(g.num_outputs(), 1u);
  for (std::uint64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(aig::simulate_pattern(g, p) & 1,
              static_cast<std::uint64_t>(((p & 1) != 0) != ((p & 2) != 0)));
  }
}

TEST(Netlist, ConstNets) {
  const auto& lib = mini_sky130();
  Netlist n;
  (void)n.add_pi_net(0);
  const auto c1 = n.add_const_net(true);
  const auto c0 = n.add_const_net(false);
  n.add_output(c1, "hi");
  n.add_output(c0, "lo");
  const Aig g = net::to_aig(n, lib);
  EXPECT_EQ(g.outputs()[0], aig::kLitTrue);
  EXPECT_EQ(g.outputs()[1], aig::kLitFalse);
}

// ---- STA on hand-built netlists ------------------------------------------------

TEST(Sta, SingleGateHandComputed) {
  const auto& lib = mini_sky130();
  Netlist n;
  const auto a = n.add_pi_net(0);
  const auto b = n.add_pi_net(1);
  const auto y = n.add_gate(lib.cell_id("NAND2_X1"), {a, b});
  n.add_output(y, "out");
  StaParams p;
  p.wire_cap_per_fanout_ff = 1.0;
  p.po_cap_ff = 3.0;
  const auto r = run_sta(n, lib, p);
  const auto& c = lib.cell(lib.cell_id("NAND2_X1"));
  // Output net load: PO cap only (no gate pins attached).
  const double expected = c.intrinsic_ps + c.resistance_ps_per_ff * 3.0;
  EXPECT_DOUBLE_EQ(r.max_delay_ps, expected);
  EXPECT_DOUBLE_EQ(r.total_area_um2, c.area_um2);
  ASSERT_EQ(r.critical_path.size(), 1u);
  EXPECT_EQ(r.critical_path[0].cell_name, "NAND2_X1");
}

TEST(Sta, ChainAccumulatesAndLoadMatters) {
  const auto& lib = mini_sky130();
  const auto inv = lib.cell_id("INV_X1");
  Netlist n;
  const auto a = n.add_pi_net(0);
  const auto x = n.add_gate(inv, {a});
  const auto y = n.add_gate(inv, {x});
  n.add_output(y, "out");
  StaParams p;
  p.wire_cap_per_fanout_ff = 1.0;
  p.po_cap_ff = 4.0;
  const auto r = run_sta(n, lib, p);
  const auto& c = lib.cell(inv);
  const double load_x = c.input_cap_ff + 1.0;  // one INV pin + wire
  const double d1 = c.intrinsic_ps + c.resistance_ps_per_ff * load_x;
  const double d2 = c.intrinsic_ps + c.resistance_ps_per_ff * 4.0;
  EXPECT_NEAR(r.max_delay_ps, d1 + d2, 1e-9);
  ASSERT_EQ(r.critical_path.size(), 2u);
}

TEST(Sta, FanoutIncreasesDelay) {
  const auto& lib = mini_sky130();
  const auto inv = lib.cell_id("INV_X1");
  // Same driver, growing fanout: driver delay must increase monotonically.
  double last_delay = 0.0;
  for (int fanout = 1; fanout <= 6; ++fanout) {
    Netlist n;
    const auto a = n.add_pi_net(0);
    const auto x = n.add_gate(inv, {a});
    for (int i = 0; i < fanout; ++i) {
      n.add_output(n.add_gate(inv, {x}), "o" + std::to_string(i));
    }
    const auto r = run_sta(n, lib, {});
    EXPECT_GT(r.max_delay_ps, last_delay);
    last_delay = r.max_delay_ps;
  }
}

TEST(Sta, SlackAndRequiredConsistency) {
  const auto& lib = mini_sky130();
  const auto inv = lib.cell_id("INV_X1");
  Netlist n;
  const auto a = n.add_pi_net(0);
  const auto b = n.add_pi_net(1);
  const auto x = n.add_gate(inv, {a});          // short path
  const auto y1 = n.add_gate(inv, {b});
  const auto y2 = n.add_gate(inv, {y1});
  const auto y3 = n.add_gate(inv, {y2});        // long path
  n.add_output(x, "short");
  n.add_output(y3, "long");
  const auto r = run_sta(n, lib, {});
  // Worst slack is zero (required time = latest arrival).
  EXPECT_NEAR(r.worst_slack_ps, 0.0, 1e-9);
  // The short path has positive slack.
  EXPECT_GT(r.net_slack_ps[x], 1.0);
  // Arrivals along the critical path are monotone.
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    EXPECT_GT(r.critical_path[i].arrival_ps, r.critical_path[i - 1].arrival_ps);
  }
  EXPECT_EQ(r.critical_output, 1u);
}

TEST(Sta, ClockPeriodShiftsSlack) {
  const auto& lib = mini_sky130();
  const auto inv = lib.cell_id("INV_X1");
  Netlist n;
  const auto a = n.add_pi_net(0);
  n.add_output(n.add_gate(inv, {a}), "o");
  StaParams tight;
  const auto r0 = run_sta(n, lib, tight);
  StaParams loose;
  loose.clock_period_ps = r0.max_delay_ps + 100.0;
  const auto r1 = run_sta(n, lib, loose);
  EXPECT_NEAR(r1.worst_slack_ps, 100.0, 1e-9);
}

TEST(Sta, RejectsNonTopological) {
  // Construct a netlist, then corrupt gate order via direct re-adding:
  // simplest check — add_gate with a later net is impossible through the
  // API, so validate check_topological()'s negative path via to_aig's guard
  // with a hand-built cyclic-ish netlist is unreachable.  Instead assert the
  // positive invariant on a mapped circuit.
  const auto& lib = mini_sky130();
  const Aig g = gen::multiplier(4);
  const Netlist n = map_to_cells(g, lib);
  EXPECT_TRUE(n.check_topological());
}

// ---- mapping: equivalence property across designs and parameters ---------------

struct MapCase {
  const char* design;
  MapMode mode;
  int cut_size;
};

class MapEquivalence : public ::testing::TestWithParam<MapCase> {};

TEST_P(MapEquivalence, MappingPreservesFunction) {
  const auto param = GetParam();
  const auto& lib = mini_sky130();
  Aig g;
  const std::string name = param.design;
  if (name == "mult5") {
    g = gen::multiplier(5);
  } else if (name == "cla8") {
    g = gen::adder_cla(8);
  } else if (name == "alu4") {
    g = gen::alu(4);
  } else if (name == "ctrl") {
    g = gen::random_control(10, 6, 250, 7);
  } else {
    g = gen::build_design(name);
  }
  MapParams mp;
  mp.mode = param.mode;
  mp.cut_size = param.cut_size;
  map::MapStats stats;
  const Netlist n = map_to_cells(g, lib, mp, &stats);
  EXPECT_TRUE(n.check_topological());
  EXPECT_EQ(n.num_inputs(), g.num_inputs());
  EXPECT_EQ(n.num_outputs(), g.num_outputs());
  EXPECT_GT(stats.num_gates, 0u);
  const Aig back = net::to_aig(n, lib);
  const auto eq = aig::check_equivalence(g, back);
  EXPECT_TRUE(eq.equivalent) << "mapping broke output " << eq.failing_output << " of "
                             << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapEquivalence,
    ::testing::Values(MapCase{"mult5", MapMode::Delay, 4}, MapCase{"mult5", MapMode::Area, 4},
                      MapCase{"mult5", MapMode::Delay, 3}, MapCase{"mult5", MapMode::Delay, 2},
                      MapCase{"cla8", MapMode::Delay, 4}, MapCase{"cla8", MapMode::Area, 4},
                      MapCase{"alu4", MapMode::Delay, 4}, MapCase{"alu4", MapMode::Area, 3},
                      MapCase{"ctrl", MapMode::Delay, 4}, MapCase{"ctrl", MapMode::Area, 4},
                      MapCase{"EX00", MapMode::Delay, 4}, MapCase{"EX68", MapMode::Area, 4},
                      MapCase{"EX02", MapMode::Delay, 4}));

TEST(Mapper, AreaModeTradesDelayForArea) {
  const auto& lib = mini_sky130();
  const Aig g = gen::multiplier(6);
  MapParams delay_params;
  delay_params.mode = MapMode::Delay;
  MapParams area_params;
  area_params.mode = MapMode::Area;
  map::MapStats sd, sa;
  const auto nd = map_to_cells(g, lib, delay_params, &sd);
  const auto na = map_to_cells(g, lib, area_params, &sa);
  const auto rd = run_sta(nd, lib, {});
  const auto ra = run_sta(na, lib, {});
  // Theorem-level invariant: the delay-mode DP minimizes estimated arrival,
  // so its estimate can never exceed area mode's.
  EXPECT_LE(sd.estimated_arrival_ps, sa.estimated_arrival_ps * 1.001);
  // Area mode must produce a smaller (or equal) cover.
  EXPECT_LE(ra.total_area_um2, rd.total_area_um2 * 1.001);
  // Post-STA delay: load effects can perturb the ordering, but delay mode
  // should stay in the same ballpark or better.
  EXPECT_LE(rd.max_delay_ps, ra.max_delay_ps * 1.25);
}

TEST(Mapper, ConstantOutputsMapToConstNets) {
  const auto& lib = mini_sky130();
  Aig g;
  const auto a = g.add_input();
  g.add_output(aig::kLitTrue, "hi");
  g.add_output(aig::kLitFalse, "lo");
  g.add_output(a, "pass");
  const Netlist n = map_to_cells(g, lib);
  const Aig back = net::to_aig(n, lib);
  EXPECT_TRUE(aig::equivalent(g, back));
}

TEST(Mapper, ReconvergentConstantNodeIsSimplified) {
  // AND(a&b, a&!b) == 0: the zero-leaf cut should collapse this to a const.
  const auto& lib = mini_sky130();
  Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  const auto x = g.make_and(a, b);
  const auto y = g.make_and(a, aig::lit_not(b));
  g.add_output(g.make_and(x, y), "zero");
  const Netlist n = map_to_cells(g, lib);
  EXPECT_EQ(n.num_gates(), 0u);  // pure constant, no logic needed
  const Aig back = net::to_aig(n, lib);
  EXPECT_TRUE(aig::equivalent(g, back));
}

TEST(Mapper, ComplementedOutputGetsPhase) {
  const auto& lib = mini_sky130();
  Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  g.add_output(g.make_nand(a, b), "nand");  // complemented literal
  const Netlist n = map_to_cells(g, lib);
  const Aig back = net::to_aig(n, lib);
  EXPECT_TRUE(aig::equivalent(g, back));
  // A NAND2 cell should implement this in one gate.
  EXPECT_EQ(n.num_gates(), 1u);
}

TEST(Mapper, PiDrivenAndInvertedPiOutputs) {
  const auto& lib = mini_sky130();
  Aig g;
  const auto a = g.add_input();
  g.add_output(a, "buf");
  g.add_output(aig::lit_not(a), "inv");
  const Netlist n = map_to_cells(g, lib);
  const Aig back = net::to_aig(n, lib);
  EXPECT_TRUE(aig::equivalent(g, back));
}

TEST(Mapper, RejectsBadParams) {
  const Aig g = gen::parity_tree(4);
  MapParams p;
  p.cut_size = 1;
  EXPECT_THROW((void)map_to_cells(g, mini_sky130(), p), std::invalid_argument);
  p.cut_size = 5;
  EXPECT_THROW((void)map_to_cells(g, mini_sky130(), p), std::invalid_argument);
  p.cut_size = 4;
  p.cuts_per_node = 0;
  EXPECT_THROW((void)map_to_cells(g, mini_sky130(), p), std::invalid_argument);
}

TEST(Mapper, LargerCutBudgetNeverHurtsEstimatedDelay) {
  const auto& lib = mini_sky130();
  const Aig g = gen::multiplier(6);
  map::MapStats s_small, s_large;
  MapParams small_params;
  small_params.cuts_per_node = 2;
  MapParams large_params;
  large_params.cuts_per_node = 12;
  (void)map_to_cells(g, lib, small_params, &s_small);
  (void)map_to_cells(g, lib, large_params, &s_large);
  EXPECT_LE(s_large.estimated_arrival_ps, s_small.estimated_arrival_ps * 1.01);
}

TEST(Mapper, DepthCompressionVsAig) {
  // Mapping 4-input cuts onto multi-input cells must compress stage count
  // well below the AIG level — this is miscorrelation source (a) from the
  // paper.
  const auto& lib = mini_sky130();
  const Aig g = gen::multiplier(7);
  const auto lvl = aig::aig_level(g);
  const Netlist n = map_to_cells(g, lib);
  const auto r = run_sta(n, lib, {});
  EXPECT_LT(r.critical_path.size(), lvl) << "mapped stages should be fewer than AIG levels";
  EXPECT_GT(r.critical_path.size(), lvl / 5) << "but not absurdly fewer";
}

TEST(Sta, MappedMultiplierDelayInPlausible130nmRange) {
  const auto& lib = mini_sky130();
  const Aig g = gen::multiplier(7);  // the Fig. 1 workload scale
  const auto r = run_sta(map_to_cells(g, lib), lib, {});
  // Table I reports 1.3-1.8 ns for mapped multiplier AIGs at 130nm; our
  // library should land within the same decade.
  EXPECT_GT(r.max_delay_ps, 300.0);
  EXPECT_LT(r.max_delay_ps, 10000.0);
}

TEST(Sta, TimingReportMentionsCriticalCells) {
  const auto& lib = mini_sky130();
  const Aig g = gen::adder_ripple(6);
  const Netlist n = map_to_cells(g, lib);
  const auto r = run_sta(n, lib, {});
  const std::string report = sta::timing_report(n, lib, r);
  EXPECT_NE(report.find("max delay"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_FALSE(r.critical_path.empty());
}

}  // namespace
}  // namespace aigml
