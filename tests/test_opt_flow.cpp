// Tests for the optimization flows (cost evaluators, SA engine, Pareto
// utilities, sweep driver) and the data-generation pipeline.

#include <gtest/gtest.h>

#include <filesystem>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "flow/datagen.hpp"
#include "flow/experiment.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "opt/cost.hpp"
#include "opt/pareto.hpp"
#include "opt/sa.hpp"
#include "opt/sweep.hpp"

namespace aigml {
namespace {

using aig::Aig;
using cell::mini_sky130;

// ---- cost evaluators -------------------------------------------------------------

TEST(Cost, ProxyMatchesAnalyses) {
  opt::ProxyCost proxy;
  const Aig g = gen::multiplier(5);
  const auto q = proxy.evaluate(g);
  EXPECT_DOUBLE_EQ(q.delay, static_cast<double>(aig::aig_level(g)));
  EXPECT_DOUBLE_EQ(q.area, static_cast<double>(g.num_ands()));
  EXPECT_EQ(proxy.eval_count(), 1u);
  EXPECT_EQ(proxy.name(), "proxy");
}

TEST(Cost, GroundTruthMatchesDirectMapSta) {
  opt::GroundTruthCost gt(mini_sky130());
  const Aig g = gen::adder_cla(6);
  const auto q = gt.evaluate(g);
  const auto netlist = map::map_to_cells(g, mini_sky130());
  const auto sta = sta::run_sta(netlist, mini_sky130(), {});
  EXPECT_DOUBLE_EQ(q.delay, sta.max_delay_ps);
  EXPECT_DOUBLE_EQ(q.area, sta.total_area_um2);
  EXPECT_GT(gt.eval_seconds(), 0.0);
}

TEST(Cost, MlCostUsesModels) {
  // Train tiny models mapping features to a known constant; the evaluator
  // must return the models' predictions.
  ml::Dataset delay_data(features::feature_names());
  ml::Dataset area_data(features::feature_names());
  const Aig g = gen::parity_tree(6);
  const auto f = features::extract(g);
  for (int i = 0; i < 8; ++i) {
    delay_data.append(f, 1234.0, "x");
    area_data.append(f, 42.0, "x");
  }
  ml::GbdtParams p;
  p.num_trees = 3;
  const auto delay_model = ml::GbdtModel::train(delay_data, p);
  const auto area_model = ml::GbdtModel::train(area_data, p);
  opt::MlCost cost(delay_model, area_model);
  const auto q = cost.evaluate(g);
  EXPECT_NEAR(q.delay, 1234.0, 1.0);
  EXPECT_NEAR(q.area, 42.0, 0.5);
}

// ---- SA --------------------------------------------------------------------------

TEST(Sa, ImprovesProxyCostOnMultiplier) {
  opt::ProxyCost proxy;
  const Aig g = gen::multiplier(6);
  opt::SaParams params;
  params.iterations = 30;
  params.seed = 5;
  params.weight_delay = 1.0;
  params.weight_area = 0.5;
  const auto result = opt::simulated_annealing(g, proxy, params);
  EXPECT_EQ(result.history.size(), 30u);
  // Best cost can never exceed the initial cost (initial is a candidate).
  const double initial_cost = params.weight_delay + params.weight_area;  // normalized
  EXPECT_LE(result.best_cost, initial_cost + 1e-12);
  // On a raw multiplier, transforms find real improvements.
  EXPECT_LT(result.best_cost, initial_cost);
  // The best AIG is functionally intact.
  EXPECT_TRUE(aig::equivalent(g, result.best));
}

TEST(Sa, DeterministicGivenSeed) {
  opt::ProxyCost proxy;
  const Aig g = gen::build_design("EX68");
  opt::SaParams params;
  params.iterations = 15;
  params.seed = 11;
  const auto r1 = opt::simulated_annealing(g, proxy, params);
  const auto r2 = opt::simulated_annealing(g, proxy, params);
  EXPECT_EQ(r1.best.structural_hash(), r2.best.structural_hash());
  EXPECT_DOUBLE_EQ(r1.best_cost, r2.best_cost);
}

TEST(Sa, RecordsTimingBreakdown) {
  opt::GroundTruthCost gt(mini_sky130());
  const Aig g = gen::build_design("EX68");
  opt::SaParams params;
  params.iterations = 8;
  const auto result = opt::simulated_annealing(g, gt, params);
  EXPECT_GT(result.total_transform_seconds, 0.0);
  EXPECT_GT(result.total_eval_seconds, 0.0);
  EXPECT_GE(result.total_seconds,
            result.total_transform_seconds + result.total_eval_seconds - 1e-6);
  EXPECT_GT(result.seconds_per_iteration(), 0.0);
  for (const auto& rec : result.history) {
    EXPECT_GE(rec.eval_seconds, 0.0);
    EXPECT_LT(rec.script_index, transforms::script_registry().size());
  }
}

TEST(Sa, HighTemperatureAcceptsWorseMoves) {
  opt::ProxyCost proxy;
  const Aig g = gen::build_design("EX00");
  opt::SaParams hot;
  hot.iterations = 40;
  hot.initial_temperature = 10.0;
  hot.decay = 1.0;
  hot.seed = 3;
  const auto r_hot = opt::simulated_annealing(g, proxy, hot);
  opt::SaParams cold = hot;
  cold.initial_temperature = 1e-12;
  const auto r_cold = opt::simulated_annealing(g, proxy, cold);
  // Hot run accepts (nearly) everything; cold run only improvements.
  EXPECT_GT(r_hot.accepted_moves(), r_cold.accepted_moves());
}

TEST(Sa, ValidatesParams) {
  opt::ProxyCost proxy;
  const Aig g = gen::parity_tree(4);
  opt::SaParams bad;
  bad.iterations = 0;
  EXPECT_THROW((void)opt::simulated_annealing(g, proxy, bad), std::invalid_argument);
  bad.iterations = 1;
  bad.decay = 0.0;
  EXPECT_THROW((void)opt::simulated_annealing(g, proxy, bad), std::invalid_argument);
}

// ---- Pareto ----------------------------------------------------------------------

TEST(Pareto, DominationAndFront) {
  using opt::ParetoPoint;
  const std::vector<ParetoPoint> points = {
      {1.0, 10.0, 0}, {2.0, 5.0, 1}, {3.0, 6.0, 2},  // dominated by (2,5)
      {4.0, 1.0, 3},  {1.0, 10.0, 4},                 // duplicate
      {0.5, 20.0, 5},
  };
  EXPECT_TRUE(opt::dominates(points[1], points[2]));
  EXPECT_FALSE(opt::dominates(points[2], points[1]));
  EXPECT_FALSE(opt::dominates(points[0], points[4]));  // equal: no strict improvement
  const auto front = opt::pareto_front(points);
  ASSERT_EQ(front.size(), 4u);
  EXPECT_DOUBLE_EQ(front[0].delay, 0.5);
  EXPECT_DOUBLE_EQ(front[1].delay, 1.0);
  EXPECT_DOUBLE_EQ(front[2].delay, 2.0);
  EXPECT_DOUBLE_EQ(front[3].delay, 4.0);
  // Front areas strictly decrease.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(front[i].area, front[i - 1].area);
  }
}

TEST(Pareto, Hypervolume) {
  using opt::ParetoPoint;
  const std::vector<ParetoPoint> front = {{1.0, 3.0, 0}, {2.0, 1.0, 1}};
  // Reference (4, 4): rect1 = (2-1)*(4-3) = 1, rect2 = (4-2)*(4-1) = 6.
  EXPECT_DOUBLE_EQ(opt::hypervolume(front, 4.0, 4.0), 7.0);
  // Points outside the reference box contribute nothing.
  EXPECT_DOUBLE_EQ(opt::hypervolume(front, 1.0, 1.0), 0.0);
}

TEST(Pareto, DelayAtArea) {
  using opt::ParetoPoint;
  const std::vector<ParetoPoint> front = {{1.0, 10.0, 0}, {2.0, 5.0, 1}, {4.0, 1.0, 2}};
  EXPECT_DOUBLE_EQ(opt::delay_at_area(front, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(opt::delay_at_area(front, 100.0), 1.0);
  EXPECT_TRUE(std::isinf(opt::delay_at_area(front, 0.5)));
}

// ---- sweep -----------------------------------------------------------------------

TEST(Sweep, ProducesGroundTruthFront) {
  const Aig g = gen::build_design("EX68");
  opt::SweepConfig config;
  config.weight_pairs = {{1.0, 0.0}, {1.0, 1.0}};
  config.decays = {0.95};
  config.iterations = 10;
  opt::CostContext ctx;
  ctx.library = &mini_sky130();
  const auto result = opt::run_sweep(g, config.to_recipes(), ctx);
  ASSERT_EQ(result.runs.size(), 2u);
  EXPECT_FALSE(result.front.empty());
  for (const auto& run : result.runs) {
    EXPECT_GT(run.ground_truth.delay, 0.0);
    EXPECT_GT(run.ground_truth.area, 0.0);
    EXPECT_GT(run.seconds, 0.0);
    EXPECT_EQ(run.recipe.cost, "proxy");
    EXPECT_GT(run.evals, 0u);
  }
  // Front points reference existing runs.
  for (const auto& p : result.front) {
    EXPECT_LT(p.origin, result.runs.size());
  }
}

// ---- data generation ----------------------------------------------------------------

TEST(DataGen, GeneratesUniqueLabeledVariants) {
  const Aig g = gen::build_design("EX68");
  flow::DataGenParams params;
  params.num_variants = 25;
  params.seed = 9;
  const auto data = flow::generate_dataset(g, "EX68", mini_sky130(), params);
  EXPECT_EQ(data.unique_variants, 25u);
  EXPECT_EQ(data.delay.num_rows(), 25u);
  EXPECT_EQ(data.area.num_rows(), 25u);
  EXPECT_EQ(data.delay.num_features(), static_cast<std::size_t>(features::kNumFeatures));
  // Labels are positive and vary across variants.
  RunningStats delay_stats;
  for (const double y : data.delay.labels()) {
    EXPECT_GT(y, 0.0);
    delay_stats.add(y);
  }
  EXPECT_GT(delay_stats.stddev(), 0.0);
  for (const double y : data.area.labels()) EXPECT_GT(y, 0.0);
  EXPECT_EQ(data.delay.tag(0), "EX68");
}

TEST(DataGen, DeterministicGivenSeed) {
  const Aig g = gen::build_design("EX00");
  flow::DataGenParams params;
  params.num_variants = 10;
  params.seed = 77;
  const auto d1 = flow::generate_dataset(g, "EX00", mini_sky130(), params);
  const auto d2 = flow::generate_dataset(g, "EX00", mini_sky130(), params);
  ASSERT_EQ(d1.delay.num_rows(), d2.delay.num_rows());
  for (std::size_t i = 0; i < d1.delay.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(d1.delay.label(i), d2.delay.label(i));
  }
}

TEST(DataGen, CacheRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "aigml_cache_test";
  std::filesystem::remove_all(dir);
  const Aig g = gen::build_design("EX68");
  flow::DataGenParams params;
  params.num_variants = 8;
  params.seed = 5;
  const auto first = flow::load_or_generate(g, "EX68", mini_sky130(), params, dir);
  EXPECT_GT(first.generation_seconds, 0.0);  // actually generated
  const auto second = flow::load_or_generate(g, "EX68", mini_sky130(), params, dir);
  EXPECT_EQ(second.generation_seconds, 0.0);  // loaded from cache
  ASSERT_EQ(second.delay.num_rows(), first.delay.num_rows());
  for (std::size_t i = 0; i < first.delay.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(second.delay.label(i), first.delay.label(i));
    EXPECT_DOUBLE_EQ(second.area.label(i), first.area.label(i));
  }
  std::filesystem::remove_all(dir);
}

TEST(Experiment, EndToEndSmallScale) {
  // Miniature end-to-end: tiny datasets, tiny model — validates the full
  // Table III machinery (full scale runs in bench/table3_accuracy).
  const auto dir = std::filesystem::temp_directory_path() / "aigml_exp_test";
  std::filesystem::remove_all(dir);
  flow::DataGenParams params;
  params.num_variants = 6;
  const auto data = flow::prepare_experiment_data(cell::mini_sky130(), params, dir);
  EXPECT_EQ(data.per_design.size(), 8u);
  EXPECT_EQ(data.delay_train.num_rows(), 4u * 6u);
  ml::GbdtParams gp;
  gp.num_trees = 30;
  gp.max_depth = 4;
  const auto models = flow::train_models(data, gp);
  EXPECT_EQ(models.delay.num_trees(), 30u);
  const auto rows = flow::evaluate_accuracy(data, models);
  ASSERT_EQ(rows.size(), 8u);
  int training_rows = 0;
  for (const auto& row : rows) {
    EXPECT_GT(row.delay_error.count, 0u);
    EXPECT_GE(row.delay_error.mean_pct, 0.0);
    training_rows += row.training;
  }
  EXPECT_EQ(training_rows, 4);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace aigml
