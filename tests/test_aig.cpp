// Unit tests for the AIG core: construction/folding/strash invariants,
// structural analyses, simulation, equivalence checking, and AIGER I/O.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "aig/aig.hpp"
#include "aig/aiger.hpp"
#include "aig/analysis.hpp"
#include "aig/sim.hpp"

namespace aigml::aig {
namespace {

TEST(Aig, EmptyGraphHasConstantNode) {
  Aig g;
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_ands(), 0u);
  EXPECT_TRUE(g.is_constant(0));
}

TEST(Aig, LiteralHelpers) {
  EXPECT_EQ(lit_var(7), 3u);
  EXPECT_TRUE(lit_is_complemented(7));
  EXPECT_FALSE(lit_is_complemented(6));
  EXPECT_EQ(make_lit(3, true), 7u);
  EXPECT_EQ(lit_not(6), 7u);
  EXPECT_EQ(lit_not_if(6, false), 6u);
  EXPECT_EQ(lit_regular(7), 6u);
}

TEST(Aig, ConstantFolding) {
  Aig g;
  const Lit a = g.add_input();
  EXPECT_EQ(g.make_and(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.make_and(a, kLitTrue), a);
  EXPECT_EQ(g.make_and(a, a), a);
  EXPECT_EQ(g.make_and(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.make_and(a, b);
  const Lit y = g.make_and(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
  const Lit z = g.make_and(lit_not(a), b);  // different phase -> new node
  EXPECT_NE(x, z);
  EXPECT_EQ(g.num_ands(), 2u);
}

TEST(Aig, ProbeAndMatchesMakeAnd) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  EXPECT_EQ(g.probe_and(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.probe_and(a, a), a);
  EXPECT_EQ(g.probe_and(a, b), kLitInvalid);  // not created yet
  const Lit x = g.make_and(a, b);
  EXPECT_EQ(g.probe_and(b, a), x);
}

TEST(Aig, DerivedOperatorsTruthTables) {
  // Exhaustively check every 2-input derived op against its definition.
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.make_or(a, b), "or");
  g.add_output(g.make_nand(a, b), "nand");
  g.add_output(g.make_nor(a, b), "nor");
  g.add_output(g.make_xor(a, b), "xor");
  g.add_output(g.make_xnor(a, b), "xnor");
  for (std::uint64_t p = 0; p < 4; ++p) {
    const bool va = p & 1, vb = p & 2;
    const std::uint64_t out = simulate_pattern(g, p);
    EXPECT_EQ((out >> 0) & 1, static_cast<std::uint64_t>(va || vb));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(!(va && vb)));
    EXPECT_EQ((out >> 2) & 1, static_cast<std::uint64_t>(!(va || vb)));
    EXPECT_EQ((out >> 3) & 1, static_cast<std::uint64_t>(va != vb));
    EXPECT_EQ((out >> 4) & 1, static_cast<std::uint64_t>(va == vb));
  }
}

TEST(Aig, MuxAndMajority) {
  Aig g;
  const Lit s = g.add_input();
  const Lit t = g.add_input();
  const Lit e = g.add_input();
  g.add_output(g.make_mux(s, t, e), "mux");
  g.add_output(g.make_maj(s, t, e), "maj");
  for (std::uint64_t p = 0; p < 8; ++p) {
    const bool vs = p & 1, vt = p & 2, ve = p & 4;
    const std::uint64_t out = simulate_pattern(g, p);
    EXPECT_EQ((out >> 0) & 1, static_cast<std::uint64_t>(vs ? vt : ve));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>((vs + vt + ve) >= 2));
  }
}

TEST(Aig, NaryOperators) {
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(g.add_input());
  g.add_output(g.make_and_n(ins), "and5");
  g.add_output(g.make_or_n(ins), "or5");
  g.add_output(g.make_xor_n(ins), "xor5");
  for (std::uint64_t p = 0; p < 32; ++p) {
    const int ones = __builtin_popcountll(p);
    const std::uint64_t out = simulate_pattern(g, p);
    EXPECT_EQ((out >> 0) & 1, static_cast<std::uint64_t>(ones == 5));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(ones > 0));
    EXPECT_EQ((out >> 2) & 1, static_cast<std::uint64_t>(ones % 2));
  }
}

TEST(Aig, NaryEmptyIdentities) {
  Aig g;
  EXPECT_EQ(g.make_and_n({}), kLitTrue);
  EXPECT_EQ(g.make_or_n({}), kLitFalse);
  EXPECT_EQ(g.make_xor_n({}), kLitFalse);
}

TEST(Aig, AcyclicOrderMaintained) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.make_xor(a, b);
  g.add_output(g.make_and(c, a));
  EXPECT_TRUE(g.check_acyclic_order());
}

TEST(Aig, CleanupRemovesDeadNodes) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit used = g.make_and(a, b);
  g.make_and(lit_not(a), lit_not(b));  // dead
  g.add_output(used);
  EXPECT_EQ(g.num_ands(), 2u);
  const Aig clean = g.cleanup();
  EXPECT_EQ(clean.num_ands(), 1u);
  EXPECT_EQ(clean.num_inputs(), 2u);
  EXPECT_EQ(clean.num_outputs(), 1u);
  EXPECT_TRUE(equivalent(g, clean));
}

TEST(Aig, CleanupPreservesConstOutputs) {
  Aig g;
  const Lit a = g.add_input();
  g.add_output(kLitTrue, "const1");
  g.add_output(kLitFalse, "const0");
  g.add_output(a, "pass");
  const Aig clean = g.cleanup();
  ASSERT_EQ(clean.num_outputs(), 3u);
  EXPECT_EQ(clean.outputs()[0], kLitTrue);
  EXPECT_EQ(clean.outputs()[1], kLitFalse);
  EXPECT_TRUE(equivalent(g, clean));
}

TEST(Aig, StructuralHashIgnoresDeadLogicAndNames) {
  Aig g1;
  {
    const Lit a = g1.add_input("x");
    const Lit b = g1.add_input("y");
    g1.add_output(g1.make_and(a, b), "z");
  }
  Aig g2;
  {
    const Lit a = g2.add_input("p");
    const Lit b = g2.add_input("q");
    g2.make_and(lit_not(a), b);  // extra dead node
    g2.add_output(g2.make_and(a, b), "r");
  }
  EXPECT_EQ(g1.structural_hash(), g2.structural_hash());
  Aig g3;
  {
    const Lit a = g3.add_input();
    const Lit b = g3.add_input();
    g3.add_output(g3.make_or(a, b));
  }
  EXPECT_NE(g1.structural_hash(), g3.structural_hash());
}

TEST(Aig, SetOutputRedirects) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const auto idx = g.add_output(a, "o");
  g.set_output(idx, g.make_and(a, b));
  EXPECT_EQ(lit_var(g.outputs()[0]), 3u);
  EXPECT_THROW(g.set_output(5, a), std::out_of_range);
}

// ---- analysis ---------------------------------------------------------------

TEST(Analysis, LevelsAndDepths) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit ab = g.make_and(a, b);
  const Lit abc = g.make_and(ab, c);
  g.add_output(abc);
  const auto lvl = levels(g);
  EXPECT_EQ(lvl[lit_var(a)], 0u);
  EXPECT_EQ(lvl[lit_var(ab)], 1u);
  EXPECT_EQ(lvl[lit_var(abc)], 2u);
  EXPECT_EQ(aig_level(g), 2u);
  // Node-count depth: PI = 1.
  const auto nd = node_depths(g);
  EXPECT_EQ(nd[lit_var(a)], 1u);
  EXPECT_EQ(nd[lit_var(ab)], 2u);
  EXPECT_EQ(nd[lit_var(abc)], 3u);
}

TEST(Analysis, OutputDrivenByInputHasLevelZero) {
  Aig g;
  const Lit a = g.add_input();
  g.add_output(a);
  EXPECT_EQ(aig_level(g), 0u);
}

TEST(Analysis, FanoutCounts) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.make_and(a, b);
  const Lit y = g.make_and(x, lit_not(a));
  g.add_output(x);
  g.add_output(y);
  const auto fo = fanout_counts(g);
  EXPECT_EQ(fo[lit_var(a)], 2u);  // into x and y
  EXPECT_EQ(fo[lit_var(b)], 1u);
  EXPECT_EQ(fo[lit_var(x)], 2u);  // into y and PO
  EXPECT_EQ(fo[lit_var(y)], 1u);  // PO only
}

TEST(Analysis, WeightedDepths) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.make_and(a, b);
  g.add_output(x);
  std::vector<double> weights(g.num_nodes(), 0.0);
  weights[lit_var(a)] = 5.0;
  weights[lit_var(b)] = 1.0;
  weights[lit_var(x)] = 2.0;
  const auto wd = weighted_depths(g, weights);
  EXPECT_DOUBLE_EQ(wd[lit_var(x)], 7.0);  // max(5, 1) + 2
}

TEST(Analysis, PathCounts) {
  // Classic reconvergence: two parallel paths a->x->z and a->y->z.
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.make_and(a, b);
  const Lit y = g.make_and(a, lit_not(b));
  const Lit z = g.make_or(x, y);
  g.add_output(z);
  const auto paths = path_counts(g);
  EXPECT_DOUBLE_EQ(paths[lit_var(a)], 1.0);
  EXPECT_DOUBLE_EQ(paths[lit_var(x)], 2.0);   // via a and via b
  EXPECT_DOUBLE_EQ(paths[lit_var(z)], 4.0);
}

TEST(Analysis, CriticalPathNodes) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit ab = g.make_and(a, b);    // depth 2
  const Lit abc = g.make_and(ab, c);  // depth 3 <- critical
  const Lit side = g.make_and(a, c);  // depth 2, off-critical
  g.add_output(abc);
  g.add_output(side);
  const auto crit = critical_path_nodes(g);
  // Critical path: {a or b} -> ab -> abc. `side` and `c` are not on a
  // maximum-depth path; a, b, ab, abc are.
  std::vector<NodeId> expected{lit_var(a), lit_var(b), lit_var(ab), lit_var(abc)};
  EXPECT_EQ(crit, expected);
}

TEST(Analysis, ConeAndMffc) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit x = g.make_and(a, b);
  const Lit y = g.make_and(x, c);
  const Lit z = g.make_and(x, lit_not(c));  // shares x with y
  g.add_output(y);
  g.add_output(z);
  const auto cone = cone_of(g, lit_var(y));
  EXPECT_EQ(cone.size(), 2u);  // x and y
  const auto fo = fanout_counts(g);
  // x has two fanouts, so MFFC of y is just {y}.
  EXPECT_EQ(mffc_size(g, lit_var(y), fo), 1u);
  // If z is the only user of x... it is not; MFFC of z is {z} as well.
  EXPECT_EQ(mffc_size(g, lit_var(z), fo), 1u);
}

TEST(Analysis, MffcAbsorbsSingleFanoutChain) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit x = g.make_and(a, b);
  const Lit y = g.make_and(x, c);
  g.add_output(y);
  const auto fo = fanout_counts(g);
  EXPECT_EQ(mffc_size(g, lit_var(y), fo), 2u);  // y and x both die with y
}

TEST(Analysis, ReachableFromOutputs) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit used = g.make_and(a, b);
  const Lit dead = g.make_or(a, b);
  g.add_output(used);
  const auto reach = reachable_from_outputs(g);
  EXPECT_TRUE(reach[lit_var(used)]);
  EXPECT_FALSE(reach[lit_var(dead)]);
}

// ---- simulation & equivalence ----------------------------------------------

TEST(Sim, SimulateWordsXor) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.make_xor(a, b));
  const std::vector<std::uint64_t> pats{0b1100, 0b1010};
  const auto out = simulate_words(g, pats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0] & 0xF, 0b0110u);
}

TEST(Sim, SimulateWordsWrongArityThrows) {
  Aig g;
  g.add_input();
  g.add_output(kLitTrue);
  std::vector<std::uint64_t> none;
  EXPECT_THROW((void)simulate_words(g, none), std::invalid_argument);
}

TEST(Sim, SignatureDiffersForDifferentFunctions) {
  Aig and_g, or_g;
  {
    const Lit a = and_g.add_input();
    const Lit b = and_g.add_input();
    and_g.add_output(and_g.make_and(a, b));
  }
  {
    const Lit a = or_g.add_input();
    const Lit b = or_g.add_input();
    or_g.add_output(or_g.make_or(a, b));
  }
  EXPECT_NE(simulation_signature(and_g), simulation_signature(or_g));
}

TEST(Sim, SignatureEqualForEquivalentStructures) {
  // DeMorgan: !(a&b) == !a | !b — different structure, same function.
  Aig g1, g2;
  {
    const Lit a = g1.add_input();
    const Lit b = g1.add_input();
    g1.add_output(g1.make_nand(a, b));
  }
  {
    const Lit a = g2.add_input();
    const Lit b = g2.add_input();
    g2.add_output(g2.make_or(lit_not(a), lit_not(b)));
  }
  EXPECT_EQ(simulation_signature(g1), simulation_signature(g2));
  EXPECT_TRUE(equivalent(g1, g2));
}

TEST(Sim, EquivalenceDetectsMismatch) {
  Aig g1, g2;
  {
    const Lit a = g1.add_input();
    const Lit b = g1.add_input();
    g1.add_output(g1.make_and(a, b));
  }
  {
    const Lit a = g2.add_input();
    const Lit b = g2.add_input();
    g2.add_output(g2.make_or(a, b));
  }
  const auto r = check_equivalence(g1, g2);
  EXPECT_FALSE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  // AND and OR differ exactly on patterns 01 and 10.
  EXPECT_TRUE(r.failing_pattern == 1 || r.failing_pattern == 2);
}

TEST(Sim, EquivalenceExhaustiveAboveSixInputs) {
  // 8 inputs: exhaustive check spans multiple 64-pattern chunks.
  Aig g1, g2;
  std::vector<Lit> in1, in2;
  for (int i = 0; i < 8; ++i) in1.push_back(g1.add_input());
  for (int i = 0; i < 8; ++i) in2.push_back(g2.add_input());
  g1.add_output(g1.make_xor_n(in1));
  // Equivalent: parity via a different association order.
  Lit acc = in2[0];
  for (int i = 1; i < 8; ++i) acc = g2.make_xor(acc, in2[i]);
  g2.add_output(acc);
  const auto r = check_equivalence(g1, g2);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Sim, EquivalenceRandomFallbackCatchesSingleMintermDiff) {
  // 20 inputs (beyond the exhaustive limit); functions differ on many
  // patterns so random vectors must catch it.
  Aig g1, g2;
  std::vector<Lit> in1, in2;
  for (int i = 0; i < 20; ++i) in1.push_back(g1.add_input());
  for (int i = 0; i < 20; ++i) in2.push_back(g2.add_input());
  g1.add_output(g1.make_xor_n(in1));
  g2.add_output(lit_not(g2.make_xor_n(in2)));
  const auto r = check_equivalence(g1, g2);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);
}

TEST(Sim, EquivalenceInterfaceMismatchThrows) {
  Aig g1, g2;
  g1.add_input();
  g1.add_output(kLitTrue);
  g2.add_output(kLitTrue);
  EXPECT_THROW((void)check_equivalence(g1, g2), std::invalid_argument);
}

// ---- AIGER I/O ---------------------------------------------------------------

TEST(Aiger, RoundTripPreservesFunction) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  g.add_output(g.make_mux(a, b, c), "f");
  g.add_output(lit_not(g.make_xor(b, c)), "g");
  const std::string text = to_aiger_string(g);
  const Aig back = from_aiger_string(text);
  EXPECT_EQ(back.num_inputs(), 3u);
  EXPECT_EQ(back.num_outputs(), 2u);
  EXPECT_TRUE(equivalent(g, back));
}

TEST(Aiger, ConstantOutputs) {
  Aig g;
  g.add_input();
  g.add_output(kLitTrue);
  g.add_output(kLitFalse);
  const Aig back = from_aiger_string(to_aiger_string(g));
  EXPECT_TRUE(equivalent(g, back));
}

TEST(Aiger, ParsesKnownFile) {
  // Half adder written by hand: sum = a ^ b, carry = a & b.
  // Literals: 6 = a&b, 8 = !a&!b, 10 = !(a&b) & !(!a&!b) = a^b.
  const std::string text =
      "aag 5 2 0 2 3\n"
      "2\n"
      "4\n"
      "10\n"
      "6\n"
      "6 2 4\n"
      "8 3 5\n"
      "10 7 9\n";
  const Aig g = from_aiger_string(text);
  EXPECT_EQ(g.num_inputs(), 2u);
  EXPECT_EQ(g.num_outputs(), 2u);
  for (std::uint64_t p = 0; p < 4; ++p) {
    const bool va = p & 1, vb = p & 2;
    const std::uint64_t out = simulate_pattern(g, p);
    EXPECT_EQ((out >> 0) & 1, static_cast<std::uint64_t>(va != vb)) << p;
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(va && vb)) << p;
  }
}

TEST(Aiger, RejectsLatches) {
  EXPECT_THROW((void)from_aiger_string("aag 1 0 1 0 0\n2 3\n"), std::runtime_error);
}

TEST(Aiger, RejectsGarbage) {
  EXPECT_THROW((void)from_aiger_string("not an aiger file"), std::runtime_error);
  EXPECT_THROW((void)from_aiger_string(""), std::runtime_error);
}

TEST(Aiger, FileRoundTrip) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.make_xor(a, b));
  const auto path = std::filesystem::temp_directory_path() / "aigml_test.aag";
  write_aiger_file(g, path);
  const Aig back = read_aiger_file(path);
  EXPECT_TRUE(equivalent(g, back));
  std::filesystem::remove(path);
}

TEST(Aiger, BinaryRoundTripPreservesFunction) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  g.add_output(g.make_maj(a, b, c), "maj");
  g.add_output(lit_not(g.make_xor(a, c)), "xn");
  g.add_output(kLitTrue, "one");
  std::stringstream stream;
  write_aiger_binary(g, stream);
  const Aig back = read_aiger_binary(stream);
  EXPECT_EQ(back.num_inputs(), 3u);
  EXPECT_EQ(back.num_outputs(), 3u);
  EXPECT_TRUE(equivalent(g, back));
}

TEST(Aiger, BinaryRoundTripLargeGraph) {
  // Multi-byte varint deltas require a graph with far-apart literals.
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 12; ++i) ins.push_back(g.add_input());
  Lit acc = ins[0];
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 1; i < ins.size(); ++i) {
      acc = g.make_xor(acc, g.make_and(ins[i], acc));
    }
  }
  g.add_output(acc);
  std::stringstream stream;
  write_aiger_binary(g, stream);
  const Aig back = read_aiger_binary(stream);
  EXPECT_TRUE(equivalent(g, back));
}

TEST(Aiger, BinaryRejectsLatchesAndGarbage) {
  {
    std::stringstream s("aig 1 0 1 0 0\n");
    EXPECT_THROW((void)read_aiger_binary(s), std::runtime_error);
  }
  {
    std::stringstream s("not binary");
    EXPECT_THROW((void)read_aiger_binary(s), std::runtime_error);
  }
}

TEST(Aiger, AutoDetectDispatchesOnMagic) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.make_nand(a, b));
  const auto dir = std::filesystem::temp_directory_path();
  const auto ascii_path = dir / "aigml_auto.aag";
  const auto binary_path = dir / "aigml_auto.aig";
  write_aiger_file(g, ascii_path);
  {
    std::ofstream out(binary_path, std::ios::binary);
    write_aiger_binary(g, out);
  }
  EXPECT_TRUE(equivalent(g, read_aiger_auto_file(ascii_path)));
  EXPECT_TRUE(equivalent(g, read_aiger_auto_file(binary_path)));
  std::filesystem::remove(ascii_path);
  std::filesystem::remove(binary_path);
}

}  // namespace
}  // namespace aigml::aig
