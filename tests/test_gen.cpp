// Tests for circuit generators: arithmetic blocks are verified against
// integer arithmetic by exhaustive/random simulation; the design registry is
// checked against the paper's Table III interface data.

#include <gtest/gtest.h>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "util/rng.hpp"

namespace aigml::gen {
namespace {

using aig::Aig;
using aig::simulate_pattern;

/// Packs integer operand bits into a simulate_pattern input word, assuming
/// input creation order a[0..wa) then b[0..wb) then extras.
std::uint64_t pack2(std::uint64_t a, int wa, std::uint64_t b) {
  return (b << wa) | a;
}

/// Extracts `bits` low output bits.
std::uint64_t low_bits(std::uint64_t word, int bits) {
  return bits >= 64 ? word : word & ((1ULL << bits) - 1);
}

TEST(Gen, FullAdderExhaustive) {
  Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  const auto c = g.add_input();
  const auto fa = full_adder(g, a, b, c);
  g.add_output(fa.sum);
  g.add_output(fa.carry);
  for (std::uint64_t p = 0; p < 8; ++p) {
    const int total = static_cast<int>((p & 1) + ((p >> 1) & 1) + ((p >> 2) & 1));
    const auto out = simulate_pattern(g, p);
    EXPECT_EQ(out & 1, static_cast<std::uint64_t>(total & 1));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(total >> 1));
  }
}

class AdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidth, RippleAdderComputesSum) {
  const int w = GetParam();
  const Aig g = adder_ripple(w);
  ASSERT_EQ(g.num_inputs(), static_cast<std::size_t>(2 * w + 1));
  ASSERT_EQ(g.num_outputs(), static_cast<std::size_t>(w + 1));
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_below(1ULL << w);
    const std::uint64_t b = rng.next_below(1ULL << w);
    const std::uint64_t cin = rng.next_below(2);
    const std::uint64_t in = (cin << (2 * w)) | pack2(a, w, b);
    const std::uint64_t out = simulate_pattern(g, in);
    EXPECT_EQ(low_bits(out, w + 1), a + b + cin) << "w=" << w;
  }
}

TEST_P(AdderWidth, CarryLookaheadMatchesRipple) {
  const int w = GetParam();
  const Aig cla = adder_cla(w);
  const Aig rip = adder_ripple(w);
  EXPECT_TRUE(equivalent(cla, rip));
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class MultWidth : public ::testing::TestWithParam<int> {};

TEST_P(MultWidth, MultiplierComputesProduct) {
  const int w = GetParam();
  const Aig g = multiplier(w);
  ASSERT_EQ(g.num_inputs(), static_cast<std::size_t>(2 * w));
  ASSERT_EQ(g.num_outputs(), static_cast<std::size_t>(2 * w));
  if (2 * w <= 12) {
    // Exhaustive for small widths.
    for (std::uint64_t a = 0; a < (1ULL << w); ++a) {
      for (std::uint64_t b = 0; b < (1ULL << w); ++b) {
        const std::uint64_t out = simulate_pattern(g, pack2(a, w, b));
        ASSERT_EQ(low_bits(out, 2 * w), a * b) << "a=" << a << " b=" << b;
      }
    }
  } else {
    Rng rng(29);
    for (int trial = 0; trial < 300; ++trial) {
      const std::uint64_t a = rng.next_below(1ULL << w);
      const std::uint64_t b = rng.next_below(1ULL << w);
      const std::uint64_t out = simulate_pattern(g, pack2(a, w, b));
      ASSERT_EQ(low_bits(out, 2 * w), a * b) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultWidth, ::testing::Values(2, 3, 4, 6, 8, 9));

TEST(Gen, SubtractTwosComplement) {
  Aig g;
  const Word a = add_input_word(g, 6, "a");
  const Word b = add_input_word(g, 6, "b");
  const Word d = subtract(g, a, b);
  add_output_word(g, d, "d");
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t va = rng.next_below(64);
    const std::uint64_t vb = rng.next_below(64);
    const std::uint64_t out = simulate_pattern(g, pack2(va, 6, vb));
    EXPECT_EQ(low_bits(out, 6), (va - vb) & 63);
  }
}

TEST(Gen, ComparatorOutputs) {
  const Aig g = comparator(5);
  Rng rng(37);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = rng.next_below(32);
    const std::uint64_t b = rng.next_below(32);
    const std::uint64_t out = simulate_pattern(g, pack2(a, 5, b));
    EXPECT_EQ(out & 1, static_cast<std::uint64_t>(a == b));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(a < b));
    EXPECT_EQ((out >> 2) & 1, static_cast<std::uint64_t>(a > b));
  }
}

TEST(Gen, PriorityEncoder) {
  const Aig g = priority_encoder(6);
  ASSERT_EQ(g.num_outputs(), 7u);
  for (std::uint64_t req = 0; req < 64; ++req) {
    const std::uint64_t out = simulate_pattern(g, req);
    const std::uint64_t grant = low_bits(out, 6);
    const bool any = ((out >> 6) & 1) != 0;
    EXPECT_EQ(any, req != 0);
    if (req == 0) {
      EXPECT_EQ(grant, 0u);
    } else {
      const int lowest = __builtin_ctzll(req);
      EXPECT_EQ(grant, 1ULL << lowest) << "req=" << req;
    }
  }
}

TEST(Gen, ParityTree) {
  const Aig g = parity_tree(9);
  for (std::uint64_t p = 0; p < 512; ++p) {
    EXPECT_EQ(simulate_pattern(g, p) & 1,
              static_cast<std::uint64_t>(__builtin_popcountll(p) & 1));
  }
}

TEST(Gen, AluOperations) {
  const int w = 4;
  const Aig g = alu(w);
  ASSERT_EQ(g.num_inputs(), static_cast<std::size_t>(2 * w + 3));
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t a = rng.next_below(1ULL << w);
    const std::uint64_t b = rng.next_below(1ULL << w);
    const std::uint64_t op = rng.next_below(8);
    const std::uint64_t in = (op << (2 * w)) | pack2(a, w, b);
    const std::uint64_t r = low_bits(simulate_pattern(g, in), w);
    std::uint64_t expected = 0;
    switch (op) {
      case 0: expected = (a + b) & ((1u << w) - 1); break;
      case 1: expected = (a - b) & ((1u << w) - 1); break;
      case 2: expected = a & b; break;
      case 3: expected = a | b; break;
      case 4: expected = a ^ b; break;
      case 5: expected = ~(a | b) & ((1u << w) - 1); break;
      case 6: expected = a < b ? 1 : 0; break;
      default: expected = a == b ? 1 : 0; break;
    }
    EXPECT_EQ(r, expected) << "op=" << op << " a=" << a << " b=" << b;
  }
}

TEST(Gen, RandomControlRespectsInterface) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Aig g = random_control(12, 5, 300, seed);
    EXPECT_EQ(g.num_inputs(), 12u);
    EXPECT_EQ(g.num_outputs(), 5u);
    // Size within a loose band of the target.
    EXPECT_GT(g.num_ands(), 150u);
    EXPECT_LT(g.num_ands(), 600u);
    EXPECT_TRUE(g.check_acyclic_order());
  }
}

TEST(Gen, RandomControlDeterministic) {
  const Aig g1 = random_control(10, 4, 200, 99);
  const Aig g2 = random_control(10, 4, 200, 99);
  EXPECT_EQ(g1.structural_hash(), g2.structural_hash());
  const Aig g3 = random_control(10, 4, 200, 100);
  EXPECT_NE(g1.structural_hash(), g3.structural_hash());
}

// ---- design registry ---------------------------------------------------------

TEST(Designs, RegistryHasEightDesignsWithPaperSplit) {
  const auto& specs = design_specs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(training_designs(), (std::vector<std::string>{"EX00", "EX08", "EX28", "EX68"}));
  EXPECT_EQ(test_designs(), (std::vector<std::string>{"EX02", "EX11", "EX16", "EX54"}));
}

TEST(Designs, UnknownNameThrows) {
  EXPECT_THROW((void)design_spec("EX99"), std::out_of_range);
  EXPECT_THROW((void)build_design("EX99"), std::out_of_range);
}

class DesignBuild : public ::testing::TestWithParam<const char*> {};

TEST_P(DesignBuild, MatchesTableIIIInterface) {
  const DesignSpec& spec = design_spec(GetParam());
  const Aig g = build_design(spec.name);
  EXPECT_EQ(g.num_inputs(), static_cast<std::size_t>(spec.num_inputs)) << spec.name;
  EXPECT_EQ(g.num_outputs(), static_cast<std::size_t>(spec.num_outputs)) << spec.name;
  EXPECT_TRUE(g.check_acyclic_order());
  // Initial size in the same regime as the paper's node range (the paper's
  // range is over 40k *optimized variants*; the seed design should fall
  // within a generous widening of it).
  EXPECT_GT(g.num_ands(), static_cast<std::size_t>(spec.paper_nodes_lo) / 3) << spec.name;
  EXPECT_LT(g.num_ands(), static_cast<std::size_t>(spec.paper_nodes_hi) * 3) << spec.name;
}

TEST_P(DesignBuild, Deterministic) {
  const Aig g1 = build_design(GetParam());
  const Aig g2 = build_design(GetParam());
  EXPECT_EQ(g1.structural_hash(), g2.structural_hash());
}

TEST_P(DesignBuild, HasNontrivialDepth) {
  const Aig g = build_design(GetParam());
  EXPECT_GE(aig::aig_level(g), 5u);
}

TEST_P(DesignBuild, NoOutputIsConstant) {
  // Regression: a degenerate (repeated-tap) mixing round once collapsed all
  // of EX54's outputs to constant 0, which transforms then legally rewrote
  // to an empty AIG.  Every design output must toggle under random stimuli.
  const Aig g = build_design(GetParam());
  Rng rng(7);
  std::vector<std::uint64_t> ones(g.num_outputs(), 0), zeros(g.num_outputs(), 0);
  for (int batch = 0; batch < 32; ++batch) {
    std::vector<std::uint64_t> words(g.num_inputs());
    for (auto& w : words) w = rng.next();
    const auto out = aig::simulate_words(g, words);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ones[i] |= out[i];
      zeros[i] |= ~out[i];
    }
  }
  for (std::size_t i = 0; i < g.num_outputs(); ++i) {
    EXPECT_TRUE(ones[i] != 0 && zeros[i] != 0)
        << GetParam() << " output " << i << " is stuck";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignBuild,
                         ::testing::Values("EX00", "EX08", "EX28", "EX68", "EX02", "EX11",
                                           "EX16", "EX54"));

}  // namespace
}  // namespace aigml::gen
