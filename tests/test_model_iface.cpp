// Tests for the family-agnostic Model interface (DESIGN.md §14): family
// naming, load_model_any dispatch over extensions and magic bytes,
// require_gbdt's actionable downcast, registry precedence when siblings
// share a stem (.gbdt2 > .gbdt > .gnn), family reporting in listings, and —
// the serving contract — hot-swapping a model between families under
// concurrent PredictService load without a torn or invalid prediction.
// The ModelIface* suites also run under TSan in CI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "aig/aig.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "ml/model.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

/// Temp directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// A small GBDT on real Table II features, so graph queries work end to end.
ml::GbdtModel small_gbdt(std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data(features::feature_names());
  std::vector<aig::Aig> pool{gen::parity_tree(5).cleanup()};
  for (int i = 0; i < 24; ++i) {
    pool.push_back(flow::random_variant_step(pool[rng.next_below(pool.size())], rng));
    data.append(features::extract(pool.back()),
                10.0 + static_cast<double>(pool.back().num_nodes()), "t");
  }
  ml::GbdtParams p;
  p.num_trees = 4;
  p.max_depth = 3;
  p.seed = seed;
  return ml::GbdtModel::train(data, p);
}

ml::GnnModel small_gnn(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<aig::Aig> pool{gen::parity_tree(5).cleanup()};
  std::vector<const aig::Aig*> graphs;
  std::vector<double> labels;
  for (int i = 0; i < 12; ++i) {
    pool.push_back(flow::random_variant_step(pool[rng.next_below(pool.size())], rng));
  }
  for (const aig::Aig& g : pool) {
    graphs.push_back(&g);
    labels.push_back(static_cast<double>(g.num_ands()));
  }
  ml::GnnParams params;
  params.hidden = 4;
  params.layers = 1;
  params.epochs = 2;
  params.seed = seed;
  return ml::GnnModel::train(graphs, labels, params);
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

// ---- family naming ----------------------------------------------------------

TEST(ModelIface, FamilyNamesRoundTrip) {
  EXPECT_STREQ(ml::to_string(ml::ModelFamily::kGbdt), "gbdt");
  EXPECT_STREQ(ml::to_string(ml::ModelFamily::kGnn), "gnn");
  EXPECT_EQ(ml::model_family_from_name("gbdt"), ml::ModelFamily::kGbdt);
  EXPECT_EQ(ml::model_family_from_name("gnn"), ml::ModelFamily::kGnn);
  EXPECT_THROW((void)ml::model_family_from_name("transformer"), std::invalid_argument);
}

// ---- load_model_any dispatch ------------------------------------------------

TEST(ModelIface, LoadAnyDispatchesAllThreeContainers) {
  TempDir dir("aigml_iface_any");
  const ml::GbdtModel gbdt = small_gbdt(0x11);
  const ml::GnnModel gnn = small_gnn(0x12);

  {
    std::ofstream out(dir.path / "m.gbdt");
    gbdt.serialize(out);
  }
  gbdt.save_v2(dir.path / "m.gbdt2");
  gnn.save(dir.path / "m.gnn");

  const aig::Aig probe = gen::parity_tree(4).cleanup();
  for (const char* name : {"m.gbdt", "m.gbdt2"}) {
    const auto loaded = ml::load_model_any(dir.path / name);
    ASSERT_NE(loaded, nullptr) << name;
    EXPECT_EQ(loaded->family(), ml::ModelFamily::kGbdt) << name;
    EXPECT_FALSE(loaded->needs_graph()) << name;
    EXPECT_EQ(loaded->num_trees(), 4u) << name;
    EXPECT_EQ(loaded->predict(probe), gbdt.predict(features::extract(probe))) << name;
  }
  const auto loaded_gnn = ml::load_model_any(dir.path / "m.gnn");
  EXPECT_EQ(loaded_gnn->family(), ml::ModelFamily::kGnn);
  EXPECT_TRUE(loaded_gnn->needs_graph());
  EXPECT_EQ(loaded_gnn->num_trees(), 0u);
  EXPECT_EQ(loaded_gnn->predict(probe), gnn.predict(probe));

  // Unknown extension: dispatch falls back to the leading magic bytes.
  fs::copy_file(dir.path / "m.gnn", dir.path / "checkpoint.bin");
  EXPECT_EQ(ml::load_model_any(dir.path / "checkpoint.bin")->family(), ml::ModelFamily::kGnn);

  // Garbage is refused with an actionable message, not a crash.
  write_bytes(dir.path / "junk.bin", "definitely not a model");
  EXPECT_THROW((void)ml::load_model_any(dir.path / "junk.bin"), std::runtime_error);
  EXPECT_THROW((void)ml::load_model_any(dir.path / "missing.gnn"), std::runtime_error);
}

TEST(ModelIface, RequireGbdtNamesContextAndFamily) {
  const ml::GnnModel gnn = small_gnn(0x13);
  try {
    (void)ml::require_gbdt(gnn, "unit-test");
    FAIL() << "require_gbdt accepted a gnn";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit-test"), std::string::npos) << what;
    EXPECT_NE(what.find("gnn"), std::string::npos) << what;
  }
  const ml::GbdtModel gbdt = small_gbdt(0x14);
  EXPECT_EQ(&ml::require_gbdt(gbdt, "unit-test"), &gbdt);
}

// ---- registry families and precedence ---------------------------------------

TEST(ModelIfaceRegistry, StemPrecedenceGbdt2OverGbdtOverGnn) {
  const ml::GbdtModel gbdt = small_gbdt(0x21);
  const ml::GnnModel gnn = small_gnn(0x22);
  const auto family_of = [&](const std::vector<std::string>& files) {
    TempDir dir("aigml_iface_prec");
    for (const std::string& f : files) {
      if (f == "delay.gbdt") {
        std::ofstream out(dir.path / f);
        gbdt.serialize(out);
      } else if (f == "delay.gbdt2") {
        gbdt.save_v2(dir.path / f);
      } else {
        gnn.save(dir.path / f);
      }
    }
    serve::ModelRegistry registry(dir.path);
    const auto infos = registry.list();
    EXPECT_EQ(infos.size(), 1u) << "siblings must collapse to one model";
    return infos.empty() ? std::string() : infos.front().family + "/" + infos.front().format;
  };
  EXPECT_EQ(family_of({"delay.gbdt2", "delay.gbdt", "delay.gnn"}), "gbdt/v2");
  EXPECT_EQ(family_of({"delay.gbdt", "delay.gnn"}), "gbdt/text");
  EXPECT_EQ(family_of({"delay.gnn"}), "gnn/gnn1");
}

TEST(ModelIfaceRegistry, ListReportsFamilies) {
  serve::ModelRegistry registry;
  registry.install("delay", small_gbdt(0x31));
  registry.install("area", small_gnn(0x32));
  for (const auto& info : registry.list()) {
    if (info.name == "delay") {
      EXPECT_EQ(info.family, "gbdt");
      EXPECT_EQ(info.num_features, features::kNumFeatures);
    } else {
      EXPECT_EQ(info.name, "area");
      EXPECT_EQ(info.family, "gnn");
      EXPECT_EQ(info.num_features, static_cast<std::size_t>(ml::kGnnNodeFeatures));
    }
    EXPECT_EQ(info.format, "memory");
  }
  EXPECT_EQ(registry.size(), 2u);
}

// ---- hot-swap between families under serving load ---------------------------

// The registry contract under a family change: every in-flight prediction is
// answered by one complete snapshot — either family's value, never a torn
// state, an exception, or a crash.
TEST(ModelIfaceRegistry, HotSwapBetweenFamiliesUnderServiceLoad) {
  const ml::GbdtModel gbdt = small_gbdt(0x41);
  const ml::GnnModel gnn = small_gnn(0x42);
  const aig::Aig probe = gen::parity_tree(5).cleanup();
  const double gbdt_value = gbdt.predict(features::extract(probe));
  const double gnn_value = gnn.predict(probe);
  ASSERT_NE(gbdt_value, gnn_value) << "need distinguishable families for this test";

  serve::ModelRegistry registry;
  registry.install("delay", gbdt);
  serve::PredictService service(registry);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::atomic<int> answered{0};
  std::thread hammer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const double value = service.predict("delay", probe);
      if (value != gbdt_value && value != gnn_value) bad.fetch_add(1);
      answered.fetch_add(1);
    }
  });
  for (int swap = 0; swap < 60; ++swap) {
    if (swap % 2 == 0) {
      registry.install("delay", gnn);
    } else {
      registry.install("delay", gbdt);
    }
  }
  // Let the hammer observe the final family too, then stop.
  while (answered.load() < 50) std::this_thread::yield();
  stop.store(true);
  hammer.join();

  EXPECT_EQ(bad.load(), 0) << "a prediction matched neither family's snapshot";
  EXPECT_GE(registry.version("delay"), 61u);
  EXPECT_EQ(service.predict("delay", probe), gbdt_value);
}

// ---- service batching over graphs -------------------------------------------

TEST(ModelIfaceService, GnnBatchMatchesScalarThroughService) {
  const ml::GnnModel gnn = small_gnn(0x51);
  serve::ModelRegistry registry;
  registry.install("delay", gnn);
  serve::PredictService service(registry);

  Rng rng(0x52);
  std::vector<aig::Aig> graphs{gen::parity_tree(5).cleanup()};
  for (int i = 0; i < 20; ++i) {
    graphs.push_back(flow::random_variant_step(graphs[rng.next_below(graphs.size())], rng));
  }
  const std::vector<double> batch = service.predict_batch("delay", graphs);
  ASSERT_EQ(batch.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(batch[i], gnn.predict(graphs[i])) << "graph " << i;
  }
}

TEST(ModelIfaceService, FeatureRowAgainstGnnFailsTheRequest) {
  serve::ModelRegistry registry;
  registry.install("delay", small_gnn(0x61));
  serve::PredictService service(registry);
  auto future =
      service.submit_features("delay", std::vector<double>(features::kNumFeatures, 0.5));
  EXPECT_THROW((void)future.get(), std::exception);
}

}  // namespace aigml
