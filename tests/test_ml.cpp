// Tests for the ML stack: dataset round-trips, regression-tree split
// mechanics, GBDT learning behaviour (fits simple functions, subsampling,
// early stopping, serialization), metrics, and GNN training (gradient
// descent reduces loss; learns easy graph statistics).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "aig/aig.hpp"
#include "gen/circuits.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace aigml::ml {
namespace {

Dataset make_synthetic(int n, std::uint64_t seed,
                       const std::function<double(double, double, double)>& f) {
  Dataset d({"x0", "x1", "x2"});
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double a = rng.next_double(0, 10);
    const double b = rng.next_double(0, 10);
    const double c = rng.next_double(0, 10);
    const double row[3] = {a, b, c};
    d.append(row, f(a, b, c), i % 2 ? "odd" : "even");
  }
  return d;
}

// ---- dataset -------------------------------------------------------------------

TEST(Dataset, AppendAndAccess) {
  Dataset d({"f0", "f1"});
  const double r0[2] = {1.0, 2.0};
  const double r1[2] = {3.0, 4.0};
  d.append(r0, 10.0, "a");
  d.append(r1, 20.0, "b");
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(d.label(0), 10.0);
  EXPECT_EQ(d.tag(1), "b");
  const double bad[1] = {0.0};
  EXPECT_THROW(d.append(bad, 0.0), std::invalid_argument);
}

TEST(Dataset, TagsSubsetsMerge) {
  Dataset d = make_synthetic(20, 1, [](double a, double, double) { return a; });
  EXPECT_EQ(d.distinct_tags(), (std::vector<std::string>{"even", "odd"}));
  const auto odd_rows = d.rows_with_tag("odd");
  EXPECT_EQ(odd_rows.size(), 10u);
  const Dataset odd = d.subset(odd_rows);
  EXPECT_EQ(odd.num_rows(), 10u);
  Dataset merged = odd;
  merged.merge(d.subset(d.rows_with_tag("even")));
  EXPECT_EQ(merged.num_rows(), 20u);
  Dataset other({"different"});
  EXPECT_THROW(merged.merge(other), std::invalid_argument);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset d = make_synthetic(15, 2, [](double a, double b, double) { return a * b; });
  const auto path = std::filesystem::temp_directory_path() / "aigml_ds.csv";
  d.save(path);
  const auto back = Dataset::load(path);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_rows(), d.num_rows());
  for (std::size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(back->label(i), d.label(i));
    EXPECT_EQ(back->tag(i), d.tag(i));
    for (std::size_t f = 0; f < d.num_features(); ++f) {
      EXPECT_DOUBLE_EQ(back->row(i)[f], d.row(i)[f]);
    }
  }
  std::filesystem::remove(path);
  EXPECT_FALSE(Dataset::load("/nonexistent/nope.csv").has_value());
}

// ---- regression tree ------------------------------------------------------------

TEST(Tree, SplitsOnStepFunction) {
  // y = 1 when x0 >= 5 else -1; one split suffices.
  std::vector<double> x, g;
  std::vector<std::size_t> rows;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i) / 10.0;
    x.push_back(v);
    // squared loss from preds=0: gradient = 0 - y.
    g.push_back(v >= 5.0 ? -1.0 : 1.0);
    rows.push_back(static_cast<std::size_t>(i));
  }
  std::vector<double> h(100, 1.0);
  const int features[1] = {0};
  RegressionTree tree;
  TreeParams p;
  p.max_depth = 2;
  p.lambda = 0.0;
  tree.fit(x, 1, g, h, rows, features, p);
  const double lo[1] = {2.0};
  const double hi[1] = {8.0};
  EXPECT_NEAR(tree.predict(lo), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(hi), 1.0, 1e-9);
}

TEST(Tree, RespectsMaxDepthZero) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> g{-1, -2, -3, -4};
  std::vector<double> h(4, 1.0);
  std::vector<std::size_t> rows{0, 1, 2, 3};
  const int features[1] = {0};
  RegressionTree tree;
  TreeParams p;
  p.max_depth = 0;
  p.lambda = 0.0;
  tree.fit(x, 1, g, h, rows, features, p);
  EXPECT_EQ(tree.nodes().size(), 1u);
  const double any[1] = {2.5};
  EXPECT_NEAR(tree.predict(any), 2.5, 1e-9);  // -mean(g)
}

TEST(Tree, MinChildWeightBlocksTinyLeaves) {
  std::vector<double> x{1, 2, 3, 4, 100};
  std::vector<double> g{0, 0, 0, 0, -10};
  std::vector<double> h(5, 1.0);
  std::vector<std::size_t> rows{0, 1, 2, 3, 4};
  const int features[1] = {0};
  RegressionTree tree;
  TreeParams p;
  p.max_depth = 3;
  p.min_child_weight = 2.0;  // the single outlier row cannot form a leaf
  tree.fit(x, 1, g, h, rows, features, p);
  for (const auto& n : tree.nodes()) {
    EXPECT_NE(n.threshold, 52.0);  // no split isolating the outlier alone
  }
}

TEST(Tree, SerializationRoundTrip) {
  Dataset d = make_synthetic(200, 3, [](double a, double b, double) { return 2 * a - b; });
  GbdtParams p;
  p.num_trees = 5;
  p.max_depth = 4;
  const GbdtModel model = GbdtModel::train(d, p);
  std::ostringstream out;
  model.serialize(out);
  std::istringstream in(out.str());
  const GbdtModel back = GbdtModel::deserialize(in);
  for (std::size_t i = 0; i < d.num_rows(); i += 17) {
    EXPECT_DOUBLE_EQ(back.predict(d.row(i)), model.predict(d.row(i)));
  }
}

// ---- GBDT ----------------------------------------------------------------------

TEST(Gbdt, FitsLinearFunction) {
  const Dataset train = make_synthetic(800, 4, [](double a, double b, double c) {
    return 3.0 * a - 2.0 * b + 0.5 * c + 7.0;
  });
  const Dataset test = make_synthetic(200, 5, [](double a, double b, double c) {
    return 3.0 * a - 2.0 * b + 0.5 * c + 7.0;
  });
  GbdtParams p;
  p.num_trees = 300;
  p.max_depth = 5;
  p.learning_rate = 0.1;
  const GbdtModel model = GbdtModel::train(train, p);
  const auto preds = model.predict_all(test);
  const double err = rmse(preds, test.labels());
  // Labels span roughly [-13, 42]; a good fit is well under 10% of range.
  EXPECT_LT(err, 2.5);
  EXPECT_GT(r_squared(preds, test.labels()), 0.95);
}

TEST(Gbdt, FitsNonlinearInteraction) {
  const Dataset train =
      make_synthetic(1000, 6, [](double a, double b, double) { return a * b; });
  const Dataset test =
      make_synthetic(300, 7, [](double a, double b, double) { return a * b; });
  GbdtParams p;
  p.num_trees = 400;
  p.max_depth = 6;
  p.learning_rate = 0.1;
  const GbdtModel model = GbdtModel::train(train, p);
  EXPECT_GT(r_squared(model.predict_all(test), test.labels()), 0.9);
}

TEST(Gbdt, MoreTreesReduceTrainError) {
  const Dataset train = make_synthetic(400, 8, [](double a, double b, double c) {
    return std::sin(a) * 10 + b - c;
  });
  TrainLog log;
  GbdtParams p;
  p.num_trees = 200;
  p.learning_rate = 0.05;
  (void)GbdtModel::train(train, p, nullptr, &log);
  ASSERT_EQ(log.train_rmse.size(), 200u);
  EXPECT_LT(log.train_rmse.back(), log.train_rmse.front() * 0.5);
  // Monotone non-increasing apart from subsampling noise.
  EXPECT_LT(log.train_rmse[150], log.train_rmse[50]);
}

TEST(Gbdt, EarlyStoppingTruncates) {
  const Dataset train = make_synthetic(300, 9, [](double a, double, double) { return a; });
  const Dataset valid = make_synthetic(100, 10, [](double a, double, double) { return a; });
  GbdtParams p;
  p.num_trees = 2000;
  p.learning_rate = 0.3;
  p.early_stopping_rounds = 10;
  TrainLog log;
  const GbdtModel model = GbdtModel::train(train, p, &valid, &log);
  EXPECT_LT(model.num_trees(), 2000u);
  EXPECT_EQ(static_cast<int>(model.num_trees()), log.best_round);
}

TEST(Gbdt, FeatureImportanceIdentifiesSignal) {
  // Only x0 matters; importance must concentrate there.
  const Dataset train = make_synthetic(500, 11, [](double a, double, double) { return a * a; });
  GbdtParams p;
  p.num_trees = 50;
  const GbdtModel model = GbdtModel::train(train, p);
  const auto importance = model.feature_importance();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.9);
  EXPECT_NEAR(importance[0] + importance[1] + importance[2], 1.0, 1e-9);
}

TEST(Gbdt, DeterministicGivenSeed) {
  const Dataset train = make_synthetic(200, 12, [](double a, double b, double) { return a + b; });
  GbdtParams p;
  p.num_trees = 20;
  const GbdtModel m1 = GbdtModel::train(train, p);
  const GbdtModel m2 = GbdtModel::train(train, p);
  for (std::size_t i = 0; i < train.num_rows(); i += 13) {
    EXPECT_DOUBLE_EQ(m1.predict(train.row(i)), m2.predict(train.row(i)));
  }
}

TEST(Gbdt, ValidatesInputs) {
  Dataset empty({"a"});
  EXPECT_THROW((void)GbdtModel::train(empty, {}), std::invalid_argument);
  const Dataset train = make_synthetic(10, 13, [](double a, double, double) { return a; });
  GbdtParams p;
  p.num_trees = 0;
  EXPECT_THROW((void)GbdtModel::train(train, p), std::invalid_argument);
  p.num_trees = 1;
  p.subsample = 0.0;
  EXPECT_THROW((void)GbdtModel::train(train, p), std::invalid_argument);
  GbdtParams ok;
  ok.num_trees = 2;
  const GbdtModel model = GbdtModel::train(train, ok);
  const double narrow[1] = {0.0};
  EXPECT_THROW((void)model.predict(narrow), std::invalid_argument);
}

TEST(Gbdt, FileRoundTrip) {
  const Dataset train = make_synthetic(100, 14, [](double a, double, double) { return a; });
  GbdtParams p;
  p.num_trees = 10;
  const GbdtModel model = GbdtModel::train(train, p);
  const auto path = std::filesystem::temp_directory_path() / "aigml_model.gbdt";
  model.save(path);
  const GbdtModel back = GbdtModel::load(path);
  EXPECT_EQ(back.num_trees(), model.num_trees());
  EXPECT_DOUBLE_EQ(back.predict(train.row(0)), model.predict(train.row(0)));
  std::filesystem::remove(path);
}

TEST(Gbdt, PaperHyperparametersExposed) {
  const GbdtParams p = paper_gbdt_params();
  EXPECT_EQ(p.num_trees, 5000);
  EXPECT_EQ(p.max_depth, 16);
  EXPECT_DOUBLE_EQ(p.learning_rate, 0.01);
  EXPECT_DOUBLE_EQ(p.subsample, 0.8);
}

// ---- metrics --------------------------------------------------------------------

TEST(Metrics, KnownValues) {
  const std::vector<double> pred{1, 2, 3};
  const std::vector<double> truth{1, 2, 7};
  EXPECT_DOUBLE_EQ(mae(pred, truth), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(rmse(pred, truth), std::sqrt(16.0 / 3.0));
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  std::vector<double> short_vec{1};
  EXPECT_THROW((void)rmse(short_vec, truth), std::invalid_argument);
}

// ---- GNN ------------------------------------------------------------------------

/// Builds small random AIGs whose label is an easy graph statistic.
std::vector<aig::Aig> gnn_corpus(int count, std::uint64_t seed) {
  std::vector<aig::Aig> graphs;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    graphs.push_back(
        gen::random_control(6, 3, 20 + static_cast<int>(rng.next_below(60)), seed + static_cast<std::uint64_t>(i)));
  }
  return graphs;
}

TEST(Gnn, TrainingReducesLoss) {
  const auto graphs = gnn_corpus(24, 100);
  std::vector<const aig::Aig*> ptrs;
  std::vector<double> labels;
  for (const auto& g : graphs) {
    ptrs.push_back(&g);
    labels.push_back(static_cast<double>(g.num_ands()));
  }
  GnnParams p;
  p.epochs = 30;
  p.hidden = 8;
  GnnTrainLog log;
  (void)GnnModel::train(ptrs, labels, p, &log);
  ASSERT_EQ(log.epoch_mse.size(), 30u);
  EXPECT_LT(log.epoch_mse.back(), log.epoch_mse.front() * 0.7);
}

TEST(Gnn, LearnsSizeStatistic) {
  const auto graphs = gnn_corpus(40, 200);
  std::vector<const aig::Aig*> ptrs;
  std::vector<double> labels;
  for (const auto& g : graphs) {
    ptrs.push_back(&g);
    labels.push_back(static_cast<double>(g.num_ands()));
  }
  GnnParams p;
  p.epochs = 60;
  p.hidden = 8;
  const GnnModel model = GnnModel::train(ptrs, labels, p);
  // In-sample fit should correlate strongly with the target.
  std::vector<double> preds, truth;
  for (const auto& g : graphs) {
    preds.push_back(model.predict(g));
    truth.push_back(static_cast<double>(g.num_ands()));
  }
  EXPECT_GT(r_squared(preds, truth), 0.5);
}

TEST(Gnn, ValidatesInputs) {
  std::vector<const aig::Aig*> none;
  std::vector<double> labels;
  EXPECT_THROW((void)GnnModel::train(none, labels, {}), std::invalid_argument);
  const aig::Aig g = gen::parity_tree(3);
  const aig::Aig* one[1] = {&g};
  const double y[1] = {1.0};
  GnnParams bad;
  bad.layers = 0;
  EXPECT_THROW((void)GnnModel::train(one, y, bad), std::invalid_argument);
}

TEST(Gnn, DeterministicGivenSeed) {
  const auto graphs = gnn_corpus(6, 300);
  std::vector<const aig::Aig*> ptrs;
  std::vector<double> labels;
  for (const auto& g : graphs) {
    ptrs.push_back(&g);
    labels.push_back(static_cast<double>(g.num_ands()));
  }
  GnnParams p;
  p.epochs = 5;
  p.hidden = 4;
  const GnnModel m1 = GnnModel::train(ptrs, labels, p);
  const GnnModel m2 = GnnModel::train(ptrs, labels, p);
  EXPECT_DOUBLE_EQ(m1.predict(graphs[0]), m2.predict(graphs[0]));
}

}  // namespace
}  // namespace aigml::ml
