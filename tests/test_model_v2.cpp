// Tests for the .gbdt2 binary model container (DESIGN.md §13): the
// differential battery (text -> v2 -> load is bit-identical at quant=none;
// the batched SoA kernel matches the scalar walk exactly for every batch
// shape), quantization error gates for the fp16/int16 sections, degenerate
// forests (single leaf, empty ensemble), byte-level hostile-container
// corruption, registry hot-swap survival, and mmap lifetime under
// concurrent serving load.  The ModelV2* suites also run under TSan in CI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "features/features.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/model_v2.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

/// Temp directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::install(fault::FaultPlan::parse(spec)); }
  ~FaultScope() { fault::clear(); }
};

ml::Dataset synthetic(std::size_t rows, std::size_t width, std::uint64_t seed) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < width; ++i) names.push_back("f" + std::to_string(i));
  ml::Dataset d(names);
  Rng rng(seed);
  std::vector<double> row(width);
  for (std::size_t i = 0; i < rows; ++i) {
    for (double& v : row) v = rng.next_double(-5.0, 5.0);
    const double label = 3.0 * row[0] - 2.0 * row[1 % width] + row[0] * row[2 % width] +
                         0.25 * static_cast<double>(rng.next_below(8));
    d.append(row, label, "t");
  }
  return d;
}

ml::GbdtModel random_model(std::uint64_t seed, int trees, int depth, std::size_t width = 6) {
  ml::GbdtParams p;
  p.num_trees = trees;
  p.max_depth = depth;
  p.seed = seed;
  return ml::GbdtModel::train(synthetic(150, width, seed), p);
}

std::vector<double> random_matrix(std::uint64_t seed, std::size_t rows, std::size_t width) {
  Rng rng(seed);
  std::vector<double> values(rows * width);
  for (double& v : values) v = rng.next_double(-6.0, 6.0);
  return values;
}

/// save_v2 + load_v2 through a scratch file.
ml::GbdtModel v2_round_trip(const ml::GbdtModel& model, const TempDir& dir,
                            ml::QuantMode quant = ml::QuantMode::kNone) {
  const fs::path path = dir.path / "rt.gbdt2";
  model.save_v2(path);
  return ml::GbdtModel::load_v2(path, quant);
}

// ---- differential battery: text <-> v2 ----------------------------------------

TEST(ModelV2RoundTrip, LoadIsBitIdenticalToTextAtQuantNone) {
  TempDir dir("aigml_v2_rt");
  for (const std::uint64_t seed : {0x11ULL, 0x22ULL, 0x33ULL}) {
    const ml::GbdtModel original = random_model(seed, 12, 4);
    const ml::GbdtModel mapped = v2_round_trip(original, dir);
    EXPECT_TRUE(mapped.is_mapped());
    EXPECT_FALSE(original.is_mapped());
    EXPECT_EQ(mapped.quant_mode(), ml::QuantMode::kNone);
    EXPECT_EQ(mapped.num_trees(), original.num_trees());
    EXPECT_EQ(mapped.num_features(), original.num_features());
    EXPECT_EQ(mapped.base_score(), original.base_score());
    EXPECT_EQ(mapped.learning_rate(), original.learning_rate());

    const auto values = random_matrix(seed ^ 0xBEEF, 64, original.num_features());
    for (std::size_t r = 0; r < 64; ++r) {
      const std::span<const double> row(values.data() + r * original.num_features(),
                                        original.num_features());
      EXPECT_EQ(mapped.predict(row), original.predict(row)) << "seed " << seed << " row " << r;
    }
    // Importances read the gains section — must survive the round trip too.
    EXPECT_EQ(mapped.feature_importance(), original.feature_importance());
  }
}

/// Zeroes the internal-node `value` column of a text serialization.  That
/// column is a training-time node mean: predict(), feature_importance(), and
/// warm-start all ignore it, so the v2 container does not carry it and
/// export_trees() writes it back as 0.
std::string zero_internal_node_values(const std::string& text) {
  std::istringstream in(text);
  std::string line, out;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::vector<std::string> t;
    for (std::string tok; tokens >> tok;) t.push_back(std::move(tok));
    if (t.size() == 6 && t[0] != "gbdt" && t[0] != "-1") t[4] = "0";
    for (std::size_t i = 0; i < t.size(); ++i) out += (i ? " " : "") + t[i];
    out += '\n';
  }
  return out;
}

TEST(ModelV2RoundTrip, TextSerializationSurvivesV2) {
  // text -> v2 -> text preserves everything inference reads — structure,
  // thresholds, leaf values, per-node gains — byte-for-byte; only the
  // inference-irrelevant internal-node value column (see above) exports as 0.
  TempDir dir("aigml_v2_lossless");
  const ml::GbdtModel original = random_model(0x44, 10, 4);
  std::ostringstream before;
  original.serialize(before);
  const ml::GbdtModel mapped = v2_round_trip(original, dir);
  std::ostringstream after;
  mapped.serialize(after);
  EXPECT_EQ(zero_internal_node_values(before.str()), after.str());
  // And the re-exported text parses back to an equivalent predictor.
  std::istringstream round(after.str());
  const ml::GbdtModel reparsed = ml::GbdtModel::deserialize(round);
  const auto values = random_matrix(0x45, 32, original.num_features());
  EXPECT_EQ(reparsed.predict_all(values, 32), original.predict_all(values, 32));
}

TEST(ModelV2RoundTrip, SerializeV2IsDeterministicAndStable) {
  TempDir dir("aigml_v2_det");
  const ml::GbdtModel original = random_model(0x55, 8, 3);
  const std::string bytes = original.serialize_v2();
  EXPECT_EQ(bytes, original.serialize_v2());
  // Re-containering a v2-loaded model reproduces the same bytes (the quant
  // sections re-derive from the always-present fp64 section).
  const ml::GbdtModel mapped = v2_round_trip(original, dir);
  EXPECT_EQ(mapped.serialize_v2(), bytes);
}

TEST(ModelV2RoundTrip, InspectReportsTheHeader) {
  TempDir dir("aigml_v2_inspect");
  const ml::GbdtModel model = random_model(0x66, 7, 3);
  const fs::path path = dir.path / "m.gbdt2";
  model.save_v2(path);
  const ml::ModelV2Info info = ml::inspect_v2(path);
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.num_trees, model.num_trees());
  EXPECT_EQ(info.num_features, model.num_features());
  EXPECT_EQ(info.num_nodes, model.forest_nodes().size());
  EXPECT_EQ(info.base_score, model.base_score());
  EXPECT_TRUE(info.has_fp16);
  EXPECT_TRUE(info.has_int16);
  EXPECT_EQ(info.file_size, static_cast<std::uint64_t>(fs::file_size(path)));
}

// ---- degenerate forests -------------------------------------------------------

TEST(ModelV2Degenerate, SingleLeafForestRoundTrips) {
  TempDir dir("aigml_v2_leaf");
  std::istringstream in("gbdt 1 0.75 0.1 1 3\ntree 1\n-1 0 -1 -1 2.5 0\n");
  const ml::GbdtModel original = ml::GbdtModel::deserialize(in);
  const ml::GbdtModel mapped = v2_round_trip(original, dir);
  const std::vector<double> row = {1.0, 2.0, 3.0};
  EXPECT_EQ(mapped.predict(row), original.predict(row));
  EXPECT_EQ(mapped.predict(row), 0.75 + 0.1 * 2.5);
  EXPECT_EQ(mapped.predict_all(row, 1), std::vector<double>{original.predict(row)});
}

TEST(ModelV2Degenerate, EmptyEnsembleRoundTrips) {
  TempDir dir("aigml_v2_empty");
  std::istringstream in("gbdt 1 0.25 0.1 0 5\n");
  const ml::GbdtModel original = ml::GbdtModel::deserialize(in);
  ASSERT_EQ(original.num_trees(), 0u);
  const ml::GbdtModel mapped = v2_round_trip(original, dir);
  EXPECT_EQ(mapped.num_trees(), 0u);
  const std::vector<double> row(5, 1.0);
  EXPECT_EQ(mapped.predict(row), 0.25);
  const auto batch = random_matrix(0x77, 33, 5);
  EXPECT_EQ(mapped.predict_all(batch, 33), std::vector<double>(33, 0.25));
}

// ---- batched kernel == scalar walk, every shape -------------------------------

TEST(ModelV2Batch, BatchedMatchesScalarBitIdenticallyForAllShapes) {
  const ml::GbdtModel model = random_model(0x88, 20, 5);
  const std::size_t width = model.num_features();
  for (const std::size_t rows : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                 std::size_t{7}, std::size_t{15}, std::size_t{16},
                                 std::size_t{17}, std::size_t{31}, std::size_t{33},
                                 std::size_t{100}, std::size_t{257}, std::size_t{1000}}) {
    const auto values = random_matrix(0x99 + rows, rows, width);
    const std::vector<double> batched = model.predict_all(values, rows);
    ASSERT_EQ(batched.size(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::span<const double> row(values.data() + r * width, width);
      EXPECT_EQ(batched[r], model.predict(row)) << "rows=" << rows << " r=" << r;
    }
  }
}

TEST(ModelV2Batch, BatchedMatchesScalarUnderQuantization) {
  // The SoA kernel and the scalar walk must agree exactly in *every* quant
  // mode — quantization changes the values both read, not the traversal.
  TempDir dir("aigml_v2_batchq");
  const ml::GbdtModel original = random_model(0xAA, 16, 4);
  const std::size_t width = original.num_features();
  for (const ml::QuantMode quant :
       {ml::QuantMode::kNone, ml::QuantMode::kFp16, ml::QuantMode::kInt16}) {
    const ml::GbdtModel mapped = v2_round_trip(original, dir, quant);
    EXPECT_EQ(mapped.quant_mode(), quant);
    for (const std::size_t rows : {std::size_t{1}, std::size_t{17}, std::size_t{130}}) {
      const auto values = random_matrix(0xBB + rows, rows, width);
      const std::vector<double> batched = mapped.predict_all(values, rows);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::span<const double> row(values.data() + r * width, width);
        EXPECT_EQ(batched[r], mapped.predict(row))
            << ml::to_string(quant) << " rows=" << rows << " r=" << r;
      }
    }
  }
}

TEST(ModelV2Batch, DatasetOverloadMatchesSpanOverload) {
  const ml::GbdtModel model = random_model(0xCC, 10, 4);
  const ml::Dataset data = synthetic(97, model.num_features(), 0xDD);
  const auto via_dataset = model.predict_all(data);
  const auto via_span = model.predict_all(data.values(), data.num_rows());
  EXPECT_EQ(via_dataset, via_span);
}

// ---- quantization error gates -------------------------------------------------

/// Normalized error of quantized predictions against the fp64 reference:
/// max |q - exact| over the spread of the reference predictions.  Threshold
/// flips near split boundaries are part of the measured error.
double normalized_quant_error(const ml::GbdtModel& exact, const ml::GbdtModel& quantized,
                              std::uint64_t seed) {
  const std::size_t rows = 400;
  const auto values = random_matrix(seed, rows, exact.num_features());
  const auto ref = exact.predict_all(values, rows);
  const auto got = quantized.predict_all(values, rows);
  double lo = ref[0], hi = ref[0], worst = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    lo = std::min(lo, ref[i]);
    hi = std::max(hi, ref[i]);
    worst = std::max(worst, std::abs(got[i] - ref[i]));
  }
  const double spread = hi - lo;
  return spread > 0.0 ? worst / spread : worst;
}

TEST(ModelV2Quant, Fp16AndInt16StayWithinMeasuredErrorGate) {
  TempDir dir("aigml_v2_quant");
  for (const std::uint64_t seed : {0xE1ULL, 0xE2ULL}) {
    const ml::GbdtModel original = random_model(seed, 24, 5);
    const ml::GbdtModel fp16 = v2_round_trip(original, dir, ml::QuantMode::kFp16);
    const ml::GbdtModel int16 = v2_round_trip(original, dir, ml::QuantMode::kInt16);
    // binary16 keeps ~11 mantissa bits and int16 an affine 1/65534 grid; the
    // dominant error term is threshold flips near split boundaries, gated
    // here at 5% of the prediction spread (measured: well under 2%).
    EXPECT_LT(normalized_quant_error(original, fp16, seed ^ 1), 0.05) << "fp16 seed " << seed;
    EXPECT_LT(normalized_quant_error(original, int16, seed ^ 2), 0.05) << "int16 seed " << seed;
  }
}

TEST(ModelV2Quant, Fp16CodecIsExactForRepresentableValues) {
  for (const double v : {0.0, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0, 6.103515625e-05}) {
    EXPECT_EQ(ml::fp16_to_double(ml::fp16_from_double(v)), v) << v;
  }
  // Overflow saturates to infinity, and infinities survive the round trip.
  EXPECT_EQ(ml::fp16_to_double(ml::fp16_from_double(1e10)),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(ml::fp16_to_double(ml::fp16_from_double(-1e10)),
            -std::numeric_limits<double>::infinity());
  // Round-to-nearest-even: 1 + 2^-11 is exactly between 1.0 and the next
  // representable half (1 + 2^-10); RNE picks the even mantissa (1.0).
  EXPECT_EQ(ml::fp16_to_double(ml::fp16_from_double(1.0 + 0x1p-11)), 1.0);
  EXPECT_EQ(ml::fp16_to_double(ml::fp16_from_double(1.0 + 0x1.8p-10)), 1.0 + 0x1p-9);
}

// ---- hostile containers -------------------------------------------------------

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_v2_rejected(const TempDir& dir, const std::string& bytes, const char* context) {
  const fs::path path = dir.path / "hostile.gbdt2";
  write_bytes(path, bytes);
  try {
    (void)ml::GbdtModel::load_v2(path);
    ADD_FAILURE() << "accepted hostile container: " << context;
  } catch (const std::runtime_error& e) {
    EXPECT_STRNE(e.what(), "") << context;  // RELOAD surfaces this message
  }
}

/// Locates a section's [offset, length) by kind via the on-disk table.
bool find_section(const std::string& bytes, std::uint32_t kind, std::uint64_t* offset,
                  std::uint64_t* length) {
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 48, sizeof section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t entry = 56 + i * 24;
    std::uint32_t entry_kind = 0;
    std::memcpy(&entry_kind, bytes.data() + entry, sizeof entry_kind);
    if (entry_kind != kind) continue;
    std::memcpy(offset, bytes.data() + entry + 8, sizeof *offset);
    std::memcpy(length, bytes.data() + entry + 16, sizeof *length);
    return true;
  }
  return false;
}

TEST(ModelV2Hostile, LoadRejectsTruncationAtEveryPrefix) {
  TempDir dir("aigml_v2_trunc");
  const std::string bytes = random_model(0xF1, 6, 3).serialize_v2();
  // Every header/table byte boundary plus a sweep through the sections.
  for (std::size_t cut = 0; cut < std::min<std::size_t>(bytes.size(), 208); ++cut) {
    expect_v2_rejected(dir, bytes.substr(0, cut), "header/table truncation");
  }
  for (const double frac : {0.3, 0.5, 0.7, 0.9, 0.99}) {
    const auto cut = static_cast<std::size_t>(static_cast<double>(bytes.size()) * frac);
    expect_v2_rejected(dir, bytes.substr(0, cut), "section truncation");
  }
}

TEST(ModelV2Hostile, LoadRejectsStructuredCorruptions) {
  TempDir dir("aigml_v2_corrupt");
  const std::string valid = random_model(0xF2, 6, 3).serialize_v2();
  {
    const fs::path ok = dir.path / "ok.gbdt2";
    write_bytes(ok, valid);
    EXPECT_NO_THROW((void)ml::GbdtModel::load_v2(ok));  // baseline sanity
  }
  const auto patched = [&](std::size_t at, const void* data, std::size_t n) {
    std::string bytes = valid;
    std::memcpy(bytes.data() + at, data, n);
    return bytes;
  };
  const auto patch_u64 = [&](std::size_t at, std::uint64_t v) { return patched(at, &v, 8); };
  const auto patch_f64 = [&](std::size_t at, double v) { return patched(at, &v, 8); };

  expect_v2_rejected(dir, "GBTX" + valid.substr(4), "flipped magic");
  {
    std::uint32_t version = 3;
    expect_v2_rejected(dir, patched(4, &version, 4), "future version");
  }
  expect_v2_rejected(dir, patch_u64(8, 0xFFFFFFFFu), "implausible tree count");
  expect_v2_rejected(dir, patch_u64(16, 1u << 30), "implausible node count");
  expect_v2_rejected(dir, patch_u64(16, 1), "more trees than nodes");
  expect_v2_rejected(dir, patch_u64(24, 1u << 20), "implausible feature count");
  expect_v2_rejected(dir, patch_f64(32, std::nan("")), "NaN base score");
  {
    std::uint32_t count = 63;
    expect_v2_rejected(dir, patched(48, &count, 4), "section count beyond the table");
  }
  // First table entry: oversized length, then an offset past EOF (both must
  // fail the overflow-safe bounds check, not read or allocate).
  expect_v2_rejected(dir, patch_u64(56 + 16, ~0ULL), "oversized section length");
  expect_v2_rejected(dir, patch_u64(56 + 8, valid.size() + 8), "section offset past EOF");
  expect_v2_rejected(dir, patch_u64(56 + 8, 57), "misaligned section offset");

  std::uint64_t nodes_off = 0, nodes_len = 0;
  ASSERT_TRUE(find_section(valid, /*kSecNodes=*/1, &nodes_off, &nodes_len));
  // Walk the flat nodes to corrupt one leaf value and one internal edge.
  for (std::size_t at = nodes_off; at + 16 <= nodes_off + nodes_len; at += 16) {
    std::int32_t feature = 0;
    std::memcpy(&feature, valid.data() + at, sizeof feature);
    if (feature == -1) {
      expect_v2_rejected(dir, patch_f64(at + 8, std::nan("")), "NaN leaf value");
      expect_v2_rejected(dir, patch_f64(at + 8, HUGE_VAL), "Inf leaf value");
      std::int32_t right = 1;
      expect_v2_rejected(dir, patched(at + 4, &right, 4), "leaf with a right child");
      break;
    }
  }
  for (std::size_t at = nodes_off; at + 16 <= nodes_off + nodes_len; at += 16) {
    std::int32_t feature = 0;
    std::memcpy(&feature, valid.data() + at, sizeof feature);
    if (feature >= 0) {
      const auto index = static_cast<std::int32_t>((at - nodes_off) / 16);
      std::int32_t backward = index;  // right <= self: cycle / non-DFS
      expect_v2_rejected(dir, patched(at + 4, &backward, 4), "backward child index");
      std::int32_t huge = 1 << 29;
      expect_v2_rejected(dir, patched(at + 4, &huge, 4), "child index past the tree");
      std::int32_t wide = 1 << 14;
      expect_v2_rejected(dir, patched(at, &wide, 4), "split feature beyond model width");
      break;
    }
  }
}

TEST(ModelV2Hostile, MutationFuzzNeverCrashes) {
  // Seeded byte-flip fuzz over a valid container: every mutant must either
  // load (a flip can land in padding or stay a valid finite value) or throw
  // a clean exception — never crash, hang, or over-allocate.  Mutants that
  // load must also predict without tripping anything.
  TempDir dir("aigml_v2_fuzz");
  const std::string valid = random_model(0xF3, 5, 3).serialize_v2();
  const fs::path path = dir.path / "mutant.gbdt2";
  Rng rng(0xF00D);
  const std::vector<double> row(6, 0.5);
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(bytes.size())] ^= static_cast<char>(1 + rng.next_below(255));
    }
    write_bytes(path, bytes);
    try {
      const ml::GbdtModel mutant = ml::GbdtModel::load_v2(path);
      (void)mutant.predict(row);
      (void)mutant.predict_all(row, 1);
    } catch (const std::exception& e) {
      EXPECT_STRNE(e.what(), "");
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // the fuzzer is actually reaching the validator
}

TEST(ModelV2Hostile, RandomBytesAndEmptyFilesRejected) {
  TempDir dir("aigml_v2_garbage");
  expect_v2_rejected(dir, "", "empty file");
  expect_v2_rejected(dir, "GBT2", "magic only");
  Rng rng(0xF4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string bytes;
    const std::size_t n = rng.next_below(400);
    for (std::size_t i = 0; i < n; ++i) bytes.push_back(static_cast<char>(rng.next_below(256)));
    expect_v2_rejected(dir, bytes, "random bytes");
  }
  EXPECT_THROW((void)ml::GbdtModel::load_v2(dir.path / "missing.gbdt2"), std::runtime_error);
}

// ---- fault injection ----------------------------------------------------------

TEST(ModelV2Fault, TruncateSiteArmsTheMmapLoadPath) {
  TempDir dir("aigml_v2_fault");
  const ml::GbdtModel model = random_model(0xF5, 4, 3);
  const fs::path path = dir.path / "m.gbdt2";
  model.save_v2(path);
  {
    const FaultScope scope("model.truncate");
    EXPECT_THROW((void)ml::GbdtModel::load_v2(path), std::exception);
  }
  EXPECT_NO_THROW((void)ml::GbdtModel::load_v2(path));
}

// ---- registry integration -----------------------------------------------------

TEST(ModelV2Registry, ReloadPrefersV2SiblingAndReportsFormat) {
  TempDir dir("aigml_v2_reg");
  const ml::GbdtModel a = random_model(0xA1, 6, 3);
  const ml::GbdtModel b = random_model(0xB2, 6, 3);
  a.save(dir.path / "delay.gbdt");
  b.save_v2(dir.path / "delay.gbdt2");  // sibling shadows the text file
  serve::ModelRegistry registry(dir.path);
  const auto values = random_matrix(0xC3, 1, 6);
  EXPECT_EQ(registry.get("delay")->predict(values), b.predict(values));
  // is_mapped is tree-family-specific; the registry hands out ml::Model.
  const auto v2 = std::dynamic_pointer_cast<const ml::GbdtModel>(registry.get("delay"));
  ASSERT_NE(v2, nullptr);
  EXPECT_TRUE(v2->is_mapped());
  const auto infos = registry.list();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].format, "v2");
  EXPECT_GT(infos[0].load_seconds, 0.0);
}

TEST(ModelV2Registry, SurvivesCorruptV2Reload) {
  TempDir dir("aigml_v2_reg_corrupt");
  const ml::GbdtModel a = random_model(0xA3, 6, 3);
  const ml::GbdtModel b = random_model(0xB4, 6, 3);
  a.save_v2(dir.path / "delay.gbdt2");
  serve::ModelRegistry registry(dir.path);
  const auto values = random_matrix(0xC5, 1, 6);
  ASSERT_EQ(registry.get("delay")->predict(values), a.predict(values));

  // Corrupt bytes land on disk the way any real writer lands them — written
  // aside and renamed over (in-place mutation of a mapped file is outside
  // the mmapfile.hpp contract).  The reload reports the error and the old
  // snapshot keeps serving from the old inode.
  const std::string good = b.serialize_v2();
  write_bytes(dir.path / "delay.gbdt2.tmp", good.substr(0, good.size() / 2));
  fs::rename(dir.path / "delay.gbdt2.tmp", dir.path / "delay.gbdt2");
  const auto report = registry.reload();
  EXPECT_EQ(report.loaded, 0u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(registry.get("delay")->predict(values), a.predict(values));

  // The repaired file is picked up by the next reload.
  b.save_v2(dir.path / "delay.gbdt2");
  const auto repaired = registry.reload();
  EXPECT_EQ(repaired.loaded, 1u);
  EXPECT_EQ(registry.get("delay")->predict(values), b.predict(values));
}

// ---- mmap lifetime + concurrency ----------------------------------------------

TEST(ModelV2Concurrency, MappingOutlivesRenameUnlinkAndCopies) {
  TempDir dir("aigml_v2_lifetime");
  const ml::GbdtModel original = random_model(0xD1, 8, 3);
  const fs::path path = dir.path / "m.gbdt2";
  original.save_v2(path);
  auto mapped = std::make_unique<ml::GbdtModel>(ml::GbdtModel::load_v2(path));
  const ml::GbdtModel copy = *mapped;  // shares the mapping

  // Overwrite and then unlink the file: the mapping pins the old inode, so
  // both the original handle and the copy keep answering from the old bytes.
  random_model(0xD2, 8, 3).save_v2(path);
  fs::remove(path);
  const auto values = random_matrix(0xD3, 8, 6);
  const auto expect = original.predict_all(values, 8);
  EXPECT_EQ(mapped->predict_all(values, 8), expect);
  mapped.reset();  // the copy must not dangle into the destroyed instance
  EXPECT_EQ(copy.predict_all(values, 8), expect);
  EXPECT_TRUE(copy.is_mapped());
}

TEST(ModelV2Concurrency, HotSwapUnderPredictServiceLoad) {
  // Writers re-save and reload the v2 container while readers keep a stream
  // of predictions in flight: every answer must equal model A's or model B's
  // prediction exactly (snapshots are immutable; the mapping outlives every
  // in-flight batch).  Run under TSan in CI (ModelV2* filter).
  TempDir dir("aigml_v2_hotswap");
  ml::Dataset data(features::feature_names());
  Rng seed_rng(0xE0);
  std::vector<double> row(features::kNumFeatures);
  for (int i = 0; i < 80; ++i) {
    for (double& v : row) v = seed_rng.next_double(0.0, 50.0);
    data.append(row, row[0] + 2.0 * row[1], "t");
  }
  ml::GbdtParams params;
  params.num_trees = 6;
  params.max_depth = 3;
  const ml::GbdtModel a = ml::GbdtModel::train(data, params);
  params.seed ^= 0x5A5A;
  params.num_trees = 9;
  const ml::GbdtModel b = ml::GbdtModel::train(data, params);

  a.save_v2(dir.path / "delay.gbdt2");
  serve::ModelRegistry registry(dir.path);
  serve::PredictService service(registry);

  std::vector<double> probe(features::kNumFeatures, 1.5);
  const double from_a = a.predict(probe);
  const double from_b = b.predict(probe);
  ASSERT_NE(from_a, from_b);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const double got = service.submit_features("delay", probe).get();
        if (got != from_a && got != from_b) wrong.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    (swap % 2 == 0 ? b : a).save_v2(dir.path / "delay.gbdt2");
    const auto report = registry.reload();
    EXPECT_TRUE(report.errors.empty());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(registry.version("delay"), 20u);
}

}  // namespace
}  // namespace aigml
