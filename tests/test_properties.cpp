// Deeper property suites across modules:
//  * mutation testing — the equivalence checker must detect single-edge
//    corruptions (validates the oracle the whole test suite leans on),
//  * mapping under degraded libraries — correctness must not depend on
//    library richness,
//  * STA structural invariants,
//  * GBDT no-extrapolation property,
//  * balance idempotence (depth fixpoint).

#include <gtest/gtest.h>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "celllib/library.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"
#include "transforms/balance.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

/// Copies `g` with exactly one AND fanin's complement bit flipped (chosen by
/// `victim` over the live AND nodes).  Guaranteed structural corruption.
Aig mutate_one_edge(const Aig& g, std::size_t victim) {
  std::vector<NodeId> and_nodes;
  const auto reach = aig::reachable_from_outputs(g);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.is_and(id) && reach[id]) and_nodes.push_back(id);
  }
  const NodeId target = and_nodes[victim % and_nodes.size()];
  Aig out;
  out.reserve(g.num_nodes());
  std::vector<Lit> remap(g.num_nodes(), aig::kLitInvalid);
  remap[0] = aig::kLitFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i) remap[g.inputs()[i]] = out.add_input();
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    Lit f0 = aig::lit_not_if(remap[aig::lit_var(g.fanin0(id))],
                             aig::lit_is_complemented(g.fanin0(id)));
    const Lit f1 = aig::lit_not_if(remap[aig::lit_var(g.fanin1(id))],
                                   aig::lit_is_complemented(g.fanin1(id)));
    if (id == target) f0 = aig::lit_not(f0);  // the mutation
    remap[id] = out.make_and(f0, f1);
  }
  for (std::size_t i = 0; i < g.num_outputs(); ++i) {
    const Lit o = g.outputs()[i];
    out.add_output(aig::lit_not_if(remap[aig::lit_var(o)], aig::lit_is_complemented(o)));
  }
  return out;
}

class MutationDetection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MutationDetection, EquivalenceCheckerCatchesSingleEdgeFlips) {
  // The oracle validation: flipping one edge's polarity must (almost always)
  // change the function, and the checker must see it.  We verify on designs
  // small enough for exhaustive checking, so a PASS is a proof.
  for (const char* name : {"EX68", "EX00"}) {
    const Aig g = gen::build_design(name);
    const Aig mutant = mutate_one_edge(g, GetParam());
    // A mutation *can* coincidentally preserve the function (redundant
    // logic); exhaustive checking decides either way.  Require that the
    // checker's verdict matches brute-force simulation.
    aig::EquivalenceOptions opt;
    opt.exhaustive_limit = 16;  // EX00 has 16 PIs; 2^16 patterns is cheap
    const auto verdict = aig::check_equivalence(g, mutant, opt);
    ASSERT_TRUE(verdict.exhaustive);
    bool truly_equal = true;
    for (std::uint64_t p = 0; p < (1ULL << g.num_inputs()) && truly_equal; p += 977) {
      truly_equal = aig::simulate_pattern(g, p) == aig::simulate_pattern(mutant, p);
    }
    if (!truly_equal) {
      EXPECT_FALSE(verdict.equivalent) << name << " victim " << GetParam();
    }
    if (verdict.equivalent) {
      EXPECT_TRUE(truly_equal) << name << " victim " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Victims, MutationDetection,
                         ::testing::Values(0u, 3u, 7u, 13u, 29u, 41u, 57u, 71u));

TEST(MutationDetection, MostMutationsChangeTheFunction) {
  const Aig g = gen::build_design("EX68");
  int detected = 0;
  for (std::size_t victim = 0; victim < 20; ++victim) {
    if (!aig::equivalent(g, mutate_one_edge(g, victim))) ++detected;
  }
  EXPECT_GE(detected, 15) << "suspiciously many function-preserving mutations";
}

// ---- mapping under degraded libraries -----------------------------------------

TEST(MapperProperty, CorrectUnderMinimalLibrary) {
  // INV + NAND2 alone are functionally complete; mapping must still be
  // correct (just worse QoR).
  std::vector<cell::Cell> cells;
  {
    cell::Cell inv;
    inv.name = "INV";
    inv.num_inputs = 1;
    inv.function = ~aig::tt_var(0);
    inv.area_um2 = 3;
    inv.input_cap_ff = 2;
    inv.intrinsic_ps = 40;
    inv.resistance_ps_per_ff = 3;
    cells.push_back(inv);
    cell::Cell nand2;
    nand2.name = "NAND2";
    nand2.num_inputs = 2;
    nand2.function = ~(aig::tt_var(0) & aig::tt_var(1));
    nand2.area_um2 = 4;
    nand2.input_cap_ff = 2.3;
    nand2.intrinsic_ps = 50;
    nand2.resistance_ps_per_ff = 3.5;
    cells.push_back(nand2);
  }
  const cell::Library tiny("tiny", cells);
  for (const char* name : {"EX68", "EX00"}) {
    const Aig g = gen::build_design(name);
    const auto netlist = map::map_to_cells(g, tiny);
    EXPECT_TRUE(aig::equivalent(g, net::to_aig(netlist, tiny))) << name;
    // Minimal library needs more gates than the rich one.
    const auto rich = map::map_to_cells(g, cell::mini_sky130());
    EXPECT_GT(netlist.num_gates(), rich.num_gates()) << name;
  }
}

TEST(MapperProperty, RicherLibraryNeverWorseInEstimatedDelay) {
  // Adding cells can only add matching options: the delay-mode DP estimate
  // must not degrade when moving from the NAND kit to mini-sky130.
  const Aig g = gen::multiplier(6);
  std::vector<cell::Cell> subset;
  for (const auto& c : cell::mini_sky130().cells()) {
    if (c.name.rfind("INV", 0) == 0 || c.name.rfind("NAND2", 0) == 0) subset.push_back(c);
  }
  const cell::Library small("subset", subset);
  map::MapStats s_small, s_rich;
  (void)map::map_to_cells(g, small, {}, &s_small);
  (void)map::map_to_cells(g, cell::mini_sky130(), {}, &s_rich);
  EXPECT_LE(s_rich.estimated_arrival_ps, s_small.estimated_arrival_ps * 1.001);
}

// ---- STA invariants -------------------------------------------------------------

TEST(StaProperty, ArrivalMonotoneAlongEveryGate) {
  const auto& lib = cell::mini_sky130();
  const Aig g = gen::build_design("EX00");
  const auto netlist = map::map_to_cells(g, lib);
  const auto r = sta::run_sta(netlist, lib, {});
  for (const auto& gate : netlist.gates()) {
    for (const auto in : gate.inputs) {
      EXPECT_GT(r.net_arrival_ps[gate.output], r.net_arrival_ps[in])
          << "gate output must arrive after its inputs";
    }
  }
}

TEST(StaProperty, SlackNonNegativeAtDefaultTargetAndZeroOnCriticalPath) {
  const auto& lib = cell::mini_sky130();
  const Aig g = gen::build_design("EX68");
  const auto netlist = map::map_to_cells(g, lib);
  const auto r = sta::run_sta(netlist, lib, {});
  for (std::size_t id = 0; id < r.net_slack_ps.size(); ++id) {
    EXPECT_GE(r.net_slack_ps[id], -1e-6);
  }
  // Every gate on the reported critical path has (near) zero slack.
  for (const auto& element : r.critical_path) {
    const auto out = netlist.gate(element.gate).output;
    EXPECT_NEAR(r.net_slack_ps[out], 0.0, 1e-6);
  }
}

TEST(StaProperty, DelayScalesWithWireCap) {
  const auto& lib = cell::mini_sky130();
  const Aig g = gen::build_design("EX00");
  const auto netlist = map::map_to_cells(g, lib);
  double last = 0.0;
  for (const double wire : {0.0, 0.6, 1.5, 3.0}) {
    sta::StaParams p;
    p.wire_cap_per_fanout_ff = wire;
    const auto r = sta::run_sta(netlist, lib, p);
    EXPECT_GT(r.max_delay_ps, last);
    last = r.max_delay_ps;
  }
}

// ---- GBDT no-extrapolation ---------------------------------------------------------

TEST(GbdtProperty, PredictionsBoundedByLabelRange) {
  // Regression trees partition the input space; predictions are convex-ish
  // combinations of training labels and can never leave [min, max] by more
  // than numerical noise.  (This is *why* variant pools must cover the
  // delay range of unseen designs — see DESIGN.md §4b.)
  Rng rng(5);
  ml::Dataset train({"x"});
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 400; ++i) {
    const double x[1] = {rng.next_double(0, 10)};
    const double y = 100 + 30 * std::sin(x[0]) + rng.next_gaussian();
    lo = std::min(lo, y);
    hi = std::max(hi, y);
    train.append(x, y, "t");
  }
  const auto model = ml::GbdtModel::train(train, ml::GbdtParams{});
  for (const double probe : {-50.0, 0.0, 5.0, 10.0, 100.0}) {
    const double x[1] = {probe};
    const double pred = model.predict(x);
    EXPECT_GE(pred, lo - 1.0);
    EXPECT_LE(pred, hi + 1.0);
  }
}

// ---- balance fixpoint -----------------------------------------------------------------

TEST(BalanceProperty, DepthFixpointAfterOnePass) {
  for (const char* name : {"EX00", "EX68", "EX02"}) {
    const Aig g = gen::build_design(name);
    const Aig once = transforms::balance(g);
    const Aig twice = transforms::balance(once);
    EXPECT_EQ(aig::aig_level(once), aig::aig_level(twice)) << name;
    EXPECT_TRUE(aig::equivalent(once, twice)) << name;
  }
}

}  // namespace
}  // namespace aigml
