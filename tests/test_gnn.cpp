// Tests for the GNN model family (DESIGN.md §14): training determinism at
// any thread count, the .gnn container's round-trip and hostile-input
// battery (truncation at every prefix, every single-byte mutation), the
// batched-vs-scalar bit-identity contract across batch shapes — including
// the chunk-parallel path predict_graphs takes on large batches — warm-start
// refresh semantics, and cost=gnn: SA trajectory identity for inc=0|1 and
// par=0|1.  The Gnn* suites also run under TSan in CI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "aig/aig.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "ml/gnn.hpp"
#include "ml/model.hpp"
#include "opt/cost_spec.hpp"
#include "opt/sa.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

/// Temp directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// Restores the process-default thread count on scope exit.
struct ThreadScope {
  explicit ThreadScope(int n) { set_default_threads(n); }
  ~ThreadScope() { set_default_threads(0); }
};

/// `count` structurally distinct variants of a parity tree — small graphs,
/// so whole-corpus sweeps stay fast.
std::vector<aig::Aig> variant_corpus(int width, int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<aig::Aig> pool{gen::parity_tree(width).cleanup()};
  std::unordered_set<std::uint64_t> seen{pool.front().structural_hash()};
  int attempts = 0;
  while (static_cast<int>(pool.size()) < count && attempts < count * 30) {
    ++attempts;
    const std::size_t pick = std::max(rng.next_below(pool.size()), rng.next_below(pool.size()));
    aig::Aig candidate = flow::random_variant_step(pool[pick], rng);
    if (!seen.insert(candidate.structural_hash()).second) continue;
    pool.push_back(std::move(candidate));
  }
  return pool;
}

std::vector<const aig::Aig*> as_pointers(const std::vector<aig::Aig>& corpus) {
  std::vector<const aig::Aig*> out;
  for (const aig::Aig& g : corpus) out.push_back(&g);
  return out;
}

std::vector<double> node_count_labels(const std::vector<aig::Aig>& corpus) {
  std::vector<double> out;
  for (const aig::Aig& g : corpus) out.push_back(static_cast<double>(g.num_ands()));
  return out;
}

/// A small trained model shared across the container tests.
ml::GnnModel tiny_model(int hidden = 3, int layers = 1, int epochs = 3) {
  const std::vector<aig::Aig> corpus = variant_corpus(5, 12, 0xA1);
  ml::GnnParams params;
  params.hidden = hidden;
  params.layers = layers;
  params.epochs = epochs;
  return ml::GnnModel::train(as_pointers(corpus), node_count_labels(corpus), params);
}

}  // namespace

// ---- training determinism ---------------------------------------------------

// The contract gnn.hpp states: training is single-threaded and seeded, so a
// fixed seed yields bit-identical weights regardless of the process-default
// thread count (which other subsystems may set arbitrarily).
TEST(GnnTrain, DeterministicAcrossRerunsAndThreadCounts) {
  const std::vector<aig::Aig> corpus = variant_corpus(5, 16, 0xB2);
  const auto graphs = as_pointers(corpus);
  const auto labels = node_count_labels(corpus);
  ml::GnnParams params;
  params.hidden = 4;
  params.layers = 2;
  params.epochs = 4;

  const std::string first = ml::GnnModel::train(graphs, labels, params).serialize();
  const std::string again = ml::GnnModel::train(graphs, labels, params).serialize();
  EXPECT_EQ(first, again) << "same seed, same corpus, different weights";

  for (const int threads : {1, 3, 7}) {
    ThreadScope scope(threads);
    const std::string at_n = ml::GnnModel::train(graphs, labels, params).serialize();
    EXPECT_EQ(first, at_n) << "training drifted at default_num_threads=" << threads;
  }

  ml::GnnParams other = params;
  other.seed = params.seed + 1;
  EXPECT_NE(first, ml::GnnModel::train(graphs, labels, other).serialize())
      << "seed is not reaching the weight init";
}

// ---- .gnn container ---------------------------------------------------------

TEST(GnnContainer, SerializeDeserializeRoundTrip) {
  const ml::GnnModel model = tiny_model();
  const std::string bytes = model.serialize();
  const ml::GnnModel back = ml::GnnModel::deserialize(bytes);
  EXPECT_EQ(bytes, back.serialize());
  EXPECT_EQ(model.params().hidden, back.params().hidden);
  EXPECT_EQ(model.params().layers, back.params().layers);
  EXPECT_EQ(model.label_mean(), back.label_mean());
  EXPECT_EQ(model.label_std(), back.label_std());

  const aig::Aig probe = gen::parity_tree(6).cleanup();
  EXPECT_EQ(model.predict(probe), back.predict(probe));
}

TEST(GnnContainer, SaveLoadRoundTripAndLoadAnyDispatch) {
  TempDir dir("aigml_gnn_save");
  const ml::GnnModel model = tiny_model();
  const fs::path path = dir.path / "delay.gnn";
  model.save(path);

  const ml::GnnModel back = ml::GnnModel::load(path);
  EXPECT_EQ(model.serialize(), back.serialize());

  const std::shared_ptr<const ml::Model> any = ml::load_model_any(path);
  ASSERT_NE(any, nullptr);
  EXPECT_EQ(any->family(), ml::ModelFamily::kGnn);
  EXPECT_TRUE(any->needs_graph());
  const aig::Aig probe = gen::parity_tree(4).cleanup();
  EXPECT_EQ(model.predict(probe), any->predict(probe));
}

TEST(GnnHostile, RejectsTruncationAtEveryPrefix) {
  const std::string bytes = tiny_model().serialize();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)ml::GnnModel::deserialize(bytes.substr(0, cut)), std::runtime_error)
        << "prefix of " << cut << " bytes accepted";
  }
  // One byte appended is as malformed as one byte missing.
  EXPECT_THROW((void)ml::GnnModel::deserialize(bytes + '\0'), std::runtime_error);
}

TEST(GnnHostile, RejectsEverySingleByteMutation) {
  // Every byte of the container is covered by magic, bounded-dims checks,
  // the implied-size check, or the checksum — so no single-byte flip may
  // load.  Exhaustive over positions, two flip patterns each.
  const std::string valid = tiny_model().serialize();
  for (std::size_t at = 0; at < valid.size(); ++at) {
    for (const char flip : {static_cast<char>(0x01), static_cast<char>(0xFF)}) {
      std::string mutant = valid;
      mutant[at] ^= flip;
      EXPECT_THROW((void)ml::GnnModel::deserialize(mutant), std::runtime_error)
          << "byte " << at << " xor " << static_cast<int>(flip) << " accepted";
    }
  }
}

// ---- batched inference ------------------------------------------------------

// The tentpole contract: predict_graphs is bit-identical to per-graph
// predict at every batch shape, through both the single-engine path (small
// batches) and the chunk-parallel path (large batches, any thread count).
TEST(GnnBatch, BatchedMatchesScalarAtEveryShape1To200) {
  const std::vector<aig::Aig> corpus = variant_corpus(5, 200, 0xC3);
  ASSERT_GE(corpus.size(), 64u) << "variant generator starved";
  const auto graphs = as_pointers(corpus);

  ml::GnnParams params;
  params.hidden = 6;
  params.layers = 2;
  params.epochs = 2;
  const ml::GnnModel model =
      ml::GnnModel::train(graphs, node_count_labels(corpus), params);

  std::vector<double> scalar;
  for (const aig::Aig* g : graphs) scalar.push_back(model.predict(*g));

  // Force a multi-chunk split even on 1-core runners: n >= 16 fans out.
  ThreadScope scope(4);
  for (std::size_t n = 1; n <= graphs.size(); ++n) {
    const std::vector<double> batched =
        model.predict_graphs(std::span<const aig::Aig* const>(graphs.data(), n));
    ASSERT_EQ(batched.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], scalar[i]) << "shape " << n << " graph " << i;
    }
  }
}

TEST(GnnBatch, ChunkCountDoesNotChangeResults) {
  const std::vector<aig::Aig> corpus = variant_corpus(6, 48, 0xD4);
  const auto graphs = as_pointers(corpus);
  ml::GnnParams params;
  params.hidden = 4;
  params.layers = 1;
  params.epochs = 2;
  const ml::GnnModel model =
      ml::GnnModel::train(graphs, node_count_labels(corpus), params);

  std::vector<double> reference;
  {
    ThreadScope scope(1);
    reference = model.predict_graphs(graphs);
  }
  for (const int threads : {2, 3, 5, 16}) {
    ThreadScope scope(threads);
    const std::vector<double> chunked = model.predict_graphs(graphs);
    ASSERT_EQ(reference.size(), chunked.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(reference[i], chunked[i]) << "threads " << threads << " graph " << i;
    }
  }
}

TEST(GnnBatch, EmptyBatchYieldsEmpty) {
  const ml::GnnModel model = tiny_model();
  EXPECT_TRUE(model.predict_graphs({}).empty());
}

// ---- Model-interface edges --------------------------------------------------

TEST(GnnModel, FlatFeatureRowThrowsNamingTheFamily) {
  const ml::GnnModel model = tiny_model();
  const std::vector<double> row(6, 0.5);
  try {
    (void)model.predict(std::span<const double>(row));
    FAIL() << "flat-row predict did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("gnn"), std::string::npos) << e.what();
  }
}

// ---- warm start -------------------------------------------------------------

TEST(GnnTrain, WarmStartRefreshesAndKeepsScale) {
  const std::vector<aig::Aig> corpus = variant_corpus(5, 14, 0xE5);
  const auto graphs = as_pointers(corpus);
  const auto labels = node_count_labels(corpus);
  ml::GnnParams params;
  params.hidden = 4;
  params.layers = 1;
  params.epochs = 3;
  const ml::GnnModel base = ml::GnnModel::train(graphs, labels, params);

  // A warm refresh from the base differs from a cold fit (it starts at the
  // base's weights, not the seed init) and still predicts finite values.
  const ml::GnnModel warm = ml::GnnModel::train(graphs, labels, params, nullptr, &base);
  const ml::GnnModel cold = ml::GnnModel::train(graphs, labels, params);
  EXPECT_NE(warm.serialize(), cold.serialize());
  EXPECT_TRUE(std::isfinite(warm.predict(corpus.front())));

  // Dimension mismatch between warm source and params is a caller bug.
  ml::GnnParams wider = params;
  wider.hidden = 8;
  EXPECT_THROW((void)ml::GnnModel::train(graphs, labels, wider, nullptr, &base),
               std::invalid_argument);
}

// ---- cost=gnn: through the search -------------------------------------------

namespace {

opt::OptResult run_sa_gnn(const aig::Aig& g, const std::string& spec, bool incremental,
                          int windows, bool parallel) {
  opt::CostContext ctx;
  const auto cost = opt::make_cost(spec, ctx);
  opt::SaParams params;
  params.iterations = 40;
  params.seed = 11;
  params.incremental = incremental;
  params.windows = windows;
  params.parallel = parallel;
  opt::StopCondition stop;
  stop.max_iterations = params.iterations;
  return opt::SaStrategy(params).run(g, *cost, stop);
}

void expect_same_trajectory(const opt::OptResult& a, const opt::OptResult& b,
                            const char* where) {
  ASSERT_EQ(a.history.size(), b.history.size()) << where;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].script_index, b.history[i].script_index) << where << " iter " << i;
    EXPECT_EQ(a.history[i].delay, b.history[i].delay) << where << " iter " << i;
    EXPECT_EQ(a.history[i].area, b.history[i].area) << where << " iter " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost) << where << " iter " << i;
    EXPECT_EQ(a.history[i].accepted, b.history[i].accepted) << where << " iter " << i;
  }
  EXPECT_EQ(a.initial_cost, b.initial_cost) << where;
  EXPECT_EQ(a.best_cost, b.best_cost) << where;
}

}  // namespace

// The acceptance trajectory contract: `cost=gnn:<dir>` drives SA with
// bit-identical trajectories whether move evaluation is incremental or
// from-scratch, and (windowed) whether proposals evaluate serially or on the
// thread pool.
TEST(GnnCost, SaTrajectoryIdenticalIncrementalAndParallel) {
  TempDir dir("aigml_gnn_cost");
  const std::vector<aig::Aig> corpus = variant_corpus(6, 16, 0xF6);
  const auto graphs = as_pointers(corpus);
  ml::GnnParams params;
  params.hidden = 4;
  params.layers = 1;
  params.epochs = 2;
  std::vector<double> delay_labels, area_labels;
  for (const aig::Aig& g : corpus) {
    delay_labels.push_back(50.0 + static_cast<double>(g.num_nodes()));
    area_labels.push_back(2.0 * static_cast<double>(g.num_ands()));
  }
  ml::GnnModel::train(graphs, delay_labels, params).save(dir.path / "delay.gnn");
  ml::GnnModel::train(graphs, area_labels, params).save(dir.path / "area.gnn");

  const std::string spec = "gnn:" + dir.path.string();
  const aig::Aig g = gen::parity_tree(7).cleanup();

  const opt::OptResult inc = run_sa_gnn(g, spec, /*incremental=*/true, 0, false);
  const opt::OptResult scratch = run_sa_gnn(g, spec, /*incremental=*/false, 0, false);
  expect_same_trajectory(inc, scratch, "inc=1 vs inc=0");

  const opt::OptResult serial = run_sa_gnn(g, spec, true, /*windows=*/4, /*parallel=*/false);
  for (const int threads : {2, 4}) {
    ThreadScope scope(threads);
    const opt::OptResult par = run_sa_gnn(g, spec, true, 4, /*parallel=*/true);
    expect_same_trajectory(serial, par, "par=0 vs par=1");
  }
}

}  // namespace aigml
