// Speculative parallel search (DESIGN.md §12): window partitioning, window
// extract/splice surgery, DirtyRegion conflict detection, and the windowed
// move engine itself.  The load-bearing properties are fuzz-enforced:
// disjoint TFI-bounded windows, conflict exactness against a brute-force
// boolean-vector intersection, splice equivalence under arbitrary registry
// scripts, and — the engine's hard contract — bit-identical trajectories for
// par=0 vs par=1 at any thread count.  Suites are named so the TSan CI job
// (Spec*) races the parallel engine and the chaos job (Fault*) drives the
// spec.commit_abort site.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "aig/dirty.hpp"
#include "aig/sim.hpp"
#include "gen/circuits.hpp"
#include "opt/cost.hpp"
#include "opt/greedy.hpp"
#include "opt/portfolio.hpp"
#include "opt/recipe.hpp"
#include "opt/sa.hpp"
#include "spec/conflict.hpp"
#include "spec/window.hpp"
#include "transforms/scripts.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

using aig::Aig;
using aig::DirtyRegion;
using aig::Lit;
using aig::NodeId;

// Restores process-global knobs even when an ASSERT bails out of a test.
struct ThreadsGuard {
  ~ThreadsGuard() { set_default_threads(0); }
};
struct FaultGuard {
  ~FaultGuard() { fault::clear(); }
};

// A small pool of structurally diverse graphs; fuzz rounds mutate rotating
// copies with registry scripts so partitions see many shapes cheaply.
std::vector<Aig> base_graphs() {
  std::vector<Aig> pool;
  pool.push_back(gen::multiplier(4));
  pool.push_back(gen::multiplier_wallace(4));
  pool.push_back(gen::adder_cla(8));
  pool.push_back(gen::comparator(6));
  pool.push_back(gen::alu(4));
  return pool;
}

// ---- SpecWindow: partitioner invariants -------------------------------------

TEST(SpecWindow, PartitionInvariantsFuzz) {
  const auto& registry = transforms::script_registry();
  std::vector<Aig> pool = base_graphs();
  Rng rng(0x51ec'0001);
  int rounds = 0;
  for (int iter = 0; rounds < 500; ++iter) {
    Aig& g = pool[iter % pool.size()];
    if (iter % 5 == 4) g = registry.apply(registry.random_index(rng), g);

    spec::WindowParams params;
    params.max_windows = static_cast<int>(rng.next_int(1, 8));
    params.max_window_nodes = rng.next_bool(0.5) ? 0 : rng.next_int(4, 64);
    const std::vector<std::uint32_t> levels = aig::levels(g);
    const std::vector<spec::Window> windows = spec::partition_windows(g, levels, params);
    ++rounds;

    ASSERT_LE(windows.size(), static_cast<std::size_t>(params.max_windows));
    const std::size_t cap =
        params.max_window_nodes > 0
            ? params.max_window_nodes
            : std::max(spec::kMinWindowNodes,
                       g.num_ands() / static_cast<std::size_t>(params.max_windows));
    std::vector<char> claimed(g.num_nodes(), 0);
    for (const spec::Window& w : windows) {
      ASSERT_GE(w.nodes.size(), 1u);
      ASSERT_LE(w.nodes.size(), cap);
      ASSERT_TRUE(std::is_sorted(w.nodes.begin(), w.nodes.end()));
      for (const NodeId id : w.nodes) {
        ASSERT_LT(id, g.num_nodes());
        ASSERT_TRUE(g.is_and(id));
        ASSERT_EQ(claimed[id], 0) << "windows not disjoint at node " << id;
        claimed[id] = 1;
      }
    }
  }
}

TEST(SpecWindow, PartitionIsDeterministic) {
  const Aig g = gen::multiplier(5);
  const std::vector<std::uint32_t> levels = aig::levels(g);
  spec::WindowParams params;
  params.max_windows = 6;
  const auto a = spec::partition_windows(g, levels, params);
  const auto b = spec::partition_windows(g, levels, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].nodes, b[i].nodes);
}

TEST(SpecWindow, PartitionRejectsBadArguments) {
  const Aig g = gen::adder_ripple(4);
  const std::vector<std::uint32_t> levels = aig::levels(g);
  spec::WindowParams params;
  params.max_windows = 0;
  EXPECT_THROW((void)spec::partition_windows(g, levels, params), std::invalid_argument);
  params.max_windows = 2;
  const std::vector<std::uint32_t> short_levels(levels.begin(), levels.end() - 1);
  EXPECT_THROW((void)spec::partition_windows(g, short_levels, params), std::invalid_argument);
}

// ---- SpecWindow: extract / splice surgery -----------------------------------

// Splicing the *unmodified* cut back must reproduce the original functions.
TEST(SpecWindow, SpliceIdentityRoundTrip) {
  const Aig g = gen::multiplier(4);
  const std::vector<std::uint32_t> levels = aig::levels(g);
  spec::WindowParams params;
  params.max_windows = 4;
  for (const spec::Window& w : spec::partition_windows(g, levels, params)) {
    const spec::WindowCut cut = spec::extract_window(g, w);
    const spec::SpliceResult res = spec::splice_window(g, cut, cut.sub);
    EXPECT_TRUE(aig::equivalent(g, res.graph));
    EXPECT_EQ(res.node_map[0], aig::kLitFalse);
    for (const NodeId pi : g.inputs()) EXPECT_NE(res.node_map[pi], aig::kLitInvalid);
  }
}

// The core soundness property: splicing any script-optimized sub-AIG back
// yields a graph equivalent to the original, and the returned node_map sends
// every surviving var to a literal computing the same function (checked by
// bit-parallel simulation on a shared input batch).
TEST(SpecWindow, SpliceEquivalenceFuzz) {
  const auto& registry = transforms::script_registry();
  std::vector<Aig> pool = base_graphs();
  Rng rng(0x51ec'0002);
  for (int round = 0; round < 120; ++round) {
    Aig& g = pool[round % pool.size()];
    if (round % 7 == 6) g = registry.apply(registry.random_index(rng), g);

    spec::WindowParams params;
    params.max_windows = static_cast<int>(rng.next_int(2, 6));
    const std::vector<std::uint32_t> levels = aig::levels(g);
    const std::vector<spec::Window> windows = spec::partition_windows(g, levels, params);
    ASSERT_FALSE(windows.empty());
    const spec::Window& w = windows[rng.next_below(windows.size())];

    const spec::WindowCut cut = spec::extract_window(g, w);
    const Aig optimized = registry.apply(registry.random_index(rng), cut.sub);
    ASSERT_TRUE(aig::equivalent(cut.sub, optimized));
    const spec::SpliceResult res = spec::splice_window(g, cut, optimized);
    ASSERT_TRUE(aig::equivalent(g, res.graph)) << "round " << round;

    // node_map functional check on one 64-pattern batch.
    std::vector<std::uint64_t> pi_words(g.num_inputs());
    for (auto& word : pi_words) word = rng.next();
    const std::vector<std::uint64_t> before = aig::simulate_all_nodes(g, pi_words);
    const std::vector<std::uint64_t> after = aig::simulate_all_nodes(res.graph, pi_words);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const Lit mapped = res.node_map[v];
      if (mapped == aig::kLitInvalid) continue;
      const std::uint64_t got =
          after[aig::lit_var(mapped)] ^ (aig::lit_is_complemented(mapped) ? ~0ULL : 0ULL);
      ASSERT_EQ(before[v], got) << "node_map wrong for var " << v << " in round " << round;
    }
  }
}

TEST(SpecWindow, SpliceRejectsArityMismatch) {
  const Aig g = gen::adder_cla(6);
  const std::vector<std::uint32_t> levels = aig::levels(g);
  spec::WindowParams params;
  params.max_windows = 2;
  const auto windows = spec::partition_windows(g, levels, params);
  ASSERT_FALSE(windows.empty());
  const spec::WindowCut cut = spec::extract_window(g, windows[0]);
  Aig wrong;  // one PI, one PO — certainly not the cut's arity
  wrong.add_output(wrong.add_input());
  EXPECT_THROW((void)spec::splice_window(g, cut, wrong), std::invalid_argument);
}

// ---- SpecConflict: exactness against brute force ----------------------------

// Reference implementation: materialize each region's id set (changed ids,
// grow/shrink tail, the shared "outputs" slot, everything under `full`) as a
// boolean vector and intersect.
bool brute_force_overlap(const DirtyRegion& a, const DirtyRegion& b) {
  if (a.empty() || b.empty()) return false;
  const std::size_t n = std::max({a.before_num_nodes, a.after_num_nodes, b.before_num_nodes,
                                  b.after_num_nodes}) +
                        1;
  const auto bits = [n](const DirtyRegion& r) {
    std::vector<char> v(n + 1, 0);  // index n = the outputs slot
    if (r.full) {
      std::fill(v.begin(), v.end(), 1);
      return v;
    }
    for (const NodeId id : r.changed) v[id] = 1;
    const std::size_t lo = std::min(r.before_num_nodes, r.after_num_nodes);
    const std::size_t hi = std::max(r.before_num_nodes, r.after_num_nodes);
    for (std::size_t i = lo; i < hi && i < n; ++i) v[i] = 1;
    if (r.outputs_changed) v[n] = 1;
    return v;
  };
  const std::vector<char> va = bits(a);
  const std::vector<char> vb = bits(b);
  for (std::size_t i = 0; i <= n; ++i) {
    if (va[i] != 0 && vb[i] != 0) return true;
  }
  return false;
}

DirtyRegion random_region(Rng& rng) {
  DirtyRegion r;
  if (rng.next_bool(0.05)) {
    r.full = true;
    r.before_num_nodes = r.after_num_nodes = rng.next_int(10, 40);
    return r;
  }
  r.before_num_nodes = rng.next_int(10, 60);
  r.after_num_nodes = rng.next_int(10, 60);
  r.outputs_changed = rng.next_bool(0.3);
  const std::size_t lo = std::min(r.before_num_nodes, r.after_num_nodes);
  const int num_changed = static_cast<int>(rng.next_int(0, 6));
  for (int i = 0; i < num_changed; ++i) {
    r.changed.push_back(static_cast<NodeId>(rng.next_below(lo)));
  }
  std::sort(r.changed.begin(), r.changed.end());
  r.changed.erase(std::unique(r.changed.begin(), r.changed.end()), r.changed.end());
  r.before_changed.resize(r.changed.size());
  return r;
}

TEST(SpecConflict, MatchesBruteForceOnSyntheticRegionsFuzz) {
  Rng rng(0x51ec'0003);
  for (int round = 0; round < 600; ++round) {
    const DirtyRegion a = random_region(rng);
    const DirtyRegion b = random_region(rng);
    EXPECT_EQ(spec::regions_overlap(a, b), brute_force_overlap(a, b)) << "round " << round;
    // Symmetry comes free with exactness, but assert it explicitly.
    EXPECT_EQ(spec::regions_overlap(a, b), spec::regions_overlap(b, a)) << "round " << round;
  }
}

// Same exactness check on *real* regions: every pair of window proposals
// diffed against the same base, exactly what the committer intersects.
TEST(SpecConflict, MatchesBruteForceOnTracedTransformRegions) {
  const auto& registry = transforms::script_registry();
  std::vector<Aig> pool = base_graphs();
  Rng rng(0x51ec'0004);
  for (int round = 0; round < 40; ++round) {
    Aig& g = pool[round % pool.size()];
    if (round % 4 == 3) g = registry.apply(registry.random_index(rng), g);

    spec::WindowParams params;
    params.max_windows = 4;
    const std::vector<std::uint32_t> levels = aig::levels(g);
    std::vector<DirtyRegion> regions;
    for (const spec::Window& w : spec::partition_windows(g, levels, params)) {
      const spec::WindowCut cut = spec::extract_window(g, w);
      const Aig optimized = registry.apply(registry.random_index(rng), cut.sub);
      regions.push_back(aig::diff_region(g, spec::splice_window(g, cut, optimized).graph));
    }
    for (std::size_t i = 0; i < regions.size(); ++i) {
      for (std::size_t j = i + 1; j < regions.size(); ++j) {
        EXPECT_EQ(spec::regions_overlap(regions[i], regions[j]),
                  brute_force_overlap(regions[i], regions[j]))
            << "round " << round << " pair (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(SpecConflict, EdgeCases) {
  DirtyRegion empty;
  empty.before_num_nodes = empty.after_num_nodes = 20;
  DirtyRegion full;
  full.full = true;
  full.before_num_nodes = full.after_num_nodes = 20;
  EXPECT_FALSE(spec::regions_overlap(empty, empty));
  EXPECT_FALSE(spec::regions_overlap(empty, full));  // empty conflicts with nothing
  EXPECT_TRUE(spec::regions_overlap(full, full));

  const auto tail_region = [](std::size_t before, std::size_t after) {
    DirtyRegion r;
    r.before_num_nodes = before;
    r.after_num_nodes = after;
    return r;
  };
  // Adjacent tails [10,20) and [20,30) share no id; overlapping tails do.
  EXPECT_FALSE(spec::regions_overlap(tail_region(10, 20), tail_region(20, 30)));
  EXPECT_TRUE(spec::regions_overlap(tail_region(10, 20), tail_region(19, 25)));
  // A changed id inside the other's tail conflicts.
  DirtyRegion changed;
  changed.before_num_nodes = changed.after_num_nodes = 40;
  changed.changed = {12};
  changed.before_changed.resize(1);
  EXPECT_TRUE(spec::regions_overlap(changed, tail_region(10, 20)));
  EXPECT_FALSE(spec::regions_overlap(changed, tail_region(20, 30)));
  // outputs_changed is one shared slot: it only collides with itself.
  DirtyRegion outs = tail_region(30, 30);
  outs.outputs_changed = true;
  EXPECT_FALSE(spec::regions_overlap(outs, changed));
  DirtyRegion outs2 = tail_region(25, 25);
  outs2.outputs_changed = true;
  EXPECT_TRUE(spec::regions_overlap(outs, outs2));
}

// ---- SpecEngine: the windowed move engine -----------------------------------

opt::OptResult run_sa_spec(const Aig& g, int windows, bool parallel, std::uint64_t seed,
                           int iterations, opt::CostEvaluator& cost) {
  opt::SaParams params;
  params.iterations = iterations;
  params.seed = seed;
  params.windows = windows;
  params.parallel = parallel;
  opt::StopCondition stop;
  stop.max_iterations = iterations;
  return opt::SaStrategy(params).run(g, cost, stop);
}

void expect_same_trajectory(const opt::OptResult& a, const opt::OptResult& b, const char* where) {
  ASSERT_EQ(a.history.size(), b.history.size()) << where;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].script_index, b.history[i].script_index) << where << " iter " << i;
    EXPECT_EQ(a.history[i].delay, b.history[i].delay) << where << " iter " << i;
    EXPECT_EQ(a.history[i].area, b.history[i].area) << where << " iter " << i;
    EXPECT_EQ(a.history[i].cost, b.history[i].cost) << where << " iter " << i;
    EXPECT_EQ(a.history[i].accepted, b.history[i].accepted) << where << " iter " << i;
  }
  EXPECT_EQ(a.initial_cost, b.initial_cost) << where;
  EXPECT_EQ(a.best_cost, b.best_cost) << where;
  EXPECT_EQ(a.best.structural_hash(), b.best.structural_hash()) << where;
  EXPECT_EQ(a.eval_count, b.eval_count) << where;
  EXPECT_EQ(a.degraded_evals, b.degraded_evals) << where;
  EXPECT_EQ(static_cast<int>(a.stop_reason), static_cast<int>(b.stop_reason)) << where;
  EXPECT_EQ(a.spec.rounds, b.spec.rounds) << where;
  EXPECT_EQ(a.spec.proposed, b.spec.proposed) << where;
  EXPECT_EQ(a.spec.committed, b.spec.committed) << where;
  EXPECT_EQ(a.spec.aborted, b.spec.aborted) << where;
}

// The engine's hard contract: for a fixed seed the trajectory is bit-identical
// for par=0 and par=1 at thread counts 1, 2, and 8 — scripts, costs,
// accept/commit decisions, best graph, and even the eval counters.
TEST(SpecEngine, TrajectoryBitIdenticalAcrossParallelAndThreadCounts) {
  ThreadsGuard guard;
  const Aig g = gen::multiplier(4);
  opt::ProxyCost serial_cost;
  const opt::OptResult serial = run_sa_spec(g, 4, /*parallel=*/false, 9, 48, serial_cost);
  ASSERT_GT(serial.spec.rounds, 0u);
  ASSERT_EQ(serial.spec.proposed, serial.history.size());

  for (const int threads : {1, 2, 8}) {
    set_default_threads(threads);
    opt::ProxyCost cost;
    const opt::OptResult parallel = run_sa_spec(g, 4, /*parallel=*/true, 9, 48, cost);
    expect_same_trajectory(serial, parallel,
                           (std::string("threads=") + std::to_string(threads)).c_str());
  }
}

TEST(SpecEngine, GreedyTrajectoryBitIdenticalToo) {
  ThreadsGuard guard;
  const Aig g = gen::adder_cla(8);
  const auto run_greedy = [&](bool parallel) {
    opt::GreedyParams params;
    params.iterations = 36;
    params.seed = 5;
    params.tolerance = 0.01;
    params.windows = 3;
    params.parallel = parallel;
    opt::StopCondition stop;
    stop.max_iterations = params.iterations;
    opt::ProxyCost cost;
    return opt::GreedyStrategy(params).run(g, cost, stop);
  };
  const opt::OptResult serial = run_greedy(false);
  set_default_threads(2);
  const opt::OptResult parallel = run_greedy(true);
  expect_same_trajectory(serial, parallel, "greedy par=1 threads=2");
}

TEST(SpecEngine, ResultIsEquivalentAndCountersAreConsistent) {
  const Aig g = gen::multiplier(4);
  opt::ProxyCost cost;
  const opt::OptResult result = run_sa_spec(g, 4, /*parallel=*/false, 7, 40, cost);
  EXPECT_TRUE(aig::equivalent(g, result.best));
  EXPECT_EQ(result.spec.windows, 4);
  EXPECT_FALSE(result.spec.parallel);
  EXPECT_EQ(result.spec.proposed, result.history.size());
  EXPECT_LE(result.spec.committed + result.spec.aborted, result.spec.proposed);
  EXPECT_EQ(result.spec.committed, static_cast<std::uint64_t>(result.accepted_moves()));
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_GT(result.eval_count, 0u);
  const double rate = result.spec.abort_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

// Accounting is a run-local delta of the evaluator's cumulative clocks:
// re-running on a shared evaluator must report the same counts, not the
// cumulative total (strategy.hpp accounting contract).
TEST(SpecEngine, AccountingIsRunLocalOnSharedEvaluator) {
  const Aig g = gen::comparator(6);
  opt::ProxyCost shared_cost;
  const opt::OptResult first = run_sa_spec(g, 3, /*parallel=*/false, 11, 24, shared_cost);
  const opt::OptResult second = run_sa_spec(g, 3, /*parallel=*/false, 11, 24, shared_cost);
  expect_same_trajectory(first, second, "shared-evaluator rerun");
  EXPECT_GT(first.eval_count, 0u);
}

TEST(SpecEngine, RejectsEvaluatorWithoutForkSupport) {
  class UnforkableCost final : public opt::CostEvaluator {
   public:
    [[nodiscard]] std::string name() const override { return "unforkable"; }

   protected:
    opt::QualityEval evaluate_impl(const Aig& g) override {
      return {static_cast<double>(g.num_nodes()), static_cast<double>(g.num_ands())};
    }
  };
  const Aig g = gen::adder_ripple(4);
  UnforkableCost cost;
  opt::SaParams params;
  params.iterations = 4;
  params.windows = 2;
  opt::StopCondition stop;
  stop.max_iterations = params.iterations;
  EXPECT_THROW((void)opt::SaStrategy(params).run(g, cost, stop), std::invalid_argument);
  // windows=0 keeps the classic loop, which has no fork requirement.
  params.windows = 0;
  const opt::OptResult result = opt::SaStrategy(params).run(g, cost, stop);
  EXPECT_EQ(result.spec.windows, 0);
}

TEST(SpecEngine, StrategyParamsValidateSpecKnobs) {
  opt::SaParams sa;
  sa.windows = -1;
  EXPECT_THROW(opt::SaStrategy{sa}, std::invalid_argument);
  sa.windows = 0;
  sa.parallel = true;
  EXPECT_THROW(opt::SaStrategy{sa}, std::invalid_argument);
  opt::GreedyParams greedy;
  greedy.parallel = true;
  EXPECT_THROW(opt::GreedyStrategy{greedy}, std::invalid_argument);
}

TEST(SpecEngine, PortfolioAggregatesSpecCounters) {
  const Aig g = gen::multiplier(4);
  opt::SaParams inner;
  inner.iterations = 16;
  inner.windows = 2;
  opt::PortfolioParams params;
  params.starts = 2;
  params.seed = 3;
  const opt::PortfolioStrategy portfolio(std::make_shared<opt::SaStrategy>(inner), params);
  opt::ProxyCost cost;
  opt::StopCondition stop;
  stop.max_iterations = inner.iterations;
  const opt::OptResult result = portfolio.run(g, cost, stop);
  EXPECT_EQ(result.spec.windows, 2);
  EXPECT_GT(result.spec.rounds, 0u);
  EXPECT_EQ(result.spec.proposed, result.history.size());
  EXPECT_TRUE(aig::equivalent(g, result.best));
}

TEST(SpecEngine, RecipeKeysParseValidateAndRoundTrip) {
  const opt::Recipe recipe =
      opt::Recipe::parse("strategy=sa;iters=8;windows=4;par=1;cost=proxy");
  EXPECT_EQ(recipe.spec_windows, 4);
  EXPECT_TRUE(recipe.spec_parallel);
  EXPECT_EQ(opt::Recipe::parse(recipe.to_string()), recipe);

  EXPECT_THROW((void)opt::Recipe::parse("strategy=sa;par=1"), std::invalid_argument);
  EXPECT_THROW((void)opt::Recipe::parse("windows=-2"), std::invalid_argument);
  EXPECT_THROW((void)opt::Recipe::parse("par=2"), std::invalid_argument);

  // End to end through the recipe runner.
  const Aig g = gen::adder_cla(6);
  const opt::OptResult result =
      opt::run("strategy=greedy;iters=12;seed=3;cost=proxy;windows=2", g, opt::CostContext{});
  EXPECT_EQ(result.spec.windows, 2);
  EXPECT_TRUE(aig::equivalent(g, result.best));
}

TEST(SpecEngine, EvalBudgetStopsAtRoundBoundary) {
  const Aig g = gen::multiplier(4);
  opt::SaParams params;
  params.iterations = 200;
  params.windows = 4;
  opt::StopCondition stop;
  stop.max_iterations = params.iterations;
  stop.max_evals = 12;
  opt::ProxyCost cost;
  const opt::OptResult result = opt::SaStrategy(params).run(g, cost, stop);
  EXPECT_EQ(static_cast<int>(result.stop_reason), static_cast<int>(opt::StopReason::kEvalBudget));
  EXPECT_TRUE(aig::equivalent(g, result.best));
}

// ---- FaultSpec: the spec.commit_abort chaos site ----------------------------
// (Fault* suite name puts these under the chaos CI job's filter.)

TEST(FaultSpecSite, NameRoundTripAndGrammar) {
  EXPECT_STREQ(fault::to_string(fault::Site::kSpecCommitAbort), "spec.commit_abort");
  EXPECT_EQ(fault::site_from_name("spec.commit_abort"),
            std::optional<fault::Site>(fault::Site::kSpecCommitAbort));
  const fault::FaultPlan plan = fault::FaultPlan::parse("spec.commit_abort,after=2,count=3");
  const auto& rule = plan.rule(fault::Site::kSpecCommitAbort);
  EXPECT_TRUE(rule.armed);
  EXPECT_EQ(rule.after, 2u);
  EXPECT_EQ(rule.count, 3u);
}

// With every would-commit aborted, the graph never changes: zero commits,
// best == initial, and the run is equivalent and fully deterministic.
TEST(FaultSpecEngine, UnlimitedAbortsFreezeTheTrajectoryDeterministically) {
  FaultGuard guard;
  const Aig g = gen::multiplier(4);
  const auto run_faulted = [&] {
    fault::install(fault::FaultPlan::parse("spec.commit_abort,count=0"));
    opt::GreedyParams params;
    params.iterations = 24;
    params.seed = 13;
    params.tolerance = 0.05;
    params.windows = 4;
    opt::StopCondition stop;
    stop.max_iterations = params.iterations;
    opt::ProxyCost cost;
    return opt::GreedyStrategy(params).run(g, cost, stop);
  };
  const opt::OptResult first = run_faulted();
  EXPECT_GT(first.spec.aborted, 0u);
  EXPECT_EQ(first.spec.committed, 0u);
  EXPECT_EQ(first.best.structural_hash(), g.structural_hash());
  EXPECT_EQ(first.best_cost, first.initial_cost);
  EXPECT_GT(fault::fired(fault::Site::kSpecCommitAbort), 0u);
  for (const auto& record : first.history) EXPECT_FALSE(record.accepted);

  // The site's schedule depends only on visit counters, so reinstalling the
  // plan replays the identical run.
  const opt::OptResult second = run_faulted();
  expect_same_trajectory(first, second, "faulted rerun");
}

// A bounded abort budget perturbs the search without breaking soundness: the
// result stays equivalent and at most `count` commits are lost.
TEST(FaultSpecEngine, LimitedAbortBudgetKeepsTheRunSound) {
  FaultGuard guard;
  fault::install(fault::FaultPlan::parse("spec.commit_abort,count=2"));
  const Aig g = gen::multiplier(4);
  opt::ProxyCost cost;
  const opt::OptResult result = run_sa_spec(g, 4, /*parallel=*/false, 7, 40, cost);
  EXPECT_LE(fault::fired(fault::Site::kSpecCommitAbort), 2u);
  EXPECT_TRUE(aig::equivalent(g, result.best));
  EXPECT_LE(result.best_cost, result.initial_cost);
}

}  // namespace
}  // namespace aigml
