// Incremental move evaluation (DESIGN.md §8): dirty regions, the
// AnalysisCache update/commit/rollback protocol, delta feature extraction,
// the incremental cost evaluators, and the search-loop integration.  The
// from-scratch paths are the oracle throughout — every test asserts
// *bit-identical* results, including a randomized 1000-move fuzz.

#include <gtest/gtest.h>

#include <vector>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "aig/dirty.hpp"
#include "features/features.hpp"
#include "gen/designs.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "opt/greedy.hpp"
#include "opt/sa.hpp"
#include "transforms/balance.hpp"
#include "transforms/resynth.hpp"
#include "transforms/scripts.hpp"
#include "transforms/shuffle.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

using aig::Aig;
using aig::AnalysisCache;
using aig::DirtyRegion;
using aig::Lit;
using aig::NodeId;
using transforms::TransformResult;

// Compares every cache field against a freshly built AnalysisCache(g).
void expect_cache_matches_fresh(const AnalysisCache& cache, const Aig& g, const char* where) {
  const AnalysisCache fresh(g);
  const std::size_t n = g.num_nodes();
  ASSERT_EQ(cache.num_nodes(), n) << where;
  ASSERT_GE(cache.levels().size(), n) << where;
  for (NodeId id = 0; id < n; ++id) {
    ASSERT_EQ(cache.levels()[id], fresh.levels()[id]) << where << " level @" << id;
    ASSERT_EQ(cache.depths()[id], fresh.depths()[id]) << where << " depth @" << id;
    ASSERT_EQ(cache.fanouts()[id], fresh.fanouts()[id]) << where << " fanout @" << id;
    ASSERT_EQ(cache.fanout_weighted_depths()[id], fresh.fanout_weighted_depths()[id])
        << where << " wdepth @" << id;
    ASSERT_EQ(cache.binary_weighted_depths()[id], fresh.binary_weighted_depths()[id])
        << where << " bdepth @" << id;
    ASSERT_EQ(cache.path_counts()[id], fresh.path_counts()[id]) << where << " paths @" << id;
  }
  ASSERT_EQ(cache.aig_level(), fresh.aig_level()) << where;
  ASSERT_EQ(cache.max_depth(), fresh.max_depth()) << where;
  ASSERT_EQ(cache.critical_nodes(), fresh.critical_nodes()) << where;
}

// ---- DirtyRegion / diff_region ----------------------------------------------

TEST(DirtyRegion, IdenticalGraphsDiffEmpty) {
  const Aig g = gen::build_design("EX00");
  const Aig copy = g;
  const DirtyRegion d = aig::diff_region(g, copy);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(DirtyRegion, DetectsOutputRedirect) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.make_and(a, b);
  g.add_output(x);
  Aig h = g;
  h.set_output(0, aig::lit_not(x));
  const DirtyRegion d = aig::diff_region(g, h);
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(d.changed.empty());  // no node record changed
  EXPECT_TRUE(d.outputs_changed);
  ASSERT_EQ(d.before_outputs.size(), 1u);
  EXPECT_EQ(d.before_outputs[0], x);
}

TEST(DirtyRegion, DetectsGrowthShrinkAndRecordChanges) {
  Aig small;
  const Lit a = small.add_input();
  const Lit b = small.add_input();
  small.add_output(small.make_and(a, b));

  Aig big;
  const Lit a2 = big.add_input();
  const Lit b2 = big.add_input();
  const Lit x = big.make_and(a2, b2);
  big.add_output(big.make_and(x, aig::lit_not(a2)));

  const DirtyRegion grow = aig::diff_region(small, big);
  EXPECT_FALSE(grow.empty());
  EXPECT_EQ(grow.before_num_nodes, small.num_nodes());
  EXPECT_EQ(grow.after_num_nodes, big.num_nodes());
  EXPECT_TRUE(grow.outputs_changed);

  const DirtyRegion shrink = aig::diff_region(big, small);
  EXPECT_EQ(shrink.before_tail.size(), big.num_nodes() - small.num_nodes());
  EXPECT_EQ(shrink.size(), shrink.changed.size() + shrink.before_tail.size());
}

TEST(DirtyRegion, AllIsFull) {
  const Aig g = gen::build_design("EX00");
  const DirtyRegion d = DirtyRegion::all(g, g);
  EXPECT_TRUE(d.full);
  EXPECT_FALSE(d.empty());
}

// ---- AnalysisCache update/commit/rollback -----------------------------------

TEST(AnalysisUpdate, MatchesRebuildAcrossEveryPrimitive) {
  Aig current = gen::build_design("EX68");
  AnalysisCache cache(current);
  for (const std::string& mnemonic : transforms::primitive_names()) {
    TransformResult move = transforms::apply_primitive_traced(mnemonic, current);
    cache.update(move.graph, move.dirty);
    expect_cache_matches_fresh(cache, move.graph, mnemonic.c_str());
    cache.commit();
    current = std::move(move.graph);
  }
}

TEST(AnalysisUpdate, RollbackRestoresExactly) {
  const Aig g = gen::build_design("EX00");
  AnalysisCache cache(g);
  // A worst-case move (global re-association) and a local one.
  for (const TransformResult& move :
       {transforms::randomized_rebalance_traced(g, 17), transforms::balance_traced(g)}) {
    cache.update(move.graph, move.dirty);
    cache.rollback();
    expect_cache_matches_fresh(cache, g, "after rollback");
  }
}

TEST(AnalysisUpdate, FullRegionFallbackAndRollback) {
  const Aig g = gen::build_design("EX00");
  const Aig h = transforms::balance(g);
  AnalysisCache cache(g);
  cache.update(h, DirtyRegion::all(g, h));
  EXPECT_TRUE(cache.last_update_full());
  expect_cache_matches_fresh(cache, h, "full update");
  cache.rollback();
  expect_cache_matches_fresh(cache, g, "full rollback");
  cache.update(h, DirtyRegion::all(g, h));
  cache.commit();
  expect_cache_matches_fresh(cache, h, "full commit");
}

TEST(AnalysisUpdate, EmptyRegionIsNoOp) {
  const Aig g = gen::build_design("EX68");
  AnalysisCache cache(g);
  const Aig copy = g;
  const std::uint64_t recomputed_before = cache.nodes_recomputed();
  cache.update(copy, aig::diff_region(g, copy));
  EXPECT_EQ(cache.nodes_recomputed(), recomputed_before);  // zero repair work
  expect_cache_matches_fresh(cache, copy, "no-op update");
  cache.commit();
}

TEST(AnalysisUpdate, ProtocolMisuseThrows) {
  const Aig g = gen::build_design("EX00");
  AnalysisCache unbound;
  EXPECT_THROW(unbound.update(g, aig::diff_region(g, g)), std::logic_error);
  AnalysisCache cache(g);
  EXPECT_THROW(cache.commit(), std::logic_error);
  EXPECT_THROW(cache.rollback(), std::logic_error);
  cache.update(g, aig::diff_region(g, g));
  EXPECT_THROW(cache.update(g, aig::diff_region(g, g)), std::logic_error);
  cache.commit();
}

// ---- analysis edge cases the incremental path must survive ------------------

TEST(AnalysisUpdate, ConstantOnlyAndPoLessGraphs) {
  // Constant-only: one PI, output tied to FALSE.
  Aig constant_only;
  constant_only.add_input();
  constant_only.add_output(aig::kLitFalse);
  // PO-less: logic but no outputs at all.
  Aig po_less;
  const Lit a = po_less.add_input();
  const Lit b = po_less.add_input();
  (void)po_less.make_and(a, b);
  // A normal graph to transition from/to.
  Aig normal;
  const Lit x = normal.add_input();
  const Lit y = normal.add_input();
  normal.add_output(normal.make_and(x, y));

  const Aig graphs[] = {constant_only, po_less, normal};
  for (const Aig& from : graphs) {
    for (const Aig& to : graphs) {
      AnalysisCache cache(from);
      cache.update(to, aig::diff_region(from, to));
      expect_cache_matches_fresh(cache, to, "edge transition");
      cache.rollback();
      expect_cache_matches_fresh(cache, from, "edge rollback");
    }
  }
}

TEST(AnalysisUpdate, DanglingNodesSurvive) {
  // Dangling AND nodes (no path to any output) — what resynth leaves behind
  // before cleanup, and what a deserializer may hand us.
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit keep = g.make_and(a, b);
  (void)g.make_and(b, c);  // dangling
  g.add_output(keep);

  Aig h;
  const Lit a2 = h.add_input();
  const Lit b2 = h.add_input();
  const Lit c2 = h.add_input();
  const Lit keep2 = h.make_and(a2, b2);
  const Lit dangle = h.make_and(b2, c2);
  (void)h.make_and(keep2, dangle);  // dangling tree
  h.add_output(keep2);

  AnalysisCache cache(g);
  cache.update(h, aig::diff_region(g, h));
  expect_cache_matches_fresh(cache, h, "dangling update");
  cache.rollback();
  expect_cache_matches_fresh(cache, g, "dangling rollback");
}

// ---- randomized 1000-move equivalence fuzz ----------------------------------

TEST(IncrementalFuzz, ThousandMovesBitIdentical) {
  Aig current = gen::build_design("EX68");
  AnalysisCache cache(current);
  features::IncrementalExtractor extractor;
  features::FeatureVector features = extractor.bind(current, cache);
  ASSERT_EQ(features, features::extract(current));

  Rng rng(0xf422ed);
  const auto& primitives = transforms::primitive_names();
  for (int step = 0; step < 1000; ++step) {
    // Move mix: the 7 deterministic primitives plus the two randomized
    // shuffles (large, worst-case regions) plus an occasional full fallback.
    TransformResult move;
    const std::uint64_t pick = rng.next_below(10);
    if (pick < 7) {
      move = transforms::apply_primitive_traced(primitives[pick], current);
    } else if (pick == 7) {
      move = transforms::randomized_rebalance_traced(current, rng.next());
    } else if (pick == 8) {
      move = transforms::randomized_resynthesis_traced(current, rng.next());
    } else {
      Aig next = transforms::balance(current);
      move.dirty = DirtyRegion::all(current, next);
      move.graph = std::move(next);
    }

    cache.update(move.graph, move.dirty);
    const features::FeatureVector delta_features =
        extractor.update(move.graph, cache, move.dirty);
    // The hard contract: bit-identical to from-scratch, every single move.
    ASSERT_EQ(delta_features, features::extract(move.graph)) << "step " << step;

    if (rng.next_below(2) == 0) {
      cache.commit();
      extractor.commit();
      current = std::move(move.graph);
      features = delta_features;
    } else {
      cache.rollback();
      extractor.rollback();
      ASSERT_EQ(extractor.features(), features) << "step " << step;
      if (step % 64 == 0) expect_cache_matches_fresh(cache, current, "fuzz rollback");
    }
  }
  expect_cache_matches_fresh(cache, current, "fuzz end");
  ASSERT_EQ(extractor.features(), features::extract(current));
}

// ---- incremental cost evaluators --------------------------------------------

ml::GbdtModel train_tiny_model(const Aig& base, bool area_label) {
  ml::Dataset data(features::feature_names());
  const auto& registry = transforms::script_registry();
  Rng rng(5);
  Aig g = base;
  for (int i = 0; i < 24; ++i) {
    g = registry.apply(registry.random_index(rng), base);
    const double label = area_label ? static_cast<double>(g.num_ands())
                                    : static_cast<double>(aig::aig_level(g));
    data.append(features::extract(g), label, "fuzz");
  }
  ml::GbdtParams params;
  params.num_trees = 20;
  params.max_depth = 3;
  return ml::GbdtModel::train(data, params);
}

TEST(IncrementalCost, ProxyAndMlMatchFromScratchPerMove) {
  const Aig base = gen::build_design("EX00");
  const ml::GbdtModel delay_model = train_tiny_model(base, false);
  const ml::GbdtModel area_model = train_tiny_model(base, true);

  opt::ProxyCost proxy;
  opt::MlCost ml_cost(delay_model, area_model);
  opt::CostEvaluator* evaluators[] = {&proxy, &ml_cost};
  for (opt::CostEvaluator* evaluator : evaluators) {
    ASSERT_TRUE(evaluator->supports_incremental());
    Aig current = base;
    opt::QualityEval bound = evaluator->bind(current);
    opt::QualityEval scratch = evaluator->evaluate(current);
    EXPECT_EQ(bound.delay, scratch.delay);
    EXPECT_EQ(bound.area, scratch.area);
    Rng rng(9);
    const auto& registry = transforms::script_registry();
    for (int step = 0; step < 40; ++step) {
      TransformResult move = registry.apply_traced(registry.random_index(rng), current);
      const opt::QualityEval q = evaluator->evaluate_delta(move.graph, move.dirty);
      const opt::QualityEval oracle = evaluator->evaluate(move.graph);
      ASSERT_EQ(q.delay, oracle.delay) << evaluator->name() << " step " << step;
      ASSERT_EQ(q.area, oracle.area) << evaluator->name() << " step " << step;
      if (step % 2 == 0) {
        evaluator->commit_move();
        current = std::move(move.graph);
      } else {
        evaluator->rollback_move();
      }
    }
  }
}

// ---- search-loop integration: identical trajectories either way -------------

void expect_same_history(const opt::OptResult& a, const opt::OptResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    ASSERT_EQ(a.history[i].script_index, b.history[i].script_index) << i;
    ASSERT_EQ(a.history[i].delay, b.history[i].delay) << i;
    ASSERT_EQ(a.history[i].area, b.history[i].area) << i;
    ASSERT_EQ(a.history[i].cost, b.history[i].cost) << i;
    ASSERT_EQ(a.history[i].accepted, b.history[i].accepted) << i;
  }
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_eval.delay, b.best_eval.delay);
  EXPECT_EQ(a.best_eval.area, b.best_eval.area);
  EXPECT_EQ(a.best.structural_hash(), b.best.structural_hash());
  EXPECT_EQ(a.eval_count, b.eval_count);
}

TEST(IncrementalSearch, SaTrajectoryIdenticalWithAndWithoutIncremental) {
  const Aig g = gen::build_design("EX68");
  for (const std::uint64_t seed : {1ULL, 23ULL}) {
    opt::SaParams params;
    params.iterations = 40;
    params.seed = seed;
    opt::ProxyCost inc_eval;
    params.incremental = true;
    const auto with_inc = opt::simulated_annealing(g, inc_eval, params);
    opt::ProxyCost scratch_eval;
    params.incremental = false;
    const auto without = opt::simulated_annealing(g, scratch_eval, params);
    expect_same_history(with_inc, without);
  }
}

TEST(IncrementalSearch, GreedyMlTrajectoryIdenticalWithAndWithoutIncremental) {
  const Aig g = gen::build_design("EX00");
  const ml::GbdtModel delay_model = train_tiny_model(g, false);
  const ml::GbdtModel area_model = train_tiny_model(g, true);
  opt::GreedyParams params;
  params.iterations = 30;
  params.tolerance = 0.02;
  params.seed = 11;
  opt::MlCost inc_eval(delay_model, area_model);
  params.incremental = true;
  const auto with_inc = opt::greedy_descent(g, inc_eval, params);
  opt::MlCost scratch_eval(delay_model, area_model);
  params.incremental = false;
  const auto without = opt::greedy_descent(g, scratch_eval, params);
  expect_same_history(with_inc, without);
}

TEST(IncrementalCost, MemoServesRepeatedStructuresExactly) {
  // The evaluation memo (opt::detail::FeatureContext) must serve exact
  // repeats — the dominant move class of a converged SA walk — with values
  // bit-identical to from-scratch evaluation, across commits AND rollbacks.
  const Aig base = gen::build_design("EX00");
  const ml::GbdtModel delay_model = train_tiny_model(base, false);
  const ml::GbdtModel area_model = train_tiny_model(base, true);
  opt::MlCost evaluator(delay_model, area_model);
  (void)evaluator.bind(base);

  // Two distinct structures the walk will cycle between.
  const auto& primitives = transforms::primitive_names();
  Aig current = base;
  for (int cycle = 0; cycle < 12; ++cycle) {
    const std::string& mnemonic = primitives[static_cast<std::size_t>(cycle) % 2];
    TransformResult move = transforms::apply_primitive_traced(mnemonic, current);
    const opt::QualityEval q = evaluator.evaluate_delta(move.graph, move.dirty);
    const opt::QualityEval oracle = evaluator.evaluate(move.graph);
    ASSERT_EQ(q.delay, oracle.delay) << "cycle " << cycle;
    ASSERT_EQ(q.area, oracle.area) << "cycle " << cycle;
    if (cycle % 3 == 2) {
      evaluator.rollback_move();  // rejected: memo entry must survive intact
    } else {
      evaluator.commit_move();
      current = std::move(move.graph);
    }
  }
}

TEST(IncrementalSearch, ScriptApplyTracedMatchesApply) {
  const Aig g = gen::build_design("EX00");
  const auto& registry = transforms::script_registry();
  for (const std::size_t index : {0UL, 7UL, 56UL, 102UL}) {
    const Aig plain = registry.apply(index, g);
    const TransformResult traced = registry.apply_traced(index, g);
    EXPECT_EQ(plain.structural_hash(), traced.graph.structural_hash());
    EXPECT_EQ(traced.dirty.after_num_nodes, traced.graph.num_nodes());
    EXPECT_EQ(traced.dirty.before_num_nodes, g.num_nodes());
  }
}

}  // namespace
}  // namespace aigml
