// Tests for Table II feature extraction, including a fully hand-computed
// worked example in the spirit of the paper's Fig. 4 (three PIs, three POs,
// annotated depths / weighted depths / path counts).

#include <gtest/gtest.h>

#include <cmath>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "transforms/scripts.hpp"

namespace aigml::features {
namespace {

using aig::Aig;
using aig::Lit;
using aig::lit_not;

TEST(Features, NamesAndIndices) {
  const auto& names = feature_names();
  ASSERT_EQ(names.size(), static_cast<std::size_t>(kNumFeatures));
  EXPECT_EQ(feature_index("number_of_node"), 0);
  EXPECT_EQ(feature_index("aig_level"), 1);
  EXPECT_EQ(feature_index("num_of_paths_3rd"), 21);
  EXPECT_THROW((void)feature_index("bogus"), std::out_of_range);
  // All names unique.
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(feature_index(names[i]), static_cast<int>(i));
  }
}

TEST(Features, GroupsPartitionAllFeatures) {
  std::vector<bool> covered(kNumFeatures, false);
  for (const auto& group : feature_groups()) {
    for (const int idx : group.indices) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, kNumFeatures);
      EXPECT_FALSE(covered[static_cast<std::size_t>(idx)]) << "feature in two groups: " << idx;
      covered[static_cast<std::size_t>(idx)] = true;
    }
  }
  for (int i = 0; i < kNumFeatures; ++i) EXPECT_TRUE(covered[static_cast<std::size_t>(i)]) << i;
}

/// Fig. 4-style worked example:
///
///   PI a, b, c.
///   n1 = a & b            (depth 2)
///   n2 = b & c            (depth 2)
///   n3 = n1 & !n2         (depth 3)
///   PO0 = n3              (plain depth 3)
///   PO1 = n1              (plain depth 2)
///   PO2 = !c              (plain depth 1: PI only)
///
/// Fanouts: a:1 (n1), b:2 (n1,n2), c:2 (n2, PO2), n1:2 (n3, PO1),
///          n2:1 (n3), n3:1 (PO0).
TEST(Features, WorkedExampleHandChecked) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit c = g.add_input("c");
  const Lit n1 = g.make_and(a, b);
  const Lit n2 = g.make_and(b, c);
  const Lit n3 = g.make_and(n1, lit_not(n2));
  g.add_output(n3, "po0");
  g.add_output(n1, "po1");
  g.add_output(lit_not(c), "po2");

  const FeatureVector f = extract(g);

  EXPECT_DOUBLE_EQ(f[feature_index("number_of_node")], 3.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_level")], 2.0);

  // Plain PO depths: {3, 2, 1} -> top3 = 3, 2, 1.
  EXPECT_DOUBLE_EQ(f[feature_index("aig_1st_long_path_depth")], 3.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_2nd_long_path_depth")], 2.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_3rd_long_path_depth")], 1.0);

  // Fanout-weighted depths: weight(a)=1, weight(b)=2, weight(c)=2,
  // weight(n1)=2, weight(n2)=1, weight(n3)=1.
  // wd(n1) = max(1, 2) + 2 = 4;  wd(n2) = max(2, 2) + 1 = 3;
  // wd(n3) = max(4, 3) + 1 = 5.
  // PO weighted depths: po0 -> 5, po1 -> 4, po2 -> w(c) = 2.
  EXPECT_DOUBLE_EQ(f[feature_index("aig_1st_weighted_path_depth")], 5.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_2nd_weighted_path_depth")], 4.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_3rd_weighted_path_depth")], 2.0);

  // Binary weights (fanout >= 2): a:0, b:1, c:1, n1:1, n2:0, n3:0.
  // bd(n1) = max(0,1) + 1 = 2; bd(n2) = max(1,1) + 0 = 1;
  // bd(n3) = max(2,1) + 0 = 2.  POs: {2, 2, 1}.
  EXPECT_DOUBLE_EQ(f[feature_index("aig_1st_binary_weighted_path_depth")], 2.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_2nd_binary_weighted_path_depth")], 2.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_3rd_binary_weighted_path_depth")], 1.0);

  // Global fanout stats over {a,b,c,n1,n2,n3} = {1,2,2,2,1,1}:
  // mean = 1.5, max = 2, sum = 9, std = 0.5.
  EXPECT_DOUBLE_EQ(f[feature_index("fanout_mean")], 1.5);
  EXPECT_DOUBLE_EQ(f[feature_index("fanout_max")], 2.0);
  EXPECT_DOUBLE_EQ(f[feature_index("fanout_std")], 0.5);
  EXPECT_DOUBLE_EQ(f[feature_index("fanout_sum")], 9.0);

  // Critical paths (max depth 3): a->n1->n3, b->n1->n3 (n2 has depth 2 and
  // height 2: depth+height-1 = 3 — also critical via b->n2->n3!).
  // Node set on max-depth paths: depth+height-1 == 3:
  //   a: 1+3-1 = 3 yes; b: 3 yes; c: 1+2-1=2 no (c's height: via n2->n3 = 3
  //   ... c: depth 1, height(c) = max over fanouts: n2 (height 2) + 1 = 3 =>
  //   1+3-1 = 3 yes!  Wait: height counts nodes from c to an output driver
  //   inclusive: c -> n2 -> n3 is 3 nodes, so c IS on a depth-3 path
  //   (c,n2,n3 with depths 1,2,3).  n1: 2+2-1=3 yes; n2: 2+2-1=3 yes;
  //   n3: 3+1-1=3 yes.
  // All six nodes are critical; stats match the global ones.
  EXPECT_DOUBLE_EQ(f[feature_index("long_path_fanout_mean")], 1.5);
  EXPECT_DOUBLE_EQ(f[feature_index("long_path_fanout_max")], 2.0);
  EXPECT_DOUBLE_EQ(f[feature_index("long_path_fanout_sum")], 9.0);

  // Path counts: paths(n1) = 2, paths(n2) = 2, paths(n3) = 4.
  // PO path counts {4, 2, 1} -> log2(1+x) = {log2 5, log2 3, 1}.
  EXPECT_DOUBLE_EQ(f[feature_index("num_of_paths_1st")], std::log2(5.0));
  EXPECT_DOUBLE_EQ(f[feature_index("num_of_paths_2nd")], std::log2(3.0));
  EXPECT_DOUBLE_EQ(f[feature_index("num_of_paths_3rd")], 1.0);
}

TEST(Features, FewerPOsThanNPadsWithZero) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  g.add_output(g.make_and(a, b));
  const FeatureVector f = extract(g);
  EXPECT_GT(f[feature_index("aig_1st_long_path_depth")], 0.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_2nd_long_path_depth")], 0.0);
  EXPECT_DOUBLE_EQ(f[feature_index("aig_3rd_long_path_depth")], 0.0);
}

TEST(Features, TopDepthsAreSortedDescending) {
  for (const auto& spec : gen::design_specs()) {
    const FeatureVector f = extract(gen::build_design(spec.name));
    for (const int base : {2, 5, 8, 19}) {
      EXPECT_GE(f[static_cast<std::size_t>(base)], f[static_cast<std::size_t>(base + 1)]) << spec.name;
      EXPECT_GE(f[static_cast<std::size_t>(base + 1)], f[static_cast<std::size_t>(base + 2)]) << spec.name;
    }
  }
}

TEST(Features, ConsistentWithAnalyses) {
  for (const char* name : {"EX00", "EX68", "EX02"}) {
    const Aig g = gen::build_design(name);
    const FeatureVector f = extract(g);
    EXPECT_DOUBLE_EQ(f[0], static_cast<double>(g.num_ands())) << name;
    EXPECT_DOUBLE_EQ(f[1], static_cast<double>(aig::aig_level(g))) << name;
    // 1st long-path depth == max node depth over outputs == aig_level + 1
    // whenever the critical PO is driven by an AND node fed from a PI chain.
    EXPECT_GE(f[2], f[1]) << name;
    // Weighted depth dominates plain depth (weights >= 1 on live nodes).
    EXPECT_GE(f[5], f[2]) << name;
    // Binary-weighted depth can never exceed plain depth.
    EXPECT_LE(f[8], f[2]) << name;
  }
}

TEST(Features, SensitiveToRestructuring) {
  // Structurally different implementations of the same function must yield
  // different feature vectors — otherwise the regressor has no signal.
  // A linear AND chain balances to a log-depth tree, changing the depth
  // features deterministically.
  Aig chain;
  std::vector<Lit> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(chain.add_input());
  Lit acc = ins[0];
  for (int i = 1; i < 8; ++i) acc = chain.make_and(acc, ins[i]);
  chain.add_output(acc);
  const Aig balanced = transforms::apply_primitive("b", chain);
  const FeatureVector f0 = extract(chain);
  const FeatureVector f1 = extract(balanced);
  EXPECT_NE(f0, f1);
  EXPECT_GT(f0[feature_index("aig_level")], f1[feature_index("aig_level")]);
}

TEST(Features, DeterministicAndFast) {
  const Aig g = gen::build_design("EX54");
  const FeatureVector a = extract(g);
  const FeatureVector b = extract(g);
  EXPECT_EQ(a, b);
}

TEST(Features, AllFiniteOnAllDesigns) {
  for (const auto& spec : gen::design_specs()) {
    const FeatureVector f = extract(gen::build_design(spec.name));
    for (const double v : f) {
      EXPECT_TRUE(std::isfinite(v)) << spec.name;
      EXPECT_GE(v, 0.0) << spec.name;
    }
  }
}

TEST(Features, EmptyGraphIsAllZeros) {
  Aig g;
  g.add_input();
  g.add_output(aig::kLitFalse);
  const FeatureVector f = extract(g);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  EXPECT_DOUBLE_EQ(f[feature_index("num_of_paths_1st")], 0.0);
}

}  // namespace
}  // namespace aigml::features
