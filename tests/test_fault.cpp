// Fault-matrix suite (DESIGN.md §10): the deterministic fault-injection
// framework itself (grammar, visit/fire scheduling, seeded prob draws),
// then every injection site exercised against the component that must
// absorb it — socket deadlines and line bounds, RemoteCost retry /
// fallback / circuit breaker (including a real server stop mid-search),
// server overload shedding and graceful drain, replay torn-tail recovery,
// label-worker isolation, retrain exception isolation, and hot-reload
// isolation of a truncated model file.  The zero-fault regression at the
// end pins the contract that none of this machinery perturbs a healthy
// run: serve-backed trajectories stay bit-identical to local evaluation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "learn/harvester.hpp"
#include "learn/loop.hpp"
#include "learn/replay.hpp"
#include "learn/retrainer.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "opt/cost_spec.hpp"
#include "opt/recipe.hpp"
#include "opt/sa.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "transforms/scripts.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

/// Installs a parsed plan for the test's scope and guarantees the
/// process-global runtime is cleared on exit, pass or fail.
struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::install(fault::FaultPlan::parse(spec)); }
  ~FaultScope() { fault::clear(); }
};

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

struct Fixture {
  std::vector<aig::Aig> variants;
  ml::GbdtModel model;
};

/// Distinct optimized variants of mult4 plus a small GBDT trained on them
/// (levels as labels — these tests only care about exact reproducibility).
Fixture make_fixture(std::uint64_t seed, int num_trees = 30) {
  Fixture fx;
  const aig::Aig base = gen::multiplier(4);
  const auto& scripts = transforms::script_registry();
  Rng rng(seed);
  ml::Dataset data(features::feature_names());
  for (int i = 0; i < 16; ++i) {
    fx.variants.push_back(scripts.apply(scripts.random_index(rng), base));
    data.append(features::extract(fx.variants.back()),
                static_cast<double>(aig::aig_level(fx.variants.back())) +
                    0.1 * static_cast<double>(rng.next_below(10)),
                "fx");
  }
  ml::GbdtParams params;
  params.num_trees = num_trees;
  params.max_depth = 3;
  params.seed = seed;
  fx.model = ml::GbdtModel::train(data, params);
  return fx;
}

// ---- the framework itself ----------------------------------------------------

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan = fault::FaultPlan::parse(
      "socket.read,after=2,count=3,every=4,prob=0.5,ms=9;seed=77;server.kill");
  const auto& read = plan.rule(fault::Site::kSocketRead);
  EXPECT_TRUE(read.armed);
  EXPECT_EQ(read.after, 2u);
  EXPECT_EQ(read.count, 3u);
  EXPECT_EQ(read.every, 4u);
  EXPECT_EQ(read.prob, 0.5);
  EXPECT_EQ(read.delay_ms, 9);
  EXPECT_TRUE(plan.rule(fault::Site::kServerKill).armed);
  EXPECT_FALSE(plan.rule(fault::Site::kSocketWrite).armed);
  EXPECT_EQ(plan.seed(), 77u);
  EXPECT_TRUE(plan.any_armed());
  EXPECT_FALSE(fault::FaultPlan::parse("").any_armed());
}

TEST(FaultPlan, RejectsMalformedSpecsNamingTheSegment) {
  try {
    (void)fault::FaultPlan::parse("bogus.site,count=1");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus.site"), std::string::npos);
  }
  EXPECT_THROW((void)fault::FaultPlan::parse("socket.read,unknown=1"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("socket.read,count=abc"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("socket.read,prob=1.5"), std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("socket.read,count"), std::invalid_argument);
}

TEST(FaultRuntime, DisabledPathIsInert) {
  fault::clear();
  EXPECT_FALSE(fault::enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fault::fire(fault::Site::kSocketRead));
  EXPECT_EQ(fault::visits(fault::Site::kSocketRead), 0u);
  EXPECT_NO_THROW(fault::throw_if(fault::Site::kWorkerThrow, "nope"));
}

TEST(FaultRuntime, AfterCountEverySchedule) {
  // after=2 skips visits 1-2; every=2 fires eligible visits 3,5,7,...;
  // count=2 caps the budget at the first two of those: exactly 3 and 5.
  const FaultScope scope("worker.throw,after=2,every=2,count=2");
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t visit = 1; visit <= 10; ++visit) {
    if (fault::fire(fault::Site::kWorkerThrow)) fired_at.push_back(visit);
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(fault::visits(fault::Site::kWorkerThrow), 10u);
  EXPECT_EQ(fault::fired(fault::Site::kWorkerThrow), 2u);
}

TEST(FaultRuntime, ProbDrawsReplayUnderTheSameSeed) {
  const std::string spec = "worker.throw,count=0,prob=0.5;seed=99";
  auto pattern = [&] {
    const FaultScope scope(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(fault::fire(fault::Site::kWorkerThrow));
    return fires;
  };
  const auto a = pattern();
  const auto b = pattern();
  EXPECT_EQ(a, b);  // same seed => bit-identical schedule
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_LT(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultPlan, ParsesNetSites) {
  const auto plan =
      fault::FaultPlan::parse("net.accept;net.epoll_spurious,count=0;net.slot_stall,ms=7");
  EXPECT_TRUE(plan.rule(fault::Site::kNetAccept).armed);
  EXPECT_TRUE(plan.rule(fault::Site::kNetEpollSpurious).armed);
  EXPECT_EQ(plan.rule(fault::Site::kNetEpollSpurious).count, 0u);
  EXPECT_TRUE(plan.rule(fault::Site::kNetSlotStall).armed);
  EXPECT_EQ(plan.rule(fault::Site::kNetSlotStall).delay_ms, 7);
  // Names round-trip both ways, like every other site.
  for (const auto site : {fault::Site::kNetAccept, fault::Site::kNetEpollSpurious,
                          fault::Site::kNetSlotStall}) {
    EXPECT_EQ(fault::site_from_name(fault::to_string(site)), std::optional<fault::Site>(site));
  }
}

TEST(FaultRuntime, NetSiteScheduleIsDeterministic) {
  // Same after/count/every semantics as every legacy site: after=1 skips
  // visit 1, every=3 fires eligible visits 2,5,8,..., count=2 caps at 2,5.
  const FaultScope scope("net.slot_stall,after=1,every=3,count=2");
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t visit = 1; visit <= 12; ++visit) {
    if (fault::fire(fault::Site::kNetSlotStall)) fired_at.push_back(visit);
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(fault::visits(fault::Site::kNetSlotStall), 12u);
  EXPECT_EQ(fault::fired(fault::Site::kNetSlotStall), 2u);
}

TEST(FaultRuntime, ThrowIfNamesTheSite) {
  const FaultScope scope("retrain.throw");
  try {
    fault::throw_if(fault::Site::kRetrainThrow, "details");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("retrain.throw"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("details"), std::string::npos);
  }
}

// ---- socket hardening --------------------------------------------------------

TEST(FaultSocket, MidLineStallTimesOutAsSocketTimeout) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port());
  client.send_all("PARTIAL-REQUEST-WITHOUT-NEWLINE");
  Socket served = listener.accept();
  LineReader reader(served);
  reader.set_mid_line_timeout_ms(100);
  std::string line;
  // The partial bytes arrive, then the peer goes silent: the continuation
  // wait must expire as SocketTimeout, not hang.
  EXPECT_THROW((void)reader.read_line(line), SocketTimeout);
}

TEST(FaultSocket, LineLengthBoundThrowsLengthError) {
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port());
  client.send_all(std::string(600, 'A'));  // no newline, over the bound
  Socket served = listener.accept();
  LineReader reader(served, /*max_line_bytes=*/256);
  std::string line;
  EXPECT_THROW((void)reader.read_line(line), std::length_error);
}

TEST(FaultSocket, PartialWriteFaultStillDeliversEveryByte) {
  // The partial-write site forces 1-byte send() chunks; the send_all loop
  // must still deliver the payload intact.
  TcpListener listener("127.0.0.1", 0);
  Socket client = tcp_connect("127.0.0.1", listener.port());
  Socket served = listener.accept();
  const FaultScope scope("socket.partial-write,count=0");
  client.send_all("chunked-but-complete\n");
  LineReader reader(served);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line, "chunked-but-complete");
  EXPECT_GT(fault::fired(fault::Site::kSocketPartialWrite), 0u);
}

// ---- RemoteCost resilience ---------------------------------------------------

TEST(FaultServe, TransientFaultIsMaskedByRetry) {
  Fixture fx = make_fixture(0xF1);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  opt::RemoteCostOptions options;
  options.backoff_ms = 1;
  options.fallback = "proxy";
  opt::RemoteCost cost("127.0.0.1", server.port(), "delay", "area", options);

  // One injected connection reset, somewhere in the request path; the retry
  // must reconnect and the answers stay exact — the fallback is configured
  // but never consulted.
  const FaultScope scope("socket.read,count=1");
  for (int i = 0; i < 4; ++i) {
    const auto eval = cost.evaluate(fx.variants[static_cast<std::size_t>(i)]);
    EXPECT_EQ(eval.delay,
              fx.model.predict(features::extract(fx.variants[static_cast<std::size_t>(i)])));
  }
  EXPECT_EQ(fault::fired(fault::Site::kSocketRead), 1u);
  EXPECT_EQ(cost.degraded_evals(), 0u);
  EXPECT_FALSE(cost.breaker_open());
  server.stop();
}

TEST(FaultServe, PersistentFaultDegradesThenOpensBreaker) {
  Fixture fx = make_fixture(0xF2);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  opt::RemoteCostOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 500;
  options.max_retries = 1;
  options.backoff_ms = 1;
  options.breaker_threshold = 2;
  options.fallback = "proxy";
  opt::RemoteCost cost("127.0.0.1", server.port(), "delay", "area", options);

  // Every read and every reconnect fails from here on.
  const FaultScope scope("socket.read,count=0;socket.connect,count=0");
  opt::ProxyCost proxy;
  for (int i = 0; i < 5; ++i) {
    const auto& g = fx.variants[static_cast<std::size_t>(i)];
    const auto got = cost.evaluate(g);
    const auto want = proxy.evaluate(g);
    EXPECT_EQ(got.delay, want.delay);  // honest fallback values, exactly
    EXPECT_EQ(got.area, want.area);
  }
  EXPECT_EQ(cost.degraded_evals(), 5u);
  EXPECT_TRUE(cost.breaker_open());
  // Once open, the breaker routes straight to the fallback: connect was only
  // attempted while the breaker was still closed.  Eval 1 starts on the
  // already-open connection (1 reconnect attempt); eval 2 starts
  // disconnected (2 attempts); evals 3-5 never touch the network.
  EXPECT_EQ(fault::visits(fault::Site::kSocketConnect), 3u);
  server.stop();
}

TEST(FaultServe, NoFallbackFailsHard) {
  Fixture fx = make_fixture(0xF3);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  opt::RemoteCostOptions options;
  options.max_retries = 1;
  options.backoff_ms = 1;
  opt::RemoteCost cost("127.0.0.1", server.port(), "delay", "area", options);
  const FaultScope scope("socket.read,count=0;socket.connect,count=0");
  EXPECT_THROW((void)cost.evaluate(fx.variants[0]), std::runtime_error);
  server.stop();
}

TEST(FaultServe, FallbackSpecIsValidatedUpFront) {
  opt::CostContext ctx;
  ctx.serve_fallback = "proxy";
  // fallback= only makes sense for serve: costs.
  EXPECT_THROW((void)opt::make_cost("proxy", ctx), std::invalid_argument);
  ctx.serve_fallback = "ml:/nonexistent/models";
  EXPECT_THROW((void)opt::make_cost("serve:127.0.0.1:1", ctx), std::invalid_argument);
  ctx.serve_fallback = "garbage";
  EXPECT_THROW((void)opt::make_cost("serve:127.0.0.1:1", ctx), std::invalid_argument);
  // learn=1 evaluates locally; a fallback there is a configuration error.
  opt::Recipe recipe;
  recipe.learn = true;
  recipe.fallback = "proxy";
  recipe.cost = "ml:/nonexistent";
  try {
    (void)learn::run(recipe, gen::multiplier(2), cell::mini_sky130());
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fallback"), std::string::npos);
  }
}

TEST(FaultServe, ServerKillSiteMidRunCompletesDegraded) {
  Fixture fx = make_fixture(0xF4);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  opt::Recipe recipe;
  recipe.strategy = "sa";
  recipe.iterations = 18;
  recipe.seed = 0x5eed;
  recipe.cost = "serve:127.0.0.1:" + std::to_string(server.port());
  recipe.fallback = "proxy";

  // After 20 answered requests (~10 evaluations at 2 models each), the
  // server starts dropping every connection without replying — what a
  // `kill -9` mid-run looks like to the client.  The run must complete the
  // full iteration budget and report how many evaluations were degraded.
  const FaultScope scope("server.kill,after=20,count=0");
  opt::CostContext ctx;
  const opt::OptResult result = opt::run(recipe, gen::multiplier(4), ctx);
  EXPECT_EQ(result.history.size(), 18u);
  EXPECT_GT(result.degraded_evals, 0u);
  EXPECT_GT(fault::fired(fault::Site::kServerKill), 0u);
  server.stop();
}

/// Stops the server for real partway through the search.
struct ServerStopper final : public opt::Observer {
  serve::PredictServer* server = nullptr;
  int stop_at = 0;
  void on_iteration(int iteration, const opt::IterationRecord& /*record*/) override {
    if (iteration == stop_at) server->stop();
  }
};

TEST(FaultServe, RealServerStopMidRunCompletesDegraded) {
  Fixture fx = make_fixture(0xF5);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  opt::RemoteCostOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 500;
  options.max_retries = 1;
  options.backoff_ms = 1;
  options.breaker_threshold = 2;
  options.fallback = "proxy";
  opt::RemoteCost cost("127.0.0.1", server.port(), "delay", "area", options);

  ServerStopper stopper;
  stopper.server = &server;
  stopper.stop_at = 6;

  opt::SaParams params;
  params.iterations = 15;
  params.seed = 0xdead;
  const opt::SaStrategy strategy(params);
  const opt::OptResult result =
      strategy.run(gen::multiplier(4), cost, {.max_iterations = params.iterations}, &stopper);
  EXPECT_EQ(result.history.size(), 15u);
  EXPECT_GT(result.degraded_evals, 0u);
  EXPECT_TRUE(cost.breaker_open());
}

// ---- server hardening --------------------------------------------------------

TEST(FaultServe, OverloadShedsWithExplicitBusy) {
  Fixture fx = make_fixture(0xF6);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);
  serve::ServerParams params;
  params.max_connections = 1;
  serve::PredictServer server(registry, service, params);
  server.start();

  serve::Client first("127.0.0.1", server.port());
  EXPECT_EQ(first.ping(), "pong");  // registered and live
  serve::Client second("127.0.0.1", server.port());
  EXPECT_THROW((void)second.ping(), serve::ServerBusy);
  // The first connection keeps working: shedding is per-connection.
  EXPECT_EQ(first.ping(), "pong");
  server.stop();
}

TEST(FaultServe, OversizedRequestAnsweredWithErrThenDropped) {
  Fixture fx = make_fixture(0xF7);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);
  serve::ServerParams params;
  params.max_line_bytes = 256;
  serve::PredictServer server(registry, service, params);
  server.start();

  Socket raw = tcp_connect("127.0.0.1", server.port());
  raw.send_all(std::string(600, 'A'));  // never sends '\n'
  LineReader reader(raw);
  std::string reply;
  ASSERT_TRUE(reader.read_line(reply));
  EXPECT_EQ(reply.rfind("ERR", 0), 0u);
  EXPECT_FALSE(reader.read_line(reply));  // connection dropped after the reply
  server.stop();
}

TEST(FaultServe, DrainStopsAcceptingAndHangsUpIdleConnections) {
  Fixture fx = make_fixture(0xF8);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();
  const std::uint16_t port = server.port();

  serve::Client client("127.0.0.1", port);
  EXPECT_EQ(client.ping(), "pong");
  server.drain();  // must return: the idle keepalive connection sees EOF
  EXPECT_THROW((void)client.ping(), std::exception);
  EXPECT_THROW((void)serve::Client("127.0.0.1", port), std::exception);
  server.drain();  // idempotent
  server.stop();   // and stop() after drain() is a no-op
}

// ---- crash-safe learning state -----------------------------------------------

learn::ReplayRow make_row(std::uint64_t key, double scale) {
  learn::ReplayRow row;
  row.key = key;
  row.generation = key % 7;
  row.delay_ps = 1234.5 * scale;
  row.area_um2 = 99.25 * scale;
  row.pred_delay = 1200.0 / scale;
  row.pred_area = 101.0 / scale;
  for (std::size_t i = 0; i < row.features.size(); ++i) {
    row.features[i] = static_cast<double>(i) / scale;
  }
  return row;
}

TEST(FaultLearn, ReplayTearDropsExactlyTheTornTail) {
  TempDir dir("aigml_fault_replay");
  const fs::path file = dir.path / "h.rpb";
  {
    learn::ReplayBuffer buffer(file);
    for (std::uint64_t k = 1; k <= 3; ++k) (void)buffer.add(make_row(k, 2.0 * double(k)));
    const FaultScope scope("replay.tear");
    buffer.flush();  // writes 3 records, then the site shears the last in half
    EXPECT_EQ(fault::fired(fault::Site::kReplayTear), 1u);
  }
  {
    // Recovery keeps every verified record before the tear — exactly 2 —
    // and drops only the torn tail.  The file is not mutated by the load.
    const auto size_before = fs::file_size(file);
    learn::ReplayBuffer recovered(file);
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_TRUE(recovered.recovered());
    EXPECT_EQ(recovered.row(0).delay_ps, make_row(1, 2.0).delay_ps);
    EXPECT_EQ(recovered.row(1).features, make_row(2, 4.0).features);
    EXPECT_EQ(fs::file_size(file), size_before);
  }
  {
    // The owner's next flush rewrites the file cleanly (tmp + rename), and
    // appended rows land after the recovered prefix.
    learn::ReplayBuffer owner(file);
    (void)owner.add(make_row(9, 9.0));
    EXPECT_EQ(owner.flush(), 1u);
  }
  learn::ReplayBuffer clean(file);
  EXPECT_EQ(clean.size(), 3u);
  EXPECT_FALSE(clean.recovered());
  EXPECT_TRUE(clean.contains(9));
}

TEST(FaultLearn, WorkerThrowDropsExactlyOneLabel) {
  const aig::Aig base = gen::multiplier(4);
  const auto& scripts = transforms::script_registry();
  auto run_harvest = [&](bool with_fault) {
    learn::ReplayBuffer buffer;
    learn::HarvestParams params;
    params.budget = 6;
    params.min_disagreement = 0.0;
    params.async = false;
    learn::LabelHarvester harvester(cell::mini_sky130(), buffer, params);
    harvester.on_start(base, {10.0, 10.0}, 0.0);
    Rng rng(0x3a3);
    aig::Aig current = base;
    std::optional<FaultScope> scope;
    if (with_fault) scope.emplace("worker.throw,count=1");
    for (int i = 0; i < 12; ++i) {
      current = scripts.apply(scripts.random_index(rng), current);
      harvester.on_candidate(i, current, {10.0, 10.0});
    }
    harvester.drain();
    return buffer.size();
  };
  const std::size_t baseline = run_harvest(false);
  ASSERT_GT(baseline, 1u);
  // One injected labeling failure drops that row only — never the batch,
  // never the run.
  EXPECT_EQ(run_harvest(true), baseline - 1);
}

TEST(FaultLearn, RetrainThrowLeavesRegistryAndDiskUntouched) {
  Fixture fx = make_fixture(0xF9);
  TempDir dir("aigml_fault_retrain");
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  const std::uint64_t generation_before = registry.generation();

  learn::RetrainParams params;
  params.min_new_rows = 1;
  params.gbdt.num_trees = 5;
  params.gbdt.max_depth = 2;
  params.save_dir = dir.path;
  learn::Retrainer retrainer(registry, params);
  learn::ReplayBuffer buffer;
  for (std::uint64_t k = 1; k <= 8; ++k) (void)buffer.add(make_row(k, double(k)));

  {
    const FaultScope scope("retrain.throw");
    EXPECT_THROW((void)retrainer.maybe_retrain(buffer), std::runtime_error);
  }
  // Strong guarantee: nothing installed, nothing written, trigger still armed.
  EXPECT_EQ(registry.generation(), generation_before);
  EXPECT_EQ(registry.version("delay"), 1u);
  EXPECT_EQ(retrainer.retrains(), 0u);
  EXPECT_FALSE(fs::exists(dir.path / "delay.gbdt"));
  EXPECT_TRUE(retrainer.should_retrain(buffer));

  // Faults cleared, the very same call succeeds end to end.
  EXPECT_TRUE(retrainer.maybe_retrain(buffer));
  EXPECT_EQ(registry.generation(), generation_before + 2);  // delay + area installs
  EXPECT_EQ(registry.version("delay"), 2u);
  EXPECT_TRUE(fs::exists(dir.path / "delay.gbdt"));
  EXPECT_TRUE(fs::exists(dir.path / "area.gbdt"));
}

TEST(FaultLearn, FailedRetrainIsIsolatedInsideTheLoop) {
  // Drive ActiveLearner's observer surface directly: candidates flow in,
  // labels are paid for, and the retrain attempt at the end throws.  The
  // loop must swallow it (counted in failed_retrains), leave the registry
  // at its starting generation, and keep every harvested label.
  Fixture fx = make_fixture(0xFA);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  const std::uint64_t generation_before = registry.generation();

  learn::LearnParams params;
  params.harvest.budget = 4;
  params.harvest.min_disagreement = 0.0;
  params.harvest.async = false;
  params.retrain.min_new_rows = 1;
  params.retrain.gbdt.num_trees = 5;
  params.retrain.gbdt.max_depth = 2;
  learn::ActiveLearner learner(cell::mini_sky130(), registry, params);

  const FaultScope scope("retrain.throw,count=0");
  const auto f0 = features::extract(fx.variants[0]);
  learner.on_start(fx.variants[0], {fx.model.predict(f0), fx.model.predict(f0)}, 0.0);
  for (std::size_t i = 1; i < fx.variants.size(); ++i) {
    const auto f = features::extract(fx.variants[i]);
    learner.on_candidate(static_cast<int>(i), fx.variants[i],
                         {fx.model.predict(f), fx.model.predict(f)});
  }
  learner.on_finish(opt::OptResult{});

  const learn::LearnStats stats = learner.stats();
  EXPECT_GT(stats.labeled, 0u);
  EXPECT_GE(stats.failed_retrains, 1u);
  EXPECT_EQ(stats.retrains, 0u);
  EXPECT_EQ(registry.generation(), generation_before);
  EXPECT_EQ(registry.version("delay"), 1u);
}

TEST(FaultLearn, TruncatedModelReloadKeepsServingOldSnapshot) {
  Fixture a = make_fixture(0xFB, 20);
  Fixture b = make_fixture(0xFC, 25);
  TempDir dir("aigml_fault_reload");
  a.model.save(dir.path / "delay.gbdt");
  serve::ModelRegistry registry(dir.path);
  const auto f = features::extract(a.variants[0]);
  ASSERT_EQ(registry.get("delay")->predict(f), a.model.predict(f));

  b.model.save(dir.path / "delay.gbdt");  // new bytes on disk
  {
    // The reload's GbdtModel::load sees a truncated file: the error is
    // reported and the previous snapshot keeps serving.
    const FaultScope scope("model.truncate");
    const auto report = registry.reload();
    EXPECT_EQ(report.loaded, 0u);
    ASSERT_EQ(report.errors.size(), 1u);
    EXPECT_EQ(registry.get("delay")->predict(f), a.model.predict(f));
  }
  // Next reload (file unchanged since the failed attempt) picks it up.
  const auto report = registry.reload();
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(registry.get("delay")->predict(f), b.model.predict(f));
}

// ---- zero-fault regression ---------------------------------------------------

TEST(FaultServe, ZeroFaultServeTrajectoryBitIdenticalToLocal) {
  fault::clear();
  Fixture fx = make_fixture(0xFD);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  opt::RemoteCostOptions options;
  options.fallback = "proxy";  // configured but never needed
  opt::RemoteCost remote("127.0.0.1", server.port(), "delay", "area", options);
  opt::MlCost local(registry.get("delay"), registry.get("area"));

  opt::SaParams params;
  params.iterations = 30;
  params.seed = 0xb17;
  const opt::SaStrategy strategy(params);
  const aig::Aig base = gen::multiplier(4);
  const opt::OptResult over_wire = strategy.run(base, remote, {.max_iterations = 30});
  const opt::OptResult in_process = strategy.run(base, local, {.max_iterations = 30});

  ASSERT_EQ(over_wire.history.size(), in_process.history.size());
  for (std::size_t i = 0; i < over_wire.history.size(); ++i) {
    EXPECT_EQ(over_wire.history[i].delay, in_process.history[i].delay) << "iteration " << i;
    EXPECT_EQ(over_wire.history[i].area, in_process.history[i].area) << "iteration " << i;
    EXPECT_EQ(over_wire.history[i].accepted, in_process.history[i].accepted) << "iteration " << i;
  }
  EXPECT_EQ(over_wire.best_cost, in_process.best_cost);
  EXPECT_EQ(over_wire.degraded_evals, 0u);
  EXPECT_EQ(remote.degraded_evals(), 0u);
  server.stop();
}

}  // namespace
}  // namespace aigml
