// Tests for the extension modules: Wallace multiplier, Kogge-Stone adder,
// Verilog export, and greedy descent.

#include <gtest/gtest.h>

#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "netlist/verilog.hpp"
#include "opt/cost.hpp"
#include "opt/greedy.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

using aig::Aig;
using gen::Word;

// ---- Wallace multiplier -----------------------------------------------------------

class WallaceWidth : public ::testing::TestWithParam<int> {};

TEST_P(WallaceWidth, MatchesArrayMultiplier) {
  const int w = GetParam();
  const Aig wallace = gen::multiplier_wallace(w);
  const Aig array = gen::multiplier(w);
  EXPECT_TRUE(aig::equivalent(wallace, array)) << "w=" << w;
}

TEST_P(WallaceWidth, ShallowerThanArray) {
  const int w = GetParam();
  if (w < 4) return;  // depth advantage needs some size
  EXPECT_LT(aig::aig_level(gen::multiplier_wallace(w)), aig::aig_level(gen::multiplier(w)));
}

INSTANTIATE_TEST_SUITE_P(Widths, WallaceWidth, ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(Wallace, ComputesProductsExhaustively) {
  const Aig g = gen::multiplier_wallace(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const std::uint64_t out = aig::simulate_pattern(g, (b << 4) | a);
      ASSERT_EQ(out & 0xFF, a * b);
    }
  }
}

// ---- Kogge-Stone adder --------------------------------------------------------------

class KoggeStoneWidth : public ::testing::TestWithParam<int> {};

TEST_P(KoggeStoneWidth, MatchesRipple) {
  const int w = GetParam();
  EXPECT_TRUE(aig::equivalent(gen::adder_kogge_stone(w), gen::adder_ripple(w))) << w;
}

TEST_P(KoggeStoneWidth, LogarithmicDepthBeatsRippleForWideWords) {
  const int w = GetParam();
  if (w < 8) return;
  EXPECT_LT(aig::aig_level(gen::adder_kogge_stone(w)), aig::aig_level(gen::adder_ripple(w)));
}

INSTANTIATE_TEST_SUITE_P(Widths, KoggeStoneWidth, ::testing::Values(1, 2, 3, 4, 8, 12, 16));

TEST(KoggeStone, PrefixTreeHasHighFanout) {
  // The structural signature of parallel-prefix: some node drives many
  // consumers (vs. ripple's uniform fanout) — useful texture for the
  // fanout-related features.
  const Aig ks = gen::adder_kogge_stone(16);
  const auto fo = aig::fanout_counts(ks);
  std::uint32_t max_fanout = 0;
  for (const auto f : fo) max_fanout = std::max(max_fanout, f);
  EXPECT_GE(max_fanout, 4u);
}

// ---- Verilog export -----------------------------------------------------------------

TEST(Verilog, EmitsStructuralNetlistWithModels) {
  const auto& lib = cell::mini_sky130();
  const Aig g = gen::adder_ripple(3);
  const auto netlist = map::map_to_cells(g, lib);
  const std::string v = net::to_verilog_string(netlist, lib);
  EXPECT_NE(v.find("module top ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find(".Y("), std::string::npos);
  // Ports present.
  EXPECT_NE(v.find("input a0;"), std::string::npos);
  EXPECT_NE(v.find("output s0;"), std::string::npos);
  // Behavioural models for used cells included by default.
  bool has_model = false;
  for (const auto& [name, count] : netlist.cell_histogram(lib)) {
    (void)count;
    if (v.find("module " + name + " (") != std::string::npos) has_model = true;
  }
  EXPECT_TRUE(has_model);
}

TEST(Verilog, ModelsCanBeSuppressed) {
  const auto& lib = cell::mini_sky130();
  const Aig g = gen::parity_tree(4);
  const auto netlist = map::map_to_cells(g, lib);
  net::VerilogOptions options;
  options.emit_cell_models = false;
  options.module_name = "parity4";
  const std::string v = net::to_verilog_string(netlist, lib, options);
  EXPECT_NE(v.find("module parity4 ("), std::string::npos);
  // Exactly one module (no cell models).
  std::size_t count = 0, pos = 0;
  while ((pos = v.find("module ", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Verilog, ConstantNetsUseLiterals) {
  const auto& lib = cell::mini_sky130();
  Aig g;
  g.add_input();
  g.add_output(aig::kLitTrue, "hi");
  const auto netlist = map::map_to_cells(g, lib);
  const std::string v = net::to_verilog_string(netlist, lib);
  EXPECT_NE(v.find("assign hi = 1'b1;"), std::string::npos);
}

// ---- greedy descent -------------------------------------------------------------------

TEST(Greedy, NeverAcceptsWorseningMovesAtZeroTolerance) {
  opt::ProxyCost proxy;
  const Aig g = gen::build_design("EX00");
  opt::GreedyParams params;
  params.iterations = 40;
  params.seed = 5;
  const auto result = opt::greedy_descent(g, proxy, params);
  double current = params.weight_delay + params.weight_area;  // normalized initial
  for (const auto& rec : result.history) {
    if (rec.accepted) {
      EXPECT_LE(rec.cost, current + 1e-12);
      current = rec.cost;
    }
  }
  EXPECT_TRUE(aig::equivalent(g, result.best));
}

TEST(Greedy, ToleranceAllowsPlateauMoves) {
  opt::ProxyCost proxy;
  const Aig g = gen::build_design("EX68");
  opt::GreedyParams strict;
  strict.iterations = 40;
  strict.seed = 9;
  opt::GreedyParams loose = strict;
  loose.tolerance = 0.05;
  const auto r_strict = opt::greedy_descent(g, proxy, strict);
  const auto r_loose = opt::greedy_descent(g, proxy, loose);
  EXPECT_GE(r_loose.accepted_moves(), r_strict.accepted_moves());
}

TEST(Greedy, ValidatesParams) {
  opt::ProxyCost proxy;
  const Aig g = gen::parity_tree(3);
  opt::GreedyParams bad;
  bad.iterations = 0;
  EXPECT_THROW((void)opt::greedy_descent(g, proxy, bad), std::invalid_argument);
  bad.iterations = 1;
  bad.tolerance = -0.1;
  EXPECT_THROW((void)opt::greedy_descent(g, proxy, bad), std::invalid_argument);
}

TEST(Greedy, DeterministicGivenSeed) {
  opt::ProxyCost proxy;
  const Aig g = gen::build_design("EX68");
  opt::GreedyParams params;
  params.iterations = 15;
  params.seed = 21;
  const auto r1 = opt::greedy_descent(g, proxy, params);
  const auto r2 = opt::greedy_descent(g, proxy, params);
  EXPECT_EQ(r1.best.structural_hash(), r2.best.structural_hash());
}

}  // namespace
}  // namespace aigml
