// net/ layer suite (DESIGN.md §11): ByteRing append/consume/compaction,
// binary frame encode/decode (including every malformed-framing verdict and
// the bit-exact double round trip), SlotScheduler admission accounting and
// park-FIFO ordering, and the EventLoop reactor itself — posted tasks,
// timers, and full-duplex Connection echo over a socketpair, run under BOTH
// backends (edge-triggered epoll and level-triggered poll) so the
// drain-to-EAGAIN handler contract is pinned on each.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/ring.hpp"
#include "net/slots.hpp"
#include "util/fault.hpp"

namespace aigml {
namespace {

// ---- ByteRing ----------------------------------------------------------------

TEST(NetRing, AppendConsumeKeepsReadableContiguous) {
  net::ByteRing ring;
  EXPECT_TRUE(ring.empty());
  ring.append("hello ");
  ring.append("world");
  EXPECT_EQ(ring.readable(), "hello world");
  ring.consume(6);
  EXPECT_EQ(ring.readable(), "world");
  EXPECT_EQ(ring.size(), 5u);
  ring.consume(5);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.readable(), "");
}

TEST(NetRing, CompactionPreservesBytesAcrossLargeTraffic) {
  // Push far more than the 4 KiB compaction threshold through the ring in
  // small chunks, consuming as we go — the survivor bytes must be exact.
  net::ByteRing ring;
  std::string expect;
  std::size_t next_byte = 0;
  for (int round = 0; round < 300; ++round) {
    std::string chunk;
    for (int i = 0; i < 64; ++i) chunk.push_back(static_cast<char>('a' + (next_byte++ % 26)));
    ring.append(chunk);
    expect += chunk;
    const std::size_t eat = round % 3 == 0 ? 48 : 64;  // lag behind sometimes
    const std::size_t n = std::min(eat, ring.size() > 32 ? ring.size() - 32 : 0);
    EXPECT_EQ(ring.readable(), expect);
    ring.consume(n);
    expect.erase(0, n);
  }
  EXPECT_EQ(ring.readable(), expect);
}

TEST(NetRing, ClearResets) {
  net::ByteRing ring;
  ring.append("abc");
  ring.consume(1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.append("xy");
  EXPECT_EQ(ring.readable(), "xy");
}

// ---- frame codec -------------------------------------------------------------

TEST(NetFrame, HeaderRoundTrip) {
  std::string wire;
  net::append_frame(wire, net::Opcode::kFeatures, 0xDEADBEEF, "payload");
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + 7);

  net::FrameHeader header;
  std::string error;
  ASSERT_EQ(net::decode_header(wire, header, error, 0), net::DecodeStatus::kFrame);
  EXPECT_EQ(header.opcode, net::Opcode::kFeatures);
  EXPECT_EQ(header.request_id, 0xDEADBEEFu);
  EXPECT_EQ(header.payload_len, 7u);
  EXPECT_EQ(wire.substr(net::kFrameHeaderBytes), "payload");
}

TEST(NetFrame, PartialHeaderNeedsMore) {
  std::string wire;
  net::append_frame(wire, net::Opcode::kPing, 1, "");
  net::FrameHeader header;
  std::string error;
  for (std::size_t n = 0; n < net::kFrameHeaderBytes; ++n) {
    EXPECT_EQ(net::decode_header(wire.substr(0, n), header, error, 0),
              net::DecodeStatus::kNeedMore)
        << n << " bytes";
  }
}

TEST(NetFrame, MalformedFramingIsTerminal) {
  net::FrameHeader header;
  std::string error;

  std::string bad_magic(net::kFrameHeaderBytes, '\0');
  bad_magic[0] = 'P';  // a text-protocol byte where the magic belongs
  EXPECT_EQ(net::decode_header(bad_magic, header, error, 0), net::DecodeStatus::kMalformed);
  EXPECT_NE(error.find("magic"), std::string::npos);

  std::string bad_version;
  net::append_frame(bad_version, net::Opcode::kPing, 1, "");
  bad_version[1] = 9;
  EXPECT_EQ(net::decode_header(bad_version, header, error, 0), net::DecodeStatus::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos);

  std::string oversized;
  net::append_frame(oversized, net::Opcode::kPredict, 1, std::string(100, 'x'));
  EXPECT_EQ(net::decode_header(oversized, header, error, 64), net::DecodeStatus::kMalformed);
  EXPECT_NE(error.find("payload"), std::string::npos);
  // The same frame is fine when the bound allows it (0 = unbounded).
  EXPECT_EQ(net::decode_header(oversized, header, error, 0), net::DecodeStatus::kFrame);
}

TEST(NetFrame, ValuePayloadIsBitExact) {
  const double cases[] = {0.1 + 0.2,
                          -0.0,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          12345.678901234567};
  for (const double v : cases) {
    const std::string payload = net::make_value_payload(v);
    ASSERT_EQ(payload.size(), 8u);
    const double back = net::parse_value_payload(payload);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
  const double nan = net::parse_value_payload(
      net::make_value_payload(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(std::isnan(nan));
  EXPECT_THROW((void)net::parse_value_payload("short"), std::runtime_error);
}

TEST(NetFrame, PredictAndFeaturesPayloadRoundTrip) {
  const std::string aag = "aag 3 1 0 1 1\n2\n6\n6 2 4\n";  // newlines travel verbatim
  net::PredictPayload predict;
  std::string error;
  ASSERT_TRUE(net::parse_predict_payload(net::make_predict_payload("delay", aag), predict, error));
  EXPECT_EQ(predict.model, "delay");
  EXPECT_EQ(predict.aag, aag);

  const std::vector<double> row = {1.5, -2.25, 0.1 + 0.2, 1e300};
  net::FeaturesPayload features;
  ASSERT_TRUE(
      net::parse_features_payload(net::make_features_payload("area", row), features, error));
  EXPECT_EQ(features.model, "area");
  ASSERT_EQ(features.row.size(), row.size());
  for (std::size_t i = 0; i < row.size(); ++i) EXPECT_EQ(features.row[i], row[i]) << i;

  // Truncations are parse errors (connection survives), not framing errors.
  const std::string good = net::make_features_payload("area", row);
  net::FeaturesPayload out;
  EXPECT_FALSE(net::parse_features_payload(good.substr(0, good.size() - 3), out, error));
  EXPECT_FALSE(net::parse_predict_payload("", predict, error));
}

// ---- SlotScheduler -----------------------------------------------------------

TEST(NetSlots, AcquireReleaseAccounting) {
  net::SlotScheduler sched(2);
  EXPECT_TRUE(sched.acquire());
  EXPECT_TRUE(sched.acquire());
  EXPECT_TRUE(sched.exhausted());
  EXPECT_FALSE(sched.acquire());  // full: caller parks
  sched.release();
  EXPECT_FALSE(sched.exhausted());
  EXPECT_TRUE(sched.acquire());
  sched.release();
  sched.release();

  const net::SlotStats& s = sched.stats();
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.busy, 0u);
  EXPECT_EQ(s.peak_busy, 2u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.completed, 3u);
}

TEST(NetSlots, ReadyRingIsFifoAndParkFrontKeepsPlaceInLine) {
  net::SlotScheduler sched(1);
  sched.push_ready(7);
  sched.push_ready(8);
  EXPECT_EQ(sched.pop_ready(), std::optional<std::uint64_t>(7));
  EXPECT_EQ(sched.pop_ready(), std::optional<std::uint64_t>(8));
  EXPECT_FALSE(sched.pop_ready().has_value());

  sched.park(1);
  sched.park(2);
  EXPECT_EQ(sched.stats().parked_waits, 2u);
  EXPECT_EQ(sched.pop_parked(), std::optional<std::uint64_t>(1));
  // An unpark that loses the slot race goes back to the HEAD, un-counted.
  sched.park_front(1);
  EXPECT_EQ(sched.stats().parked_waits, 2u);
  EXPECT_EQ(sched.pop_parked(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(sched.pop_parked(), std::optional<std::uint64_t>(2));
  EXPECT_FALSE(sched.has_parked());
}

// ---- EventLoop (both backends) -----------------------------------------------

class NetEventLoop : public ::testing::TestWithParam<net::EventLoop::Backend> {};

TEST_P(NetEventLoop, PostedTasksRunOnLoopThreadInOrder) {
  net::EventLoop loop(GetParam());
  std::vector<int> order;
  bool on_loop_thread = false;
  loop.post([&] { order.push_back(1); });
  loop.post([&] {
    order.push_back(2);
    on_loop_thread = loop.in_loop_thread();
  });
  loop.post([&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(on_loop_thread);
}

TEST_P(NetEventLoop, PostAfterFiresAfterTheDelay) {
  net::EventLoop loop(GetParam());
  const auto t0 = std::chrono::steady_clock::now();
  std::chrono::steady_clock::duration elapsed{};
  loop.post_after(30, [&] {
    elapsed = std::chrono::steady_clock::now() - t0;
    loop.stop();
  });
  loop.run();
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 30);
}

TEST_P(NetEventLoop, StopFromAnotherThreadWakesTheLoop) {
  net::EventLoop loop(GetParam());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  loop.run();  // would block forever without the cross-thread wake
  stopper.join();
  SUCCEED();
}

/// Full-duplex echo over a socketpair: peer B queues a request, peer A
/// echoes everything it reads back, B stops the loop once the whole message
/// returned.  Exercises Connection read/write rings, interest updates, and
/// the drain-to-EAGAIN contract under the chosen backend.
TEST_P(NetEventLoop, ConnectionEchoRoundTrip) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::EventLoop loop(GetParam());
  net::Connection a(loop, sv[0], 1);
  net::Connection b(loop, sv[1], 2);

  // Large enough to straddle several reads/writes.
  std::string message;
  for (int i = 0; i < 5000; ++i) message += "payload-" + std::to_string(i) + "|";

  a.on_data = [](net::Connection& c) {
    const std::string bytes(c.read_ring().readable());
    c.read_ring().consume(bytes.size());
    c.queue_write(bytes);
  };
  std::string received;
  b.on_data = [&](net::Connection& c) {
    received.append(c.read_ring().readable());
    c.read_ring().consume(c.read_ring().size());
    if (received.size() >= message.size()) loop.stop();
  };
  loop.post([&] { b.queue_write(message); });
  loop.post_after(5000, [&] { loop.stop(); });  // watchdog
  loop.run();
  EXPECT_EQ(received, message);
  a.close();
  b.close();
}

TEST_P(NetEventLoop, PauseReadingHoldsDataUntilResume) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::EventLoop loop(GetParam());
  net::Connection a(loop, sv[0], 1);
  net::Connection b(loop, sv[1], 2);

  std::string received;
  int deliveries_while_paused = 0;
  bool paused = true;
  b.on_data = [&](net::Connection& c) {
    if (paused) ++deliveries_while_paused;
    received.append(c.read_ring().readable());
    c.read_ring().consume(c.read_ring().size());
    if (received.size() >= 5) loop.stop();
  };
  loop.post([&] {
    b.pause_reading();
    a.queue_write("hello");
  });
  loop.post_after(50, [&] {
    paused = false;
    b.resume_reading();
  });
  loop.post_after(5000, [&] { loop.stop(); });  // watchdog
  loop.run();
  EXPECT_EQ(deliveries_while_paused, 0);
  EXPECT_EQ(received, "hello");
  a.close();
  b.close();
}

/// net.epoll_spurious (util/fault): every wait round also dispatches
/// synthesized readable events.  A drain-to-EAGAIN handler must treat them
/// as "nothing there" — the echo still completes, bytes intact.
TEST_P(NetEventLoop, SpuriousWakeupFaultDoesNotCorruptTraffic) {
  fault::install(fault::FaultPlan::parse("net.epoll_spurious,count=0"));
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  {
    net::EventLoop loop(GetParam());
    net::Connection a(loop, sv[0], 1);
    net::Connection b(loop, sv[1], 2);
    a.on_data = [](net::Connection& c) {
      const std::string bytes(c.read_ring().readable());
      c.read_ring().consume(bytes.size());
      c.queue_write(bytes);
    };
    std::string received;
    b.on_data = [&](net::Connection& c) {
      received.append(c.read_ring().readable());
      c.read_ring().consume(c.read_ring().size());
      if (received.size() >= 10) loop.stop();
    };
    loop.post([&] { b.queue_write("0123456789"); });
    loop.post_after(5000, [&] { loop.stop(); });  // watchdog
    loop.run();
    EXPECT_EQ(received, "0123456789");
    EXPECT_GT(fault::fired(fault::Site::kNetEpollSpurious), 0u);
    a.close();
    b.close();
  }
  fault::clear();
}

INSTANTIATE_TEST_SUITE_P(Backends, NetEventLoop,
                         ::testing::Values(net::EventLoop::Backend::kEpoll,
                                           net::EventLoop::Backend::kPoll),
                         [](const ::testing::TestParamInfo<net::EventLoop::Backend>& info) {
                           return info.param == net::EventLoop::Backend::kEpoll ? "epoll" : "poll";
                         });

}  // namespace
}  // namespace aigml
