// Active-learning suite (DESIGN.md §9): keyed-dataset merge semantics and
// row-order-independent retraining, GBDT warm starts, the replay buffer's
// binary round trip, seed-deterministic harvest selection, LiveMlCost's
// generation-following contract (bit-identical to a pinned MlCost until a
// swap; no stale memo payload after one), and the closed loop end to end
// (harvest -> retrain -> install -> measurably lower error on the states
// the search visited).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "celllib/library.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "flow/label.hpp"
#include "gen/circuits.hpp"
#include "learn/harvester.hpp"
#include "learn/loop.hpp"
#include "learn/replay.hpp"
#include "learn/retrainer.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "opt/recipe.hpp"
#include "opt/sa.hpp"
#include "serve/live_cost.hpp"
#include "serve/registry.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// Shared expensive fixture: a mult4 base, a ground-truth-labeled keyed
/// dataset of its variants (the datagen pipeline), and delay/area models
/// trained on it.  Built once for the whole suite.
struct LearnFixture {
  aig::Aig base;
  flow::GeneratedData data;
  ml::GbdtModel delay_model;
  ml::GbdtModel area_model;
};

const LearnFixture& fixture() {
  static const LearnFixture fx = [] {
    LearnFixture out{gen::multiplier(4), {}, {}, {}};
    flow::DataGenParams params;
    params.num_variants = 40;
    params.seed = 0x1ea51;
    out.data = flow::generate_dataset(out.base, "fx", cell::mini_sky130(), params);
    ml::GbdtParams gbdt;
    gbdt.num_trees = 80;
    gbdt.max_depth = 4;
    gbdt.seed = 0x90de1;
    out.delay_model = ml::GbdtModel::train(out.data.delay, gbdt);
    out.area_model = ml::GbdtModel::train(out.data.area, gbdt);
    return out;
  }();
  return fx;
}

// ---- ml::Dataset keys --------------------------------------------------------

ml::Dataset make_rows(const std::vector<std::pair<double, std::uint64_t>>& rows) {
  ml::Dataset out({"f0", "f1"});
  for (const auto& [value, key] : rows) {
    const double features[2] = {value, value * 2.0};
    out.append(features, value * 10.0, "t", key);
  }
  return out;
}

TEST(LearnDataset, MergeDedupSkipsKnownKeys) {
  ml::Dataset base = make_rows({{1.0, 100}, {2.0, 0}, {3.0, 300}});
  const ml::Dataset incoming =
      make_rows({{4.0, 100}, {5.0, 0}, {6.0, 400}, {7.0, 400}, {8.0, 0}});
  // key 100 exists, key 0 never dedups, 400 appended once (intra-batch dup).
  EXPECT_EQ(base.merge_dedup(incoming), 3u);
  ASSERT_EQ(base.num_rows(), 6u);
  EXPECT_EQ(base.label(3), 50.0);  // the 5.0 row (key 0)
  EXPECT_EQ(base.key(4), 400u);
  EXPECT_EQ(base.label(4), 60.0);  // first key-400 row won
  EXPECT_EQ(base.key(5), 0u);

  // append_rows keeps everything, keys included.
  ml::Dataset bulk = make_rows({{1.0, 100}});
  bulk.append_rows(incoming);
  EXPECT_EQ(bulk.num_rows(), 6u);
  EXPECT_EQ(bulk.key(1), 100u);

  ml::Dataset other({"different"});
  EXPECT_THROW(base.merge_dedup(other), std::invalid_argument);
}

TEST(LearnDataset, KeysRoundTripThroughCsv) {
  TempDir dir("aigml_keyed_csv");
  const fs::path path = dir.path / "keyed.csv";
  const ml::Dataset keyed = make_rows({{1.0, 100}, {2.0, 0}, {3.0, 300}});
  keyed.save(path);
  const auto loaded = ml::Dataset::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, keyed);  // keys survive the cache (seed_known depends on it)

  // Unkeyed datasets keep the legacy schema; legacy files load with key 0.
  ml::Dataset unkeyed({"f0", "f1"});
  const double f[2] = {1.0, 2.0};
  unkeyed.append(f, 3.0, "t");
  unkeyed.save(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.find("key"), std::string::npos);
  const auto legacy = ml::Dataset::load(path);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->key(0), 0u);
}

TEST(LearnDataset, SortedByKeyCanonicalizes) {
  const ml::Dataset data = make_rows({{1.0, 500}, {2.0, 0}, {3.0, 100}, {4.0, 0}, {5.0, 300}});
  const ml::Dataset sorted = data.sorted_by_key();
  ASSERT_EQ(sorted.num_rows(), 5u);
  // Unkeyed rows first in original order, then keys ascending.
  EXPECT_EQ(sorted.label(0), 20.0);
  EXPECT_EQ(sorted.label(1), 40.0);
  EXPECT_EQ(sorted.key(2), 100u);
  EXPECT_EQ(sorted.key(3), 300u);
  EXPECT_EQ(sorted.key(4), 500u);
}

TEST(LearnDataset, MergedTrainingIsRowOrderIndependent) {
  // The same harvested row *set* arriving as different batch splits in
  // different orders must canonicalize to the same dataset and train the
  // same model for a fixed seed (GBDT row subsampling is positional).
  const LearnFixture& fx = fixture();
  const ml::Dataset& pool = fx.data.delay;
  ASSERT_GE(pool.num_rows(), 20u);
  std::vector<std::size_t> first_half, second_half, interleaved_a, interleaved_b;
  for (std::size_t i = 4; i < 20; ++i) (i < 12 ? first_half : second_half).push_back(i);
  for (std::size_t i = 4; i < 20; ++i) (i % 2 == 0 ? interleaved_a : interleaved_b).push_back(i);
  std::reverse(interleaved_a.begin(), interleaved_a.end());

  ml::Dataset base = pool.subset(std::vector<std::size_t>{0, 1, 2, 3});
  ml::Dataset merged_a = base;
  merged_a.merge_dedup(pool.subset(first_half));
  merged_a.merge_dedup(pool.subset(second_half));
  merged_a = merged_a.sorted_by_key();
  ml::Dataset merged_b = base;
  merged_b.merge_dedup(pool.subset(interleaved_a));
  merged_b.merge_dedup(pool.subset(interleaved_b));
  // Feed one overlap batch to prove dedup keeps the set identical.
  merged_b.merge_dedup(pool.subset(first_half));
  merged_b = merged_b.sorted_by_key();

  EXPECT_EQ(merged_a, merged_b);

  ml::GbdtParams params;
  params.num_trees = 30;
  params.max_depth = 3;
  params.seed = 0xabc;
  const ml::GbdtModel model_a = ml::GbdtModel::train(merged_a, params);
  const ml::GbdtModel model_b = ml::GbdtModel::train(merged_b, params);
  for (std::size_t i = 0; i < pool.num_rows(); i += 5) {
    EXPECT_EQ(model_a.predict(pool.row(i)), model_b.predict(pool.row(i)));
  }
}

// ---- GBDT warm start ---------------------------------------------------------

TEST(LearnWarmStart, ContinuesBoostingFromExistingEnsemble) {
  const LearnFixture& fx = fixture();
  const ml::Dataset& data = fx.data.delay;
  ml::GbdtParams params;
  params.num_trees = 25;
  params.max_depth = 3;
  params.subsample = 1.0;  // deterministic descent: every round sees all rows
  params.colsample = 1.0;
  params.seed = 0x5eed;
  const ml::GbdtModel base = ml::GbdtModel::train(data, params);

  ml::GbdtParams more = params;
  more.num_trees = 10;
  const ml::GbdtModel warm = ml::GbdtModel::train(data, more, nullptr, nullptr, &base);
  EXPECT_EQ(warm.num_trees(), 35u);
  EXPECT_EQ(warm.base_score(), base.base_score());

  const std::vector<double> base_preds = base.predict_all(data);
  const std::vector<double> warm_preds = warm.predict_all(data);
  // Ten more full-sample boosting rounds strictly reduce train RMSE.
  EXPECT_LT(ml::rmse(warm_preds, data.labels()), ml::rmse(base_preds, data.labels()));

  ml::GbdtParams bad_rate = more;
  bad_rate.learning_rate = params.learning_rate * 0.5;
  EXPECT_THROW((void)ml::GbdtModel::train(data, bad_rate, nullptr, nullptr, &base),
               std::invalid_argument);

  // Feature-width mismatch between the warm model and the dataset.
  ml::Dataset narrow({"only"});
  const double f[1] = {1.0};
  narrow.append(f, 2.0);
  narrow.append(f, 3.0);
  ml::GbdtParams tiny_params;
  tiny_params.num_trees = 1;
  const ml::GbdtModel tiny = ml::GbdtModel::train(narrow, tiny_params);
  EXPECT_THROW((void)ml::GbdtModel::train(data, more, nullptr, nullptr, &tiny),
               std::invalid_argument);
}

// ---- ReplayBuffer ------------------------------------------------------------

learn::ReplayRow make_row(std::uint64_t key, double scale) {
  learn::ReplayRow row;
  row.key = key;
  row.generation = key % 7;
  row.delay_ps = 1234.5 * scale;
  row.area_um2 = 99.25 * scale;
  row.pred_delay = 1200.0 / scale;
  row.pred_area = 101.0 / scale;
  for (std::size_t i = 0; i < row.features.size(); ++i) {
    row.features[i] = static_cast<double>(i) / scale;
  }
  return row;
}

TEST(LearnReplay, BinaryRoundTripAndDedup) {
  TempDir dir("aigml_replay");
  const fs::path file = dir.path / "h.rpb";
  {
    learn::ReplayBuffer buffer(file);
    EXPECT_TRUE(buffer.add(make_row(11, 3.0)));
    EXPECT_TRUE(buffer.add(make_row(22, 7.0)));
    EXPECT_FALSE(buffer.add(make_row(11, 5.0)));  // dedup by key
    EXPECT_EQ(buffer.flush(), 2u);
    EXPECT_TRUE(buffer.add(make_row(33, 9.0)));
    EXPECT_EQ(buffer.flush(), 1u);  // only the unpersisted suffix
    EXPECT_EQ(buffer.flush(), 0u);
  }
  learn::ReplayBuffer loaded(file);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(loaded.contains(22));
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const learn::ReplayRow expected = make_row(loaded.row(i).key, i == 0 ? 3.0
                                                                  : i == 1 ? 7.0
                                                                           : 9.0);
    EXPECT_EQ(loaded.row(i).key, expected.key);
    EXPECT_EQ(loaded.row(i).generation, expected.generation);
    EXPECT_EQ(loaded.row(i).delay_ps, expected.delay_ps);      // bit-exact doubles
    EXPECT_EQ(loaded.row(i).pred_area, expected.pred_area);
    EXPECT_EQ(loaded.row(i).features, expected.features);
  }
  // Rows loaded from disk join the dedup set.
  EXPECT_FALSE(loaded.add(make_row(22, 1.0)));
}

TEST(LearnReplay, TornTrailingRecordIsDropped) {
  TempDir dir("aigml_replay_torn");
  const fs::path file = dir.path / "h.rpb";
  {
    learn::ReplayBuffer buffer(file);
    (void)buffer.add(make_row(1, 2.0));
    (void)buffer.add(make_row(2, 4.0));
    buffer.flush();
  }
  {
    std::ofstream out(file, std::ios::binary | std::ios::app);
    out.write("torn-write", 10);
  }
  const learn::ReplayBuffer recovered(file);
  EXPECT_EQ(recovered.size(), 2u);
}

TEST(LearnReplay, RejectsForeignFormats) {
  TempDir dir("aigml_replay_bad");
  const fs::path file = dir.path / "h.rpb";
  {
    learn::ReplayBuffer buffer(file);
    (void)buffer.add(make_row(1, 2.0));
    buffer.flush();
  }
  // Patch the version field.
  {
    std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(4);
    const std::uint32_t version = 99;
    io.write(reinterpret_cast<const char*>(&version), 4);
  }
  EXPECT_THROW((void)learn::ReplayBuffer(file), std::runtime_error);
  // Patch the feature width instead.
  {
    std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(4);
    const std::uint32_t version = learn::ReplayBuffer::kFormatVersion;
    io.write(reinterpret_cast<const char*>(&version), 4);
    const std::uint32_t width = 7;
    io.write(reinterpret_cast<const char*>(&width), 4);
  }
  EXPECT_THROW((void)learn::ReplayBuffer(file), std::runtime_error);
  // A path that does not exist yet is a fresh buffer, not an error.
  const learn::ReplayBuffer fresh(dir.path / "sub" / "new.rpb");
  EXPECT_EQ(fresh.size(), 0u);
}

// ---- LabelHarvester ----------------------------------------------------------

/// A deterministic candidate stream: a scripted walk from the base, with
/// model-predicted evals — what a search would feed on_candidate.
struct Stream {
  std::vector<aig::Aig> graphs;
  std::vector<opt::QualityEval> evals;
};

Stream make_stream(int length, std::uint64_t seed) {
  const LearnFixture& fx = fixture();
  Stream out;
  const auto& scripts = transforms::script_registry();
  Rng rng(seed);
  aig::Aig current = fx.base;
  for (int i = 0; i < length; ++i) {
    current = scripts.apply(scripts.random_index(rng), current);
    const auto f = features::extract(current);
    out.graphs.push_back(current);
    out.evals.push_back({fx.delay_model.predict(f), fx.area_model.predict(f)});
  }
  return out;
}

std::vector<std::uint64_t> harvest_keys(const Stream& stream, bool async, int budget) {
  const LearnFixture& fx = fixture();
  learn::ReplayBuffer buffer;
  learn::HarvestParams params;
  params.budget = budget;
  params.min_disagreement = 0.05;
  params.async = async;
  learn::LabelHarvester harvester(cell::mini_sky130(), buffer, params);
  harvester.seed_envelope(fx.data.delay);
  const auto f0 = features::extract(fx.base);
  harvester.on_start(fx.base, {fx.delay_model.predict(f0), fx.area_model.predict(f0)}, 0.0);
  for (std::size_t i = 0; i < stream.graphs.size(); ++i) {
    harvester.on_candidate(static_cast<int>(i), stream.graphs[i], stream.evals[i]);
  }
  harvester.drain();
  EXPECT_EQ(harvester.stats().labeled, buffer.size());
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < buffer.size(); ++i) keys.push_back(buffer.row(i).key);
  return keys;
}

TEST(LearnHarvester, SelectionIsDeterministicAndAsyncAgnostic) {
  const Stream stream = make_stream(50, 0x57ee);
  const auto sync_keys = harvest_keys(stream, /*async=*/false, /*budget=*/0);
  const auto async_keys = harvest_keys(stream, /*async=*/true, /*budget=*/0);
  const auto again = harvest_keys(stream, /*async=*/true, /*budget=*/0);
  EXPECT_FALSE(sync_keys.empty());
  EXPECT_EQ(sync_keys, async_keys);  // same rows, same order, any worker timing
  EXPECT_EQ(async_keys, again);
}

TEST(LearnHarvester, BudgetAndNoveltyAreRespected) {
  Stream stream = make_stream(40, 0xb0d9);
  // Feed every candidate twice: the novelty filter must drop the repeats.
  Stream doubled;
  for (std::size_t i = 0; i < stream.graphs.size(); ++i) {
    doubled.graphs.push_back(stream.graphs[i]);
    doubled.graphs.push_back(stream.graphs[i]);
    doubled.evals.push_back(stream.evals[i]);
    doubled.evals.push_back(stream.evals[i]);
  }
  const auto unlimited = harvest_keys(doubled, false, 0);
  const auto base_keys = harvest_keys(stream, false, 0);
  EXPECT_EQ(unlimited, base_keys);

  const auto capped = harvest_keys(stream, false, 3);
  EXPECT_LE(capped.size(), 3u);
  ASSERT_GE(base_keys.size(), capped.size());
  EXPECT_TRUE(std::equal(capped.begin(), capped.end(), base_keys.begin()));
}

// ---- LiveMlCost --------------------------------------------------------------

TEST(LearnLiveCost, BitIdenticalToPinnedMlCostUntilSwap) {
  const LearnFixture& fx = fixture();
  serve::ModelRegistry registry;
  registry.install("delay", fx.delay_model);
  registry.install("area", fx.area_model);

  opt::SaParams params;
  params.iterations = 40;
  params.seed = 0x11fe;
  const opt::SaStrategy strategy(params);

  serve::LiveMlCost live(registry);
  opt::MlCost pinned(registry.get("delay"), registry.get("area"));
  const opt::OptResult a =
      strategy.run(fx.base, live, {.max_iterations = params.iterations});
  const opt::OptResult b =
      strategy.run(fx.base, pinned, {.max_iterations = params.iterations});
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].delay, b.history[i].delay);
    EXPECT_EQ(a.history[i].area, b.history[i].area);
    EXPECT_EQ(a.history[i].accepted, b.history[i].accepted);
  }
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(live.swaps_observed(), 0u);
}

/// Installs a replacement delay model at iteration `swap_at` and checks
/// every candidate evaluation against the model that should be live for it.
struct SwapObserver final : public opt::Observer {
  serve::ModelRegistry* registry = nullptr;
  const ml::GbdtModel* old_model = nullptr;
  const ml::GbdtModel* new_model = nullptr;
  int swap_at = 0;
  int mismatches = 0;
  int checked = 0;

  void on_candidate(int iteration, const aig::Aig& candidate,
                    const opt::QualityEval& eval) override {
    const ml::GbdtModel& expected = iteration <= swap_at ? *old_model : *new_model;
    ++checked;
    if (eval.delay != expected.predict(features::extract(candidate))) ++mismatches;
  }
  void on_iteration(int iteration, const opt::IterationRecord& /*record*/) override {
    if (iteration == swap_at) registry->install("delay", *new_model);
  }
};

TEST(LearnLiveCost, MidSearchSwapNeverServesStaleGeneration) {
  const LearnFixture& fx = fixture();
  ml::GbdtParams gbdt;
  gbdt.num_trees = 40;
  gbdt.max_depth = 3;
  gbdt.seed = 0x0ddba11;
  const ml::GbdtModel replacement = ml::GbdtModel::train(fx.data.delay, gbdt);
  // Distinct models: at least one fixture variant must predict differently,
  // or the swap test would vacuously pass.
  bool differs = false;
  for (std::size_t i = 0; i < fx.data.delay.num_rows(); ++i) {
    differs |= replacement.predict(fx.data.delay.row(i)) !=
               fx.delay_model.predict(fx.data.delay.row(i));
  }
  ASSERT_TRUE(differs);

  serve::ModelRegistry registry;
  registry.install("delay", fx.delay_model);
  registry.install("area", fx.area_model);
  serve::LiveMlCost live(registry);

  SwapObserver observer;
  observer.registry = &registry;
  observer.old_model = &fx.delay_model;
  observer.new_model = &replacement;
  observer.swap_at = 19;

  opt::SaParams params;
  params.iterations = 60;  // enough post-swap moves to hit memo repeats
  params.seed = 0x5a5a;
  const opt::SaStrategy strategy(params);
  const opt::OptResult result =
      strategy.run(fx.base, live, {.max_iterations = params.iterations}, &observer);
  EXPECT_EQ(result.history.size(), 60u);
  EXPECT_EQ(observer.checked, 60);
  // No torn snapshot, no memo entry from the old generation served after the
  // swap: every single evaluation matches the model live at that iteration.
  EXPECT_EQ(observer.mismatches, 0);
  EXPECT_EQ(live.swaps_observed(), 1u);
}

// ---- the closed loop ---------------------------------------------------------

TEST(LearnLoop, EndToEndHarvestRetrainImprove) {
  const LearnFixture& fx = fixture();
  serve::ModelRegistry registry;
  registry.install("delay", fx.delay_model);
  registry.install("area", fx.area_model);

  learn::LearnParams params;
  params.harvest.budget = 12;
  params.harvest.min_disagreement = 0.05;
  params.retrain.min_new_rows = 4;
  params.retrain.extra_trees = 30;
  learn::ActiveLearner learner(cell::mini_sky130(), registry, params);
  learner.set_base(fx.data.delay, fx.data.area);

  serve::LiveMlCost live(registry);
  opt::SaParams sa;
  sa.iterations = 60;
  sa.seed = 0xc105ed;
  const opt::SaStrategy strategy(sa);
  const opt::OptResult result =
      strategy.run(fx.base, live, {.max_iterations = sa.iterations}, &learner);
  EXPECT_EQ(result.history.size(), 60u);

  const learn::LearnStats stats = learner.stats();
  EXPECT_GT(stats.selected, 0u);
  EXPECT_EQ(stats.labeled, learner.buffer().size());
  EXPECT_GE(stats.retrains, 1u);
  EXPECT_GE(live.swaps_observed(), 1u);
  EXPECT_GE(registry.version("delay"), 2u);
  // The acceptance bar: the refreshed model beats the run-initial model on
  // the states the search actually visited.
  EXPECT_GT(stats.base_error_pct, 0.0);
  EXPECT_LT(stats.final_error_pct, stats.base_error_pct);
}

TEST(LearnLoop, RunRequiresMlDirCost) {
  const LearnFixture& fx = fixture();
  opt::Recipe recipe;
  recipe.learn = true;
  recipe.iterations = 5;
  recipe.cost = "proxy";
  EXPECT_THROW((void)learn::run(recipe, fx.base, cell::mini_sky130()), std::invalid_argument);
  recipe.learn = false;
  recipe.cost = "ml:/nonexistent";
  EXPECT_THROW((void)learn::run(recipe, fx.base, cell::mini_sky130()), std::invalid_argument);
}

TEST(LearnLoop, RunFromModelDirPersistsHarvest) {
  const LearnFixture& fx = fixture();
  TempDir dir("aigml_learn_run");
  const fs::path models = dir.path / "models";
  fx.delay_model.save(models / "delay.gbdt");
  fx.area_model.save(models / "area.gbdt");
  fx.data.delay.save(models / "base_delay.csv");
  fx.data.area.save(models / "base_area.csv");

  opt::Recipe recipe;
  recipe.learn = true;
  recipe.learn_budget = 8;
  recipe.learn_dir = (dir.path / "harvest").string();
  recipe.iterations = 40;
  recipe.seed = 0xfee1;
  recipe.cost = "ml:" + models.string();

  const learn::LearnRunResult run = learn::run(recipe, fx.base, cell::mini_sky130());
  EXPECT_EQ(run.result.history.size(), 40u);
  EXPECT_GT(run.stats.selected, 0u);
  // The replay file is per-process (single-writer rule, replay.hpp).
  std::vector<fs::path> replays;
  for (const auto& entry : fs::directory_iterator(dir.path / "harvest")) {
    if (entry.path().extension() == ".rpb") replays.push_back(entry.path());
  }
  ASSERT_EQ(replays.size(), 1u);
  const learn::ReplayBuffer persisted(replays.front());
  EXPECT_EQ(persisted.size(), run.stats.labeled);
  if (run.stats.retrains > 0) {
    EXPECT_TRUE(fs::exists(dir.path / "harvest" / "delay.gbdt"));
    EXPECT_TRUE(fs::exists(dir.path / "harvest" / "area.gbdt"));
  }

  // A second run over the same learn_dir folds the first harvest into its
  // novelty filter: the stream is identical until the first run's model
  // swap diverged it, so at least those states must register as duplicates
  // instead of being paid for again, and the shared file continues cleanly.
  const learn::LearnRunResult again = learn::run(recipe, fx.base, cell::mini_sky130());
  EXPECT_GT(again.stats.duplicates, 0u);
  const learn::ReplayBuffer continued(replays.front());
  EXPECT_EQ(continued.size(), run.stats.labeled + again.stats.labeled);
}

// ---- recipe keys -------------------------------------------------------------

TEST(LearnRecipe, KeysParseAndRoundTrip) {
  const opt::Recipe recipe =
      opt::Recipe::parse("strategy=sa;iters=9;cost=ml:models;learn=1;learn_budget=7;"
                         "learn_dir=out/harvest");
  EXPECT_TRUE(recipe.learn);
  EXPECT_EQ(recipe.learn_budget, 7);
  EXPECT_EQ(recipe.learn_dir, "out/harvest");
  EXPECT_EQ(opt::Recipe::parse(recipe.to_string()), recipe);

  const opt::Recipe plain = opt::Recipe::parse("iters=5");
  EXPECT_FALSE(plain.learn);
  EXPECT_EQ(plain.to_string().find("learn"), std::string::npos);

  EXPECT_THROW((void)opt::Recipe::parse("learn=2"), std::invalid_argument);
  EXPECT_THROW((void)opt::Recipe::parse("learn_budget=0"), std::invalid_argument);
}

TEST(LearnRecipe, OptRunRejectsLearnWithoutRunner) {
  const LearnFixture& fx = fixture();
  opt::Recipe recipe;
  recipe.learn = true;
  recipe.iterations = 3;
  opt::CostContext ctx;
  EXPECT_THROW((void)opt::run(recipe, fx.base, ctx), std::invalid_argument);
}

}  // namespace
}  // namespace aigml
