// Unit tests for the util module: RNG determinism and distribution sanity,
// statistics, CSV round-trips, environment knobs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace aigml {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(5);
  Rng child = a.fork();
  // The child stream should not replay the parent stream.
  Rng b(5);
  b.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yneg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Stats, SpearmanHandlesTies) {
  std::vector<double> x{1, 2, 2, 3};
  std::vector<double> y{10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Stats, LatencyHistogramPercentilesAndMerge) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_us(99), 0.0);

  for (int i = 1; i <= 100; ++i) h.add_us(static_cast<double>(i) * 10.0);  // 10..1000 us
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
  EXPECT_NEAR(h.mean_us(), 505.0, 1e-9);
  // Bucketed interpolation is approximate; pin it to the right bucket.
  EXPECT_GT(h.percentile_us(50), 100.0);
  EXPECT_LE(h.percentile_us(50), 1000.0);
  EXPECT_LE(h.percentile_us(50), h.percentile_us(90));
  EXPECT_LE(h.percentile_us(90), h.percentile_us(99));
  EXPECT_LE(h.percentile_us(99), h.max_us());

  LatencyHistogram other;
  other.add_us(5e6);  // overflow bucket
  other.merge(h);
  EXPECT_EQ(other.count(), 101u);
  EXPECT_DOUBLE_EQ(other.max_us(), 5e6);
  std::uint64_t total = 0;
  for (const auto b : other.buckets()) total += b;
  EXPECT_EQ(total, other.count());
}

TEST(Stats, AbsolutePercentError) {
  std::vector<double> pred{110, 90};
  std::vector<double> truth{100, 100};
  const auto e = absolute_percent_error(pred, truth);
  EXPECT_DOUBLE_EQ(e.mean_pct, 10.0);
  EXPECT_DOUBLE_EQ(e.max_pct, 10.0);
  EXPECT_DOUBLE_EQ(e.std_pct, 0.0);
  EXPECT_EQ(e.count, 2u);
}

TEST(Stats, AbsolutePercentErrorSkipsZeroTruth) {
  std::vector<double> pred{110, 55};
  std::vector<double> truth{100, 0};
  const auto e = absolute_percent_error(pred, truth);
  EXPECT_EQ(e.count, 1u);
  EXPECT_DOUBLE_EQ(e.mean_pct, 10.0);
}

TEST(Csv, RoundTrip) {
  CsvTable t({"a", "b", "c"});
  t.add_row({"1", "2.5", "x"});
  t.add_row({"-3", "0.125", "y"});
  const auto path = std::filesystem::temp_directory_path() / "aigml_test_roundtrip.csv";
  t.save(path);
  const auto loaded = CsvTable::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header(), t.header());
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->cell(0, 2), "x");
  EXPECT_DOUBLE_EQ(loaded->cell_as_double(1, 1), 0.125);
  std::filesystem::remove(path);
}

TEST(Csv, LoadMissingFileReturnsNullopt) {
  EXPECT_FALSE(CsvTable::load("/nonexistent/definitely_missing.csv").has_value());
}

TEST(Csv, RaggedRowThrows) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, ColumnLookup) {
  CsvTable t({"alpha", "beta"});
  EXPECT_EQ(t.column("beta").value(), 1u);
  EXPECT_FALSE(t.column("gamma").has_value());
}

TEST(Csv, FormatDoubleRoundTrips) {
  for (double v : {0.1, 1e-12, 12345.6789, -0.0, 3.0}) {
    const std::string s = format_double(v);
    EXPECT_DOUBLE_EQ(std::stod(s), v) << s;
  }
}

TEST(Env, ScaleDefaultsToOne) {
  ::unsetenv("AIGML_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  EXPECT_EQ(scaled(100), 100);
}

TEST(Env, ScaleParsesAndClamps) {
  ::setenv("AIGML_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 2.5);
  EXPECT_EQ(scaled(100), 250);
  ::setenv("AIGML_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 0.05);
  ::setenv("AIGML_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  ::unsetenv("AIGML_SCALE");
}

TEST(Env, ScaledRespectsFloor) {
  ::setenv("AIGML_SCALE", "0.05", 1);
  EXPECT_EQ(scaled(10, 5), 5);
  ::unsetenv("AIGML_SCALE");
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.elapsed_s(), 0.0);
  EXPECT_GT(t.elapsed_ms(), t.elapsed_s());
}

TEST(Stopwatch, AccumulatesLaps) {
  Stopwatch w;
  for (int lap = 0; lap < 3; ++lap) {
    ScopedLap guard(w);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_EQ(w.laps(), 3u);
  EXPECT_GT(w.total_s(), 0.0);
  EXPECT_NEAR(w.mean_s(), w.total_s() / 3.0, 1e-12);
  w.reset();
  EXPECT_EQ(w.laps(), 0u);
  EXPECT_EQ(w.total_s(), 0.0);
}

}  // namespace
}  // namespace aigml
