// Serving-layer suite: ModelRegistry snapshot/hot-swap semantics,
// PredictService micro-batching (batched results bit-identical to
// one-at-a-time GbdtModel::predict, per-request error isolation), the TCP
// server/client round trip, and the wire protocol helpers.  The
// concurrency tests (hot-swap under load, concurrent clients) also run
// under ThreadSanitizer in CI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "opt/cost.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "transforms/scripts.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::vector<aig::Aig> variants;
  ml::GbdtModel model;
};

/// Distinct optimized variants of mult4 plus a small GBDT trained on them
/// (levels as labels — the tests only care about exact reproducibility).
Fixture make_fixture(std::uint64_t seed, int num_trees = 30) {
  Fixture fx;
  const aig::Aig base = gen::multiplier(4);
  const auto& scripts = transforms::script_registry();
  Rng rng(seed);
  ml::Dataset data(features::feature_names());
  for (int i = 0; i < 16; ++i) {
    fx.variants.push_back(scripts.apply(scripts.random_index(rng), base));
    data.append(features::extract(fx.variants.back()),
                static_cast<double>(aig::aig_level(fx.variants.back())) +
                    0.1 * static_cast<double>(rng.next_below(10)),
                "fx");
  }
  ml::GbdtParams params;
  params.num_trees = num_trees;
  params.max_depth = 3;
  params.seed = seed;
  fx.model = ml::GbdtModel::train(data, params);
  return fx;
}

/// Temp directory removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / (stem + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ServeRegistry, InstallGetVersioning) {
  Fixture fx = make_fixture(0xA0);
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.try_get("delay"), nullptr);
  EXPECT_THROW((void)registry.get("delay"), std::out_of_range);

  registry.install("delay", fx.model);
  const auto snapshot = registry.get("delay");
  ASSERT_NE(snapshot, nullptr);
  const auto f = features::extract(fx.variants[0]);
  EXPECT_EQ(snapshot->predict(f), fx.model.predict(f));

  const auto info = registry.list();
  ASSERT_EQ(info.size(), 1u);
  EXPECT_EQ(info[0].name, "delay");
  EXPECT_EQ(info[0].version, 1u);

  registry.install("delay", fx.model);
  EXPECT_EQ(registry.list()[0].version, 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServeRegistry, OldSnapshotStaysValidAfterSwap) {
  Fixture a = make_fixture(0xA1, 20);
  Fixture b = make_fixture(0xB1, 25);
  serve::ModelRegistry registry;
  registry.install("delay", a.model);
  const auto old_snapshot = registry.get("delay");

  registry.install("delay", b.model);
  const auto f = features::extract(a.variants[0]);
  // The pre-swap snapshot still answers with the old model's exact value;
  // a fresh get() sees the new one.
  EXPECT_EQ(old_snapshot->predict(f), a.model.predict(f));
  EXPECT_EQ(registry.get("delay")->predict(f), b.model.predict(f));
}

TEST(ServeRegistry, DirectoryLoadReloadAndCorruptFileKeepsOldSnapshot) {
  Fixture a = make_fixture(0xA2, 20);
  Fixture b = make_fixture(0xB2, 25);
  TempDir dir("aigml_serve_registry");
  a.model.save(dir.path / "delay.gbdt");

  serve::ModelRegistry registry(dir.path);
  ASSERT_EQ(registry.size(), 1u);
  const auto f = features::extract(a.variants[0]);
  EXPECT_EQ(registry.get("delay")->predict(f), a.model.predict(f));

  // Unchanged file => unchanged snapshot.
  auto report = registry.reload();
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.unchanged, 1u);

  // New bytes => hot swap to the new model and a version bump.
  b.model.save(dir.path / "delay.gbdt");
  report = registry.reload();
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_EQ(registry.get("delay")->predict(f), b.model.predict(f));
  EXPECT_EQ(registry.list()[0].version, 2u);

  // Corrupt file => load error reported, previous snapshot keeps serving.
  std::ofstream(dir.path / "delay.gbdt") << "gbdt 1 corrupt";
  report = registry.reload();
  EXPECT_EQ(report.loaded, 0u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(registry.get("delay")->predict(f), b.model.predict(f));
}

TEST(ServeRegistry, ConstructorRejectsMissingDirectory) {
  EXPECT_THROW(serve::ModelRegistry{fs::path("/nonexistent/aigml_models")}, std::runtime_error);
}

TEST(ServeRegistry, GenerationCountsSwapsAcrossInstallAndReload) {
  Fixture a = make_fixture(0xA3, 20);
  Fixture b = make_fixture(0xB3, 25);
  TempDir dir("aigml_serve_generation");
  a.model.save(dir.path / "delay.gbdt");

  serve::ModelRegistry registry(dir.path);
  EXPECT_EQ(registry.generation(), 1u);  // the constructor's initial load
  EXPECT_EQ(registry.version("delay"), 1u);
  EXPECT_EQ(registry.version("nope"), 0u);

  // Unchanged files do not bump the generation — pollers must not refetch.
  (void)registry.reload();
  EXPECT_EQ(registry.generation(), 1u);

  b.model.save(dir.path / "delay.gbdt");
  (void)registry.reload();
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.version("delay"), 2u);

  registry.install("area", a.model);
  EXPECT_EQ(registry.generation(), 3u);
  EXPECT_EQ(registry.version("area"), 1u);
}

TEST(ServeService, BatchedBitIdenticalToSinglePredict) {
  Fixture fx = make_fixture(0xC0);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);

  const std::vector<double> batched = service.predict_batch("delay", fx.variants);
  ASSERT_EQ(batched.size(), fx.variants.size());
  for (std::size_t i = 0; i < fx.variants.size(); ++i) {
    EXPECT_EQ(batched[i], fx.model.predict(features::extract(fx.variants[i]))) << "variant " << i;
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, fx.variants.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.batches, 1u);
}

TEST(ServeService, FeatureRowPathMatchesGraphPath) {
  Fixture fx = make_fixture(0xC1);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);

  const auto f = features::extract(fx.variants[3]);
  const double via_features =
      service.submit_features("delay", std::vector<double>(f.begin(), f.end())).get();
  EXPECT_EQ(via_features, service.predict("delay", fx.variants[3]));
}

TEST(ServeService, PerRequestErrorsAreIsolated) {
  Fixture fx = make_fixture(0xC2);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);

  auto unknown = service.submit("nope", fx.variants[0]);
  auto bad_width = service.submit_features("delay", {1.0, 2.0});
  auto good = service.submit("delay", fx.variants[0]);
  EXPECT_THROW((void)unknown.get(), std::out_of_range);
  EXPECT_THROW((void)bad_width.get(), std::runtime_error);
  EXPECT_EQ(good.get(), fx.model.predict(features::extract(fx.variants[0])));

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeService, StatsRecordLatencyAndBatchSizeHistograms) {
  Fixture fx = make_fixture(0xC4);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);

  // 16 completions + 1 failure: every request — fulfilled or failed — must
  // land in the enqueue->fulfill latency histogram.
  (void)service.predict_batch("delay", fx.variants);
  auto doomed = service.submit("nope", fx.variants[0]);
  EXPECT_THROW((void)doomed.get(), std::out_of_range);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, fx.variants.size());
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.latency.count(), stats.completed + stats.failed);
  EXPECT_GT(stats.latency.mean_us(), 0.0);
  EXPECT_GE(stats.latency.max_us(), stats.latency.percentile_us(99));

  // One batch-size sample per drained batch, log2-bucketed.
  std::uint64_t hist_total = 0;
  for (const auto b : stats.batch_hist) hist_total += b;
  EXPECT_EQ(hist_total, stats.batches);
}

TEST(ServeService, AsyncSubmitMatchesFuturePathExactly) {
  Fixture fx = make_fixture(0xC5);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);

  // The continuous-batching entry point (BatchServer's path): callback
  // completions, coalescing window skipped, answers still bit-identical.
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
  std::vector<double> got(fx.variants.size(), 0.0);
  std::vector<bool> failed(fx.variants.size(), false);
  for (std::size_t i = 0; i < fx.variants.size(); ++i) {
    service.submit_async("delay", fx.variants[i],
                         [&, i](double value, std::exception_ptr error) {
                           std::lock_guard<std::mutex> lock(mutex);
                           got[i] = value;
                           failed[i] = error != nullptr;
                           ++done;
                           cv.notify_one();
                         });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done == fx.variants.size(); }));
  for (std::size_t i = 0; i < fx.variants.size(); ++i) {
    EXPECT_FALSE(failed[i]) << i;
    EXPECT_EQ(got[i], fx.model.predict(features::extract(fx.variants[i]))) << i;
  }

  // Error routing through the callback path: the exception arrives, typed.
  std::exception_ptr captured;
  std::promise<void> signal;
  service.submit_features_async("delay", {1.0, 2.0},
                                [&](double, std::exception_ptr error) {
                                  captured = error;
                                  signal.set_value();
                                });
  signal.get_future().wait();
  ASSERT_TRUE(captured);
  EXPECT_THROW(std::rethrow_exception(captured), std::runtime_error);
}

TEST(ServeService, HotSwapUnderConcurrentLoadNeverTearsPredictions) {
  Fixture a = make_fixture(0xD0, 20);
  Fixture b = make_fixture(0xD1, 25);
  const std::vector<aig::Aig>& variants = a.variants;

  // Exact per-variant answers under each model; the two models must differ
  // for the test to mean anything.
  std::vector<double> expect_a, expect_b;
  bool differ = false;
  for (const aig::Aig& g : variants) {
    const auto f = features::extract(g);
    expect_a.push_back(a.model.predict(f));
    expect_b.push_back(b.model.predict(f));
    differ = differ || expect_a.back() != expect_b.back();
  }
  ASSERT_TRUE(differ);

  serve::ModelRegistry registry;
  registry.install("delay", a.model);
  serve::PredictService service(registry, {.max_batch = 8, .batch_wait_us = 50});

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; !stop.load(); ++iter) {
        const std::size_t v = static_cast<std::size_t>(iter) % variants.size();
        const double got = service.predict("delay", variants[v]);
        if (got != expect_a[v] && got != expect_b[v]) torn.fetch_add(1);
      }
    });
  }
  for (int swap = 0; swap < 50; ++swap) {
    registry.install("delay", swap % 2 == 0 ? b.model : a.model);
    std::this_thread::yield();  // let reader batches interleave with swaps
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  // Every concurrent prediction matched one of the two installed snapshots
  // exactly — hot swap flips between versions, never mixes them.
  EXPECT_EQ(torn.load(), 0);
}

TEST(ServeService, MakeMlCostUsesRegistrySnapshots) {
  Fixture fx = make_fixture(0xC3);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);

  opt::MlCost from_registry = serve::make_ml_cost(registry, "delay", "area");
  opt::MlCost borrowed(fx.model, fx.model);
  const auto a = from_registry.evaluate(fx.variants[1]);
  const auto b = borrowed.evaluate(fx.variants[1]);
  EXPECT_EQ(a.delay, b.delay);
  EXPECT_EQ(a.area, b.area);
  EXPECT_THROW((void)serve::make_ml_cost(registry, "delay", "nope"), std::out_of_range);
}

TEST(ServeProtocol, EscapeRoundTripAndErrors) {
  const std::string text = "aag 3 1 0 1 1\n2\n4\\path\r\nend";
  const std::string escaped = serve::escape_line(text);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(serve::unescape_line(escaped), text);
  EXPECT_THROW((void)serve::unescape_line("dangling\\"), std::runtime_error);
  EXPECT_THROW((void)serve::unescape_line("bad\\q"), std::runtime_error);
}

TEST(ServeServer, RoundTripPredictReloadStats) {
  Fixture fx = make_fixture(0xE0);
  TempDir dir("aigml_serve_server");
  fx.model.save(dir.path / "delay.gbdt");

  serve::ModelRegistry registry(dir.path);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);
  server.start();

  serve::Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.ping(), "pong");

  // The value that crossed the wire parses back to the server's exact
  // double (%.17g round trip).
  for (int i = 0; i < 3; ++i) {
    const double remote = client.predict("delay", fx.variants[static_cast<std::size_t>(i)]);
    EXPECT_EQ(remote,
              fx.model.predict(features::extract(fx.variants[static_cast<std::size_t>(i)])));
  }

  const auto f = features::extract(fx.variants[5]);
  EXPECT_EQ(client.predict_features("delay", std::vector<double>(f.begin(), f.end())),
            fx.model.predict(f));

  EXPECT_NE(client.reload().find("unchanged=1"), std::string::npos);
  const std::string stats = client.stats();
  EXPECT_NE(stats.find("\"requests\":"), std::string::npos);
  EXPECT_NE(stats.find("\"name\":\"delay\""), std::string::npos);
  // Per-model reload generation + prediction counts: 3 PREDICTs and 1
  // FEATURES all answered by "delay" at version 1, registry generation 1.
  EXPECT_NE(stats.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"version\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"predictions\":4"), std::string::npos);

  // A RELOAD that picks up new bytes bumps both counters in STATS.
  Fixture replacement = make_fixture(0xE3, 25);
  replacement.model.save(dir.path / "delay.gbdt");
  EXPECT_NE(client.reload().find("loaded=1"), std::string::npos);
  const std::string swapped = client.stats();
  EXPECT_NE(swapped.find("\"generation\":2"), std::string::npos);
  EXPECT_NE(swapped.find("\"version\":2"), std::string::npos);

  EXPECT_THROW((void)client.predict("nope", fx.variants[0]), std::runtime_error);
  client.quit();
  server.stop();
}

TEST(ServeServer, HandleRequestRejectsMalformedLines) {
  Fixture fx = make_fixture(0xE1);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry);
  serve::PredictServer server(registry, service);

  EXPECT_EQ(server.handle_request("PING"), "OK pong");
  EXPECT_EQ(server.handle_request("NOPE").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_request("PREDICT").rfind("ERR usage", 0), 0u);
  EXPECT_EQ(server.handle_request("PREDICT delay not-an-aag").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_request("FEATURES delay 1 2 x").rfind("ERR", 0), 0u);
  EXPECT_EQ(server.handle_request("FEATURES delay 1 2").rfind("ERR", 0), 0u);
}

TEST(ServeServer, ConcurrentClientsGetExactAnswers) {
  Fixture fx = make_fixture(0xE2);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  serve::PredictService service(registry, {.max_batch = 16, .batch_wait_us = 100});
  serve::PredictServer server(registry, service);
  server.start();

  std::vector<double> expected;
  for (const aig::Aig& g : fx.variants) expected.push_back(fx.model.predict(features::extract(g)));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      serve::Client client("127.0.0.1", server.port());
      for (int i = 0; i < 10; ++i) {
        const std::size_t v = static_cast<std::size_t>(i) % fx.variants.size();
        if (client.predict("delay", fx.variants[v]) != expected[v]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  server.stop();
}

}  // namespace
}  // namespace aigml
