// Cross-module integration tests: full paper-pipeline slices exercised
// end-to-end at miniature scale, plus interface-survival properties
// (AIGER round trips through transforms, mapping after every script,
// ML-guided SA beating its own initial cost, etc.).

#include <gtest/gtest.h>

#include <filesystem>

#include "aig/aiger.hpp"
#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "netlist/netlist.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"
#include "opt/sweep.hpp"
#include "sta/sta.hpp"
#include "transforms/scripts.hpp"
#include "util/stats.hpp"

namespace aigml {
namespace {

using aig::Aig;
using cell::mini_sky130;

TEST(Integration, TransformThenMapPreservesFunctionForEveryPrimitive) {
  const Aig g = gen::build_design("EX68");
  const auto& lib = mini_sky130();
  for (const auto& primitive : transforms::primitive_names()) {
    const Aig t = transforms::apply_primitive(primitive, g);
    const auto netlist = map::map_to_cells(t, lib);
    const Aig back = net::to_aig(netlist, lib);
    EXPECT_TRUE(aig::equivalent(g, back)) << primitive;
  }
}

TEST(Integration, AigerRoundTripSurvivesOptimization) {
  // Export -> reimport -> optimize -> compare against the original.
  const Aig g = gen::alu(4);
  const Aig imported = aig::from_aiger_string(aig::to_aiger_string(g));
  const Aig optimized = transforms::script_registry().apply(9, imported);
  EXPECT_TRUE(aig::equivalent(g, optimized));
  // And the optimized graph exports/imports cleanly too.
  const Aig again = aig::from_aiger_string(aig::to_aiger_string(optimized));
  EXPECT_TRUE(aig::equivalent(g, again));
}

TEST(Integration, MlGuidedSaImprovesGroundTruthQuality) {
  // Train on a design's own variants, then verify ML-guided SA achieves a
  // real (map+STA) improvement over the initial circuit.
  const auto& lib = mini_sky130();
  const Aig design = gen::multiplier(5);
  flow::DataGenParams params;
  params.num_variants = 60;
  params.seed = 31;
  const auto data = flow::generate_dataset(design, "m5", lib, params);
  ml::GbdtParams gp;
  gp.num_trees = 120;
  gp.max_depth = 5;
  const auto delay_model = ml::GbdtModel::train(data.delay, gp);
  const auto area_model = ml::GbdtModel::train(data.area, gp);

  opt::MlCost cost(delay_model, area_model);
  opt::SaParams sa;
  sa.iterations = 25;
  sa.seed = 17;
  const auto result = opt::simulated_annealing(design, cost, sa);

  opt::GroundTruthCost scorer(lib);
  const auto initial = scorer.evaluate(design);
  const auto final_quality = scorer.evaluate(result.best);
  const double initial_cost = sa.weight_delay + sa.weight_area;  // normalized
  const double final_cost = sa.weight_delay * final_quality.delay / initial.delay +
                            sa.weight_area * final_quality.area / initial.area;
  EXPECT_LT(final_cost, initial_cost * 1.02)
      << "ML-guided SA should not regress ground-truth quality materially";
  EXPECT_TRUE(aig::equivalent(design, result.best));
}

TEST(Integration, PredictionsTrackGroundTruthOnFreshVariants) {
  // Correlation between predicted and true delay on variants *not* used for
  // training (same design, later walk) — the property the whole ML flow
  // stands on.
  const auto& lib = mini_sky130();
  const Aig design = gen::build_design("EX00");
  flow::DataGenParams train_params;
  train_params.num_variants = 80;
  train_params.seed = 1;
  const auto train_data = flow::generate_dataset(design, "EX00", lib, train_params);
  ml::GbdtParams gp;
  gp.num_trees = 200;
  gp.max_depth = 6;
  const auto model = ml::GbdtModel::train(train_data.delay, gp);

  flow::DataGenParams fresh_params;
  fresh_params.num_variants = 40;
  fresh_params.seed = 999;  // disjoint walk
  const auto fresh = flow::generate_dataset(design, "EX00", lib, fresh_params);
  const auto preds = model.predict_all(fresh.delay);
  EXPECT_GT(pearson(preds, fresh.delay.labels()), 0.5);
}

TEST(Integration, SweepFrontsAreMutuallyConsistent) {
  // The ground-truth-guided front must not be dominated wholesale by the
  // proxy front (it optimizes the real objective).
  const auto& lib = mini_sky130();
  const Aig design = gen::build_design("EX68");
  opt::SweepConfig config;
  config.iterations = 12;
  config.weight_pairs = {{1.0, 0.2}, {0.4, 1.0}};
  config.decays = {0.95};

  opt::CostContext ctx;
  ctx.library = &lib;
  const auto base = opt::run_sweep(design, config.to_recipes(), ctx);
  config.cost = "gt";
  const auto truth = opt::run_sweep(design, config.to_recipes(), ctx);

  int gt_dominated = 0;
  for (const auto& p : truth.front) {
    for (const auto& q : base.front) {
      if (opt::dominates(q, p)) {
        ++gt_dominated;
        break;
      }
    }
  }
  EXPECT_LT(gt_dominated, static_cast<int>(truth.front.size()))
      << "every ground-truth front point dominated by the proxy front";
}

TEST(Integration, FeatureExtractionAgreesAcrossSerializationBoundary) {
  // Features of a graph must be identical after an AIGER round trip
  // (features depend only on structure, not ids/names).
  const Aig g = gen::build_design("EX68");
  const Aig back = aig::from_aiger_string(aig::to_aiger_string(g));
  EXPECT_EQ(features::extract(g), features::extract(back));
}

TEST(Integration, DatasetModelRoundTripThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "aigml_int_cache";
  std::filesystem::remove_all(dir);
  const auto& lib = mini_sky130();
  const Aig design = gen::build_design("EX68");
  flow::DataGenParams params;
  params.num_variants = 12;
  const auto data = flow::load_or_generate(design, "EX68", lib, params, dir);
  ml::GbdtParams gp;
  gp.num_trees = 20;
  const auto model = ml::GbdtModel::train(data.delay, gp);
  const auto model_path = dir / "m.gbdt";
  model.save(model_path);
  const auto loaded = ml::GbdtModel::load(model_path);
  // Same predictions on the cached dataset reloaded from CSV.
  const auto data2 = flow::load_or_generate(design, "EX68", lib, params, dir);
  for (std::size_t i = 0; i < data2.delay.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.predict(data2.delay.row(i)), model.predict(data.delay.row(i)));
  }
  std::filesystem::remove_all(dir);
}

TEST(Integration, EveryDesignMapsAndTimesUnderBothModes) {
  const auto& lib = mini_sky130();
  for (const auto& spec : gen::design_specs()) {
    const Aig g = gen::build_design(spec.name);
    for (const auto mode : {map::MapMode::Delay, map::MapMode::Area}) {
      map::MapParams mp;
      mp.mode = mode;
      const auto netlist = map::map_to_cells(g, lib, mp);
      const auto timing = sta::run_sta(netlist, lib, {});
      EXPECT_GT(timing.max_delay_ps, 0.0) << spec.name;
      EXPECT_GT(timing.total_area_um2, 0.0) << spec.name;
      EXPECT_FALSE(timing.critical_path.empty()) << spec.name;
    }
  }
}

TEST(Integration, ProxyVsTruthMiscorrelationExistsOnVariants) {
  // The paper's premise, as a testable invariant: across variants of one
  // design, level count does NOT perfectly rank post-mapping delay.
  const auto& lib = mini_sky130();
  Rng rng(0xABCD);
  Aig g = gen::multiplier(5);
  std::vector<double> levels, delays;
  for (int i = 0; i < 25; ++i) {
    g = flow::random_variant_step(g, rng);
    levels.push_back(static_cast<double>(aig::aig_level(g)));
    const auto timing = sta::run_sta(map::map_to_cells(g, lib), lib, {});
    delays.push_back(timing.max_delay_ps);
  }
  const double rho = spearman(levels, delays);
  EXPECT_LT(rho, 0.999) << "proxy would be a perfect ranker — premise violated";
}

}  // namespace
}  // namespace aigml
