// Tests for the standard-cell library: built-in library sanity, Boolean
// match index correctness (validated by evaluating bindings), and the
// minilib text format round-trip.

#include <gtest/gtest.h>

#include <set>

#include "aig/truth.hpp"
#include "celllib/library.hpp"
#include "util/rng.hpp"

namespace aigml::cell {
namespace {

using aig::tt_const0;
using aig::tt_const1;
using aig::tt_eval;
using aig::tt_expand_low;
using aig::tt_mask;
using aig::tt_var;

TEST(Library, MiniSky130HasEssentialCells) {
  const Library& lib = mini_sky130();
  EXPECT_GT(lib.cells().size(), 30u);
  for (const char* name : {"INV_X1", "INV_X4", "NAND2_X1", "NOR2_X1", "XOR2_X1", "AOI21_X1",
                           "MUX2_X1", "NAND4_X1", "BUF_X2"}) {
    EXPECT_NO_THROW((void)lib.cell_id(name)) << name;
  }
  EXPECT_THROW((void)lib.cell_id("FLUX_CAPACITOR"), std::out_of_range);
}

TEST(Library, InverterIsLowestResistance) {
  const Library& lib = mini_sky130();
  const Cell& inv = lib.cell(lib.inverter_id());
  EXPECT_EQ(inv.num_inputs, 1);
  EXPECT_EQ(inv.function & tt_mask(1), ~tt_var(0) & tt_mask(1));
  for (const Cell& c : lib.cells()) {
    if (c.num_inputs == 1 && (c.function & tt_mask(1)) == (~tt_var(0) & tt_mask(1))) {
      EXPECT_LE(inv.resistance_ps_per_ff, c.resistance_ps_per_ff);
    }
  }
}

TEST(Library, DriveStrengthScaling) {
  const Library& lib = mini_sky130();
  const Cell& x1 = lib.cell(lib.cell_id("NAND2_X1"));
  const Cell& x2 = lib.cell(lib.cell_id("NAND2_X2"));
  const Cell& x4 = lib.cell(lib.cell_id("NAND2_X4"));
  EXPECT_GT(x1.resistance_ps_per_ff, x2.resistance_ps_per_ff);
  EXPECT_GT(x2.resistance_ps_per_ff, x4.resistance_ps_per_ff);
  EXPECT_LT(x1.area_um2, x2.area_um2);
  EXPECT_LT(x2.area_um2, x4.area_um2);
  EXPECT_LT(x1.input_cap_ff, x4.input_cap_ff);
  // Same function across drives.
  EXPECT_EQ(x1.function, x2.function);
  EXPECT_EQ(x2.function, x4.function);
}

TEST(Library, PinDelayIsLinearInLoad) {
  const Library& lib = mini_sky130();
  const Cell& c = lib.cell(lib.cell_id("NAND2_X1"));
  const double d0 = lib.pin_delay_ps(c, 0.0);
  const double d5 = lib.pin_delay_ps(c, 5.0);
  const double d10 = lib.pin_delay_ps(c, 10.0);
  EXPECT_DOUBLE_EQ(d0, c.intrinsic_ps);
  EXPECT_NEAR(d10 - d5, d5 - d0, 1e-9);
  EXPECT_GT(d5, d0);
}

TEST(Library, Fo4DelayIsPlausible130nm) {
  // Sanity-pin the absolute scale: the unit inverter driving 4 inverter
  // loads should sit in the tens-of-ps regime expected of a 130nm node.
  const Library& lib = mini_sky130();
  const Cell& inv = lib.cell(lib.cell_id("INV_X1"));
  const double fo4 = lib.pin_delay_ps(inv, 4.0 * inv.input_cap_ff);
  EXPECT_GT(fo4, 40.0);
  EXPECT_LT(fo4, 200.0);
}

/// Evaluates a match binding: feeds leaf assignment bits through the binding
/// and the cell function; must reproduce the queried table.
bool binding_realizes(const Library& lib, const Match& m, std::uint64_t table, int leaves) {
  const Cell& c = lib.cell(m.cell_id);
  for (std::uint32_t assignment = 0; assignment < (1u << leaves); ++assignment) {
    std::uint32_t pin_bits = 0;
    for (int pin = 0; pin < c.num_inputs; ++pin) {
      const int leaf = m.leaf_of_pin[static_cast<std::size_t>(pin)];
      bool v = ((assignment >> leaf) & 1) != 0;
      if ((m.input_neg_mask >> pin) & 1) v = !v;
      if (v) pin_bits |= 1u << pin;
    }
    if (tt_eval(c.function, pin_bits) != tt_eval(table, assignment)) return false;
  }
  return true;
}

TEST(Library, MatchesAreExactForRandomFunctions) {
  const Library& lib = mini_sky130();
  Rng rng(555);
  int total_matches = 0;
  for (int leaves = 1; leaves <= 4; ++leaves) {
    for (int trial = 0; trial < 200; ++trial) {
      const std::uint64_t table = tt_expand_low(rng.next(), leaves);
      for (const Match& m : lib.matches(table, leaves)) {
        EXPECT_TRUE(binding_realizes(lib, m, table, leaves));
        ++total_matches;
      }
    }
  }
  EXPECT_GT(total_matches, 100);
}

TEST(Library, AllTwoInputFunctionsMatchable) {
  // Functional completeness at the 2-leaf level is what guarantees the
  // mapper never gets stuck: every non-degenerate 2-var function must match.
  const Library& lib = mini_sky130();
  for (std::uint32_t raw = 0; raw < 16; ++raw) {
    const std::uint64_t table = tt_expand_low(raw, 2);
    // Skip constants and single-variable functions (not 2-support).
    if (aig::tt_support(table, 2) != 0b11u) continue;
    EXPECT_FALSE(lib.matches(table, 2).empty()) << "unmatchable 2-var function " << raw;
  }
}

TEST(Library, MatchIndexCoversCellFunctionItself) {
  const Library& lib = mini_sky130();
  for (const Cell& c : lib.cells()) {
    if (c.num_inputs == 0) continue;
    const auto& ms = lib.matches(c.function, c.num_inputs);
    EXPECT_FALSE(ms.empty()) << c.name;
  }
}

TEST(Library, RequiresInverter) {
  std::vector<Cell> cells;
  Cell nand2;
  nand2.name = "NAND2";
  nand2.num_inputs = 2;
  nand2.function = ~(tt_var(0) & tt_var(1));
  cells.push_back(nand2);
  EXPECT_THROW((Library{"broken", cells}), std::invalid_argument);
}

TEST(Library, RejectsDuplicateNamesAndWidePins) {
  Cell inv;
  inv.name = "INV";
  inv.num_inputs = 1;
  inv.function = ~tt_var(0);
  EXPECT_THROW((Library{"dup", {inv, inv}}), std::invalid_argument);
  Cell wide = inv;
  wide.name = "WIDE";
  wide.num_inputs = 5;
  EXPECT_THROW((Library{"wide", {inv, wide}}), std::invalid_argument);
}

TEST(Library, TextFormatRoundTrip) {
  const Library& lib = mini_sky130();
  const std::string text = lib.to_text();
  const Library back = Library::from_text(text);
  ASSERT_EQ(back.cells().size(), lib.cells().size());
  for (std::size_t i = 0; i < lib.cells().size(); ++i) {
    const Cell& a = lib.cells()[i];
    const Cell& b = back.cells()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_inputs, b.num_inputs);
    EXPECT_EQ(a.function & tt_mask(a.num_inputs), b.function & tt_mask(b.num_inputs));
    EXPECT_DOUBLE_EQ(a.area_um2, b.area_um2);
    EXPECT_DOUBLE_EQ(a.input_cap_ff, b.input_cap_ff);
    EXPECT_DOUBLE_EQ(a.intrinsic_ps, b.intrinsic_ps);
    EXPECT_DOUBLE_EQ(a.resistance_ps_per_ff, b.resistance_ps_per_ff);
  }
  EXPECT_EQ(back.name(), lib.name());
}

TEST(Library, FromTextRejectsMalformed) {
  EXPECT_THROW((void)Library::from_text("garbage"), std::runtime_error);
  EXPECT_THROW((void)Library::from_text("minilib x\ncell A inputs 1"), std::runtime_error);
  EXPECT_THROW((void)Library::from_text("minilib x\n"), std::runtime_error);  // no end
}

TEST(Library, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "aigml_lib.minilib";
  mini_sky130().save(path);
  const Library back = Library::load(path);
  EXPECT_EQ(back.cells().size(), mini_sky130().cells().size());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace aigml::cell
