// Tests for truth-table utilities, ISOP, NPN canonicalization, and the
// table-to-AIG synthesizer (including the dry-run prober).

#include <gtest/gtest.h>

#include <set>

#include "aig/aig.hpp"
#include "aig/npn.hpp"
#include "aig/sim.hpp"
#include "aig/synth.hpp"
#include "aig/truth.hpp"
#include "util/rng.hpp"

namespace aigml::aig {
namespace {

TEST(Truth, VarMasksAreExpanded) {
  for (int i = 0; i < kTtMaxVars; ++i) {
    const std::uint64_t t = tt_var(i);
    for (std::uint32_t p = 0; p < 64; ++p) {
      EXPECT_EQ(tt_eval(t, p), ((p >> i) & 1) != 0);
    }
  }
}

TEST(Truth, ExpandLow) {
  // f = x0 over 1 var: low bits 0b10.
  EXPECT_EQ(tt_expand_low(0b10, 1), tt_var(0));
  // f = x0 & x1 over 2 vars: low nibble 0b1000.
  const std::uint64_t and2 = tt_expand_low(0b1000, 2);
  EXPECT_EQ(and2, tt_var(0) & tt_var(1));
}

TEST(Truth, Cofactors) {
  const std::uint64_t f = tt_var(0) & tt_var(1);
  EXPECT_EQ(tt_cofactor1(f, 0), tt_var(1));
  EXPECT_EQ(tt_cofactor0(f, 0), tt_const0());
  EXPECT_EQ(tt_cofactor1(f, 2), f);  // vacuous variable
}

TEST(Truth, SupportDetection) {
  const std::uint64_t f = tt_var(0) ^ tt_var(2);
  EXPECT_TRUE(tt_has_var(f, 0));
  EXPECT_FALSE(tt_has_var(f, 1));
  EXPECT_TRUE(tt_has_var(f, 2));
  EXPECT_EQ(tt_support(f, 4), 0b0101u);
}

TEST(Truth, FlipVar) {
  const std::uint64_t f = tt_var(0) & tt_var(1);
  const std::uint64_t g = tt_flip_var(f, 0);
  EXPECT_EQ(g, ~tt_var(0) & tt_var(1));
  EXPECT_EQ(tt_flip_var(g, 0), f);  // involution
}

TEST(Truth, RemapReordersSupport) {
  // tt_remap semantics: input variable positions[j] receives result variable
  // j; unmapped input variables read constant 0.
  // f(x) = x0 & !x1 with positions {2, 0}: input x0 <- result y1, input
  // x1 <- 0, input x2 <- y0 (vacuous), so g(y) = y1 & !0 = y1.
  const std::uint64_t f = tt_var(0) & ~tt_var(1);
  const std::uint8_t positions[2] = {2, 0};
  EXPECT_EQ(tt_remap(f, positions, 3), tt_var(1));
  // Identity map is a no-op.
  const std::uint8_t ident[2] = {0, 1};
  EXPECT_EQ(tt_remap(f, ident, 2), f);
}

TEST(Truth, ShrinkSupportDropsVacuous) {
  // f over 4 declared vars but depends only on x1 and x3.
  const std::uint64_t f = tt_var(1) ^ tt_var(3);
  std::uint64_t t = f;
  std::array<std::uint8_t, kTtMaxVars> kept{};
  const int k = tt_shrink_support(t, 4, kept);
  EXPECT_EQ(k, 2);
  EXPECT_EQ(kept[0], 1);
  EXPECT_EQ(kept[1], 3);
  EXPECT_EQ(t, tt_var(0) ^ tt_var(1));
}

TEST(Truth, ParityDetection) {
  bool comp = false;
  EXPECT_TRUE(tt_is_parity(tt_var(0) ^ tt_var(1) ^ tt_var(2), 0b111, comp));
  EXPECT_FALSE(comp);
  EXPECT_TRUE(tt_is_parity(~(tt_var(0) ^ tt_var(1)), 0b011, comp));
  EXPECT_TRUE(comp);
  EXPECT_FALSE(tt_is_parity(tt_var(0) & tt_var(1), 0b011, comp));
}

TEST(Truth, CubeTable) {
  Cube c;
  c.pos = 0b001;  // x0
  c.neg = 0b100;  // !x2
  EXPECT_EQ(c.table(), tt_var(0) & ~tt_var(2));
  EXPECT_EQ(c.num_literals(), 2);
}

// ISOP property: for random functions, the cover must reproduce the function
// exactly (no don't-cares) and every cube must be an implicant.
TEST(Truth, IsopExactCoverProperty) {
  Rng rng(123);
  for (int nvars = 1; nvars <= 6; ++nvars) {
    for (int trial = 0; trial < 200; ++trial) {
      const std::uint64_t f = tt_expand_low(rng.next(), nvars);
      const auto cover = isop(f, tt_const0(), nvars);
      EXPECT_EQ(cover_table(cover), f) << "nvars=" << nvars;
      for (const Cube& c : cover) {
        EXPECT_EQ(c.table() & ~f, tt_const0()) << "cube is not an implicant";
      }
    }
  }
}

TEST(Truth, IsopUsesDontCares) {
  // on = x0&x1, dc = x0&!x1  =>  a single-literal cover {x0} is allowed.
  const std::uint64_t on = tt_var(0) & tt_var(1);
  const std::uint64_t dc = tt_var(0) & ~tt_var(1);
  const auto cover = isop(on, dc, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].num_literals(), 1);
  const std::uint64_t f = cover_table(cover);
  EXPECT_EQ(f & ~(on | dc), tt_const0());
  EXPECT_EQ(on & ~f, tt_const0());
}

TEST(Truth, IsopConstants) {
  EXPECT_TRUE(isop(tt_const0(), tt_const0(), 4).empty());
  const auto ones = isop(tt_const1(), tt_const0(), 4);
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones[0].num_literals(), 0);
}

// ---- NPN ---------------------------------------------------------------------

TEST(Npn, ApplyIdentity) {
  const std::uint64_t f = tt_expand_low(0xCAFE, 4);
  EXPECT_EQ(npn_apply(f, 4, NpnTransform{}), f);
}

TEST(Npn, ApplyOutputPhase) {
  const std::uint64_t f = tt_var(0) & tt_var(1);
  NpnTransform tr;
  tr.output_phase = true;
  EXPECT_EQ(npn_apply(f, 2, tr), ~f);
}

TEST(Npn, ApplyInputPhase) {
  const std::uint64_t f = tt_var(0) & tt_var(1);
  NpnTransform tr;
  tr.input_phase = 0b01;  // complement input 0 of the original
  EXPECT_EQ(npn_apply(f, 2, tr), ~tt_var(0) & tt_var(1));
}

TEST(Npn, ApplyPermutation) {
  // f(y0,y1,y2) = y0 & !y2. perm = {1,2,0}: input i of f reads result var perm[i].
  const std::uint64_t f = tt_var(0) & ~tt_var(2);
  NpnTransform tr;
  tr.perm = {1, 2, 0, 3};
  const std::uint64_t g = npn_apply(f, 3, tr);
  // y0 = x1, y2 = x0  =>  g = x1 & !x0.
  EXPECT_EQ(g, tt_var(1) & ~tt_var(0));
}

TEST(Npn, InverseRoundTripProperty) {
  Rng rng(77);
  for (int nvars = 1; nvars <= 4; ++nvars) {
    for (int trial = 0; trial < 100; ++trial) {
      const std::uint64_t f = tt_expand_low(rng.next(), nvars);
      NpnTransform tr;
      std::array<std::uint8_t, 4> perm = {0, 1, 2, 3};
      // random permutation of the active prefix
      for (int i = nvars - 1; i > 0; --i) {
        const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(i + 1)));
        std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
      }
      tr.perm = perm;
      tr.input_phase = static_cast<std::uint8_t>(rng.next_below(1ULL << nvars));
      tr.output_phase = rng.next_bool();
      const std::uint64_t g = npn_apply(f, nvars, tr);
      const std::uint64_t back = npn_apply(g, nvars, npn_inverse(tr, nvars));
      EXPECT_EQ(back, f) << "nvars=" << nvars;
    }
  }
}

TEST(Npn, CanonicalFormIsInvariantAcrossClass) {
  // All NPN transforms of a function must canonicalize identically.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t f = tt_expand_low(rng.next(), 4);
    const auto canon = npn_canonicalize(f, 4);
    EXPECT_EQ(npn_apply(f, 4, canon.transform), canon.table);
    int checked = 0;
    npn_for_each(f, 4, [&](std::uint64_t variant, const NpnTransform&) {
      if (checked++ % 37 != 0) return;  // sample the orbit
      EXPECT_EQ(npn_canonicalize(variant, 4).table, canon.table);
    });
  }
}

TEST(Npn, KnownClassCount2Vars) {
  // There are exactly 4 NPN classes of 2-variable functions:
  // constants, single variable, AND-type, XOR-type.
  std::set<std::uint64_t> classes;
  for (std::uint32_t raw = 0; raw < 16; ++raw) {
    classes.insert(npn_canonicalize(tt_expand_low(raw, 2), 2).table);
  }
  EXPECT_EQ(classes.size(), 4u);
}

// ---- synthesis ----------------------------------------------------------------

// Property: synthesize_tt_into produces a literal whose simulated function
// equals the requested table, for random functions of 1..6 variables.
TEST(Synth, RandomFunctionsAreRealizedExactly) {
  Rng rng(2024);
  for (int nvars = 1; nvars <= 6; ++nvars) {
    for (int trial = 0; trial < 60; ++trial) {
      const std::uint64_t f = tt_expand_low(rng.next(), nvars);
      Aig g;
      std::vector<Lit> leaves;
      for (int i = 0; i < nvars; ++i) leaves.push_back(g.add_input());
      const Lit root = synthesize_tt_into(g, f, nvars, leaves);
      g.add_output(root);
      // Simulate with elementary patterns: input i drives tt_var(i).
      std::vector<std::uint64_t> pats;
      for (int i = 0; i < nvars; ++i) pats.push_back(tt_var(i));
      const auto out = simulate_words(g, pats);
      EXPECT_EQ(out[0] & tt_mask(nvars), f & tt_mask(nvars))
          << "nvars=" << nvars << " trial=" << trial;
    }
  }
}

TEST(Synth, ConstantsAndLiterals) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const std::vector<Lit> leaves{a, b};
  EXPECT_EQ(synthesize_tt_into(g, tt_const0(), 2, leaves), kLitFalse);
  EXPECT_EQ(synthesize_tt_into(g, tt_const1(), 2, leaves), kLitTrue);
  EXPECT_EQ(synthesize_tt_into(g, tt_var(0), 2, leaves), a);
  EXPECT_EQ(synthesize_tt_into(g, ~tt_var(1), 2, leaves), lit_not(b));
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Synth, ParityUsesLinearNodeCount) {
  Aig g;
  std::vector<Lit> leaves;
  for (int i = 0; i < 6; ++i) leaves.push_back(g.add_input());
  std::uint64_t parity = tt_const0();
  for (int i = 0; i < 6; ++i) parity ^= tt_var(i);
  (void)synthesize_tt_into(g, parity, 6, leaves);
  // XOR chain: 3 ANDs per XOR, 5 XORs = 15 nodes (an ISOP build would need
  // 32 cubes of 6 literals — far more).
  EXPECT_LE(g.num_ands(), 15u);
}

TEST(Synth, ReusesExistingStructure) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit existing = g.make_and(a, b);
  (void)existing;
  const std::size_t before = g.num_ands();
  const std::vector<Lit> leaves{a, b};
  const Lit lit = synthesize_tt_into(g, tt_var(0) & tt_var(1), 2, leaves);
  EXPECT_EQ(lit, existing);
  EXPECT_EQ(g.num_ands(), before);  // structural hashing reused the node
}

TEST(Synth, ProberCountsExactlyTheNodesRealSynthesisAdds) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    Aig g;
    std::vector<Lit> leaves;
    for (int i = 0; i < 4; ++i) leaves.push_back(g.add_input());
    // Pre-populate with some structure so the prober sees real hits.
    (void)g.make_and(leaves[0], leaves[1]);
    (void)g.make_xor(leaves[2], leaves[3]);
    const std::uint64_t f = tt_expand_low(rng.next(), 4);

    AndProber prober(g, {});
    (void)synthesize_tt([&prober](Lit x, Lit y) { return prober(x, y); }, f, 4, leaves);
    const int predicted = prober.misses();

    const std::size_t before = g.num_ands();
    (void)synthesize_tt_into(g, f, 4, leaves);
    const int actual = static_cast<int>(g.num_ands() - before);
    EXPECT_EQ(predicted, actual) << "trial=" << trial;
  }
}

TEST(Synth, ProberTracksLevels) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  std::vector<std::uint32_t> lvls(g.num_nodes(), 0);
  AndProber prober(g, lvls);
  const Lit ab = prober(a, b);
  EXPECT_EQ(prober.level_of(ab), 1u);
  const Lit abc = prober(ab, c);
  EXPECT_EQ(prober.level_of(abc), 2u);
  EXPECT_EQ(prober.misses(), 2);
  prober.reset();
  EXPECT_EQ(prober.misses(), 0);
}

}  // namespace
}  // namespace aigml::aig
