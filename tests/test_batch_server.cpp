// BatchServer suite (DESIGN.md §11): the continuous-batching event-loop
// server end to end.  Text-protocol parity with the legacy server (the
// existing serve::Client works unchanged), binary round trips bit-identical
// to local GbdtModel::predict, per-connection dialect auto-detection,
// 200-connection pipelined load with exact answers, BUSY shedding at the
// per-connection cap, slow-reader isolation, graceful drain completing
// in-flight work, malformed-frame handling without collateral damage,
// the net.* fault sites, and flow parity: an SA search over RemoteCost
// against this server replays the local trajectory bit-for-bit.
//
// BatchServer* tests also run under ThreadSanitizer in CI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "aig/analysis.hpp"
#include "features/features.hpp"
#include "gen/circuits.hpp"
#include "ml/gbdt.hpp"
#include "net/frame.hpp"
#include "opt/cost.hpp"
#include "opt/cost_spec.hpp"
#include "opt/sa.hpp"
#include "serve/batch_server.hpp"
#include "serve/bin_client.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "transforms/scripts.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace aigml {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  std::vector<aig::Aig> variants;
  ml::GbdtModel model;
};

Fixture make_fixture(std::uint64_t seed, int num_trees = 30) {
  Fixture fx;
  const aig::Aig base = gen::multiplier(4);
  const auto& scripts = transforms::script_registry();
  Rng rng(seed);
  ml::Dataset data(features::feature_names());
  for (int i = 0; i < 16; ++i) {
    fx.variants.push_back(scripts.apply(scripts.random_index(rng), base));
    data.append(features::extract(fx.variants.back()),
                static_cast<double>(aig::aig_level(fx.variants.back())) +
                    0.1 * static_cast<double>(rng.next_below(10)),
                "fx");
  }
  ml::GbdtParams params;
  params.num_trees = num_trees;
  params.max_depth = 3;
  params.seed = seed;
  fx.model = ml::GbdtModel::train(data, params);
  return fx;
}

struct FaultScope {
  explicit FaultScope(const std::string& spec) { fault::install(fault::FaultPlan::parse(spec)); }
  ~FaultScope() { fault::clear(); }
};

/// Registry + service + running BatchServer over one fixture model.
struct Harness {
  Fixture fx;
  serve::ModelRegistry registry;
  serve::PredictService service;
  serve::BatchServer server;

  explicit Harness(std::uint64_t seed, serve::BatchServerParams params = {})
      : fx(make_fixture(seed)), service(registry), server(registry, service, params) {
    registry.install("delay", fx.model);
    server.start();
  }
  ~Harness() { server.stop(); }

  [[nodiscard]] double expect(std::size_t v) const {
    return fx.model.predict(features::extract(fx.variants[v]));
  }
  [[nodiscard]] std::vector<double> feature_row(std::size_t v) const {
    const auto f = features::extract(fx.variants[v]);
    return std::vector<double>(f.begin(), f.end());
  }
};

/// Reads exactly n bytes from a blocking socket (for raw-frame tests).
std::string read_exact(Socket& s, std::size_t n) {
  std::string out;
  while (out.size() < n) {
    char buf[4096];
    const std::size_t got = s.recv_some(buf, std::min(sizeof buf, n - out.size()));
    if (got == 0) throw std::runtime_error("peer closed early");
    out.append(buf, got);
  }
  return out;
}

/// Reads one complete binary frame (header + payload).
std::pair<net::FrameHeader, std::string> read_frame(Socket& s) {
  const std::string head = read_exact(s, net::kFrameHeaderBytes);
  net::FrameHeader header;
  std::string error;
  if (net::decode_header(head, header, error, 0) != net::DecodeStatus::kFrame) {
    throw std::runtime_error("bad frame from server: " + error);
  }
  return {header, read_exact(s, header.payload_len)};
}

// ---- protocol parity ---------------------------------------------------------

TEST(BatchServerText, LegacyTextClientWorksUnchanged) {
  Harness h(0xB0);
  serve::Client client("127.0.0.1", h.server.port());
  EXPECT_EQ(client.ping(), "pong");
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(client.predict("delay", h.fx.variants[v]), h.expect(v)) << v;
  }
  EXPECT_EQ(client.predict_features("delay", h.feature_row(5)), h.expect(5));
  EXPECT_THROW((void)client.predict("nope", h.fx.variants[0]), std::runtime_error);
  // A malformed request gets ERR and the connection stays usable after it.
  const std::vector<double> bad_row = {1.0, 2.0};
  EXPECT_THROW((void)client.predict_features("delay", bad_row), std::runtime_error);
  EXPECT_EQ(client.predict("delay", h.fx.variants[1]), h.expect(1));
}

TEST(BatchServerText, ReloadStatsAndNewSurfaceFields) {
  Fixture fx = make_fixture(0xB1);
  const fs::path dir = fs::temp_directory_path() / ("aigml_bs_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  fx.model.save(dir / "delay.gbdt");
  serve::ModelRegistry registry(dir);
  serve::PredictService service(registry);
  serve::BatchServer server(registry, service);
  server.start();

  serve::Client client("127.0.0.1", server.port());
  (void)client.predict("delay", fx.variants[0]);
  EXPECT_NE(client.reload().find("unchanged=1"), std::string::npos);

  const std::string stats = client.stats();
  EXPECT_NE(stats.find("\"name\":\"delay\""), std::string::npos);
  EXPECT_NE(stats.find("\"requests\":"), std::string::npos);
  // PR-7 surface: slot occupancy, service-latency percentiles, batch sizes.
  EXPECT_NE(stats.find("\"slots\":"), std::string::npos);
  EXPECT_NE(stats.find("\"latency_us\":"), std::string::npos);
  EXPECT_NE(stats.find("\"p99\":"), std::string::npos);
  EXPECT_NE(stats.find("\"batch_hist\":"), std::string::npos);
  client.quit();
  server.stop();
  fs::remove_all(dir);
}

TEST(BatchServerBinary, RoundTripBitIdentical) {
  Harness h(0xB2);
  serve::BinClient client("127.0.0.1", h.server.port());
  EXPECT_EQ(client.ping(), "pong");
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(client.predict("delay", h.fx.variants[v]), h.expect(v)) << v;
  }
  const std::vector<double> row = h.feature_row(7);
  EXPECT_EQ(client.predict_features("delay", row), h.expect(7));
  EXPECT_NE(client.stats().find("\"slots\":"), std::string::npos);
  EXPECT_THROW((void)client.predict("nope", h.fx.variants[0]), std::runtime_error);
  // The error above was payload-level: the connection is still good.
  EXPECT_EQ(client.predict("delay", h.fx.variants[1]), h.expect(1));
  client.quit();
}

TEST(BatchServerDetect, BothDialectsShareOnePort) {
  Harness h(0xB3);
  serve::Client text("127.0.0.1", h.server.port());
  serve::BinClient binary("127.0.0.1", h.server.port());
  for (std::size_t v = 0; v < 4; ++v) {
    const double expected = h.expect(v);
    EXPECT_EQ(text.predict("delay", h.fx.variants[v]), expected) << "text " << v;
    EXPECT_EQ(binary.predict("delay", h.fx.variants[v]), expected) << "binary " << v;
  }
}

// ---- concurrency -------------------------------------------------------------

TEST(BatchServerLoad, TwoHundredPipelinedConnectionsGetExactAnswers) {
  Harness h(0xB4);
  serve::LoadGenParams lg;
  lg.port = h.server.port();
  lg.connections = 200;
  lg.requests = 2000;
  lg.pipeline = 4;
  lg.binary = true;
  lg.model = "delay";
  for (std::size_t v = 0; v < h.fx.variants.size(); ++v) lg.rows.push_back(h.feature_row(v));

  const serve::LoadGenResult r = serve::run_loadgen(lg);
  EXPECT_EQ(r.ok, lg.requests);
  EXPECT_EQ(r.busy, 0u);
  EXPECT_EQ(r.errors, 0u);
  for (std::size_t i = 0; i < lg.requests; ++i) {
    ASSERT_EQ(r.values[i], h.expect(i % h.fx.variants.size())) << "request " << i;
  }
  const net::SlotStats slots = h.server.slot_stats();
  EXPECT_EQ(slots.admitted, lg.requests);
  EXPECT_EQ(slots.completed, lg.requests);
  EXPECT_EQ(slots.busy, 0u);
  EXPECT_GT(slots.peak_busy, 1u);  // requests genuinely overlapped
}

TEST(BatchServerLoad, PerConnectionCapShedsExplicitBusy) {
  serve::BatchServerParams params;
  params.max_inflight_per_conn = 2;
  Harness h(0xB5, params);

  serve::LoadGenParams lg;
  lg.port = h.server.port();
  lg.connections = 4;
  lg.requests = 200;
  lg.pipeline = 16;  // deliberately above the server's per-conn cap
  lg.binary = true;
  lg.model = "delay";
  lg.rows.push_back(h.feature_row(0));

  const serve::LoadGenResult r = serve::run_loadgen(lg);
  EXPECT_GT(r.busy, 0u);  // the overflow was shed explicitly, not dropped
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.ok + r.busy, lg.requests);  // every request got an answer
  for (std::size_t i = 0; i < lg.requests; ++i) {
    if (!std::isnan(r.values[i])) EXPECT_EQ(r.values[i], h.expect(0));
  }
  EXPECT_EQ(h.server.slot_stats().shed_conn_cap, r.busy);
}

TEST(BatchServerFair, SlowReaderDoesNotStarveNeighbors) {
  Harness h(0xB6);

  // A pipelines 40 requests and reads nothing yet.
  Socket slow = tcp_connect("127.0.0.1", h.server.port(), 5000);
  const std::vector<double> row = h.feature_row(2);
  std::string burst;
  for (int i = 0; i < 40; ++i) {
    std::string line = "FEATURES delay";
    for (const double v : row) line += " " + serve::format_double(v);
    burst += line + "\n";
  }
  slow.send_all(burst);

  // B's sequential predicts complete promptly and exactly meanwhile.
  serve::Client prompt("127.0.0.1", h.server.port());
  for (int i = 0; i < 10; ++i) {
    const std::size_t v = static_cast<std::size_t>(i) % h.fx.variants.size();
    EXPECT_EQ(prompt.predict("delay", h.fx.variants[v]), h.expect(v)) << i;
  }

  // A's 40 responses were all produced, in request order, values exact.
  slow.set_read_timeout_ms(10000);
  LineReader reader(slow);
  const std::string expected_line = "OK " + serve::format_double(h.expect(2));
  std::string line;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(reader.read_line(line)) << "response " << i;
    EXPECT_EQ(line, expected_line) << "response " << i;
  }
}

// ---- shutdown ----------------------------------------------------------------

TEST(BatchServerDrain, MidBatchDrainCompletesInFlightWork) {
  Harness h(0xB7);
  constexpr std::size_t kInFlight = 8;

  Socket s = tcp_connect("127.0.0.1", h.server.port(), 5000);
  const std::vector<double> row = h.feature_row(1);
  std::string burst;
  for (std::size_t i = 0; i < kInFlight; ++i) {
    net::append_frame(burst, net::Opcode::kFeatures, static_cast<std::uint32_t>(i + 1),
                      net::make_features_payload("delay", row));
  }
  s.send_all(burst);

  // Wait until every request holds a slot (or has already completed), then
  // pull the plug gracefully.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (h.server.slot_stats().admitted < kInFlight) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "requests never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h.server.drain();

  // All 8 responses arrive (drain flushed them), exact, then a clean EOF.
  s.set_read_timeout_ms(10000);
  const double expected = h.expect(1);
  std::vector<bool> seen(kInFlight, false);
  for (std::size_t i = 0; i < kInFlight; ++i) {
    const auto [header, payload] = read_frame(s);
    ASSERT_EQ(header.opcode, net::Opcode::kValue) << payload;
    ASSERT_GE(header.request_id, 1u);
    ASSERT_LE(header.request_id, kInFlight);
    seen[header.request_id - 1] = true;
    EXPECT_EQ(net::parse_value_payload(payload), expected);
  }
  for (std::size_t i = 0; i < kInFlight; ++i) EXPECT_TRUE(seen[i]) << "request " << i + 1;
  char buf[1];
  EXPECT_EQ(s.recv_some(buf, 1), 0u);  // orderly close, not a cut-off
}

// ---- protocol violations -----------------------------------------------------

TEST(BatchServerErr, MalformedFrameGetsErrorAndDropWithoutCollateral) {
  Harness h(0xB8);

  serve::BinClient neighbor("127.0.0.1", h.server.port());
  EXPECT_EQ(neighbor.predict("delay", h.fx.variants[0]), h.expect(0));

  // Good magic, impossible version: framing is unrecoverable.
  Socket bad = tcp_connect("127.0.0.1", h.server.port(), 5000);
  std::string wire;
  net::append_frame(wire, net::Opcode::kPing, 1, "");
  wire[1] = 9;
  bad.send_all(wire);
  bad.set_read_timeout_ms(10000);
  const auto [header, payload] = read_frame(bad);
  EXPECT_EQ(header.opcode, net::Opcode::kError);
  EXPECT_EQ(header.request_id, 0u);  // connection-level, not request-level
  EXPECT_NE(payload.find("version"), std::string::npos);
  char buf[1];
  EXPECT_EQ(bad.recv_some(buf, 1), 0u);  // then the stream is dropped

  // The neighbor never noticed.
  EXPECT_EQ(neighbor.predict("delay", h.fx.variants[1]), h.expect(1));
}

TEST(BatchServerErr, OversizedTextLineAnsweredErrThenDropped) {
  serve::BatchServerParams params;
  params.max_line_bytes = 256;
  Harness h(0xB9, params);

  Socket s = tcp_connect("127.0.0.1", h.server.port(), 5000);
  s.send_all(std::string(1024, 'x'));  // no newline, ever
  s.set_read_timeout_ms(10000);
  LineReader reader(s);
  std::string line;
  ASSERT_TRUE(reader.read_line(line));
  EXPECT_EQ(line.rfind("ERR", 0), 0u);
  ASSERT_FALSE(reader.read_line(line));  // EOF: the connection is gone
}

// ---- fault sites -------------------------------------------------------------

TEST(BatchServerFault, AcceptFaultDropsFirstConnectionRetrySucceeds) {
  Harness h(0xBA);
  FaultScope scope("net.accept,count=1");

  // First connection is accepted and immediately closed by the fault.
  bool first_failed = false;
  try {
    serve::Client doomed("127.0.0.1", h.server.port());
    (void)doomed.ping();
  } catch (const std::exception&) {
    first_failed = true;
  }
  EXPECT_TRUE(first_failed);
  EXPECT_EQ(fault::fired(fault::Site::kNetAccept), 1u);

  // The retry lands on a healthy accept path.
  serve::Client retry("127.0.0.1", h.server.port());
  EXPECT_EQ(retry.predict("delay", h.fx.variants[0]), h.expect(0));
}

TEST(BatchServerFault, SlotStallDelaysCompletionsWithoutChangingAnswers) {
  Harness h(0xBB);
  FaultScope scope("net.slot_stall,ms=25,count=2");
  serve::BinClient client("127.0.0.1", h.server.port());
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(client.predict("delay", h.fx.variants[v]), h.expect(v)) << v;
  }
  EXPECT_EQ(fault::fired(fault::Site::kNetSlotStall), 2u);
}

TEST(BatchServerFault, SpuriousWakeupsDoNotPerturbServing) {
  Harness h(0xBC);
  FaultScope scope("net.epoll_spurious,count=0");
  serve::Client client("127.0.0.1", h.server.port());
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(client.predict("delay", h.fx.variants[v]), h.expect(v)) << v;
  }
}

// ---- flow parity -------------------------------------------------------------

TEST(BatchServerRemote, SaTrajectoryOverWireBitIdenticalToLocal) {
  Fixture fx = make_fixture(0xBD);
  serve::ModelRegistry registry;
  registry.install("delay", fx.model);
  registry.install("area", fx.model);
  serve::PredictService service(registry);
  serve::BatchServer server(registry, service);
  server.start();

  opt::RemoteCost remote("127.0.0.1", server.port(), "delay", "area");
  opt::MlCost local(registry.get("delay"), registry.get("area"));

  opt::SaParams params;
  params.iterations = 20;
  params.seed = 0xb17;
  const opt::SaStrategy strategy(params);
  const aig::Aig base = gen::multiplier(4);
  const opt::OptResult over_wire = strategy.run(base, remote, {.max_iterations = 20});
  const opt::OptResult in_process = strategy.run(base, local, {.max_iterations = 20});

  ASSERT_EQ(over_wire.history.size(), in_process.history.size());
  for (std::size_t i = 0; i < over_wire.history.size(); ++i) {
    EXPECT_EQ(over_wire.history[i].delay, in_process.history[i].delay) << i;
    EXPECT_EQ(over_wire.history[i].area, in_process.history[i].area) << i;
  }
  EXPECT_EQ(over_wire.best_cost, in_process.best_cost);
  EXPECT_EQ(over_wire.degraded_evals, 0u);
  server.stop();
}

}  // namespace
}  // namespace aigml
