// Tests for k-feasible cut enumeration: structural properties (leaves are a
// cut, sizes bounded, domination) and functional correctness of the cut
// truth tables, validated by simulation.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "aig/cuts.hpp"
#include "aig/sim.hpp"
#include "util/rng.hpp"

namespace aigml::aig {
namespace {

/// Builds a random strashed DAG with `n_and` target AND nodes.
Aig random_aig(int n_inputs, int n_and, std::uint64_t seed) {
  Rng rng(seed);
  Aig g;
  std::vector<Lit> pool;
  for (int i = 0; i < n_inputs; ++i) pool.push_back(g.add_input());
  int made = 0;
  int attempts = 0;
  while (made < n_and && attempts < n_and * 20) {
    ++attempts;
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.next_bool()) a = lit_not(a);
    if (rng.next_bool()) b = lit_not(b);
    const std::size_t before = g.num_ands();
    const Lit x = g.make_and(a, b);
    if (g.num_ands() > before) {
      pool.push_back(x);
      ++made;
    }
  }
  // Use a few deep nodes as outputs.
  for (std::size_t i = pool.size() >= 3 ? pool.size() - 3 : 0; i < pool.size(); ++i) {
    g.add_output(pool[i]);
  }
  return g;
}

/// Checks that every leaf lies in the transitive fanin of `node` (leaves are
/// either the node itself or upstream logic).  Note: support minimization
/// means a cut's leaves need not *structurally* disconnect the node from the
/// PIs — paths through functionally vacuous leaves may remain — so the
/// meaningful structural property is TFI membership plus the functional
/// correctness checked by expect_cut_function_correct().
bool leaves_in_tfi(const Aig& g, NodeId node, std::span<const NodeId> leaves) {
  std::vector<char> in_tfi(g.num_nodes(), 0);
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (in_tfi[id]) continue;
    in_tfi[id] = 1;
    if (g.is_and(id)) {
      stack.push_back(lit_var(g.fanin0(id)));
      stack.push_back(lit_var(g.fanin1(id)));
    }
  }
  for (const NodeId l : leaves) {
    if (!in_tfi[l]) return false;
  }
  return true;
}

/// Validates the cut truth table by the soundness property that mapping and
/// rewriting rely on: for every *circuit-reachable* combination of leaf
/// values, the table evaluated at the leaf values equals the node value.
/// (Leaf sets may contain nodes in each other's TFI, so the table need not
/// match on unreachable leaf assignments.)
void expect_cut_function_correct([[maybe_unused]] const Aig& g, NodeId node,
                                 const std::vector<std::vector<std::uint64_t>>& node_value_batches,
                                 const Cut& cut) {
  for (const auto& values : node_value_batches) {
    for (int bit = 0; bit < 64; ++bit) {
      std::uint32_t assignment = 0;
      for (std::size_t v = 0; v < cut.size; ++v) {
        if ((values[cut.leaves[v]] >> bit) & 1ULL) assignment |= 1u << v;
      }
      const bool predicted = tt_eval(cut.table, assignment);
      const bool actual = ((values[node] >> bit) & 1ULL) != 0;
      ASSERT_EQ(predicted, actual) << "node " << node << " bit " << bit;
    }
  }
}

TEST(Cuts, SimpleAndChain) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit c = g.add_input();
  const Lit ab = g.make_and(a, b);
  const Lit abc = g.make_and(ab, c);
  g.add_output(abc);
  const CutSets cs(g, CutParams{4, 8});
  // Node abc must own a cut over {a, b, c} computing AND3.
  bool found = false;
  for (const Cut& cut : cs.cuts(lit_var(abc))) {
    if (cut.size == 3) {
      found = true;
      EXPECT_EQ(cut.table & tt_mask(3), (tt_var(0) & tt_var(1) & tt_var(2)) & tt_mask(3));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cuts, XorCutFunction) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit x = g.make_xor(a, b);
  g.add_output(x);
  // make_xor returns a complemented literal over a node computing XNOR; cut
  // tables always describe the *node* (positive polarity).
  ASSERT_TRUE(lit_is_complemented(x));
  const CutSets cs(g, CutParams{4, 8});
  bool found = false;
  for (const Cut& cut : cs.cuts(lit_var(x))) {
    if (cut.size == 2 && cut.leaves[0] == lit_var(a) && cut.leaves[1] == lit_var(b)) {
      found = true;
      EXPECT_EQ(cut.table, ~(tt_var(0) ^ tt_var(1)));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cuts, ComplementedEdgesHandled) {
  Aig g;
  const Lit a = g.add_input();
  const Lit b = g.add_input();
  const Lit nor_ab = g.make_and(lit_not(a), lit_not(b));  // NOR via complements
  g.add_output(nor_ab);
  const CutSets cs(g, CutParams{4, 8});
  const auto& cuts = cs.cuts(lit_var(nor_ab));
  ASSERT_FALSE(cuts.empty());
  for (const Cut& cut : cuts) {
    if (cut.size == 2) {
      EXPECT_EQ(cut.table, ~tt_var(0) & ~tt_var(1));
    }
  }
}

TEST(Cuts, PiAndConstantHaveNoCuts) {
  Aig g;
  const Lit a = g.add_input();
  g.add_output(a);
  const CutSets cs(g, CutParams{4, 8});
  EXPECT_TRUE(cs.cuts(0).empty());
  EXPECT_TRUE(cs.cuts(lit_var(a)).empty());
}

struct CutParamCase {
  int cut_size;
  int max_cuts;
  std::uint64_t seed;
};

class CutsProperty : public ::testing::TestWithParam<CutParamCase> {};

TEST_P(CutsProperty, StructuralAndFunctionalInvariants) {
  const auto param = GetParam();
  const Aig g = random_aig(8, 80, param.seed);
  const CutSets cs(g, CutParams{param.cut_size, param.max_cuts});
  // Simulation batches for the functional soundness check.
  Rng rng(param.seed ^ 0xdeadbeef);
  std::vector<std::vector<std::uint64_t>> batches;
  for (int b = 0; b < 4; ++b) {
    std::vector<std::uint64_t> pi_words(g.num_inputs());
    for (auto& w : pi_words) w = rng.next();
    batches.push_back(simulate_all_nodes(g, pi_words));
  }
  int checked = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const auto& cuts = cs.cuts(id);
    if (!g.is_and(id)) {
      EXPECT_TRUE(cuts.empty());
      continue;
    }
    EXPECT_FALSE(cuts.empty()) << "AND node with no cuts";
    EXPECT_LE(cuts.size(), static_cast<std::size_t>(param.max_cuts));
    for (const Cut& cut : cuts) {
      ASSERT_LE(static_cast<int>(cut.size), param.cut_size);
      if (cut.size == 0) {
        // Zero-leaf cut: node proven constant by reconvergent cancellation.
        EXPECT_TRUE(cut.table == tt_const0() || cut.table == tt_const1());
      }
      // Leaves sorted, unique, and upstream of the node.
      for (std::size_t v = 0; v + 1 < cut.size; ++v) {
        EXPECT_LT(cut.leaves[v], cut.leaves[v + 1]);
      }
      if (cut.size > 0) {
        EXPECT_LT(cut.leaves[cut.size - 1], id + 1u);
      }
      EXPECT_TRUE(leaves_in_tfi(g, id, cut.leaf_span()));
      // No dominated pairs within a set.
      for (const Cut& other : cuts) {
        if (&other != &cut) {
          EXPECT_FALSE(cut.subset_of(other) && other.subset_of(cut));
        }
      }
      expect_cut_function_correct(g, id, batches, cut);
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CutsProperty,
                         ::testing::Values(CutParamCase{2, 4, 101}, CutParamCase{3, 6, 102},
                                           CutParamCase{4, 8, 103}, CutParamCase{5, 8, 104},
                                           CutParamCase{6, 10, 105}, CutParamCase{4, 2, 106},
                                           CutParamCase{4, 16, 107}));

TEST(Cuts, MergeRejectsOversizedUnion) {
  Cut a, b, out;
  a.size = 3;
  a.leaves = {1, 2, 3};
  a.table = tt_var(0) & tt_var(1) & tt_var(2);
  b.size = 3;
  b.leaves = {4, 5, 6};
  b.table = tt_var(0) | tt_var(1) | tt_var(2);
  EXPECT_FALSE(merge_cuts(a, false, b, false, 4, out));
  EXPECT_TRUE(merge_cuts(a, false, b, false, 6, out));
  EXPECT_EQ(out.size, 6);
}

TEST(Cuts, MergeSupportMinimizes) {
  // AND(x, !x) over the same leaf collapses to constant 0 — support empty.
  Cut a, out;
  a.size = 1;
  a.leaves = {5};
  a.table = tt_var(0);
  EXPECT_TRUE(merge_cuts(a, false, a, true, 4, out));
  EXPECT_EQ(out.size, 0);
  EXPECT_EQ(out.table, tt_const0());
}

TEST(Cuts, SubsetOf) {
  Cut small, big;
  small.size = 2;
  small.leaves = {2, 5};
  big.size = 3;
  big.leaves = {2, 4, 5};
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  Cut disjoint;
  disjoint.size = 2;
  disjoint.leaves = {3, 7};
  EXPECT_FALSE(disjoint.subset_of(big));
}

}  // namespace
}  // namespace aigml::aig
