// Robustness suite: every text-format parser must reject malformed input
// with an exception — never crash, hang, or silently accept — under
// deterministic fuzz (seeded random byte strings and structured
// corruptions of valid documents).  Plus numerical-robustness checks for
// the ML stack (degenerate labels, constant features, huge values) and a
// convergence check that indirectly validates the GNN's hand-written
// backpropagation.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "aig/aiger.hpp"
#include "aig/sim.hpp"
#include "celllib/library.hpp"
#include "gen/circuits.hpp"
#include "ml/dataset.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "util/rng.hpp"

namespace aigml {
namespace {

std::string random_bytes(Rng& rng, std::size_t length, bool printable) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(printable ? static_cast<char>(' ' + rng.next_below(95))
                          : static_cast<char>(rng.next_below(256)));
  }
  return s;
}

TEST(Robustness, AigerParserRejectsFuzzWithoutCrashing) {
  Rng rng(0xF022);
  int exceptions = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto text = random_bytes(rng, 1 + rng.next_below(200), trial % 2 == 0);
    try {
      (void)aig::from_aiger_string(text);
    } catch (const std::exception&) {
      ++exceptions;
    }
  }
  // Essentially everything must be rejected (a random string that parses as
  // a valid header is astronomically unlikely).
  EXPECT_GE(exceptions, 298);
}

TEST(Robustness, AigerParserRejectsStructuredCorruptions) {
  aig::Aig g;
  const auto a = g.add_input();
  const auto b = g.add_input();
  g.add_output(g.make_xor(a, b));
  const std::string valid = aig::to_aiger_string(g);
  // Token-level corruptions of a valid file.
  const std::vector<std::string> corruptions = {
      valid.substr(0, valid.size() / 2),           // truncation
      "aag 999999 2 0 1 3\n" + valid.substr(12),   // header/body mismatch
      [&] {                                         // forward reference
        std::string s = valid;
        const auto pos = s.find("6 ");
        if (pos != std::string::npos) s.replace(pos, 2, "6 99 ");
        return s;
      }(),
  };
  for (const auto& text : corruptions) {
    EXPECT_THROW((void)aig::from_aiger_string(text), std::exception) << text.substr(0, 40);
  }
}

TEST(Robustness, AigerRejectsHostileHeaderCounts) {
  // A hostile header must be rejected before any allocation is sized from
  // it — these throw immediately instead of attempting a huge reserve().
  const std::vector<std::string> hostile = {
      "aag 18446744073709551615 18446744073709551615 0 0 0\n",
      "aag 536870912 536870912 0 0 0\n",  // over the per-field cap
      "aag 4 2 0 0 2\n2\n4\n6 4 2\n6 4 2\n",  // duplicate AND definition
      "aag 2 2 0 0 0\n2\n2\n",                // duplicate input definition
      "aag 1 1 0 1 0\n2 junk\n2\n",           // trailing garbage on a line
      "aag 1 1 0 1 0\n2\n2\niX name\n",       // non-numeric symbol index
      "aag 1 1 0 1 0\n2\n2\ni99999999999999999999 n\n",  // index overflow
  };
  for (const auto& text : hostile) {
    EXPECT_THROW((void)aig::from_aiger_string(text), std::exception) << text.substr(0, 40);
  }
}

TEST(Robustness, BinaryAigerRejectsMalformedOutputsAndHeaders) {
  const std::vector<std::string> hostile = {
      "aig 18446744073709551615 18446744073709551615 0 0 0\n",
      "aig 1 1 0 1 0\nxyz\n",   // non-numeric output literal (stoull garbage)
      "aig 1 1 0 1 0\n\n",      // empty output line
      "aig 1 1 0 1 0\n99999999999999999999\n",  // output literal overflow
  };
  for (const auto& text : hostile) {
    std::stringstream s(text);
    EXPECT_THROW((void)aig::read_aiger_binary(s), std::exception) << text.substr(0, 40);
  }
}

TEST(Robustness, BinaryAigerRejectsFuzz) {
  Rng rng(0xF023);
  for (int trial = 0; trial < 200; ++trial) {
    std::stringstream s("aig 5 2 0 1 3\n6\n" + random_bytes(rng, rng.next_below(20), false));
    try {
      (void)aig::read_aiger_binary(s);
    } catch (const std::exception&) {
      continue;  // expected path
    }
    // Rare benign decodes are acceptable as long as nothing crashed; the
    // decoded graph must at least satisfy basic invariants then.
  }
  SUCCEED();
}

TEST(Robustness, MinilibParserRejectsFuzz) {
  Rng rng(0xF024);
  int exceptions = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto text = "minilib fuzz\n" + random_bytes(rng, rng.next_below(150), true);
    try {
      (void)cell::Library::from_text(text);
    } catch (const std::exception&) {
      ++exceptions;
    }
  }
  EXPECT_GE(exceptions, 198);
}

TEST(Robustness, GbdtDeserializeRejectsFuzz) {
  Rng rng(0xF025);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in("gbdt 1 " + random_bytes(rng, rng.next_below(80), true));
    EXPECT_THROW((void)ml::GbdtModel::deserialize(in), std::exception);
  }
}

namespace {

/// Trains a real (tiny) model and returns its serialized text — the
/// starting point for structured corruptions.
std::string serialized_tiny_gbdt() {
  ml::Dataset d({"x", "y"});
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    const double row[2] = {rng.next_double(), rng.next_double()};
    d.append(row, row[0] + 2.0 * row[1], "t");
  }
  ml::GbdtParams p;
  p.num_trees = 8;
  p.max_depth = 3;
  std::ostringstream out;
  ml::GbdtModel::train(d, p).serialize(out);
  return out.str();
}

void expect_model_rejected(const std::string& text, const char* context) {
  std::istringstream in(text);
  try {
    (void)ml::GbdtModel::deserialize(in);
    ADD_FAILURE() << "accepted corrupt model: " << context;
  } catch (const std::exception& e) {
    // serve::ModelRegistry surfaces this message over RELOAD — it must
    // actually say something.
    EXPECT_STRNE(e.what(), "") << context;
  }
}

}  // namespace

// The serving registry hot-loads .gbdt files while requests are in flight;
// a truncated or hand-edited file must fail the load loudly (the registry
// then keeps the previous snapshot) — never crash, hang on a huge
// allocation, or come back as a silently mispredicting ensemble.
TEST(Robustness, GbdtDeserializeRejectsStructuredCorruptions) {
  const std::string valid = serialized_tiny_gbdt();
  {
    std::istringstream in(valid);
    EXPECT_NO_THROW((void)ml::GbdtModel::deserialize(in));  // baseline sanity
  }
  for (const double frac : {0.1, 0.35, 0.5, 0.75, 0.95}) {
    expect_model_rejected(
        valid.substr(0, static_cast<std::size_t>(static_cast<double>(valid.size()) * frac)),
        "truncation");
  }
  expect_model_rejected("gbXt" + valid.substr(4), "bad magic");
  ASSERT_EQ(valid.rfind("gbdt 1", 0), 0u);
  expect_model_rejected("gbdt 2" + valid.substr(6), "unsupported format version");
  expect_model_rejected("gbdt 1 0 0.1 999999999 22\n", "implausible tree count");
  expect_model_rejected("gbdt 1 0 0.1 1 0\ntree 1\n-1 0 -1 -1 0 0\n", "zero features");
  expect_model_rejected("gbdt 1 0 0.1 1 99999999\ntree 1\n-1 0 -1 -1 0 0\n",
                        "implausible feature count");
  expect_model_rejected(
      "gbdt 1 0 0.1 1 2\ntree 3\n5 0.5 1 2 0 0\n-1 0 -1 -1 1 0\n-1 0 -1 -1 2 0\n",
      "split feature beyond model width");
  expect_model_rejected("gbdt 1 0 0.1 1 2\ntree 1\n0 0.5 5 6 0 0\n", "child index out of range");
  expect_model_rejected(
      "gbdt 1 0 0.1 1 2\ntree 3\n1 0.5 0 2 0 0\n-1 0 -1 -1 1 0\n-1 0 -1 -1 2 0\n",
      "backward child edge (traversal cycle)");
  expect_model_rejected("gbdt 1 0 0.1 1 2\ntree 18446744073709551615\n",
                        "node count near SIZE_MAX");
  // Shared child (left == right): passes per-node range checks but makes a
  // DAG whose per-path flattening would be exponential.
  expect_model_rejected("gbdt 1 0 0.1 1 2\ntree 2\n0 0.5 1 1 0 0\n-1 0 -1 -1 1 0\n",
                        "shared child (DAG, not a tree)");
  {
    // A 70-deep right-leaning chain: structurally a valid tree, but far
    // beyond any trainable depth — must be rejected before the recursive
    // flattener turns it into a stack hazard at scale.
    const int chain = 70;
    std::string text = "gbdt 1 0 0.1 1 2\ntree " + std::to_string(2 * chain + 1) + "\n";
    for (int k = 0; k < chain; ++k) {
      text += "0 0.5 " + std::to_string(2 * k + 1) + " " + std::to_string(2 * k + 2) + " 0 0\n";
      text += "-1 0 -1 -1 1 0\n";
    }
    text += "-1 0 -1 -1 2 0\n";
    expect_model_rejected(text, "implausibly deep chain");
  }
}

TEST(Robustness, GbdtLoadFromDiskFailsCleanly) {
  EXPECT_THROW((void)ml::GbdtModel::load("/nonexistent/dir/model.gbdt"), std::runtime_error);

  const auto path = std::filesystem::temp_directory_path() / "aigml_truncated.gbdt";
  const std::string valid = serialized_tiny_gbdt();
  std::ofstream(path) << valid.substr(0, valid.size() / 2);
  EXPECT_THROW((void)ml::GbdtModel::load(path), std::exception);
  std::filesystem::remove(path);
}

// The mmap'ed .gbdt2 loader validates against attacker-controlled bytes
// before any prediction touches them; the deep structural battery lives in
// tests/test_model_v2.cpp (ModelV2Hostile) — this is the same random-fuzz
// floor every other on-disk parser in the repo gets.
TEST(Robustness, GbdtV2LoadRejectsFuzz) {
  const auto path = std::filesystem::temp_directory_path() / "aigml_fuzz.gbdt2";
  Rng rng(0xF026);
  for (int trial = 0; trial < 150; ++trial) {
    std::string bytes = trial % 3 == 0 ? "GBT2" : "";  // sometimes a real magic
    const std::size_t n = rng.next_below(300);
    for (std::size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.next_below(256)));
    }
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
    EXPECT_THROW((void)ml::GbdtModel::load_v2(path), std::runtime_error);
  }
  std::filesystem::remove(path);
  EXPECT_THROW((void)ml::GbdtModel::load_v2("/nonexistent/dir/m.gbdt2"), std::runtime_error);
}

TEST(Robustness, GbdtV2RejectsTruncationOfValidContainer) {
  std::istringstream in(serialized_tiny_gbdt());
  const std::string valid = ml::GbdtModel::deserialize(in).serialize_v2();
  const auto path = std::filesystem::temp_directory_path() / "aigml_trunc.gbdt2";
  for (const double frac : {0.0, 0.1, 0.35, 0.5, 0.75, 0.95}) {
    const auto cut = static_cast<std::size_t>(static_cast<double>(valid.size()) * frac);
    std::ofstream(path, std::ios::binary | std::ios::trunc) << valid.substr(0, cut);
    EXPECT_THROW((void)ml::GbdtModel::load_v2(path), std::runtime_error) << "frac " << frac;
  }
  std::filesystem::remove(path);
}

TEST(Robustness, DatasetLoadRejectsMalformedCsv) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / "aigml_bad.csv";
  for (const char* content : {
           "",                                  // empty
           "a,b,c\n1,2\n",                      // ragged
           "x,y\n1,2\n",                        // no tag/label schema
           "tag,f,label\n1,not_a_number,3\n",   // non-numeric cell
       }) {
    std::ofstream(path) << content;
    // Malformed files either come back empty/nullopt or throw at load time;
    // they must never produce a dataset with corrupt numeric rows.
    try {
      const auto loaded = ml::Dataset::load(path);
      if (loaded.has_value() && loaded->num_rows() > 0) {
        ADD_FAILURE() << "accepted malformed CSV: " << content;
      }
    } catch (const std::exception&) {
      // rejection by exception is equally acceptable
    }
  }
  std::filesystem::remove(path);
}

// ---- numerical robustness ---------------------------------------------------------

TEST(Robustness, GbdtHandlesConstantLabels) {
  ml::Dataset d({"x"});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const double x[1] = {rng.next_double()};
    d.append(x, 7.0, "t");
  }
  ml::GbdtParams p;
  p.num_trees = 10;
  const auto model = ml::GbdtModel::train(d, p);
  const double probe[1] = {0.5};
  EXPECT_NEAR(model.predict(probe), 7.0, 1e-6);
}

TEST(Robustness, GbdtHandlesConstantFeatures) {
  ml::Dataset d({"x", "c"});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double(0, 1);
    const double row[2] = {x, 3.14};  // second feature constant
    d.append(row, x > 0.5 ? 10.0 : -10.0, "t");
  }
  ml::GbdtParams p;
  p.num_trees = 30;
  const auto model = ml::GbdtModel::train(d, p);
  const double lo[2] = {0.1, 3.14};
  const double hi[2] = {0.9, 3.14};
  EXPECT_LT(model.predict(lo), 0.0);
  EXPECT_GT(model.predict(hi), 0.0);
}

TEST(Robustness, GbdtHandlesHugeLabelScale) {
  ml::Dataset d({"x"});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x[1] = {rng.next_double(0, 1)};
    d.append(x, 1e12 * x[0], "t");
  }
  ml::GbdtParams p;
  p.num_trees = 60;
  p.learning_rate = 0.3;
  const auto model = ml::GbdtModel::train(d, p);
  const double probe[1] = {0.5};
  EXPECT_NEAR(model.predict(probe), 5e11, 1e11);
}

// ---- GNN backprop validation (convergence proxy) -----------------------------------

TEST(Robustness, GnnOverfitsTinyCorpusToNearZeroLoss) {
  // If any gradient term in the hand-written backprop were wrong, Adam
  // could not drive the standardized MSE toward zero on a memorizable
  // 4-graph corpus.  This is the black-box analogue of a gradient check.
  std::vector<aig::Aig> graphs;
  graphs.push_back(gen::parity_tree(4));
  graphs.push_back(gen::adder_ripple(2));
  graphs.push_back(gen::comparator(2));
  graphs.push_back(gen::priority_encoder(4));
  std::vector<const aig::Aig*> ptrs;
  std::vector<double> labels{100.0, 220.0, 340.0, 460.0};
  for (const auto& g : graphs) ptrs.push_back(&g);
  ml::GnnParams p;
  p.hidden = 12;
  p.epochs = 220;
  p.learning_rate = 5e-3;
  ml::GnnTrainLog log;
  const auto model = ml::GnnModel::train(ptrs, labels, p, &log);
  ASSERT_FALSE(log.epoch_mse.empty());
  EXPECT_LT(log.epoch_mse.back(), 0.02) << "backprop failed to memorize 4 graphs";
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_NEAR(model.predict(graphs[i]), labels[i], 40.0) << i;
  }
}

}  // namespace
}  // namespace aigml
