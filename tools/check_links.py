#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI step).

Verifies that every relative markdown link resolves:
  * the target file exists (relative to the linking file), and
  * an in-document or cross-document #anchor matches a heading slug
    (GitHub slugification: lowercase, drop non-alphanumerics except
    spaces/hyphens, spaces -> hyphens).

External (http/https/mailto) links are only syntax-checked — CI must not
flake on the network.  Exit code 1 and a per-link report on any failure.

Usage: tools/check_links.py README.md DESIGN.md docs/ARCHITECTURE.md
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(text: str) -> str:
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: dict[str, int] = {}
    out = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def check_file(md: Path, repo_root: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    # Strip fenced code blocks so example snippets aren't parsed as links.
    stripped_lines = []
    in_fence = False
    for line in text.splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            stripped_lines.append(line)
    for target in LINK_RE.findall("\n".join(stripped_lines)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{md.relative_to(repo_root)}: broken link '{target}' "
                          f"(no such file {path_part})")
            continue
        if anchor and dest.suffix == ".md":
            if github_slug(anchor) not in heading_slugs(dest):
                errors.append(f"{md.relative_to(repo_root)}: broken anchor '{target}' "
                              f"(no heading slugifies to '#{anchor}' in "
                              f"{dest.relative_to(repo_root)})")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = Path.cwd()
    errors = []
    checked = 0
    for arg in argv[1:]:
        md = (repo_root / arg).resolve()
        if not md.exists():
            errors.append(f"input file not found: {arg}")
            continue
        checked += 1
        errors.extend(check_file(md, repo_root))
    for e in errors:
        print(f"ERROR: {e}")
    print(f"check_links: {checked} files checked, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
