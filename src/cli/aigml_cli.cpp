// aigml — command-line driver for the library.
//
//   aigml gen <design|generator> [out.aag]        emit a benchmark circuit
//   aigml stats <in.aag>                          AIG statistics + features
//   aigml opt <in.aag> <script> [out.aag]         apply scripts ("b;rw;rf")
//   aigml map <in.aag> [out.v]                    map + STA report [+ Verilog]
//   aigml datagen <design> <N> <out_prefix>       labeled dataset -> CSV
//   aigml train <delay.csv> <model.gbdt>          train a delay model
//   aigml predict <model.gbdt> <in.aag>           predict post-mapping delay
//   aigml sa <in.aag> <proxy|truth> <iters> [out.aag]   SA optimization
//
// Designs: EX00 EX08 EX28 EX68 EX02 EX11 EX16 EX54; generators:
// mult<N>, wallace<N>, adder<N>, cla<N>, ks<N>, alu<N>, cmp<N>, parity<N>.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "aig/aiger.hpp"
#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "netlist/verilog.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"
#include "sta/sta.hpp"
#include "transforms/scripts.hpp"
#include "util/parallel.hpp"

using namespace aigml;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aigml [--threads N] <command> ...\n"
               "  gen <design> [out.aag]\n"
               "  stats <in.aag>\n"
               "  opt <in.aag> <script> [out.aag]\n"
               "  map <in.aag> [out.v]\n"
               "  datagen <design> <N> <out_prefix>\n"
               "  train <delay.csv> <model.gbdt>\n"
               "  predict <model.gbdt> <in.aag>\n"
               "  sa <in.aag> <proxy|truth> <iters> [out.aag]\n"
               "options:\n"
               "  --threads N   worker threads for parallel stages (datagen\n"
               "                labeling); default: AIGML_THREADS or all cores.\n"
               "                Results are identical at any thread count.\n");
  return 2;
}

/// Builds a named design or parameterized generator ("mult8", "cla16", ...).
aig::Aig build_circuit(const std::string& name) {
  for (const auto& spec : gen::design_specs()) {
    if (spec.name == name) return gen::build_design(name);
  }
  auto split = [&](const char* prefix) -> int {
    const std::size_t len = std::strlen(prefix);
    if (name.rfind(prefix, 0) == 0 && name.size() > len) {
      return std::stoi(name.substr(len));
    }
    return -1;
  };
  if (const int w = split("mult"); w > 0) return gen::multiplier(w);
  if (const int w = split("wallace"); w > 0) return gen::multiplier_wallace(w);
  if (const int w = split("adder"); w > 0) return gen::adder_ripple(w);
  if (const int w = split("cla"); w > 0) return gen::adder_cla(w);
  if (const int w = split("ks"); w > 0) return gen::adder_kogge_stone(w);
  if (const int w = split("alu"); w > 0) return gen::alu(w);
  if (const int w = split("cmp"); w > 0) return gen::comparator(w);
  if (const int w = split("parity"); w > 0) return gen::parity_tree(w);
  throw std::runtime_error("unknown design/generator: " + name);
}

void emit(const aig::Aig& g, int argc, char** argv, int out_index) {
  if (argc > out_index) {
    aig::write_aiger_file(g, argv[out_index]);
    std::printf("wrote %s\n", argv[out_index]);
  } else {
    std::printf("%s", aig::to_aiger_string(g).c_str());
  }
}

int cmd_gen(int argc, char** argv) {
  const aig::Aig g = build_circuit(argv[2]);
  emit(g, argc, argv, 3);
  return 0;
}

int cmd_stats(char** argv) {
  const aig::Aig g = aig::read_aiger_file(argv[2]);
  std::printf("inputs %zu  outputs %zu  ands %zu  levels %u\n", g.num_inputs(),
              g.num_outputs(), g.num_ands(), aig::aig_level(g));
  const auto f = features::extract(g);
  const auto& names = features::feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-38s %g\n", names[i].c_str(), f[i]);
  }
  return 0;
}

int cmd_opt(int argc, char** argv) {
  aig::Aig g = aig::read_aiger_file(argv[2]);
  const aig::Aig original = g;
  std::string script = argv[3];
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = script.find(';', pos);
    const std::string step = script.substr(pos, next == std::string::npos ? next : next - pos);
    if (!step.empty()) g = transforms::apply_primitive(step, g);
    pos = next == std::string::npos ? next : next + 1;
  }
  std::fprintf(stderr, "%zu -> %zu ands, %u -> %u levels, equivalence %s\n",
               original.num_ands(), g.num_ands(), aig::aig_level(original), aig::aig_level(g),
               aig::equivalent(original, g) ? "PASS" : "FAIL");
  emit(g, argc, argv, 4);
  return 0;
}

int cmd_map(int argc, char** argv) {
  const aig::Aig g = aig::read_aiger_file(argv[2]);
  const auto& lib = cell::mini_sky130();
  const auto netlist = map::map_to_cells(g, lib);
  const auto timing = sta::run_sta(netlist, lib, {});
  std::printf("%s", sta::timing_report(netlist, lib, timing).c_str());
  if (argc > 3) {
    std::ofstream out(argv[3]);
    net::write_verilog(netlist, lib, out);
    std::printf("wrote %s\n", argv[3]);
  }
  return 0;
}

int cmd_datagen(char** argv) {
  const aig::Aig g = build_circuit(argv[2]);
  flow::DataGenParams params;
  params.num_variants = std::stoi(argv[3]);
  const auto data = flow::generate_dataset(g, argv[2], cell::mini_sky130(), params);
  const std::string prefix = argv[4];
  data.delay.save(prefix + "_delay.csv");
  data.area.save(prefix + "_area.csv");
  std::printf("generated %zu variants in %.1f s -> %s_{delay,area}.csv\n",
              data.unique_variants, data.generation_seconds, prefix.c_str());
  return 0;
}

int cmd_train(char** argv) {
  const auto data = ml::Dataset::load(argv[2]);
  if (!data.has_value()) throw std::runtime_error(std::string("cannot load ") + argv[2]);
  ml::TrainLog log;
  const auto model = ml::GbdtModel::train(*data, ml::GbdtParams{}, nullptr, &log);
  model.save(argv[3]);
  std::printf("trained %zu trees on %zu rows in %.1f s -> %s\n", model.num_trees(),
              data->num_rows(), log.train_seconds, argv[3]);
  return 0;
}

int cmd_predict(char** argv) {
  const auto model = ml::GbdtModel::load(argv[2]);
  const aig::Aig g = aig::read_aiger_file(argv[3]);
  const auto f = features::extract(g);
  std::printf("predicted post-mapping delay: %.1f ps\n", model.predict(f));
  const auto& lib = cell::mini_sky130();
  const auto timing = sta::run_sta(map::map_to_cells(g, lib), lib, {});
  std::printf("actual (map+STA):             %.1f ps\n", timing.max_delay_ps);
  return 0;
}

int cmd_sa(int argc, char** argv) {
  const aig::Aig g = aig::read_aiger_file(argv[2]);
  const std::string flavor = argv[3];
  opt::SaParams params;
  params.iterations = std::stoi(argv[4]);
  opt::ProxyCost proxy;
  opt::GroundTruthCost truth(cell::mini_sky130());
  opt::CostEvaluator& evaluator =
      flavor == "truth" ? static_cast<opt::CostEvaluator&>(truth) : proxy;
  const auto result = opt::simulated_annealing(g, evaluator, params);
  std::fprintf(stderr,
               "%s flow: cost %.4f -> %.4f (%zu/%zu accepted, %.2f s; delay %.1f area %.1f)\n",
               evaluator.name().c_str(),
               params.weight_delay + params.weight_area, result.best_cost,
               result.accepted_moves(), result.history.size(), result.total_seconds,
               result.best_eval.delay, result.best_eval.area);
  emit(result.best, argc, argv, 5);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options (currently just --threads N) before dispatch.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads requires a value\n");
        return 2;
      }
      value = argv[++i];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    }
    if (value != nullptr) {
      char* end = nullptr;
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: --threads expects a non-negative integer (0 = auto)\n");
        return 2;
      }
      set_default_threads(static_cast<int>(n));
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen" && argc >= 3) return cmd_gen(argc, argv);
    if (cmd == "stats" && argc >= 3) return cmd_stats(argv);
    if (cmd == "opt" && argc >= 4) return cmd_opt(argc, argv);
    if (cmd == "map" && argc >= 3) return cmd_map(argc, argv);
    if (cmd == "datagen" && argc >= 5) return cmd_datagen(argv);
    if (cmd == "train" && argc >= 4) return cmd_train(argv);
    if (cmd == "predict" && argc >= 4) return cmd_predict(argv);
    if (cmd == "sa" && argc >= 5) return cmd_sa(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
