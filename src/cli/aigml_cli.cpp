// aigml — command-line driver for the library.
//
//   aigml gen <design|generator> [out.aag]        emit a benchmark circuit
//   aigml stats <in.aag>                          AIG statistics + features
//   aigml opt <in.aag> --recipe R                 recipe-driven optimization
//   aigml opt <in.aag> <script> [out.aag]         apply scripts ("b;rw;rf")
//   aigml map <in.aag> [out.v]                    map + STA report [+ Verilog]
//   aigml datagen <design> <N> <out_prefix>       labeled dataset -> CSV
//   aigml train <data> <model.out>                train a model (--model gbdt|gnn)
//   aigml convert <in.model> <out.model>          text <-> .gbdt2 container
//   aigml predict <model.gbdt> <in.aag> [...]     predict post-mapping delay
//   aigml sa <in.aag> <proxy|truth> <iters>       back-compat alias for
//                                                 `opt --recipe "strategy=sa;..."`
//   aigml serve --models DIR                      TCP prediction server
//   aigml client ... <sub> [args]                 talk to a running server
//   aigml learn --models DIR --harvest DIR        retrain served models from
//                                                 harvested replay buffers
//
// Every command declares its arguments through util::ArgParser, and usage()
// renders those same declarations — the help text cannot drift from what a
// command accepts.
//
// Designs: EX00 EX08 EX28 EX68 EX02 EX11 EX16 EX54; generators:
// mult<N>, wallace<N>, adder<N>, cla<N>, ks<N>, alu<N>, cmp<N>, parity<N>.

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "aig/aiger.hpp"
#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "learn/loop.hpp"
#include "learn/replay.hpp"
#include "learn/retrainer.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "ml/model.hpp"
#include "ml/model_v2.hpp"
#include "netlist/verilog.hpp"
#include "opt/recipe.hpp"
#include "serve/batch_server.hpp"
#include "serve/bin_client.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sta/sta.hpp"
#include "transforms/scripts.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"

using namespace aigml;

namespace {

// ---- per-command argument declarations (usage() renders these) ---------------

ArgParser gen_parser() {
  ArgParser p("gen");
  p.positional("design", "named design or generator (mult8, cla16, ...)")
      .positional("out.aag", "output path (stdout when omitted)", false);
  return p;
}

ArgParser stats_parser() {
  ArgParser p("stats");
  p.positional("in.aag", "AIGER file to analyze");
  return p;
}

ArgParser opt_parser() {
  ArgParser p("opt");
  p.positional("in.aag", "AIGER file to optimize")
      .positional("script", "primitive script chain, e.g. \"b;rw;rf\" (script mode)", false)
      .positional("out.aag", "output path for script mode (stdout when omitted)", false)
      .option("recipe", "R",
              "declarative run, e.g. \"strategy=sa;iters=200;cost=proxy\"; keys windows=N "
              "and par=0|1 select the speculative windowed engine (par=1 uses --threads)")
      .option("out", "FILE", "write the best AIG to FILE")
      .option("report", "FORMAT", "print a machine-readable run report (json)");
  return p;
}

ArgParser map_parser() {
  ArgParser p("map");
  p.positional("in.aag", "AIGER file to map")
      .positional("out.v", "write the mapped netlist as Verilog", false);
  return p;
}

ArgParser datagen_parser() {
  ArgParser p("datagen");
  p.positional("design", "named design or generator")
      .positional("N", "number of labeled variants")
      .positional("out_prefix", "writes <prefix>_delay.csv and <prefix>_area.csv");
  return p;
}

ArgParser train_parser() {
  ArgParser p("train");
  p.positional("data", "labeled dataset CSV from datagen (gbdt) or a design/generator "
                       "name to build a labeled corpus from (gnn)")
      .positional("model.out", "output model path (.gbdt/.gbdt2 or .gnn)")
      .option("model", "FAM", "model family: gbdt | gnn", "gbdt")
      .option("format", "F", "gbdt container: text | v2 | both (v2/both write the "
                             ".gbdt2 sibling of the output path)", "text")
      .option("target", "T", "gnn label: delay | area", "delay")
      .option("variants", "N", "gnn corpus size (map+STA-labeled design variants)", "48")
      .option("epochs", "E", "gnn training epochs", "60")
      .option("hidden", "H", "gnn hidden width", "16")
      .option("layers", "L", "gnn message-passing layers", "2")
      .option("seed", "S", "gnn corpus + init seed", "39338");
  return p;
}

ArgParser convert_parser() {
  ArgParser p("convert");
  p.positional("in.model", "source model (.gbdt text or .gbdt2 container)")
      .positional("out.model", "destination (direction follows the extensions)");
  return p;
}

ArgParser predict_parser() {
  ArgParser p("predict");
  p.positional("model.gbdt", "trained model (.gbdt text, .gbdt2 container, or .gnn)")
      .positional("in.aag", "AIGER file to predict")
      .variadic("more.aag", "additional files (batched through PredictService)")
      .option("quant", "Q", "value representation for .gbdt2 models: none | fp16 | int16",
              "none");
  return p;
}

ArgParser sa_parser() {
  ArgParser p("sa");
  p.positional("in.aag", "AIGER file to optimize")
      .positional("flavor", "cost oracle: proxy | truth")
      .positional("iters", "SA iteration budget")
      .positional("out.aag", "output path (stdout when omitted)", false)
      .option("report", "FORMAT", "print a machine-readable run report (json)");
  return p;
}

ArgParser serve_parser() {
  ArgParser p("serve");
  p.option("models", "DIR",
           "model directory (required; every <name>.gbdt/.gbdt2/.gnn is served)")
      .option("port", "P", "TCP port (default: ephemeral)")
      .option("host", "H", "bind address", "127.0.0.1")
      .option("batch", "N", "max requests coalesced per batch", "64")
      .option("wait-us", "U", "batch coalescing window in microseconds", "200")
      .option("max-connections", "N", "shed connections beyond N with BUSY (0 = unlimited)", "64")
      .option("slots", "N", "in-flight request slots (event-loop server)", "256")
      .option("max-inflight", "N", "per-connection outstanding cap before BUSY", "64")
      .flag("legacy", "thread-per-connection server instead of the event loop");
  return p;
}

ArgParser learn_parser() {
  ArgParser p("learn");
  p.option("models", "DIR", "model directory to refresh (required; delay/area gbdt models "
                            "plus base_{delay,area}.csv as the training base when present; "
                            "gnn checkpoints refresh in-process via learn=1 — replay "
                            "buffers carry feature rows, not structures)")
      .option("harvest", "DIR", "directory of replay buffers (*.rpb) to train from (required)")
      .option("min-rows", "N", "retrain once at least N unconsumed harvested rows exist", "16")
      .option("extra-trees", "N", "boosting rounds per warm refresh", "60")
      .option("interval", "S", "seconds between scans in daemon mode", "10")
      .option("port", "P", "send RELOAD to a running aigml serve after each refresh")
      .option("host", "H", "server address for --port", "127.0.0.1")
      .flag("once", "single scan + refresh attempt, then exit (CI / cron mode)");
  return p;
}

ArgParser client_parser() {
  ArgParser p("client");
  p.positional("subcommand", "predict <model> <in.aag> | features <model> <f0> ... | "
                             "reload | stats | ping | bench <in.aag>")
      .variadic("args", "subcommand arguments")
      .option("host", "H", "server address", "127.0.0.1")
      .option("port", "P", "server port (required)")
      .flag("binary", "speak the framed binary protocol instead of text")
      .option("model", "NAME", "bench: model to query", "delay")
      .option("concurrency", "N", "bench: concurrent connections", "8")
      .option("requests", "M", "bench: total requests across all connections", "200")
      .option("pipeline", "K", "bench: outstanding requests per connection", "8");
  return p;
}

int usage() {
  std::fprintf(stderr, "usage: aigml [--threads N] <command> ...\n");
  for (const auto& make : {gen_parser, stats_parser, opt_parser, map_parser, datagen_parser,
                           train_parser, convert_parser, predict_parser, sa_parser,
                           serve_parser, client_parser, learn_parser}) {
    const ArgParser p = make();
    std::fprintf(stderr, "  %s\n", p.usage_line().c_str());
    const std::string options = p.options_help();
    if (!options.empty()) std::fprintf(stderr, "%s", options.c_str());
  }
  std::fprintf(stderr,
               "global options:\n"
               "    --threads N        worker threads for parallel stages (datagen\n"
               "                       labeling, serve extraction, recipe sweeps);\n"
               "                       default: AIGML_THREADS or all cores.  Results\n"
               "                       are identical at any thread count.\n");
  return 2;
}

/// Builds a named design or parameterized generator ("mult8", "cla16", ...).
aig::Aig build_circuit(const std::string& name) {
  for (const auto& spec : gen::design_specs()) {
    if (spec.name == name) return gen::build_design(name);
  }
  auto split = [&](const char* prefix) -> int {
    const std::size_t len = std::strlen(prefix);
    if (name.rfind(prefix, 0) == 0 && name.size() > len) {
      return std::stoi(name.substr(len));
    }
    return -1;
  };
  if (const int w = split("mult"); w > 0) return gen::multiplier(w);
  if (const int w = split("wallace"); w > 0) return gen::multiplier_wallace(w);
  if (const int w = split("adder"); w > 0) return gen::adder_ripple(w);
  if (const int w = split("cla"); w > 0) return gen::adder_cla(w);
  if (const int w = split("ks"); w > 0) return gen::adder_kogge_stone(w);
  if (const int w = split("alu"); w > 0) return gen::alu(w);
  if (const int w = split("cmp"); w > 0) return gen::comparator(w);
  if (const int w = split("parity"); w > 0) return gen::parity_tree(w);
  throw std::runtime_error("unknown design/generator: " + name);
}

void emit(const aig::Aig& g, const std::string& out_path) {
  if (!out_path.empty()) {
    aig::write_aiger_file(g, out_path);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("%s", aig::to_aiger_string(g).c_str());
  }
}

int cmd_gen(int argc, char** argv) {
  ArgParser args = gen_parser();
  args.parse(argc, argv);
  const aig::Aig g = build_circuit(args.get("design"));
  emit(g, args.has("out.aag") ? args.get("out.aag") : "");
  return 0;
}

int cmd_stats(int argc, char** argv) {
  ArgParser args = stats_parser();
  args.parse(argc, argv);
  const aig::Aig g = aig::read_aiger_file(args.get("in.aag"));
  std::printf("inputs %zu  outputs %zu  ands %zu  levels %u\n", g.num_inputs(),
              g.num_outputs(), g.num_ands(), aig::aig_level(g));
  const auto f = features::extract(g);
  const auto& names = features::feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-38s %g\n", names[i].c_str(), f[i]);
  }
  return 0;
}

void print_json_report(const opt::Recipe& recipe, const std::string& evaluator_name,
                       const opt::OptResult& result, bool equivalent,
                       const learn::LearnStats* learn_stats) {
  std::printf("{\n");
  std::printf("  \"recipe\": \"%s\",\n", recipe.to_string().c_str());
  std::printf("  \"strategy\": \"%s\",\n", recipe.strategy.c_str());
  std::printf("  \"cost\": \"%s\",\n", evaluator_name.c_str());
  std::printf("  \"initial\": {\"delay\": %.17g, \"area\": %.17g, \"cost\": %.17g},\n",
              result.initial_eval.delay, result.initial_eval.area, result.initial_cost);
  std::printf("  \"best\": {\"delay\": %.17g, \"area\": %.17g, \"cost\": %.17g},\n",
              result.best_eval.delay, result.best_eval.area, result.best_cost);
  std::printf("  \"improved\": %s,\n",
              result.best_cost < result.initial_cost ? "true" : "false");
  std::printf("  \"equivalent\": %s,\n", equivalent ? "true" : "false");
  if (learn_stats != nullptr) {
    std::printf("  \"learn\": {\"selected\": %zu, \"labeled\": %zu, \"retrains\": %zu, "
                "\"failed_retrains\": %zu, \"swaps\": %llu, \"base_error_pct\": %.6g, "
                "\"final_error_pct\": %.6g},\n",
                learn_stats->selected, learn_stats->labeled, learn_stats->retrains,
                learn_stats->failed_retrains,
                static_cast<unsigned long long>(learn_stats->swaps_observed),
                learn_stats->base_error_pct, learn_stats->final_error_pct);
  }
  if (result.spec.windows > 0) {
    const double wall_per_commit =
        result.spec.committed > 0
            ? result.total_seconds / static_cast<double>(result.spec.committed)
            : 0.0;
    std::printf("  \"spec\": {\"windows\": %d, \"par\": %s, \"rounds\": %llu, "
                "\"proposed\": %llu, \"committed\": %llu, \"aborted\": %llu, "
                "\"abort_rate\": %.6g, \"seconds_per_commit\": %.6g},\n",
                result.spec.windows, result.spec.parallel ? "true" : "false",
                static_cast<unsigned long long>(result.spec.rounds),
                static_cast<unsigned long long>(result.spec.proposed),
                static_cast<unsigned long long>(result.spec.committed),
                static_cast<unsigned long long>(result.spec.aborted),
                result.spec.abort_rate(), wall_per_commit);
  }
  std::printf("  \"iterations\": %zu,\n", result.history.size());
  std::printf("  \"accepted\": %zu,\n", result.accepted_moves());
  std::printf("  \"evals\": %llu,\n", static_cast<unsigned long long>(result.eval_count));
  std::printf("  \"degraded_evals\": %llu,\n",
              static_cast<unsigned long long>(result.degraded_evals));
  std::printf("  \"stop_reason\": \"%s\",\n", opt::to_string(result.stop_reason));
  std::printf("  \"total_seconds\": %.6f,\n", result.total_seconds);
  std::printf("  \"transform_seconds\": %.6f,\n", result.total_transform_seconds);
  std::printf("  \"eval_seconds\": %.6f\n", result.total_eval_seconds);
  std::printf("}\n");
}

/// Shared engine of `aigml opt --recipe` and the `aigml sa` alias.
int run_recipe(const opt::Recipe& recipe, const aig::Aig& g, const std::string& out_path,
               const std::string& report) {
  if (!report.empty() && report != "json") {
    throw std::runtime_error("opt: unknown report format '" + report + "' (expected json)");
  }
  opt::OptResult result;
  std::string evaluator_name;
  std::string strategy_name;
  std::optional<learn::LearnStats> learn_stats;
  if (recipe.learn) {
    // The closed loop: LiveMlCost over a registry from the ml:<dir> spec,
    // harvesting + retraining attached as the run's observer (learn/).
    learn::LearnRunResult lr = learn::run(recipe, g, cell::mini_sky130());
    result = std::move(lr.result);
    learn_stats = lr.stats;
    evaluator_name = "ml-live";
    strategy_name = recipe.strategy;
  } else {
    opt::CostContext ctx;
    ctx.library = &cell::mini_sky130();
    ctx.serve_fallback = recipe.fallback;
    const auto evaluator = opt::make_cost(recipe.cost, ctx);
    const auto strategy = recipe.make_strategy();
    result = strategy->run(g, *evaluator, recipe.stop_condition());
    evaluator_name = evaluator->name();
    strategy_name = strategy->name();
  }
  const bool equivalent = aig::equivalent(g, result.best);

  std::fprintf(stderr,
               "%s via %s: cost %.4f -> %.4f (%zu/%zu accepted, %llu evals, %.2f s; "
               "delay %.1f area %.1f; stop: %s; equivalence %s)\n",
               strategy_name.c_str(), evaluator_name.c_str(),
               result.initial_cost, result.best_cost, result.accepted_moves(),
               result.history.size(), static_cast<unsigned long long>(result.eval_count),
               result.total_seconds, result.best_eval.delay, result.best_eval.area,
               opt::to_string(result.stop_reason), equivalent ? "PASS" : "FAIL");
  if (result.spec.windows > 0) {
    std::fprintf(stderr,
                 "spec: %llu rounds, %llu proposed, %llu committed, %llu aborted "
                 "(%.1f%% abort rate), %.2f ms wall per committed move%s\n",
                 static_cast<unsigned long long>(result.spec.rounds),
                 static_cast<unsigned long long>(result.spec.proposed),
                 static_cast<unsigned long long>(result.spec.committed),
                 static_cast<unsigned long long>(result.spec.aborted),
                 100.0 * result.spec.abort_rate(),
                 result.spec.committed > 0
                     ? 1e3 * result.total_seconds / static_cast<double>(result.spec.committed)
                     : 0.0,
                 result.spec.parallel ? "" : " (serial)");
  }
  if (result.degraded_evals > 0) {
    std::fprintf(stderr,
                 "WARNING: %llu/%llu evaluations were answered by the fallback oracle "
                 "(server unreachable); metrics mix units — re-score the result\n",
                 static_cast<unsigned long long>(result.degraded_evals),
                 static_cast<unsigned long long>(result.eval_count));
  }
  if (learn_stats.has_value()) {
    std::fprintf(stderr,
                 "learn: %zu/%zu states harvested (%zu labeled, %zu retrains, %llu swaps); "
                 "error on harvest %.1f%% -> %.1f%%\n",
                 learn_stats->selected, learn_stats->considered, learn_stats->labeled,
                 learn_stats->retrains,
                 static_cast<unsigned long long>(learn_stats->swaps_observed),
                 learn_stats->base_error_pct, learn_stats->final_error_pct);
  }
  if (report == "json") {
    print_json_report(recipe, evaluator_name, result, equivalent,
                      learn_stats.has_value() ? &*learn_stats : nullptr);
    if (!out_path.empty()) {
      aig::write_aiger_file(result.best, out_path);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
  } else {
    emit(result.best, out_path);
  }
  return equivalent ? 0 : 1;
}

int cmd_opt(int argc, char** argv) {
  ArgParser args = opt_parser();
  args.parse(argc, argv);
  const aig::Aig g = aig::read_aiger_file(args.get("in.aag"));

  if (args.has("recipe")) {
    if (args.has("script")) {
      throw std::runtime_error("opt: give a positional script or --recipe, not both");
    }
    return run_recipe(opt::Recipe::parse(args.get("recipe")), g,
                      args.has("out") ? args.get("out") : "", args.get("report"));
  }

  // Script mode: apply a fixed primitive chain.
  if (!args.has("script")) {
    throw std::runtime_error("opt: need a script (\"b;rw;rf\") or --recipe");
  }
  const std::string script = args.get("script");
  aig::Aig out = g;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = script.find(';', pos);
    const std::string step = script.substr(pos, next == std::string::npos ? next : next - pos);
    if (!step.empty()) out = transforms::apply_primitive(step, out);
    pos = next == std::string::npos ? next : next + 1;
  }
  std::fprintf(stderr, "%zu -> %zu ands, %u -> %u levels, equivalence %s\n", g.num_ands(),
               out.num_ands(), aig::aig_level(g), aig::aig_level(out),
               aig::equivalent(g, out) ? "PASS" : "FAIL");
  emit(out, args.has("out") ? args.get("out")
                            : (args.has("out.aag") ? args.get("out.aag") : ""));
  return 0;
}

int cmd_sa(int argc, char** argv) {
  ArgParser args = sa_parser();
  args.parse(argc, argv);
  const std::string flavor = args.get("flavor");
  opt::Recipe recipe;  // defaults mirror the legacy SaParams
  recipe.strategy = "sa";
  recipe.iterations = args.get_int("iters");
  if (flavor == "proxy") {
    recipe.cost = "proxy";
  } else if (flavor == "truth" || flavor == "gt") {
    recipe.cost = "gt";
  } else {
    throw std::runtime_error("sa: unknown flavor '" + flavor + "' (expected proxy | truth)");
  }
  const aig::Aig g = aig::read_aiger_file(args.get("in.aag"));
  return run_recipe(recipe, g, args.has("out.aag") ? args.get("out.aag") : "",
                    args.get("report"));
}

int cmd_map(int argc, char** argv) {
  ArgParser args = map_parser();
  args.parse(argc, argv);
  const aig::Aig g = aig::read_aiger_file(args.get("in.aag"));
  const auto& lib = cell::mini_sky130();
  const auto netlist = map::map_to_cells(g, lib);
  const auto timing = sta::run_sta(netlist, lib, {});
  std::printf("%s", sta::timing_report(netlist, lib, timing).c_str());
  if (args.has("out.v")) {
    std::ofstream out(args.get("out.v"));
    net::write_verilog(netlist, lib, out);
    std::printf("wrote %s\n", args.get("out.v").c_str());
  }
  return 0;
}

int cmd_datagen(int argc, char** argv) {
  ArgParser args = datagen_parser();
  args.parse(argc, argv);
  const aig::Aig g = build_circuit(args.get("design"));
  flow::DataGenParams params;
  params.num_variants = args.get_int("N");
  const auto data = flow::generate_dataset(g, args.get("design"), cell::mini_sky130(), params);
  const std::string prefix = args.get("out_prefix");
  data.delay.save(prefix + "_delay.csv");
  data.area.save(prefix + "_area.csv");
  std::printf("generated %zu variants in %.1f s -> %s_{delay,area}.csv\n",
              data.unique_variants, data.generation_seconds, prefix.c_str());
  return 0;
}

/// `aigml train --model gnn` — the graph family has no CSV to train from
/// (feature rows cannot reconstruct structure), so the corpus is built the
/// way the ablation bench builds one: random transform variants of a named
/// design, each labeled with ground-truth map+STA.  Deterministic for a
/// fixed seed, so two invocations (delay + area targets) see one corpus.
int cmd_train_gnn(const ArgParser& args) {
  const std::string target = args.get("target");
  if (target != "delay" && target != "area") {
    throw std::runtime_error("train: --target " + target + ": expected delay | area");
  }
  if (args.get("format") != "text") {
    throw std::runtime_error("train: --format applies to gbdt models (.gnn has a single "
                             "container; drop --format or use --model gbdt)");
  }
  const auto& lib = cell::mini_sky130();
  const int count = std::max(2, args.get_int("variants"));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  std::vector<aig::Aig> pool{build_circuit(args.get("data")).cleanup()};
  std::unordered_set<std::uint64_t> seen{pool.front().structural_hash()};
  std::vector<double> delay_labels;
  std::vector<double> area_labels;
  const auto label = [&](const aig::Aig& g) {
    const auto timing = sta::run_sta(map::map_to_cells(g, lib), lib, {});
    delay_labels.push_back(timing.max_delay_ps);
    area_labels.push_back(timing.total_area_um2);
  };
  label(pool.front());
  int attempts = 0;
  while (static_cast<int>(pool.size()) < count && attempts < count * 20) {
    ++attempts;
    const std::size_t pick = std::max(rng.next_below(pool.size()), rng.next_below(pool.size()));
    aig::Aig candidate = flow::random_variant_step(pool[pick], rng);
    if (!seen.insert(candidate.structural_hash()).second) continue;
    label(candidate);
    pool.push_back(std::move(candidate));
  }
  std::vector<const aig::Aig*> graphs;
  graphs.reserve(pool.size());
  for (const aig::Aig& g : pool) graphs.push_back(&g);
  ml::GnnParams params;
  params.hidden = std::max(1, args.get_int("hidden"));
  params.layers = std::max(1, args.get_int("layers"));
  params.epochs = std::max(1, args.get_int("epochs"));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  ml::GnnTrainLog log;
  const ml::GnnModel model = ml::GnnModel::train(
      graphs, target == "delay" ? delay_labels : area_labels, params, &log);
  const std::filesystem::path out_path = args.get("model.out");
  model.save(out_path);
  std::printf("trained gnn (hidden %d, layers %d) on %zu graphs of %s, target %s "
              "(%d epochs) in %.1f s -> %s\n",
              params.hidden, params.layers, graphs.size(), args.get("data").c_str(),
              target.c_str(), params.epochs, log.train_seconds, out_path.string().c_str());
  return 0;
}

int cmd_train(int argc, char** argv) {
  ArgParser args = train_parser();
  args.parse(argc, argv);
  const ml::ModelFamily family = ml::model_family_from_name(args.get("model"));
  if (family == ml::ModelFamily::kGnn) return cmd_train_gnn(args);
  const std::string format = args.get("format");
  if (format != "text" && format != "v2" && format != "both") {
    throw std::runtime_error("train: --format " + format + ": expected text | v2 | both");
  }
  const auto data = ml::Dataset::load(args.get("data"));
  if (!data.has_value()) throw std::runtime_error("cannot load " + args.get("data"));
  ml::TrainLog log;
  const auto model = ml::GbdtModel::train(*data, ml::GbdtParams{}, nullptr, &log);
  const std::filesystem::path out_path = args.get("model.out");
  std::string written;
  if (format == "text" || format == "both") {
    model.save(out_path);
    written = out_path.string();
  }
  if (format == "v2" || format == "both") {
    const auto v2_path =
        std::filesystem::path(out_path).replace_extension(ml::kModelV2Extension);
    model.save_v2(v2_path);
    written += (written.empty() ? "" : " + ") + v2_path.string();
  }
  std::printf("trained %zu trees on %zu rows in %.1f s -> %s\n", model.num_trees(),
              data->num_rows(), log.train_seconds, written.c_str());
  return 0;
}

/// `aigml convert` — re-containers a model between the text .gbdt format and
/// the mmap-able .gbdt2 binary; direction follows the output extension.  The
/// container keeps everything inference reads (structure, fp64 thresholds,
/// leaves, per-node gains), so converted models predict bit-identically in
/// either direction.
int cmd_convert(int argc, char** argv) {
  ArgParser args = convert_parser();
  args.parse(argc, argv);
  const std::filesystem::path in_path = args.get("in.model");
  const std::filesystem::path out_path = args.get("out.model");
  if (in_path.extension() == ml::kGnnExtension || out_path.extension() == ml::kGnnExtension) {
    throw std::runtime_error(
        "convert: re-containers gbdt models only (.gbdt <-> .gbdt2); the gnn family has a "
        "single container (.gnn) with nothing to convert between — retrain with `aigml "
        "train --model gnn` to produce one");
  }
  const bool in_v2 = in_path.extension() == ml::kModelV2Extension;
  const bool out_v2 = out_path.extension() == ml::kModelV2Extension;
  // Dispatch on magic (load_model_any) so a gnn checkpoint under a
  // misleading extension still fails with the family named, not a parse
  // error deep inside the text reader.
  const ml::GbdtModel model = [&] {
    if (in_v2) return ml::GbdtModel::load_v2(in_path);
    const auto any = ml::load_model_any(in_path);
    return ml::GbdtModel(ml::require_gbdt(*any, "aigml convert"));
  }();
  if (out_v2) {
    model.save_v2(out_path);
    const ml::ModelV2Info info = ml::inspect_v2(out_path);
    std::printf("wrote %s: v%u, %llu trees, %llu nodes, %llu features, %llu bytes "
                "(fp16 %s, int16 %s)\n",
                out_path.string().c_str(), info.version,
                static_cast<unsigned long long>(info.num_trees),
                static_cast<unsigned long long>(info.num_nodes),
                static_cast<unsigned long long>(info.num_features),
                static_cast<unsigned long long>(info.file_size),
                info.has_fp16 ? "yes" : "no", info.has_int16 ? "yes" : "no");
  } else {
    model.save(out_path);
    std::printf("wrote %s: %zu trees, %zu features (text)\n", out_path.string().c_str(),
                model.num_trees(), model.num_features());
  }
  return 0;
}

int cmd_predict(int argc, char** argv) {
  ArgParser args = predict_parser();
  args.parse(argc, argv);
  const std::filesystem::path model_path = args.get("model.gbdt");
  const ml::QuantMode quant = ml::quant_mode_from_name(args.get("quant"));
  const bool v2 = model_path.extension() == ml::kModelV2Extension;
  const bool gnn = model_path.extension() == ml::kGnnExtension;
  if (quant != ml::QuantMode::kNone && !v2) {
    throw std::runtime_error(std::string("predict: --quant ") + ml::to_string(quant) +
                             " needs a .gbdt2 model (" +
                             (gnn ? "gnn models have no quantized sections" :
                                    "text models have no quantized sections; run "
                                    "`aigml convert`") + ")");
  }
  // Either family serves predictions: the quantized .gbdt2 path keeps its
  // dedicated loader, everything else goes through the magic-sniffing
  // load_model_any — so a .gnn checkpoint predicts straight from the graph.
  const auto install_model = [&](serve::ModelRegistry& registry) {
    if (v2 && quant != ml::QuantMode::kNone) {
      registry.install("delay", ml::GbdtModel::load_v2(model_path, quant));
      return;
    }
    const auto any = ml::load_model_any(model_path);
    if (any->needs_graph()) {
      registry.install("delay", ml::GnnModel::load(model_path));
    } else {
      registry.install("delay", ml::GbdtModel(ml::require_gbdt(*any, "aigml predict")));
    }
  };
  if (args.rest().empty()) {
    // Single file: keep the predicted-vs-actual report.
    serve::ModelRegistry registry;
    install_model(registry);
    const auto model = registry.get("delay");
    const aig::Aig g = aig::read_aiger_file(args.get("in.aag"));
    std::printf("predicted post-mapping delay: %.1f ps\n", model->predict(g));
    const auto& lib = cell::mini_sky130();
    const auto timing = sta::run_sta(map::map_to_cells(g, lib), lib, {});
    std::printf("actual (map+STA):             %.1f ps\n", timing.max_delay_ps);
    return 0;
  }
  // Multiple files route through the PredictService batch path: the model
  // is loaded once, extraction fans out over the thread pool, and one
  // predict_all (gbdt) or predict_graphs (gnn) pass answers the whole
  // batch.  A file that fails to read or predict is reported on its own
  // line without dropping the others.
  std::vector<std::string> files{args.get("in.aag")};
  files.insert(files.end(), args.rest().begin(), args.rest().end());
  serve::ModelRegistry registry;
  install_model(registry);
  serve::PredictService service(registry);
  std::vector<std::optional<std::future<double>>> futures;
  std::vector<std::string> read_errors(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    try {
      futures.push_back(service.submit("delay", aig::read_aiger_file(files[i])));
    } catch (const std::exception& e) {
      futures.push_back(std::nullopt);
      read_errors[i] = e.what();
    }
  }
  int failures = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    try {
      if (!futures[i].has_value()) throw std::runtime_error(read_errors[i]);
      std::printf("%-32s %.1f ps\n", files[i].c_str(), futures[i]->get());
    } catch (const std::exception& e) {
      std::printf("%-32s FAILED (%s)\n", files[i].c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  ArgParser args = serve_parser();
  args.parse(argc, argv);
  if (!args.has("models")) throw std::runtime_error("serve: --models DIR is required");
  serve::ServiceParams service_params;
  service_params.max_batch = args.get_int("batch");
  service_params.batch_wait_us = args.get_int("wait-us");

  // Block SIGTERM/SIGINT *before* start() so every thread the server spawns
  // inherits the mask; the signals are then consumed only by the sigwait
  // below, turning kill(1) / Ctrl-C into a graceful drain: stop accepting,
  // answer the requests already buffered on live connections, exit 0.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  serve::ModelRegistry registry{std::filesystem::path(args.get("models"))};
  serve::PredictService service(registry, service_params);

  const auto banner = [&](std::uint16_t port, const char* kind) {
    std::printf("aigml serve: listening on %s:%u (%zu model(s) from %s, %s)\n",
                args.get("host").c_str(), port, registry.size(), args.get("models").c_str(),
                kind);
    for (const auto& info : registry.list()) {
      std::printf("  model %-16s v%llu  family %-5s %zu trees, %zu features\n",
                  info.name.c_str(), static_cast<unsigned long long>(info.version),
                  info.family.c_str(), info.num_trees, info.num_features);
    }
    std::fflush(stdout);
  };
  const auto await_signal = [&mask] {
    int sig = 0;
    if (sigwait(&mask, &sig) != 0) sig = SIGTERM;
    std::printf("aigml serve: caught signal %d — draining\n", sig);
    std::fflush(stdout);
  };

  if (args.has("legacy")) {
    serve::ServerParams server_params;
    server_params.host = args.get("host");
    if (args.has("port")) server_params.port = args.get_port("port");
    server_params.max_connections = static_cast<std::size_t>(args.get_int("max-connections"));
    serve::PredictServer server(registry, service, server_params);
    server.start();
    banner(server.port(), "thread-per-connection");
    await_signal();
    server.drain();
    return 0;
  }

  serve::BatchServerParams server_params;
  server_params.host = args.get("host");
  if (args.has("port")) server_params.port = args.get_port("port");
  server_params.max_connections = static_cast<std::size_t>(args.get_int("max-connections"));
  server_params.slots = static_cast<std::size_t>(std::max(1, args.get_int("slots")));
  server_params.max_inflight_per_conn =
      static_cast<std::size_t>(std::max(1, args.get_int("max-inflight")));
  serve::BatchServer server(registry, service, server_params);
  server.start();
  banner(server.port(), "event-loop");
  await_signal();
  server.drain();
  return 0;
}

/// `aigml learn` — the out-of-process half of the active-learning loop: a
/// daemon that watches a harvest directory for replay buffers written by
/// `aigml opt --recipe "...;learn=1;learn_dir=..."` runs, retrains the
/// served models on base + harvested rows, writes the refreshed .gbdt files
/// back into the model directory (write-to-temp + atomic rename) and nudges
/// a running `aigml serve` with RELOAD — closing the loop across processes
/// the same way ActiveLearner closes it inside one.
int cmd_learn(int argc, char** argv) {
  ArgParser args = learn_parser();
  args.parse(argc, argv);
  if (!args.has("models")) throw std::runtime_error("learn: --models DIR is required");
  if (!args.has("harvest")) throw std::runtime_error("learn: --harvest DIR is required");
  const std::filesystem::path models_dir = args.get("models");
  const std::filesystem::path harvest_dir = args.get("harvest");

  serve::ModelRegistry registry(models_dir);
  learn::RetrainParams params;
  params.min_new_rows = args.get_int("min-rows");
  params.extra_trees = args.get_int("extra-trees");
  params.save_dir = models_dir;
  learn::Retrainer retrainer(registry, params);
  const auto base_delay = ml::Dataset::load(models_dir / "base_delay.csv");
  const auto base_area = ml::Dataset::load(models_dir / "base_area.csv");
  if (base_delay.has_value() && base_area.has_value()) {
    retrainer.set_base(*base_delay, *base_area);
    std::printf("aigml learn: base sets %zu delay / %zu area rows\n",
                base_delay->num_rows(), base_area->num_rows());
  }

  const int interval = std::max(1, args.get_int("interval"));
  while (true) {
    // Fold every replay buffer in the harvest directory into one dedup-keyed
    // view; files are append-only, so rescanning is monotone and the
    // retrainer's consumed-rows watermark stays meaningful across passes.
    learn::ReplayBuffer combined;
    std::size_t files = 0;
    if (std::filesystem::is_directory(harvest_dir)) {
      std::vector<std::filesystem::path> paths;
      for (const auto& entry : std::filesystem::directory_iterator(harvest_dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".rpb") {
          paths.push_back(entry.path());
        }
      }
      std::sort(paths.begin(), paths.end());  // deterministic fold order
      for (const auto& path : paths) {
        try {
          const learn::ReplayBuffer one(path);
          for (std::size_t i = 0; i < one.size(); ++i) (void)combined.add(one.row(i));
          ++files;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "aigml learn: skipping %s: %s\n", path.string().c_str(),
                       e.what());
        }
      }
    }
    if (retrainer.maybe_retrain(combined)) {
      std::printf("aigml learn: retrained delay+area on %zu rows from %zu file(s) "
                  "(delay v%llu, area v%llu); error on harvest now %.1f%%\n",
                  combined.size(), files,
                  static_cast<unsigned long long>(registry.version("delay")),
                  static_cast<unsigned long long>(registry.version("area")),
                  learn::model_error_pct(*registry.get("delay"), *registry.get("area"),
                                         combined));
      if (args.has("port")) {
        try {
          serve::Client client(args.get("host"), args.get_port("port"));
          std::printf("aigml learn: server reload: %s\n", client.reload().c_str());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "aigml learn: RELOAD failed: %s\n", e.what());
        }
      }
    } else {
      std::printf("aigml learn: nothing to do (%zu rows from %zu file(s), %zu consumed, "
                  "need %d new)\n",
                  combined.size(), files, retrainer.rows_consumed(), params.min_new_rows);
    }
    std::fflush(stdout);
    if (args.has("once")) return 0;
    std::this_thread::sleep_for(std::chrono::seconds(interval));
  }
}

/// `aigml client bench` — the event-loop load generator as a CLI: N
/// concurrent connections, M FEATURES requests, K outstanding per
/// connection, either dialect.  Prints a one-line JSON report (used by the
/// CI concurrency smoke; bench/server_bench.cpp links run_loadgen directly).
int cmd_client_bench(const ArgParser& args, const std::vector<std::string>& rest) {
  if (rest.size() != 1) throw std::runtime_error("client bench: need <in.aag>");
  const aig::Aig g = aig::read_aiger_file(rest[0]);
  std::vector<double> row(features::kNumFeatures, 0.0);
  features::extract_into(g, row);

  serve::LoadGenParams params;
  params.host = args.get("host");
  params.port = args.get_port("port");
  params.connections = static_cast<std::size_t>(std::max(1, args.get_int("concurrency")));
  params.requests = static_cast<std::size_t>(std::max(1, args.get_int("requests")));
  params.pipeline = static_cast<std::size_t>(std::max(1, args.get_int("pipeline")));
  params.binary = args.has("binary");
  params.model = args.get("model");
  params.rows = {std::move(row)};
  const serve::LoadGenResult r = run_loadgen(params);

  std::printf("{\"connections\":%zu,\"requests\":%zu,\"pipeline\":%zu,\"binary\":%s,"
              "\"ok\":%zu,\"busy\":%zu,\"errors\":%zu,\"seconds\":%.6f,"
              "\"throughput_rps\":%.1f,\"latency_us\":{\"mean\":%.1f,\"p50\":%.1f,"
              "\"p90\":%.1f,\"p99\":%.1f,\"max\":%.1f}}\n",
              params.connections, params.requests, params.pipeline,
              params.binary ? "true" : "false", r.ok, r.busy, r.errors, r.seconds,
              r.throughput_rps, r.latency.mean_us(), r.latency.percentile_us(50),
              r.latency.percentile_us(90), r.latency.percentile_us(99), r.latency.max_us());
  // The load generator absorbs sheds and faults; a bench where *nothing*
  // came back is the only hard failure.
  return r.ok > 0 ? 0 : 1;
}

int cmd_client(int argc, char** argv) {
  ArgParser args = client_parser();
  args.parse(argc, argv);
  if (!args.has("port")) throw std::runtime_error("client: --port P is required");
  const std::string sub = args.get("subcommand");
  const std::vector<std::string>& rest = args.rest();

  if (sub == "bench") return cmd_client_bench(args, rest);

  // Same subcommands over either dialect; --binary swaps the transport.
  const auto run = [&](auto& client) -> int {
    if (sub == "predict") {
      if (rest.size() != 2) throw std::runtime_error("client predict: need <model> <in.aag>");
      const aig::Aig g = aig::read_aiger_file(rest[1]);
      std::printf("%.17g\n", client.predict(rest[0], g));
      return 0;
    }
    if (sub == "features") {
      if (rest.size() < 2) throw std::runtime_error("client features: need <model> <f0> ...");
      std::vector<double> row;
      for (std::size_t i = 1; i < rest.size(); ++i) row.push_back(std::stod(rest[i]));
      std::printf("%.17g\n", client.predict_features(rest[0], row));
      return 0;
    }
    if (sub == "reload") {
      std::printf("%s\n", client.reload().c_str());
      return 0;
    }
    if (sub == "stats") {
      std::printf("%s\n", client.stats().c_str());
      return 0;
    }
    if (sub == "ping") {
      std::printf("%s\n", client.ping().c_str());
      return 0;
    }
    throw std::runtime_error("client: unknown subcommand '" + sub + "'");
  };
  if (args.has("binary")) {
    serve::BinClient client(args.get("host"), args.get_port("port"));
    return run(client);
  }
  serve::Client client(args.get("host"), args.get_port("port"));
  return run(client);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options (currently just --threads N) before dispatch.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads requires a value\n");
        return 2;
      }
      value = argv[++i];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    }
    if (value != nullptr) {
      char* end = nullptr;
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: --threads expects a non-negative integer (0 = auto)\n");
        return 2;
      }
      set_default_threads(static_cast<int>(n));
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Every failure below — missing file, corrupt model, bad flag value,
  // refused connection — must exit 1 with a one-line `aigml: <message>`,
  // never an uncaught-exception terminate.
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "stats") return cmd_stats(argc, argv);
    if (cmd == "opt") return cmd_opt(argc, argv);
    if (cmd == "map") return cmd_map(argc, argv);
    if (cmd == "datagen") return cmd_datagen(argc, argv);
    if (cmd == "train") return cmd_train(argc, argv);
    if (cmd == "convert") return cmd_convert(argc, argv);
    if (cmd == "predict") return cmd_predict(argc, argv);
    if (cmd == "sa") return cmd_sa(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
    if (cmd == "learn") return cmd_learn(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aigml: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "aigml: unknown error\n");
    return 1;
  }
  return usage();
}
