// aigml — command-line driver for the library.
//
//   aigml gen <design|generator> [out.aag]        emit a benchmark circuit
//   aigml stats <in.aag>                          AIG statistics + features
//   aigml opt <in.aag> <script> [out.aag]         apply scripts ("b;rw;rf")
//   aigml map <in.aag> [out.v]                    map + STA report [+ Verilog]
//   aigml datagen <design> <N> <out_prefix>       labeled dataset -> CSV
//   aigml train <delay.csv> <model.gbdt>          train a delay model
//   aigml predict <model.gbdt> <in.aag>           predict post-mapping delay
//   aigml sa <in.aag> <proxy|truth> <iters> [out.aag]   SA optimization
//
// Designs: EX00 EX08 EX28 EX68 EX02 EX11 EX16 EX54; generators:
// mult<N>, wallace<N>, adder<N>, cla<N>, ks<N>, alu<N>, cmp<N>, parity<N>.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "aig/aiger.hpp"
#include "aig/analysis.hpp"
#include "aig/sim.hpp"
#include "features/features.hpp"
#include "flow/datagen.hpp"
#include "gen/circuits.hpp"
#include "gen/designs.hpp"
#include "mapper/mapper.hpp"
#include "ml/gbdt.hpp"
#include "netlist/verilog.hpp"
#include "opt/cost.hpp"
#include "opt/sa.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sta/sta.hpp"
#include "transforms/scripts.hpp"
#include "util/parallel.hpp"

using namespace aigml;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aigml [--threads N] <command> ...\n"
               "  gen <design> [out.aag]\n"
               "  stats <in.aag>\n"
               "  opt <in.aag> <script> [out.aag]\n"
               "  map <in.aag> [out.v]\n"
               "  datagen <design> <N> <out_prefix>\n"
               "  train <delay.csv> <model.gbdt>\n"
               "  predict <model.gbdt> <in.aag> [more.aag ...]\n"
               "  sa <in.aag> <proxy|truth> <iters> [out.aag]\n"
               "  serve --models DIR [--port P] [--host H] [--batch N] [--wait-us U]\n"
               "  client [--port P] [--host H] predict <model> <in.aag>\n"
               "  client [--port P] [--host H] features <model> <f0> <f1> ...\n"
               "  client [--port P] [--host H] reload|stats|ping\n"
               "options:\n"
               "  --threads N   worker threads for parallel stages (datagen\n"
               "                labeling, serve extraction); default:\n"
               "                AIGML_THREADS or all cores.  Results are\n"
               "                identical at any thread count.\n");
  return 2;
}

/// Builds a named design or parameterized generator ("mult8", "cla16", ...).
aig::Aig build_circuit(const std::string& name) {
  for (const auto& spec : gen::design_specs()) {
    if (spec.name == name) return gen::build_design(name);
  }
  auto split = [&](const char* prefix) -> int {
    const std::size_t len = std::strlen(prefix);
    if (name.rfind(prefix, 0) == 0 && name.size() > len) {
      return std::stoi(name.substr(len));
    }
    return -1;
  };
  if (const int w = split("mult"); w > 0) return gen::multiplier(w);
  if (const int w = split("wallace"); w > 0) return gen::multiplier_wallace(w);
  if (const int w = split("adder"); w > 0) return gen::adder_ripple(w);
  if (const int w = split("cla"); w > 0) return gen::adder_cla(w);
  if (const int w = split("ks"); w > 0) return gen::adder_kogge_stone(w);
  if (const int w = split("alu"); w > 0) return gen::alu(w);
  if (const int w = split("cmp"); w > 0) return gen::comparator(w);
  if (const int w = split("parity"); w > 0) return gen::parity_tree(w);
  throw std::runtime_error("unknown design/generator: " + name);
}

void emit(const aig::Aig& g, int argc, char** argv, int out_index) {
  if (argc > out_index) {
    aig::write_aiger_file(g, argv[out_index]);
    std::printf("wrote %s\n", argv[out_index]);
  } else {
    std::printf("%s", aig::to_aiger_string(g).c_str());
  }
}

int cmd_gen(int argc, char** argv) {
  const aig::Aig g = build_circuit(argv[2]);
  emit(g, argc, argv, 3);
  return 0;
}

int cmd_stats(char** argv) {
  const aig::Aig g = aig::read_aiger_file(argv[2]);
  std::printf("inputs %zu  outputs %zu  ands %zu  levels %u\n", g.num_inputs(),
              g.num_outputs(), g.num_ands(), aig::aig_level(g));
  const auto f = features::extract(g);
  const auto& names = features::feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-38s %g\n", names[i].c_str(), f[i]);
  }
  return 0;
}

int cmd_opt(int argc, char** argv) {
  aig::Aig g = aig::read_aiger_file(argv[2]);
  const aig::Aig original = g;
  std::string script = argv[3];
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = script.find(';', pos);
    const std::string step = script.substr(pos, next == std::string::npos ? next : next - pos);
    if (!step.empty()) g = transforms::apply_primitive(step, g);
    pos = next == std::string::npos ? next : next + 1;
  }
  std::fprintf(stderr, "%zu -> %zu ands, %u -> %u levels, equivalence %s\n",
               original.num_ands(), g.num_ands(), aig::aig_level(original), aig::aig_level(g),
               aig::equivalent(original, g) ? "PASS" : "FAIL");
  emit(g, argc, argv, 4);
  return 0;
}

int cmd_map(int argc, char** argv) {
  const aig::Aig g = aig::read_aiger_file(argv[2]);
  const auto& lib = cell::mini_sky130();
  const auto netlist = map::map_to_cells(g, lib);
  const auto timing = sta::run_sta(netlist, lib, {});
  std::printf("%s", sta::timing_report(netlist, lib, timing).c_str());
  if (argc > 3) {
    std::ofstream out(argv[3]);
    net::write_verilog(netlist, lib, out);
    std::printf("wrote %s\n", argv[3]);
  }
  return 0;
}

int cmd_datagen(char** argv) {
  const aig::Aig g = build_circuit(argv[2]);
  flow::DataGenParams params;
  params.num_variants = std::stoi(argv[3]);
  const auto data = flow::generate_dataset(g, argv[2], cell::mini_sky130(), params);
  const std::string prefix = argv[4];
  data.delay.save(prefix + "_delay.csv");
  data.area.save(prefix + "_area.csv");
  std::printf("generated %zu variants in %.1f s -> %s_{delay,area}.csv\n",
              data.unique_variants, data.generation_seconds, prefix.c_str());
  return 0;
}

int cmd_train(char** argv) {
  const auto data = ml::Dataset::load(argv[2]);
  if (!data.has_value()) throw std::runtime_error(std::string("cannot load ") + argv[2]);
  ml::TrainLog log;
  const auto model = ml::GbdtModel::train(*data, ml::GbdtParams{}, nullptr, &log);
  model.save(argv[3]);
  std::printf("trained %zu trees on %zu rows in %.1f s -> %s\n", model.num_trees(),
              data->num_rows(), log.train_seconds, argv[3]);
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc == 4) {
    // Single file: keep the predicted-vs-actual report.
    const auto model = ml::GbdtModel::load(argv[2]);
    const aig::Aig g = aig::read_aiger_file(argv[3]);
    const auto f = features::extract(g);
    std::printf("predicted post-mapping delay: %.1f ps\n", model.predict(f));
    const auto& lib = cell::mini_sky130();
    const auto timing = sta::run_sta(map::map_to_cells(g, lib), lib, {});
    std::printf("actual (map+STA):             %.1f ps\n", timing.max_delay_ps);
    return 0;
  }
  // Multiple files route through the PredictService batch path: the model
  // is loaded once, extraction fans out over the thread pool, and one
  // predict_all pass answers the whole batch.  A file that fails to read
  // or predict is reported on its own line without dropping the others.
  serve::ModelRegistry registry;
  registry.install("delay", ml::GbdtModel::load(argv[2]));
  serve::PredictService service(registry);
  std::vector<std::optional<std::future<double>>> futures;
  std::vector<std::string> read_errors(static_cast<std::size_t>(argc - 3));
  for (int i = 3; i < argc; ++i) {
    try {
      futures.push_back(service.submit("delay", aig::read_aiger_file(argv[i])));
    } catch (const std::exception& e) {
      futures.push_back(std::nullopt);
      read_errors[static_cast<std::size_t>(i - 3)] = e.what();
    }
  }
  int failures = 0;
  for (int i = 3; i < argc; ++i) {
    const auto slot = static_cast<std::size_t>(i - 3);
    try {
      if (!futures[slot].has_value()) throw std::runtime_error(read_errors[slot]);
      std::printf("%-32s %.1f ps\n", argv[i], futures[slot]->get());
    } catch (const std::exception& e) {
      std::printf("%-32s FAILED (%s)\n", argv[i], e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

/// Parses a --port value, rejecting anything outside 1..65535 (a silent
/// uint16 truncation would bind/dial the wrong port).
std::uint16_t parse_port(const std::string& text) {
  const int port = std::stoi(text);
  if (port < 1 || port > 65535) {
    throw std::runtime_error("port " + text + " out of range 1..65535");
  }
  return static_cast<std::uint16_t>(port);
}

int cmd_serve(int argc, char** argv) {
  std::string models_dir;
  serve::ServerParams server_params;
  serve::ServiceParams service_params;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(flag + " requires a value");
      return argv[++i];
    };
    if (flag == "--models") {
      models_dir = value();
    } else if (flag == "--port") {
      server_params.port = parse_port(value());
    } else if (flag == "--host") {
      server_params.host = value();
    } else if (flag == "--batch") {
      service_params.max_batch = std::stoi(value());
    } else if (flag == "--wait-us") {
      service_params.batch_wait_us = std::stoi(value());
    } else {
      throw std::runtime_error("serve: unknown option " + flag);
    }
  }
  if (models_dir.empty()) throw std::runtime_error("serve: --models DIR is required");

  serve::ModelRegistry registry{std::filesystem::path(models_dir)};
  serve::PredictService service(registry, service_params);
  serve::PredictServer server(registry, service, server_params);
  server.start();
  std::printf("aigml serve: listening on %s:%u (%zu model(s) from %s)\n",
              server_params.host.c_str(), server.port(), registry.size(), models_dir.c_str());
  for (const auto& info : registry.list()) {
    std::printf("  model %-16s v%llu  %zu trees, %zu features\n", info.name.c_str(),
                static_cast<unsigned long long>(info.version), info.num_trees,
                info.num_features);
  }
  std::fflush(stdout);
  server.wait();  // runs until the process is signalled
  return 0;
}

int cmd_client(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int i = 2;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = parse_port(argv[++i]);
    } else {
      break;
    }
  }
  if (port == 0) throw std::runtime_error("client: --port P is required");
  if (i >= argc) throw std::runtime_error("client: missing subcommand");
  const std::string sub = argv[i++];

  serve::Client client(host, port);
  if (sub == "predict") {
    if (argc - i < 2) throw std::runtime_error("client predict: need <model> <in.aag>");
    const aig::Aig g = aig::read_aiger_file(argv[i + 1]);
    std::printf("%.17g\n", client.predict(argv[i], g));
    return 0;
  }
  if (sub == "features") {
    if (argc - i < 2) throw std::runtime_error("client features: need <model> <f0> ...");
    std::vector<double> row;
    for (int j = i + 1; j < argc; ++j) row.push_back(std::stod(argv[j]));
    std::printf("%.17g\n", client.predict_features(argv[i], row));
    return 0;
  }
  if (sub == "reload") {
    std::printf("%s\n", client.reload().c_str());
    return 0;
  }
  if (sub == "stats") {
    std::printf("%s\n", client.stats().c_str());
    return 0;
  }
  if (sub == "ping") {
    std::printf("%s\n", client.ping().c_str());
    return 0;
  }
  throw std::runtime_error("client: unknown subcommand '" + sub + "'");
}

int cmd_sa(int argc, char** argv) {
  const aig::Aig g = aig::read_aiger_file(argv[2]);
  const std::string flavor = argv[3];
  opt::SaParams params;
  params.iterations = std::stoi(argv[4]);
  opt::ProxyCost proxy;
  opt::GroundTruthCost truth(cell::mini_sky130());
  opt::CostEvaluator& evaluator =
      flavor == "truth" ? static_cast<opt::CostEvaluator&>(truth) : proxy;
  const auto result = opt::simulated_annealing(g, evaluator, params);
  std::fprintf(stderr,
               "%s flow: cost %.4f -> %.4f (%zu/%zu accepted, %.2f s; delay %.1f area %.1f)\n",
               evaluator.name().c_str(),
               params.weight_delay + params.weight_area, result.best_cost,
               result.accepted_moves(), result.history.size(), result.total_seconds,
               result.best_eval.delay, result.best_eval.area);
  emit(result.best, argc, argv, 5);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip global options (currently just --threads N) before dispatch.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads requires a value\n");
        return 2;
      }
      value = argv[++i];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    }
    if (value != nullptr) {
      char* end = nullptr;
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: --threads expects a non-negative integer (0 = auto)\n");
        return 2;
      }
      set_default_threads(static_cast<int>(n));
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Every failure below — missing file, corrupt model, bad flag value,
  // refused connection — must exit 1 with a one-line `aigml: <message>`,
  // never an uncaught-exception terminate.
  try {
    if (cmd == "gen" && argc >= 3) return cmd_gen(argc, argv);
    if (cmd == "stats" && argc >= 3) return cmd_stats(argv);
    if (cmd == "opt" && argc >= 4) return cmd_opt(argc, argv);
    if (cmd == "map" && argc >= 3) return cmd_map(argc, argv);
    if (cmd == "datagen" && argc >= 5) return cmd_datagen(argv);
    if (cmd == "train" && argc >= 4) return cmd_train(argv);
    if (cmd == "predict" && argc >= 4) return cmd_predict(argc, argv);
    if (cmd == "sa" && argc >= 5) return cmd_sa(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "client" && argc >= 3) return cmd_client(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aigml: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "aigml: unknown error\n");
    return 1;
  }
  return usage();
}
