#pragma once
// Static timing analysis over a mapped netlist.
//
// Delay model (matching the Library): pin-to-output delay of a gate is
// intrinsic + resistance * load(output net), where
//
//   load(net) [fF] = sum of receiving pin capacitances
//                  + wire_cap_per_fanout * fanout_count      (RC wire proxy)
//                  + po_cap for nets driving a primary output.
//
// Arrival times propagate forward in topological order; required times and
// slacks propagate backward from the latest output (or an explicit clock
// target).  The maximum arrival over all primary outputs is the
// "post-mapping delay" used as ground truth throughout the paper's flows.

#include <cstdint>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "netlist/netlist.hpp"

namespace aigml::sta {

struct StaParams {
  double wire_cap_per_fanout_ff = 0.6;
  double po_cap_ff = 3.0;
  /// Required time at outputs; <= 0 means "use the latest arrival" (zero
  /// worst slack).
  double clock_period_ps = 0.0;
};

struct PathElement {
  net::GateId gate = 0;
  std::string cell_name;
  double arrival_ps = 0.0;
};

struct StaResult {
  double max_delay_ps = 0.0;        ///< critical (latest) primary-output arrival
  double total_area_um2 = 0.0;
  double worst_slack_ps = 0.0;
  std::size_t critical_output = 0;  ///< index of the latest output
  std::vector<double> net_arrival_ps;   ///< per net
  std::vector<double> net_required_ps;  ///< per net
  std::vector<double> net_slack_ps;     ///< per net
  std::vector<PathElement> critical_path;  ///< PI-to-PO gate chain
};

/// Runs STA.  The netlist must be topologically ordered.
[[nodiscard]] StaResult run_sta(const net::Netlist& netlist, const cell::Library& lib,
                                const StaParams& params = {});

/// Human-readable timing report (critical path + summary).
[[nodiscard]] std::string timing_report(const net::Netlist& netlist, const cell::Library& lib,
                                        const StaResult& result);

}  // namespace aigml::sta
