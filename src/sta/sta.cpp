#include "sta/sta.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace aigml::sta {

using net::Gate;
using net::GateId;
using net::Netlist;
using net::NetId;
using net::NetKind;

StaResult run_sta(const Netlist& netlist, const cell::Library& lib, const StaParams& params) {
  if (!netlist.check_topological()) {
    throw std::invalid_argument("run_sta: netlist is not topologically ordered");
  }
  StaResult r;
  const std::size_t n_nets = netlist.num_nets();
  r.net_arrival_ps.assign(n_nets, 0.0);
  r.net_required_ps.assign(n_nets, std::numeric_limits<double>::infinity());
  r.net_slack_ps.assign(n_nets, 0.0);
  r.total_area_um2 = netlist.total_area_um2(lib);

  // ---- loads ---------------------------------------------------------------
  std::vector<double> load_ff(n_nets, 0.0);
  for (const Gate& g : netlist.gates()) {
    const cell::Cell& c = lib.cell(g.cell_id);
    for (const NetId in : g.inputs) {
      load_ff[in] += c.input_cap_ff + params.wire_cap_per_fanout_ff;
    }
  }
  for (const auto& o : netlist.outputs()) load_ff[o.net] += params.po_cap_ff;

  // ---- forward: arrivals -----------------------------------------------------
  // Which input pin determined each gate's arrival (for path extraction).
  std::vector<std::uint32_t> critical_pin(netlist.num_gates(), 0);
  for (GateId gid = 0; gid < netlist.num_gates(); ++gid) {
    const Gate& g = netlist.gate(gid);
    const cell::Cell& c = lib.cell(g.cell_id);
    const double delay = lib.pin_delay_ps(c, load_ff[g.output]);
    double arrival = 0.0;
    for (std::uint32_t pin = 0; pin < g.inputs.size(); ++pin) {
      const double candidate = r.net_arrival_ps[g.inputs[pin]] + delay;
      if (candidate > arrival) {
        arrival = candidate;
        critical_pin[gid] = pin;
      }
    }
    // Cells with no inputs (tie-like) arrive at their intrinsic delay.
    if (g.inputs.empty()) arrival = delay;
    r.net_arrival_ps[g.output] = arrival;
  }

  // ---- outputs ----------------------------------------------------------------
  r.max_delay_ps = 0.0;
  for (std::size_t o = 0; o < netlist.outputs().size(); ++o) {
    const double arr = r.net_arrival_ps[netlist.outputs()[o].net];
    if (arr > r.max_delay_ps) {
      r.max_delay_ps = arr;
      r.critical_output = o;
    }
  }

  // ---- backward: required times and slacks -------------------------------------
  const double target = params.clock_period_ps > 0.0 ? params.clock_period_ps : r.max_delay_ps;
  for (const auto& o : netlist.outputs()) {
    r.net_required_ps[o.net] = std::min(r.net_required_ps[o.net], target);
  }
  for (GateId gid = netlist.num_gates(); gid-- > 0;) {
    const Gate& g = netlist.gate(gid);
    const cell::Cell& c = lib.cell(g.cell_id);
    const double delay = lib.pin_delay_ps(c, load_ff[g.output]);
    const double req_out = r.net_required_ps[g.output];
    if (req_out == std::numeric_limits<double>::infinity()) continue;  // dead gate
    for (const NetId in : g.inputs) {
      r.net_required_ps[in] = std::min(r.net_required_ps[in], req_out - delay);
    }
  }
  r.worst_slack_ps = std::numeric_limits<double>::infinity();
  for (NetId id = 0; id < n_nets; ++id) {
    if (r.net_required_ps[id] == std::numeric_limits<double>::infinity()) {
      // Unconstrained net (drives nothing): give it full slack.
      r.net_slack_ps[id] = target;
      continue;
    }
    r.net_slack_ps[id] = r.net_required_ps[id] - r.net_arrival_ps[id];
    r.worst_slack_ps = std::min(r.worst_slack_ps, r.net_slack_ps[id]);
  }
  if (r.worst_slack_ps == std::numeric_limits<double>::infinity()) r.worst_slack_ps = target;

  // ---- critical path -----------------------------------------------------------
  if (!netlist.outputs().empty()) {
    NetId cursor = netlist.outputs()[r.critical_output].net;
    while (netlist.net(cursor).kind == NetKind::FromGate) {
      const GateId gid = static_cast<GateId>(netlist.net(cursor).driver_gate);
      const Gate& g = netlist.gate(gid);
      r.critical_path.push_back(
          PathElement{gid, lib.cell(g.cell_id).name, r.net_arrival_ps[cursor]});
      if (g.inputs.empty()) break;
      cursor = g.inputs[critical_pin[gid]];
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
  }
  return r;
}

std::string timing_report(const Netlist& netlist, const cell::Library& lib,
                          const StaResult& result) {
  std::ostringstream out;
  out << "=== timing report (library: " << lib.name() << ") ===\n";
  out << "gates: " << netlist.num_gates() << "  area: " << result.total_area_um2
      << " um^2  max delay: " << result.max_delay_ps << " ps  worst slack: "
      << result.worst_slack_ps << " ps\n";
  out << "critical path (output '" << netlist.outputs()[result.critical_output].name << "', "
      << result.critical_path.size() << " stages):\n";
  for (const PathElement& e : result.critical_path) {
    out << "  gate " << e.gate << "  " << e.cell_name << "  arrival " << e.arrival_ps << " ps\n";
  }
  return out.str();
}

}  // namespace aigml::sta
