#include "celllib/library.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "aig/npn.hpp"

namespace aigml::cell {

using aig::tt_expand_low;
using aig::tt_mask;
using aig::tt_var;

namespace {

std::uint64_t index_key(std::uint64_t table, int num_leaves) {
  return (static_cast<std::uint64_t>(num_leaves) << 56) ^
         (table & tt_mask(num_leaves));
}

}  // namespace

Library::Library(std::string name, std::vector<Cell> cells)
    : name_(std::move(name)), cells_(std::move(cells)) {
  for (const Cell& c : cells_) {
    if (c.num_inputs > kMaxCellInputs) {
      throw std::invalid_argument("Library: cell " + c.name + " has too many inputs");
    }
    if (std::count_if(cells_.begin(), cells_.end(),
                      [&](const Cell& other) { return other.name == c.name; }) != 1) {
      throw std::invalid_argument("Library: duplicate cell name " + c.name);
    }
  }
  build_index();
}

void Library::build_index() {
  bool found_inverter = false;
  double best_inv_r = 0.0;
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    if (c.num_inputs == 1 && (c.function & tt_mask(1)) == (~tt_var(0) & tt_mask(1))) {
      if (!found_inverter || c.resistance_ps_per_ff < best_inv_r) {
        inverter_id_ = id;
        best_inv_r = c.resistance_ps_per_ff;
        found_inverter = true;
      }
    }
    if (c.num_inputs == 0) continue;  // tie cells are matched specially
    // Enumerate permutation x input-phase variants (output phase fixed at 0:
    // complements are found by querying the complemented table).
    std::array<std::uint8_t, 4> perm = {0, 1, 2, 3};
    std::vector<std::uint8_t> active(static_cast<std::size_t>(c.num_inputs));
    for (int i = 0; i < c.num_inputs; ++i) active[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    do {
      for (int i = 0; i < c.num_inputs; ++i) perm[static_cast<std::size_t>(i)] = active[static_cast<std::size_t>(i)];
      for (int phase = 0; phase < (1 << c.num_inputs); ++phase) {
        aig::NpnTransform tr;
        tr.perm = perm;
        tr.input_phase = static_cast<std::uint8_t>(phase);
        tr.output_phase = false;
        const std::uint64_t variant = aig::npn_apply(c.function, c.num_inputs, tr);
        // Variant semantics: variant(x) = cell(y) with y_i = x_{perm[i]} ^ phase_i,
        // i.e. pin i connects to leaf perm[i], inverted when phase bit i set.
        Match m;
        m.cell_id = id;
        m.leaf_of_pin = perm;
        m.input_neg_mask = static_cast<std::uint8_t>(phase);
        auto& bucket = index_[index_key(variant, c.num_inputs)];
        // Dedupe exact duplicates arising from symmetric pins: two matches of
        // the same cell whose (leaf, phase) multiset per pin position agree
        // produce identical gates, so keep the first only if truly identical.
        const bool duplicate = std::any_of(bucket.begin(), bucket.end(), [&](const Match& e) {
          return e.cell_id == m.cell_id && e.leaf_of_pin == m.leaf_of_pin &&
                 e.input_neg_mask == m.input_neg_mask;
        });
        if (!duplicate) bucket.push_back(m);
      }
    } while (std::next_permutation(active.begin(), active.end()));
  }
  if (!found_inverter) {
    throw std::invalid_argument("Library '" + name_ + "' must contain an inverter");
  }
}

std::uint32_t Library::cell_id(const std::string& cell_name) const {
  for (std::uint32_t id = 0; id < cells_.size(); ++id) {
    if (cells_[id].name == cell_name) return id;
  }
  throw std::out_of_range("Library: no cell named " + cell_name);
}

const std::vector<Match>& Library::matches(std::uint64_t table, int num_leaves) const {
  const auto it = index_.find(index_key(table, num_leaves));
  return it == index_.end() ? empty_ : it->second;
}

// ---- text format -------------------------------------------------------------
//
// minilib <name>
// cell <name> inputs <n> function 0x<hex low 2^n bits> area <um2>
//      cap <ff> intrinsic <ps> resistance <ps_per_ff>   (one line per cell)
// end

std::string Library::to_text() const {
  std::ostringstream out;
  out << "minilib " << name_ << "\n";
  for (const Cell& c : cells_) {
    out << "cell " << c.name << " inputs " << c.num_inputs << " function 0x" << std::hex
        << (c.function & tt_mask(c.num_inputs)) << std::dec << " area " << c.area_um2 << " cap "
        << c.input_cap_ff << " intrinsic " << c.intrinsic_ps << " resistance "
        << c.resistance_ps_per_ff << "\n";
  }
  out << "end\n";
  return out.str();
}

void Library::save(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Library::save: cannot open " + path.string());
  out << to_text();
}

Library Library::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token) || token != "minilib") {
    throw std::runtime_error("Library::from_text: expected 'minilib <name>'");
  }
  std::string lib_name;
  if (!(in >> lib_name)) throw std::runtime_error("Library::from_text: missing library name");
  std::vector<Cell> cells;
  while (in >> token) {
    if (token == "end") return Library(lib_name, std::move(cells));
    if (token != "cell") throw std::runtime_error("Library::from_text: expected 'cell', got " + token);
    Cell c;
    std::string key, hex;
    if (!(in >> c.name)) throw std::runtime_error("cell: missing name");
    auto expect = [&](const char* expected) {
      if (!(in >> key) || key != expected) {
        throw std::runtime_error("cell " + c.name + ": expected '" + expected + "'");
      }
    };
    expect("inputs");
    if (!(in >> c.num_inputs) || c.num_inputs < 0 || c.num_inputs > kMaxCellInputs) {
      throw std::runtime_error("cell " + c.name + ": bad input count");
    }
    expect("function");
    if (!(in >> hex) || hex.rfind("0x", 0) != 0) {
      throw std::runtime_error("cell " + c.name + ": bad function literal");
    }
    c.function = tt_expand_low(std::stoull(hex.substr(2), nullptr, 16), c.num_inputs);
    expect("area");
    in >> c.area_um2;
    expect("cap");
    in >> c.input_cap_ff;
    expect("intrinsic");
    in >> c.intrinsic_ps;
    expect("resistance");
    in >> c.resistance_ps_per_ff;
    if (!in) throw std::runtime_error("cell " + c.name + ": truncated attributes");
    cells.push_back(std::move(c));
  }
  throw std::runtime_error("Library::from_text: missing 'end'");
}

Library Library::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Library::load: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

// ---- built-in mini-sky130 ------------------------------------------------------

namespace {

/// Scales a base cell into a higher drive strength: stronger drive = lower
/// resistance, higher pin capacitance and area (transistor upsizing).
Cell drive_variant(Cell base, int strength) {
  if (strength == 1) {
    base.name += "_X1";
    return base;
  }
  const double s = static_cast<double>(strength);
  base.name += "_X" + std::to_string(strength);
  base.area_um2 *= 1.0 + 0.55 * (s - 1.0);
  base.input_cap_ff *= 1.0 + 0.45 * (s - 1.0);
  base.resistance_ps_per_ff /= s;
  base.intrinsic_ps *= 1.0 + 0.06 * (s - 1.0);
  return base;
}

std::vector<Cell> mini_sky130_cells() {
  const std::uint64_t A = tt_var(0), B = tt_var(1), C = tt_var(2), D = tt_var(3);
  struct Proto {
    const char* name;
    int inputs;
    std::uint64_t function;
    double area, cap, intrinsic, resistance;
    std::vector<int> drives;
  };
  const std::vector<Proto> protos = {
      {"INV", 1, ~A, 3.2, 2.2, 37.9, 2.62, {1, 2, 4}},
      {"BUF", 1, A, 4.8, 1.8, 65.5, 1.95, {1, 2, 4}},
      {"NAND2", 2, ~(A & B), 4.0, 2.4, 48.3, 3.00, {1, 2, 4}},
      {"NAND3", 3, ~(A & B & C), 5.6, 2.6, 58.6, 3.38, {1, 2}},
      {"NAND4", 4, ~(A & B & C & D), 7.2, 2.8, 69.0, 3.75, {1, 2}},
      {"NOR2", 2, ~(A | B), 4.0, 2.5, 55.2, 3.56, {1, 2, 4}},
      {"NOR3", 3, ~(A | B | C), 6.0, 2.7, 69.0, 4.12, {1, 2}},
      {"NOR4", 4, ~(A | B | C | D), 7.6, 2.9, 82.8, 4.69, {1, 2}},
      {"AND2", 2, A & B, 4.8, 2.0, 65.5, 2.44, {1, 2}},
      {"OR2", 2, A | B, 4.8, 2.1, 72.4, 2.62, {1, 2}},
      {"XOR2", 2, A ^ B, 8.8, 3.0, 94.9, 3.38, {1, 2}},
      {"XNOR2", 2, ~(A ^ B), 8.8, 3.0, 94.9, 3.38, {1, 2}},
      {"AOI21", 3, ~((A & B) | C), 5.6, 2.5, 62.1, 3.56, {1, 2}},
      {"OAI21", 3, ~((A | B) & C), 5.6, 2.5, 62.1, 3.56, {1, 2}},
      {"AOI22", 4, ~((A & B) | (C & D)), 7.2, 2.6, 72.4, 3.94, {1, 2}},
      {"OAI22", 4, ~((A | B) & (C | D)), 7.2, 2.6, 72.4, 3.94, {1, 2}},
      {"MUX2", 3, (C & B) | (~C & A), 8.0, 2.8, 82.8, 3.00, {1, 2}},
      {"MAJ3", 3, (A & B) | (A & C) | (B & C), 9.6, 3.0, 100.0, 3.56, {1}},
      {"AND3", 3, A & B & C, 6.4, 2.2, 75.9, 2.81, {1}},
      {"OR3", 3, A | B | C, 6.4, 2.3, 82.8, 3.00, {1}},
      {"AND4", 4, A & B & C & D, 8.0, 2.4, 86.2, 3.19, {1}},
      {"OR4", 4, A | B | C | D, 8.0, 2.5, 96.6, 3.38, {1}},
      {"XOR3", 3, A ^ B ^ C, 14.4, 3.4, 134.5, 3.94, {1}},
      {"AO21", 3, (A & B) | C, 6.4, 2.3, 79.3, 2.81, {1}},
      {"OA21", 3, (A | B) & C, 6.4, 2.3, 79.3, 2.81, {1}},
  };
  std::vector<Cell> cells;
  for (const Proto& p : protos) {
    Cell base;
    base.name = p.name;
    base.num_inputs = p.inputs;
    base.function = p.function;
    base.area_um2 = p.area;
    base.input_cap_ff = p.cap;
    base.intrinsic_ps = p.intrinsic;
    base.resistance_ps_per_ff = p.resistance;
    for (const int strength : p.drives) cells.push_back(drive_variant(base, strength));
  }
  return cells;
}

}  // namespace

const Library& mini_sky130() {
  static const Library lib("mini_sky130", mini_sky130_cells());
  return lib;
}

}  // namespace aigml::cell
