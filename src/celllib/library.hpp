#pragma once
// Standard-cell library model.
//
// Stands in for the SkyWater 130nm PDK the paper maps against: a set of
// combinational cells (<= 4 inputs) with area, per-pin input capacitance,
// and a linear (load-dependent) delay model
//
//     pin-to-output delay [ps] = intrinsic(pin) + resistance * load [fF].
//
// This is the minimal model that reproduces both miscorrelation mechanisms
// the paper identifies (§III-B): stage-count compression after mapping and
// fanout/load-dependent gate delay.  Values are hand-calibrated to 130nm
// magnitudes (FO4 of the unit inverter ~ 85 ps); absolute accuracy against
// the real PDK is not required by the experiments, which compare flows
// against each other under one consistent model.
//
// Boolean matching: the library pre-enumerates, for every cell, all
// permutation+input-phase variants of its function (output never
// complemented).  match(table) is then a hash lookup returning every
// (cell, pin binding) implementing exactly that leaf function.

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "aig/truth.hpp"

namespace aigml::cell {

inline constexpr int kMaxCellInputs = 4;

struct Cell {
  std::string name;
  int num_inputs = 0;          ///< 0 for tie cells
  std::uint64_t function = 0;  ///< expanded truth table over pins
  double area_um2 = 0.0;
  double input_cap_ff = 0.0;    ///< per input pin (uniform across pins)
  double intrinsic_ps = 0.0;    ///< per pin intrinsic delay (uniform)
  double resistance_ps_per_ff = 0.0;  ///< output drive resistance
};

/// A concrete way to implement a leaf function with a cell:
/// pin i of the cell connects to leaf `leaf_of_pin[i]`, complemented when bit
/// i of `input_neg_mask` is set.  The cell output equals the queried function
/// exactly (no output inversion — query the complemented table instead).
struct Match {
  std::uint32_t cell_id = 0;
  std::array<std::uint8_t, kMaxCellInputs> leaf_of_pin = {0, 1, 2, 3};
  std::uint8_t input_neg_mask = 0;
};

class Library {
 public:
  /// Builds a library from cells; derives the match index.  Throws if two
  /// cells share a name or a cell has more than kMaxCellInputs inputs.
  explicit Library(std::string name, std::vector<Cell> cells);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }
  [[nodiscard]] const Cell& cell(std::uint32_t id) const { return cells_[id]; }
  [[nodiscard]] std::uint32_t cell_id(const std::string& cell_name) const;

  /// Every match implementing `table` (expanded form) over `num_leaves`
  /// leaves.  Empty when no cell implements the function.
  [[nodiscard]] const std::vector<Match>& matches(std::uint64_t table, int num_leaves) const;

  /// The lowest-resistance inverter / buffer in the library (used for phase
  /// fixing and PI complements).
  [[nodiscard]] std::uint32_t inverter_id() const noexcept { return inverter_id_; }

  /// Pin-to-output delay of `cell` under `load_ff`.
  [[nodiscard]] double pin_delay_ps(const Cell& c, double load_ff) const noexcept {
    return c.intrinsic_ps + c.resistance_ps_per_ff * load_ff;
  }

  /// Serialization to/from the "minilib" text format (see library.cpp for
  /// the grammar).
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static Library load(const std::filesystem::path& path);
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Library from_text(const std::string& text);

 private:
  void build_index();

  std::string name_;
  std::vector<Cell> cells_;
  // index key: (num_leaves, low-2^n bits of table)
  std::unordered_map<std::uint64_t, std::vector<Match>> index_;
  std::uint32_t inverter_id_ = 0;
  std::vector<Match> empty_;
};

/// The built-in "mini-sky130" 130nm-flavoured library used by all
/// experiments: INV/BUF/NAND/NOR/AND/OR/XOR/XNOR/AOI/OAI/MUX/MAJ at 1-3
/// drive strengths.
[[nodiscard]] const Library& mini_sky130();

}  // namespace aigml::cell
