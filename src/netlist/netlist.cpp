#include "netlist/netlist.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "aig/synth.hpp"

namespace aigml::net {

NetId Netlist::add_pi_net(std::uint32_t pi_index, std::string name) {
  Net n;
  n.kind = NetKind::PrimaryInput;
  n.pi_index = pi_index;
  n.name = name.empty() ? "pi" + std::to_string(pi_index) : std::move(name);
  nets_.push_back(std::move(n));
  const NetId id = static_cast<NetId>(nets_.size() - 1);
  if (pi_index >= pi_nets_.size()) pi_nets_.resize(pi_index + 1, kNetInvalid);
  pi_nets_[pi_index] = id;
  return id;
}

NetId Netlist::add_const_net(bool value) {
  Net n;
  n.kind = value ? NetKind::Const1 : NetKind::Const0;
  n.name = value ? "const1" : "const0";
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::add_gate(std::uint32_t cell_id, std::vector<NetId> inputs) {
  for (const NetId in : inputs) {
    if (in >= nets_.size()) throw std::out_of_range("Netlist::add_gate: unknown input net");
  }
  Net out;
  out.kind = NetKind::FromGate;
  out.driver_gate = static_cast<std::int32_t>(gates_.size());
  out.name = "n" + std::to_string(nets_.size());
  nets_.push_back(std::move(out));
  Gate g;
  g.cell_id = cell_id;
  g.inputs = std::move(inputs);
  g.output = static_cast<NetId>(nets_.size() - 1);
  gates_.push_back(std::move(g));
  return gates_.back().output;
}

void Netlist::add_output(NetId net_id, std::string name) {
  if (net_id >= nets_.size()) throw std::out_of_range("Netlist::add_output: unknown net");
  Output o;
  o.net = net_id;
  o.name = name.empty() ? "po" + std::to_string(outputs_.size()) : std::move(name);
  outputs_.push_back(std::move(o));
}

std::vector<std::uint32_t> Netlist::net_fanout_counts() const {
  std::vector<std::uint32_t> fanout(nets_.size(), 0);
  for (const Gate& g : gates_) {
    for (const NetId in : g.inputs) ++fanout[in];
  }
  return fanout;
}

std::vector<char> Netlist::net_drives_po() const {
  std::vector<char> drives(nets_.size(), 0);
  for (const Output& o : outputs_) drives[o.net] = 1;
  return drives;
}

double Netlist::total_area_um2(const cell::Library& lib) const {
  double area = 0.0;
  for (const Gate& g : gates_) area += lib.cell(g.cell_id).area_um2;
  return area;
}

std::vector<std::pair<std::string, int>> Netlist::cell_histogram(const cell::Library& lib) const {
  std::map<std::string, int> counts;
  for (const Gate& g : gates_) ++counts[lib.cell(g.cell_id).name];
  return {counts.begin(), counts.end()};
}

bool Netlist::check_topological() const {
  for (GateId id = 0; id < gates_.size(); ++id) {
    for (const NetId in : gates_[id].inputs) {
      const Net& n = nets_[in];
      if (n.kind == NetKind::FromGate && n.driver_gate >= static_cast<std::int32_t>(id)) {
        return false;
      }
    }
  }
  return true;
}

aig::Aig to_aig(const Netlist& netlist, const cell::Library& lib) {
  aig::Aig g;
  std::vector<aig::Lit> net_lit(netlist.num_nets(), aig::kLitInvalid);
  for (std::uint32_t pi = 0; pi < netlist.num_inputs(); ++pi) {
    const NetId net_id = netlist.pi_nets()[pi];
    net_lit[net_id] = g.add_input(netlist.net(net_id).name);
  }
  for (NetId id = 0; id < netlist.num_nets(); ++id) {
    const Net& n = netlist.net(id);
    if (n.kind == NetKind::Const0) net_lit[id] = aig::kLitFalse;
    if (n.kind == NetKind::Const1) net_lit[id] = aig::kLitTrue;
  }
  // Gates are topological (checked), so a single pass resolves everything.
  if (!netlist.check_topological()) {
    throw std::invalid_argument("to_aig: netlist is not in topological order");
  }
  for (const Gate& gate : netlist.gates()) {
    const cell::Cell& c = lib.cell(gate.cell_id);
    std::vector<aig::Lit> pin_lits;
    pin_lits.reserve(gate.inputs.size());
    for (const NetId in : gate.inputs) {
      if (net_lit[in] == aig::kLitInvalid) {
        throw std::invalid_argument("to_aig: gate input net has no value");
      }
      pin_lits.push_back(net_lit[in]);
    }
    net_lit[gate.output] = aig::synthesize_tt_into(g, c.function, c.num_inputs, pin_lits);
  }
  for (const Output& o : netlist.outputs()) {
    if (net_lit[o.net] == aig::kLitInvalid) {
      throw std::invalid_argument("to_aig: output net has no value");
    }
    g.add_output(net_lit[o.net], o.name);
  }
  return g;
}

}  // namespace aigml::net
