#pragma once
// Mapped gate-level netlist: the output of technology mapping and the input
// to static timing analysis.
//
// Nets are identified by dense indices.  A net is driven by a gate, a
// primary input, or a constant; gates reference their input nets and one
// output net.  Gates are stored in topological order (the mapper emits them
// that way; Netlist::check_topological verifies it).

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "celllib/library.hpp"

namespace aigml::net {

using NetId = std::uint32_t;
using GateId = std::uint32_t;
inline constexpr NetId kNetInvalid = static_cast<NetId>(-1);

enum class NetKind : std::uint8_t { FromGate, PrimaryInput, Const0, Const1 };

struct Net {
  NetKind kind = NetKind::FromGate;
  std::int32_t driver_gate = -1;  ///< valid iff kind == FromGate
  std::uint32_t pi_index = 0;     ///< valid iff kind == PrimaryInput
  std::string name;
};

struct Gate {
  std::uint32_t cell_id = 0;          ///< index into the Library
  std::vector<NetId> inputs;          ///< one net per cell pin, pin order
  NetId output = kNetInvalid;
};

struct Output {
  NetId net = kNetInvalid;
  std::string name;
};

class Netlist {
 public:
  // ----- construction (used by the mapper) ----------------------------------
  NetId add_pi_net(std::uint32_t pi_index, std::string name = {});
  NetId add_const_net(bool value);
  /// Adds a gate and its freshly created output net; inputs must exist.
  NetId add_gate(std::uint32_t cell_id, std::vector<NetId> inputs);
  void add_output(NetId net, std::string name = {});

  // ----- inspection ----------------------------------------------------------
  [[nodiscard]] std::size_t num_nets() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t num_gates() const noexcept { return gates_.size(); }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return pi_nets_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_.size(); }

  [[nodiscard]] const Net& net(NetId id) const { return nets_[id]; }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id]; }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] const std::vector<NetId>& pi_nets() const noexcept { return pi_nets_; }
  [[nodiscard]] const std::vector<Output>& outputs() const noexcept { return outputs_; }

  /// Number of gate pins each net feeds (excludes primary outputs).
  [[nodiscard]] std::vector<std::uint32_t> net_fanout_counts() const;
  /// True when the net drives at least one primary output.
  [[nodiscard]] std::vector<char> net_drives_po() const;

  /// Total cell area under `lib`.
  [[nodiscard]] double total_area_um2(const cell::Library& lib) const;

  /// Per-cell-name usage histogram (for reports).
  [[nodiscard]] std::vector<std::pair<std::string, int>> cell_histogram(
      const cell::Library& lib) const;

  /// Verifies that every gate's inputs are produced before the gate.
  [[nodiscard]] bool check_topological() const;

 private:
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::vector<NetId> pi_nets_;
  std::vector<Output> outputs_;
};

/// Re-extracts the Boolean function of a netlist as an AIG (inputs/outputs
/// in netlist order) by resynthesizing each cell's truth table.  Used to
/// verify that mapping preserved the circuit function.
[[nodiscard]] aig::Aig to_aig(const Netlist& netlist, const cell::Library& lib);

}  // namespace aigml::net
