#pragma once
// Structural Verilog export of mapped netlists, for handoff to downstream
// P&R / sign-off tools.  Cells are emitted as module instantiations with
// positional pin names A, B, C, D and output Y; a matching set of cell
// module definitions (behavioural, from the cell truth tables) can be
// emitted alongside so the file simulates standalone.

#include <iosfwd>
#include <string>

#include "celllib/library.hpp"
#include "netlist/netlist.hpp"

namespace aigml::net {

struct VerilogOptions {
  std::string module_name = "top";
  /// Also emit behavioural `module <CELL> ...` definitions for every cell
  /// used, so the output is self-contained for simulation.
  bool emit_cell_models = true;
};

/// Writes the netlist as structural Verilog.
void write_verilog(const Netlist& netlist, const cell::Library& lib, std::ostream& out,
                   const VerilogOptions& options = {});

[[nodiscard]] std::string to_verilog_string(const Netlist& netlist, const cell::Library& lib,
                                            const VerilogOptions& options = {});

}  // namespace aigml::net
