// .gbdt2 container I/O (format doc in model_v2.hpp / DESIGN.md §13).
//
// The writer lays sections out 8-byte aligned so the loader can view them
// in place: the mapped kNodes bytes ARE the inference array (FlatNode's
// in-memory layout is the on-disk record), and load cost is the validation
// pass plus the pages the kernel actually touches — no parsing, no
// allocation proportional to model size.
//
// The loader trusts nothing: every count is bounded before use, every
// section offset/length is overflow-checked against the mapped size, and
// the forest is proven to be exactly DFS pre-order (each subtree a
// contiguous [begin, end) with the left child at begin+1) with bounded
// depth and finite values.  A hostile file throws std::runtime_error with
// the offending detail — never a crash, OOM, or traversal cycle.

#include "ml/model_v2.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/fault.hpp"
#include "util/fsio.hpp"
#include "util/mmapfile.hpp"

namespace aigml::ml {

static_assert(std::endian::native == std::endian::little,
              ".gbdt2 zero-copy I/O assumes a little-endian host");
static_assert(sizeof(GbdtModel::FlatNode) == 16);
static_assert(offsetof(GbdtModel::FlatNode, feature) == 0);
static_assert(offsetof(GbdtModel::FlatNode, right) == 4);
static_assert(offsetof(GbdtModel::FlatNode, value) == 8);
static_assert(sizeof(QuantScale) == 32);

const char* to_string(QuantMode mode) noexcept {
  switch (mode) {
    case QuantMode::kFp16:
      return "fp16";
    case QuantMode::kInt16:
      return "int16";
    case QuantMode::kNone:
      break;
  }
  return "none";
}

QuantMode quant_mode_from_name(const std::string& name) {
  if (name == "none") return QuantMode::kNone;
  if (name == "fp16") return QuantMode::kFp16;
  if (name == "int16") return QuantMode::kInt16;
  throw std::invalid_argument("quant '" + name + "': expected none | fp16 | int16");
}

namespace {

constexpr char kMagic[4] = {'G', 'B', 'T', '2'};
constexpr std::uint32_t kFormatVersion = 2;

// Mirror the text loader's plausibility bounds (gbdt.cpp / tree.cpp): a
// corrupt count must fail with a message, not a multi-gigabyte reserve.
constexpr std::uint64_t kMaxTrees = 1u << 20;
constexpr std::uint64_t kMaxFeatures = 1u << 16;
constexpr std::uint64_t kMaxNodes = std::uint64_t{1} << 28;
constexpr std::uint32_t kMaxSections = 64;
constexpr int kMaxDepth = 64;  // paper-scale max_depth is 16

enum SectionKind : std::uint32_t {
  kSecNodes = 1,
  kSecRoots = 2,
  kSecGains = 3,
  kSecValuesF16 = 4,
  kSecValuesI16 = 5,
  kSecQuantScales = 6,
};

struct V2Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t num_trees;
  std::uint64_t num_nodes;
  std::uint64_t num_features;
  double base_score;
  double learning_rate;
  std::uint32_t section_count;
  std::uint32_t reserved;
};
static_assert(sizeof(V2Header) == 56);

struct V2Section {
  std::uint32_t kind;
  std::uint32_t reserved;
  std::uint64_t offset;  ///< from file start; 8-byte aligned
  std::uint64_t length;  ///< bytes
};
static_assert(sizeof(V2Section) == 24);

[[noreturn]] void fail(const std::filesystem::path& path, const std::string& why) {
  throw std::runtime_error("GbdtModel::load_v2: " + path.string() + ": " + why);
}

void append_bytes(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

void pad8(std::string& out) { out.append((8 - out.size() % 8) % 8, '\0'); }

/// Known-kind sections located by the table walk; absent => data == nullptr.
struct SectionMap {
  const std::byte* nodes = nullptr;
  const std::byte* roots = nullptr;
  const std::byte* gains = nullptr;
  const std::byte* f16 = nullptr;
  const std::byte* i16 = nullptr;
  const std::byte* scales = nullptr;
};

/// Parses + bounds-checks the header and section table against `size`
/// mapped bytes.  Shared by load_v2 and inspect_v2.
V2Header parse_header(const std::filesystem::path& path, const std::byte* base, std::size_t size,
                      SectionMap* sections) {
  if (size < sizeof(V2Header)) fail(path, "truncated header (" + std::to_string(size) + " bytes)");
  V2Header h;
  std::memcpy(&h, base, sizeof h);
  if (std::memcmp(h.magic, kMagic, 4) != 0) {
    fail(path, "bad magic (not a .gbdt2 container)");
  }
  if (h.version != kFormatVersion) {
    fail(path, "unsupported container version " + std::to_string(h.version) +
                   " (this build reads version 2)");
  }
  if (h.num_trees > kMaxTrees || h.num_features == 0 || h.num_features > kMaxFeatures ||
      h.num_nodes > kMaxNodes) {
    fail(path, "implausible header (trees=" + std::to_string(h.num_trees) +
                   ", nodes=" + std::to_string(h.num_nodes) +
                   ", features=" + std::to_string(h.num_features) + ")");
  }
  if ((h.num_trees == 0) != (h.num_nodes == 0) || h.num_nodes < h.num_trees) {
    fail(path, "tree/node counts disagree (trees=" + std::to_string(h.num_trees) +
                   ", nodes=" + std::to_string(h.num_nodes) + ")");
  }
  if (!std::isfinite(h.base_score) || !std::isfinite(h.learning_rate)) {
    fail(path, "non-finite base score / learning rate");
  }
  if (h.section_count > kMaxSections) {
    fail(path, "implausible section count " + std::to_string(h.section_count));
  }
  const std::uint64_t table_bytes = std::uint64_t{h.section_count} * sizeof(V2Section);
  if (table_bytes > size - sizeof(V2Header)) fail(path, "truncated section table");

  // Expected payload sizes per known kind (exact-match enforced).
  const std::uint64_t nodes_len = h.num_nodes * sizeof(GbdtModel::FlatNode);
  const std::uint64_t roots_len = h.num_trees * sizeof(std::uint32_t);
  const std::uint64_t gains_len = h.num_nodes * sizeof(double);
  const std::uint64_t half_len = h.num_nodes * 2;
  const std::uint64_t scales_len = h.num_trees * sizeof(QuantScale);

  for (std::uint32_t s = 0; s < h.section_count; ++s) {
    V2Section sec;
    std::memcpy(&sec, base + sizeof(V2Header) + s * sizeof(V2Section), sizeof sec);
    if (sec.offset % 8 != 0) {
      fail(path, "section " + std::to_string(sec.kind) + " misaligned (offset " +
                     std::to_string(sec.offset) + ")");
    }
    // Overflow-safe: check offset first, then length against the remainder.
    if (sec.offset > size || sec.length > size - sec.offset) {
      fail(path, "section " + std::to_string(sec.kind) + " out of bounds (offset " +
                     std::to_string(sec.offset) + ", length " + std::to_string(sec.length) +
                     ", file " + std::to_string(size) + ")");
    }
    const std::byte** slot = nullptr;
    std::uint64_t expected = 0;
    switch (sec.kind) {
      case kSecNodes:
        slot = sections != nullptr ? &sections->nodes : nullptr;
        expected = nodes_len;
        break;
      case kSecRoots:
        slot = sections != nullptr ? &sections->roots : nullptr;
        expected = roots_len;
        break;
      case kSecGains:
        slot = sections != nullptr ? &sections->gains : nullptr;
        expected = gains_len;
        break;
      case kSecValuesF16:
        slot = sections != nullptr ? &sections->f16 : nullptr;
        expected = half_len;
        break;
      case kSecValuesI16:
        slot = sections != nullptr ? &sections->i16 : nullptr;
        expected = half_len;
        break;
      case kSecQuantScales:
        slot = sections != nullptr ? &sections->scales : nullptr;
        expected = scales_len;
        break;
      default:
        continue;  // unknown kinds are bounds-checked, then skipped
    }
    if (sec.length != expected) {
      fail(path, "section " + std::to_string(sec.kind) + " length " +
                     std::to_string(sec.length) + " != expected " + std::to_string(expected));
    }
    if (slot != nullptr) {
      if (*slot != nullptr) fail(path, "duplicate section " + std::to_string(sec.kind));
      *slot = base + sec.offset;
    }
  }
  return h;
}

/// Proves the flat span [begin, end) is exactly one DFS pre-order tree:
/// every subtree occupies a contiguous [i, sub_end), the left child sits at
/// i + 1, the right child index splits the remainder, and leaves close
/// their range exactly.  This visits each node once (no cycles possible by
/// construction) and bounds the depth, so a hostile forest can neither loop
/// nor blow the stack.
void validate_tree(const std::filesystem::path& path, const GbdtModel::FlatNode* nodes,
                   std::uint64_t tree, std::uint64_t begin, std::uint64_t end,
                   std::uint64_t num_features) {
  struct Range {
    std::uint64_t node;
    std::uint64_t end;
    int depth;
  };
  std::vector<Range> stack{{begin, end, 0}};
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    if (r.depth > kMaxDepth) {
      fail(path, "tree " + std::to_string(tree) + " deeper than " + std::to_string(kMaxDepth));
    }
    const GbdtModel::FlatNode& n = nodes[r.node];
    if (!std::isfinite(n.value)) {
      fail(path, "non-finite value at node " + std::to_string(r.node));
    }
    if (n.feature < 0) {
      if (n.feature != -1 || n.right != 0) {
        fail(path, "malformed leaf at node " + std::to_string(r.node));
      }
      if (r.node + 1 != r.end) {
        fail(path, "leaf at node " + std::to_string(r.node) + " does not close its subtree");
      }
      continue;
    }
    if (static_cast<std::uint64_t>(n.feature) >= num_features) {
      fail(path, "node " + std::to_string(r.node) + " splits on feature " +
                     std::to_string(n.feature) + " but the model has " +
                     std::to_string(num_features) + " features");
    }
    const auto right = static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.right));
    // Left subtree [node+1, right), right subtree [right, end): both must be
    // non-empty, and right must point forward (rules out cycles and overlap).
    if (n.right < 0 || right <= r.node + 1 || right >= r.end) {
      fail(path, "node " + std::to_string(r.node) + " right-child index " +
                     std::to_string(n.right) + " outside (" + std::to_string(r.node + 1) + ", " +
                     std::to_string(r.end) + ")");
    }
    stack.push_back({right, r.end, r.depth + 1});
    stack.push_back({r.node + 1, right, r.depth + 1});
  }
}

}  // namespace

std::string GbdtModel::serialize_v2() const {
  const std::span<const FlatNode> nodes = forest_nodes();
  const std::span<const std::uint32_t> roots = forest_roots();
  const std::span<const double> gains = forest_gains();

  // Quantized value sections are always emitted (4 bytes/node + 32
  // bytes/tree on top of the 24 bytes/node forest), so any .gbdt2 file can
  // serve any QuantMode the loader asks for.
  std::vector<std::uint16_t> f16(nodes.size());
  std::vector<std::int16_t> i16(nodes.size());
  std::vector<QuantScale> scales(roots.size());
  for (std::size_t t = 0; t < roots.size(); ++t) {
    const std::size_t begin = roots[t];
    const std::size_t end = t + 1 < roots.size() ? roots[t + 1] : nodes.size();
    double thr_min = std::numeric_limits<double>::infinity(), thr_max = -thr_min;
    double leaf_min = thr_min, leaf_max = -thr_min;
    for (std::size_t i = begin; i < end; ++i) {
      double& lo = nodes[i].feature >= 0 ? thr_min : leaf_min;
      double& hi = nodes[i].feature >= 0 ? thr_max : leaf_max;
      lo = std::min(lo, nodes[i].value);
      hi = std::max(hi, nodes[i].value);
    }
    QuantScale& qs = scales[t];
    // Midpoint bias + symmetric span over 2*32767 steps; a constant (or
    // absent) range degenerates to scale 0 => decode yields the bias.
    const auto affine = [](double lo, double hi, double& scale, double& bias) {
      if (!(lo <= hi)) {  // no values of this class in the tree
        scale = 0.0;
        bias = 0.0;
        return;
      }
      bias = 0.5 * (lo + hi);
      scale = hi > lo ? (hi - lo) / 65534.0 : 0.0;
    };
    affine(thr_min, thr_max, qs.thr_scale, qs.thr_bias);
    affine(leaf_min, leaf_max, qs.leaf_scale, qs.leaf_bias);
    for (std::size_t i = begin; i < end; ++i) {
      const bool internal = nodes[i].feature >= 0;
      const double scale = internal ? qs.thr_scale : qs.leaf_scale;
      const double bias = internal ? qs.thr_bias : qs.leaf_bias;
      f16[i] = fp16_from_double(nodes[i].value);
      i16[i] = scale > 0.0
                   ? static_cast<std::int16_t>(std::lround(
                         std::clamp((nodes[i].value - bias) / scale, -32767.0, 32767.0)))
                   : std::int16_t{0};
    }
  }

  V2Header h{};
  std::memcpy(h.magic, kMagic, 4);
  h.version = kFormatVersion;
  h.num_trees = roots.size();
  h.num_nodes = nodes.size();
  h.num_features = num_features_;
  h.base_score = base_score_;
  h.learning_rate = learning_rate_;
  h.section_count = 6;

  std::string out;
  out.reserve(sizeof(V2Header) + h.section_count * sizeof(V2Section) + nodes.size_bytes() +
              roots.size_bytes() + gains.size_bytes() + 4 * nodes.size() +
              scales.size() * sizeof(QuantScale) + 64);
  append_bytes(out, &h, sizeof h);
  const std::size_t table_at = out.size();
  out.append(h.section_count * sizeof(V2Section), '\0');  // backpatched below

  V2Section table[6] = {};
  const auto emit = [&](int slot, std::uint32_t kind, const void* data, std::uint64_t length) {
    pad8(out);
    table[slot] = V2Section{kind, 0, out.size(), length};
    if (length > 0) append_bytes(out, data, length);
  };
  emit(0, kSecNodes, nodes.data(), nodes.size_bytes());
  emit(1, kSecRoots, roots.data(), roots.size_bytes());
  emit(2, kSecGains, gains.data(), gains.size_bytes());
  emit(3, kSecValuesF16, f16.data(), f16.size() * 2);
  emit(4, kSecValuesI16, i16.data(), i16.size() * 2);
  emit(5, kSecQuantScales, scales.data(), scales.size() * sizeof(QuantScale));
  std::memcpy(out.data() + table_at, table, sizeof table);
  return out;
}

void GbdtModel::save_v2(const std::filesystem::path& path) const {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  fsio::write_file_atomic(path, serialize_v2());
}

GbdtModel GbdtModel::load_v2(const std::filesystem::path& path, QuantMode quant) {
  // Same chaos site as the text loader: a reload must isolate this throw
  // (registry keeps the previous snapshot; see tests/test_robustness.cpp).
  fault::throw_if(fault::Site::kModelTruncate, "truncated model file");

  auto map = std::make_shared<const util::MmapFile>(path);
  const std::byte* base = map->data();
  SectionMap sec;
  const V2Header h = parse_header(path, base, map->size(), &sec);
  if (sec.nodes == nullptr && h.num_nodes > 0) fail(path, "missing nodes section");
  if (sec.roots == nullptr && h.num_trees > 0) fail(path, "missing roots section");
  if (sec.gains == nullptr && h.num_nodes > 0) fail(path, "missing gains section");

  const auto* nodes = reinterpret_cast<const FlatNode*>(sec.nodes);
  const auto* roots = reinterpret_cast<const std::uint32_t*>(sec.roots);
  const auto* gains = reinterpret_cast<const double*>(sec.gains);

  for (std::uint64_t t = 0; t < h.num_trees; ++t) {
    const std::uint64_t begin = roots[t];
    const std::uint64_t end = t + 1 < h.num_trees ? roots[t + 1] : h.num_nodes;
    // Strictly increasing from 0 with every tree non-empty — the spans
    // partition [0, num_nodes) exactly.
    if ((t == 0 && begin != 0) || begin >= end || end > h.num_nodes) {
      fail(path, "roots not strictly increasing at tree " + std::to_string(t));
    }
    validate_tree(path, nodes, t, begin, end, h.num_features);
  }
  for (std::uint64_t i = 0; i < h.num_nodes; ++i) {
    if (!std::isfinite(gains[i])) fail(path, "non-finite gain at node " + std::to_string(i));
  }

  GbdtModel model;
  model.base_score_ = h.base_score;
  model.learning_rate_ = h.learning_rate;
  model.num_features_ = h.num_features;
  model.mapped_nodes_ = {nodes, h.num_nodes};
  model.mapped_roots_ = {roots, h.num_trees};
  model.mapped_gains_ = {gains, h.num_nodes};
  model.quant_mode_ = quant;
  if (quant == QuantMode::kFp16) {
    if (sec.f16 == nullptr) fail(path, "quant=fp16 requested but no fp16 section");
    const auto* f16 = reinterpret_cast<const std::uint16_t*>(sec.f16);
    for (std::uint64_t i = 0; i < h.num_nodes; ++i) {
      if ((f16[i] & 0x7C00u) == 0x7C00u) {
        fail(path, "non-finite fp16 value at node " + std::to_string(i));
      }
    }
    model.values_f16_ = {f16, h.num_nodes};
  } else if (quant == QuantMode::kInt16) {
    if (sec.i16 == nullptr || sec.scales == nullptr) {
      fail(path, "quant=int16 requested but no int16/scales sections");
    }
    const auto* scales = reinterpret_cast<const QuantScale*>(sec.scales);
    for (std::uint64_t t = 0; t < h.num_trees; ++t) {
      if (!std::isfinite(scales[t].thr_scale) || !std::isfinite(scales[t].thr_bias) ||
          !std::isfinite(scales[t].leaf_scale) || !std::isfinite(scales[t].leaf_bias)) {
        fail(path, "non-finite quant scale for tree " + std::to_string(t));
      }
    }
    model.values_i16_ = {reinterpret_cast<const std::int16_t*>(sec.i16), h.num_nodes};
    model.quant_scales_ = {scales, h.num_trees};
  }
  model.mmap_ = std::move(map);  // set last: is_mapped() flips the accessors
  return model;
}

ModelV2Info inspect_v2(const std::filesystem::path& path) {
  const util::MmapFile map(path);
  SectionMap sec;
  const V2Header h = parse_header(path, map.data(), map.size(), &sec);
  ModelV2Info info;
  info.version = h.version;
  info.num_trees = h.num_trees;
  info.num_nodes = h.num_nodes;
  info.num_features = h.num_features;
  info.base_score = h.base_score;
  info.learning_rate = h.learning_rate;
  info.has_fp16 = sec.f16 != nullptr;
  info.has_int16 = sec.i16 != nullptr && sec.scales != nullptr;
  info.file_size = map.size();
  return info;
}

}  // namespace aigml::ml
