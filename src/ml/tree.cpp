#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

namespace aigml::ml {

namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double gain = -std::numeric_limits<double>::infinity();
};

double structure_score(double g, double h, double lambda) { return g * g / (h + lambda); }

}  // namespace

void RegressionTree::fit(std::span<const double> x, std::size_t num_features,
                         std::span<const double> gradients, std::span<const double> hessians,
                         std::span<const std::size_t> rows, std::span<const int> features,
                         const TreeParams& params) {
  nodes_.clear();
  if (rows.empty()) {
    nodes_.push_back(TreeNode{});  // single zero leaf
    return;
  }
  std::vector<std::size_t> work(rows.begin(), rows.end());
  (void)build(x, num_features, gradients, hessians, work, 0, work.size(), features, params, 0);
}

int RegressionTree::build(std::span<const double> x, std::size_t num_features,
                          std::span<const double> gradients, std::span<const double> hessians,
                          std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
                          std::span<const int> features, const TreeParams& params, int depth) {
  double g_total = 0.0, h_total = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    g_total += gradients[rows[i]];
    h_total += hessians[rows[i]];
  }
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{});
  nodes_[static_cast<std::size_t>(node_index)].value = -g_total / (h_total + params.lambda);

  if (depth >= params.max_depth || end - begin < 2) return node_index;

  // Exact greedy: for each candidate feature sort the node's rows by value
  // and scan all distinct-value boundaries.
  SplitCandidate best;
  const double parent_score = structure_score(g_total, h_total, params.lambda);
  std::vector<std::size_t> sorted(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                  rows.begin() + static_cast<std::ptrdiff_t>(end));
  for (const int feature : features) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return x[a * num_features + static_cast<std::size_t>(feature)] <
             x[b * num_features + static_cast<std::size_t>(feature)];
    });
    double gl = 0.0, hl = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      gl += gradients[sorted[i]];
      hl += hessians[sorted[i]];
      const double v = x[sorted[i] * num_features + static_cast<std::size_t>(feature)];
      const double v_next = x[sorted[i + 1] * num_features + static_cast<std::size_t>(feature)];
      if (v == v_next) continue;  // can only split between distinct values
      const double hr = h_total - hl;
      if (hl < params.min_child_weight || hr < params.min_child_weight) continue;
      const double gr = g_total - gl;
      const double gain = 0.5 * (structure_score(gl, hl, params.lambda) +
                                 structure_score(gr, hr, params.lambda) - parent_score) -
                          params.gamma;
      if (gain > best.gain) {
        best.feature = feature;
        best.threshold = 0.5 * (v + v_next);
        best.gain = gain;
      }
    }
  }
  if (best.feature < 0 || best.gain <= 0.0) return node_index;

  // Partition rows in place around the threshold.
  const auto mid_iter = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin), rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) {
        return x[r * num_features + static_cast<std::size_t>(best.feature)] < best.threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_iter - rows.begin());
  if (mid == begin || mid == end) return node_index;  // numerical degeneracy

  nodes_[static_cast<std::size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best.threshold;
  nodes_[static_cast<std::size_t>(node_index)].gain = best.gain;
  const int left =
      build(x, num_features, gradients, hessians, rows, begin, mid, features, params, depth + 1);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  const int right =
      build(x, num_features, gradients, hessians, rows, mid, end, features, params, depth + 1);
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

double RegressionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) return 0.0;
  int index = 0;
  while (nodes_[static_cast<std::size_t>(index)].feature >= 0) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(index)];
    index = row[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(index)].value;
}

void RegressionTree::accumulate_importance(std::span<double> importance) const {
  for (const TreeNode& n : nodes_) {
    if (n.feature >= 0) importance[static_cast<std::size_t>(n.feature)] += n.gain;
  }
}

void RegressionTree::serialize(std::ostream& out) const {
  out.precision(17);  // shortest round-trip-safe double precision
  out << "tree " << nodes_.size() << "\n";
  for (const TreeNode& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right << ' ' << n.value
        << ' ' << n.gain << "\n";
  }
}

namespace {

/// Structural validation shared by deserialize() and from_nodes(): forward
/// child indices (rules out traversal cycles), finite values, and one
/// iterative DFS proving the nodes form a single tree of sane depth —
/// every node visited exactly once, all nodes reachable from the root,
/// depth bounded.  The range checks alone would still admit DAGs (two
/// parents sharing a child makes build_flat_forest's per-path DFS
/// exponential) and degenerate deep chains (recursion overflow).
void validate_nodes(const std::vector<TreeNode>& nodes, const char* where) {
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error(std::string(where) + ": " + why);
  };
  const int n_nodes = static_cast<int>(nodes.size());
  for (int index = 0; index < n_nodes; ++index) {
    const TreeNode& n = nodes[static_cast<std::size_t>(index)];
    if (!std::isfinite(n.threshold) || !std::isfinite(n.value)) {
      fail("non-finite node " + std::to_string(index));
    }
    if (n.feature >= 0) {
      // Children strictly after the parent: predict() walks monotonically
      // increasing indices, so this also rules out traversal cycles.
      if (n.left <= index || n.left >= n_nodes || n.right <= index || n.right >= n_nodes) {
        fail("child index out of range at node " + std::to_string(index));
      }
    }
  }
  if (nodes.empty()) return;
  constexpr int kMaxDepth = 64;  // paper-scale max_depth is 16
  std::vector<char> visited(nodes.size(), 0);
  std::vector<std::pair<int, int>> stack{{0, 0}};  // (node, depth)
  std::size_t visits = 0;
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    if (visited[static_cast<std::size_t>(index)] != 0) {
      fail("node " + std::to_string(index) + " has two parents (not a tree)");
    }
    if (depth > kMaxDepth) {
      fail("tree deeper than " + std::to_string(kMaxDepth));
    }
    visited[static_cast<std::size_t>(index)] = 1;
    ++visits;
    const TreeNode& n = nodes[static_cast<std::size_t>(index)];
    if (n.feature >= 0) {
      stack.push_back({n.right, depth + 1});
      stack.push_back({n.left, depth + 1});
    }
  }
  if (visits != nodes.size()) {
    fail(std::to_string(nodes.size() - visits) + " unreachable node(s)");
  }
}

}  // namespace

RegressionTree RegressionTree::deserialize(std::istream& in) {
  std::string token;
  std::size_t count = 0;
  if (!(in >> token >> count) || token != "tree") {
    throw std::runtime_error("RegressionTree::deserialize: expected 'tree <n>'");
  }
  // A count this large cannot come from a real model (trees are depth <= ~20,
  // so <= ~2^21 nodes); reject before resize() turns corruption into a
  // multi-gigabyte allocation.
  constexpr std::size_t kMaxNodes = std::size_t{1} << 26;
  if (count > kMaxNodes) {
    throw std::runtime_error("RegressionTree::deserialize: implausible node count " +
                             std::to_string(count));
  }
  RegressionTree t;
  t.nodes_.resize(count);
  for (std::size_t index = 0; index < count; ++index) {
    TreeNode& n = t.nodes_[index];
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.value >> n.gain)) {
      throw std::runtime_error("RegressionTree::deserialize: truncated node list");
    }
  }
  validate_nodes(t.nodes_, "RegressionTree::deserialize");
  return t;
}

RegressionTree RegressionTree::from_nodes(std::vector<TreeNode> nodes) {
  validate_nodes(nodes, "RegressionTree::from_nodes");
  RegressionTree t;
  t.nodes_ = std::move(nodes);
  return t;
}

}  // namespace aigml::ml
