#include "ml/model.hpp"

#include <fstream>
#include <stdexcept>

#include "features/features.hpp"
#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "ml/model_v2.hpp"

namespace aigml::ml {

const char* to_string(ModelFamily family) noexcept {
  switch (family) {
    case ModelFamily::kGbdt: return "gbdt";
    case ModelFamily::kGnn: return "gnn";
  }
  return "?";
}

ModelFamily model_family_from_name(const std::string& name) {
  if (name == "gbdt") return ModelFamily::kGbdt;
  if (name == "gnn") return ModelFamily::kGnn;
  throw std::invalid_argument("unknown model family '" + name + "' (expected gbdt | gnn)");
}

std::vector<double> Model::predict_all(std::span<const double> values,
                                       std::size_t num_rows) const {
  const std::size_t width = num_features();
  if (values.size() != num_rows * width) {
    throw std::invalid_argument("Model::predict_all: values.size() != num_rows * num_features");
  }
  std::vector<double> out;
  out.reserve(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) {
    out.push_back(predict(values.subspan(i * width, width)));
  }
  return out;
}

double Model::predict(const aig::Aig& g) const {
  const features::FeatureVector f = features::extract(g);
  return predict(std::span<const double>(f.data(), f.size()));
}

std::vector<double> Model::predict_graphs(std::span<const aig::Aig* const> graphs) const {
  std::vector<double> out;
  out.reserve(graphs.size());
  for (const aig::Aig* g : graphs) out.push_back(predict(*g));
  return out;
}

namespace {

/// First four bytes of `path` ("" on any read failure) — the magic sniff
/// for files whose extension does not already decide the family.
std::string read_magic(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() != 4) return {};
  return std::string(magic, 4);
}

}  // namespace

std::shared_ptr<const Model> load_model_any(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  if (ext == kModelV2Extension) {
    return std::make_shared<const GbdtModel>(GbdtModel::load_v2(path));
  }
  if (ext == kGnnExtension) {
    return std::make_shared<const GnnModel>(GnnModel::load(path));
  }
  if (ext == ".gbdt") {
    return std::make_shared<const GbdtModel>(GbdtModel::load(path));
  }
  const std::string magic = read_magic(path);
  if (magic == "GBT2") return std::make_shared<const GbdtModel>(GbdtModel::load_v2(path));
  if (magic == "AGNN") return std::make_shared<const GnnModel>(GnnModel::load(path));
  if (magic == "gbdt") return std::make_shared<const GbdtModel>(GbdtModel::load(path));
  throw std::runtime_error("load_model_any: " + path.string() +
                           ": unrecognized model file (expected .gbdt, .gbdt2, or .gnn)");
}

const GbdtModel& require_gbdt(const Model& model, const std::string& context) {
  const auto* gbdt = dynamic_cast<const GbdtModel*>(&model);
  if (gbdt == nullptr) {
    throw std::invalid_argument(context + ": needs a gbdt model, got family=" +
                                to_string(model.family()));
  }
  return *gbdt;
}

}  // namespace aigml::ml
