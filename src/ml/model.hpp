#pragma once
// Model — the family-agnostic inference interface (DESIGN.md §14).
//
// Every layer that consumes predictions (serve::ModelRegistry /
// PredictService, the opt:: cost evaluators, learn::Retrainer, the CLI)
// talks to this interface instead of a concrete model class, so a second
// family — today the message-passing GNN, tomorrow anything else — plugs
// into serving, search, and active learning without touching those layers
// again.
//
// Two input shapes exist because the families genuinely differ:
//
//   * flat feature rows (Table II, features::kNumFeatures doubles) — the
//     GBDT's native input; predict(row) / predict_all(matrix).
//   * the AIG itself — the GNN's native input; predict(graph) /
//     predict_graphs(batch).
//
// Every model answers graph queries: feature-based families default to
// features::extract(g) -> predict(row) (extraction is a pure function of
// the graph, so this is exactly what their callers did by hand).  The
// reverse is NOT true: a graph-native model has no meaningful answer for a
// bare feature row and throws — callers that only have rows must check
// needs_graph() first (serve::PredictService does, per request).
//
// Serialization dispatch: each family owns an on-disk extension
// (.gbdt/.gbdt2 vs .gnn) and a leading magic; load_any() sniffs both so a
// registry directory can mix families freely.  save() always writes the
// family's preferred container through fsio::write_file_atomic semantics
// (GBDT: the .gbdt2 path; GNN: the .gnn container).

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace aigml::ml {

enum class ModelFamily : std::uint8_t { kGbdt = 0, kGnn = 1 };

[[nodiscard]] const char* to_string(ModelFamily family) noexcept;
/// Parses "gbdt" | "gnn"; throws std::invalid_argument otherwise.
[[nodiscard]] ModelFamily model_family_from_name(const std::string& name);

/// On-disk extension of the GNN binary container (model.cpp / gnn.cpp).
inline constexpr const char* kGnnExtension = ".gnn";

class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual ModelFamily family() const noexcept = 0;
  /// True when predictions require graph structure — flat feature rows are
  /// rejected (predict(row) throws) and callers must route the AIG itself.
  [[nodiscard]] virtual bool needs_graph() const noexcept { return false; }

  /// Flat-input width for feature families; per-node feature width for
  /// graph families (display / sanity checks — NOT a row width for them).
  [[nodiscard]] virtual std::size_t num_features() const noexcept = 0;
  /// Ensemble size for tree families; 0 for families without a forest
  /// (keeps registry listings and banners family-agnostic).
  [[nodiscard]] virtual std::size_t num_trees() const noexcept { return 0; }

  /// Predicts from one flat feature row.  Graph-native families throw
  /// std::logic_error naming the family.
  [[nodiscard]] virtual double predict(std::span<const double> row) const = 0;
  /// Batch over a row-major matrix (values.size() == num_rows *
  /// num_features()).  Default: a scalar loop; families with a batched
  /// kernel override (GBDT's branchless tiled walk) — always bit-identical
  /// to the scalar loop.
  [[nodiscard]] virtual std::vector<double> predict_all(std::span<const double> values,
                                                        std::size_t num_rows) const;

  /// Predicts from the graph.  Default for feature families:
  /// features::extract(g) -> predict(row).
  [[nodiscard]] virtual double predict(const aig::Aig& g) const;
  /// Batch over graphs, order-preserving.  Default: a scalar loop; the GNN
  /// overrides with one batched message-passing pass over the concatenated
  /// batch, bit-identical to per-graph predict (DESIGN.md §14).
  [[nodiscard]] virtual std::vector<double> predict_graphs(
      std::span<const aig::Aig* const> graphs) const;

  /// Writes this model in its family's container format (atomically where
  /// the family supports it; see the class comment).
  virtual void save(const std::filesystem::path& path) const = 0;
};

/// Loads any known model file as an immutable snapshot, dispatching on
/// extension first (.gbdt2 / .gbdt / .gnn) and on the leading magic bytes
/// for unknown extensions.  Throws std::runtime_error with an actionable
/// message for unrecognized or malformed files.
[[nodiscard]] std::shared_ptr<const Model> load_model_any(const std::filesystem::path& path);

// Forward declared here so require_gbdt can return the concrete type; the
// definition lives in gbdt.hpp.
class GbdtModel;

/// Downcast helper for call sites that genuinely need the GBDT (warm-start
/// residual fits, quantized containers, `aigml convert`).  Throws
/// std::invalid_argument naming `context` and the actual family when the
/// model is not a GBDT.
[[nodiscard]] const GbdtModel& require_gbdt(const Model& model, const std::string& context);

}  // namespace aigml::ml
