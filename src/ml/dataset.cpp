#include "ml/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace aigml::ml {

void Dataset::append(std::span<const double> features, double label, std::string tag) {
  if (features.size() != num_features()) {
    throw std::invalid_argument("Dataset::append: feature width mismatch");
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
  tags_.push_back(std::move(tag));
}

std::vector<std::size_t> Dataset::rows_with_tag(const std::string& tag) const {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] == tag) rows.push_back(i);
  }
  return rows;
}

std::vector<std::string> Dataset::distinct_tags() const {
  std::vector<std::string> tags;
  for (const auto& t : tags_) {
    if (std::find(tags.begin(), tags.end(), t) == tags.end()) tags.push_back(t);
  }
  return tags;
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out(feature_names_);
  for (const std::size_t i : rows) out.append(row(i), labels_[i], tags_[i]);
  return out;
}

void Dataset::merge(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    throw std::invalid_argument("Dataset::merge: schema mismatch");
  }
  for (std::size_t i = 0; i < other.num_rows(); ++i) {
    append(other.row(i), other.labels_[i], other.tags_[i]);
  }
}

void Dataset::save(const std::filesystem::path& path) const {
  std::vector<std::string> header{"tag"};
  header.insert(header.end(), feature_names_.begin(), feature_names_.end());
  header.push_back("label");
  CsvTable table(header);
  for (std::size_t i = 0; i < num_rows(); ++i) {
    std::vector<std::string> fields;
    fields.reserve(header.size());
    fields.push_back(tags_[i]);
    for (const double v : row(i)) fields.push_back(format_double(v));
    fields.push_back(format_double(labels_[i]));
    table.add_row(std::move(fields));
  }
  table.save(path);
}

std::optional<Dataset> Dataset::load(const std::filesystem::path& path) {
  const auto table = CsvTable::load(path);
  if (!table.has_value() || table->num_cols() < 2) return std::nullopt;
  const auto& header = table->header();
  if (header.front() != "tag" || header.back() != "label") return std::nullopt;
  Dataset out(std::vector<std::string>(header.begin() + 1, header.end() - 1));
  std::vector<double> features(out.num_features());
  for (std::size_t r = 0; r < table->num_rows(); ++r) {
    for (std::size_t f = 0; f < out.num_features(); ++f) {
      features[f] = table->cell_as_double(r, f + 1);
    }
    out.append(features, table->cell_as_double(r, table->num_cols() - 1), table->cell(r, 0));
  }
  return out;
}

}  // namespace aigml::ml
