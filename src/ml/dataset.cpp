#include "ml/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace aigml::ml {

void Dataset::append(std::span<const double> features, double label, std::string tag,
                     std::uint64_t key) {
  if (features.size() != num_features()) {
    throw std::invalid_argument("Dataset::append: feature width mismatch");
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
  tags_.push_back(std::move(tag));
  keys_.push_back(key);
}

std::vector<std::size_t> Dataset::rows_with_tag(const std::string& tag) const {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] == tag) rows.push_back(i);
  }
  return rows;
}

std::vector<std::string> Dataset::distinct_tags() const {
  std::vector<std::string> tags;
  for (const auto& t : tags_) {
    if (std::find(tags.begin(), tags.end(), t) == tags.end()) tags.push_back(t);
  }
  return tags;
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out(feature_names_);
  for (const std::size_t i : rows) out.append(row(i), labels_[i], tags_[i], keys_[i]);
  return out;
}

void Dataset::append_rows(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    throw std::invalid_argument("Dataset::append_rows: schema mismatch");
  }
  for (std::size_t i = 0; i < other.num_rows(); ++i) {
    append(other.row(i), other.labels_[i], other.tags_[i], other.keys_[i]);
  }
}

std::size_t Dataset::merge_dedup(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    throw std::invalid_argument("Dataset::merge_dedup: schema mismatch");
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(keys_.size());
  for (const std::uint64_t k : keys_) {
    if (k != 0) seen.insert(k);
  }
  std::size_t appended = 0;
  for (std::size_t i = 0; i < other.num_rows(); ++i) {
    const std::uint64_t k = other.keys_[i];
    if (k != 0 && !seen.insert(k).second) continue;
    append(other.row(i), other.labels_[i], other.tags_[i], k);
    ++appended;
  }
  return appended;
}

Dataset Dataset::sorted_by_key() const {
  std::vector<std::size_t> order(num_rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Unkeyed rows (key 0) keep their positions ahead of every keyed row; keyed
  // rows sort by key.  stable_sort preserves insertion order within ties, but
  // after merge_dedup keyed ties cannot exist.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const bool a_keyed = keys_[a] != 0, b_keyed = keys_[b] != 0;
    if (a_keyed != b_keyed) return !a_keyed;
    if (!a_keyed) return false;  // unkeyed rows keep relative order
    return keys_[a] < keys_[b];
  });
  return subset(order);
}

void Dataset::save(const std::filesystem::path& path) const {
  // Keyed datasets persist their dedup identity as a second column, so
  // merge_dedup / seed_known work across processes (the learn/ loop loads
  // base CSVs written by datagen); unkeyed datasets keep the legacy
  // tag,<features>,label schema byte-for-byte.
  bool keyed = false;
  for (const std::uint64_t k : keys_) keyed = keyed || k != 0;
  std::vector<std::string> header{"tag"};
  if (keyed) header.push_back("key");
  header.insert(header.end(), feature_names_.begin(), feature_names_.end());
  header.push_back("label");
  CsvTable table(header);
  for (std::size_t i = 0; i < num_rows(); ++i) {
    std::vector<std::string> fields;
    fields.reserve(header.size());
    fields.push_back(tags_[i]);
    if (keyed) fields.push_back(std::to_string(keys_[i]));
    for (const double v : row(i)) fields.push_back(format_double(v));
    fields.push_back(format_double(labels_[i]));
    table.add_row(std::move(fields));
  }
  table.save(path);
}

std::optional<Dataset> Dataset::load(const std::filesystem::path& path) {
  const auto table = CsvTable::load(path);
  if (!table.has_value() || table->num_cols() < 2) return std::nullopt;
  const auto& header = table->header();
  if (header.front() != "tag" || header.back() != "label") return std::nullopt;
  const bool keyed = header.size() >= 3 && header[1] == "key";
  const std::size_t first_feature = keyed ? 2 : 1;
  Dataset out(std::vector<std::string>(header.begin() + static_cast<std::ptrdiff_t>(first_feature),
                                       header.end() - 1));
  std::vector<double> features(out.num_features());
  for (std::size_t r = 0; r < table->num_rows(); ++r) {
    for (std::size_t f = 0; f < out.num_features(); ++f) {
      features[f] = table->cell_as_double(r, f + first_feature);
    }
    const std::uint64_t key = keyed ? std::stoull(table->cell(r, 1)) : 0;
    out.append(features, table->cell_as_double(r, table->num_cols() - 1), table->cell(r, 0),
               key);
  }
  return out;
}

}  // namespace aigml::ml
