#pragma once
// Gradient-boosted regression trees, XGBoost-style (the paper's model:
// "implemented using XGBoost ... trained using RMSE as the loss function").
//
// Squared loss => per-round gradients g_i = pred_i - y_i, hessians h_i = 1.
// Supported knobs mirror the paper's grid-searched hyperparameters:
// learning rate (0.01), max tree depth (16), number of estimators (5000),
// and row subsampling ratio (0.8), plus column subsampling, L2 leaf
// regularization, and optional early stopping on a validation split.
// Repo-scale defaults are smaller (see DESIGN.md §4); paper values are
// selected by flow::paper_scale_hparams().

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace aigml::ml {

struct GbdtParams {
  int num_trees = 400;
  int max_depth = 6;
  double learning_rate = 0.06;
  double subsample = 0.7;        ///< row sampling ratio per tree
  double colsample = 0.8;        ///< feature sampling ratio per tree
  double lambda = 1.0;
  double gamma = 0.0;
  double min_child_weight = 8.0;
  std::uint64_t seed = 0x6b0057ULL;
  /// Stop when validation RMSE has not improved for this many rounds
  /// (0 = disabled; requires a validation set passed to train()).
  int early_stopping_rounds = 0;
};

/// The paper's grid-searched hyperparameters (Sec. III-C).
[[nodiscard]] GbdtParams paper_gbdt_params();

struct TrainLog {
  std::vector<double> train_rmse;  ///< per boosting round
  std::vector<double> valid_rmse;  ///< per round (empty without validation)
  int best_round = 0;              ///< rounds actually kept after early stop
  double train_seconds = 0.0;
};

class GbdtModel {
 public:
  /// Trains on `train`; optional `valid` enables early stopping and the
  /// validation curve in the log.
  ///
  /// `warm_start` continues boosting from an existing ensemble instead of
  /// from the label mean: the returned model keeps every warm tree plus its
  /// base score, and fits `params.num_trees` *additional* rounds against the
  /// residuals of the warm model's predictions on `train` — the cheap
  /// "refresh on base + harvested rows" fit the active-learning loop
  /// (learn::Retrainer) runs in-search.  Because predict() applies one
  /// shrinkage factor to every leaf, params.learning_rate must equal the
  /// warm model's rate (std::invalid_argument otherwise), and the feature
  /// widths must match.
  static GbdtModel train(const Dataset& train, const GbdtParams& params,
                         const Dataset* valid = nullptr, TrainLog* log = nullptr,
                         const GbdtModel* warm_start = nullptr);

  [[nodiscard]] double predict(std::span<const double> row) const;
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;
  /// Batch inference over a row-major matrix of `num_rows` feature rows
  /// (values.size() == num_rows * num_features()).  One streaming pass over
  /// the flat forest; bit-identical to calling predict() per row.
  [[nodiscard]] std::vector<double> predict_all(std::span<const double> values,
                                                std::size_t num_rows) const;

  [[nodiscard]] std::size_t num_trees() const noexcept { return trees_.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return num_features_; }
  [[nodiscard]] double base_score() const noexcept { return base_score_; }
  /// Per-leaf shrinkage factor (warm-start fits must match it).
  [[nodiscard]] double learning_rate() const noexcept { return learning_rate_; }

  /// Total split gain per feature, normalized to sum to 1 (0 when unused).
  [[nodiscard]] std::vector<double> feature_importance() const;

  void serialize(std::ostream& out) const;
  [[nodiscard]] static GbdtModel deserialize(std::istream& in);
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static GbdtModel load(const std::filesystem::path& path);

 private:
  /// One node of the inference-optimized forest: the whole ensemble lives in
  /// a single contiguous array laid out tree-by-tree in DFS pre-order, so a
  /// left descent is always `index + 1` and only the right-child index is
  /// stored.  16 bytes/node (vs 40 for TreeNode) and no per-tree pointer
  /// chasing — predict() streams through one allocation.
  struct FlatNode {
    std::int32_t feature = -1;  ///< split feature; -1 marks a leaf
    std::int32_t right = 0;     ///< right-child index (internal nodes only)
    double value = 0.0;         ///< internal: threshold; leaf: leaf weight
  };

  /// Rebuilds flat_nodes_/flat_roots_ from trees_ (called after train/load).
  void build_flat_forest();

  std::vector<RegressionTree> trees_;
  std::vector<FlatNode> flat_nodes_;
  std::vector<std::uint32_t> flat_roots_;  ///< root index per tree
  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  std::size_t num_features_ = 0;
};

// ---- metrics ------------------------------------------------------------------

[[nodiscard]] double rmse(std::span<const double> predicted, std::span<const double> truth);
[[nodiscard]] double mae(std::span<const double> predicted, std::span<const double> truth);
/// Coefficient of determination; 0 for degenerate inputs.
[[nodiscard]] double r_squared(std::span<const double> predicted, std::span<const double> truth);

}  // namespace aigml::ml
