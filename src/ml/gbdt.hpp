#pragma once
// Gradient-boosted regression trees, XGBoost-style (the paper's model:
// "implemented using XGBoost ... trained using RMSE as the loss function").
//
// Squared loss => per-round gradients g_i = pred_i - y_i, hessians h_i = 1.
// Supported knobs mirror the paper's grid-searched hyperparameters:
// learning rate (0.01), max tree depth (16), number of estimators (5000),
// and row subsampling ratio (0.8), plus column subsampling, L2 leaf
// regularization, and optional early stopping on a validation split.
// Repo-scale defaults are smaller (see DESIGN.md §4); paper values are
// selected by flow::paper_scale_hparams().

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace aigml::util {
class MmapFile;
}

namespace aigml::ml {

/// Leaf/threshold representation used at inference time (DESIGN.md §13).
/// kNone reads the container's fp64 values and is bit-identical to the text
/// loader's scalar walk; kFp16/kInt16 read the .gbdt2 quantized sections
/// (IEEE binary16, resp. per-tree affine int16) — smaller working set at a
/// bounded relative error measured per forest by tests/test_model_v2.cpp.
enum class QuantMode : std::uint8_t { kNone = 0, kFp16 = 1, kInt16 = 2 };

[[nodiscard]] const char* to_string(QuantMode mode) noexcept;
/// Parses "none" | "fp16" | "int16"; throws std::invalid_argument otherwise.
[[nodiscard]] QuantMode quant_mode_from_name(const std::string& name);

/// Per-tree affine decode parameters for the int16 quantized section:
/// threshold = q * thr_scale + thr_bias, leaf = q * leaf_scale + leaf_bias.
/// Thresholds and leaves get separate ranges because their magnitudes differ
/// by orders of magnitude (raw feature units vs shrunken leaf weights).
struct QuantScale {
  double thr_scale = 0.0;
  double thr_bias = 0.0;
  double leaf_scale = 0.0;
  double leaf_bias = 0.0;
};

struct GbdtParams {
  int num_trees = 400;
  int max_depth = 6;
  double learning_rate = 0.06;
  double subsample = 0.7;        ///< row sampling ratio per tree
  double colsample = 0.8;        ///< feature sampling ratio per tree
  double lambda = 1.0;
  double gamma = 0.0;
  double min_child_weight = 8.0;
  std::uint64_t seed = 0x6b0057ULL;
  /// Stop when validation RMSE has not improved for this many rounds
  /// (0 = disabled; requires a validation set passed to train()).
  int early_stopping_rounds = 0;
};

/// The paper's grid-searched hyperparameters (Sec. III-C).
[[nodiscard]] GbdtParams paper_gbdt_params();

struct TrainLog {
  std::vector<double> train_rmse;  ///< per boosting round
  std::vector<double> valid_rmse;  ///< per round (empty without validation)
  int best_round = 0;              ///< rounds actually kept after early stop
  double train_seconds = 0.0;
};

class GbdtModel final : public Model {
 public:
  // Model interface (model.hpp): the flat-feature tree family.
  [[nodiscard]] ModelFamily family() const noexcept override { return ModelFamily::kGbdt; }
  // Graph-input entry points ride the base defaults (features::extract ->
  // the row walk); un-hide them next to the row overloads below.
  using Model::predict;
  using Model::predict_all;

  /// One node of the inference-optimized forest: the whole ensemble lives in
  /// a single contiguous array laid out tree-by-tree in DFS pre-order, so a
  /// left descent is always `index + 1` and only the right-child index is
  /// stored.  16 bytes/node (vs 40 for TreeNode) and no per-tree pointer
  /// chasing — predict() streams through one allocation.  This struct is
  /// also the exact on-disk record of the .gbdt2 kNodes section (leaves
  /// store right == 0), which is what makes the mmap load zero-copy.
  struct FlatNode {
    std::int32_t feature = -1;  ///< split feature; -1 marks a leaf
    std::int32_t right = 0;     ///< right-child index (internal nodes only)
    double value = 0.0;         ///< internal: threshold; leaf: leaf weight
  };

  /// Trains on `train`; optional `valid` enables early stopping and the
  /// validation curve in the log.
  ///
  /// `warm_start` continues boosting from an existing ensemble instead of
  /// from the label mean: the returned model keeps every warm tree plus its
  /// base score, and fits `params.num_trees` *additional* rounds against the
  /// residuals of the warm model's predictions on `train` — the cheap
  /// "refresh on base + harvested rows" fit the active-learning loop
  /// (learn::Retrainer) runs in-search.  Because predict() applies one
  /// shrinkage factor to every leaf, params.learning_rate must equal the
  /// warm model's rate (std::invalid_argument otherwise), and the feature
  /// widths must match.
  static GbdtModel train(const Dataset& train, const GbdtParams& params,
                         const Dataset* valid = nullptr, TrainLog* log = nullptr,
                         const GbdtModel* warm_start = nullptr);

  [[nodiscard]] double predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;
  /// Batch inference over a row-major matrix of `num_rows` feature rows
  /// (values.size() == num_rows * num_features()).  Rows are transposed to
  /// SoA tiles of 16 and descend a branchless packed form of the flat
  /// forest, 8 register-resident walks at a time (DESIGN.md §13) — the
  /// descend step is compare + setcc + indexed load with no data-dependent
  /// branch, so the independent walks overlap in the out-of-order core
  /// instead of stalling on the ~50%-mispredicted descent branch the scalar
  /// walk pays.  Accumulation order per row is identical to predict(), so
  /// the result is bit-identical to the scalar walk for every batch shape
  /// at every QuantMode.
  [[nodiscard]] std::vector<double> predict_all(std::span<const double> values,
                                                std::size_t num_rows) const override;

  [[nodiscard]] std::size_t num_trees() const noexcept override {
    return trees_.empty() ? forest_roots().size() : trees_.size();
  }
  [[nodiscard]] std::size_t num_features() const noexcept override { return num_features_; }
  [[nodiscard]] double base_score() const noexcept { return base_score_; }
  /// Per-leaf shrinkage factor (warm-start fits must match it).
  [[nodiscard]] double learning_rate() const noexcept { return learning_rate_; }

  /// Total split gain per feature, normalized to sum to 1 (0 when unused).
  [[nodiscard]] std::vector<double> feature_importance() const;

  void serialize(std::ostream& out) const;
  [[nodiscard]] static GbdtModel deserialize(std::istream& in);
  /// Writes the text format — except when `path` ends in .gbdt2, which
  /// routes to save_v2 (the Model-interface dispatch: one save() call works
  /// for either container).
  void save(const std::filesystem::path& path) const override;
  [[nodiscard]] static GbdtModel load(const std::filesystem::path& path);

  // ---- .gbdt2 binary container (model_v2.cpp; format in DESIGN.md §13) ----

  /// The complete .gbdt2 container as bytes (header, section table, flat
  /// forest, gains, and both quantized value sections).
  [[nodiscard]] std::string serialize_v2() const;
  /// serialize_v2() through fsio::write_file_atomic — a reader (or a crash)
  /// at any instant sees the old container or the new one, never a torn one.
  void save_v2(const std::filesystem::path& path) const;
  /// Zero-copy load: mmaps `path` and validates every section against the
  /// mapped bytes (bounds, alignment, exact DFS pre-order tree structure,
  /// forward child indices, finiteness) before any prediction can touch
  /// them; hostile input throws std::runtime_error, never crashes or
  /// allocates proportionally to a corrupt count.  The returned model's
  /// node/root/gain spans view the mapping directly; the mapping is held by
  /// shared_ptr and outlives every copy of the model (registry snapshots
  /// keep serving across hot-swaps — mmapfile.hpp lifetime contract).
  [[nodiscard]] static GbdtModel load_v2(const std::filesystem::path& path,
                                         QuantMode quant = QuantMode::kNone);

  /// Inference-time value representation (kNone unless load_v2 selected a
  /// quantized section).
  [[nodiscard]] QuantMode quant_mode() const noexcept { return quant_mode_; }
  /// True when this model's forest views an mmap'ed .gbdt2 container.
  [[nodiscard]] bool is_mapped() const noexcept { return mmap_ != nullptr; }

  /// The flat forest, wherever it lives (owned vectors for trained/text
  /// models, the mmap'ed container for v2 models).
  [[nodiscard]] std::span<const FlatNode> forest_nodes() const noexcept {
    return mmap_ != nullptr ? mapped_nodes_ : std::span<const FlatNode>(flat_nodes_);
  }
  [[nodiscard]] std::span<const std::uint32_t> forest_roots() const noexcept {
    return mmap_ != nullptr ? mapped_roots_ : std::span<const std::uint32_t>(flat_roots_);
  }
  /// Split gain per flat node (0 for leaves) — feeds feature_importance()
  /// and keeps text export faithful for v2-loaded models (only the unused
  /// internal-node value column of the text format is not containerized).
  [[nodiscard]] std::span<const double> forest_gains() const noexcept {
    return mmap_ != nullptr ? mapped_gains_ : std::span<const double>(flat_gains_);
  }

  /// The ensemble as per-tree node lists: a copy of the training-time trees
  /// when present, otherwise (v2-loaded models) reconstructed from the flat
  /// forest + gains.  Feeds warm-start training and text serialization.
  [[nodiscard]] std::vector<RegressionTree> export_trees() const;

 private:
  /// Rebuilds flat_nodes_/flat_roots_/flat_gains_ from trees_ (called after
  /// train/load).
  void build_flat_forest();

  template <QuantMode Q>
  [[nodiscard]] double predict_row(std::span<const double> row) const;
  template <QuantMode Q>
  [[nodiscard]] std::vector<double> predict_all_impl(std::span<const double> values,
                                                     std::size_t num_rows) const;

  std::vector<RegressionTree> trees_;   ///< empty for v2-loaded models
  std::vector<FlatNode> flat_nodes_;
  std::vector<std::uint32_t> flat_roots_;  ///< root index per tree
  std::vector<double> flat_gains_;         ///< per flat node; 0 for leaves
  double base_score_ = 0.0;
  double learning_rate_ = 0.0;
  std::size_t num_features_ = 0;

  // v2 zero-copy state: the mapping plus spans into it.  Copying the model
  // copies the shared_ptr, so the spans stay valid in every copy; for
  // non-mapped models these are empty and the accessors fall back to the
  // owned vectors (a copy's spans never dangle into another instance).
  std::shared_ptr<const util::MmapFile> mmap_;
  std::span<const FlatNode> mapped_nodes_;
  std::span<const std::uint32_t> mapped_roots_;
  std::span<const double> mapped_gains_;
  QuantMode quant_mode_ = QuantMode::kNone;
  std::span<const std::uint16_t> values_f16_;   ///< IEEE binary16 per node
  std::span<const std::int16_t> values_i16_;    ///< affine int16 per node
  std::span<const QuantScale> quant_scales_;    ///< per tree (int16 decode)
};

// ---- metrics ------------------------------------------------------------------

[[nodiscard]] double rmse(std::span<const double> predicted, std::span<const double> truth);
[[nodiscard]] double mae(std::span<const double> predicted, std::span<const double> truth);
/// Coefficient of determination; 0 for degenerate inputs.
[[nodiscard]] double r_squared(std::span<const double> predicted, std::span<const double> truth);

}  // namespace aigml::ml
