#include "ml/gnn.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "aig/analysis.hpp"
#include "util/fsio.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace aigml::ml {

using aig::Aig;
using aig::NodeId;

namespace {

/// Graph tensors shared by forward and backward passes (the per-graph
/// reference layout: one small adjacency vector per node).
struct GraphData {
  std::size_t n = 0;
  std::vector<double> x;                      // n x kGnnNodeFeatures
  std::vector<std::vector<std::uint32_t>> fanins;
  std::vector<std::vector<std::uint32_t>> fanouts;
};

/// Fills one node's feature row and reports its fanin vars — the single
/// source of truth for node featurization, shared by the per-graph and the
/// batched preparation so they cannot drift apart.
inline void fill_node_features(const Aig& g, NodeId id, const std::vector<std::uint32_t>& levels,
                               const std::vector<std::uint32_t>& fanout, double max_level,
                               double* row) {
  row[0] = g.is_input(id) ? 1.0 : 0.0;
  row[1] = g.is_and(id) ? 1.0 : 0.0;
  row[2] = g.is_and(id) && aig::lit_is_complemented(g.fanin0(id)) ? 1.0 : 0.0;
  row[3] = g.is_and(id) && aig::lit_is_complemented(g.fanin1(id)) ? 1.0 : 0.0;
  row[4] = static_cast<double>(levels[id]) / max_level;
  row[5] = std::log2(1.0 + static_cast<double>(fanout[id])) / 6.0;
}

GraphData prepare(const Aig& g) {
  GraphData d;
  d.n = g.num_nodes();
  d.x.assign(d.n * kGnnNodeFeatures, 0.0);
  d.fanins.resize(d.n);
  d.fanouts.resize(d.n);
  const auto levels = aig::levels(g);
  const auto fanout = aig::fanout_counts(g);
  const double max_level =
      std::max<double>(1.0, *std::max_element(levels.begin(), levels.end()));
  for (NodeId id = 0; id < d.n; ++id) {
    double* row = d.x.data() + static_cast<std::size_t>(id) * kGnnNodeFeatures;
    fill_node_features(g, id, levels, fanout, max_level, row);
    if (g.is_and(id)) {
      const NodeId v0 = aig::lit_var(g.fanin0(id));
      const NodeId v1 = aig::lit_var(g.fanin1(id));
      d.fanins[id].push_back(v0);
      if (v1 != v0) d.fanins[id].push_back(v1);
      d.fanouts[v0].push_back(id);
      if (v1 != v0) d.fanouts[v1].push_back(id);
    }
  }
  return d;
}

/// y[v] = mean over neighbors of x (both n x dim, row-major).
void mean_aggregate(const std::vector<std::vector<std::uint32_t>>& nbrs,
                    std::span<const double> x, int dim, std::vector<double>& y) {
  y.assign(x.size(), 0.0);
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    if (nbrs[v].empty()) continue;
    double* out = y.data() + v * static_cast<std::size_t>(dim);
    for (const std::uint32_t u : nbrs[v]) {
      const double* in = x.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(dim);
      for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] += in[static_cast<std::size_t>(k)];
    }
    const double inv = 1.0 / static_cast<double>(nbrs[v].size());
    for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] *= inv;
  }
}

/// Scatter of mean_aggregate: dx[u] += dy[v] / |nbrs(v)| for u in nbrs(v).
void mean_aggregate_backward(const std::vector<std::vector<std::uint32_t>>& nbrs,
                             std::span<const double> dy, int dim, std::vector<double>& dx) {
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    if (nbrs[v].empty()) continue;
    const double inv = 1.0 / static_cast<double>(nbrs[v].size());
    const double* grad = dy.data() + v * static_cast<std::size_t>(dim);
    for (const std::uint32_t u : nbrs[v]) {
      double* out = dx.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(dim);
      for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] += grad[static_cast<std::size_t>(k)] * inv;
    }
  }
}

/// y (n x dout) += x (n x din) * W (din x dout).  The `xv == 0.0` skip is a
/// load-bearing part of the numeric contract: both the reference and the
/// batched engine call this exact function, so a sparse input row takes the
/// identical sequence of additions on both paths.
void matmul_add(std::span<const double> x, std::size_t n, int din, std::span<const double> w,
                int dout, std::span<double> y) {
  for (std::size_t v = 0; v < n; ++v) {
    const double* xi = x.data() + v * static_cast<std::size_t>(din);
    double* yi = y.data() + v * static_cast<std::size_t>(dout);
    for (int i = 0; i < din; ++i) {
      const double xv = xi[static_cast<std::size_t>(i)];
      if (xv == 0.0) continue;
      const double* wi = w.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dout);
      for (int j = 0; j < dout; ++j) yi[static_cast<std::size_t>(j)] += xv * wi[static_cast<std::size_t>(j)];
    }
  }
}

/// dW (din x dout) += x^T (n x din) * dy (n x dout); dx += dy * W^T.
void matmul_backward(std::span<const double> x, std::size_t n, int din,
                     std::span<const double> w, int dout, std::span<const double> dy,
                     std::vector<double>& dw, std::vector<double>* dx) {
  for (std::size_t v = 0; v < n; ++v) {
    const double* xi = x.data() + v * static_cast<std::size_t>(din);
    const double* gi = dy.data() + v * static_cast<std::size_t>(dout);
    for (int i = 0; i < din; ++i) {
      const double xv = xi[static_cast<std::size_t>(i)];
      double* dwi = dw.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dout);
      double acc = 0.0;
      const double* wi = w.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dout);
      for (int j = 0; j < dout; ++j) {
        dwi[static_cast<std::size_t>(j)] += xv * gi[static_cast<std::size_t>(j)];
        acc += gi[static_cast<std::size_t>(j)] * wi[static_cast<std::size_t>(j)];
      }
      if (dx != nullptr) (*dx)[v * static_cast<std::size_t>(din) + static_cast<std::size_t>(i)] += acc;
    }
  }
}

struct LayerDims {
  int din = 0;
  int dout = 0;
  [[nodiscard]] std::size_t param_count() const {
    return 3 * static_cast<std::size_t>(din) * static_cast<std::size_t>(dout) +
           static_cast<std::size_t>(dout);
  }
};

std::vector<LayerDims> layer_dims(const GnnParams& params) {
  std::vector<LayerDims> dims;
  int din = kGnnNodeFeatures;
  for (int l = 0; l < params.layers; ++l) {
    dims.push_back(LayerDims{din, params.hidden});
    din = params.hidden;
  }
  return dims;
}

struct Adam {
  std::vector<double> m, v;
  int t = 0;
  void init(std::size_t n) {
    m.assign(n, 0.0);
    v.assign(n, 0.0);
    t = 0;
  }
  void step(std::vector<double>& params, std::span<const double> grads, const GnnParams& p) {
    ++t;
    const double correction1 = 1.0 - std::pow(p.beta1, t);
    const double correction2 = 1.0 - std::pow(p.beta2, t);
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = p.beta1 * m[i] + (1.0 - p.beta1) * grads[i];
      v[i] = p.beta2 * v[i] + (1.0 - p.beta2) * grads[i] * grads[i];
      const double mhat = m[i] / correction1;
      const double vhat = v[i] / correction2;
      params[i] -= p.learning_rate * mhat / (std::sqrt(vhat) + 1e-8);
    }
  }
};

/// FNV-1a 64 over raw bytes (the .gnn container's integrity word — same
/// role as the replay file's per-record checksum, learn/replay.cpp).
std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// .gnn container geometry (gnn.hpp header comment, DESIGN.md §14).
constexpr std::size_t kGnnHeaderBytes = 80;
constexpr std::size_t kGnnChecksumOffset = 8;
constexpr std::size_t kGnnChecksummedFrom = 16;  ///< checksum covers [here, end)
constexpr int kGnnMaxHidden = 4096;
constexpr int kGnnMaxLayers = 64;

template <typename T>
void put(std::string& out, const T& value) {
  const auto old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(out.data() + old, &value, sizeof(T));
}

template <typename T>
T take(std::string_view bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

[[noreturn]] void bad_gnn(const std::string& why) {
  throw std::runtime_error("GnnModel::deserialize: " + why);
}

}  // namespace

/// Owns the forward/backward machinery; friend of GnnModel.
class GnnEngine {
 public:
  explicit GnnEngine(GnnModel& model) : model_(model), dims_(layer_dims(model.params_)) {}

  void init_params(Rng& rng) {
    model_.weights_.clear();
    for (const LayerDims& d : dims_) {
      std::vector<double> w(d.param_count());
      const double scale = std::sqrt(2.0 / static_cast<double>(d.din + d.dout));
      for (std::size_t i = 0; i + static_cast<std::size_t>(d.dout) < w.size() + 1; ++i) {
        w[i] = rng.next_gaussian() * scale;
      }
      // biases (last dout entries) start at zero
      for (int j = 0; j < d.dout; ++j) w[w.size() - 1 - static_cast<std::size_t>(j)] = 0.0;
      model_.weights_.push_back(std::move(w));
    }
    const int h = model_.params_.hidden;
    model_.readout1_.assign(static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) +
                                static_cast<std::size_t>(h),
                            0.0);
    const double s1 = std::sqrt(2.0 / static_cast<double>(3 * h));
    for (std::size_t i = 0; i < static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h); ++i) {
      model_.readout1_[i] = rng.next_gaussian() * s1;
    }
    model_.readout2_.assign(static_cast<std::size_t>(h) + 1, 0.0);
    const double s2 = std::sqrt(1.0 / static_cast<double>(h));
    for (int i = 0; i < h; ++i) model_.readout2_[static_cast<std::size_t>(i)] = rng.next_gaussian() * s2;
  }

  /// Forward pass; retains activations when `keep_activations` (training).
  double forward(const GraphData& g, bool keep_activations) {
    const int h = model_.params_.hidden;
    activations_.assign(1, g.x);
    means_in_.clear();
    means_out_.clear();
    std::vector<double> current = g.x;
    int din = kGnnNodeFeatures;
    for (std::size_t l = 0; l < dims_.size(); ++l) {
      const LayerDims& d = dims_[l];
      std::vector<double> min_agg, mout_agg;
      mean_aggregate(g.fanins, current, din, min_agg);
      mean_aggregate(g.fanouts, current, din, mout_agg);
      std::vector<double> z(g.n * static_cast<std::size_t>(d.dout), 0.0);
      const auto& w = model_.weights_[l];
      const std::size_t block = static_cast<std::size_t>(d.din) * static_cast<std::size_t>(d.dout);
      matmul_add(current, g.n, d.din, {w.data(), block}, d.dout, z);
      matmul_add(min_agg, g.n, d.din, {w.data() + block, block}, d.dout, z);
      matmul_add(mout_agg, g.n, d.din, {w.data() + 2 * block, block}, d.dout, z);
      const double* bias = w.data() + 3 * block;
      for (std::size_t v = 0; v < g.n; ++v) {
        double* zv = z.data() + v * static_cast<std::size_t>(d.dout);
        for (int j = 0; j < d.dout; ++j) {
          zv[static_cast<std::size_t>(j)] =
              std::max(0.0, zv[static_cast<std::size_t>(j)] + bias[static_cast<std::size_t>(j)]);
        }
      }
      if (keep_activations) {
        means_in_.push_back(std::move(min_agg));
        means_out_.push_back(std::move(mout_agg));
        activations_.push_back(z);
      }
      current = std::move(z);
      din = d.dout;
    }
    // Readout: mean and max pooling.
    pooled_.assign(static_cast<std::size_t>(2 * h), 0.0);
    argmax_.assign(static_cast<std::size_t>(h), 0);
    for (int j = 0; j < h; ++j) {
      double best = -std::numeric_limits<double>::infinity();
      for (std::size_t v = 0; v < g.n; ++v) {
        const double val = current[v * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
        pooled_[static_cast<std::size_t>(j)] += val;
        if (val > best) {
          best = val;
          argmax_[static_cast<std::size_t>(j)] = v;
        }
      }
      pooled_[static_cast<std::size_t>(j)] /= static_cast<double>(g.n);
      pooled_[static_cast<std::size_t>(h + j)] = best;
    }
    // MLP head.
    hidden_.assign(static_cast<std::size_t>(h), 0.0);
    const auto& u1 = model_.readout1_;
    for (int j = 0; j < h; ++j) {
      double acc = u1[static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
      for (int i = 0; i < 2 * h; ++i) {
        acc += pooled_[static_cast<std::size_t>(i)] *
               u1[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
      }
      hidden_[static_cast<std::size_t>(j)] = std::max(0.0, acc);
    }
    double y = model_.readout2_[static_cast<std::size_t>(h)];
    for (int j = 0; j < h; ++j) y += hidden_[static_cast<std::size_t>(j)] * model_.readout2_[static_cast<std::size_t>(j)];
    return y;
  }

  /// Backward for one graph; accumulates parameter gradients.
  void backward(const GraphData& g, double dy, std::vector<std::vector<double>>& dweights,
                std::vector<double>& dreadout1, std::vector<double>& dreadout2) {
    const int h = model_.params_.hidden;
    // Head.
    std::vector<double> dhidden(static_cast<std::size_t>(h), 0.0);
    for (int j = 0; j < h; ++j) {
      dreadout2[static_cast<std::size_t>(j)] += dy * hidden_[static_cast<std::size_t>(j)];
      if (hidden_[static_cast<std::size_t>(j)] > 0.0) {
        dhidden[static_cast<std::size_t>(j)] = dy * model_.readout2_[static_cast<std::size_t>(j)];
      }
    }
    dreadout2[static_cast<std::size_t>(h)] += dy;
    std::vector<double> dpooled(static_cast<std::size_t>(2 * h), 0.0);
    for (int i = 0; i < 2 * h; ++i) {
      for (int j = 0; j < h; ++j) {
        dreadout1[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] +=
            pooled_[static_cast<std::size_t>(i)] * dhidden[static_cast<std::size_t>(j)];
        dpooled[static_cast<std::size_t>(i)] +=
            model_.readout1_[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] *
            dhidden[static_cast<std::size_t>(j)];
      }
    }
    for (int j = 0; j < h; ++j) {
      dreadout1[static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] +=
          dhidden[static_cast<std::size_t>(j)];
    }
    // Un-pool.
    std::vector<double> dcurrent(g.n * static_cast<std::size_t>(h), 0.0);
    for (int j = 0; j < h; ++j) {
      const double dmean = dpooled[static_cast<std::size_t>(j)] / static_cast<double>(g.n);
      for (std::size_t v = 0; v < g.n; ++v) {
        dcurrent[v * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] += dmean;
      }
      dcurrent[argmax_[static_cast<std::size_t>(j)] * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] +=
          dpooled[static_cast<std::size_t>(h + j)];
    }
    // Layers in reverse.
    for (std::size_t l = dims_.size(); l-- > 0;) {
      const LayerDims& d = dims_[l];
      const auto& hout = activations_[l + 1];
      // ReLU gate.
      for (std::size_t i = 0; i < hout.size(); ++i) {
        if (hout[i] <= 0.0) dcurrent[i] = 0.0;
      }
      const auto& hin = activations_[l];
      const auto& w = model_.weights_[l];
      auto& dw = dweights[l];
      const std::size_t block = static_cast<std::size_t>(d.din) * static_cast<std::size_t>(d.dout);
      std::vector<double> dhin(g.n * static_cast<std::size_t>(d.din), 0.0);
      std::vector<double> dmin(g.n * static_cast<std::size_t>(d.din), 0.0);
      std::vector<double> dmout(g.n * static_cast<std::size_t>(d.din), 0.0);
      std::vector<double> dw_self(block, 0.0), dw_in(block, 0.0), dw_out(block, 0.0);
      matmul_backward(hin, g.n, d.din, {w.data(), block}, d.dout, dcurrent, dw_self, &dhin);
      matmul_backward(means_in_[l], g.n, d.din, {w.data() + block, block}, d.dout, dcurrent,
                      dw_in, &dmin);
      matmul_backward(means_out_[l], g.n, d.din, {w.data() + 2 * block, block}, d.dout, dcurrent,
                      dw_out, &dmout);
      for (std::size_t i = 0; i < block; ++i) {
        dw[i] += dw_self[i];
        dw[block + i] += dw_in[i];
        dw[2 * block + i] += dw_out[i];
      }
      for (std::size_t v = 0; v < g.n; ++v) {
        const double* grad = dcurrent.data() + v * static_cast<std::size_t>(d.dout);
        for (int j = 0; j < d.dout; ++j) dw[3 * block + static_cast<std::size_t>(j)] += grad[static_cast<std::size_t>(j)];
      }
      mean_aggregate_backward(g.fanins, dmin, d.din, dhin);
      mean_aggregate_backward(g.fanouts, dmout, d.din, dhin);
      dcurrent = std::move(dhin);
    }
  }

 private:
  GnnModel& model_;
  std::vector<LayerDims> dims_;
  // Retained activations for backprop.
  std::vector<std::vector<double>> activations_;  // [0]=input, [l+1]=layer l output
  std::vector<std::vector<double>> means_in_, means_out_;
  std::vector<double> pooled_, hidden_;
  std::vector<std::size_t> argmax_;
};

/// Batched inference over the concatenated batch: flat node features, CSR
/// adjacency with batch-global node ids, per-graph segment offsets.  Every
/// per-node operation runs in ascending batch-global node order and the
/// adjacency never crosses a segment, so each graph's arithmetic is the
/// exact addition sequence the per-graph GnnEngine performs — bit-identity
/// by construction, with none of the reference path's per-node adjacency
/// vectors or per-call activation allocations.
class GnnBatchEngine {
 public:
  explicit GnnBatchEngine(const GnnModel& model)
      : model_(model), dims_(layer_dims(model.params_)) {}

  std::vector<double> predict(std::span<const aig::Aig* const> graphs) {
    build(graphs);
    const int h = model_.params_.hidden;
    const std::size_t width = static_cast<std::size_t>(std::max(kGnnNodeFeatures, h));
    current_.resize(total_ * width);
    std::copy(x_.begin(), x_.end(), current_.begin());
    int din = kGnnNodeFeatures;
    for (std::size_t l = 0; l < dims_.size(); ++l) {
      const LayerDims& d = dims_[l];
      const std::size_t in_elems = total_ * static_cast<std::size_t>(din);
      const std::span<const double> cur(current_.data(), in_elems);
      csr_mean_aggregate(fanin_off_, fanin_idx_, cur, din, min_agg_);
      csr_mean_aggregate(fanout_off_, fanout_idx_, cur, din, mout_agg_);
      z_.assign(total_ * static_cast<std::size_t>(d.dout), 0.0);
      const auto& w = model_.weights_[l];
      const std::size_t block = static_cast<std::size_t>(d.din) * static_cast<std::size_t>(d.dout);
      matmul_add(cur, total_, d.din, {w.data(), block}, d.dout, z_);
      matmul_add({min_agg_.data(), in_elems}, total_, d.din, {w.data() + block, block}, d.dout, z_);
      matmul_add({mout_agg_.data(), in_elems}, total_, d.din, {w.data() + 2 * block, block}, d.dout,
                 z_);
      const double* bias = w.data() + 3 * block;
      for (std::size_t v = 0; v < total_; ++v) {
        double* zv = z_.data() + v * static_cast<std::size_t>(d.dout);
        for (int j = 0; j < d.dout; ++j) {
          zv[static_cast<std::size_t>(j)] =
              std::max(0.0, zv[static_cast<std::size_t>(j)] + bias[static_cast<std::size_t>(j)]);
        }
      }
      std::copy(z_.begin(), z_.end(), current_.begin());
      din = d.dout;
    }
    // Per-segment readout + head, one graph at a time (same j-then-v loop
    // order as the reference pooling).
    std::vector<double> out(graphs.size(), 0.0);
    std::vector<double> pooled(static_cast<std::size_t>(2 * h));
    std::vector<double> hidden(static_cast<std::size_t>(h));
    const auto& u1 = model_.readout1_;
    const auto& u2 = model_.readout2_;
    for (std::size_t gi = 0; gi + 1 < seg_.size(); ++gi) {
      const std::size_t lo = seg_[gi];
      const std::size_t n = seg_[gi + 1] - lo;
      const double* cur = current_.data() + lo * static_cast<std::size_t>(h);
      std::fill(pooled.begin(), pooled.end(), 0.0);
      for (int j = 0; j < h; ++j) {
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t v = 0; v < n; ++v) {
          const double val = cur[v * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
          pooled[static_cast<std::size_t>(j)] += val;
          if (val > best) best = val;
        }
        pooled[static_cast<std::size_t>(j)] /= static_cast<double>(n);
        pooled[static_cast<std::size_t>(h + j)] = best;
      }
      for (int j = 0; j < h; ++j) {
        double acc = u1[static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
        for (int i = 0; i < 2 * h; ++i) {
          acc += pooled[static_cast<std::size_t>(i)] *
                 u1[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
        }
        hidden[static_cast<std::size_t>(j)] = std::max(0.0, acc);
      }
      double y = u2[static_cast<std::size_t>(h)];
      for (int j = 0; j < h; ++j) y += hidden[static_cast<std::size_t>(j)] * u2[static_cast<std::size_t>(j)];
      out[gi] = y * model_.label_std_ + model_.label_mean_;
    }
    return out;
  }

 private:
  /// Concatenates the batch: features + CSR adjacency in one pass per graph.
  void build(std::span<const aig::Aig* const> graphs) {
    seg_.assign(1, 0);
    total_ = 0;
    for (const Aig* g : graphs) {
      total_ += g->num_nodes();
      seg_.push_back(total_);
    }
    x_.assign(total_ * kGnnNodeFeatures, 0.0);
    fanin_off_.assign(total_ + 1, 0);
    fanout_off_.assign(total_ + 1, 0);
    // Degree-counting pass (offsets), then the fill pass below — the fill
    // appends in ascending node order, which reproduces the reference
    // adjacency's neighbor order exactly (prepare() pushes in the same
    // order).
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const Aig& g = *graphs[gi];
      const std::size_t base = seg_[gi];
      for (NodeId id = 0; id < g.num_nodes(); ++id) {
        if (!g.is_and(id)) continue;
        const NodeId v0 = aig::lit_var(g.fanin0(id));
        const NodeId v1 = aig::lit_var(g.fanin1(id));
        const std::uint32_t fi = v1 != v0 ? 2 : 1;
        fanin_off_[base + id + 1] += fi;
        fanout_off_[base + v0 + 1] += 1;
        if (v1 != v0) fanout_off_[base + v1 + 1] += 1;
      }
    }
    for (std::size_t v = 1; v <= total_; ++v) {
      fanin_off_[v] += fanin_off_[v - 1];
      fanout_off_[v] += fanout_off_[v - 1];
    }
    fanin_idx_.resize(fanin_off_[total_]);
    fanout_idx_.resize(fanout_off_[total_]);
    std::vector<std::uint32_t> fin_cursor(fanin_off_.begin(), fanin_off_.end() - 1);
    std::vector<std::uint32_t> fout_cursor(fanout_off_.begin(), fanout_off_.end() - 1);
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const Aig& g = *graphs[gi];
      const std::size_t base = seg_[gi];
      const auto levels = aig::levels(g);
      const auto fanout = aig::fanout_counts(g);
      const double max_level =
          std::max<double>(1.0, *std::max_element(levels.begin(), levels.end()));
      for (NodeId id = 0; id < g.num_nodes(); ++id) {
        fill_node_features(g, id, levels, fanout, max_level,
                           x_.data() + (base + id) * kGnnNodeFeatures);
        if (!g.is_and(id)) continue;
        const NodeId v0 = aig::lit_var(g.fanin0(id));
        const NodeId v1 = aig::lit_var(g.fanin1(id));
        fanin_idx_[fin_cursor[base + id]++] = static_cast<std::uint32_t>(base + v0);
        if (v1 != v0) fanin_idx_[fin_cursor[base + id]++] = static_cast<std::uint32_t>(base + v1);
        fanout_idx_[fout_cursor[base + v0]++] = static_cast<std::uint32_t>(base + id);
        if (v1 != v0) fanout_idx_[fout_cursor[base + v1]++] = static_cast<std::uint32_t>(base + id);
      }
    }
  }

  /// CSR twin of mean_aggregate(): identical per-node sum-then-scale order.
  void csr_mean_aggregate(const std::vector<std::uint32_t>& off,
                          const std::vector<std::uint32_t>& idx, std::span<const double> x,
                          int dim, std::vector<double>& y) {
    y.assign(x.size(), 0.0);
    for (std::size_t v = 0; v < total_; ++v) {
      const std::uint32_t lo = off[v];
      const std::uint32_t hi = off[v + 1];
      if (lo == hi) continue;
      double* out = y.data() + v * static_cast<std::size_t>(dim);
      for (std::uint32_t e = lo; e < hi; ++e) {
        const double* in =
            x.data() + static_cast<std::size_t>(idx[e]) * static_cast<std::size_t>(dim);
        for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] += in[static_cast<std::size_t>(k)];
      }
      const double inv = 1.0 / static_cast<double>(hi - lo);
      for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] *= inv;
    }
  }

  const GnnModel& model_;
  std::vector<LayerDims> dims_;
  std::size_t total_ = 0;
  std::vector<std::size_t> seg_;  ///< per-graph node offsets, size batch+1
  std::vector<double> x_;
  std::vector<std::uint32_t> fanin_off_, fanin_idx_;
  std::vector<std::uint32_t> fanout_off_, fanout_idx_;
  // Reused activation buffers (sized total x max(din, dout)).
  std::vector<double> current_, min_agg_, mout_agg_, z_;
};

GnnModel GnnModel::train(std::span<const aig::Aig* const> graphs, std::span<const double> labels,
                         const GnnParams& params, GnnTrainLog* log, const GnnModel* warm_start) {
  if (graphs.size() != labels.size() || graphs.empty()) {
    throw std::invalid_argument("GnnModel::train: graphs/labels mismatch or empty");
  }
  if (params.layers < 1 || params.hidden < 1) {
    throw std::invalid_argument("GnnModel::train: need at least one layer and one hidden unit");
  }
  if (warm_start != nullptr && (warm_start->params_.hidden != params.hidden ||
                                warm_start->params_.layers != params.layers)) {
    throw std::invalid_argument("GnnModel::train: warm-start dims mismatch (warm hidden/layers " +
                                std::to_string(warm_start->params_.hidden) + "/" +
                                std::to_string(warm_start->params_.layers) + " vs params " +
                                std::to_string(params.hidden) + "/" +
                                std::to_string(params.layers) + ")");
  }
  Timer timer;
  GnnModel model;
  model.params_ = params;
  if (warm_start != nullptr) {
    // Warm refresh: keep the warm weights AND the warm label standardization
    // — the weights regress the warm model's standardized target, so
    // restandardizing against the (possibly shifted) new label set would
    // start them inconsistent with their own output scale.
    model.weights_ = warm_start->weights_;
    model.readout1_ = warm_start->readout1_;
    model.readout2_ = warm_start->readout2_;
    model.label_mean_ = warm_start->label_mean_;
    model.label_std_ = warm_start->label_std_;
  } else {
    // Label standardization.
    const double mean = std::accumulate(labels.begin(), labels.end(), 0.0) /
                        static_cast<double>(labels.size());
    double var = 0.0;
    for (const double y : labels) var += (y - mean) * (y - mean);
    var /= static_cast<double>(labels.size());
    model.label_mean_ = mean;
    model.label_std_ = var > 0.0 ? std::sqrt(var) : 1.0;
  }

  GnnEngine engine(model);
  Rng rng(params.seed);
  if (warm_start == nullptr) engine.init_params(rng);

  std::vector<GraphData> data;
  data.reserve(graphs.size());
  for (const Aig* g : graphs) data.push_back(prepare(*g));

  // Adam state per parameter tensor.
  std::vector<Adam> adam_w(model.weights_.size());
  for (std::size_t l = 0; l < model.weights_.size(); ++l) adam_w[l].init(model.weights_[l].size());
  Adam adam_r1, adam_r2;
  adam_r1.init(model.readout1_.size());
  adam_r2.init(model.readout2_.size());

  std::vector<std::size_t> order(graphs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (const std::size_t i : order) {
      const double target = (labels[i] - model.label_mean_) / model.label_std_;
      const double pred = engine.forward(data[i], /*keep_activations=*/true);
      const double err = pred - target;
      epoch_loss += err * err;
      std::vector<std::vector<double>> dweights(model.weights_.size());
      for (std::size_t l = 0; l < model.weights_.size(); ++l) {
        dweights[l].assign(model.weights_[l].size(), 0.0);
      }
      std::vector<double> dr1(model.readout1_.size(), 0.0);
      std::vector<double> dr2(model.readout2_.size(), 0.0);
      engine.backward(data[i], 2.0 * err, dweights, dr1, dr2);
      for (std::size_t l = 0; l < model.weights_.size(); ++l) {
        adam_w[l].step(model.weights_[l], dweights[l], params);
      }
      adam_r1.step(model.readout1_, dr1, params);
      adam_r2.step(model.readout2_, dr2, params);
    }
    if (log != nullptr) {
      log->epoch_mse.push_back(epoch_loss / static_cast<double>(graphs.size()));
    }
  }
  if (log != nullptr) log->train_seconds = timer.elapsed_s();
  return model;
}

double GnnModel::predict(std::span<const double> /*row*/) const {
  throw std::logic_error(
      "GnnModel::predict: family=gnn consumes the graph, not a flat feature row "
      "(send the AIG, or serve a gbdt model for feature-row requests)");
}

double GnnModel::predict(const aig::Aig& g) const {
  GnnModel& self = const_cast<GnnModel&>(*this);
  GnnEngine engine(self);
  const GraphData data = prepare(g);
  const double standardized = engine.forward(data, /*keep_activations=*/false);
  return standardized * label_std_ + label_mean_;
}

std::vector<double> GnnModel::predict_graphs(std::span<const aig::Aig* const> graphs) const {
  if (graphs.empty()) return {};
  // Large batches split into contiguous chunks, one GnnBatchEngine per
  // chunk.  Bit-identity with the single-engine pass holds at any thread
  // count: no arithmetic crosses a graph segment (adjacency, aggregation,
  // and pooling are all per-graph), and each output lands at its global
  // index regardless of which chunk computed it.
  const std::size_t n = graphs.size();
  const std::size_t chunks =
      std::min(static_cast<std::size_t>(default_num_threads()), std::max<std::size_t>(1, n / 8));
  if (chunks <= 1) {
    GnnBatchEngine engine(*this);
    return engine.predict(graphs);
  }
  std::vector<double> out(n);
  ThreadPool pool(static_cast<int>(chunks));
  pool.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * n / chunks;
    const std::size_t hi = (c + 1) * n / chunks;
    GnnBatchEngine engine(*this);
    const std::vector<double> part = engine.predict(graphs.subspan(lo, hi - lo));
    std::copy(part.begin(), part.end(), out.begin() + static_cast<std::ptrdiff_t>(lo));
  });
  return out;
}

// ---- .gnn container ------------------------------------------------------

std::string GnnModel::serialize() const {
  std::string out;
  out.reserve(kGnnHeaderBytes);
  out.append("AGNN", 4);
  put<std::uint32_t>(out, kGnnFormatVersion);
  put<std::uint64_t>(out, 0);  // checksum backpatched below
  put<std::uint32_t>(out, static_cast<std::uint32_t>(params_.hidden));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(params_.layers));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(kGnnNodeFeatures));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(params_.epochs));
  put<std::uint64_t>(out, params_.seed);
  put<double>(out, params_.learning_rate);
  put<double>(out, params_.beta1);
  put<double>(out, params_.beta2);
  put<double>(out, label_mean_);
  put<double>(out, label_std_);
  for (const auto& w : weights_) {
    for (const double v : w) put<double>(out, v);
  }
  for (const double v : readout1_) put<double>(out, v);
  for (const double v : readout2_) put<double>(out, v);
  const std::uint64_t sum =
      fnv1a(out.data() + kGnnChecksummedFrom, out.size() - kGnnChecksummedFrom);
  std::memcpy(out.data() + kGnnChecksumOffset, &sum, sizeof(sum));
  return out;
}

GnnModel GnnModel::deserialize(std::string_view bytes) {
  if (bytes.size() < kGnnHeaderBytes) bad_gnn("truncated header");
  if (bytes.substr(0, 4) != "AGNN") bad_gnn("bad magic (expected AGNN)");
  const auto version = take<std::uint32_t>(bytes, 4);
  if (version != kGnnFormatVersion) {
    bad_gnn("unsupported version " + std::to_string(version));
  }
  const auto hidden = take<std::uint32_t>(bytes, 16);
  const auto layers = take<std::uint32_t>(bytes, 20);
  const auto node_features = take<std::uint32_t>(bytes, 24);
  if (hidden < 1 || hidden > kGnnMaxHidden) bad_gnn("hidden out of bounds");
  if (layers < 1 || layers > kGnnMaxLayers) bad_gnn("layers out of bounds");
  if (node_features != static_cast<std::uint32_t>(kGnnNodeFeatures)) {
    bad_gnn("node feature width mismatch");
  }

  GnnModel model;
  model.params_.hidden = static_cast<int>(hidden);
  model.params_.layers = static_cast<int>(layers);
  model.params_.epochs = static_cast<int>(take<std::uint32_t>(bytes, 28));
  model.params_.seed = take<std::uint64_t>(bytes, 32);
  model.params_.learning_rate = take<double>(bytes, 40);
  model.params_.beta1 = take<double>(bytes, 48);
  model.params_.beta2 = take<double>(bytes, 56);
  model.label_mean_ = take<double>(bytes, 64);
  model.label_std_ = take<double>(bytes, 72);

  // Exact-size check BEFORE any tensor allocation: a hostile header cannot
  // make us allocate what the bytes don't carry, and every truncation (or
  // extension) is rejected here even when it lands on a tensor boundary.
  const std::vector<LayerDims> dims = layer_dims(model.params_);
  std::uint64_t weight_doubles = 0;
  for (const LayerDims& d : dims) weight_doubles += d.param_count();
  const std::uint64_t h = hidden;
  weight_doubles += 2 * h * h + h;  // readout1
  weight_doubles += h + 1;          // readout2
  const std::uint64_t expected = kGnnHeaderBytes + weight_doubles * sizeof(double);
  if (bytes.size() != expected) {
    bad_gnn("size mismatch (" + std::to_string(bytes.size()) + " bytes, header implies " +
            std::to_string(expected) + ") — truncated or corrupt");
  }
  const std::uint64_t stored_sum = take<std::uint64_t>(bytes, kGnnChecksumOffset);
  const std::uint64_t actual_sum =
      fnv1a(bytes.data() + kGnnChecksummedFrom, bytes.size() - kGnnChecksummedFrom);
  if (stored_sum != actual_sum) bad_gnn("checksum mismatch (corrupt container)");

  const auto finite = [](double v) { return std::isfinite(v); };
  if (!finite(model.params_.learning_rate) || !finite(model.params_.beta1) ||
      !finite(model.params_.beta2) || !finite(model.label_mean_) || !finite(model.label_std_) ||
      model.label_std_ <= 0.0) {
    bad_gnn("non-finite or degenerate header values");
  }

  std::size_t offset = kGnnHeaderBytes;
  const auto take_tensor = [&](std::size_t count) {
    std::vector<double> t(count);
    std::memcpy(t.data(), bytes.data() + offset, count * sizeof(double));
    offset += count * sizeof(double);
    for (const double v : t) {
      if (!std::isfinite(v)) bad_gnn("non-finite weight");
    }
    return t;
  };
  for (const LayerDims& d : dims) model.weights_.push_back(take_tensor(d.param_count()));
  model.readout1_ = take_tensor(static_cast<std::size_t>(2 * h * h + h));
  model.readout2_ = take_tensor(static_cast<std::size_t>(h + 1));
  return model;
}

void GnnModel::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  fsio::write_file_atomic(path, serialize());
}

GnnModel GnnModel::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("GnnModel::load: cannot open " + path.string());
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  try {
    return deserialize(bytes);
  } catch (const std::exception& e) {
    throw std::runtime_error(path.string() + ": " + e.what());
  }
}

}  // namespace aigml::ml
