#include "ml/gnn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "aig/analysis.hpp"
#include "util/timer.hpp"

namespace aigml::ml {

using aig::Aig;
using aig::NodeId;

namespace {

/// Graph tensors shared by forward and backward passes.
struct GraphData {
  std::size_t n = 0;
  std::vector<double> x;                      // n x kGnnNodeFeatures
  std::vector<std::vector<std::uint32_t>> fanins;
  std::vector<std::vector<std::uint32_t>> fanouts;
};

GraphData prepare(const Aig& g) {
  GraphData d;
  d.n = g.num_nodes();
  d.x.assign(d.n * kGnnNodeFeatures, 0.0);
  d.fanins.resize(d.n);
  d.fanouts.resize(d.n);
  const auto levels = aig::levels(g);
  const auto fanout = aig::fanout_counts(g);
  const double max_level =
      std::max<double>(1.0, *std::max_element(levels.begin(), levels.end()));
  for (NodeId id = 0; id < d.n; ++id) {
    double* row = d.x.data() + static_cast<std::size_t>(id) * kGnnNodeFeatures;
    row[0] = g.is_input(id) ? 1.0 : 0.0;
    row[1] = g.is_and(id) ? 1.0 : 0.0;
    if (g.is_and(id)) {
      row[2] = aig::lit_is_complemented(g.fanin0(id)) ? 1.0 : 0.0;
      row[3] = aig::lit_is_complemented(g.fanin1(id)) ? 1.0 : 0.0;
      const NodeId v0 = aig::lit_var(g.fanin0(id));
      const NodeId v1 = aig::lit_var(g.fanin1(id));
      d.fanins[id].push_back(v0);
      if (v1 != v0) d.fanins[id].push_back(v1);
      d.fanouts[v0].push_back(id);
      if (v1 != v0) d.fanouts[v1].push_back(id);
    }
    row[4] = static_cast<double>(levels[id]) / max_level;
    row[5] = std::log2(1.0 + static_cast<double>(fanout[id])) / 6.0;
  }
  return d;
}

/// y[v] = mean over neighbors of x (both n x dim, row-major).
void mean_aggregate(const std::vector<std::vector<std::uint32_t>>& nbrs,
                    std::span<const double> x, int dim, std::vector<double>& y) {
  y.assign(x.size(), 0.0);
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    if (nbrs[v].empty()) continue;
    double* out = y.data() + v * static_cast<std::size_t>(dim);
    for (const std::uint32_t u : nbrs[v]) {
      const double* in = x.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(dim);
      for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] += in[static_cast<std::size_t>(k)];
    }
    const double inv = 1.0 / static_cast<double>(nbrs[v].size());
    for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] *= inv;
  }
}

/// Scatter of mean_aggregate: dx[u] += dy[v] / |nbrs(v)| for u in nbrs(v).
void mean_aggregate_backward(const std::vector<std::vector<std::uint32_t>>& nbrs,
                             std::span<const double> dy, int dim, std::vector<double>& dx) {
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    if (nbrs[v].empty()) continue;
    const double inv = 1.0 / static_cast<double>(nbrs[v].size());
    const double* grad = dy.data() + v * static_cast<std::size_t>(dim);
    for (const std::uint32_t u : nbrs[v]) {
      double* out = dx.data() + static_cast<std::size_t>(u) * static_cast<std::size_t>(dim);
      for (int k = 0; k < dim; ++k) out[static_cast<std::size_t>(k)] += grad[static_cast<std::size_t>(k)] * inv;
    }
  }
}

/// y (n x dout) += x (n x din) * W (din x dout).
void matmul_add(std::span<const double> x, std::size_t n, int din, std::span<const double> w,
                int dout, std::vector<double>& y) {
  for (std::size_t v = 0; v < n; ++v) {
    const double* xi = x.data() + v * static_cast<std::size_t>(din);
    double* yi = y.data() + v * static_cast<std::size_t>(dout);
    for (int i = 0; i < din; ++i) {
      const double xv = xi[static_cast<std::size_t>(i)];
      if (xv == 0.0) continue;
      const double* wi = w.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dout);
      for (int j = 0; j < dout; ++j) yi[static_cast<std::size_t>(j)] += xv * wi[static_cast<std::size_t>(j)];
    }
  }
}

/// dW (din x dout) += x^T (n x din) * dy (n x dout); dx += dy * W^T.
void matmul_backward(std::span<const double> x, std::size_t n, int din,
                     std::span<const double> w, int dout, std::span<const double> dy,
                     std::vector<double>& dw, std::vector<double>* dx) {
  for (std::size_t v = 0; v < n; ++v) {
    const double* xi = x.data() + v * static_cast<std::size_t>(din);
    const double* gi = dy.data() + v * static_cast<std::size_t>(dout);
    for (int i = 0; i < din; ++i) {
      const double xv = xi[static_cast<std::size_t>(i)];
      double* dwi = dw.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dout);
      double acc = 0.0;
      const double* wi = w.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(dout);
      for (int j = 0; j < dout; ++j) {
        dwi[static_cast<std::size_t>(j)] += xv * gi[static_cast<std::size_t>(j)];
        acc += gi[static_cast<std::size_t>(j)] * wi[static_cast<std::size_t>(j)];
      }
      if (dx != nullptr) (*dx)[v * static_cast<std::size_t>(din) + static_cast<std::size_t>(i)] += acc;
    }
  }
}

struct LayerDims {
  int din = 0;
  int dout = 0;
  [[nodiscard]] std::size_t param_count() const {
    return 3 * static_cast<std::size_t>(din) * static_cast<std::size_t>(dout) +
           static_cast<std::size_t>(dout);
  }
};

struct Adam {
  std::vector<double> m, v;
  int t = 0;
  void init(std::size_t n) {
    m.assign(n, 0.0);
    v.assign(n, 0.0);
    t = 0;
  }
  void step(std::vector<double>& params, std::span<const double> grads, const GnnParams& p) {
    ++t;
    const double correction1 = 1.0 - std::pow(p.beta1, t);
    const double correction2 = 1.0 - std::pow(p.beta2, t);
    for (std::size_t i = 0; i < params.size(); ++i) {
      m[i] = p.beta1 * m[i] + (1.0 - p.beta1) * grads[i];
      v[i] = p.beta2 * v[i] + (1.0 - p.beta2) * grads[i] * grads[i];
      const double mhat = m[i] / correction1;
      const double vhat = v[i] / correction2;
      params[i] -= p.learning_rate * mhat / (std::sqrt(vhat) + 1e-8);
    }
  }
};

}  // namespace

/// Owns the forward/backward machinery; friend of GnnModel.
class GnnEngine {
 public:
  explicit GnnEngine(GnnModel& model) : model_(model) {
    dims_.clear();
    int din = kGnnNodeFeatures;
    for (int l = 0; l < model_.params_.layers; ++l) {
      dims_.push_back(LayerDims{din, model_.params_.hidden});
      din = model_.params_.hidden;
    }
  }

  void init_params(Rng& rng) {
    model_.weights_.clear();
    for (const LayerDims& d : dims_) {
      std::vector<double> w(d.param_count());
      const double scale = std::sqrt(2.0 / static_cast<double>(d.din + d.dout));
      for (std::size_t i = 0; i + static_cast<std::size_t>(d.dout) < w.size() + 1; ++i) {
        w[i] = rng.next_gaussian() * scale;
      }
      // biases (last dout entries) start at zero
      for (int j = 0; j < d.dout; ++j) w[w.size() - 1 - static_cast<std::size_t>(j)] = 0.0;
      model_.weights_.push_back(std::move(w));
    }
    const int h = model_.params_.hidden;
    model_.readout1_.assign(static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) +
                                static_cast<std::size_t>(h),
                            0.0);
    const double s1 = std::sqrt(2.0 / static_cast<double>(3 * h));
    for (std::size_t i = 0; i < static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h); ++i) {
      model_.readout1_[i] = rng.next_gaussian() * s1;
    }
    model_.readout2_.assign(static_cast<std::size_t>(h) + 1, 0.0);
    const double s2 = std::sqrt(1.0 / static_cast<double>(h));
    for (int i = 0; i < h; ++i) model_.readout2_[static_cast<std::size_t>(i)] = rng.next_gaussian() * s2;
  }

  /// Forward pass; retains activations when `keep_activations` (training).
  double forward(const GraphData& g, bool keep_activations) {
    const int h = model_.params_.hidden;
    activations_.assign(1, g.x);
    means_in_.clear();
    means_out_.clear();
    std::vector<double> current = g.x;
    int din = kGnnNodeFeatures;
    for (std::size_t l = 0; l < dims_.size(); ++l) {
      const LayerDims& d = dims_[l];
      std::vector<double> min_agg, mout_agg;
      mean_aggregate(g.fanins, current, din, min_agg);
      mean_aggregate(g.fanouts, current, din, mout_agg);
      std::vector<double> z(g.n * static_cast<std::size_t>(d.dout), 0.0);
      const auto& w = model_.weights_[l];
      const std::size_t block = static_cast<std::size_t>(d.din) * static_cast<std::size_t>(d.dout);
      matmul_add(current, g.n, d.din, {w.data(), block}, d.dout, z);
      matmul_add(min_agg, g.n, d.din, {w.data() + block, block}, d.dout, z);
      matmul_add(mout_agg, g.n, d.din, {w.data() + 2 * block, block}, d.dout, z);
      const double* bias = w.data() + 3 * block;
      for (std::size_t v = 0; v < g.n; ++v) {
        double* zv = z.data() + v * static_cast<std::size_t>(d.dout);
        for (int j = 0; j < d.dout; ++j) {
          zv[static_cast<std::size_t>(j)] =
              std::max(0.0, zv[static_cast<std::size_t>(j)] + bias[static_cast<std::size_t>(j)]);
        }
      }
      if (keep_activations) {
        means_in_.push_back(std::move(min_agg));
        means_out_.push_back(std::move(mout_agg));
        activations_.push_back(z);
      }
      current = std::move(z);
      din = d.dout;
    }
    // Readout: mean and max pooling.
    pooled_.assign(static_cast<std::size_t>(2 * h), 0.0);
    argmax_.assign(static_cast<std::size_t>(h), 0);
    for (int j = 0; j < h; ++j) {
      double best = -std::numeric_limits<double>::infinity();
      for (std::size_t v = 0; v < g.n; ++v) {
        const double val = current[v * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
        pooled_[static_cast<std::size_t>(j)] += val;
        if (val > best) {
          best = val;
          argmax_[static_cast<std::size_t>(j)] = v;
        }
      }
      pooled_[static_cast<std::size_t>(j)] /= static_cast<double>(g.n);
      pooled_[static_cast<std::size_t>(h + j)] = best;
    }
    // MLP head.
    hidden_.assign(static_cast<std::size_t>(h), 0.0);
    const auto& u1 = model_.readout1_;
    for (int j = 0; j < h; ++j) {
      double acc = u1[static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
      for (int i = 0; i < 2 * h; ++i) {
        acc += pooled_[static_cast<std::size_t>(i)] *
               u1[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)];
      }
      hidden_[static_cast<std::size_t>(j)] = std::max(0.0, acc);
    }
    double y = model_.readout2_[static_cast<std::size_t>(h)];
    for (int j = 0; j < h; ++j) y += hidden_[static_cast<std::size_t>(j)] * model_.readout2_[static_cast<std::size_t>(j)];
    return y;
  }

  /// Backward for one graph; accumulates parameter gradients.
  void backward(const GraphData& g, double dy, std::vector<std::vector<double>>& dweights,
                std::vector<double>& dreadout1, std::vector<double>& dreadout2) {
    const int h = model_.params_.hidden;
    // Head.
    std::vector<double> dhidden(static_cast<std::size_t>(h), 0.0);
    for (int j = 0; j < h; ++j) {
      dreadout2[static_cast<std::size_t>(j)] += dy * hidden_[static_cast<std::size_t>(j)];
      if (hidden_[static_cast<std::size_t>(j)] > 0.0) {
        dhidden[static_cast<std::size_t>(j)] = dy * model_.readout2_[static_cast<std::size_t>(j)];
      }
    }
    dreadout2[static_cast<std::size_t>(h)] += dy;
    std::vector<double> dpooled(static_cast<std::size_t>(2 * h), 0.0);
    for (int i = 0; i < 2 * h; ++i) {
      for (int j = 0; j < h; ++j) {
        dreadout1[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] +=
            pooled_[static_cast<std::size_t>(i)] * dhidden[static_cast<std::size_t>(j)];
        dpooled[static_cast<std::size_t>(i)] +=
            model_.readout1_[static_cast<std::size_t>(i) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] *
            dhidden[static_cast<std::size_t>(j)];
      }
    }
    for (int j = 0; j < h; ++j) {
      dreadout1[static_cast<std::size_t>(2 * h) * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] +=
          dhidden[static_cast<std::size_t>(j)];
    }
    // Un-pool.
    const auto& last = activations_.back();
    std::vector<double> dcurrent(g.n * static_cast<std::size_t>(h), 0.0);
    for (int j = 0; j < h; ++j) {
      const double dmean = dpooled[static_cast<std::size_t>(j)] / static_cast<double>(g.n);
      for (std::size_t v = 0; v < g.n; ++v) {
        dcurrent[v * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] += dmean;
      }
      dcurrent[argmax_[static_cast<std::size_t>(j)] * static_cast<std::size_t>(h) + static_cast<std::size_t>(j)] +=
          dpooled[static_cast<std::size_t>(h + j)];
    }
    (void)last;
    // Layers in reverse.
    for (std::size_t l = dims_.size(); l-- > 0;) {
      const LayerDims& d = dims_[l];
      const auto& hout = activations_[l + 1];
      // ReLU gate.
      for (std::size_t i = 0; i < hout.size(); ++i) {
        if (hout[i] <= 0.0) dcurrent[i] = 0.0;
      }
      const auto& hin = activations_[l];
      const auto& w = model_.weights_[l];
      auto& dw = dweights[l];
      const std::size_t block = static_cast<std::size_t>(d.din) * static_cast<std::size_t>(d.dout);
      std::vector<double> dhin(g.n * static_cast<std::size_t>(d.din), 0.0);
      std::vector<double> dmin(g.n * static_cast<std::size_t>(d.din), 0.0);
      std::vector<double> dmout(g.n * static_cast<std::size_t>(d.din), 0.0);
      std::vector<double> dw_self(block, 0.0), dw_in(block, 0.0), dw_out(block, 0.0);
      matmul_backward(hin, g.n, d.din, {w.data(), block}, d.dout, dcurrent, dw_self, &dhin);
      matmul_backward(means_in_[l], g.n, d.din, {w.data() + block, block}, d.dout, dcurrent,
                      dw_in, &dmin);
      matmul_backward(means_out_[l], g.n, d.din, {w.data() + 2 * block, block}, d.dout, dcurrent,
                      dw_out, &dmout);
      for (std::size_t i = 0; i < block; ++i) {
        dw[i] += dw_self[i];
        dw[block + i] += dw_in[i];
        dw[2 * block + i] += dw_out[i];
      }
      for (std::size_t v = 0; v < g.n; ++v) {
        const double* grad = dcurrent.data() + v * static_cast<std::size_t>(d.dout);
        for (int j = 0; j < d.dout; ++j) dw[3 * block + static_cast<std::size_t>(j)] += grad[static_cast<std::size_t>(j)];
      }
      mean_aggregate_backward(g.fanins, dmin, d.din, dhin);
      mean_aggregate_backward(g.fanouts, dmout, d.din, dhin);
      dcurrent = std::move(dhin);
    }
  }

 private:
  GnnModel& model_;
  std::vector<LayerDims> dims_;
  // Retained activations for backprop.
  std::vector<std::vector<double>> activations_;  // [0]=input, [l+1]=layer l output
  std::vector<std::vector<double>> means_in_, means_out_;
  std::vector<double> pooled_, hidden_;
  std::vector<std::size_t> argmax_;
};

GnnModel GnnModel::train(std::span<const aig::Aig* const> graphs, std::span<const double> labels,
                         const GnnParams& params, GnnTrainLog* log) {
  if (graphs.size() != labels.size() || graphs.empty()) {
    throw std::invalid_argument("GnnModel::train: graphs/labels mismatch or empty");
  }
  if (params.layers < 1 || params.hidden < 1) {
    throw std::invalid_argument("GnnModel::train: need at least one layer and one hidden unit");
  }
  Timer timer;
  GnnModel model;
  model.params_ = params;
  // Label standardization.
  const double mean = std::accumulate(labels.begin(), labels.end(), 0.0) /
                      static_cast<double>(labels.size());
  double var = 0.0;
  for (const double y : labels) var += (y - mean) * (y - mean);
  var /= static_cast<double>(labels.size());
  model.label_mean_ = mean;
  model.label_std_ = var > 0.0 ? std::sqrt(var) : 1.0;

  GnnEngine engine(model);
  Rng rng(params.seed);
  engine.init_params(rng);

  std::vector<GraphData> data;
  data.reserve(graphs.size());
  for (const Aig* g : graphs) data.push_back(prepare(*g));

  // Adam state per parameter tensor.
  std::vector<Adam> adam_w(model.weights_.size());
  for (std::size_t l = 0; l < model.weights_.size(); ++l) adam_w[l].init(model.weights_[l].size());
  Adam adam_r1, adam_r2;
  adam_r1.init(model.readout1_.size());
  adam_r2.init(model.readout2_.size());

  std::vector<std::size_t> order(graphs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (const std::size_t i : order) {
      const double target = (labels[i] - model.label_mean_) / model.label_std_;
      const double pred = engine.forward(data[i], /*keep_activations=*/true);
      const double err = pred - target;
      epoch_loss += err * err;
      std::vector<std::vector<double>> dweights(model.weights_.size());
      for (std::size_t l = 0; l < model.weights_.size(); ++l) {
        dweights[l].assign(model.weights_[l].size(), 0.0);
      }
      std::vector<double> dr1(model.readout1_.size(), 0.0);
      std::vector<double> dr2(model.readout2_.size(), 0.0);
      engine.backward(data[i], 2.0 * err, dweights, dr1, dr2);
      for (std::size_t l = 0; l < model.weights_.size(); ++l) {
        adam_w[l].step(model.weights_[l], dweights[l], params);
      }
      adam_r1.step(model.readout1_, dr1, params);
      adam_r2.step(model.readout2_, dr2, params);
    }
    if (log != nullptr) {
      log->epoch_mse.push_back(epoch_loss / static_cast<double>(graphs.size()));
    }
  }
  if (log != nullptr) log->train_seconds = timer.elapsed_s();
  return model;
}

double GnnModel::predict(const aig::Aig& g) const {
  GnnModel& self = const_cast<GnnModel&>(*this);
  GnnEngine engine(self);
  const GraphData data = prepare(g);
  const double standardized = engine.forward(data, /*keep_activations=*/false);
  return standardized * label_std_ + label_mean_;
}

}  // namespace aigml::ml
