#pragma once
// Single regression tree trained on gradient/hessian statistics — the weak
// learner inside the gradient-boosting ensemble.  Exact greedy split search
// (sort each candidate feature at each node) with XGBoost-style structure
// scores:
//
//   leaf weight  w* = -G / (H + lambda)
//   split gain   0.5 * [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)] - gamma
//
// Exact search is deterministic and affordable at this library's dataset
// sizes (<= a few 10^5 rows x 22 features); see DESIGN.md §5.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace aigml::ml {

struct TreeParams {
  int max_depth = 6;
  double lambda = 1.0;            ///< L2 regularization on leaf weights
  double gamma = 0.0;             ///< minimum gain to split
  double min_child_weight = 1.0;  ///< minimum hessian sum per child
};

struct TreeNode {
  int feature = -1;        ///< -1 for leaves
  double threshold = 0.0;  ///< go left when x[feature] < threshold
  int left = -1;
  int right = -1;
  double value = 0.0;      ///< leaf weight
  double gain = 0.0;       ///< split gain (internal nodes)
};

class RegressionTree {
 public:
  /// Fits on rows `rows` of `x` (row-major, `num_features` wide) against
  /// gradients/hessians, considering only `features` as split candidates.
  void fit(std::span<const double> x, std::size_t num_features, std::span<const double> gradients,
           std::span<const double> hessians, std::span<const std::size_t> rows,
           std::span<const int> features, const TreeParams& params);

  [[nodiscard]] double predict(std::span<const double> row) const;
  [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Adds each internal node's gain to `importance[feature]`.
  void accumulate_importance(std::span<double> importance) const;

  void serialize(std::ostream& out) const;
  [[nodiscard]] static RegressionTree deserialize(std::istream& in);

  /// Adopts an explicit node list (the v2 loader's TreeNode reconstruction
  /// path), running the same structural validation as deserialize():
  /// forward child indices, finite values, single-tree reachability,
  /// bounded depth.  Throws std::runtime_error on violations.
  [[nodiscard]] static RegressionTree from_nodes(std::vector<TreeNode> nodes);

 private:
  int build(std::span<const double> x, std::size_t num_features,
            std::span<const double> gradients, std::span<const double> hessians,
            std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
            std::span<const int> features, const TreeParams& params, int depth);

  std::vector<TreeNode> nodes_;
};

}  // namespace aigml::ml
