#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/fault.hpp"
#include "util/timer.hpp"

namespace aigml::ml {

GbdtParams paper_gbdt_params() {
  GbdtParams p;
  p.num_trees = 5000;
  p.max_depth = 16;
  p.learning_rate = 0.01;
  p.subsample = 0.8;
  return p;
}

namespace {

/// Flattens a Dataset into a row-major matrix view for tree fitting.
struct Matrix {
  std::vector<double> values;
  std::size_t rows = 0;
  std::size_t cols = 0;
};

Matrix flatten(const Dataset& data) {
  Matrix m;
  m.rows = data.num_rows();
  m.cols = data.num_features();
  m.values.reserve(m.rows * m.cols);
  for (std::size_t i = 0; i < m.rows; ++i) {
    const auto row = data.row(i);
    m.values.insert(m.values.end(), row.begin(), row.end());
  }
  return m;
}

double rmse_of(std::span<const double> preds, std::span<const double> truth) {
  double sum = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const double d = preds[i] - truth[i];
    sum += d * d;
  }
  return preds.empty() ? 0.0 : std::sqrt(sum / static_cast<double>(preds.size()));
}

}  // namespace

GbdtModel GbdtModel::train(const Dataset& train, const GbdtParams& params, const Dataset* valid,
                           TrainLog* log, const GbdtModel* warm_start) {
  if (train.num_rows() == 0) throw std::invalid_argument("GbdtModel::train: empty dataset");
  if (params.num_trees < 1) throw std::invalid_argument("GbdtModel::train: num_trees < 1");
  if (params.subsample <= 0.0 || params.subsample > 1.0) {
    throw std::invalid_argument("GbdtModel::train: subsample must be in (0, 1]");
  }
  if (warm_start != nullptr) {
    if (warm_start->num_features_ != train.num_features()) {
      throw std::invalid_argument("GbdtModel::train: warm-start model expects " +
                                  std::to_string(warm_start->num_features_) +
                                  " features, dataset has " +
                                  std::to_string(train.num_features()));
    }
    if (warm_start->learning_rate_ != params.learning_rate) {
      throw std::invalid_argument(
          "GbdtModel::train: warm-start learning rate mismatch (predict() applies one "
          "shrinkage factor to every tree)");
    }
  }
  Timer timer;
  GbdtModel model;
  model.num_features_ = train.num_features();
  model.learning_rate_ = params.learning_rate;
  if (warm_start != nullptr) {
    model.trees_ = warm_start->trees_;
    model.base_score_ = warm_start->base_score_;
  } else {
    model.base_score_ =
        std::accumulate(train.labels().begin(), train.labels().end(), 0.0) /
        static_cast<double>(train.num_rows());
  }
  const std::size_t warm_trees = model.trees_.size();

  const Matrix x = flatten(train);
  const std::size_t n = train.num_rows();
  std::vector<double> preds(n, model.base_score_);
  std::vector<double> gradients(n, 0.0);
  std::vector<double> hessians(n, 1.0);

  std::optional<Matrix> xv;
  std::vector<double> valid_preds;
  if (valid != nullptr) {
    xv = flatten(*valid);
    valid_preds.assign(valid->num_rows(), model.base_score_);
  }
  if (warm_start != nullptr) {
    // Continue boosting where the warm ensemble left off: residuals are
    // taken against its full prediction, on train and validation alike.
    for (std::size_t i = 0; i < n; ++i) preds[i] = warm_start->predict(train.row(i));
    if (valid != nullptr) {
      for (std::size_t i = 0; i < valid->num_rows(); ++i) {
        valid_preds[i] = warm_start->predict(valid->row(i));
      }
    }
  }

  Rng rng(params.seed);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
  std::vector<int> all_features(train.num_features());
  std::iota(all_features.begin(), all_features.end(), 0);

  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.lambda = params.lambda;
  tree_params.gamma = params.gamma;
  tree_params.min_child_weight = params.min_child_weight;

  double best_valid = std::numeric_limits<double>::infinity();
  int rounds_since_best = 0;
  int best_round = 0;

  for (int round = 0; round < params.num_trees; ++round) {
    for (std::size_t i = 0; i < n; ++i) gradients[i] = preds[i] - train.label(i);

    // Row subsampling (without replacement).
    std::vector<std::size_t> rows = all_rows;
    if (params.subsample < 1.0) {
      rng.shuffle(rows);
      rows.resize(std::max<std::size_t>(1, static_cast<std::size_t>(
                                               params.subsample * static_cast<double>(n))));
    }
    // Column subsampling.
    std::vector<int> features = all_features;
    if (params.colsample < 1.0) {
      rng.shuffle(features);
      features.resize(std::max<std::size_t>(
          1, static_cast<std::size_t>(params.colsample *
                                      static_cast<double>(train.num_features()))));
      std::sort(features.begin(), features.end());
    }

    RegressionTree tree;
    tree.fit(x.values, x.cols, gradients, hessians, rows, features, tree_params);
    for (std::size_t i = 0; i < n; ++i) {
      preds[i] += params.learning_rate * tree.predict(train.row(i));
    }
    model.trees_.push_back(std::move(tree));

    if (log != nullptr) log->train_rmse.push_back(rmse_of(preds, train.labels()));
    if (valid != nullptr) {
      for (std::size_t i = 0; i < valid->num_rows(); ++i) {
        valid_preds[i] += params.learning_rate * model.trees_.back().predict(valid->row(i));
      }
      const double v = rmse_of(valid_preds, valid->labels());
      if (log != nullptr) log->valid_rmse.push_back(v);
      if (v < best_valid - 1e-12) {
        best_valid = v;
        best_round = round + 1;
        rounds_since_best = 0;
      } else if (params.early_stopping_rounds > 0 &&
                 ++rounds_since_best >= params.early_stopping_rounds) {
        model.trees_.resize(warm_trees + static_cast<std::size_t>(best_round));
        break;
      }
    }
  }
  if (log != nullptr) {
    log->best_round = static_cast<int>(model.trees_.size());
    log->train_seconds = timer.elapsed_s();
  }
  model.build_flat_forest();
  return model;
}

void GbdtModel::build_flat_forest() {
  flat_nodes_.clear();
  flat_roots_.clear();
  flat_roots_.reserve(trees_.size());
  std::size_t total = 0;
  for (const RegressionTree& tree : trees_) total += std::max<std::size_t>(tree.nodes().size(), 1);
  flat_nodes_.reserve(total);
  for (const RegressionTree& tree : trees_) {
    flat_roots_.push_back(static_cast<std::uint32_t>(flat_nodes_.size()));
    const auto& nodes = tree.nodes();
    if (nodes.empty()) {
      flat_nodes_.push_back(FlatNode{});  // leaf with value 0 == empty-tree predict
      continue;
    }
    // DFS pre-order re-layout: emit node, then its whole left subtree (so the
    // left child is implicitly index + 1), then the right subtree.
    auto emit = [&](auto&& self, int src) -> std::int32_t {
      const TreeNode& n = nodes[static_cast<std::size_t>(src)];
      const auto dst = static_cast<std::int32_t>(flat_nodes_.size());
      if (n.feature < 0) {
        flat_nodes_.push_back(FlatNode{-1, 0, n.value});
        return dst;
      }
      flat_nodes_.push_back(FlatNode{n.feature, 0, n.threshold});
      (void)self(self, n.left);
      flat_nodes_[static_cast<std::size_t>(dst)].right = self(self, n.right);
      return dst;
    };
    (void)emit(emit, 0);
  }
}

double GbdtModel::predict(std::span<const double> row) const {
  if (row.size() != num_features_) {
    throw std::invalid_argument("GbdtModel::predict: feature width mismatch");
  }
  const FlatNode* nodes = flat_nodes_.data();
  double sum = base_score_;
  for (const std::uint32_t root : flat_roots_) {
    std::size_t i = root;
    while (nodes[i].feature >= 0) {
      i = row[static_cast<std::size_t>(nodes[i].feature)] < nodes[i].value
              ? i + 1
              : static_cast<std::size_t>(nodes[i].right);
    }
    sum += learning_rate_ * nodes[i].value;
  }
  return sum;
}

std::vector<double> GbdtModel::predict_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) out.push_back(predict(data.row(i)));
  return out;
}

std::vector<double> GbdtModel::predict_all(std::span<const double> values,
                                           std::size_t num_rows) const {
  if (values.size() != num_rows * num_features_) {
    throw std::invalid_argument("GbdtModel::predict_all: matrix size mismatch");
  }
  std::vector<double> out;
  out.reserve(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) {
    out.push_back(predict(values.subspan(i * num_features_, num_features_)));
  }
  return out;
}

std::vector<double> GbdtModel::feature_importance() const {
  std::vector<double> importance(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) tree.accumulate_importance(importance);
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

void GbdtModel::serialize(std::ostream& out) const {
  out.precision(17);  // round-trip-safe double precision
  out << "gbdt 1 " << base_score_ << ' ' << learning_rate_ << ' ' << trees_.size() << ' '
      << num_features_ << "\n";
  for (const RegressionTree& tree : trees_) tree.serialize(out);
}

GbdtModel GbdtModel::deserialize(std::istream& in) {
  std::string magic;
  int version = 0;
  std::size_t num_trees = 0;
  GbdtModel model;
  if (!(in >> magic >> version >> model.base_score_ >> model.learning_rate_ >> num_trees >>
        model.num_features_) ||
      magic != "gbdt") {
    throw std::runtime_error("GbdtModel::deserialize: bad header (expected 'gbdt <version> ...')");
  }
  if (version != 1) {
    throw std::runtime_error("GbdtModel::deserialize: unsupported format version " +
                             std::to_string(version) + " (this build reads version 1)");
  }
  // Sanity bounds: a corrupt count must fail loudly here, not as a
  // bad_alloc (or a silently mispredicting ensemble) later.
  constexpr std::size_t kMaxTrees = 1u << 20;
  constexpr std::size_t kMaxFeatures = 1u << 16;
  if (num_trees > kMaxTrees || model.num_features_ == 0 || model.num_features_ > kMaxFeatures) {
    throw std::runtime_error("GbdtModel::deserialize: implausible header (trees=" +
                             std::to_string(num_trees) +
                             ", features=" + std::to_string(model.num_features_) + ")");
  }
  if (!std::isfinite(model.base_score_) || !std::isfinite(model.learning_rate_)) {
    throw std::runtime_error("GbdtModel::deserialize: non-finite base score / learning rate");
  }
  model.trees_.reserve(num_trees);
  for (std::size_t i = 0; i < num_trees; ++i) {
    model.trees_.push_back(RegressionTree::deserialize(in));
    // Tree-local structure is validated by RegressionTree::deserialize; the
    // feature width is only known here.
    for (const TreeNode& n : model.trees_.back().nodes()) {
      if (n.feature >= static_cast<int>(model.num_features_)) {
        throw std::runtime_error("GbdtModel::deserialize: tree " + std::to_string(i) +
                                 " splits on feature " + std::to_string(n.feature) +
                                 " but the model has " + std::to_string(model.num_features_) +
                                 " features");
      }
    }
  }
  model.build_flat_forest();
  return model;
}

void GbdtModel::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("GbdtModel::save: cannot open " + path.string());
  serialize(out);
}

GbdtModel GbdtModel::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("GbdtModel::load: cannot open " + path.string());
  // Chaos site: stand-in for a model file torn by a crash mid-save.  With
  // fsio's tmp+rename save path this should be unreachable in production;
  // callers must still isolate the throw (a failed hot-reload keeps serving
  // the previous generation).
  fault::throw_if(fault::Site::kModelTruncate, "truncated model file");
  return deserialize(in);
}

double rmse(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size()) throw std::invalid_argument("rmse: size mismatch");
  return rmse_of(predicted, truth);
}

double mae(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size()) throw std::invalid_argument("mae: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) sum += std::abs(predicted[i] - truth[i]);
  return predicted.empty() ? 0.0 : sum / static_cast<double>(predicted.size());
}

double r_squared(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size() || truth.size() < 2) return 0.0;
  const double mean =
      std::accumulate(truth.begin(), truth.end(), 0.0) / static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace aigml::ml
