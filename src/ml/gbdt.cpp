#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "ml/model_v2.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace aigml::ml {

GbdtParams paper_gbdt_params() {
  GbdtParams p;
  p.num_trees = 5000;
  p.max_depth = 16;
  p.learning_rate = 0.01;
  p.subsample = 0.8;
  return p;
}

namespace {

/// Flattens a Dataset into a row-major matrix view for tree fitting.
struct Matrix {
  std::vector<double> values;
  std::size_t rows = 0;
  std::size_t cols = 0;
};

Matrix flatten(const Dataset& data) {
  Matrix m;
  m.rows = data.num_rows();
  m.cols = data.num_features();
  m.values.reserve(m.rows * m.cols);
  for (std::size_t i = 0; i < m.rows; ++i) {
    const auto row = data.row(i);
    m.values.insert(m.values.end(), row.begin(), row.end());
  }
  return m;
}

double rmse_of(std::span<const double> preds, std::span<const double> truth) {
  double sum = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const double d = preds[i] - truth[i];
    sum += d * d;
  }
  return preds.empty() ? 0.0 : std::sqrt(sum / static_cast<double>(preds.size()));
}

}  // namespace

GbdtModel GbdtModel::train(const Dataset& train, const GbdtParams& params, const Dataset* valid,
                           TrainLog* log, const GbdtModel* warm_start) {
  if (train.num_rows() == 0) throw std::invalid_argument("GbdtModel::train: empty dataset");
  if (params.num_trees < 1) throw std::invalid_argument("GbdtModel::train: num_trees < 1");
  if (params.subsample <= 0.0 || params.subsample > 1.0) {
    throw std::invalid_argument("GbdtModel::train: subsample must be in (0, 1]");
  }
  if (warm_start != nullptr) {
    if (warm_start->num_features_ != train.num_features()) {
      throw std::invalid_argument("GbdtModel::train: warm-start model expects " +
                                  std::to_string(warm_start->num_features_) +
                                  " features, dataset has " +
                                  std::to_string(train.num_features()));
    }
    if (warm_start->learning_rate_ != params.learning_rate) {
      throw std::invalid_argument(
          "GbdtModel::train: warm-start learning rate mismatch (predict() applies one "
          "shrinkage factor to every tree)");
    }
  }
  Timer timer;
  GbdtModel model;
  model.num_features_ = train.num_features();
  model.learning_rate_ = params.learning_rate;
  if (warm_start != nullptr) {
    // export_trees() rather than trees_: a v2-loaded warm model carries its
    // ensemble only as the mmap'ed flat forest.
    model.trees_ = warm_start->export_trees();
    model.base_score_ = warm_start->base_score_;
  } else {
    model.base_score_ =
        std::accumulate(train.labels().begin(), train.labels().end(), 0.0) /
        static_cast<double>(train.num_rows());
  }
  const std::size_t warm_trees = model.trees_.size();

  const Matrix x = flatten(train);
  const std::size_t n = train.num_rows();
  std::vector<double> preds(n, model.base_score_);
  std::vector<double> gradients(n, 0.0);
  std::vector<double> hessians(n, 1.0);

  std::optional<Matrix> xv;
  std::vector<double> valid_preds;
  if (valid != nullptr) {
    xv = flatten(*valid);
    valid_preds.assign(valid->num_rows(), model.base_score_);
  }
  if (warm_start != nullptr) {
    // Continue boosting where the warm ensemble left off: residuals are
    // taken against its full prediction, on train and validation alike.
    for (std::size_t i = 0; i < n; ++i) preds[i] = warm_start->predict(train.row(i));
    if (valid != nullptr) {
      for (std::size_t i = 0; i < valid->num_rows(); ++i) {
        valid_preds[i] = warm_start->predict(valid->row(i));
      }
    }
  }

  Rng rng(params.seed);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
  std::vector<int> all_features(train.num_features());
  std::iota(all_features.begin(), all_features.end(), 0);

  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.lambda = params.lambda;
  tree_params.gamma = params.gamma;
  tree_params.min_child_weight = params.min_child_weight;

  double best_valid = std::numeric_limits<double>::infinity();
  int rounds_since_best = 0;
  int best_round = 0;

  for (int round = 0; round < params.num_trees; ++round) {
    for (std::size_t i = 0; i < n; ++i) gradients[i] = preds[i] - train.label(i);

    // Row subsampling (without replacement).
    std::vector<std::size_t> rows = all_rows;
    if (params.subsample < 1.0) {
      rng.shuffle(rows);
      rows.resize(std::max<std::size_t>(1, static_cast<std::size_t>(
                                               params.subsample * static_cast<double>(n))));
    }
    // Column subsampling.
    std::vector<int> features = all_features;
    if (params.colsample < 1.0) {
      rng.shuffle(features);
      features.resize(std::max<std::size_t>(
          1, static_cast<std::size_t>(params.colsample *
                                      static_cast<double>(train.num_features()))));
      std::sort(features.begin(), features.end());
    }

    RegressionTree tree;
    tree.fit(x.values, x.cols, gradients, hessians, rows, features, tree_params);
    for (std::size_t i = 0; i < n; ++i) {
      preds[i] += params.learning_rate * tree.predict(train.row(i));
    }
    model.trees_.push_back(std::move(tree));

    if (log != nullptr) log->train_rmse.push_back(rmse_of(preds, train.labels()));
    if (valid != nullptr) {
      for (std::size_t i = 0; i < valid->num_rows(); ++i) {
        valid_preds[i] += params.learning_rate * model.trees_.back().predict(valid->row(i));
      }
      const double v = rmse_of(valid_preds, valid->labels());
      if (log != nullptr) log->valid_rmse.push_back(v);
      if (v < best_valid - 1e-12) {
        best_valid = v;
        best_round = round + 1;
        rounds_since_best = 0;
      } else if (params.early_stopping_rounds > 0 &&
                 ++rounds_since_best >= params.early_stopping_rounds) {
        model.trees_.resize(warm_trees + static_cast<std::size_t>(best_round));
        break;
      }
    }
  }
  if (log != nullptr) {
    log->best_round = static_cast<int>(model.trees_.size());
    log->train_seconds = timer.elapsed_s();
  }
  model.build_flat_forest();
  return model;
}

void GbdtModel::build_flat_forest() {
  flat_nodes_.clear();
  flat_roots_.clear();
  flat_gains_.clear();
  flat_roots_.reserve(trees_.size());
  std::size_t total = 0;
  for (const RegressionTree& tree : trees_) total += std::max<std::size_t>(tree.nodes().size(), 1);
  flat_nodes_.reserve(total);
  flat_gains_.reserve(total);
  for (const RegressionTree& tree : trees_) {
    flat_roots_.push_back(static_cast<std::uint32_t>(flat_nodes_.size()));
    const auto& nodes = tree.nodes();
    if (nodes.empty()) {
      flat_nodes_.push_back(FlatNode{});  // leaf with value 0 == empty-tree predict
      flat_gains_.push_back(0.0);
      continue;
    }
    // DFS pre-order re-layout: emit node, then its whole left subtree (so the
    // left child is implicitly index + 1), then the right subtree.  Gains
    // ride along in a parallel array (leaves carry 0), which keeps
    // feature_importance() and lossless text export working for models
    // whose TreeNode form was never materialized (v2 mmap loads).
    auto emit = [&](auto&& self, int src) -> std::int32_t {
      const TreeNode& n = nodes[static_cast<std::size_t>(src)];
      const auto dst = static_cast<std::int32_t>(flat_nodes_.size());
      if (n.feature < 0) {
        flat_nodes_.push_back(FlatNode{-1, 0, n.value});
        flat_gains_.push_back(0.0);
        return dst;
      }
      flat_nodes_.push_back(FlatNode{n.feature, 0, n.threshold});
      flat_gains_.push_back(n.gain);
      (void)self(self, n.left);
      flat_nodes_[static_cast<std::size_t>(dst)].right = self(self, n.right);
      return dst;
    };
    (void)emit(emit, 0);
  }
}

namespace {

/// Reads a flat node's value in the representation `Q` selects: the fp64
/// FlatNode::value, the binary16 side array, or the per-tree affine int16
/// side array.  One instance per (model, tree); the kernel is templated on
/// Q so the kNone hot path compiles to the plain fp64 load it always was.
template <QuantMode Q>
struct NodeValue {
  const std::uint16_t* f16 = nullptr;
  const std::int16_t* i16 = nullptr;
  double thr_scale = 0.0, thr_bias = 0.0, leaf_scale = 0.0, leaf_bias = 0.0;

  [[nodiscard]] double threshold(const GbdtModel::FlatNode& n, std::size_t i) const {
    if constexpr (Q == QuantMode::kFp16) {
      return fp16_to_double(f16[i]);
    } else if constexpr (Q == QuantMode::kInt16) {
      return static_cast<double>(i16[i]) * thr_scale + thr_bias;
    } else {
      (void)i;
      return n.value;
    }
  }
  [[nodiscard]] double leaf(const GbdtModel::FlatNode& n, std::size_t i) const {
    if constexpr (Q == QuantMode::kFp16) {
      return fp16_to_double(f16[i]);
    } else if constexpr (Q == QuantMode::kInt16) {
      return static_cast<double>(i16[i]) * leaf_scale + leaf_bias;
    } else {
      (void)i;
      return n.value;
    }
  }
};

template <QuantMode Q>
NodeValue<Q> make_node_value(std::span<const std::uint16_t> f16, std::span<const std::int16_t> i16,
                             std::span<const QuantScale> scales, std::size_t tree) {
  NodeValue<Q> v;
  if constexpr (Q == QuantMode::kFp16) {
    v.f16 = f16.data();
  } else if constexpr (Q == QuantMode::kInt16) {
    v.i16 = i16.data();
    const QuantScale& s = scales[tree];
    v.thr_scale = s.thr_scale;
    v.thr_bias = s.thr_bias;
    v.leaf_scale = s.leaf_scale;
    v.leaf_bias = s.leaf_bias;
  }
  (void)f16;
  (void)i16;
  (void)scales;
  (void)tree;
  return v;
}

}  // namespace

template <QuantMode Q>
double GbdtModel::predict_row(std::span<const double> row) const {
  const std::span<const FlatNode> nodes = forest_nodes();
  const std::span<const std::uint32_t> roots = forest_roots();
  double sum = base_score_;
  for (std::size_t t = 0; t < roots.size(); ++t) {
    const NodeValue<Q> val = make_node_value<Q>(values_f16_, values_i16_, quant_scales_, t);
    std::size_t i = roots[t];
    while (nodes[i].feature >= 0) {
      i = row[static_cast<std::size_t>(nodes[i].feature)] < val.threshold(nodes[i], i)
              ? i + 1
              : static_cast<std::size_t>(nodes[i].right);
    }
    sum += learning_rate_ * val.leaf(nodes[i], i);
  }
  return sum;
}

double GbdtModel::predict(std::span<const double> row) const {
  if (row.size() != num_features_) {
    throw std::invalid_argument("GbdtModel::predict: feature width mismatch");
  }
  switch (quant_mode_) {
    case QuantMode::kFp16:
      return predict_row<QuantMode::kFp16>(row);
    case QuantMode::kInt16:
      return predict_row<QuantMode::kInt16>(row);
    case QuantMode::kNone:
      break;
  }
  return predict_row<QuantMode::kNone>(row);
}

std::vector<double> GbdtModel::predict_all(const Dataset& data) const {
  // Dataset stores its rows contiguously row-major, so the whole set rides
  // the tiled batch kernel as one matrix.
  return predict_all(std::span<const double>(data.values()), data.num_rows());
}

namespace {

// Per-node descend record for the batched kernel, built once per
// predict_all() call (O(num_nodes), amortized over the batch).  The design
// goal is a *branchless* step: `i = p.child[lane[p.f] < p.thr]` compiles to
// compare + setcc + indexed load — no conditional branch for the compiler
// to "optimize" the select into (a data-dependent branch mispredicts ~50%
// of descents and serializes the walk).  Leaves self-loop
// (child[0] == child[1] == i), so a lane that reached its leaf early is a
// no-op for the remaining iterations of the tree-depth counted loop.
// Thresholds are pre-decoded through NodeValue<Q>, i.e. the exact doubles
// the scalar walk compares against at the same QuantMode.  32 bytes so a
// node never straddles two cache lines.
struct alignas(32) PackedNode {
  double thr = 0.0;
  std::uint32_t child[2] = {0, 0};  ///< [1] = left (compare true), [0] = right
  std::uint32_t f = 0;              ///< split feature (0 for leaves; unused)
  std::uint32_t pad[3] = {0, 0, 0};
};

// One branch-free descend step for one lane of a SoA tile with stride W.
inline std::uint32_t descend_step(const PackedNode* packed, const double* lane, std::size_t stride,
                                  std::uint32_t i) {
  const PackedNode& p = packed[i];
  return p.child[lane[p.f * stride] < p.thr];
}

}  // namespace

template <QuantMode Q>
std::vector<double> GbdtModel::predict_all_impl(std::span<const double> values,
                                                std::size_t num_rows) const {
  // Tiled compare-and-descend over the flat forest, W rows at a stride.
  //
  // The scalar walk's cost is mispredicted data-dependent branches: GCC
  // compiles its `x < thr ? left : right` select into a branch that guesses
  // wrong on ~half the descents.  The batched kernel removes the branch
  // entirely (PackedNode above) and keeps C=4 lane indices in registers,
  // advancing all of them per iteration of a *counted* loop — the tree's
  // exact depth, precomputed below — so the inner loop is branch-free
  // straight-line code with no data-dependent exit: the out-of-order core
  // overlaps the four independent root-to-leaf chains and the only branch
  // (the depth countdown) predicts perfectly.  Walking tree-major also
  // keeps one tree's nodes hot in L1 for all W lanes.  That is where the
  // >= 4x over the scalar walk comes from (BENCH_model.json).
  //
  // Each lane accumulates base + lr*leaf in tree order, and the packed
  // thresholds are the exact doubles NodeValue<Q> hands the scalar walk —
  // so every batch shape is bit-identical to per-row prediction at any
  // QuantMode (tail rows < W take the scalar walk itself).
  constexpr std::size_t W = 16;
  constexpr std::size_t C = 8;  // register-resident chains per group
  const std::span<const FlatNode> nodes = forest_nodes();
  const std::span<const std::uint32_t> roots = forest_roots();
  const std::size_t nf = num_features_;
  std::vector<double> out(num_rows, 0.0);
  if (num_rows == 0) return out;

  // One O(num_nodes) preorder sweep builds the packed forest and the exact
  // depth of every tree (leaf-only tree = depth 0).  Children always follow
  // their parent in DFS pre-order, so a single forward pass with a scratch
  // depth array finds each tree's deepest node.
  std::vector<PackedNode> packed(nodes.size());
  std::vector<std::uint32_t> tree_depth(roots.size(), 0);
  {
    std::vector<std::uint32_t> depth(nodes.size(), 0);
    for (std::size_t t = 0; t < roots.size(); ++t) {
      const NodeValue<Q> val = make_node_value<Q>(values_f16_, values_i16_, quant_scales_, t);
      const std::size_t begin = roots[t];
      const std::size_t end = t + 1 < roots.size() ? roots[t + 1] : nodes.size();
      std::uint32_t deepest = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const FlatNode& n = nodes[i];
        PackedNode& p = packed[i];
        if (n.feature >= 0) {
          p.thr = val.threshold(n, i);
          p.child[1] = static_cast<std::uint32_t>(i) + 1;
          p.child[0] = static_cast<std::uint32_t>(n.right);
          p.f = static_cast<std::uint32_t>(n.feature);
          const std::uint32_t child_depth = depth[i] + 1;
          depth[i + 1] = child_depth;
          depth[static_cast<std::size_t>(n.right)] = child_depth;
          deepest = std::max(deepest, child_depth);
        } else {
          p.child[0] = p.child[1] = static_cast<std::uint32_t>(i);  // leaf self-loop
        }
      }
      tree_depth[t] = deepest;
    }
  }

  std::vector<double> tile(nf * W);
  std::size_t r = 0;
  for (; r + W <= num_rows; r += W) {
    for (std::size_t w = 0; w < W; ++w) {
      const double* src = values.data() + (r + w) * nf;
      for (std::size_t f = 0; f < nf; ++f) tile[f * W + w] = src[f];
    }
    double sums[W];
    for (double& s : sums) s = base_score_;
    for (std::size_t t = 0; t < roots.size(); ++t) {
      const NodeValue<Q> val = make_node_value<Q>(values_f16_, values_i16_, quant_scales_, t);
      const std::uint32_t root = roots[t];
      const std::uint32_t depth = tree_depth[t];
      for (std::size_t w = 0; w < W; w += C) {
        const double* lane = tile.data() + w;
        std::uint32_t i0 = root, i1 = root, i2 = root, i3 = root;
        std::uint32_t i4 = root, i5 = root, i6 = root, i7 = root;
        for (std::uint32_t d = 0; d < depth; ++d) {
          i0 = descend_step(packed.data(), lane + 0, W, i0);
          i1 = descend_step(packed.data(), lane + 1, W, i1);
          i2 = descend_step(packed.data(), lane + 2, W, i2);
          i3 = descend_step(packed.data(), lane + 3, W, i3);
          i4 = descend_step(packed.data(), lane + 4, W, i4);
          i5 = descend_step(packed.data(), lane + 5, W, i5);
          i6 = descend_step(packed.data(), lane + 6, W, i6);
          i7 = descend_step(packed.data(), lane + 7, W, i7);
        }
        sums[w + 0] += learning_rate_ * val.leaf(nodes[i0], i0);
        sums[w + 1] += learning_rate_ * val.leaf(nodes[i1], i1);
        sums[w + 2] += learning_rate_ * val.leaf(nodes[i2], i2);
        sums[w + 3] += learning_rate_ * val.leaf(nodes[i3], i3);
        sums[w + 4] += learning_rate_ * val.leaf(nodes[i4], i4);
        sums[w + 5] += learning_rate_ * val.leaf(nodes[i5], i5);
        sums[w + 6] += learning_rate_ * val.leaf(nodes[i6], i6);
        sums[w + 7] += learning_rate_ * val.leaf(nodes[i7], i7);
      }
    }
    for (std::size_t w = 0; w < W; ++w) out[r + w] = sums[w];
  }
  for (; r < num_rows; ++r) out[r] = predict_row<Q>(values.subspan(r * nf, nf));
  return out;
}

std::vector<double> GbdtModel::predict_all(std::span<const double> values,
                                           std::size_t num_rows) const {
  if (values.size() != num_rows * num_features_) {
    throw std::invalid_argument("GbdtModel::predict_all: matrix size mismatch");
  }
  switch (quant_mode_) {
    case QuantMode::kFp16:
      return predict_all_impl<QuantMode::kFp16>(values, num_rows);
    case QuantMode::kInt16:
      return predict_all_impl<QuantMode::kInt16>(values, num_rows);
    case QuantMode::kNone:
      break;
  }
  return predict_all_impl<QuantMode::kNone>(values, num_rows);
}

std::vector<double> GbdtModel::feature_importance() const {
  // Off the flat forest + parallel gains, so v2-loaded models (no TreeNode
  // form) report the same importances as the model they were converted from.
  std::vector<double> importance(num_features_, 0.0);
  const std::span<const FlatNode> nodes = forest_nodes();
  const std::span<const double> gains = forest_gains();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].feature >= 0) importance[static_cast<std::size_t>(nodes[i].feature)] += gains[i];
  }
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

std::vector<RegressionTree> GbdtModel::export_trees() const {
  if (!trees_.empty() || forest_roots().empty()) return trees_;
  // v2-loaded model: rebuild TreeNode form from the flat forest.  The flat
  // DFS pre-order indices double as TreeNode indices (left = i + 1 within
  // the tree, right = flat right made tree-relative); gains come from the
  // parallel section, so a text export after a v2 round-trip loses nothing.
  const std::span<const FlatNode> nodes = forest_nodes();
  const std::span<const std::uint32_t> roots = forest_roots();
  const std::span<const double> gains = forest_gains();
  std::vector<RegressionTree> out;
  out.reserve(roots.size());
  for (std::size_t t = 0; t < roots.size(); ++t) {
    const std::size_t begin = roots[t];
    const std::size_t end = t + 1 < roots.size() ? roots[t + 1] : nodes.size();
    std::vector<TreeNode> tree_nodes(end - begin);
    for (std::size_t j = 0; j < tree_nodes.size(); ++j) {
      const FlatNode& n = nodes[begin + j];
      TreeNode& dst = tree_nodes[j];
      if (n.feature < 0) {
        dst.value = n.value;
      } else {
        dst.feature = n.feature;
        dst.threshold = n.value;
        dst.left = static_cast<int>(j) + 1;
        dst.right = n.right - static_cast<int>(begin);
        dst.gain = gains[begin + j];
      }
    }
    out.push_back(RegressionTree::from_nodes(std::move(tree_nodes)));
  }
  return out;
}

void GbdtModel::serialize(std::ostream& out) const {
  const std::vector<RegressionTree> exported = trees_.empty() ? export_trees() : std::vector<RegressionTree>{};
  const std::vector<RegressionTree>& trees = trees_.empty() ? exported : trees_;
  out.precision(17);  // round-trip-safe double precision
  out << "gbdt 1 " << base_score_ << ' ' << learning_rate_ << ' ' << trees.size() << ' '
      << num_features_ << "\n";
  for (const RegressionTree& tree : trees) tree.serialize(out);
}

GbdtModel GbdtModel::deserialize(std::istream& in) {
  std::string magic;
  int version = 0;
  std::size_t num_trees = 0;
  GbdtModel model;
  if (!(in >> magic >> version >> model.base_score_ >> model.learning_rate_ >> num_trees >>
        model.num_features_) ||
      magic != "gbdt") {
    throw std::runtime_error("GbdtModel::deserialize: bad header (expected 'gbdt <version> ...')");
  }
  if (version != 1) {
    throw std::runtime_error("GbdtModel::deserialize: unsupported format version " +
                             std::to_string(version) + " (this build reads version 1)");
  }
  // Sanity bounds: a corrupt count must fail loudly here, not as a
  // bad_alloc (or a silently mispredicting ensemble) later.
  constexpr std::size_t kMaxTrees = 1u << 20;
  constexpr std::size_t kMaxFeatures = 1u << 16;
  if (num_trees > kMaxTrees || model.num_features_ == 0 || model.num_features_ > kMaxFeatures) {
    throw std::runtime_error("GbdtModel::deserialize: implausible header (trees=" +
                             std::to_string(num_trees) +
                             ", features=" + std::to_string(model.num_features_) + ")");
  }
  if (!std::isfinite(model.base_score_) || !std::isfinite(model.learning_rate_)) {
    throw std::runtime_error("GbdtModel::deserialize: non-finite base score / learning rate");
  }
  model.trees_.reserve(num_trees);
  for (std::size_t i = 0; i < num_trees; ++i) {
    model.trees_.push_back(RegressionTree::deserialize(in));
    // Tree-local structure is validated by RegressionTree::deserialize; the
    // feature width is only known here.
    for (const TreeNode& n : model.trees_.back().nodes()) {
      if (n.feature >= static_cast<int>(model.num_features_)) {
        throw std::runtime_error("GbdtModel::deserialize: tree " + std::to_string(i) +
                                 " splits on feature " + std::to_string(n.feature) +
                                 " but the model has " + std::to_string(model.num_features_) +
                                 " features");
      }
    }
  }
  model.build_flat_forest();
  return model;
}

void GbdtModel::save(const std::filesystem::path& path) const {
  if (path.extension() == ".gbdt2") {
    save_v2(path);
    return;
  }
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("GbdtModel::save: cannot open " + path.string());
  serialize(out);
}

GbdtModel GbdtModel::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("GbdtModel::load: cannot open " + path.string());
  // Chaos site: stand-in for a model file torn by a crash mid-save.  With
  // fsio's tmp+rename save path this should be unreachable in production;
  // callers must still isolate the throw (a failed hot-reload keeps serving
  // the previous generation).
  fault::throw_if(fault::Site::kModelTruncate, "truncated model file");
  return deserialize(in);
}

double rmse(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size()) throw std::invalid_argument("rmse: size mismatch");
  return rmse_of(predicted, truth);
}

double mae(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size()) throw std::invalid_argument("mae: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) sum += std::abs(predicted[i] - truth[i]);
  return predicted.empty() ? 0.0 : sum / static_cast<double>(predicted.size());
}

double r_squared(std::span<const double> predicted, std::span<const double> truth) {
  if (predicted.size() != truth.size() || truth.size() < 2) return 0.0;
  const double mean =
      std::accumulate(truth.begin(), truth.end(), 0.0) / static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace aigml::ml
