#pragma once
// Message-passing graph neural network for AIG delay/area prediction — the
// baseline the paper ablates against (§III-B: "GNN-based timing prediction
// is 2% worse than the decision-tree-based model on average ... and the
// training cost is also much higher"), wired into the stack as the second
// Model family (model.hpp, DESIGN.md §14).
//
// Architecture (built from scratch; no external tensor library):
//   node features x_v = [is_pi, is_and, fanin0_neg, fanin1_neg,
//                        level / max_level, log2(1+fanout) / 6]
//   L message-passing layers:
//       h'_v = ReLU(W_self h_v + W_in mean_{u in fanin(v)} h_u
//                              + W_out mean_{u in fanout(v)} h_u + b)
//   readout: concat(mean_v h_v, max_v h_v) -> ReLU(U1 .) -> scalar
// trained with Adam on standardized labels, MSE loss, full backprop
// implemented manually.  Training is single-threaded and seeded, so a
// fixed seed yields bit-identical weights at any thread count.
//
// Inference comes in two bit-identical shapes:
//   * predict(g) — the per-graph reference path (fresh buffers per call);
//   * predict_graphs(batch) — one batched message-passing pass over the
//     concatenated batch: node features, CSR adjacency, and activations for
//     every graph live in flat arrays with per-graph segment offsets, so
//     each layer is one matmul sweep over all nodes and pooling reduces per
//     segment.  Per-node arithmetic order matches the reference exactly
//     (adjacency never crosses a segment), so results are bit-identical for
//     every batch shape — enforced by tests/test_gnn.cpp and bench_gnn.
//
// Serialization: the .gnn binary container (version 1) — "AGNN" magic, a
// fixed header (dims + training hyperparameters + label standardization),
// an FNV-1a checksum over everything after the checksum word, then the raw
// f64 weight tensors.  save() goes through fsio::write_file_atomic; load()
// validates magic/version, bounded dims, the exact file size implied by the
// header, the checksum, and weight finiteness before touching anything —
// truncation at any prefix and any single-byte mutation are rejected
// (hostile-input standard of .gbdt2, DESIGN.md §13).

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace aigml::ml {

inline constexpr int kGnnNodeFeatures = 6;
inline constexpr std::uint32_t kGnnFormatVersion = 1;

struct GnnParams {
  int hidden = 16;
  int layers = 2;
  int epochs = 60;
  double learning_rate = 3e-3;
  std::uint64_t seed = 0x99aa;
  /// Adam moments.
  double beta1 = 0.9;
  double beta2 = 0.999;
};

struct GnnTrainLog {
  std::vector<double> epoch_mse;  ///< standardized-label MSE per epoch
  double train_seconds = 0.0;
};

class GnnModel final : public Model {
 public:
  // ---- Model interface (model.hpp) ----------------------------------------
  [[nodiscard]] ModelFamily family() const noexcept override { return ModelFamily::kGnn; }
  [[nodiscard]] bool needs_graph() const noexcept override { return true; }
  /// Per-node feature width (NOT a flat-row width — see needs_graph()).
  [[nodiscard]] std::size_t num_features() const noexcept override {
    return static_cast<std::size_t>(kGnnNodeFeatures);
  }
  /// Flat feature rows carry no graph structure: always throws
  /// std::logic_error (callers check needs_graph() and route the AIG).
  [[nodiscard]] double predict(std::span<const double> row) const override;

  /// Trains on graphs with raw-unit labels (labels are standardized
  /// internally).  `graphs` entries must outlive the call only.
  ///
  /// `warm_start` seeds the optimization from an existing model's weights
  /// instead of the random init — the cheap "fresh fit on base + harvested
  /// graphs" refresh the active-learning loop (learn::Retrainer) runs
  /// in-search.  The warm model's hidden/layers must match params
  /// (std::invalid_argument otherwise); its label standardization is kept so
  /// the warm weights start consistent with the regression target's scale.
  static GnnModel train(std::span<const aig::Aig* const> graphs, std::span<const double> labels,
                        const GnnParams& params, GnnTrainLog* log = nullptr,
                        const GnnModel* warm_start = nullptr);

  /// Predicts the raw-unit label for a graph (the scalar reference path).
  [[nodiscard]] double predict(const aig::Aig& g) const override;
  /// Batched inference: one message-passing pass over the concatenated
  /// batch, bit-identical to calling predict() per graph (header comment).
  [[nodiscard]] std::vector<double> predict_graphs(
      std::span<const aig::Aig* const> graphs) const override;

  // ---- .gnn container (header comment; format in DESIGN.md §14) -----------
  /// The complete container as bytes.
  [[nodiscard]] std::string serialize() const;
  /// Validating parse of serialize() bytes; throws std::runtime_error on
  /// anything malformed (truncation, mutation, unbounded dims, non-finite
  /// weights).
  [[nodiscard]] static GnnModel deserialize(std::string_view bytes);
  /// serialize() through fsio::write_file_atomic — a reader (or a crash) at
  /// any instant sees the old container or the new one, never a torn one.
  void save(const std::filesystem::path& path) const override;
  [[nodiscard]] static GnnModel load(const std::filesystem::path& path);

  [[nodiscard]] const GnnParams& params() const noexcept { return params_; }
  [[nodiscard]] double label_mean() const noexcept { return label_mean_; }
  [[nodiscard]] double label_std() const noexcept { return label_std_; }

 private:
  friend class GnnEngine;
  friend class GnnBatchEngine;
  GnnParams params_;
  // Parameters, flattened per layer: W_self, W_in, W_out (H_in x H_out), b.
  std::vector<std::vector<double>> weights_;
  std::vector<double> readout1_;  // (2H x H) + H bias
  std::vector<double> readout2_;  // (H) + 1 bias
  double label_mean_ = 0.0;
  double label_std_ = 1.0;
};

}  // namespace aigml::ml
