#pragma once
// Message-passing graph neural network for AIG delay prediction — the
// baseline the paper ablates against (§III-B: "GNN-based timing prediction
// is 2% worse than the decision-tree-based model on average ... and the
// training cost is also much higher").
//
// Architecture (built from scratch; no external tensor library):
//   node features x_v = [is_pi, is_and, fanin0_neg, fanin1_neg,
//                        level / max_level, log2(1+fanout) / 6]
//   L message-passing layers:
//       h'_v = ReLU(W_self h_v + W_in mean_{u in fanin(v)} h_u
//                              + W_out mean_{u in fanout(v)} h_u + b)
//   readout: concat(mean_v h_v, max_v h_v) -> ReLU(U1 .) -> scalar
// trained with Adam on standardized labels, MSE loss, full backprop
// implemented manually.

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace aigml::ml {

inline constexpr int kGnnNodeFeatures = 6;

struct GnnParams {
  int hidden = 16;
  int layers = 2;
  int epochs = 60;
  double learning_rate = 3e-3;
  std::uint64_t seed = 0x99aa;
  /// Adam moments.
  double beta1 = 0.9;
  double beta2 = 0.999;
};

struct GnnTrainLog {
  std::vector<double> epoch_mse;  ///< standardized-label MSE per epoch
  double train_seconds = 0.0;
};

class GnnModel {
 public:
  /// Trains on graphs with raw-unit labels (labels are standardized
  /// internally).  `graphs` entries must outlive the call only.
  static GnnModel train(std::span<const aig::Aig* const> graphs, std::span<const double> labels,
                        const GnnParams& params, GnnTrainLog* log = nullptr);

  /// Predicts the raw-unit label for a graph.
  [[nodiscard]] double predict(const aig::Aig& g) const;

  [[nodiscard]] const GnnParams& params() const noexcept { return params_; }

 private:
  friend class GnnEngine;
  GnnParams params_;
  // Parameters, flattened per layer: W_self, W_in, W_out (H_in x H_out), b.
  std::vector<std::vector<double>> weights_;
  std::vector<double> readout1_;  // (2H x H) + H bias
  std::vector<double> readout2_;  // (H) + 1 bias
  double label_mean_ = 0.0;
  double label_std_ = 1.0;
};

}  // namespace aigml::ml
