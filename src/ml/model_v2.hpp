#pragma once
// .gbdt2 — the binary mmap model container (DESIGN.md §13).
//
// Layout (all integers little-endian, all section payloads 8-byte aligned):
//
//   V2Header   { "GBT2", version=2, num_trees, num_nodes, num_features,
//                base_score, learning_rate, section_count }
//   V2Section  table: { kind, offset, length } per section
//   sections:
//     kNodes        num_nodes * GbdtModel::FlatNode (16 B, DFS pre-order,
//                   tree-by-tree; leaves store right == 0)
//     kRoots        num_trees * u32 root indices (strictly increasing from 0)
//     kGains        num_nodes * f64 split gains (0 for leaves)
//     kValuesF16    num_nodes * u16 IEEE binary16 of FlatNode::value
//     kValuesI16    num_nodes * i16 affine-quantized FlatNode::value
//     kQuantScales  num_trees * QuantScale (int16 decode parameters)
//
// GbdtModel::serialize_v2/save_v2/load_v2 (declared in gbdt.hpp, defined in
// model_v2.cpp) produce and consume this format; this header carries the
// pieces other layers need without the full model: the extension constant,
// the binary16 conversion primitives (also used by the inference kernel),
// and a cheap header-only inspector for tooling (`aigml convert`, STATS).

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>

#include "ml/gbdt.hpp"

namespace aigml::ml {

inline constexpr const char* kModelV2Extension = ".gbdt2";

/// double -> IEEE 754 binary16 bits, round-to-nearest-even (via float, so
/// the cast chain is the platform's RNE both times).  Out-of-range values
/// saturate to +-inf; NaN stays NaN.
[[nodiscard]] inline std::uint16_t fp16_from_double(double d) noexcept {
  const auto x = std::bit_cast<std::uint32_t>(static_cast<float>(d));
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t exp = (x >> 23) & 0xFFu;
  const std::uint32_t frac = x & 0x7FFFFFu;
  if (exp == 0xFFu) {  // inf / nan (keep nan's payload bit set)
    return static_cast<std::uint16_t>(sign | 0x7C00u | (frac != 0 ? 0x200u : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow
  if (e <= 0) {
    if (e < -10) return sign;  // underflows past the smallest subnormal
    const std::uint32_t mant = frac | 0x800000u;
    const int shift = 14 - e;  // 14..24
    auto h = static_cast<std::uint16_t>(mant >> shift);
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (h & 1u) != 0)) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  auto h = static_cast<std::uint16_t>((static_cast<std::uint32_t>(e) << 10) | (frac >> 13));
  const std::uint32_t rem = frac & 0x1FFFu;
  // The round-up carry propagates through the exponent bits correctly
  // (1.111... * 2^e rounds to 1.0 * 2^(e+1); 2^30 binade rounds to inf).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u) != 0)) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

/// IEEE 754 binary16 bits -> double (exact — every binary16 value is
/// representable in binary32 and binary64).
[[nodiscard]] inline double fp16_to_double(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h >> 15) << 31;
  std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t frac = h & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0) {
    if (frac == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: renormalize into a normal float.
      exp = 127 - 15 + 1;
      while ((frac & 0x400u) == 0) {
        frac <<= 1;
        --exp;
      }
      bits = sign | (exp << 23) | ((frac & 0x3FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (frac << 13);  // inf / nan
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (frac << 13);
  }
  return static_cast<double>(std::bit_cast<float>(bits));
}

/// Header-level facts about a .gbdt2 file, read without loading the model.
struct ModelV2Info {
  std::uint32_t version = 0;
  std::size_t num_trees = 0;
  std::size_t num_nodes = 0;
  std::size_t num_features = 0;
  double base_score = 0.0;
  double learning_rate = 0.0;
  bool has_fp16 = false;
  bool has_int16 = false;
  std::uintmax_t file_size = 0;
};

/// Parses and validates the header + section table only (no forest
/// validation); throws std::runtime_error on anything malformed.
[[nodiscard]] ModelV2Info inspect_v2(const std::filesystem::path& path);

}  // namespace aigml::ml
