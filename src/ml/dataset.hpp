#pragma once
// Tabular regression dataset: feature rows + labels + a per-row tag (the
// design name), with CSV persistence for caching generated datasets.

#include <span>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace aigml::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  void append(std::span<const double> features, double label, std::string tag = {});

  [[nodiscard]] std::size_t num_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return feature_names_.size(); }
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * num_features(), num_features()};
  }
  [[nodiscard]] double label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<double>& labels() const noexcept { return labels_; }
  [[nodiscard]] const std::string& tag(std::size_t i) const { return tags_[i]; }

  /// Rows whose tag matches.
  [[nodiscard]] std::vector<std::size_t> rows_with_tag(const std::string& tag) const;
  /// Distinct tags in first-appearance order.
  [[nodiscard]] std::vector<std::string> distinct_tags() const;
  /// New dataset containing only the given rows.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> rows) const;
  /// Appends all rows of `other` (feature schemas must agree).
  void merge(const Dataset& other);

  /// CSV persistence; schema: tag, <features...>, label.
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static std::optional<Dataset> load(const std::filesystem::path& path);

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> values_;  // row-major
  std::vector<double> labels_;
  std::vector<std::string> tags_;
};

}  // namespace aigml::ml
