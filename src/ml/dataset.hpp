#pragma once
// Tabular regression dataset: feature rows + labels + a per-row tag (the
// design name) + an optional per-row dedup key (flow::variant_signature of
// the AIG the row was extracted from; 0 = unkeyed), with CSV persistence
// for caching generated datasets.
//
// Keys exist for the active-learning loop (learn/): harvested rows carry
// the structural signature of the state they were labeled from, so
// merge_dedup can fold successive harvest batches into one training set
// without ever training on the same structure twice, and sorted_by_key
// gives the merged set a canonical row order — GBDT row subsampling indexes
// rows by position, so canonicalization is what makes retraining
// independent of the order harvest batches arrived in (locked in by
// tests/test_learn.cpp).  Keyed datasets persist as (tag, key,
// <features...>, label) so the identity survives the CSV cache; unkeyed
// datasets keep the legacy schema and legacy files load with key 0
// everywhere.

#include <span>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace aigml::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  void append(std::span<const double> features, double label, std::string tag = {},
              std::uint64_t key = 0);

  [[nodiscard]] std::size_t num_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return feature_names_.size(); }
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {values_.data() + i * num_features(), num_features()};
  }
  /// The whole feature matrix, row-major (num_rows() x num_features()) —
  /// feeds GbdtModel's batched predict_all without a copy.
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] double label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<double>& labels() const noexcept { return labels_; }
  [[nodiscard]] const std::string& tag(std::size_t i) const { return tags_[i]; }
  /// Dedup key of row `i`; 0 means unkeyed (never dedups).
  [[nodiscard]] std::uint64_t key(std::size_t i) const { return keys_[i]; }

  /// Rows whose tag matches.
  [[nodiscard]] std::vector<std::size_t> rows_with_tag(const std::string& tag) const;
  /// Distinct tags in first-appearance order.
  [[nodiscard]] std::vector<std::string> distinct_tags() const;
  /// New dataset containing only the given rows.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> rows) const;

  /// Appends all rows of `other` (feature schemas must agree), keys and tags
  /// included.  No dedup — the bulk-append primitive.
  void append_rows(const Dataset& other);
  /// Back-compat alias for append_rows.
  void merge(const Dataset& other) { append_rows(other); }
  /// Appends the rows of `other` whose nonzero key is not already present in
  /// this dataset (unkeyed rows always append).  Returns the number of rows
  /// appended.  Duplicate keys *within* `other` keep only the first row.
  std::size_t merge_dedup(const Dataset& other);
  /// Canonical row order for order-independent training: unkeyed rows first
  /// in their current order, then keyed rows ascending by key (ties keep
  /// current order).  Any sequence of merge_dedup calls delivering the same
  /// row *set* canonicalizes to the same dataset.
  [[nodiscard]] Dataset sorted_by_key() const;

  [[nodiscard]] bool operator==(const Dataset&) const = default;

  /// CSV persistence; schema: tag, <features...>, label (keys are dropped).
  void save(const std::filesystem::path& path) const;
  [[nodiscard]] static std::optional<Dataset> load(const std::filesystem::path& path);

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> values_;  // row-major
  std::vector<double> labels_;
  std::vector<std::string> tags_;
  std::vector<std::uint64_t> keys_;
};

}  // namespace aigml::ml
