#include "mapper/mapper.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "aig/analysis.hpp"
#include "aig/truth.hpp"

namespace aigml::map {

using aig::Aig;
using aig::Cut;
using aig::CutSets;
using aig::Lit;
using aig::NodeId;
using cell::Library;
using net::NetId;
using net::Netlist;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ChoiceKind : std::uint8_t { None, CellMatch, Inverter, Constant };

struct Choice {
  ChoiceKind kind = ChoiceKind::None;
  std::uint32_t cut_index = 0;   ///< CellMatch: index into cuts(node)
  cell::Match match;             ///< CellMatch: pin binding
  bool const_value = false;      ///< Constant: output value
  double arrival_ps = kInf;
  double area_flow = kInf;
};

/// Comparison under the mapping objective; returns true when `a` beats `b`.
bool better(const Choice& a, const Choice& b, MapMode mode) {
  if (b.kind == ChoiceKind::None) return a.kind != ChoiceKind::None;
  if (a.kind == ChoiceKind::None) return false;
  constexpr double kEps = 1e-9;
  if (mode == MapMode::Delay) {
    if (a.arrival_ps < b.arrival_ps - kEps) return true;
    if (a.arrival_ps > b.arrival_ps + kEps) return false;
    return a.area_flow < b.area_flow - kEps;
  }
  if (a.area_flow < b.area_flow - kEps) return true;
  if (a.area_flow > b.area_flow + kEps) return false;
  return a.arrival_ps < b.arrival_ps - kEps;
}

/// Per-node, per-phase matcher state and cover extraction context.
class Mapper {
 public:
  Mapper(const Aig& g, const Library& lib, const MapParams& params)
      : g_(g),
        lib_(lib),
        params_(params),
        cuts_(g, aig::CutParams{params.cut_size, params.cuts_per_node}),
        fanout_(aig::fanout_counts(g)),
        best_(g.num_nodes()),
        net_of_(g.num_nodes(), {net::kNetInvalid, net::kNetInvalid}) {
    // Average input pin capacitance: the expected per-receiver load.
    double cap_sum = 0.0;
    std::size_t cap_count = 0;
    for (const cell::Cell& c : lib_.cells()) {
      if (c.num_inputs > 0) {
        cap_sum += c.input_cap_ff;
        ++cap_count;
      }
    }
    avg_pin_cap_ff_ = cap_count > 0 ? cap_sum / static_cast<double>(cap_count) : 2.0;
    const cell::Cell& inv = lib_.cell(lib_.inverter_id());
    inv_delay_ps_ = lib_.pin_delay_ps(inv, params_.assumed_load_ff);
    inv_area_ = inv.area_um2;
  }

  /// Fanout-aware output-load estimate for a node, aligning matcher arrivals
  /// with post-STA reality (high-fanout nodes look slower, which steers
  /// delay mode toward stronger drive variants).
  [[nodiscard]] double est_load_ff(NodeId id) const {
    const double fanout_load = static_cast<double>(fanout_[id]) *
                               (avg_pin_cap_ff_ + params_.wire_cap_per_fanout_ff);
    return std::max(params_.assumed_load_ff, fanout_load);
  }

  Netlist run(MapStats* stats);

 private:
  void match_all();
  void match_node(NodeId id);
  [[nodiscard]] double input_arrival(NodeId leaf, bool negated) const {
    return best_[leaf][negated ? 1 : 0].arrival_ps;
  }
  [[nodiscard]] double input_area_flow(NodeId leaf, bool negated) const {
    return best_[leaf][negated ? 1 : 0].area_flow;
  }

  NetId realize(NodeId node, bool phase);
  NetId const_net(bool value);

  const Aig& g_;
  const Library& lib_;
  MapParams params_;
  CutSets cuts_;
  std::vector<std::uint32_t> fanout_;
  std::vector<std::array<Choice, 2>> best_;
  std::vector<std::array<NetId, 2>> net_of_;
  Netlist out_;
  std::array<NetId, 2> const_nets_ = {net::kNetInvalid, net::kNetInvalid};
  double avg_pin_cap_ff_ = 2.0;
  double inv_delay_ps_ = 0.0;
  double inv_area_ = 0.0;
  std::size_t inverters_added_ = 0;
};

void Mapper::match_all() {
  // Constant node (id 0): free constants of both phases.
  best_[0][0] = Choice{ChoiceKind::Constant, 0, {}, false, 0.0, 0.0};
  best_[0][1] = Choice{ChoiceKind::Constant, 0, {}, true, 0.0, 0.0};
  for (const NodeId pi : g_.inputs()) {
    best_[pi][0] = Choice{ChoiceKind::None, 0, {}, false, 0.0, 0.0};
    best_[pi][0].kind = ChoiceKind::CellMatch;  // marker: PI itself, no gate
    best_[pi][0].arrival_ps = 0.0;
    best_[pi][0].area_flow = 0.0;
    Choice inv;
    inv.kind = ChoiceKind::Inverter;
    inv.arrival_ps = lib_.pin_delay_ps(lib_.cell(lib_.inverter_id()), est_load_ff(pi));
    inv.area_flow = inv_area_ / std::max(1u, fanout_[pi]);
    best_[pi][1] = inv;
  }
  for (NodeId id = 0; id < g_.num_nodes(); ++id) {
    if (g_.is_and(id)) match_node(id);
  }
}

void Mapper::match_node(NodeId id) {
  const auto& cut_list = cuts_.cuts(id);
  const std::uint32_t refs = std::max(1u, fanout_[id]);
  for (int phase = 0; phase < 2; ++phase) {
    Choice& slot = best_[id][static_cast<std::size_t>(phase)];
    for (std::uint32_t ci = 0; ci < cut_list.size(); ++ci) {
      const Cut& cut = cut_list[ci];
      const std::uint64_t table = phase ? ~cut.table : cut.table;
      if (cut.size == 0) {
        // Node proven constant over an empty leaf set.
        Choice c;
        c.kind = ChoiceKind::Constant;
        c.const_value = table == aig::tt_const1();
        c.arrival_ps = 0.0;
        c.area_flow = 0.0;
        if (better(c, slot, params_.mode)) slot = c;
        continue;
      }
      const double node_load = est_load_ff(id);
      for (const cell::Match& m : lib_.matches(table, cut.size)) {
        const cell::Cell& c = lib_.cell(m.cell_id);
        const double pin_delay = lib_.pin_delay_ps(c, node_load);
        double arrival = 0.0;
        double flow = c.area_um2;
        bool feasible = true;
        for (int pin = 0; pin < c.num_inputs; ++pin) {
          const NodeId leaf = cut.leaves[m.leaf_of_pin[static_cast<std::size_t>(pin)]];
          const bool neg = ((m.input_neg_mask >> pin) & 1) != 0;
          const double in_arr = input_arrival(leaf, neg);
          if (in_arr == kInf) {
            feasible = false;
            break;
          }
          arrival = std::max(arrival, in_arr + pin_delay);
          flow += input_area_flow(leaf, neg);
        }
        if (!feasible) continue;
        Choice cand;
        cand.kind = ChoiceKind::CellMatch;
        cand.cut_index = ci;
        cand.match = m;
        cand.arrival_ps = arrival;
        cand.area_flow = flow / refs;
        if (better(cand, slot, params_.mode)) slot = cand;
      }
    }
  }
  // Phase relaxation through an inverter (once is enough: two chained
  // inverters can never beat the direct phase).
  for (int phase = 0; phase < 2; ++phase) {
    const Choice& other = best_[id][static_cast<std::size_t>(1 - phase)];
    if (other.kind == ChoiceKind::None || other.kind == ChoiceKind::Inverter) continue;
    Choice inv;
    inv.kind = ChoiceKind::Inverter;
    inv.arrival_ps = other.arrival_ps +
                     lib_.pin_delay_ps(lib_.cell(lib_.inverter_id()), est_load_ff(id));
    inv.area_flow = other.area_flow + inv_area_ / refs;
    Choice& slot = best_[id][static_cast<std::size_t>(phase)];
    if (better(inv, slot, params_.mode)) slot = inv;
  }
  if (best_[id][0].kind == ChoiceKind::None && best_[id][1].kind == ChoiceKind::None) {
    throw std::logic_error("mapper: node has no feasible match in either phase; "
                           "library is not functionally complete");
  }
}

NetId Mapper::const_net(bool value) {
  NetId& slot = const_nets_[value ? 1 : 0];
  if (slot == net::kNetInvalid) slot = out_.add_const_net(value);
  return slot;
}

NetId Mapper::realize(NodeId node, bool phase) {
  NetId& memo = net_of_[node][phase ? 1 : 0];
  if (memo != net::kNetInvalid) return memo;

  if (g_.is_constant(node)) {
    return memo = const_net(phase);
  }
  if (g_.is_input(node)) {
    if (!phase) {
      throw std::logic_error("mapper: PI nets must be created before realize()");
    }
    const NetId in = realize(node, false);
    ++inverters_added_;
    return memo = out_.add_gate(lib_.inverter_id(), {in});
  }
  const Choice& choice = best_[node][phase ? 1 : 0];
  switch (choice.kind) {
    case ChoiceKind::Constant:
      return memo = const_net(choice.const_value);
    case ChoiceKind::Inverter: {
      const NetId in = realize(node, !phase);
      ++inverters_added_;
      return memo = out_.add_gate(lib_.inverter_id(), {in});
    }
    case ChoiceKind::CellMatch: {
      const Cut& cut = cuts_.cuts(node)[choice.cut_index];
      const cell::Cell& c = lib_.cell(choice.match.cell_id);
      std::vector<NetId> pins(static_cast<std::size_t>(c.num_inputs));
      for (int pin = 0; pin < c.num_inputs; ++pin) {
        const NodeId leaf = cut.leaves[choice.match.leaf_of_pin[static_cast<std::size_t>(pin)]];
        const bool neg = ((choice.match.input_neg_mask >> pin) & 1) != 0;
        pins[static_cast<std::size_t>(pin)] = realize(leaf, neg);
      }
      return memo = out_.add_gate(choice.match.cell_id, std::move(pins));
    }
    case ChoiceKind::None:
      break;
  }
  throw std::logic_error("mapper: cover references an unmatched (node, phase)");
}

Netlist Mapper::run(MapStats* stats) {
  match_all();
  // PI nets exist unconditionally (interface preservation).
  for (std::uint32_t i = 0; i < g_.num_inputs(); ++i) {
    const NodeId node = g_.inputs()[i];
    net_of_[node][0] = out_.add_pi_net(i, g_.input_name(i));
  }
  double est_arrival = 0.0;
  for (std::size_t o = 0; o < g_.num_outputs(); ++o) {
    const Lit lit = g_.outputs()[o];
    const NodeId node = aig::lit_var(lit);
    const bool phase = aig::lit_is_complemented(lit);
    const NetId net_id = realize(node, phase);
    out_.add_output(net_id, g_.output_name(o));
    est_arrival = std::max(est_arrival, best_[node][phase ? 1 : 0].arrival_ps);
  }
  if (stats != nullptr) {
    stats->num_gates = out_.num_gates();
    stats->num_inverters_added = inverters_added_;
    stats->estimated_arrival_ps = est_arrival;
  }
  return std::move(out_);
}

}  // namespace

Netlist map_to_cells(const Aig& g, const Library& lib, const MapParams& params, MapStats* stats) {
  if (params.cut_size < 2 || params.cut_size > cell::kMaxCellInputs) {
    throw std::invalid_argument("map_to_cells: cut_size must be in [2, 4]");
  }
  if (params.cuts_per_node < 1) {
    throw std::invalid_argument("map_to_cells: cuts_per_node must be >= 1");
  }
  Mapper mapper(g, lib, params);
  return mapper.run(stats);
}

}  // namespace aigml::map
