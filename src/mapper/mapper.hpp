#pragma once
// Cut-based technology mapping (AIG -> standard-cell netlist).
//
// Classic dual-phase priority-cut mapping in the style of ABC's `map`/`&if`:
//
//  1. Enumerate k-feasible cuts with truth tables (aig::CutSets, k <= 4).
//  2. For each AND node and each output phase, Boolean-match every cut
//     against the library (exact table lookup over the pre-enumerated
//     permutation/phase variants) and keep the best match under the active
//     objective: arrival time (delay mode, area-flow tiebreak) or area flow
//     (area mode, arrival tiebreak).  Phases also relax through an inverter.
//  3. Extract the cover from the primary outputs, instantiating one gate per
//     chosen match and inverters where only the opposite phase is available.
//
// Loads are approximated by a constant `assumed_load_ff` during matching
// (the standard chicken-and-egg workaround); the real, fanout-dependent
// delay is computed afterwards by STA on the emitted netlist.

#include <cstdint>
#include <optional>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"
#include "celllib/library.hpp"
#include "netlist/netlist.hpp"

namespace aigml::map {

enum class MapMode : std::uint8_t {
  Delay,  ///< minimize arrival, tiebreak on area flow
  Area,   ///< minimize area flow, tiebreak on arrival
};

struct MapParams {
  MapMode mode = MapMode::Delay;
  int cut_size = 4;        ///< 2..4 (matching supports up to 4-input cells)
  int cuts_per_node = 8;
  /// Floor for the per-node output load estimate during matching.
  double assumed_load_ff = 5.0;
  /// Per-fanout wire + average-pin load used in the estimate; keep in sync
  /// with sta::StaParams so matcher arrivals track STA arrivals.
  double wire_cap_per_fanout_ff = 0.6;
};

struct MapStats {
  std::size_t num_gates = 0;
  std::size_t num_inverters_added = 0;
  double estimated_arrival_ps = 0.0;  ///< matcher's arrival estimate (pre-STA)
};

/// Maps `g` onto `lib`.  Throws std::invalid_argument when parameters are out
/// of range.  The result is a topologically ordered netlist with the same
/// PI/PO interface as `g` (verified equivalence-preserving in tests).
[[nodiscard]] net::Netlist map_to_cells(const aig::Aig& g, const cell::Library& lib,
                                        const MapParams& params = {},
                                        MapStats* stats = nullptr);

}  // namespace aigml::map
