#pragma once
// Structural analyses over an Aig: levels, node-count depths (the paper's
// depth convention for feature extraction), fanout counts, per-output path
// counts, critical-path node sets, and cone extraction.
//
// Depth conventions
// -----------------
// * `levels()` — classic AIG level: level(PI) = level(const) = 0,
//   level(AND) = 1 + max(level(fanins)).  `aig_level()` is the max over
//   output drivers.  This is the proxy delay metric the paper critiques.
// * `node_depths()` — the paper's Fig. 4 convention used by features:
//   the number of graph nodes on the longest PI→node path, *including* the
//   PI node and the node itself (POs are ports, not nodes):
//   depth(PI) = 1, depth(AND) = 1 + max(depth(fanins)), depth(const) = 0.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/dirty.hpp"

namespace aigml::aig {

/// How much of the analysis an AnalysisCache maintains.
///  * kFull        — all three sweeps, including critical-path membership
///                   (what feature extraction needs).
///  * kForwardOnly — fanout + forward sweeps only; `critical_nodes()` stays
///                   empty.  Cheaper for callers that only read levels /
///                   depths (e.g. opt::ProxyCost's incremental context).
enum class AnalysisScope : std::uint8_t { kForwardOnly, kFull };

/// A value-type copy of a bound AnalysisCache's analysis state — what the
/// evaluation memo (opt::detail::FeatureContext) stores per remembered
/// structure so revisited graphs restore in one array copy instead of three
/// sweeps.  Produced by AnalysisCache::save(), consumed by adopt().
struct AnalysisSnapshot {
  std::vector<std::uint32_t> level, depth, fanout;
  std::vector<double> wdepth, bdepth, paths;
  std::vector<NodeId> critical;
  std::uint32_t aig_level = 0;
  std::uint32_t max_depth = 0;
  std::size_t num_nodes = 0;
};

/// Fused structural analysis: one fanout sweep + one forward sweep + one
/// reverse sweep compute everything the feature extractor, cost evaluators,
/// and data generator need — levels, node-count depths, fanout counts, the
/// fanout-weighted and binary-(fanout>=2)-weighted depths, saturating path
/// counts, and critical-path membership.  Replaces five-plus independent
/// whole-graph traversals per features::extract() call (see DESIGN.md §3).
///
/// Field semantics match the legacy free functions below exactly; the
/// equivalence is locked in by tests/test_parallel.cpp.
///
/// Incremental move evaluation (DESIGN.md §8)
/// ------------------------------------------
/// Beyond the one-shot constructor, the cache supports the speculative
/// update protocol that makes per-move reward calculation O(dirty region)
/// instead of O(full AIG) inside opt::search_loop:
///
///   rebuild(g)          bind to `g` from scratch (buffers reused, so a
///                       long-lived cache stops allocating after warm-up)
///   update(g, dirty)    repair the analyses for `g`, which differs from the
///                       graph of the last rebuild/commit by `dirty`
///                       (aig::diff_region).  Generation-stamped marks limit
///                       recomputation to the dirty nodes, the nodes whose
///                       fanout they disturb, and the forward cones those
///                       invalidate; propagation stops as soon as a
///                       recomputed value is bit-identical to the cached one.
///                       Exactly one update may be pending at a time.
///   commit()            adopt the pending update (the move was accepted)
///   rollback()          restore the pre-update state exactly (the move was
///                       rejected) by replaying per-entry undo logs
///
/// Hard contract: after update(g, dirty) every accessor returns values
/// bit-identical to a freshly built AnalysisCache(g) — the from-scratch
/// build stays in the code as the oracle, and tests/test_incremental.cpp
/// fuzzes the equivalence per move.  While an update is pending, the
/// backing vectors may be physically longer than g.num_nodes(); only
/// entries below g.num_nodes() are meaningful.
class AnalysisCache {
 public:
  /// Empty cache; bind with rebuild() before reading any accessor.
  explicit AnalysisCache(AnalysisScope scope = AnalysisScope::kFull) noexcept : scope_(scope) {}
  /// One-shot build (the historical constructor): full scope, bound to `g`.
  explicit AnalysisCache(const Aig& g) { rebuild(g); }

  /// From-scratch bind — the oracle the incremental path is tested against.
  /// Drops any pending update.
  void rebuild(const Aig& g);

  /// Speculatively repairs the analyses for `g` given the structural delta
  /// from the currently bound graph (see class comment).  Throws
  /// std::logic_error if an update is already pending or nothing is bound.
  void update(const Aig& g, const DirtyRegion& dirty);

  /// Adopts / discards the pending update.  Throw std::logic_error when no
  /// update is pending — the caller's accept/reject bookkeeping is broken.
  void commit();
  void rollback();

  /// Copies the current analysis state (committed or pending) into `out` —
  /// while an update is pending this is the *candidate's* state, which is
  /// exactly what the evaluation memo wants to remember.
  void save(AnalysisSnapshot& out) const;

  /// Speculatively replaces the bound state with a previously saved snapshot
  /// (the graph it was saved for).  Same pending semantics as update():
  /// resolve with commit() or rollback().
  void adopt(const AnalysisSnapshot& snapshot);

  [[nodiscard]] const std::vector<std::uint32_t>& levels() const noexcept { return level_; }
  [[nodiscard]] const std::vector<std::uint32_t>& depths() const noexcept { return depth_; }
  [[nodiscard]] const std::vector<std::uint32_t>& fanouts() const noexcept { return fanout_; }
  /// weighted_depths with weight(node) = fanout(node).
  [[nodiscard]] const std::vector<double>& fanout_weighted_depths() const noexcept {
    return wdepth_;
  }
  /// weighted_depths with weight(node) = 1 when fanout >= 2 else 0.
  [[nodiscard]] const std::vector<double>& binary_weighted_depths() const noexcept {
    return bdepth_;
  }
  [[nodiscard]] const std::vector<double>& path_counts() const noexcept { return paths_; }
  /// Nodes on at least one maximum-node-depth PI->output path, ascending id.
  /// Always empty under AnalysisScope::kForwardOnly.
  [[nodiscard]] const std::vector<NodeId>& critical_nodes() const noexcept { return critical_; }

  /// Max level over output drivers (== aig_level(g)).
  [[nodiscard]] std::uint32_t aig_level() const noexcept { return aig_level_; }
  /// Max node-count depth over output drivers.
  [[nodiscard]] std::uint32_t max_depth() const noexcept { return max_depth_; }

  /// Logical node count of the bound graph (the vectors above may be longer
  /// while an update is pending).
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }

  // ---- last-update introspection (delta feature extraction, benches) ------

  /// One net fanout change from the last update().  `after` is 0 for ids
  /// removed by a shrink; `before` is 0 for ids added by a growth.
  struct FanoutChange {
    NodeId id;
    std::uint32_t before;
    std::uint32_t after;
  };
  /// Net fanout changes of the last update (empty after rebuild / a full
  /// update — see last_update_full()).  Entries with before == after are
  /// filtered out.
  [[nodiscard]] const std::vector<FanoutChange>& last_fanout_changes() const noexcept {
    return fanout_changes_;
  }
  /// True when the last update() fell back to a from-scratch rebuild (full
  /// dirty region): per-entry change lists are unavailable and consumers
  /// must re-derive everything.
  [[nodiscard]] bool last_update_full() const noexcept { return pending_ == Pending::kSwapped; }
  /// True when the last update() re-ran the reverse sweep, i.e.
  /// critical_nodes() may differ from the pre-update set.
  [[nodiscard]] bool last_reverse_ran() const noexcept { return last_reverse_ran_; }
  /// Node count of the previously bound graph (before the pending update).
  [[nodiscard]] std::size_t last_before_num_nodes() const noexcept { return before_n_; }
  /// True iff `id`'s forward values (level/depth/weighted depths/paths)
  /// changed in the last update().  Only meaningful for id < num_nodes()
  /// while an update is pending.
  [[nodiscard]] bool value_changed(NodeId id) const noexcept {
    return id < value_stamp_.size() && value_stamp_[id] == gen_;
  }
  /// Cumulative count of per-node forward recomputations — the quantity
  /// bench_eval reports as "repair work per move" (a from-scratch forward
  /// sweep costs num_nodes() of these).
  [[nodiscard]] std::uint64_t nodes_recomputed() const noexcept { return nodes_recomputed_; }

 private:
  struct NodeValues {
    std::uint32_t level, depth;
    double wdepth, bdepth, paths;
  };
  [[nodiscard]] NodeValues compute_node(const Aig& g, NodeId id) const;
  void rebuild_arrays(const Aig& g);
  void recompute_output_maxima(const Aig& g);
  void rebuild_reverse(const Aig& g);
  void grow_to(std::size_t n);
  void bump_generation();

  AnalysisScope scope_ = AnalysisScope::kFull;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> fanout_;
  std::vector<double> wdepth_;
  std::vector<double> bdepth_;
  std::vector<double> paths_;
  std::vector<NodeId> critical_;
  std::uint32_t aig_level_ = 0;
  std::uint32_t max_depth_ = 0;

  // ---- pending-update bookkeeping (undo logs, swap buffers) ---------------
  enum class Pending : std::uint8_t { kNone, kDelta, kSwapped };
  struct ForwardUndo {
    NodeId id;
    NodeValues values;
  };
  struct FanoutUndo {
    NodeId id;
    std::uint32_t before;
  };
  Pending pending_ = Pending::kNone;
  bool bound_ = false;
  std::size_t before_n_ = 0;
  std::uint32_t before_aig_level_ = 0;
  std::uint32_t before_max_depth_ = 0;
  std::vector<ForwardUndo> forward_undo_;
  std::vector<FanoutUndo> fanout_undo_;
  std::vector<FanoutChange> fanout_changes_;
  std::vector<NodeId> critical_prev_;
  bool critical_swapped_ = false;
  bool last_reverse_ran_ = false;
  std::vector<std::uint32_t> level_prev_, depth_prev_, fanout_prev_;
  std::vector<double> wdepth_prev_, bdepth_prev_, paths_prev_;

  // ---- generation-stamped scratch (never rolled back; a stamp != gen_ is
  // semantically "unmarked", so updates start clean without clearing) -------
  std::uint32_t gen_ = 0;
  std::vector<std::uint32_t> touch_stamp_;   ///< must-recompute seeds
  std::vector<std::uint32_t> value_stamp_;   ///< forward values changed
  std::vector<std::uint32_t> fanout_stamp_;  ///< fanout undo logged
  std::uint32_t rev_gen_ = 0;
  std::vector<std::uint32_t> rev_stamp_;     ///< in output cone (reverse sweep)
  std::vector<std::uint32_t> height_scratch_;
  std::uint64_t nodes_recomputed_ = 0;
};

/// level(id) per node (see header comment).
[[nodiscard]] std::vector<std::uint32_t> levels(const Aig& g);

/// Max level over output drivers; 0 for constant-only graphs.
[[nodiscard]] std::uint32_t aig_level(const Aig& g);

/// Node-count depth per node (paper's Fig. 4 convention).
[[nodiscard]] std::vector<std::uint32_t> node_depths(const Aig& g);

/// Generic weighted depth: wdepth(n) = weight[n] + max over AND fanins
/// (wdepth of PI = weight[PI]; constants contribute 0).  `weights` is indexed
/// by node id.  Used for the fanout-weighted and binary-weighted path-depth
/// features.
[[nodiscard]] std::vector<double> weighted_depths(const Aig& g, const std::vector<double>& weights);

/// Fanout count per node: number of AND fanin references plus primary-output
/// references.  Complemented and regular references both count.
[[nodiscard]] std::vector<std::uint32_t> fanout_counts(const Aig& g);

/// Number of distinct PI→node paths per node, saturating at ~1e300 (double).
/// paths(PI) = 1, paths(AND) = paths(fanin0.var) + paths(fanin1.var).
[[nodiscard]] std::vector<double> path_counts(const Aig& g);

/// Ids of nodes lying on at least one maximum-node-depth path from a PI to an
/// output driver (the "long path" of Table II: path depth == aig depth).
[[nodiscard]] std::vector<NodeId> critical_path_nodes(const Aig& g);

/// Per-node flag: reachable from the outputs (i.e. alive after cleanup).
[[nodiscard]] std::vector<char> reachable_from_outputs(const Aig& g);

/// Ids of AND nodes in the transitive fanin cone of `root` (including `root`
/// if it is an AND), in topological order.
[[nodiscard]] std::vector<NodeId> cone_of(const Aig& g, NodeId root);

/// Size of the maximum fanout-free cone of `root`: the AND nodes that would
/// die if `root` were removed (i.e. nodes whose every path to an output goes
/// through `root`).  `fanouts` must come from fanout_counts().
[[nodiscard]] std::uint32_t mffc_size(const Aig& g, NodeId root,
                                      const std::vector<std::uint32_t>& fanouts);

}  // namespace aigml::aig
