#pragma once
// Structural analyses over an Aig: levels, node-count depths (the paper's
// depth convention for feature extraction), fanout counts, per-output path
// counts, critical-path node sets, and cone extraction.
//
// Depth conventions
// -----------------
// * `levels()` — classic AIG level: level(PI) = level(const) = 0,
//   level(AND) = 1 + max(level(fanins)).  `aig_level()` is the max over
//   output drivers.  This is the proxy delay metric the paper critiques.
// * `node_depths()` — the paper's Fig. 4 convention used by features:
//   the number of graph nodes on the longest PI→node path, *including* the
//   PI node and the node itself (POs are ports, not nodes):
//   depth(PI) = 1, depth(AND) = 1 + max(depth(fanins)), depth(const) = 0.

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace aigml::aig {

/// Fused structural analysis: one fanout sweep + one forward sweep + one
/// reverse sweep compute everything the feature extractor, cost evaluators,
/// and data generator need — levels, node-count depths, fanout counts, the
/// fanout-weighted and binary-(fanout>=2)-weighted depths, saturating path
/// counts, and critical-path membership.  Replaces five-plus independent
/// whole-graph traversals per features::extract() call (see DESIGN.md §3).
///
/// Field semantics match the legacy free functions below exactly; the
/// equivalence is locked in by tests/test_parallel.cpp.
class AnalysisCache {
 public:
  explicit AnalysisCache(const Aig& g);

  [[nodiscard]] const std::vector<std::uint32_t>& levels() const noexcept { return level_; }
  [[nodiscard]] const std::vector<std::uint32_t>& depths() const noexcept { return depth_; }
  [[nodiscard]] const std::vector<std::uint32_t>& fanouts() const noexcept { return fanout_; }
  /// weighted_depths with weight(node) = fanout(node).
  [[nodiscard]] const std::vector<double>& fanout_weighted_depths() const noexcept {
    return wdepth_;
  }
  /// weighted_depths with weight(node) = 1 when fanout >= 2 else 0.
  [[nodiscard]] const std::vector<double>& binary_weighted_depths() const noexcept {
    return bdepth_;
  }
  [[nodiscard]] const std::vector<double>& path_counts() const noexcept { return paths_; }
  /// Nodes on at least one maximum-node-depth PI->output path, ascending id.
  [[nodiscard]] const std::vector<NodeId>& critical_nodes() const noexcept { return critical_; }

  /// Max level over output drivers (== aig_level(g)).
  [[nodiscard]] std::uint32_t aig_level() const noexcept { return aig_level_; }
  /// Max node-count depth over output drivers.
  [[nodiscard]] std::uint32_t max_depth() const noexcept { return max_depth_; }

 private:
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> fanout_;
  std::vector<double> wdepth_;
  std::vector<double> bdepth_;
  std::vector<double> paths_;
  std::vector<NodeId> critical_;
  std::uint32_t aig_level_ = 0;
  std::uint32_t max_depth_ = 0;
};

/// level(id) per node (see header comment).
[[nodiscard]] std::vector<std::uint32_t> levels(const Aig& g);

/// Max level over output drivers; 0 for constant-only graphs.
[[nodiscard]] std::uint32_t aig_level(const Aig& g);

/// Node-count depth per node (paper's Fig. 4 convention).
[[nodiscard]] std::vector<std::uint32_t> node_depths(const Aig& g);

/// Generic weighted depth: wdepth(n) = weight[n] + max over AND fanins
/// (wdepth of PI = weight[PI]; constants contribute 0).  `weights` is indexed
/// by node id.  Used for the fanout-weighted and binary-weighted path-depth
/// features.
[[nodiscard]] std::vector<double> weighted_depths(const Aig& g, const std::vector<double>& weights);

/// Fanout count per node: number of AND fanin references plus primary-output
/// references.  Complemented and regular references both count.
[[nodiscard]] std::vector<std::uint32_t> fanout_counts(const Aig& g);

/// Number of distinct PI→node paths per node, saturating at ~1e300 (double).
/// paths(PI) = 1, paths(AND) = paths(fanin0.var) + paths(fanin1.var).
[[nodiscard]] std::vector<double> path_counts(const Aig& g);

/// Ids of nodes lying on at least one maximum-node-depth path from a PI to an
/// output driver (the "long path" of Table II: path depth == aig depth).
[[nodiscard]] std::vector<NodeId> critical_path_nodes(const Aig& g);

/// Per-node flag: reachable from the outputs (i.e. alive after cleanup).
[[nodiscard]] std::vector<char> reachable_from_outputs(const Aig& g);

/// Ids of AND nodes in the transitive fanin cone of `root` (including `root`
/// if it is an AND), in topological order.
[[nodiscard]] std::vector<NodeId> cone_of(const Aig& g, NodeId root);

/// Size of the maximum fanout-free cone of `root`: the AND nodes that would
/// die if `root` were removed (i.e. nodes whose every path to an output goes
/// through `root`).  `fanouts` must come from fanout_counts().
[[nodiscard]] std::uint32_t mffc_size(const Aig& g, NodeId root,
                                      const std::vector<std::uint32_t>& fanouts);

}  // namespace aigml::aig
