#include "aig/npn.hpp"

#include <algorithm>

namespace aigml::aig {

std::uint64_t npn_apply(std::uint64_t t, int nvars, const NpnTransform& tr) {
  const int patterns = 1 << nvars;
  std::uint64_t out = 0;
  for (int p = 0; p < patterns; ++p) {
    std::uint32_t original = 0;
    for (int i = 0; i < nvars; ++i) {
      const bool xi = ((p >> tr.perm[static_cast<std::size_t>(i)]) & 1) != 0;
      const bool yi = xi != (((tr.input_phase >> i) & 1) != 0);
      if (yi) original |= 1u << i;
    }
    const bool value = tt_eval(t, original) != tr.output_phase;
    if (value) out |= 1ULL << p;
  }
  return tt_expand_low(out, nvars);
}

NpnTransform npn_inverse(const NpnTransform& tr, int nvars) {
  // y_i = x_{perm[i]} ^ phi_i  and  g(x) = sigma ^ f(y).
  // Solving for f in terms of g:  f(y) = sigma ^ g(x) with x_{perm[i]} = y_i ^ phi_i,
  // so inverse perm' satisfies perm'[perm[i]] = i and phi'_{perm[i]} = phi_i.
  NpnTransform inv;
  inv.output_phase = tr.output_phase;
  inv.input_phase = 0;
  for (int i = 0; i < nvars; ++i) {
    const auto p = tr.perm[static_cast<std::size_t>(i)];
    inv.perm[p] = static_cast<std::uint8_t>(i);
    if ((tr.input_phase >> i) & 1) inv.input_phase |= static_cast<std::uint8_t>(1u << p);
  }
  for (int i = nvars; i < kNpnMaxVars; ++i) inv.perm[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return inv;
}

namespace {

template <typename Fn>
void for_each_transform(int nvars, Fn&& fn) {
  std::array<std::uint8_t, kNpnMaxVars> perm = {0, 1, 2, 3};
  std::array<std::uint8_t, kNpnMaxVars> active{};
  for (int i = 0; i < nvars; ++i) active[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const int phases = 1 << nvars;
  do {
    for (int i = 0; i < nvars; ++i) perm[static_cast<std::size_t>(i)] = active[static_cast<std::size_t>(i)];
    for (int phase = 0; phase < phases; ++phase) {
      for (int out_phase = 0; out_phase < 2; ++out_phase) {
        NpnTransform tr;
        tr.perm = perm;
        tr.input_phase = static_cast<std::uint8_t>(phase);
        tr.output_phase = out_phase != 0;
        fn(tr);
      }
    }
  } while (std::next_permutation(active.begin(), active.begin() + nvars));
}

}  // namespace

NpnCanon npn_canonicalize(std::uint64_t t, int nvars) {
  NpnCanon best;
  best.table = t;
  bool first = true;
  for_each_transform(nvars, [&](const NpnTransform& tr) {
    const std::uint64_t candidate = npn_apply(t, nvars, tr);
    // Compare on the meaningful low block only (expanded forms are equal iff
    // low blocks are equal, but be explicit).
    if (first || (candidate & tt_mask(nvars)) < (best.table & tt_mask(nvars))) {
      best.table = candidate;
      best.transform = tr;
      first = false;
    }
  });
  return best;
}

void npn_for_each(std::uint64_t t, int nvars,
                  const std::function<void(std::uint64_t, const NpnTransform&)>& fn) {
  for_each_transform(nvars, [&](const NpnTransform& tr) { fn(npn_apply(t, nvars, tr), tr); });
}

}  // namespace aigml::aig
