#include "aig/aig.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace aigml::aig {

namespace {

constexpr std::uint64_t strash_key(Lit a, Lit b) noexcept {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Aig::Aig() {
  nodes_.push_back(Node{kLitFalse, kLitFalse, NodeKind::Constant});  // variable 0
}

Lit Aig::add_input(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{kLitFalse, kLitFalse, NodeKind::Input});
  inputs_.push_back(id);
  if (name.empty()) name = "i" + std::to_string(inputs_.size() - 1);
  input_names_.push_back(std::move(name));
  return make_lit(id);
}

Lit Aig::make_and(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  // Trivial cases.  After the swap, a <= b.
  if (a == kLitFalse) return kLitFalse;          // 0 & b = 0
  if (a == kLitTrue) return b;                   // 1 & b = b
  if (a == b) return a;                          // b & b = b
  if ((a ^ b) == 1u) return kLitFalse;           // b & !b = 0
  if (lit_var(a) >= nodes_.size() || lit_var(b) >= nodes_.size()) {
    throw std::out_of_range("Aig::make_and: fanin literal references unknown node");
  }
  const std::uint64_t key = strash_key(a, b);
  if (const auto it = strash_.find(key); it != strash_.end()) return make_lit(it->second);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{a, b, NodeKind::And});
  strash_.emplace(key, id);
  ++num_ands_;
  return make_lit(id);
}

Lit Aig::probe_and(Lit a, Lit b) const {
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if ((a ^ b) == 1u) return kLitFalse;
  if (const auto it = strash_.find(strash_key(a, b)); it != strash_.end()) {
    return make_lit(it->second);
  }
  return kLitInvalid;
}

Lit Aig::make_xor(Lit a, Lit b) {
  // a ^ b = !( !(a & !b) & !( !a & b) )
  const Lit and0 = make_and(a, lit_not(b));
  const Lit and1 = make_and(lit_not(a), b);
  return make_or(and0, and1);
}

Lit Aig::make_mux(Lit sel, Lit t, Lit e) {
  const Lit take_t = make_and(sel, t);
  const Lit take_e = make_and(lit_not(sel), e);
  return make_or(take_t, take_e);
}

Lit Aig::make_maj(Lit a, Lit b, Lit c) {
  const Lit ab = make_and(a, b);
  const Lit ac = make_and(a, c);
  const Lit bc = make_and(b, c);
  return make_or(make_or(ab, ac), bc);
}

namespace {

// Balanced reduction over a buffer of literals using `op`.
template <typename Op>
Lit balanced_reduce(std::vector<Lit> work, Lit identity, Op op) {
  if (work.empty()) return identity;
  while (work.size() > 1) {
    std::vector<Lit> next;
    next.reserve((work.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < work.size(); i += 2) next.push_back(op(work[i], work[i + 1]));
    if (work.size() % 2 == 1) next.push_back(work.back());
    work = std::move(next);
  }
  return work.front();
}

}  // namespace

Lit Aig::make_and_n(std::span<const Lit> lits) {
  return balanced_reduce(std::vector<Lit>(lits.begin(), lits.end()), kLitTrue,
                         [this](Lit x, Lit y) { return make_and(x, y); });
}

Lit Aig::make_or_n(std::span<const Lit> lits) {
  return balanced_reduce(std::vector<Lit>(lits.begin(), lits.end()), kLitFalse,
                         [this](Lit x, Lit y) { return make_or(x, y); });
}

Lit Aig::make_xor_n(std::span<const Lit> lits) {
  return balanced_reduce(std::vector<Lit>(lits.begin(), lits.end()), kLitFalse,
                         [this](Lit x, Lit y) { return make_xor(x, y); });
}

std::uint32_t Aig::add_output(Lit lit, std::string name) {
  if (lit_var(lit) >= nodes_.size()) {
    throw std::out_of_range("Aig::add_output: literal references unknown node");
  }
  outputs_.push_back(lit);
  if (name.empty()) name = "o" + std::to_string(outputs_.size() - 1);
  output_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(outputs_.size() - 1);
}

void Aig::set_output(std::uint32_t index, Lit lit) {
  if (index >= outputs_.size()) throw std::out_of_range("Aig::set_output: bad output index");
  if (lit_var(lit) >= nodes_.size()) {
    throw std::out_of_range("Aig::set_output: literal references unknown node");
  }
  outputs_[index] = lit;
}

std::uint64_t Aig::structural_hash() const {
  // Hash only the cone reachable from outputs so that graphs differing solely
  // in dead logic collide (cleanup-invariance).
  std::vector<std::uint64_t> node_sig(nodes_.size(), 0);
  std::vector<char> visited(nodes_.size(), 0);
  // Iterative DFS from each output.
  std::vector<NodeId> stack;
  for (const Lit out : outputs_) stack.push_back(lit_var(out));
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (visited[id]) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[id];
    if (n.kind == NodeKind::And) {
      const NodeId c0 = lit_var(n.fanin0);
      const NodeId c1 = lit_var(n.fanin1);
      if (!visited[c0]) {
        stack.push_back(c0);
        continue;
      }
      if (!visited[c1]) {
        stack.push_back(c1);
        continue;
      }
      std::uint64_t h = 0x8000'0000'0000'0003ULL;
      h = hash_mix(h, node_sig[c0] * 2 + lit_is_complemented(n.fanin0));
      h = hash_mix(h, node_sig[c1] * 2 + lit_is_complemented(n.fanin1));
      node_sig[id] = h;
    } else if (n.kind == NodeKind::Input) {
      // Position-sensitive: the i-th input gets a distinct signature.
      const auto pos = static_cast<std::uint64_t>(
          std::find(inputs_.begin(), inputs_.end(), id) - inputs_.begin());
      node_sig[id] = hash_mix(0x1111'2222'3333'4445ULL, pos);
    } else {
      node_sig[id] = 0x5555'aaaa'5555'aaabULL;
    }
    visited[id] = 1;
    stack.pop_back();
  }
  std::uint64_t h = hash_mix(0, outputs_.size());
  for (const Lit out : outputs_) {
    h = hash_mix(h, node_sig[lit_var(out)] * 2 + lit_is_complemented(out));
  }
  return h;
}

bool Aig::check_acyclic_order() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind != NodeKind::And) continue;
    if (lit_var(n.fanin0) >= id || lit_var(n.fanin1) >= id) return false;
    if (n.fanin0 > n.fanin1) return false;
  }
  return true;
}

Aig Aig::cleanup() const {
  Aig out;
  out.reserve(nodes_.size());
  std::vector<Lit> remap(nodes_.size(), kLitInvalid);
  remap[0] = kLitFalse;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    remap[inputs_[i]] = out.add_input(input_names_[i]);
  }
  // Mark the cone of the outputs.
  std::vector<char> needed(nodes_.size(), 0);
  std::vector<NodeId> stack;
  for (const Lit o : outputs_) stack.push_back(lit_var(o));
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (needed[id]) continue;
    needed[id] = 1;
    const Node& n = nodes_[id];
    if (n.kind == NodeKind::And) {
      stack.push_back(lit_var(n.fanin0));
      stack.push_back(lit_var(n.fanin1));
    }
  }
  // Nodes are in topological order already, so a single forward pass works.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!needed[id] || nodes_[id].kind != NodeKind::And) continue;
    const Node& n = nodes_[id];
    const Lit f0 = lit_not_if(remap[lit_var(n.fanin0)], lit_is_complemented(n.fanin0));
    const Lit f1 = lit_not_if(remap[lit_var(n.fanin1)], lit_is_complemented(n.fanin1));
    remap[id] = out.make_and(f0, f1);
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const Lit o = outputs_[i];
    out.add_output(lit_not_if(remap[lit_var(o)], lit_is_complemented(o)), output_names_[i]);
  }
  return out;
}

}  // namespace aigml::aig
