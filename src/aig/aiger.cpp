#include "aig/aiger.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace aigml::aig {

void write_aiger(const Aig& g, std::ostream& out) {
  // AIGER requires AND nodes to have contiguous variable indices after the
  // inputs; our node vector can interleave (inputs first by convention of
  // the generators, but transforms guarantee nothing).  Renumber: variable i
  // in the file = our node `order[i]`.
  const std::size_t num_vars = 1 + g.num_inputs() + g.num_ands();
  std::vector<Lit> file_lit(g.num_nodes(), kLitInvalid);
  file_lit[0] = 0;
  std::uint32_t next = 1;
  for (const NodeId id : g.inputs()) file_lit[id] = 2 * next++;
  std::vector<NodeId> and_nodes;
  and_nodes.reserve(g.num_ands());
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.is_and(id)) {
      file_lit[id] = 2 * next++;
      and_nodes.push_back(id);
    }
  }
  auto map_lit = [&](Lit lit) { return file_lit[lit_var(lit)] | (lit & 1u); };

  out << "aag " << (num_vars - 1) << ' ' << g.num_inputs() << " 0 " << g.num_outputs() << ' '
      << g.num_ands() << '\n';
  for (const NodeId id : g.inputs()) out << file_lit[id] << '\n';
  for (const Lit o : g.outputs()) out << map_lit(o) << '\n';
  for (const NodeId id : and_nodes) {
    out << file_lit[id] << ' ' << map_lit(g.fanin1(id)) << ' ' << map_lit(g.fanin0(id)) << '\n';
  }
  for (std::size_t i = 0; i < g.num_inputs(); ++i) out << 'i' << i << ' ' << g.input_name(i) << '\n';
  for (std::size_t i = 0; i < g.num_outputs(); ++i) out << 'o' << i << ' ' << g.output_name(i) << '\n';
  out << "c\naigml\n";
}

void write_aiger_file(const Aig& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_aiger_file: cannot open " + path.string());
  write_aiger(g, out);
}

std::string to_aiger_string(const Aig& g) {
  std::ostringstream out;
  write_aiger(g, out);
  return out.str();
}

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("aiger parse error at line " + std::to_string(line) + ": " + what);
}

/// Ceiling on any single header count (M, I, O, A).  A hostile header like
/// "aag 18446744073709551615 ..." would otherwise drive multi-exabyte
/// reserve() calls before a single body line is validated.  2^28 variables
/// is ~100x the largest benchmark in the suite; per-field capping also makes
/// the I + A sum overflow-free.
constexpr std::size_t kMaxHeaderCount = std::size_t{1} << 28;

void check_header_counts(std::size_t line, std::size_t max_var, std::size_t num_in,
                         std::size_t num_out, std::size_t num_and) {
  if (max_var > kMaxHeaderCount || num_in > kMaxHeaderCount || num_out > kMaxHeaderCount ||
      num_and > kMaxHeaderCount) {
    parse_error(line, "header count exceeds limit (" + std::to_string(kMaxHeaderCount) + ")");
  }
}

/// Strict decimal parse for symbol-table indices: std::stoul would accept
/// leading sign/space, throw std::invalid_argument on garbage (escaping as a
/// confusing non-parse error), and silently stop at the first non-digit.
std::size_t parse_index(const std::string& text, std::size_t line) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    parse_error(line, "malformed symbol index '" + text + "'");
  }
  try {
    return std::stoul(text);
  } catch (const std::out_of_range&) {
    parse_error(line, "symbol index out of range");
  }
}

}  // namespace

Aig read_aiger(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    return false;
  };

  if (!next_line()) parse_error(0, "empty stream");
  std::istringstream header(line);
  std::string magic;
  std::size_t max_var = 0, num_in = 0, num_latch = 0, num_out = 0, num_and = 0;
  header >> magic >> max_var >> num_in >> num_latch >> num_out >> num_and;
  if (!header || magic != "aag") parse_error(line_no, "expected 'aag M I L O A' header");
  if (num_latch != 0) parse_error(line_no, "latches are not supported (combinational only)");
  check_header_counts(line_no, max_var, num_in, num_out, num_and);
  if (max_var != num_in + num_and) {
    parse_error(line_no, "header M != I + A (non-contiguous encodings unsupported)");
  }

  Aig g;
  g.reserve(1 + max_var);
  // file variable -> our literal
  std::vector<Lit> lit_of(max_var + 1, kLitInvalid);
  lit_of[0] = kLitFalse;

  auto read_uint = [&](std::istringstream& s) -> std::uint64_t {
    std::uint64_t v = 0;
    if (!(s >> v)) parse_error(line_no, "expected unsigned integer");
    return v;
  };
  auto expect_eol = [&](std::istringstream& s) {
    std::string extra;
    if (s >> extra) parse_error(line_no, "trailing garbage '" + extra + "'");
  };

  std::vector<std::uint64_t> input_lits(num_in);
  for (std::size_t i = 0; i < num_in; ++i) {
    if (!next_line()) parse_error(line_no, "unexpected EOF in inputs");
    std::istringstream s(line);
    input_lits[i] = read_uint(s);
    expect_eol(s);
    if (input_lits[i] == 0 || input_lits[i] % 2 != 0 || input_lits[i] / 2 > max_var) {
      parse_error(line_no, "invalid input literal");
    }
    if (lit_of[input_lits[i] / 2] != kLitInvalid) {
      parse_error(line_no, "duplicate definition of variable " +
                               std::to_string(input_lits[i] / 2));
    }
    lit_of[input_lits[i] / 2] = g.add_input();
  }

  std::vector<std::uint64_t> output_lits(num_out);
  for (std::size_t i = 0; i < num_out; ++i) {
    if (!next_line()) parse_error(line_no, "unexpected EOF in outputs");
    std::istringstream s(line);
    output_lits[i] = read_uint(s);
    expect_eol(s);
    if (output_lits[i] / 2 > max_var) parse_error(line_no, "output literal out of range");
  }

  struct AndLine {
    std::uint64_t lhs, rhs0, rhs1;
  };
  std::vector<AndLine> ands(num_and);
  for (std::size_t i = 0; i < num_and; ++i) {
    if (!next_line()) parse_error(line_no, "unexpected EOF in AND section");
    std::istringstream s(line);
    ands[i].lhs = read_uint(s);
    ands[i].rhs0 = read_uint(s);
    ands[i].rhs1 = read_uint(s);
    expect_eol(s);
    if (ands[i].lhs % 2 != 0 || ands[i].lhs / 2 > max_var) parse_error(line_no, "invalid AND lhs");
  }

  // AIGER guarantees lhs > rhs for well-formed files, so a single ordered
  // pass resolves fanins; verify rather than assume.
  auto resolve = [&](std::uint64_t file_lit, std::size_t at_line) -> Lit {
    const std::uint64_t var = file_lit / 2;
    if (var > max_var || lit_of[var] == kLitInvalid) {
      parse_error(at_line, "literal " + std::to_string(file_lit) + " used before definition");
    }
    return lit_not_if(lit_of[var], (file_lit & 1) != 0);
  };
  for (const AndLine& a : ands) {
    if (lit_of[a.lhs / 2] != kLitInvalid) {
      parse_error(line_no, "duplicate definition of variable " + std::to_string(a.lhs / 2));
    }
    const Lit f0 = resolve(a.rhs0, line_no);
    const Lit f1 = resolve(a.rhs1, line_no);
    lit_of[a.lhs / 2] = g.make_and(f0, f1);
  }
  for (std::size_t i = 0; i < num_out; ++i) {
    g.add_output(resolve(output_lits[i], line_no));
  }

  // Optional symbol table / comment.
  std::vector<std::string> in_names(num_in), out_names(num_out);
  while (next_line()) {
    if (line.empty()) continue;
    if (line[0] == 'c') break;
    if (line[0] != 'i' && line[0] != 'o') parse_error(line_no, "unexpected symbol line");
    const char kind = line[0];
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) parse_error(line_no, "malformed symbol entry");
    const std::size_t index = parse_index(line.substr(1, space - 1), line_no);
    const std::string name = line.substr(space + 1);
    if (kind == 'i' && index < num_in) in_names[index] = name;
    if (kind == 'o' && index < num_out) out_names[index] = name;
  }
  // Names were assigned defaults during construction; rebuild with names via
  // a cleanup-style copy would churn ids, so we simply leave defaults when
  // the symbol table is absent.  (Aig names are cosmetic.)
  (void)in_names;
  (void)out_names;
  return g;
}

Aig read_aiger_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_aiger_file: cannot open " + path.string());
  return read_aiger(in);
}

// ---- binary format -------------------------------------------------------------

namespace {

void write_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

std::uint64_t read_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const int c = in.get();
    if (c == EOF) throw std::runtime_error("aiger binary: unexpected EOF in delta section");
    value |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("aiger binary: varint overflow");
  }
  return value;
}

}  // namespace

void write_aiger_binary(const Aig& g, std::ostream& out) {
  // Renumber exactly as the ASCII writer: inputs first, then ANDs in
  // topological (creation) order — which guarantees lhs > rhs for every AND.
  const std::size_t num_vars = g.num_inputs() + g.num_ands();
  std::vector<Lit> file_lit(g.num_nodes(), kLitInvalid);
  file_lit[0] = 0;
  std::uint32_t next = 1;
  for (const NodeId id : g.inputs()) file_lit[id] = 2 * next++;
  std::vector<NodeId> and_nodes;
  and_nodes.reserve(g.num_ands());
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.is_and(id)) {
      file_lit[id] = 2 * next++;
      and_nodes.push_back(id);
    }
  }
  auto map_lit = [&](Lit lit) {
    return static_cast<std::uint64_t>(file_lit[lit_var(lit)] | (lit & 1u));
  };

  out << "aig " << num_vars << ' ' << g.num_inputs() << " 0 " << g.num_outputs() << ' '
      << g.num_ands() << '\n';
  for (const Lit o : g.outputs()) out << map_lit(o) << '\n';
  for (const NodeId id : and_nodes) {
    const std::uint64_t lhs = file_lit[id];
    std::uint64_t rhs0 = map_lit(g.fanin0(id));
    std::uint64_t rhs1 = map_lit(g.fanin1(id));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);  // binary format wants rhs0 >= rhs1
    write_varint(out, lhs - rhs0);
    write_varint(out, rhs0 - rhs1);
  }
  for (std::size_t i = 0; i < g.num_inputs(); ++i) out << 'i' << i << ' ' << g.input_name(i) << '\n';
  for (std::size_t i = 0; i < g.num_outputs(); ++i) out << 'o' << i << ' ' << g.output_name(i) << '\n';
  out << "c\naigml\n";
}

Aig read_aiger_binary(std::istream& in) {
  std::string magic;
  std::size_t max_var = 0, num_in = 0, num_latch = 0, num_out = 0, num_and = 0;
  in >> magic >> max_var >> num_in >> num_latch >> num_out >> num_and;
  if (!in || magic != "aig") parse_error(1, "expected binary 'aig M I L O A' header");
  if (num_latch != 0) parse_error(1, "latches are not supported (combinational only)");
  check_header_counts(1, max_var, num_in, num_out, num_and);
  if (max_var != num_in + num_and) parse_error(1, "header M != I + A");
  in.get();  // consume the newline after the header

  Aig g;
  g.reserve(1 + max_var);
  std::vector<Lit> lit_of(max_var + 1, kLitInvalid);
  lit_of[0] = kLitFalse;
  for (std::size_t i = 0; i < num_in; ++i) lit_of[i + 1] = g.add_input();

  std::vector<std::uint64_t> output_lits(num_out);
  for (std::size_t i = 0; i < num_out; ++i) {
    std::string line;
    if (!std::getline(in, line)) parse_error(i + 2, "unexpected EOF in outputs");
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // std::stoull would throw std::invalid_argument on a garbage line and
    // silently ignore trailing junk; parse strictly instead.
    if (line.empty() || line.find_first_not_of("0123456789") != std::string::npos) {
      parse_error(i + 2, "malformed output literal '" + line + "'");
    }
    try {
      output_lits[i] = std::stoull(line);
    } catch (const std::out_of_range&) {
      parse_error(i + 2, "output literal out of range");
    }
    if (output_lits[i] / 2 > max_var) parse_error(i + 2, "output literal out of range");
  }

  auto resolve = [&](std::uint64_t file_lit) -> Lit {
    const std::uint64_t var = file_lit / 2;
    if (var > max_var || lit_of[var] == kLitInvalid) {
      throw std::runtime_error("aiger binary: literal " + std::to_string(file_lit) +
                               " used before definition");
    }
    return lit_not_if(lit_of[var], (file_lit & 1) != 0);
  };
  for (std::size_t i = 0; i < num_and; ++i) {
    const std::uint64_t lhs = 2 * (num_in + i + 1);
    const std::uint64_t delta0 = read_varint(in);
    const std::uint64_t delta1 = read_varint(in);
    if (delta0 > lhs) throw std::runtime_error("aiger binary: delta exceeds lhs");
    const std::uint64_t rhs0 = lhs - delta0;
    if (delta1 > rhs0) throw std::runtime_error("aiger binary: second delta exceeds rhs0");
    const std::uint64_t rhs1 = rhs0 - delta1;
    lit_of[lhs / 2] = g.make_and(resolve(rhs0), resolve(rhs1));
  }
  for (const std::uint64_t o : output_lits) g.add_output(resolve(o));
  return g;
}

Aig read_aiger_auto_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_aiger_auto_file: cannot open " + path.string());
  std::string magic;
  in >> magic;
  in.seekg(0);
  if (magic == "aig") return read_aiger_binary(in);
  return read_aiger(in);
}

Aig from_aiger_string(const std::string& text) {
  std::istringstream in(text);
  return read_aiger(in);
}

}  // namespace aigml::aig
