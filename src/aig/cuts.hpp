#pragma once
// K-feasible cut enumeration with truth tables ("priority cuts").
//
// A cut of node n is a set of nodes (leaves) such that every PI-to-n path
// passes through a leaf; the cut's truth table expresses n as a function of
// its leaves.  Cuts drive both technology mapping (match the cut function to
// a library cell) and rewriting (resynthesize the cut function).
//
// Implementation: bottom-up merging in topological order, keeping at most
// `max_cuts` non-trivial cuts per node, dominance-filtered, plus the trivial
// cut {n} used for merging at fanouts.  Leaf sets are sorted by node id;
// truth-table variable i corresponds to the i-th leaf.  Truth tables are
// support-minimized on construction, so a cut never carries vacuous leaves.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "aig/truth.hpp"

namespace aigml::aig {

struct Cut {
  std::array<NodeId, kTtMaxVars> leaves{};  ///< sorted ascending; [0, size)
  std::uint8_t size = 0;
  std::uint64_t table = 0;  ///< function of node over leaves, expanded form

  [[nodiscard]] std::span<const NodeId> leaf_span() const noexcept {
    return {leaves.data(), size};
  }
  [[nodiscard]] bool is_trivial_for(NodeId n) const noexcept {
    return size == 1 && leaves[0] == n;
  }
  /// True when every leaf of this cut also appears in `other` (domination).
  [[nodiscard]] bool subset_of(const Cut& other) const noexcept;
};

struct CutParams {
  int cut_size = 4;   ///< max leaves per cut (2..6)
  int max_cuts = 8;   ///< max non-trivial cuts kept per node
};

/// Per-node cut sets.  cuts(id) lists the node's non-trivial cuts (for PIs
/// and the constant node, the list is empty); the implicit trivial cut is
/// always additionally considered during merging.
///
/// Storage is a single flat arena: enumeration proceeds in topological order,
/// each node's final cut list is appended contiguously once, and per-node
/// views are (offset, count) spans into the arena.  Fanin cut lists are read
/// in place — no per-node vectors, no copies, no per-insert sort (a working
/// buffer of at most max_cuts entries is kept size-ordered by positional
/// insertion).
class CutSets {
 public:
  CutSets(const Aig& g, const CutParams& params);

  [[nodiscard]] std::span<const Cut> cuts(NodeId id) const {
    const Extent e = extents_[id];
    return {arena_.data() + e.offset, e.count};
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return extents_.size(); }
  /// Total cuts stored across all nodes.
  [[nodiscard]] std::size_t num_cuts() const noexcept { return arena_.size(); }
  [[nodiscard]] const CutParams& params() const noexcept { return params_; }

 private:
  struct Extent {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };
  std::vector<Cut> arena_;
  std::vector<Extent> extents_;
  CutParams params_;
};

/// Merges two cuts: leaf union + truth-table combination for
/// AND(f0 ^ c0, f1 ^ c1).  Returns false when the union exceeds `cut_size`.
/// On success the result is support-minimized.
[[nodiscard]] bool merge_cuts(const Cut& cut0, bool complement0, const Cut& cut1,
                              bool complement1, int cut_size, Cut& out);

}  // namespace aigml::aig
