#pragma once
// Bit-parallel simulation of AIGs (64 patterns per machine word) and
// combinational equivalence checking.
//
// Equivalence checking is the universal correctness oracle of this library:
// every logic transform and the technology mapper are property-tested with
// it.  For graphs with <= `exhaustive_limit` primary inputs the check is
// exhaustive (complete); above that it falls back to seeded random vectors
// (a strong Monte-Carlo check, standard practice for CEC smoke testing).

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "util/rng.hpp"

namespace aigml::aig {

/// Simulates one 64-pattern batch.  `pi_words[i]` holds the 64 input values
/// for the i-th primary input.  Returns one word per primary output.
[[nodiscard]] std::vector<std::uint64_t> simulate_words(const Aig& g,
                                                        std::span<const std::uint64_t> pi_words);

/// Simulates one 64-pattern batch and returns the value word of *every node*
/// (indexed by node id, positive polarity).  Used by windowing-based
/// transforms and by tests that validate per-node properties.
[[nodiscard]] std::vector<std::uint64_t> simulate_all_nodes(
    const Aig& g, std::span<const std::uint64_t> pi_words);

/// Simulates one single pattern (bit i of `pi_bits` = value of input i).
/// Returns output values packed in the same way.  Supports up to 64 I/Os.
[[nodiscard]] std::uint64_t simulate_pattern(const Aig& g, std::uint64_t pi_bits);

/// 64-bit output signature from a fixed seeded random batch; equal functions
/// have equal signatures, and structurally different implementations of
/// different functions almost surely differ.  Used to dedupe AIG variants.
[[nodiscard]] std::uint64_t simulation_signature(const Aig& g, std::uint64_t seed = 0xabcdef12);

struct EquivalenceOptions {
  /// Exhaustive check when num_inputs <= exhaustive_limit (2^n patterns).
  unsigned exhaustive_limit = 14;
  /// Number of 64-pattern random batches when not exhaustive.
  unsigned random_batches = 512;
  std::uint64_t seed = 0x0eec'5eed'0eec'5eedULL;
};

struct EquivalenceResult {
  bool equivalent = false;
  bool exhaustive = false;  ///< true when the verdict is a proof
  /// On failure: which output and which input pattern disagreed.
  std::uint32_t failing_output = 0;
  std::uint64_t failing_pattern = 0;
};

/// Checks that `a` and `b` compute the same outputs for the same inputs.
/// The graphs must agree in input and output counts (checked).
[[nodiscard]] EquivalenceResult check_equivalence(const Aig& a, const Aig& b,
                                                  const EquivalenceOptions& opt = {});

/// Convenience wrapper returning only the boolean verdict.
[[nodiscard]] inline bool equivalent(const Aig& a, const Aig& b,
                                     const EquivalenceOptions& opt = {}) {
  return check_equivalence(a, b, opt).equivalent;
}

}  // namespace aigml::aig
