#pragma once
// NPN (Negation-Permutation-Negation) canonicalization of truth tables over
// up to 4 variables, by exhaustive enumeration of the 2 * n! * 2^n
// transformation group (<= 768 elements for n = 4).
//
// Semantics of a transform T = (perm, input_phase, output_phase):
//
//   apply(t, T)(x_0..x_{n-1}) = output_phase XOR t(y_0..y_{n-1}),
//       where y_i = x_{perm[i]} XOR bit_i(input_phase).
//
// i.e. `perm[i]` names the *result* variable routed into input i of the
// original function.  canonicalize() returns the lexicographically smallest
// reachable table together with a transform that produces it:
// apply(t, canon.transform) == canon.table.

#include <array>
#include <cstdint>
#include <functional>

#include "aig/truth.hpp"

namespace aigml::aig {

inline constexpr int kNpnMaxVars = 4;

struct NpnTransform {
  std::array<std::uint8_t, kNpnMaxVars> perm = {0, 1, 2, 3};
  std::uint8_t input_phase = 0;  ///< bit i: complement input i of the original
  bool output_phase = false;

  friend bool operator==(const NpnTransform&, const NpnTransform&) = default;
};

/// Applies a transform (see semantics above).  `t` must be in expanded form;
/// the result is expanded too.
[[nodiscard]] std::uint64_t npn_apply(std::uint64_t t, int nvars, const NpnTransform& transform);

/// Inverse transform: npn_apply(npn_apply(t, T), npn_inverse(T)) == t.
[[nodiscard]] NpnTransform npn_inverse(const NpnTransform& transform, int nvars);

struct NpnCanon {
  std::uint64_t table = 0;    ///< canonical representative (expanded form)
  NpnTransform transform;     ///< apply(input, transform) == table
};

/// Exhaustive NPN canonicalization for nvars in [0, 4].
[[nodiscard]] NpnCanon npn_canonicalize(std::uint64_t t, int nvars);

/// Enumerates every distinct table reachable from `t` under the NPN group,
/// invoking `fn(table, transform)` once per (table, transform) pair.
/// Duplicate tables are visited multiple times (once per transform).
void npn_for_each(std::uint64_t t, int nvars,
                  const std::function<void(std::uint64_t, const NpnTransform&)>& fn);

}  // namespace aigml::aig
