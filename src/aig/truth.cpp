#include "aig/truth.hpp"

namespace aigml::aig {

std::uint64_t tt_remap(std::uint64_t t, std::span<const std::uint8_t> positions,
                       int new_nvars) noexcept {
  const int patterns = 1 << new_nvars;
  std::uint64_t out = 0;
  for (int p = 0; p < patterns; ++p) {
    std::uint32_t original = 0;
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (p & (1 << j)) original |= 1u << positions[j];
    }
    if (tt_eval(t, original)) out |= 1ULL << p;
  }
  return tt_expand_low(out, new_nvars);
}

int tt_shrink_support(std::uint64_t& t, int nvars, std::array<std::uint8_t, kTtMaxVars>& kept) {
  int k = 0;
  for (int i = 0; i < nvars; ++i) {
    if (tt_has_var(t, i)) kept[static_cast<std::size_t>(k++)] = static_cast<std::uint8_t>(i);
  }
  // Compact: slide each kept variable down into position j with adjacent
  // swaps (vacuous variables commute freely), O(1) bit ops per swap instead
  // of a 2^k per-pattern gather.  The result is expanded form by
  // construction: it depends on no variable >= k.
  for (int j = 0; j < k; ++j) {
    for (int i = kept[static_cast<std::size_t>(j)]; i > j; --i) {
      t = tt_swap_adjacent(t, i - 1);
    }
  }
  return k;
}

bool tt_is_parity(std::uint64_t t, std::uint32_t support_mask, bool& complemented) {
  std::uint64_t parity = tt_const0();
  for (int i = 0; i < kTtMaxVars; ++i) {
    if (support_mask & (1u << i)) parity ^= tt_var(i);
  }
  if (t == parity) {
    complemented = false;
    return true;
  }
  if (t == ~parity) {
    complemented = true;
    return true;
  }
  return false;
}

std::uint64_t cover_table(std::span<const Cube> cover) noexcept {
  std::uint64_t t = tt_const0();
  for (const Cube& c : cover) t |= c.table();
  return t;
}

namespace {

// Minato-Morreale ISOP on the interval [lower, upper].  Appends cubes to
// `out` and returns the table of the generated cover part.
std::uint64_t isop_rec(std::uint64_t lower, std::uint64_t upper, int var,
                       std::vector<Cube>& out) {
  if (lower == tt_const0()) return tt_const0();
  if (upper == tt_const1()) {
    out.push_back(Cube{});
    return tt_const1();
  }
  // Find the highest variable either bound depends on.
  int x = var;
  while (x >= 0 && !tt_has_var(lower, x) && !tt_has_var(upper, x)) --x;
  // lower <= upper and neither is constant at this point, so x >= 0.
  const std::uint64_t l0 = tt_cofactor0(lower, x);
  const std::uint64_t l1 = tt_cofactor1(lower, x);
  const std::uint64_t u0 = tt_cofactor0(upper, x);
  const std::uint64_t u1 = tt_cofactor1(upper, x);

  // Cubes that must contain literal !x (cover the part of the on-set that is
  // not allowed when x=1).
  const std::size_t begin0 = out.size();
  const std::uint64_t f0 = isop_rec(l0 & ~u1, u0, x - 1, out);
  for (std::size_t i = begin0; i < out.size(); ++i) out[i].neg |= 1u << x;

  // Cubes that must contain literal x.
  const std::size_t begin1 = out.size();
  const std::uint64_t f1 = isop_rec(l1 & ~u0, u1, x - 1, out);
  for (std::size_t i = begin1; i < out.size(); ++i) out[i].pos |= 1u << x;

  // Remainder, independent of x.
  const std::uint64_t remainder_lower = (l0 & ~f0) | (l1 & ~f1);
  const std::uint64_t fs = isop_rec(remainder_lower, u0 & u1, x - 1, out);

  const std::uint64_t mask_x = tt_var(x);
  return (f0 & ~mask_x) | (f1 & mask_x) | fs;
}

}  // namespace

std::vector<Cube> isop(std::uint64_t on_set, std::uint64_t dc_set, int nvars) {
  std::vector<Cube> cover;
  isop_rec(on_set & ~dc_set, on_set | dc_set, nvars - 1, cover);
  return cover;
}

int cover_literals(std::span<const Cube> cover) noexcept {
  int total = 0;
  for (const Cube& c : cover) total += c.num_literals();
  return total;
}

}  // namespace aigml::aig
