#pragma once
// Resynthesis of a truth table (<= 6 vars) into AIG nodes over given leaf
// literals.  Used by rewriting/refactoring (replace a cut with a smaller
// implementation) and by netlist-to-AIG extraction (rebuild cell functions
// for equivalence checking).
//
// The construction is generic over an "AND maker" so the same recipe can be
// *costed* without mutating the graph (see AndProber): the maker receives
// normalized literal pairs exactly as Aig::make_and would.
//
// Synthesis strategy: constant / single-literal shortcuts, parity detection
// (XOR chains — essential for arithmetic circuits), otherwise ISOP covers of
// both polarities with the cheaper one selected by literal count.

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "aig/truth.hpp"

namespace aigml::aig {

/// Maker signature: Lit and_fn(Lit a, Lit b) — must implement AND semantics
/// including trivial-case folding (Aig::make_and qualifies).
using AndFn = std::function<Lit(Lit, Lit)>;

/// Synthesizes `table` (expanded form, `nvars` variables) as a function of
/// `leaf_lits` using `and_fn` to create nodes.  Returns the root literal.
[[nodiscard]] Lit synthesize_tt(const AndFn& and_fn, std::uint64_t table, int nvars,
                                std::span<const Lit> leaf_lits);

/// Convenience wrapper building directly into a graph.
[[nodiscard]] Lit synthesize_tt_into(Aig& g, std::uint64_t table, int nvars,
                                     std::span<const Lit> leaf_lits);

/// Dry-run AND maker over an existing graph: returns existing literals where
/// structural hashing would, otherwise invents "hypothetical" literals with
/// ids beyond the graph and counts them as misses.  `misses()` after a
/// synthesis run equals the number of AND nodes real synthesis would add.
/// Also tracks an upper-bound level for each literal for depth tie-breaking.
class AndProber {
 public:
  /// `levels` are the current levels of `g`'s nodes (indexed by id); may be
  /// shorter than num_nodes() for convenience — missing entries read as 0.
  AndProber(const Aig& g, std::span<const std::uint32_t> levels);

  Lit operator()(Lit a, Lit b);

  [[nodiscard]] int misses() const noexcept { return misses_; }
  /// Level of a literal seen during probing (real or hypothetical).
  [[nodiscard]] std::uint32_t level_of(Lit lit) const;
  void reset();

 private:
  const Aig& g_;
  std::span<const std::uint32_t> levels_;
  std::unordered_map<std::uint64_t, Lit> hypothetical_;
  std::vector<std::uint32_t> hypo_levels_;
  NodeId next_fake_;
  int misses_ = 0;
};

}  // namespace aigml::aig
