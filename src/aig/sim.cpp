#include "aig/sim.hpp"

#include <stdexcept>

namespace aigml::aig {

namespace {

// Simulates one 64-pattern batch into `values` (indexed by node id); the
// caller provides PI words via `pi_word(i)`.
template <typename PiWordFn>
void simulate_into(const Aig& g, PiWordFn pi_word, std::vector<std::uint64_t>& values) {
  values.assign(g.num_nodes(), 0);
  std::size_t pi_index = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        values[id] = 0;
        break;
      case NodeKind::Input:
        values[id] = pi_word(pi_index++);
        break;
      case NodeKind::And: {
        const Lit f0 = g.fanin0(id);
        const Lit f1 = g.fanin1(id);
        const std::uint64_t v0 =
            values[lit_var(f0)] ^ (lit_is_complemented(f0) ? ~0ULL : 0ULL);
        const std::uint64_t v1 =
            values[lit_var(f1)] ^ (lit_is_complemented(f1) ? ~0ULL : 0ULL);
        values[id] = v0 & v1;
        break;
      }
    }
  }
}

std::vector<std::uint64_t> gather_outputs(const Aig& g, const std::vector<std::uint64_t>& values) {
  std::vector<std::uint64_t> out;
  out.reserve(g.num_outputs());
  for (const Lit o : g.outputs()) {
    out.push_back(values[lit_var(o)] ^ (lit_is_complemented(o) ? ~0ULL : 0ULL));
  }
  return out;
}

// Word assigned to PI `i` for exhaustive batch number `chunk`: inputs 0..5
// toggle inside the word, input 6+k mirrors bit k of the chunk index.
std::uint64_t exhaustive_pi_word(std::size_t i, std::uint64_t chunk) {
  static constexpr std::uint64_t kVarMask[6] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
  };
  if (i < 6) return kVarMask[i];
  return ((chunk >> (i - 6)) & 1ULL) ? ~0ULL : 0ULL;
}

}  // namespace

std::vector<std::uint64_t> simulate_words(const Aig& g, std::span<const std::uint64_t> pi_words) {
  if (pi_words.size() != g.num_inputs()) {
    throw std::invalid_argument("simulate_words: pattern count != number of inputs");
  }
  std::vector<std::uint64_t> values;
  simulate_into(g, [&](std::size_t i) { return pi_words[i]; }, values);
  return gather_outputs(g, values);
}

std::vector<std::uint64_t> simulate_all_nodes(const Aig& g,
                                              std::span<const std::uint64_t> pi_words) {
  if (pi_words.size() != g.num_inputs()) {
    throw std::invalid_argument("simulate_all_nodes: pattern count != number of inputs");
  }
  std::vector<std::uint64_t> values;
  simulate_into(g, [&](std::size_t i) { return pi_words[i]; }, values);
  return values;
}

std::uint64_t simulate_pattern(const Aig& g, std::uint64_t pi_bits) {
  if (g.num_inputs() > 64 || g.num_outputs() > 64) {
    throw std::invalid_argument("simulate_pattern: supports at most 64 inputs/outputs");
  }
  std::vector<std::uint64_t> words(g.num_inputs());
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = ((pi_bits >> i) & 1ULL) ? ~0ULL : 0ULL;
  }
  const auto outs = simulate_words(g, words);
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) bits |= (outs[i] & 1ULL) << i;
  return bits;
}

std::uint64_t simulation_signature(const Aig& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(g.num_inputs());
  std::uint64_t sig = 0x9e3779b97f4a7c15ULL ^ (g.num_outputs() * 0x100000001b3ULL);
  for (int batch = 0; batch < 4; ++batch) {
    for (auto& w : words) w = rng.next();
    const auto outs = simulate_words(g, words);
    for (const std::uint64_t w : outs) {
      sig ^= w + 0x9e3779b97f4a7c15ULL + (sig << 6) + (sig >> 2);
    }
  }
  return sig;
}

EquivalenceResult check_equivalence(const Aig& a, const Aig& b, const EquivalenceOptions& opt) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument("check_equivalence: interface mismatch");
  }
  EquivalenceResult result;
  const std::size_t n = a.num_inputs();
  std::vector<std::uint64_t> words(n);

  auto compare_batch = [&](std::uint64_t valid_mask,
                           std::uint64_t base_pattern) -> bool {
    const auto oa = simulate_words(a, words);
    const auto ob = simulate_words(b, words);
    for (std::size_t i = 0; i < oa.size(); ++i) {
      const std::uint64_t diff = (oa[i] ^ ob[i]) & valid_mask;
      if (diff != 0) {
        result.failing_output = static_cast<std::uint32_t>(i);
        result.failing_pattern = base_pattern + static_cast<std::uint64_t>(__builtin_ctzll(diff));
        return false;
      }
    }
    return true;
  };

  if (n <= opt.exhaustive_limit) {
    result.exhaustive = true;
    const std::uint64_t total = 1ULL << n;
    const std::uint64_t per_word = n >= 6 ? 64 : (1ULL << n);
    const std::uint64_t chunks = (total + per_word - 1) / per_word;
    const std::uint64_t valid_mask = per_word == 64 ? ~0ULL : ((1ULL << per_word) - 1);
    for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
      for (std::size_t i = 0; i < n; ++i) words[i] = exhaustive_pi_word(i, chunk);
      if (!compare_batch(valid_mask, chunk * per_word)) return result;
    }
    result.equivalent = true;
    return result;
  }

  Rng rng(opt.seed);
  for (unsigned batch = 0; batch < opt.random_batches; ++batch) {
    for (auto& w : words) w = rng.next();
    if (!compare_batch(~0ULL, static_cast<std::uint64_t>(batch) * 64)) return result;
  }
  result.equivalent = true;
  return result;
}

}  // namespace aigml::aig
