#pragma once
// Dirty regions — the structural delta between two AIGs, in the *after*
// graph's id space.  This is the currency of incremental move evaluation
// (DESIGN.md §8): a transform reports the region it touched
// (transforms::TransformResult), AnalysisCache::update() re-sweeps only the
// cones that region invalidates, and features::IncrementalExtractor
// recomputes only the feature components whose supporting sweeps changed.
//
// Id-space contract
// -----------------
// Node ids are topological in both graphs (aig.hpp), so a node id that holds
// an identical record (kind, fanin0, fanin1) in `before` and `after` computes
// identical *forward* analyses whenever its fanin cone is also unchanged.
// `diff_region` therefore describes the delta as:
//
//   * `changed`          ids < min(|before|, |after|) whose record differs,
//                        ascending, with the before-records kept alongside so
//                        consumers can reverse fanout contributions,
//   * `before_tail`      records of ids removed by a shrink,
//   * ids in [|before|, |after|) implied dirty by a growth (not listed),
//   * `outputs_changed`  + the before-output literals when the PO drivers
//                        moved (fanout and critical-path membership depend on
//                        them even when no node record changed).
//
// `full` marks a degenerate region: treat every node as changed (the
// conservative fallback; AnalysisCache answers it with a buffer-swapped
// from-scratch rebuild, so correctness never depends on a transform
// reporting a tight region).

#include <cstddef>
#include <vector>

#include "aig/aig.hpp"

namespace aigml::aig {

struct DirtyRegion {
  bool full = false;
  std::vector<NodeId> changed;        ///< ascending; ids < min(before, after) size
  std::vector<Node> before_changed;   ///< parallel to `changed`: the before-records
  std::vector<Node> before_tail;      ///< before-records of ids in [after_n, before_n)
  std::size_t before_num_nodes = 0;
  std::size_t after_num_nodes = 0;
  bool outputs_changed = false;
  std::vector<Lit> before_outputs;    ///< populated iff outputs_changed

  /// True when `after` is structurally identical to `before`: same node
  /// records, same size, same output literals.  An empty region makes
  /// AnalysisCache::update() a no-op (the cheapest possible move evaluation).
  [[nodiscard]] bool empty() const noexcept {
    return !full && changed.empty() && before_num_nodes == after_num_nodes && !outputs_changed;
  }

  /// Number of explicitly-listed changed ids plus the grow/shrink tail — the
  /// quantity benches report as "dirty nodes per move".
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t tail = before_num_nodes > after_num_nodes
                                 ? before_num_nodes - after_num_nodes
                                 : after_num_nodes - before_num_nodes;
    return changed.size() + tail;
  }

  /// The conservative everything-changed region for `before` -> `after`.
  [[nodiscard]] static DirtyRegion all(const Aig& before, const Aig& after);
};

/// Computes the dirty region between two graphs (see header comment).
/// O(min(|before|, |after|)) field compares plus O(|changed|) copies — far
/// cheaper than any analysis sweep it saves.
[[nodiscard]] DirtyRegion diff_region(const Aig& before, const Aig& after);

}  // namespace aigml::aig
