#include "aig/dirty.hpp"

namespace aigml::aig {

DirtyRegion DirtyRegion::all(const Aig& before, const Aig& after) {
  DirtyRegion region;
  region.full = true;
  region.before_num_nodes = before.num_nodes();
  region.after_num_nodes = after.num_nodes();
  region.outputs_changed = before.outputs() != after.outputs();
  if (region.outputs_changed) region.before_outputs = before.outputs();
  return region;
}

DirtyRegion diff_region(const Aig& before, const Aig& after) {
  DirtyRegion region;
  region.before_num_nodes = before.num_nodes();
  region.after_num_nodes = after.num_nodes();

  const std::size_t min_n = std::min(region.before_num_nodes, region.after_num_nodes);
  for (NodeId id = 0; id < min_n; ++id) {
    const Node& a = before.node(id);
    if (!(a == after.node(id))) {
      region.changed.push_back(id);
      region.before_changed.push_back(a);
    }
  }
  for (NodeId id = static_cast<NodeId>(region.after_num_nodes);
       id < region.before_num_nodes; ++id) {
    region.before_tail.push_back(before.node(id));
  }
  if (before.outputs() != after.outputs()) {
    region.outputs_changed = true;
    region.before_outputs = before.outputs();
  }
  return region;
}

}  // namespace aigml::aig
