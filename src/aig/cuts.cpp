#include "aig/cuts.hpp"

#include <algorithm>

namespace aigml::aig {

bool Cut::subset_of(const Cut& other) const noexcept {
  if (size > other.size) return false;
  std::size_t j = 0;
  for (std::size_t i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j == other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

bool merge_cuts(const Cut& cut0, bool complement0, const Cut& cut1, bool complement1,
                int cut_size, Cut& out) {
  // Merge the sorted leaf lists.
  std::array<NodeId, kTtMaxVars> merged{};
  int m = 0;
  std::size_t i = 0, j = 0;
  while (i < cut0.size || j < cut1.size) {
    NodeId next;
    if (i < cut0.size && (j >= cut1.size || cut0.leaves[i] <= cut1.leaves[j])) {
      next = cut0.leaves[i];
      if (j < cut1.size && cut1.leaves[j] == next) ++j;
      ++i;
    } else {
      next = cut1.leaves[j];
      ++j;
    }
    if (m == cut_size) return false;
    merged[static_cast<std::size_t>(m++)] = next;
  }

  // Align each fanin table to the merged leaf ordering: for each merged-leaf
  // assignment, evaluate the fanin table at the projected assignment.
  auto align = [&](const Cut& c) {
    std::array<std::uint8_t, kTtMaxVars> positions{};
    for (std::size_t v = 0; v < c.size; ++v) {
      const auto it = std::find(merged.begin(), merged.begin() + m, c.leaves[v]);
      positions[v] = static_cast<std::uint8_t>(it - merged.begin());
    }
    const int patterns = 1 << m;
    std::uint64_t out_tt = 0;
    for (int p = 0; p < patterns; ++p) {
      std::uint32_t original = 0;
      for (std::size_t v = 0; v < c.size; ++v) {
        if ((p >> positions[v]) & 1) original |= 1u << v;
      }
      if (tt_eval(c.table, original)) out_tt |= 1ULL << p;
    }
    return tt_expand_low(out_tt, m);
  };

  std::uint64_t t0 = align(cut0);
  std::uint64_t t1 = align(cut1);
  if (complement0) t0 = ~t0;
  if (complement1) t1 = ~t1;
  std::uint64_t table = t0 & t1;

  // Support-minimize: drop leaves the function does not depend on.
  std::array<std::uint8_t, kTtMaxVars> kept{};
  std::uint64_t shrunk = table;
  const int k = tt_shrink_support(shrunk, m, kept);
  out = Cut{};
  out.size = static_cast<std::uint8_t>(k);
  out.table = shrunk;
  for (int v = 0; v < k; ++v) out.leaves[static_cast<std::size_t>(v)] = merged[kept[static_cast<std::size_t>(v)]];
  return true;
}

namespace {

/// Inserts `cut` into `set` with dominance filtering and a size cap.
void insert_cut(std::vector<Cut>& set, const Cut& cut, int max_cuts) {
  // Reject if dominated by an existing cut (same function guarantee is not
  // required for domination: fewer leaves always at least as good).
  for (const Cut& existing : set) {
    if (existing.subset_of(cut)) return;
  }
  std::erase_if(set, [&](const Cut& existing) { return cut.subset_of(existing); });
  set.push_back(cut);
  // Priority: smaller cuts first (cheaper to match / fewer leaves).
  std::sort(set.begin(), set.end(), [](const Cut& a, const Cut& b) { return a.size < b.size; });
  if (set.size() > static_cast<std::size_t>(max_cuts)) set.resize(static_cast<std::size_t>(max_cuts));
}

Cut trivial_cut(NodeId id) {
  Cut c;
  c.size = 1;
  c.leaves[0] = id;
  c.table = tt_var(0);
  return c;
}

}  // namespace

CutSets::CutSets(const Aig& g, const CutParams& params) : params_(params) {
  sets_.resize(g.num_nodes());
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    const Lit f0 = g.fanin0(id);
    const Lit f1 = g.fanin1(id);
    const NodeId v0 = lit_var(f0);
    const NodeId v1 = lit_var(f1);
    const bool c0 = lit_is_complemented(f0);
    const bool c1 = lit_is_complemented(f1);

    // Candidate fanin cut lists: each fanin's stored cuts plus its trivial cut.
    std::vector<Cut> list0 = sets_[v0];
    list0.push_back(trivial_cut(v0));
    std::vector<Cut> list1 = sets_[v1];
    list1.push_back(trivial_cut(v1));

    auto& target = sets_[id];
    Cut merged;
    for (const Cut& a : list0) {
      for (const Cut& b : list1) {
        if (!merge_cuts(a, c0, b, c1, params.cut_size, merged)) continue;
        // Degenerate results are kept: a single-leaf cut means the node is a
        // (possibly complemented) copy of the leaf, and a zero-leaf cut means
        // the node is constant under reconvergent cancellation — both are
        // exploited by rewriting and mapping.  The zero-leaf cut dominates
        // (is a subset of) every other cut and will displace them.
        insert_cut(target, merged, params.max_cuts);
      }
    }
  }
}

}  // namespace aigml::aig
