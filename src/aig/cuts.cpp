#include "aig/cuts.hpp"

#include <algorithm>

namespace aigml::aig {

bool Cut::subset_of(const Cut& other) const noexcept {
  if (size > other.size) return false;
  std::size_t j = 0;
  for (std::size_t i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j == other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

bool merge_cuts(const Cut& cut0, bool complement0, const Cut& cut1, bool complement1,
                int cut_size, Cut& out) {
  // Merge the sorted leaf lists.
  std::array<NodeId, kTtMaxVars> merged{};
  int m = 0;
  std::size_t i = 0, j = 0;
  while (i < cut0.size || j < cut1.size) {
    NodeId next;
    if (i < cut0.size && (j >= cut1.size || cut0.leaves[i] <= cut1.leaves[j])) {
      next = cut0.leaves[i];
      if (j < cut1.size && cut1.leaves[j] == next) ++j;
      ++i;
    } else {
      next = cut1.leaves[j];
      ++j;
    }
    if (m == cut_size) return false;
    merged[static_cast<std::size_t>(m++)] = next;
  }

  // Align each fanin table to the merged leaf ordering.  Both leaf lists are
  // sorted, so each cut's leaves map to strictly increasing merged positions;
  // alignment is then just sliding variables upward past the inserted
  // (vacuous) ones — O(1) bit ops per adjacent swap, no 2^m pattern loop.
  auto align = [&](const Cut& c) {
    std::array<std::uint8_t, kTtMaxVars> positions{};
    std::size_t j = 0;
    for (std::size_t v = 0; v < c.size; ++v) {
      while (merged[j] != c.leaves[v]) ++j;
      positions[v] = static_cast<std::uint8_t>(j++);
    }
    std::uint64_t t = c.table;
    for (int v = static_cast<int>(c.size) - 1; v >= 0; --v) {
      for (int i = v; i < positions[static_cast<std::size_t>(v)]; ++i) {
        t = tt_swap_adjacent(t, i);
      }
    }
    return t;
  };

  std::uint64_t t0 = align(cut0);
  std::uint64_t t1 = align(cut1);
  if (complement0) t0 = ~t0;
  if (complement1) t1 = ~t1;
  std::uint64_t table = t0 & t1;

  // Support-minimize: drop leaves the function does not depend on.
  std::array<std::uint8_t, kTtMaxVars> kept{};
  std::uint64_t shrunk = table;
  const int k = tt_shrink_support(shrunk, m, kept);
  out = Cut{};
  out.size = static_cast<std::uint8_t>(k);
  out.table = shrunk;
  for (int v = 0; v < k; ++v) out.leaves[static_cast<std::size_t>(v)] = merged[kept[static_cast<std::size_t>(v)]];
  return true;
}

namespace {

/// Inserts `cut` into the size-ordered working buffer with dominance
/// filtering and a size cap.  One positional insertion replaces the seed's
/// full std::sort after every insert; the buffer stays ordered by cut size
/// (ascending — smaller cuts are cheaper to match), insertion-ordered within
/// equal sizes.
void insert_cut(std::vector<Cut>& set, const Cut& cut, int max_cuts) {
  // Reject if dominated by an existing cut (same function guarantee is not
  // required for domination: fewer leaves always at least as good).
  for (const Cut& existing : set) {
    if (existing.subset_of(cut)) return;
  }
  std::erase_if(set, [&](const Cut& existing) { return cut.subset_of(existing); });
  // Insertion position: after all cuts of size <= cut.size.
  std::size_t pos = set.size();
  while (pos > 0 && set[pos - 1].size > cut.size) --pos;
  if (set.size() == static_cast<std::size_t>(max_cuts)) {
    if (pos == set.size()) return;  // would be the largest: evicted on arrival
    set.pop_back();                 // evict the current largest instead
  }
  set.insert(set.begin() + static_cast<std::ptrdiff_t>(pos), cut);
}

Cut trivial_cut(NodeId id) {
  Cut c;
  c.size = 1;
  c.leaves[0] = id;
  c.table = tt_var(0);
  return c;
}

}  // namespace

CutSets::CutSets(const Aig& g, const CutParams& params) : params_(params) {
  extents_.resize(g.num_nodes());
  arena_.reserve(g.num_ands() * static_cast<std::size_t>(params.max_cuts) / 2);
  std::vector<Cut> work;  // reused per-node working buffer
  work.reserve(static_cast<std::size_t>(params.max_cuts) + 1);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    const Lit f0 = g.fanin0(id);
    const Lit f1 = g.fanin1(id);
    const NodeId v0 = lit_var(f0);
    const NodeId v1 = lit_var(f1);
    const bool c0 = lit_is_complemented(f0);
    const bool c1 = lit_is_complemented(f1);

    // Candidate fanin cut lists: each fanin's stored cuts (read in place from
    // the arena — appends only happen after both loops finish) plus its
    // trivial cut, materialized once on the stack.
    const std::span<const Cut> cuts0 = cuts(v0);
    const std::span<const Cut> cuts1 = cuts(v1);
    const Cut triv0 = trivial_cut(v0);
    const Cut triv1 = trivial_cut(v1);

    work.clear();
    Cut merged;
    for (std::size_t i = 0; i <= cuts0.size(); ++i) {
      const Cut& a = i < cuts0.size() ? cuts0[i] : triv0;
      for (std::size_t j = 0; j <= cuts1.size(); ++j) {
        const Cut& b = j < cuts1.size() ? cuts1[j] : triv1;
        if (!merge_cuts(a, c0, b, c1, params.cut_size, merged)) continue;
        // Degenerate results are kept: a single-leaf cut means the node is a
        // (possibly complemented) copy of the leaf, and a zero-leaf cut means
        // the node is constant under reconvergent cancellation — both are
        // exploited by rewriting and mapping.  The zero-leaf cut dominates
        // (is a subset of) every other cut and will displace them.
        insert_cut(work, merged, params.max_cuts);
      }
    }
    extents_[id] = {static_cast<std::uint32_t>(arena_.size()),
                    static_cast<std::uint32_t>(work.size())};
    arena_.insert(arena_.end(), work.begin(), work.end());
  }
}

}  // namespace aigml::aig
