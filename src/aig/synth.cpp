#include "aig/synth.hpp"

#include <algorithm>
#include <utility>

namespace aigml::aig {

namespace {

template <typename Op>
Lit balanced_reduce(std::vector<Lit> work, Lit identity, Op op) {
  if (work.empty()) return identity;
  while (work.size() > 1) {
    std::vector<Lit> next;
    next.reserve((work.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < work.size(); i += 2) next.push_back(op(work[i], work[i + 1]));
    if (work.size() % 2 == 1) next.push_back(work.back());
    work = std::move(next);
  }
  return work.front();
}

Lit make_or(const AndFn& and_fn, Lit a, Lit b) {
  return lit_not(and_fn(lit_not(a), lit_not(b)));
}

Lit make_xor(const AndFn& and_fn, Lit a, Lit b) {
  const Lit p = and_fn(a, lit_not(b));
  const Lit q = and_fn(lit_not(a), b);
  return make_or(and_fn, p, q);
}

Lit build_cover(const AndFn& and_fn, std::span<const Cube> cover,
                std::span<const Lit> leaf_lits) {
  std::vector<Lit> cube_lits;
  cube_lits.reserve(cover.size());
  for (const Cube& cube : cover) {
    std::vector<Lit> lits;
    for (int i = 0; i < kTtMaxVars; ++i) {
      if (cube.pos & (1u << i)) lits.push_back(leaf_lits[static_cast<std::size_t>(i)]);
      if (cube.neg & (1u << i)) lits.push_back(lit_not(leaf_lits[static_cast<std::size_t>(i)]));
    }
    cube_lits.push_back(
        balanced_reduce(std::move(lits), kLitTrue, [&](Lit x, Lit y) { return and_fn(x, y); }));
  }
  return balanced_reduce(std::move(cube_lits), kLitFalse,
                         [&](Lit x, Lit y) { return make_or(and_fn, x, y); });
}

}  // namespace

Lit synthesize_tt(const AndFn& and_fn, std::uint64_t table, int nvars,
                  std::span<const Lit> leaf_lits) {
  // Support-minimize so shortcuts below see the true function arity.
  std::array<std::uint8_t, kTtMaxVars> kept{};
  std::uint64_t t = table;
  const int k = tt_shrink_support(t, nvars, kept);
  std::vector<Lit> leaves(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) leaves[static_cast<std::size_t>(i)] = leaf_lits[kept[static_cast<std::size_t>(i)]];

  if (t == tt_const0()) return kLitFalse;
  if (t == tt_const1()) return kLitTrue;
  if (k == 1) return t == tt_var(0) ? leaves[0] : lit_not(leaves[0]);

  // Parity shortcut: an n-input XOR has a 2^(n-1)-cube ISOP, but only
  // 3*(n-1) AND nodes as a chain.
  const auto support_mask = static_cast<std::uint32_t>((1u << k) - 1);
  bool parity_complemented = false;
  if (tt_is_parity(t, support_mask, parity_complemented)) {
    const Lit chain = balanced_reduce(leaves, kLitFalse,
                                      [&](Lit x, Lit y) { return make_xor(and_fn, x, y); });
    return lit_not_if(chain, parity_complemented);
  }

  // ISOP of both polarities; build the cheaper cover.
  const std::vector<Cube> cover_pos = isop(t, tt_const0(), k);
  const std::vector<Cube> cover_neg = isop(~t, tt_const0(), k);
  const int cost_pos = cover_literals(cover_pos) + static_cast<int>(cover_pos.size());
  const int cost_neg = cover_literals(cover_neg) + static_cast<int>(cover_neg.size());
  if (cost_neg < cost_pos) {
    return lit_not(build_cover(and_fn, cover_neg, leaves));
  }
  return build_cover(and_fn, cover_pos, leaves);
}

Lit synthesize_tt_into(Aig& g, std::uint64_t table, int nvars, std::span<const Lit> leaf_lits) {
  return synthesize_tt([&g](Lit a, Lit b) { return g.make_and(a, b); }, table, nvars, leaf_lits);
}

AndProber::AndProber(const Aig& g, std::span<const std::uint32_t> levels)
    : g_(g), levels_(levels), next_fake_(static_cast<NodeId>(g.num_nodes())) {}

Lit AndProber::operator()(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if ((a ^ b) == 1u) return kLitFalse;
  const bool both_real =
      lit_var(a) < g_.num_nodes() && lit_var(b) < g_.num_nodes();
  if (both_real) {
    const Lit existing = g_.probe_and(a, b);
    if (existing != kLitInvalid) return existing;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (const auto it = hypothetical_.find(key); it != hypothetical_.end()) return it->second;
  const Lit fake = make_lit(next_fake_++);
  hypothetical_.emplace(key, fake);
  hypo_levels_.push_back(1 + std::max(level_of(a), level_of(b)));
  ++misses_;
  return fake;
}

std::uint32_t AndProber::level_of(Lit lit) const {
  const NodeId var = lit_var(lit);
  if (var < g_.num_nodes()) {
    return var < levels_.size() ? levels_[var] : 0;
  }
  return hypo_levels_[var - g_.num_nodes()];
}

void AndProber::reset() {
  hypothetical_.clear();
  hypo_levels_.clear();
  next_fake_ = static_cast<NodeId>(g_.num_nodes());
  misses_ = 0;
}

}  // namespace aigml::aig
