#pragma once
// Truth-table utilities for functions of up to 6 variables, packed in a
// single 64-bit word.
//
// Storage convention: the value of the function for input assignment
// (x5..x0) lives in bit index sum(x_i << i).  Tables are kept in *expanded*
// form — bits beyond 2^n replicate the low block — so 64-bit bitwise ops
// compose functions of different support sizes without masking.  All
// functions here preserve that invariant.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace aigml::aig {

inline constexpr int kTtMaxVars = 6;

/// Elementary table of variable `i` (bit = value of x_i), expanded form.
[[nodiscard]] constexpr std::uint64_t tt_var(int i) noexcept {
  constexpr std::uint64_t kMask[kTtMaxVars] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
  };
  return kMask[i];
}

[[nodiscard]] constexpr std::uint64_t tt_const0() noexcept { return 0ULL; }
[[nodiscard]] constexpr std::uint64_t tt_const1() noexcept { return ~0ULL; }

/// Restricts attention to the low 2^n bits (e.g. for printing / comparing
/// non-expanded external tables).
[[nodiscard]] constexpr std::uint64_t tt_mask(int nvars) noexcept {
  return nvars >= 6 ? ~0ULL : ((1ULL << (1u << nvars)) - 1);
}

/// Re-expands a table given only its low 2^n bits.
[[nodiscard]] constexpr std::uint64_t tt_expand_low(std::uint64_t low_bits, int nvars) noexcept {
  std::uint64_t t = low_bits & tt_mask(nvars);
  for (int i = nvars; i < kTtMaxVars; ++i) t |= t << (1u << i);
  return t;
}

/// Positive / negative cofactor with respect to variable i.
[[nodiscard]] constexpr std::uint64_t tt_cofactor1(std::uint64_t t, int i) noexcept {
  const std::uint64_t hi = t & tt_var(i);
  return hi | (hi >> (1u << i));
}
[[nodiscard]] constexpr std::uint64_t tt_cofactor0(std::uint64_t t, int i) noexcept {
  const std::uint64_t lo = t & ~tt_var(i);
  return lo | (lo << (1u << i));
}

/// True when the function depends on variable i.
[[nodiscard]] constexpr bool tt_has_var(std::uint64_t t, int i) noexcept {
  return tt_cofactor0(t, i) != tt_cofactor1(t, i);
}

/// Support mask (bit i set iff the function depends on x_i), considering
/// the first `nvars` variables.
[[nodiscard]] constexpr std::uint32_t tt_support(std::uint64_t t, int nvars) noexcept {
  std::uint32_t mask = 0;
  for (int i = 0; i < nvars; ++i) {
    if (tt_has_var(t, i)) mask |= 1u << i;
  }
  return mask;
}

/// Negates variable i (f(x_i) -> f(!x_i)).
[[nodiscard]] constexpr std::uint64_t tt_flip_var(std::uint64_t t, int i) noexcept {
  const unsigned shift = 1u << i;
  return ((t & tt_var(i)) >> shift) | ((t & ~tt_var(i)) << shift);
}

/// Evaluates the function at an assignment (bit i of `assignment` = x_i).
[[nodiscard]] constexpr bool tt_eval(std::uint64_t t, std::uint32_t assignment) noexcept {
  return ((t >> (assignment & 63u)) & 1ULL) != 0;
}

/// Exchanges variables i and i+1 (i in [0, 5)) in O(1) bit operations —
/// the building block for variable reordering without a per-pattern loop.
[[nodiscard]] constexpr std::uint64_t tt_swap_adjacent(std::uint64_t t, int i) noexcept {
  const std::uint64_t hi_lo = tt_var(i) & ~tt_var(i + 1);  // x_i=1, x_{i+1}=0
  const std::uint64_t lo_hi = ~tt_var(i) & tt_var(i + 1);  // x_i=0, x_{i+1}=1
  const unsigned shift = 1u << i;
  return (t & ~(hi_lo | lo_hi)) | ((t & hi_lo) << shift) | ((t & lo_hi) >> shift);
}

/// Reorders support: variable `j` of the result reads variable `positions[j]`
/// of the input.  `positions` must be a injective map into [0, 6).
/// General-purpose fallback for arbitrary permutations; the cut-merging hot
/// path instead slides variables with tt_swap_adjacent (its leaf maps are
/// always monotone).  The result has `new_nvars` variables.
[[nodiscard]] std::uint64_t tt_remap(std::uint64_t t, std::span<const std::uint8_t> positions,
                                     int new_nvars) noexcept;

/// Removes vacuous variables: compacts the support of `t` (over `nvars`
/// variables) to the first `k` positions, preserving relative order.
/// Returns the compacted table and writes the kept original indices to
/// `kept`; returns the new variable count.  `t` must be in expanded form
/// (the compaction slides variables with tt_swap_adjacent, so stale bits in
/// positions >= 2^nvars would be interleaved into the result); run raw
/// low-bits tables through tt_expand_low first.
int tt_shrink_support(std::uint64_t& t, int nvars, std::array<std::uint8_t, kTtMaxVars>& kept);

/// True when `t` is the parity (XOR) of exactly the variables in
/// `support_mask`, possibly complemented; sets `complemented` accordingly.
[[nodiscard]] bool tt_is_parity(std::uint64_t t, std::uint32_t support_mask, bool& complemented);

/// Product term over <= 6 variables: x_i appears positively when bit i of
/// `pos` is set, negatively when bit i of `neg` is set (disjoint masks).
struct Cube {
  std::uint8_t pos = 0;
  std::uint8_t neg = 0;

  [[nodiscard]] int num_literals() const noexcept {
    return __builtin_popcount(pos) + __builtin_popcount(neg);
  }
  [[nodiscard]] std::uint64_t table() const noexcept {
    std::uint64_t t = tt_const1();
    for (int i = 0; i < kTtMaxVars; ++i) {
      if (pos & (1u << i)) t &= tt_var(i);
      if (neg & (1u << i)) t &= ~tt_var(i);
    }
    return t;
  }
  friend bool operator==(const Cube&, const Cube&) = default;
};

/// OR of cube tables.
[[nodiscard]] std::uint64_t cover_table(std::span<const Cube> cover) noexcept;

/// Irredundant sum-of-products via the Minato-Morreale interval algorithm.
/// Returns a cover C with  on_set <= f(C) <= on_set | dc_set  (expanded-form
/// tables over `nvars` variables).
[[nodiscard]] std::vector<Cube> isop(std::uint64_t on_set, std::uint64_t dc_set, int nvars);

/// Total literal count of a cover.
[[nodiscard]] int cover_literals(std::span<const Cube> cover) noexcept;

}  // namespace aigml::aig
