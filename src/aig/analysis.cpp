#include "aig/analysis.hpp"

#include <algorithm>

namespace aigml::aig {

AnalysisCache::AnalysisCache(const Aig& g) {
  const std::size_t n = g.num_nodes();
  constexpr double kSaturate = 1e300;

  // Sweep 1: fanout counts (must complete before the weighted depths, which
  // read the fanout of every node including ones later in topo order).
  fanout_.assign(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (!g.is_and(id)) continue;
    ++fanout_[lit_var(g.fanin0(id))];
    ++fanout_[lit_var(g.fanin1(id))];
  }
  for (const Lit o : g.outputs()) ++fanout_[lit_var(o)];

  // Sweep 2 (fused forward pass): levels, depths, both weighted depths, and
  // path counts in a single topological walk.
  level_.assign(n, 0);
  depth_.assign(n, 0);
  wdepth_.assign(n, 0.0);
  bdepth_.assign(n, 0.0);
  paths_.assign(n, 0.0);
  for (NodeId id = 0; id < n; ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        break;  // all-zero defaults are correct
      case NodeKind::Input:
        depth_[id] = 1;
        wdepth_[id] = static_cast<double>(fanout_[id]);
        bdepth_[id] = fanout_[id] >= 2 ? 1.0 : 0.0;
        paths_[id] = 1.0;
        break;
      case NodeKind::And: {
        const NodeId v0 = lit_var(g.fanin0(id));
        const NodeId v1 = lit_var(g.fanin1(id));
        level_[id] = 1 + std::max(level_[v0], level_[v1]);
        depth_[id] = 1 + std::max(depth_[v0], depth_[v1]);
        wdepth_[id] = static_cast<double>(fanout_[id]) + std::max(wdepth_[v0], wdepth_[v1]);
        bdepth_[id] = (fanout_[id] >= 2 ? 1.0 : 0.0) + std::max(bdepth_[v0], bdepth_[v1]);
        paths_[id] = std::min(paths_[v0] + paths_[v1], kSaturate);
        break;
      }
    }
  }
  for (const Lit o : g.outputs()) {
    aig_level_ = std::max(aig_level_, level_[lit_var(o)]);
    max_depth_ = std::max(max_depth_, depth_[lit_var(o)]);
  }

  // Sweep 3 (reverse pass): height below each node in the output cone, from
  // which critical-path membership follows (depth + height - 1 == max depth).
  if (max_depth_ == 0) return;
  std::vector<std::uint32_t> height(n, 0);
  std::vector<char> in_cone(n, 0);
  for (const Lit o : g.outputs()) {
    const NodeId v = lit_var(o);
    in_cone[v] = 1;
    height[v] = std::max(height[v], 1u);
  }
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    if (!in_cone[id] || !g.is_and(id)) continue;
    for (const Lit f : {g.fanin0(id), g.fanin1(id)}) {
      const NodeId v = lit_var(f);
      in_cone[v] = 1;
      height[v] = std::max(height[v], height[id] + 1);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    if (!in_cone[id] || g.is_constant(id)) continue;
    if (depth_[id] + height[id] - 1 == max_depth_) critical_.push_back(id);
  }
}

std::vector<std::uint32_t> levels(const Aig& g) {
  std::vector<std::uint32_t> lvl(g.num_nodes(), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    const std::uint32_t l0 = lvl[lit_var(g.fanin0(id))];
    const std::uint32_t l1 = lvl[lit_var(g.fanin1(id))];
    lvl[id] = 1 + std::max(l0, l1);
  }
  return lvl;
}

std::uint32_t aig_level(const Aig& g) {
  const auto lvl = levels(g);
  std::uint32_t best = 0;
  for (const Lit o : g.outputs()) best = std::max(best, lvl[lit_var(o)]);
  return best;
}

std::vector<std::uint32_t> node_depths(const Aig& g) {
  std::vector<std::uint32_t> depth(g.num_nodes(), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        depth[id] = 0;
        break;
      case NodeKind::Input:
        depth[id] = 1;
        break;
      case NodeKind::And: {
        const std::uint32_t d0 = depth[lit_var(g.fanin0(id))];
        const std::uint32_t d1 = depth[lit_var(g.fanin1(id))];
        depth[id] = 1 + std::max(d0, d1);
        break;
      }
    }
  }
  return depth;
}

std::vector<double> weighted_depths(const Aig& g, const std::vector<double>& weights) {
  std::vector<double> depth(g.num_nodes(), 0.0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        depth[id] = 0.0;
        break;
      case NodeKind::Input:
        depth[id] = weights[id];
        break;
      case NodeKind::And: {
        const double d0 = depth[lit_var(g.fanin0(id))];
        const double d1 = depth[lit_var(g.fanin1(id))];
        depth[id] = weights[id] + std::max(d0, d1);
        break;
      }
    }
  }
  return depth;
}

std::vector<std::uint32_t> fanout_counts(const Aig& g) {
  std::vector<std::uint32_t> fanout(g.num_nodes(), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    ++fanout[lit_var(g.fanin0(id))];
    ++fanout[lit_var(g.fanin1(id))];
  }
  for (const Lit o : g.outputs()) ++fanout[lit_var(o)];
  return fanout;
}

std::vector<double> path_counts(const Aig& g) {
  constexpr double kSaturate = 1e300;
  std::vector<double> paths(g.num_nodes(), 0.0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        paths[id] = 0.0;
        break;
      case NodeKind::Input:
        paths[id] = 1.0;
        break;
      case NodeKind::And: {
        const double p = paths[lit_var(g.fanin0(id))] + paths[lit_var(g.fanin1(id))];
        paths[id] = std::min(p, kSaturate);
        break;
      }
    }
  }
  return paths;
}

std::vector<NodeId> critical_path_nodes(const Aig& g) {
  const auto depth = node_depths(g);
  std::uint32_t max_depth = 0;
  for (const Lit o : g.outputs()) max_depth = std::max(max_depth, depth[lit_var(o)]);
  if (max_depth == 0) return {};

  // height(n): max node count from n (inclusive) down to an output driver on
  // which n lies.  Only meaningful for nodes in the output cone.
  std::vector<std::uint32_t> height(g.num_nodes(), 0);
  std::vector<char> in_cone(g.num_nodes(), 0);
  for (const Lit o : g.outputs()) {
    const NodeId v = lit_var(o);
    in_cone[v] = 1;
    height[v] = std::max(height[v], 1u);
  }
  // Reverse topological sweep (node ids are topologically ordered).
  for (NodeId id = static_cast<NodeId>(g.num_nodes()); id-- > 0;) {
    if (!in_cone[id] || !g.is_and(id)) continue;
    for (const Lit f : {g.fanin0(id), g.fanin1(id)}) {
      const NodeId v = lit_var(f);
      in_cone[v] = 1;
      height[v] = std::max(height[v], height[id] + 1);
    }
  }
  std::vector<NodeId> result;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!in_cone[id] || g.is_constant(id)) continue;
    // A node lies on a maximum-depth path iff depth + height - 1 == max_depth
    // (the node itself is counted by both terms).
    if (depth[id] + height[id] - 1 == max_depth) result.push_back(id);
  }
  return result;
}

std::vector<char> reachable_from_outputs(const Aig& g) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack;
  for (const Lit o : g.outputs()) stack.push_back(lit_var(o));
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = 1;
    if (g.is_and(id)) {
      stack.push_back(lit_var(g.fanin0(id)));
      stack.push_back(lit_var(g.fanin1(id)));
    }
  }
  return seen;
}

std::vector<NodeId> cone_of(const Aig& g, NodeId root) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{root};
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen[id] || !g.is_and(id)) continue;
    seen[id] = 1;
    cone.push_back(id);
    stack.push_back(lit_var(g.fanin0(id)));
    stack.push_back(lit_var(g.fanin1(id)));
  }
  std::sort(cone.begin(), cone.end());  // node ids are topological
  return cone;
}

std::uint32_t mffc_size(const Aig& g, NodeId root, const std::vector<std::uint32_t>& fanouts) {
  if (!g.is_and(root)) return 0;
  // Simulate dereferencing: a fanin joins the MFFC when all its fanouts are
  // already inside.
  std::vector<std::uint32_t> deref(g.num_nodes(), 0);
  std::vector<NodeId> stack{root};
  std::uint32_t size = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++size;
    for (const Lit f : {g.fanin0(id), g.fanin1(id)}) {
      const NodeId v = lit_var(f);
      if (!g.is_and(v)) continue;
      if (++deref[v] == fanouts[v]) stack.push_back(v);
    }
  }
  return size;
}

}  // namespace aigml::aig
