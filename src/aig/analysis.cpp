#include "aig/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace aigml::aig {

// ---- AnalysisCache: shared per-node forward recurrence ----------------------
//
// Every forward quantity is a function of (kind, own fanout, fanin values).
// rebuild() and update() both funnel through compute_node so the two paths
// execute the exact same floating-point operations — the foundation of the
// bit-identity contract (DESIGN.md §8).

AnalysisCache::NodeValues AnalysisCache::compute_node(const Aig& g, NodeId id) const {
  constexpr double kSaturate = 1e300;
  NodeValues v{0, 0, 0.0, 0.0, 0.0};
  switch (g.kind(id)) {
    case NodeKind::Constant:
      break;  // all-zero values are correct
    case NodeKind::Input:
      v.depth = 1;
      v.wdepth = static_cast<double>(fanout_[id]);
      v.bdepth = fanout_[id] >= 2 ? 1.0 : 0.0;
      v.paths = 1.0;
      break;
    case NodeKind::And: {
      const NodeId v0 = lit_var(g.fanin0(id));
      const NodeId v1 = lit_var(g.fanin1(id));
      v.level = 1 + std::max(level_[v0], level_[v1]);
      v.depth = 1 + std::max(depth_[v0], depth_[v1]);
      v.wdepth = static_cast<double>(fanout_[id]) + std::max(wdepth_[v0], wdepth_[v1]);
      v.bdepth = (fanout_[id] >= 2 ? 1.0 : 0.0) + std::max(bdepth_[v0], bdepth_[v1]);
      v.paths = std::min(paths_[v0] + paths_[v1], kSaturate);
      break;
    }
  }
  return v;
}

void AnalysisCache::recompute_output_maxima(const Aig& g) {
  aig_level_ = 0;
  max_depth_ = 0;
  for (const Lit o : g.outputs()) {
    aig_level_ = std::max(aig_level_, level_[lit_var(o)]);
    max_depth_ = std::max(max_depth_, depth_[lit_var(o)]);
  }
}

// Reverse sweep: height below each node in the output cone, from which
// critical-path membership follows (depth + height - 1 == max depth).  Runs
// on generation-stamped scratch so repeated calls never allocate or clear;
// always swaps the previous critical set into critical_prev_ (rollback).
void AnalysisCache::rebuild_reverse(const Aig& g) {
  critical_prev_.swap(critical_);
  critical_.clear();
  last_reverse_ran_ = true;
  if (scope_ == AnalysisScope::kForwardOnly) return;
  if (max_depth_ == 0) return;
  const std::size_t n = g.num_nodes();
  if (rev_stamp_.size() < n) {
    rev_stamp_.resize(n, 0);
    height_scratch_.resize(n, 0);
  }
  if (++rev_gen_ == 0) {
    std::fill(rev_stamp_.begin(), rev_stamp_.end(), 0);
    rev_gen_ = 1;
  }
  const auto relax = [&](NodeId v, std::uint32_t h) {
    if (rev_stamp_[v] != rev_gen_) {
      rev_stamp_[v] = rev_gen_;
      height_scratch_[v] = h;
    } else if (height_scratch_[v] < h) {
      height_scratch_[v] = h;
    }
  };
  for (const Lit o : g.outputs()) relax(lit_var(o), 1);
  // A node's height is final when the descending sweep reaches it (all
  // contributions come from outputs or higher-id parents), so critical
  // membership is collected in the same pass, descending, and reversed.
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    if (rev_stamp_[id] != rev_gen_) continue;
    const std::uint32_t h = height_scratch_[id];
    if (!g.is_constant(id) && depth_[id] + h - 1 == max_depth_) critical_.push_back(id);
    if (!g.is_and(id)) continue;
    relax(lit_var(g.fanin0(id)), h + 1);
    relax(lit_var(g.fanin1(id)), h + 1);
  }
  std::reverse(critical_.begin(), critical_.end());
}

void AnalysisCache::grow_to(std::size_t n) {
  if (level_.size() < n) {
    level_.resize(n, 0);
    depth_.resize(n, 0);
    fanout_.resize(n, 0);
    wdepth_.resize(n, 0.0);
    bdepth_.resize(n, 0.0);
    paths_.resize(n, 0.0);
  }
  if (touch_stamp_.size() < n) {
    touch_stamp_.resize(n, 0);
    value_stamp_.resize(n, 0);
    fanout_stamp_.resize(n, 0);
  }
}

void AnalysisCache::bump_generation() {
  if (++gen_ == 0) {
    std::fill(touch_stamp_.begin(), touch_stamp_.end(), 0);
    std::fill(value_stamp_.begin(), value_stamp_.end(), 0);
    std::fill(fanout_stamp_.begin(), fanout_stamp_.end(), 0);
    gen_ = 1;
  }
}

void AnalysisCache::rebuild_arrays(const Aig& g) {
  const std::size_t n = g.num_nodes();

  // Sweep 1: fanout counts (must complete before the forward sweep, which
  // reads the fanout of every node including ones later in topo order).
  fanout_.assign(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    if (!g.is_and(id)) continue;
    ++fanout_[lit_var(g.fanin0(id))];
    ++fanout_[lit_var(g.fanin1(id))];
  }
  for (const Lit o : g.outputs()) ++fanout_[lit_var(o)];

  // Sweep 2 (fused forward pass): levels, depths, both weighted depths, and
  // path counts in a single topological walk.
  level_.assign(n, 0);
  depth_.assign(n, 0);
  wdepth_.assign(n, 0.0);
  bdepth_.assign(n, 0.0);
  paths_.assign(n, 0.0);
  for (NodeId id = 0; id < n; ++id) {
    const NodeValues v = compute_node(g, id);
    level_[id] = v.level;
    depth_[id] = v.depth;
    wdepth_[id] = v.wdepth;
    bdepth_[id] = v.bdepth;
    paths_[id] = v.paths;
  }
  recompute_output_maxima(g);

  // Sweep 3 (reverse pass): critical-path membership.
  rebuild_reverse(g);

  grow_to(n);  // keep the stamp scratch sized for value_changed() queries
}

void AnalysisCache::rebuild(const Aig& g) {
  pending_ = Pending::kNone;
  bound_ = true;
  forward_undo_.clear();
  fanout_undo_.clear();
  fanout_changes_.clear();
  critical_swapped_ = false;
  rebuild_arrays(g);
  n_ = g.num_nodes();
  before_n_ = n_;
}

void AnalysisCache::update(const Aig& g, const DirtyRegion& dirty) {
  if (!bound_) throw std::logic_error("AnalysisCache::update: no graph bound (call rebuild)");
  if (pending_ != Pending::kNone) {
    throw std::logic_error("AnalysisCache::update: an update is already pending");
  }
  before_n_ = n_;
  before_aig_level_ = aig_level_;
  before_max_depth_ = max_depth_;
  forward_undo_.clear();
  fanout_undo_.clear();
  fanout_changes_.clear();
  critical_swapped_ = false;
  last_reverse_ran_ = false;
  bump_generation();

  const std::size_t new_n = g.num_nodes();

  if (dirty.empty()) {
    // Structurally identical candidate (common once a search converges):
    // every analysis is already correct.
    pending_ = Pending::kDelta;
    return;
  }

  // ---- repair-policy estimate (read-only).  The forward scan must start at
  // the lowest id whose record or fanout changes; everything from there to
  // the end is visited (cheaply) by the repair sweep.  When that window plus
  // the per-entry delta bookkeeping approaches the cost of the three fused
  // from-scratch sweeps, a buffer-swapped rebuild is faster — the sweeps are
  // branch-free and allocation-free after warm-up, while per-entry repair
  // pays stamp checks, compares, and undo logging per node.  Bit-identity
  // holds on every path (same compute_node recurrence), so the policy is
  // purely a wall-time decision.
  bool use_delta = !dirty.full;
  if (use_delta) {
    NodeId est_from = static_cast<NodeId>(new_n);
    const auto lower = [&](NodeId v) { est_from = std::min(est_from, v); };
    for (const NodeId id : dirty.changed) {
      lower(id);
      if (g.is_and(id)) {
        lower(lit_var(g.fanin0(id)));
        lower(lit_var(g.fanin1(id)));
      }
    }
    for (const Node& was : dirty.before_changed) {
      if (was.kind != NodeKind::And) continue;
      lower(lit_var(was.fanin0));
      lower(lit_var(was.fanin1));
    }
    for (const Node& was : dirty.before_tail) {
      if (was.kind != NodeKind::And) continue;
      lower(lit_var(was.fanin0));
      lower(lit_var(was.fanin1));
    }
    if (dirty.outputs_changed) {
      for (const Lit o : dirty.before_outputs) lower(lit_var(o));
      for (const Lit o : g.outputs()) lower(lit_var(o));
    }
    if (new_n != before_n_) lower(static_cast<NodeId>(std::min(before_n_, new_n)));
    // Grown-tail nodes disturb the fanout of whatever they reference, which
    // can drag the real scan start far below the tail itself.
    for (NodeId id = static_cast<NodeId>(std::min(before_n_, new_n)); id < new_n; ++id) {
      if (!g.is_and(id)) continue;
      lower(lit_var(g.fanin0(id)));
      lower(lit_var(g.fanin1(id)));
    }
    const std::size_t window = new_n - est_from;
    // Empirical crossover (bench_eval): per-node repair costs ~3-4x a fused
    // sweep node-visit, and kFull pays the reverse sweep on both paths.
    use_delta = window + 4 * dirty.size() < new_n;
  }

  if (!use_delta) {
    // Conservative fallback: from-scratch rebuild into the current buffers,
    // with the previous state parked in the swap buffers for rollback.
    level_prev_.swap(level_);
    depth_prev_.swap(depth_);
    fanout_prev_.swap(fanout_);
    wdepth_prev_.swap(wdepth_);
    bdepth_prev_.swap(bdepth_);
    paths_prev_.swap(paths_);
    rebuild_arrays(g);  // swaps critical_ into critical_prev_ internally
    critical_swapped_ = true;
    n_ = new_n;
    pending_ = Pending::kSwapped;
    return;
  }

  const std::size_t min_n = std::min(before_n_, new_n);
  grow_to(std::max(before_n_, new_n));

  // ---- fanout delta: reverse the before-records' references, apply the
  // after-records'.  First touch of an id logs its pre-update value (undo +
  // the normalized change list the feature extractor consumes).
  const auto touch = [&](NodeId v) {
    if (fanout_stamp_[v] == gen_) return;
    fanout_stamp_[v] = gen_;
    fanout_undo_.push_back({v, fanout_[v]});
  };
  const auto drop_refs = [&](const Node& was) {
    if (was.kind != NodeKind::And) return;
    const NodeId v0 = lit_var(was.fanin0);
    const NodeId v1 = lit_var(was.fanin1);
    touch(v0);
    --fanout_[v0];
    touch(v1);
    --fanout_[v1];
  };
  const auto add_refs = [&](NodeId id) {
    if (!g.is_and(id)) return;
    const NodeId v0 = lit_var(g.fanin0(id));
    const NodeId v1 = lit_var(g.fanin1(id));
    touch(v0);
    ++fanout_[v0];
    touch(v1);
    ++fanout_[v1];
  };
  for (const Node& was : dirty.before_changed) drop_refs(was);
  for (const Node& was : dirty.before_tail) drop_refs(was);
  for (const NodeId id : dirty.changed) add_refs(id);
  for (NodeId id = static_cast<NodeId>(min_n); id < new_n; ++id) add_refs(id);  // grown ids
  if (dirty.outputs_changed) {
    for (const Lit o : dirty.before_outputs) {
      const NodeId v = lit_var(o);
      touch(v);
      --fanout_[v];
    }
    for (const Lit o : g.outputs()) {
      const NodeId v = lit_var(o);
      touch(v);
      ++fanout_[v];
    }
  }
  for (const FanoutUndo& u : fanout_undo_) {
    const std::uint32_t after = u.id < new_n ? fanout_[u.id] : 0;
    if (u.id < new_n && after == u.before) continue;  // net no-op
    fanout_changes_.push_back({u.id, u.before, after});
  }

  // ---- forward repair: seed the dirty frontier (changed records, net
  // fanout changes, the grown tail), then sweep ascending from the first
  // seed.  A node is recomputed when seeded or when a fanin's value changed;
  // propagation stops wherever the recomputed values are bit-identical to
  // the cached ones.
  NodeId scan_from = static_cast<NodeId>(new_n);
  const auto seed = [&](NodeId id) {
    if (id >= new_n) return;
    touch_stamp_[id] = gen_;
    if (id < scan_from) scan_from = id;
  };
  for (const NodeId id : dirty.changed) seed(id);
  for (const FanoutChange& c : fanout_changes_) seed(c.id);
  if (new_n > before_n_ && before_n_ < scan_from) scan_from = static_cast<NodeId>(before_n_);

  for (NodeId id = scan_from; id < new_n; ++id) {
    const bool grown = id >= before_n_;
    bool need = grown || touch_stamp_[id] == gen_;
    if (!need && g.is_and(id)) {
      need = value_stamp_[lit_var(g.fanin0(id))] == gen_ ||
             value_stamp_[lit_var(g.fanin1(id))] == gen_;
    }
    if (!need) continue;
    const NodeValues v = compute_node(g, id);
    ++nodes_recomputed_;
    if (!grown) {
      if (v.level == level_[id] && v.depth == depth_[id] && v.wdepth == wdepth_[id] &&
          v.bdepth == bdepth_[id] && v.paths == paths_[id]) {
        continue;  // converged: downstream reads only values, not structure
      }
      forward_undo_.push_back({id, {level_[id], depth_[id], wdepth_[id], bdepth_[id], paths_[id]}});
    }
    level_[id] = v.level;
    depth_[id] = v.depth;
    wdepth_[id] = v.wdepth;
    bdepth_[id] = v.bdepth;
    paths_[id] = v.paths;
    value_stamp_[id] = gen_;
  }
  recompute_output_maxima(g);

  // ---- reverse repair: any structural/output change can alter output-cone
  // membership, so the reverse sweep reruns whenever the region is
  // non-empty.  It is stamped scratch (no allocation, no clearing) and its
  // previous result swaps into critical_prev_ for rollback.
  rebuild_reverse(g);
  critical_swapped_ = true;

  n_ = new_n;
  pending_ = Pending::kDelta;
}

void AnalysisCache::save(AnalysisSnapshot& out) const {
  out.num_nodes = n_;
  out.level.assign(level_.begin(), level_.begin() + static_cast<std::ptrdiff_t>(n_));
  out.depth.assign(depth_.begin(), depth_.begin() + static_cast<std::ptrdiff_t>(n_));
  out.fanout.assign(fanout_.begin(), fanout_.begin() + static_cast<std::ptrdiff_t>(n_));
  out.wdepth.assign(wdepth_.begin(), wdepth_.begin() + static_cast<std::ptrdiff_t>(n_));
  out.bdepth.assign(bdepth_.begin(), bdepth_.begin() + static_cast<std::ptrdiff_t>(n_));
  out.paths.assign(paths_.begin(), paths_.begin() + static_cast<std::ptrdiff_t>(n_));
  out.critical = critical_;
  out.aig_level = aig_level_;
  out.max_depth = max_depth_;
}

void AnalysisCache::adopt(const AnalysisSnapshot& snapshot) {
  if (!bound_) throw std::logic_error("AnalysisCache::adopt: no graph bound (call rebuild)");
  if (pending_ != Pending::kNone) {
    throw std::logic_error("AnalysisCache::adopt: an update is already pending");
  }
  before_n_ = n_;
  before_aig_level_ = aig_level_;
  before_max_depth_ = max_depth_;
  forward_undo_.clear();
  fanout_undo_.clear();
  fanout_changes_.clear();
  last_reverse_ran_ = true;
  bump_generation();

  level_prev_.swap(level_);
  depth_prev_.swap(depth_);
  fanout_prev_.swap(fanout_);
  wdepth_prev_.swap(wdepth_);
  bdepth_prev_.swap(bdepth_);
  paths_prev_.swap(paths_);
  critical_prev_.swap(critical_);
  critical_swapped_ = true;
  level_ = snapshot.level;
  depth_ = snapshot.depth;
  fanout_ = snapshot.fanout;
  wdepth_ = snapshot.wdepth;
  bdepth_ = snapshot.bdepth;
  paths_ = snapshot.paths;
  critical_ = snapshot.critical;
  aig_level_ = snapshot.aig_level;
  max_depth_ = snapshot.max_depth;
  n_ = snapshot.num_nodes;
  grow_to(n_);
  pending_ = Pending::kSwapped;
}

void AnalysisCache::commit() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("AnalysisCache::commit: no update pending");
  }
  level_.resize(n_);
  depth_.resize(n_);
  fanout_.resize(n_);
  wdepth_.resize(n_);
  bdepth_.resize(n_);
  paths_.resize(n_);
  pending_ = Pending::kNone;
}

void AnalysisCache::rollback() {
  if (pending_ == Pending::kNone) {
    throw std::logic_error("AnalysisCache::rollback: no update pending");
  }
  if (pending_ == Pending::kSwapped) {
    level_prev_.swap(level_);
    depth_prev_.swap(depth_);
    fanout_prev_.swap(fanout_);
    wdepth_prev_.swap(wdepth_);
    bdepth_prev_.swap(bdepth_);
    paths_prev_.swap(paths_);
  } else {
    for (const ForwardUndo& u : forward_undo_) {
      level_[u.id] = u.values.level;
      depth_[u.id] = u.values.depth;
      wdepth_[u.id] = u.values.wdepth;
      bdepth_[u.id] = u.values.bdepth;
      paths_[u.id] = u.values.paths;
    }
    for (const FanoutUndo& u : fanout_undo_) fanout_[u.id] = u.before;
  }
  if (critical_swapped_) critical_.swap(critical_prev_);
  aig_level_ = before_aig_level_;
  max_depth_ = before_max_depth_;
  n_ = before_n_;
  level_.resize(n_);
  depth_.resize(n_);
  fanout_.resize(n_);
  wdepth_.resize(n_);
  bdepth_.resize(n_);
  paths_.resize(n_);
  pending_ = Pending::kNone;
}

std::vector<std::uint32_t> levels(const Aig& g) {
  std::vector<std::uint32_t> lvl(g.num_nodes(), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    const std::uint32_t l0 = lvl[lit_var(g.fanin0(id))];
    const std::uint32_t l1 = lvl[lit_var(g.fanin1(id))];
    lvl[id] = 1 + std::max(l0, l1);
  }
  return lvl;
}

std::uint32_t aig_level(const Aig& g) {
  const auto lvl = levels(g);
  std::uint32_t best = 0;
  for (const Lit o : g.outputs()) best = std::max(best, lvl[lit_var(o)]);
  return best;
}

std::vector<std::uint32_t> node_depths(const Aig& g) {
  std::vector<std::uint32_t> depth(g.num_nodes(), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        depth[id] = 0;
        break;
      case NodeKind::Input:
        depth[id] = 1;
        break;
      case NodeKind::And: {
        const std::uint32_t d0 = depth[lit_var(g.fanin0(id))];
        const std::uint32_t d1 = depth[lit_var(g.fanin1(id))];
        depth[id] = 1 + std::max(d0, d1);
        break;
      }
    }
  }
  return depth;
}

std::vector<double> weighted_depths(const Aig& g, const std::vector<double>& weights) {
  std::vector<double> depth(g.num_nodes(), 0.0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        depth[id] = 0.0;
        break;
      case NodeKind::Input:
        depth[id] = weights[id];
        break;
      case NodeKind::And: {
        const double d0 = depth[lit_var(g.fanin0(id))];
        const double d1 = depth[lit_var(g.fanin1(id))];
        depth[id] = weights[id] + std::max(d0, d1);
        break;
      }
    }
  }
  return depth;
}

std::vector<std::uint32_t> fanout_counts(const Aig& g) {
  std::vector<std::uint32_t> fanout(g.num_nodes(), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!g.is_and(id)) continue;
    ++fanout[lit_var(g.fanin0(id))];
    ++fanout[lit_var(g.fanin1(id))];
  }
  for (const Lit o : g.outputs()) ++fanout[lit_var(o)];
  return fanout;
}

std::vector<double> path_counts(const Aig& g) {
  constexpr double kSaturate = 1e300;
  std::vector<double> paths(g.num_nodes(), 0.0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    switch (g.kind(id)) {
      case NodeKind::Constant:
        paths[id] = 0.0;
        break;
      case NodeKind::Input:
        paths[id] = 1.0;
        break;
      case NodeKind::And: {
        const double p = paths[lit_var(g.fanin0(id))] + paths[lit_var(g.fanin1(id))];
        paths[id] = std::min(p, kSaturate);
        break;
      }
    }
  }
  return paths;
}

std::vector<NodeId> critical_path_nodes(const Aig& g) {
  const auto depth = node_depths(g);
  std::uint32_t max_depth = 0;
  for (const Lit o : g.outputs()) max_depth = std::max(max_depth, depth[lit_var(o)]);
  if (max_depth == 0) return {};

  // height(n): max node count from n (inclusive) down to an output driver on
  // which n lies.  Only meaningful for nodes in the output cone.
  std::vector<std::uint32_t> height(g.num_nodes(), 0);
  std::vector<char> in_cone(g.num_nodes(), 0);
  for (const Lit o : g.outputs()) {
    const NodeId v = lit_var(o);
    in_cone[v] = 1;
    height[v] = std::max(height[v], 1u);
  }
  // Reverse topological sweep (node ids are topologically ordered).
  for (NodeId id = static_cast<NodeId>(g.num_nodes()); id-- > 0;) {
    if (!in_cone[id] || !g.is_and(id)) continue;
    for (const Lit f : {g.fanin0(id), g.fanin1(id)}) {
      const NodeId v = lit_var(f);
      in_cone[v] = 1;
      height[v] = std::max(height[v], height[id] + 1);
    }
  }
  std::vector<NodeId> result;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (!in_cone[id] || g.is_constant(id)) continue;
    // A node lies on a maximum-depth path iff depth + height - 1 == max_depth
    // (the node itself is counted by both terms).
    if (depth[id] + height[id] - 1 == max_depth) result.push_back(id);
  }
  return result;
}

std::vector<char> reachable_from_outputs(const Aig& g) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack;
  for (const Lit o : g.outputs()) stack.push_back(lit_var(o));
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = 1;
    if (g.is_and(id)) {
      stack.push_back(lit_var(g.fanin0(id)));
      stack.push_back(lit_var(g.fanin1(id)));
    }
  }
  return seen;
}

std::vector<NodeId> cone_of(const Aig& g, NodeId root) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> stack{root};
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen[id] || !g.is_and(id)) continue;
    seen[id] = 1;
    cone.push_back(id);
    stack.push_back(lit_var(g.fanin0(id)));
    stack.push_back(lit_var(g.fanin1(id)));
  }
  std::sort(cone.begin(), cone.end());  // node ids are topological
  return cone;
}

std::uint32_t mffc_size(const Aig& g, NodeId root, const std::vector<std::uint32_t>& fanouts) {
  if (!g.is_and(root)) return 0;
  // Simulate dereferencing: a fanin joins the MFFC when all its fanouts are
  // already inside.
  std::vector<std::uint32_t> deref(g.num_nodes(), 0);
  std::vector<NodeId> stack{root};
  std::uint32_t size = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++size;
    for (const Lit f : {g.fanin0(id), g.fanin1(id)}) {
      const NodeId v = lit_var(f);
      if (!g.is_and(v)) continue;
      if (++deref[v] == fanouts[v]) stack.push_back(v);
    }
  }
  return size;
}

}  // namespace aigml::aig
