#pragma once
// ASCII AIGER ("aag") serialization, for interoperability with external
// tools (ABC, aigtoaig, ...) and for golden-file tests.
//
// Only the combinational subset is supported: latches are rejected on read
// and never produced on write.  Symbol table entries (i/o names) and comments
// are preserved where present.

#include <filesystem>
#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace aigml::aig {

/// Writes `g` in aag format.
void write_aiger(const Aig& g, std::ostream& out);
void write_aiger_file(const Aig& g, const std::filesystem::path& path);
[[nodiscard]] std::string to_aiger_string(const Aig& g);

/// Parses an aag stream.  Throws std::runtime_error with a line-numbered
/// message on malformed input or when latches are present.
[[nodiscard]] Aig read_aiger(std::istream& in);
[[nodiscard]] Aig read_aiger_file(const std::filesystem::path& path);
[[nodiscard]] Aig from_aiger_string(const std::string& text);

/// Binary AIGER ("aig" header): delta-encoded AND section, the format most
/// external tools exchange.  Same combinational-only restrictions.
void write_aiger_binary(const Aig& g, std::ostream& out);
[[nodiscard]] Aig read_aiger_binary(std::istream& in);
/// Dispatches on the magic word ("aag " vs "aig ").
[[nodiscard]] Aig read_aiger_auto_file(const std::filesystem::path& path);

}  // namespace aigml::aig
