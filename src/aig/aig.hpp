#pragma once
// And-Inverter Graph (AIG) — the logic representation all optimization in
// this library operates on.
//
// Conventions follow the AIGER format: a *literal* is `2*var + phase`, where
// `phase == 1` denotes complementation.  Variable 0 is the constant-false
// node, so literal 0 is FALSE and literal 1 is TRUE.  Nodes are stored in a
// vector in creation order; because an AND can only reference already-created
// fanins, the vector order is always a valid topological order.
//
// Structural hashing: `make_and` normalizes fanin order, folds constants and
// trivial cases (a&a, a&!a), and returns an existing node when one computes
// the same pair.  Two structurally identical graphs built through the public
// API therefore share node identity.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace aigml::aig {

/// Literal: 2*var + phase.
using Lit = std::uint32_t;
/// Node index (a.k.a. variable).
using NodeId = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;
inline constexpr Lit kLitInvalid = std::numeric_limits<Lit>::max();

[[nodiscard]] inline constexpr NodeId lit_var(Lit lit) noexcept { return lit >> 1; }
[[nodiscard]] inline constexpr bool lit_is_complemented(Lit lit) noexcept { return (lit & 1u) != 0; }
[[nodiscard]] inline constexpr Lit make_lit(NodeId var, bool complemented = false) noexcept {
  return (var << 1) | static_cast<Lit>(complemented);
}
[[nodiscard]] inline constexpr Lit lit_not(Lit lit) noexcept { return lit ^ 1u; }
[[nodiscard]] inline constexpr Lit lit_not_if(Lit lit, bool cond) noexcept {
  return lit ^ static_cast<Lit>(cond);
}
[[nodiscard]] inline constexpr Lit lit_regular(Lit lit) noexcept { return lit & ~1u; }

enum class NodeKind : std::uint8_t {
  Constant,  ///< node 0 only; semantics: constant false
  Input,     ///< primary input
  And,       ///< two-input AND over (possibly complemented) literals
};

struct Node {
  Lit fanin0 = kLitFalse;  ///< valid iff kind == And; invariant: fanin0 <= fanin1
  Lit fanin1 = kLitFalse;  ///< valid iff kind == And
  NodeKind kind = NodeKind::Constant;

  /// Record equality — what dirty-region diffing (dirty.hpp) and the
  /// evaluation memo's exact structure compare are defined over.
  [[nodiscard]] bool operator==(const Node&) const = default;
};

/// Combinational And-Inverter Graph.
class Aig {
 public:
  Aig();

  Aig(const Aig&) = default;
  Aig(Aig&&) noexcept = default;
  Aig& operator=(const Aig&) = default;
  Aig& operator=(Aig&&) noexcept = default;

  // ----- construction -------------------------------------------------------

  /// Creates a primary input; returns its (positive) literal.
  Lit add_input(std::string name = {});

  /// Creates (or retrieves) the AND of two literals.  Performs constant
  /// folding, idempotence/complement simplification, and structural hashing.
  Lit make_and(Lit a, Lit b);

  /// Returns the literal make_and(a, b) would return *without* creating any
  /// node, or kLitInvalid if a new node would be required.  Used to cost
  /// candidate resyntheses before committing to them.
  [[nodiscard]] Lit probe_and(Lit a, Lit b) const;

  // Derived operators (all expressed through make_and; XOR/MUX cost 3 ANDs).
  Lit make_or(Lit a, Lit b) { return lit_not(make_and(lit_not(a), lit_not(b))); }
  Lit make_nand(Lit a, Lit b) { return lit_not(make_and(a, b)); }
  Lit make_nor(Lit a, Lit b) { return make_and(lit_not(a), lit_not(b)); }
  Lit make_xor(Lit a, Lit b);
  Lit make_xnor(Lit a, Lit b) { return lit_not(make_xor(a, b)); }
  /// if sel then t else e.
  Lit make_mux(Lit sel, Lit t, Lit e);
  /// Majority of three (used by adder generators).
  Lit make_maj(Lit a, Lit b, Lit c);
  /// AND/OR over a span of literals, built as a balanced tree.
  Lit make_and_n(std::span<const Lit> lits);
  Lit make_or_n(std::span<const Lit> lits);
  Lit make_xor_n(std::span<const Lit> lits);

  /// Registers a primary output driven by `lit`.  Returns the output index.
  std::uint32_t add_output(Lit lit, std::string name = {});
  /// Redirects an existing output (used by rebuild-style transforms).
  void set_output(std::uint32_t index, Lit lit);

  // ----- inspection ----------------------------------------------------------

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  /// Number of AND nodes — the paper's "node count" proxy for area.
  [[nodiscard]] std::size_t num_ands() const noexcept { return num_ands_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return inputs_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  [[nodiscard]] bool is_and(NodeId id) const { return nodes_[id].kind == NodeKind::And; }
  [[nodiscard]] bool is_input(NodeId id) const { return nodes_[id].kind == NodeKind::Input; }
  [[nodiscard]] bool is_constant(NodeId id) const { return nodes_[id].kind == NodeKind::Constant; }
  [[nodiscard]] Lit fanin0(NodeId id) const { return nodes_[id].fanin0; }
  [[nodiscard]] Lit fanin1(NodeId id) const { return nodes_[id].fanin1; }

  /// Primary-input node ids in creation order.
  [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
  /// Primary-output driver literals in creation order.
  [[nodiscard]] const std::vector<Lit>& outputs() const noexcept { return outputs_; }

  [[nodiscard]] const std::string& input_name(std::size_t i) const { return input_names_[i]; }
  [[nodiscard]] const std::string& output_name(std::size_t i) const { return output_names_[i]; }

  /// 64-bit structural fingerprint of the DAG reachable from the outputs
  /// (node structure + output literals; names excluded).
  [[nodiscard]] std::uint64_t structural_hash() const;

  /// True when every AND fanin references a lower-numbered node (the class
  /// maintains this; exposed for tests and for graphs built by deserializers).
  [[nodiscard]] bool check_acyclic_order() const;

  /// Rebuilds the graph keeping only logic reachable from the outputs.
  /// Dead AND nodes (left behind by rebuild-style transforms) are dropped and
  /// structural hashing is re-applied.  Input/output counts, order, and names
  /// are preserved.
  [[nodiscard]] Aig cleanup() const;

  /// Reserve node storage (optimization for bulk construction).
  void reserve(std::size_t n) { nodes_.reserve(n); }

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<Lit> outputs_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::uint64_t, NodeId> strash_;
  std::size_t num_ands_ = 0;
};

}  // namespace aigml::aig
