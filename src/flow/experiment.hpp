#pragma once
// Experiment orchestration shared by the bench harness and examples:
// assembles the per-design datasets (with caching), trains the delay/area
// GBDT models on the paper's train split, and computes the Table III
// accuracy rows.

#include <map>
#include <string>
#include <vector>

#include "flow/datagen.hpp"
#include "gen/designs.hpp"
#include "ml/gbdt.hpp"
#include "util/stats.hpp"

namespace aigml::flow {

struct ExperimentData {
  /// Per-design generated datasets, keyed by design name.
  std::map<std::string, GeneratedData> per_design;
  /// Concatenated training-split datasets.
  ml::Dataset delay_train;
  ml::Dataset area_train;
};

/// Generates (or loads from cache) datasets for all eight designs.
/// `variants_per_design` <= 0 uses params.num_variants.
[[nodiscard]] ExperimentData prepare_experiment_data(const cell::Library& lib,
                                                     DataGenParams params,
                                                     const std::filesystem::path& cache_dir);

struct TrainedModels {
  ml::GbdtModel delay;
  ml::GbdtModel area;
  ml::TrainLog delay_log;
  ml::TrainLog area_log;
};

/// Trains delay and area regressors on the training split.
[[nodiscard]] TrainedModels train_models(const ExperimentData& data, const ml::GbdtParams& params);

struct AccuracyRow {
  std::string design;
  bool training = false;
  ErrorSummary delay_error;  ///< absolute %error vs ground truth
  ErrorSummary area_error;
};

/// Per-design prediction accuracy (the Table III rows).
[[nodiscard]] std::vector<AccuracyRow> evaluate_accuracy(const ExperimentData& data,
                                                         const TrainedModels& models);

/// Repo-scale GBDT defaults, or the paper's hyperparameters when
/// AIGML_PAPER_HPARAMS=1.
[[nodiscard]] ml::GbdtParams default_gbdt_params();

}  // namespace aigml::flow
