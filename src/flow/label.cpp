#include "flow/label.hpp"

#include "aig/sim.hpp"
#include "netlist/netlist.hpp"

namespace aigml::flow {

LabeledRow label_one(const aig::Aig& g, const cell::Library& lib,
                     const map::MapParams& map_params, const sta::StaParams& sta_params) {
  LabeledRow out;
  const auto netlist = map::map_to_cells(g, lib, map_params);
  const auto sta = sta::run_sta(netlist, lib, sta_params);
  out.features = features::extract(g);
  out.delay_ps = sta.max_delay_ps;
  out.area_um2 = sta.total_area_um2;
  return out;
}

std::uint64_t variant_signature(const aig::Aig& g) {
  return g.structural_hash() ^ (aig::simulation_signature(g) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace aigml::flow
