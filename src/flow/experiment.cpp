#include "flow/experiment.hpp"

#include "features/features.hpp"
#include "util/env.hpp"

namespace aigml::flow {

ExperimentData prepare_experiment_data(const cell::Library& lib, DataGenParams params,
                                       const std::filesystem::path& cache_dir) {
  ExperimentData data;
  data.delay_train = ml::Dataset(features::feature_names());
  data.area_train = ml::Dataset(features::feature_names());
  std::uint64_t seed = params.seed;
  for (const auto& spec : gen::design_specs()) {
    DataGenParams design_params = params;
    design_params.seed = seed++;
    const aig::Aig base = gen::build_design(spec.name);
    GeneratedData generated = load_or_generate(base, spec.name, lib, design_params, cache_dir);
    if (spec.training) {
      data.delay_train.merge(generated.delay);
      data.area_train.merge(generated.area);
    }
    data.per_design.emplace(spec.name, std::move(generated));
  }
  return data;
}

TrainedModels train_models(const ExperimentData& data, const ml::GbdtParams& params) {
  TrainedModels models;
  models.delay = ml::GbdtModel::train(data.delay_train, params, nullptr, &models.delay_log);
  models.area = ml::GbdtModel::train(data.area_train, params, nullptr, &models.area_log);
  return models;
}

std::vector<AccuracyRow> evaluate_accuracy(const ExperimentData& data,
                                           const TrainedModels& models) {
  std::vector<AccuracyRow> rows;
  for (const auto& spec : gen::design_specs()) {
    const auto it = data.per_design.find(spec.name);
    if (it == data.per_design.end()) continue;
    AccuracyRow row;
    row.design = spec.name;
    row.training = spec.training;
    const auto delay_pred = models.delay.predict_all(it->second.delay);
    row.delay_error = absolute_percent_error(delay_pred, it->second.delay.labels());
    const auto area_pred = models.area.predict_all(it->second.area);
    row.area_error = absolute_percent_error(area_pred, it->second.area.labels());
    rows.push_back(std::move(row));
  }
  return rows;
}

ml::GbdtParams default_gbdt_params() {
  if (env_paper_hparams()) return ml::paper_gbdt_params();
  return ml::GbdtParams{};
}

}  // namespace aigml::flow
