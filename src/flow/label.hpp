#pragma once
// Shared ground-truth labeling kernel: one variant in, post-mapping
// delay/area + Table II features out.  This is the single place that runs
// the mapper + STA call sequence — flow::generate_dataset labels its
// speculative batches through it, and learn::LabelHarvester labels the
// states it harvests from a live search through the very same kernel, so
// offline datasets and online harvests can never drift apart in how a row
// is produced.
//
// label_one is a pure function of (g, lib, params) — safe to evaluate from
// any worker thread (datagen's parallel batches, the harvester's background
// labeling worker).

#include <cstdint>

#include "aig/aig.hpp"
#include "celllib/library.hpp"
#include "features/features.hpp"
#include "mapper/mapper.hpp"
#include "sta/sta.hpp"

namespace aigml::flow {

/// One labeled row: the Table II feature vector plus the two ground-truth
/// labels the paper trains on.
struct LabeledRow {
  features::FeatureVector features{};
  double delay_ps = 0.0;   ///< post-mapping max delay (STA)
  double area_um2 = 0.0;   ///< post-mapping cell area
};

/// Maps `g` to cells, runs STA, extracts features.  The expensive oracle the
/// ML flow exists to avoid calling in the loop — which is exactly why both
/// the offline data generator and the online harvester pay for it only on
/// deduplicated rows.
[[nodiscard]] LabeledRow label_one(const aig::Aig& g, const cell::Library& lib,
                                   const map::MapParams& map_params = {},
                                   const sta::StaParams& sta_params = {});

/// Structural identity of a variant: structural hash mixed with a
/// function-sensitive simulation signature, so "unique" means structurally
/// distinct implementations.  The dedup key of the datagen pipeline, the
/// learn/ replay buffer, and keyed ml::Dataset rows — one key space
/// everywhere, so a state harvested online dedups against rows generated
/// offline.
[[nodiscard]] std::uint64_t variant_signature(const aig::Aig& g);

}  // namespace aigml::flow
