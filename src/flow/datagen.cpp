#include "flow/datagen.hpp"

#include <unordered_set>

#include "aig/sim.hpp"
#include "features/features.hpp"
#include "transforms/scripts.hpp"
#include "transforms/shuffle.hpp"
#include "util/timer.hpp"

namespace aigml::flow {

using aig::Aig;

Aig random_variant_step(const Aig& start, Rng& rng) {
  // Optimization scripts explore the quality dimension; the randomized
  // restructurings explore the *structural* dimension (without them the
  // deterministic, confluent scripts saturate after a few dozen variants on
  // small designs — nothing like the paper's 40k/design).
  switch (rng.next_below(4)) {
    case 0:
      return transforms::randomized_rebalance(start, rng.next());
    case 1:
      return transforms::randomized_resynthesis(start, rng.next());
    default:
      return transforms::script_registry().apply(
          transforms::script_registry().random_index(rng), start);
  }
}

GeneratedData generate_dataset(const Aig& base, const std::string& tag, const cell::Library& lib,
                               const DataGenParams& params) {
  Timer timer;
  Rng rng(params.seed);

  GeneratedData out{ml::Dataset(features::feature_names()), ml::Dataset(features::feature_names()),
                    0, 0.0};

  auto label_and_append = [&](const Aig& g) {
    const auto netlist = map::map_to_cells(g, lib, params.map_params);
    const auto sta = sta::run_sta(netlist, lib, params.sta_params);
    const features::FeatureVector f = features::extract(g);
    out.delay.append(f, sta.max_delay_ps, tag);
    out.area.append(f, sta.total_area_um2, tag);
  };

  // Signature combines structure and function-sensitive simulation so that
  // "unique AIGs" means structurally distinct graphs.
  auto signature = [](const Aig& g) {
    return g.structural_hash() ^ (aig::simulation_signature(g) * 0x9e3779b97f4a7c15ULL);
  };

  std::unordered_set<std::uint64_t> seen;
  std::vector<Aig> pool;
  pool.push_back(base.cleanup());
  seen.insert(signature(pool.front()));
  label_and_append(pool.front());
  out.unique_variants = 1;

  const int budget = params.num_variants * params.max_attempts_factor;
  int attempts = 0;
  while (static_cast<int>(out.unique_variants) < params.num_variants && attempts < budget) {
    ++attempts;
    // Walk step: restart at the base or continue from a recent pool member
    // (triangular bias toward newer variants for diversity in depth).
    const Aig* start = nullptr;
    if (rng.next_bool(params.restart_probability)) {
      start = &pool.front();
    } else {
      const std::size_t n = pool.size();
      const std::size_t i = std::max(rng.next_below(n), rng.next_below(n));
      start = &pool[i];
    }
    Aig candidate = random_variant_step(*start, rng);
    const std::uint64_t sig = signature(candidate);
    if (!seen.insert(sig).second) continue;
    label_and_append(candidate);
    pool.push_back(std::move(candidate));
    ++out.unique_variants;
  }
  out.generation_seconds = timer.elapsed_s();
  return out;
}

GeneratedData load_or_generate(const Aig& base, const std::string& tag, const cell::Library& lib,
                               const DataGenParams& params,
                               const std::filesystem::path& cache_dir) {
  const std::string stem =
      tag + "_n" + std::to_string(params.num_variants) + "_s" + std::to_string(params.seed);
  const auto delay_path = cache_dir / (stem + "_delay.csv");
  const auto area_path = cache_dir / (stem + "_area.csv");
  auto delay = ml::Dataset::load(delay_path);
  auto area = ml::Dataset::load(area_path);
  if (delay.has_value() && area.has_value() && delay->num_rows() == area->num_rows() &&
      delay->num_rows() > 0) {
    GeneratedData out{std::move(*delay), std::move(*area), 0, 0.0};
    out.unique_variants = out.delay.num_rows();
    return out;
  }
  GeneratedData generated = generate_dataset(base, tag, lib, params);
  generated.delay.save(delay_path);
  generated.area.save(area_path);
  return generated;
}

}  // namespace aigml::flow
