#include "flow/datagen.hpp"

#include <unordered_set>

#include "flow/label.hpp"
#include "transforms/scripts.hpp"
#include "transforms/shuffle.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace aigml::flow {

using aig::Aig;

Aig random_variant_step(const Aig& start, Rng& rng) {
  // Optimization scripts explore the quality dimension; the randomized
  // restructurings explore the *structural* dimension (without them the
  // deterministic, confluent scripts saturate after a few dozen variants on
  // small designs — nothing like the paper's 40k/design).
  switch (rng.next_below(4)) {
    case 0:
      return transforms::randomized_rebalance(start, rng.next());
    case 1:
      return transforms::randomized_resynthesis(start, rng.next());
    default:
      return transforms::script_registry().apply(
          transforms::script_registry().random_index(rng), start);
  }
}

namespace {

/// The shared labeling kernel (flow/label.hpp) under the datagen params.
LabeledRow label_variant(const Aig& g, const cell::Library& lib, const DataGenParams& params) {
  return label_one(g, lib, params.map_params, params.sta_params);
}

}  // namespace

GeneratedData generate_dataset(const Aig& base, const std::string& tag, const cell::Library& lib,
                               const DataGenParams& params) {
  Timer timer;
  Rng rng(params.seed);
  ThreadPool pool_threads(params.num_threads);

  GeneratedData out{ml::Dataset(features::feature_names()), ml::Dataset(features::feature_names()),
                    0, 0.0};
  // Rows carry their variant signature as the dataset dedup key, so a later
  // merge_dedup (learn::Retrainer folding harvests into a base set) can spot
  // structures this generator already labeled.
  auto commit = [&](const LabeledRow& l, std::uint64_t sig) {
    out.delay.append(l.features, l.delay_ps, tag, sig);
    out.area.append(l.features, l.area_um2, tag, sig);
  };

  std::unordered_set<std::uint64_t> seen;
  std::vector<Aig> pool;
  pool.push_back(base.cleanup());
  const std::uint64_t base_sig = variant_signature(pool.front());
  seen.insert(base_sig);
  commit(label_variant(pool.front(), lib, params), base_sig);
  out.unique_variants = 1;

  // Determinism contract (DESIGN.md §2): every random draw happens on the
  // coordinator thread, in a schedule that depends only on (seed, batch_size,
  // pool state) — never on the thread count.  Workers evaluate pure functions
  // of coordinator-chosen inputs; results are committed in plan order.
  const int batch = params.resolved_batch_size();
  const int budget = params.num_variants * params.max_attempts_factor;
  int attempts = 0;

  struct Plan {
    std::size_t start = 0;  ///< pool index the walk step departs from
    Rng rng;                ///< private stream for the step (fork by task id)
  };
  std::vector<Plan> plans;
  struct Candidate {
    Aig g;
    std::uint64_t sig = 0;
  };

  while (static_cast<int>(out.unique_variants) < params.num_variants && attempts < budget) {
    // Phase 1 (coordinator): draw a speculative batch of walk plans.  Walk
    // step: restart at the base or continue from a recent pool member
    // (triangular bias toward newer variants for diversity in depth).
    const int want = std::min(batch, budget - attempts);
    plans.clear();
    for (int k = 0; k < want; ++k) {
      Plan p;
      if (rng.next_bool(params.restart_probability)) {
        p.start = 0;
      } else {
        const std::size_t n = pool.size();
        p.start = std::max(rng.next_below(n), rng.next_below(n));
      }
      p.rng = rng.fork(static_cast<std::uint64_t>(attempts + k));
      plans.push_back(p);
    }
    attempts += want;

    // Phase 2 (parallel): generate candidates + structural signatures.
    auto candidates = pool_threads.parallel_map<Candidate>(
        plans.size(), [&](std::size_t k) {
          Candidate c;
          c.g = random_variant_step(pool[plans[k].start], plans[k].rng);
          c.sig = variant_signature(c.g);
          return c;
        });

    // Phase 3 (coordinator): dedup in plan order, stopping at the target so
    // the committed set never depends on how far a batch overshoots.
    std::vector<std::size_t> fresh;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (static_cast<int>(out.unique_variants) + static_cast<int>(fresh.size()) >=
          params.num_variants) {
        break;
      }
      if (seen.insert(candidates[k].sig).second) fresh.push_back(k);
    }

    // Phase 4 (parallel): label only the survivors — mapping + STA dominate
    // the pipeline, so duplicates must not reach this phase.
    auto labels = pool_threads.parallel_map<LabeledRow>(
        fresh.size(), [&](std::size_t k) {
          return label_variant(candidates[fresh[k]].g, lib, params);
        });

    // Phase 5 (coordinator): commit rows and grow the pool, in plan order.
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      commit(labels[k], candidates[fresh[k]].sig);
      pool.push_back(std::move(candidates[fresh[k]].g));
      ++out.unique_variants;
    }
  }
  out.generation_seconds = timer.elapsed_s();
  return out;
}

GeneratedData load_or_generate(const Aig& base, const std::string& tag, const cell::Library& lib,
                               const DataGenParams& params,
                               const std::filesystem::path& cache_dir) {
  // The batch size is part of the deterministic schedule (it changes which
  // variants get generated), so it belongs in the cache key; thread count
  // does not (results are bit-identical at any thread count).  The "v4"
  // schema marker separates these caches from earlier generators' ("v2":
  // pre-batching; "v3": the exact-integer fanout statistics of the
  // incremental feature extractor shift fanout_mean/std by ulps; "v4":
  // rows carry their variant-signature dedup key as a CSV column).
  const std::string stem = tag + "_v4_n" + std::to_string(params.num_variants) + "_s" +
                           std::to_string(params.seed) + "_b" +
                           std::to_string(params.resolved_batch_size());
  const auto delay_path = cache_dir / (stem + "_delay.csv");
  const auto area_path = cache_dir / (stem + "_area.csv");
  auto delay = ml::Dataset::load(delay_path);
  auto area = ml::Dataset::load(area_path);
  if (delay.has_value() && area.has_value() && delay->num_rows() == area->num_rows() &&
      delay->num_rows() > 0) {
    GeneratedData out{std::move(*delay), std::move(*area), 0, 0.0};
    out.unique_variants = out.delay.num_rows();
    return out;
  }
  GeneratedData generated = generate_dataset(base, tag, lib, params);
  generated.delay.save(delay_path);
  generated.area.save(area_path);
  return generated;
}

}  // namespace aigml::flow
