#pragma once
// Graph-level feature extraction from an AIG (the paper's Table II).
//
// The features quantify the two sources of AIG-level/post-mapping-delay
// miscorrelation: (a) path-depth change during mapping — captured by the
// plain, fanout-weighted, and binary-weighted top-n PO depths — and
// (b) fanout/load effects — captured by global and critical-path fanout
// statistics.  num_of_paths approximates how many near-critical paths a PO
// has without enumerating them.
//
// Depth convention (paper Fig. 4): the depth of a PO counts the nodes
// between the PO and a PI, *including* the PI node and *excluding* the PO
// itself: depth(PI) = 1, depth(AND) = 1 + max(fanin depths).
//
// All 22 features are O(V + E) to extract — the whole point is that
// inference is dramatically cheaper than technology mapping + STA.  Inside
// the optimization hot loop they get cheaper still: IncrementalExtractor
// recomputes only the feature components whose supporting analysis sweeps a
// move invalidated, bit-identical to a from-scratch extract() (DESIGN.md §8).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"
#include "aig/dirty.hpp"

namespace aigml::features {

inline constexpr int kPathDepthN = 3;   ///< "n = 1, 2, 3 in experiments"
inline constexpr int kNumPathsN = 3;    ///< top-n per-PO path counts
inline constexpr int kNumFeatures = 2 + 3 * kPathDepthN + 4 + 4 + kNumPathsN;  // 22

using FeatureVector = std::array<double, kNumFeatures>;

/// Stable, ordered feature names (CSV headers, importance reports).
[[nodiscard]] const std::vector<std::string>& feature_names();

/// Index of a named feature; throws std::out_of_range when unknown.
[[nodiscard]] int feature_index(const std::string& name);

/// Extracts all Table II features (builds an aig::AnalysisCache internally —
/// one fused traversal instead of the historical five).
[[nodiscard]] FeatureVector extract(const aig::Aig& g);

/// Same, over a caller-provided cache (for callers that also need the raw
/// analyses, e.g. cost evaluators mixing features with structural metrics).
/// `cache` must be bound to `g` (full scope).
[[nodiscard]] FeatureVector extract(const aig::Aig& g, const aig::AnalysisCache& cache);

/// Extracts directly into a caller-provided row of a batch feature matrix
/// (serve::PredictService fans extraction out into one flat matrix and runs
/// a single predict_all pass).  out.size() must be kNumFeatures.
void extract_into(const aig::Aig& g, std::span<double> out);

namespace detail {

/// Exact streaming accumulator for the fanout statistics (features 11-18).
/// Fanout counts are integers, so sums and sums-of-squares are kept in
/// uint64 — modular integer arithmetic is associative and invertible, which
/// is what lets IncrementalExtractor add/remove individual contributions and
/// still reproduce the from-scratch result *bit-identically* (a Welford-style
/// float accumulator is insertion-order-dependent and cannot be reversed).
/// The derived statistics are computed from the integer state with one fixed
/// float expression each, so any path arriving at the same multiset of
/// fanouts yields the same doubles.
struct FanoutStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t sumsq = 0;
  std::uint32_t max = 0;

  void add(std::uint32_t v) noexcept {
    ++count;
    sum += v;
    sumsq += static_cast<std::uint64_t>(v) * v;
    if (v > max) max = v;
  }
  /// Reverses add(v).  The caller owns max-invalidation (see
  /// IncrementalExtractor): removing the current maximum requires a rescan.
  void remove(std::uint32_t v) noexcept {
    --count;
    sum -= v;
    sumsq -= static_cast<std::uint64_t>(v) * v;
  }

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Population standard deviation from the integer moments.
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double dmax() const noexcept { return count ? static_cast<double>(max) : 0.0; }
  [[nodiscard]] double dsum() const noexcept { return static_cast<double>(sum); }
};

}  // namespace detail

/// Delta feature extraction for the optimization hot path (DESIGN.md §8).
///
/// Protocol, mirroring aig::AnalysisCache's speculative updates:
///
///   bind(g, cache)              full extraction + accumulator seeding
///   update(g, cache, dirty)     after cache.update(g, dirty): recompute only
///                               the invalidated feature components —
///                               global fanout stats from the cache's net
///                               fanout changes, critical-path stats only if
///                               the reverse sweep re-ran, PO-indexed tops
///                               only if an output driver's values changed
///   commit() / rollback()       adopt / exactly undo the last update
///
/// Hard contract: the returned vector is bit-identical to
/// extract(g, fresh_cache) for the same graph, enforced per-move by
/// tests/test_incremental.cpp.  One update may be pending at a time; the
/// referenced cache must be the one the paired AnalysisCache call used.
class IncrementalExtractor {
 public:
  FeatureVector bind(const aig::Aig& g, const aig::AnalysisCache& cache);
  FeatureVector update(const aig::Aig& g, const aig::AnalysisCache& cache,
                       const aig::DirtyRegion& dirty);
  void commit();
  void rollback();

  /// Speculatively replaces the bound state with previously captured values
  /// (evaluation-memo restore; see opt::detail::FeatureContext).  Same
  /// pending semantics as update().
  FeatureVector adopt(const FeatureVector& features, const detail::FanoutStats& global);

  /// The global-fanout accumulator backing features 11-14 (captured by the
  /// evaluation memo alongside features(), fed back through adopt()).
  [[nodiscard]] const detail::FanoutStats& global_stats() const noexcept { return global_; }

  /// Features of the currently bound graph (last bind/update result).
  [[nodiscard]] const FeatureVector& features() const noexcept { return features_; }

  /// True iff the pending update produced a vector different from the
  /// pre-update one.  When false, a downstream consumer may reuse whatever
  /// it derived from the previous vector (e.g. MlCost skips GBDT inference)
  /// without breaking bit-identity — identical input, identical output.
  [[nodiscard]] bool last_update_changed() const noexcept {
    return pending_ && features_ != features_prev_;
  }

 private:
  bool bound_ = false;
  bool pending_ = false;
  detail::FanoutStats global_;
  FeatureVector features_{};
  detail::FanoutStats global_prev_;
  FeatureVector features_prev_{};
};

/// Feature groups for the ablation bench (drop-one-group retraining).
struct FeatureGroup {
  std::string name;
  std::vector<int> indices;
};
[[nodiscard]] const std::vector<FeatureGroup>& feature_groups();

}  // namespace aigml::features
