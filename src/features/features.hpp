#pragma once
// Graph-level feature extraction from an AIG (the paper's Table II).
//
// The features quantify the two sources of AIG-level/post-mapping-delay
// miscorrelation: (a) path-depth change during mapping — captured by the
// plain, fanout-weighted, and binary-weighted top-n PO depths — and
// (b) fanout/load effects — captured by global and critical-path fanout
// statistics.  num_of_paths approximates how many near-critical paths a PO
// has without enumerating them.
//
// Depth convention (paper Fig. 4): the depth of a PO counts the nodes
// between the PO and a PI, *including* the PI node and *excluding* the PO
// itself: depth(PI) = 1, depth(AND) = 1 + max(fanin depths).
//
// All 22 features are O(V + E) to extract — the whole point is that
// inference is dramatically cheaper than technology mapping + STA.

#include <array>
#include <span>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/analysis.hpp"

namespace aigml::features {

inline constexpr int kPathDepthN = 3;   ///< "n = 1, 2, 3 in experiments"
inline constexpr int kNumPathsN = 3;    ///< top-n per-PO path counts
inline constexpr int kNumFeatures = 2 + 3 * kPathDepthN + 4 + 4 + kNumPathsN;  // 22

using FeatureVector = std::array<double, kNumFeatures>;

/// Stable, ordered feature names (CSV headers, importance reports).
[[nodiscard]] const std::vector<std::string>& feature_names();

/// Index of a named feature; throws std::out_of_range when unknown.
[[nodiscard]] int feature_index(const std::string& name);

/// Extracts all Table II features (builds an aig::AnalysisCache internally —
/// one fused traversal instead of the historical five).
[[nodiscard]] FeatureVector extract(const aig::Aig& g);

/// Same, over a caller-provided cache (for callers that also need the raw
/// analyses, e.g. cost evaluators mixing features with structural metrics).
[[nodiscard]] FeatureVector extract(const aig::Aig& g, const aig::AnalysisCache& cache);

/// Extracts directly into a caller-provided row of a batch feature matrix
/// (serve::PredictService fans extraction out into one flat matrix and runs
/// a single predict_all pass).  out.size() must be kNumFeatures.
void extract_into(const aig::Aig& g, std::span<double> out);

/// Feature groups for the ablation bench (drop-one-group retraining).
struct FeatureGroup {
  std::string name;
  std::vector<int> indices;
};
[[nodiscard]] const std::vector<FeatureGroup>& feature_groups();

}  // namespace aigml::features
