#include "features/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "aig/analysis.hpp"
#include "util/stats.hpp"

namespace aigml::features {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "number_of_node",
      "aig_level",
      "aig_1st_long_path_depth",
      "aig_2nd_long_path_depth",
      "aig_3rd_long_path_depth",
      "aig_1st_weighted_path_depth",
      "aig_2nd_weighted_path_depth",
      "aig_3rd_weighted_path_depth",
      "aig_1st_binary_weighted_path_depth",
      "aig_2nd_binary_weighted_path_depth",
      "aig_3rd_binary_weighted_path_depth",
      "fanout_mean",
      "fanout_max",
      "fanout_std",
      "fanout_sum",
      "long_path_fanout_mean",
      "long_path_fanout_max",
      "long_path_fanout_std",
      "long_path_fanout_sum",
      "num_of_paths_1st",
      "num_of_paths_2nd",
      "num_of_paths_3rd",
  };
  static_assert(kNumFeatures == 22);
  return names;
}

int feature_index(const std::string& name) {
  const auto& names = feature_names();
  for (int i = 0; i < kNumFeatures; ++i) {
    if (names[static_cast<std::size_t>(i)] == name) return i;
  }
  throw std::out_of_range("unknown feature: " + name);
}

namespace {

/// Copies the `n` largest values (descending) into consecutive out slots,
/// padding with 0 when fewer values exist.
void top_n(std::vector<double> values, int n, FeatureVector& out, int base) {
  std::sort(values.begin(), values.end(), std::greater<>());
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(base + i)] =
        static_cast<std::size_t>(i) < values.size() ? values[static_cast<std::size_t>(i)] : 0.0;
  }
}

}  // namespace

FeatureVector extract(const Aig& g) { return extract(g, aig::AnalysisCache(g)); }

void extract_into(const Aig& g, std::span<double> out) {
  if (out.size() != kNumFeatures) {
    throw std::invalid_argument("features::extract_into: row width != kNumFeatures");
  }
  const FeatureVector f = extract(g);
  std::copy(f.begin(), f.end(), out.begin());
}

FeatureVector extract(const Aig& g, const aig::AnalysisCache& cache) {
  FeatureVector f{};
  const auto& fanout = cache.fanouts();
  const auto& depth = cache.depths();

  f[0] = static_cast<double>(g.num_ands());
  f[1] = static_cast<double>(cache.aig_level());

  // Per-PO plain, fanout-weighted, and binary-weighted depths (the weighted
  // variants come from the same fused sweep; see aig::AnalysisCache).
  const auto& wdepth = cache.fanout_weighted_depths();
  const auto& bdepth = cache.binary_weighted_depths();
  std::vector<double> po_depths, po_wdepths, po_bdepths;
  po_depths.reserve(g.num_outputs());
  po_wdepths.reserve(g.num_outputs());
  po_bdepths.reserve(g.num_outputs());
  for (const Lit o : g.outputs()) {
    const NodeId v = aig::lit_var(o);
    po_depths.push_back(static_cast<double>(depth[v]));
    po_wdepths.push_back(wdepth[v]);
    po_bdepths.push_back(bdepth[v]);
  }
  top_n(std::move(po_depths), kPathDepthN, f, 2);
  top_n(std::move(po_wdepths), kPathDepthN, f, 5);
  top_n(std::move(po_bdepths), kPathDepthN, f, 8);

  // Global fanout distribution over PI and AND nodes.
  RunningStats fanout_stats;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.is_constant(id)) continue;
    fanout_stats.add(static_cast<double>(fanout[id]));
  }
  f[11] = fanout_stats.mean();
  f[12] = fanout_stats.max();
  f[13] = fanout_stats.stddev();
  f[14] = fanout_stats.sum();

  // Fanout distribution restricted to nodes on a maximum-depth path
  // ("path depth == aig level" in Table II).
  RunningStats long_path_stats;
  for (const NodeId id : cache.critical_nodes()) {
    long_path_stats.add(static_cast<double>(fanout[id]));
  }
  f[15] = long_path_stats.mean();
  f[16] = long_path_stats.max();
  f[17] = long_path_stats.stddev();
  f[18] = long_path_stats.sum();

  // Per-PO path counts, log2-compressed: counts grow exponentially with
  // depth, and tree models only consume the ordering, so the monotone
  // transform loses nothing while keeping the CSV finite and readable.
  const auto& paths = cache.path_counts();
  std::vector<double> po_paths;
  po_paths.reserve(g.num_outputs());
  for (const Lit o : g.outputs()) {
    po_paths.push_back(std::log2(1.0 + paths[aig::lit_var(o)]));
  }
  top_n(std::move(po_paths), kNumPathsN, f, 19);
  return f;
}

const std::vector<FeatureGroup>& feature_groups() {
  static const std::vector<FeatureGroup> groups = {
      {"size", {0, 1}},
      {"long_path_depth", {2, 3, 4}},
      {"weighted_path_depth", {5, 6, 7}},
      {"binary_weighted_path_depth", {8, 9, 10}},
      {"fanout_distribution", {11, 12, 13, 14}},
      {"long_path_fanout", {15, 16, 17, 18}},
      {"num_of_paths", {19, 20, 21}},
  };
  return groups;
}

}  // namespace aigml::features
