#include "features/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "aig/analysis.hpp"

namespace aigml::features {

using aig::Aig;
using aig::Lit;
using aig::NodeId;

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "number_of_node",
      "aig_level",
      "aig_1st_long_path_depth",
      "aig_2nd_long_path_depth",
      "aig_3rd_long_path_depth",
      "aig_1st_weighted_path_depth",
      "aig_2nd_weighted_path_depth",
      "aig_3rd_weighted_path_depth",
      "aig_1st_binary_weighted_path_depth",
      "aig_2nd_binary_weighted_path_depth",
      "aig_3rd_binary_weighted_path_depth",
      "fanout_mean",
      "fanout_max",
      "fanout_std",
      "fanout_sum",
      "long_path_fanout_mean",
      "long_path_fanout_max",
      "long_path_fanout_std",
      "long_path_fanout_sum",
      "num_of_paths_1st",
      "num_of_paths_2nd",
      "num_of_paths_3rd",
  };
  static_assert(kNumFeatures == 22);
  return names;
}

int feature_index(const std::string& name) {
  const auto& names = feature_names();
  for (int i = 0; i < kNumFeatures; ++i) {
    if (names[static_cast<std::size_t>(i)] == name) return i;
  }
  throw std::out_of_range("unknown feature: " + name);
}

double detail::FanoutStats::stddev() const noexcept {
  // Mirrors RunningStats: zero for fewer than two samples.
  if (count < 2) return 0.0;
  const double m = mean();
  double var = static_cast<double>(sumsq) / static_cast<double>(count) - m * m;
  if (var < 0.0) var = 0.0;  // guard the float cancellation, never the math
  return std::sqrt(var);
}

namespace {

using detail::FanoutStats;

/// Copies the `n` largest values (descending) into consecutive out slots,
/// padding with 0 when fewer values exist.
void top_n(std::vector<double> values, int n, FeatureVector& out, int base) {
  std::sort(values.begin(), values.end(), std::greater<>());
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(base + i)] =
        static_cast<std::size_t>(i) < values.size() ? values[static_cast<std::size_t>(i)] : 0.0;
  }
}

/// Seeds the global fanout accumulator exactly as the from-scratch extract
/// consumes it: every non-constant node, ascending id.
FanoutStats seed_global_stats(const Aig& g, const aig::AnalysisCache& cache) {
  FanoutStats stats;
  const auto& fanout = cache.fanouts();
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.is_constant(id)) continue;
    stats.add(fanout[id]);
  }
  return stats;
}

/// Features 11-14: global fanout distribution over PI and AND nodes.
void fill_global_stats(const FanoutStats& stats, FeatureVector& f) {
  f[11] = stats.mean();
  f[12] = stats.dmax();
  f[13] = stats.stddev();
  f[14] = stats.dsum();
}

/// Features 15-18: fanout distribution restricted to nodes on a
/// maximum-depth path ("path depth == aig level" in Table II).
void fill_critical_stats(const aig::AnalysisCache& cache, FeatureVector& f) {
  FanoutStats stats;
  const auto& fanout = cache.fanouts();
  for (const NodeId id : cache.critical_nodes()) stats.add(fanout[id]);
  f[15] = stats.mean();
  f[16] = stats.dmax();
  f[17] = stats.stddev();
  f[18] = stats.dsum();
}

/// PO-indexed features: plain/weighted/binary-weighted top-n depths (2-10)
/// and log2-compressed top-n path counts (19-21).  Path counts grow
/// exponentially with depth, and tree models only consume the ordering, so
/// the monotone transform loses nothing while keeping the CSV finite and
/// readable.
void fill_po_features(const Aig& g, const aig::AnalysisCache& cache, FeatureVector& f) {
  const auto& depth = cache.depths();
  const auto& wdepth = cache.fanout_weighted_depths();
  const auto& bdepth = cache.binary_weighted_depths();
  const auto& paths = cache.path_counts();
  std::vector<double> po_depths, po_wdepths, po_bdepths, po_paths;
  po_depths.reserve(g.num_outputs());
  po_wdepths.reserve(g.num_outputs());
  po_bdepths.reserve(g.num_outputs());
  po_paths.reserve(g.num_outputs());
  for (const Lit o : g.outputs()) {
    const NodeId v = aig::lit_var(o);
    po_depths.push_back(static_cast<double>(depth[v]));
    po_wdepths.push_back(wdepth[v]);
    po_bdepths.push_back(bdepth[v]);
    po_paths.push_back(std::log2(1.0 + paths[v]));
  }
  top_n(std::move(po_depths), kPathDepthN, f, 2);
  top_n(std::move(po_wdepths), kPathDepthN, f, 5);
  top_n(std::move(po_bdepths), kPathDepthN, f, 8);
  top_n(std::move(po_paths), kNumPathsN, f, 19);
}

}  // namespace

FeatureVector extract(const Aig& g) { return extract(g, aig::AnalysisCache(g)); }

void extract_into(const Aig& g, std::span<double> out) {
  if (out.size() != kNumFeatures) {
    throw std::invalid_argument("features::extract_into: row width != kNumFeatures");
  }
  const FeatureVector f = extract(g);
  std::copy(f.begin(), f.end(), out.begin());
}

FeatureVector extract(const Aig& g, const aig::AnalysisCache& cache) {
  FeatureVector f{};
  f[0] = static_cast<double>(g.num_ands());
  f[1] = static_cast<double>(cache.aig_level());
  fill_po_features(g, cache, f);
  fill_global_stats(seed_global_stats(g, cache), f);
  fill_critical_stats(cache, f);
  return f;
}

// ---- IncrementalExtractor ---------------------------------------------------

FeatureVector IncrementalExtractor::bind(const Aig& g, const aig::AnalysisCache& cache) {
  global_ = seed_global_stats(g, cache);
  features_ = extract(g, cache);
  bound_ = true;
  pending_ = false;
  return features_;
}

FeatureVector IncrementalExtractor::update(const Aig& g, const aig::AnalysisCache& cache,
                                           const aig::DirtyRegion& dirty) {
  if (!bound_) throw std::logic_error("IncrementalExtractor::update: bind() first");
  if (pending_) throw std::logic_error("IncrementalExtractor::update: an update is already pending");
  global_prev_ = global_;
  features_prev_ = features_;
  pending_ = true;

  if (cache.last_update_full()) {
    // The cache fell back to a from-scratch rebuild; mirror it.
    global_ = seed_global_stats(g, cache);
    features_ = extract(g, cache);
    return features_;
  }

  const auto& fanout = cache.fanouts();
  const std::size_t before_n = cache.last_before_num_nodes();
  const std::size_t new_n = g.num_nodes();

  // Global fanout stats: reverse/apply the net per-node contributions the
  // cache recorded.  Integer accumulators make this order-independent and
  // exactly equal to re-seeding from scratch (see detail::FanoutStats).
  const auto& changes = cache.last_fanout_changes();
  if (!changes.empty() || new_n != before_n) {
    std::uint32_t max_removed = 0;
    for (const auto& c : changes) {
      if (c.id == 0) continue;  // the constant node is excluded from stats
      if (c.id < before_n) {
        global_.remove(c.before);
        max_removed = std::max(max_removed, c.before);
      }
      if (c.id < new_n) global_.add(c.after);
    }
    // Nodes added/removed with zero fanout never appear in the change list;
    // they carry no sum weight, but they do count.
    global_.count = new_n - 1;
    if (max_removed >= global_.max) {
      // The maximum's witness may have been removed or decreased — rescan.
      global_.max = 0;
      for (NodeId id = 1; id < new_n; ++id) global_.max = std::max(global_.max, fanout[id]);
    }
    fill_global_stats(global_, features_);
  }

  // Critical-path stats change exactly when the reverse sweep re-ran.
  if (cache.last_reverse_ran()) fill_critical_stats(cache, features_);

  // PO-indexed tops change only when an output was redirected or a driver's
  // forward values moved.
  bool po_dirty = dirty.outputs_changed;
  if (!po_dirty) {
    for (const Lit o : g.outputs()) {
      if (cache.value_changed(aig::lit_var(o))) {
        po_dirty = true;
        break;
      }
    }
  }
  if (po_dirty) fill_po_features(g, cache, features_);

  features_[0] = static_cast<double>(g.num_ands());
  features_[1] = static_cast<double>(cache.aig_level());
  return features_;
}

FeatureVector IncrementalExtractor::adopt(const FeatureVector& features,
                                          const detail::FanoutStats& global) {
  if (!bound_) throw std::logic_error("IncrementalExtractor::adopt: bind() first");
  if (pending_) throw std::logic_error("IncrementalExtractor::adopt: an update is already pending");
  global_prev_ = global_;
  features_prev_ = features_;
  global_ = global;
  features_ = features;
  pending_ = true;
  return features_;
}

void IncrementalExtractor::commit() {
  if (!pending_) throw std::logic_error("IncrementalExtractor::commit: no update pending");
  pending_ = false;
}

void IncrementalExtractor::rollback() {
  if (!pending_) throw std::logic_error("IncrementalExtractor::rollback: no update pending");
  global_ = global_prev_;
  features_ = features_prev_;
  pending_ = false;
}

const std::vector<FeatureGroup>& feature_groups() {
  static const std::vector<FeatureGroup> groups = {
      {"size", {0, 1}},
      {"long_path_depth", {2, 3, 4}},
      {"weighted_path_depth", {5, 6, 7}},
      {"binary_weighted_path_depth", {8, 9, 10}},
      {"fanout_distribution", {11, 12, 13, 14}},
      {"long_path_fanout", {15, 16, 17, 18}},
      {"num_of_paths", {19, 20, 21}},
  };
  return groups;
}

}  // namespace aigml::features
