#include "serve/protocol.hpp"

#include <cstdio>
#include <stdexcept>

namespace aigml::serve {

RequestLine split_request_line(const std::string& line) {
  RequestLine out;
  const std::size_t c_end = line.find(' ');
  out.command = line.substr(0, c_end);
  if (c_end == std::string::npos) return out;
  const std::size_t a_begin = line.find_first_not_of(' ', c_end);
  if (a_begin == std::string::npos) return out;
  const std::size_t a_end = line.find(' ', a_begin);
  out.arg = line.substr(a_begin, a_end == std::string::npos ? a_end : a_end - a_begin);
  if (a_end == std::string::npos) return out;
  const std::size_t p_begin = line.find_first_not_of(' ', a_end);
  if (p_begin != std::string::npos) out.payload = line.substr(p_begin);
  return out;
}

std::string escape_line(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_line(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) throw std::runtime_error("unescape_line: dangling backslash");
    switch (text[++i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case '\\': out += '\\'; break;
      default:
        throw std::runtime_error(std::string("unescape_line: unknown escape '\\") + text[i] + "'");
    }
  }
  return out;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string sanitize_message(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  for (const char c : message) {
    out += (c == '\n' || c == '\r') ? ' ' : c;
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace aigml::serve
