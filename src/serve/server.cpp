#include "serve/server.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "aig/aiger.hpp"
#include "serve/protocol.hpp"
#include "serve/stats_json.hpp"
#include "util/fault.hpp"

namespace aigml::serve {

PredictServer::PredictServer(ModelRegistry& registry, PredictService& service,
                             ServerParams params)
    : registry_(registry), service_(service), params_(std::move(params)) {}

PredictServer::~PredictServer() { stop(); }

void PredictServer::start() {
  listener_ = std::make_unique<TcpListener>(params_.host, params_.port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t PredictServer::port() const {
  if (listener_ == nullptr) throw std::logic_error("PredictServer::port: not started");
  return listener_->port();
}

void PredictServer::wait() {
  const std::lock_guard lock(join_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void PredictServer::stop() {
  {
    const std::lock_guard lock(conn_mutex_);
    stopping_ = true;
  }
  if (listener_ != nullptr) listener_->close();
  wait();
  // The accept loop is down — no new connections can be registered.
  std::vector<Connection> connections;
  {
    const std::lock_guard lock(conn_mutex_);
    connections.swap(connections_);
  }
  for (Connection& conn : connections) {
    conn.socket->shutdown_both();  // wakes a handler blocked in read
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void PredictServer::drain() {
  {
    const std::lock_guard lock(conn_mutex_);
    stopping_ = true;
  }
  if (listener_ != nullptr) listener_->close();
  wait();
  std::vector<Connection> connections;
  {
    const std::lock_guard lock(conn_mutex_);
    connections.swap(connections_);
  }
  // Half-close only the read side: each handler drains the requests already
  // in its buffer, answers them, then reads EOF and exits — in contrast to
  // stop(), which cuts responses off mid-flight.
  for (Connection& conn : connections) {
    conn.socket->shutdown_read();
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
  }
}

void PredictServer::accept_loop() {
  while (true) {
    Socket accepted = listener_->accept();
    if (!accepted.valid()) return;  // listener closed by stop()
    auto socket = std::make_shared<Socket>(std::move(accepted));
    auto done = std::make_shared<std::atomic<bool>>(false);
    bool shed = false;
    std::size_t live = 0;
    {
      const std::lock_guard lock(conn_mutex_);
      if (stopping_) return;  // raced with stop(): drop the connection
      // Reap finished handlers so a long-lived server does not accumulate
      // one joinable thread per past connection.
      std::erase_if(connections_, [](Connection& c) {
        if (!c.done->load(std::memory_order_acquire)) return false;
        c.thread.join();
        return true;
      });
      live = connections_.size();
      if (params_.max_connections > 0 && live >= params_.max_connections) {
        shed = true;
      } else {
        Connection conn;
        conn.socket = socket;
        conn.done = done;
        conn.thread = std::thread([this, socket, done] {
          handle_connection(socket);
          done->store(true, std::memory_order_release);
        });
        connections_.push_back(std::move(conn));
      }
    }
    if (shed) {
      // Shed with an explicit reply, off the lock: an overloaded server that
      // silently drops connections is indistinguishable from a crashed one.
      // The send is bounded so one wedged client cannot stall the accept
      // loop; the socket closes when `socket` leaves scope.
      socket->set_write_timeout_ms(1000);
      try {
        socket->send_all("BUSY connections=" + std::to_string(live) + "\n");
      } catch (const std::exception&) {
      }
    }
  }
}

void PredictServer::handle_connection(std::shared_ptr<Socket> socket) {
  try {
    LineReader reader(*socket, params_.max_line_bytes);
    reader.set_mid_line_timeout_ms(params_.mid_line_timeout_ms);
    std::string line;
    while (reader.read_line(line)) {
      if (line.empty()) continue;
      const std::string response = handle_request(line);
      if (fault::fire(fault::Site::kServerKill)) {
        // Chaos site: vanish instead of replying — the client sees exactly
        // what a server killed mid-request looks like.
        socket->shutdown_both();
        return;
      }
      socket->send_all(response + "\n");
      if (line.substr(0, line.find(' ')) == "QUIT") break;
    }
  } catch (const std::length_error& e) {
    // Oversized request (max_line_bytes): tell the client why before
    // dropping — it is a protocol violation, not a server fault.
    try {
      socket->set_write_timeout_ms(1000);
      socket->send_all("ERR " + sanitize_message(e.what()) + "\n");
    } catch (const std::exception&) {
    }
  } catch (const std::exception&) {
    // Connection-level failure (peer reset, mid-request deadline, send on
    // closed socket): drop the connection; the service and other
    // connections are unaffected.
  }
  // Hang up on every exit path: the Connection entry keeps the Socket alive
  // until it is reaped, so without this the peer would not see EOF until the
  // next accept or stop().
  socket->shutdown_both();
}

std::string PredictServer::handle_request(const std::string& line) {
  const RequestLine request = split_request_line(line);
  try {
    if (request.command == "PING") return "OK pong";
    if (request.command == "QUIT") return "OK bye";

    if (request.command == "PREDICT") {
      if (request.arg.empty() || request.payload.empty()) {
        return "ERR usage: PREDICT <model> <escaped-aag>";
      }
      const aig::Aig g = aig::from_aiger_string(unescape_line(request.payload));
      return "OK " + format_double(service_.predict(request.arg, g));
    }

    if (request.command == "FEATURES") {
      if (request.arg.empty() || request.payload.empty()) {
        return "ERR usage: FEATURES <model> <f0> <f1> ...";
      }
      std::istringstream in(request.payload);
      std::vector<double> row;
      double v = 0.0;
      while (in >> v) row.push_back(v);
      if (!in.eof()) return "ERR FEATURES: non-numeric feature value";
      return "OK " +
             format_double(service_.submit_features(request.arg, std::move(row)).get());
    }

    if (request.command == "RELOAD") {
      const ReloadReport report = registry_.reload();
      std::string response = "OK loaded=" + std::to_string(report.loaded) +
                             " unchanged=" + std::to_string(report.unchanged) +
                             " errors=" + std::to_string(report.errors.size());
      for (const std::string& e : report.errors) response += " [" + sanitize_message(e) + "]";
      return response;
    }

    if (request.command == "STATS") {
      return "OK " + render_stats_json(registry_, service_.stats());
    }

    if (request.command == "FAMILY") {
      if (request.arg.empty()) return "ERR usage: FAMILY <model>";
      const auto snapshot = registry_.try_get(request.arg);
      if (snapshot == nullptr) {
        return "ERR unknown model '" + sanitize_message(request.arg) + "'";
      }
      return std::string("OK ") + ml::to_string(snapshot->family());
    }

    return "ERR unknown command '" + sanitize_message(request.command) + "'";
  } catch (const std::exception& e) {
    return "ERR " + sanitize_message(e.what());
  }
}

}  // namespace aigml::serve
