#pragma once
// Wire protocol shared by serve::PredictServer and serve::Client.
//
// Newline-delimited text, one request line -> one response line:
//
//   request  := "PREDICT" SP model SP escaped-aag
//             | "FEATURES" SP model SP double*      (model-width doubles)
//             | "RELOAD" | "STATS" | "PING" | "QUIT"
//   response := "OK" [SP payload] | "ERR" SP message
//
// Multi-line AIGER documents travel inside one protocol line via the
// escape_line() encoding ('\n' -> "\\n", '\r' -> "\\r", '\\' -> "\\\\").
// Numeric payloads are printed with round-trip-safe precision
// (format_double), so a value that crosses the wire parses back to the
// exact same double the server computed — the serve smoke test compares it
// bit-for-bit against a local GbdtModel::predict.

#include <string>
#include <string_view>

namespace aigml::serve {

/// "CMD arg rest..." split into its three parts; missing parts are empty.
/// Shared by both servers so the text dialect cannot drift between them.
struct RequestLine {
  std::string command;
  std::string arg;
  std::string payload;
};
[[nodiscard]] RequestLine split_request_line(const std::string& line);

/// Folds a multi-line document onto one protocol line.
[[nodiscard]] std::string escape_line(std::string_view text);
/// Inverse of escape_line; throws std::runtime_error on a dangling or
/// unknown escape.
[[nodiscard]] std::string unescape_line(std::string_view text);

/// Shortest round-trip-safe decimal rendering ("%.17g").
[[nodiscard]] std::string format_double(double value);

/// Replaces control characters so an arbitrary error message stays a single
/// protocol line.
[[nodiscard]] std::string sanitize_message(std::string_view message);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters) — STATS model names come from raw file
/// stems and must not be able to break the one-line JSON document.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace aigml::serve
