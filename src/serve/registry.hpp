#pragma once
// ModelRegistry — named, versioned model snapshots with atomic hot-swap,
// family-agnostic (ml::Model — gbdt forests and gnn graph models serve from
// the same registry, DESIGN.md §14).
//
// The registry owns one immutable snapshot per model name.  get() hands out
// std::shared_ptr<const ml::Model> copies, so a long-lived client (an open
// optimization loop, an in-flight batch) keeps predicting against the
// snapshot it started with even while reload() swaps in a newer version —
// no client ever observes a half-loaded model, and old snapshots stay valid
// until their last holder drops them.
//
// Disk layout: every `<name>.gbdt` (text), `<name>.gbdt2` (binary mmap
// container, DESIGN.md §13), or `<name>.gnn` (GNN container, DESIGN.md §14)
// directly inside the model directory is a model named `<name>`; when
// siblings share a stem the precedence is .gbdt2 > .gbdt > .gnn (the mmap
// container wins, and a tree family shadows a same-named gnn so a stray
// checkpoint cannot silently change a model's family).  reload() re-reads
// the directory; a model that fails to parse keeps its previous snapshot
// (the failure is reported, not propagated into serving).  Versions count
// successful (re)loads per name, starting at 1.  A v2 snapshot keeps its
// mmap alive for as long as any client holds it, so hot-swapping the file
// under a served model is safe.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ml/gbdt.hpp"
#include "ml/gnn.hpp"
#include "ml/model.hpp"

namespace aigml::opt {
class MlCost;
}

namespace aigml::serve {

struct ModelInfo {
  std::string name;
  std::string family;              ///< "gbdt" | "gnn" (ml::to_string(model->family()))
  std::uint64_t version = 0;       ///< bumps on every successful (re)load / install
  std::size_t num_trees = 0;       ///< 0 for non-tree families
  std::size_t num_features = 0;    ///< flat-row width (gbdt) or per-node width (gnn)
  std::string path;                ///< empty for install()ed in-memory models
  std::string format;              ///< "v2" (mmap) | "text" | "gnn1" | "memory"
  double load_seconds = 0.0;       ///< wall time of the last (re)load; 0 for installs
};

struct ReloadReport {
  std::size_t loaded = 0;                   ///< models (re)loaded this pass
  std::size_t unchanged = 0;                ///< files whose mtime+size were unchanged
  std::vector<std::string> errors;          ///< per-file load failures ("file: what()")
};

class ModelRegistry {
 public:
  /// Empty registry with no backing directory (in-process use: install()).
  ModelRegistry() = default;
  /// Registry backed by `dir`; performs an initial reload().  Throws when
  /// the directory does not exist or the initial scan loads zero models and
  /// encounters errors.
  explicit ModelRegistry(std::filesystem::path dir);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers / replaces an in-memory model under `name` (atomic swap).
  void install(const std::string& name, ml::GbdtModel model);
  void install(const std::string& name, ml::GnnModel model);

  /// Current snapshot for `name`; throws std::out_of_range when unknown.
  [[nodiscard]] std::shared_ptr<const ml::Model> get(const std::string& name) const;
  /// Like get() but returns nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const ml::Model> try_get(const std::string& name) const;

  /// Re-scans the model directory, loading new and changed files.  Parsing
  /// happens outside the registry lock; each successfully parsed model is
  /// swapped in atomically.  No-op (besides the scan) without a directory.
  ReloadReport reload();

  [[nodiscard]] std::vector<ModelInfo> list() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Registry-wide swap counter: bumps once per successful install() and per
  /// model (re)loaded by reload().  Lock-free to read, so a hot evaluation
  /// loop (serve::LiveMlCost) can poll it every move and refresh its pinned
  /// snapshots only when something actually swapped — the "generation bump"
  /// the active-learning loop rides on.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }
  /// Per-model version (see ModelInfo::version); 0 when `name` is unknown.
  [[nodiscard]] std::uint64_t version(const std::string& name) const;

 private:
  struct Entry {
    std::shared_ptr<const ml::Model> model;
    std::uint64_t version = 0;
    std::string path;
    std::int64_t file_size = -1;    ///< -1 for in-memory installs
    std::int64_t file_mtime_ns = 0;
    std::string format = "memory";  ///< ModelInfo::format
    double load_seconds = 0.0;
  };

  void install_snapshot(const std::string& name, std::shared_ptr<const ml::Model> snapshot);

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::atomic<std::uint64_t> generation_{0};
};

/// opt::MlCost over the registry's *current* delay/area snapshots — the
/// in-process path by which optimization loops (SA, greedy) share the same
/// hot-reloadable models the server hands out.  The evaluator pins the
/// snapshots it was built with; build a fresh one to pick up a reload.
[[nodiscard]] opt::MlCost make_ml_cost(const ModelRegistry& registry,
                                       const std::string& delay_model,
                                       const std::string& area_model);

}  // namespace aigml::serve
