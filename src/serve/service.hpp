#pragma once
// PredictService — micro-batching inference engine over a ModelRegistry.
//
// Concurrent callers submit() AIGs (or pre-extracted feature rows) and get
// std::future<double>s back.  A dedicated drainer thread coalesces pending
// requests into batches: after the first request arrives it waits up to
// `batch_wait_us` for the queue to fill (bounded by `max_batch`), then
// groups the batch by model.  A gbdt group fans feature extraction out over
// the shared util::ThreadPool into one flat row-major matrix and answers
// with a single predict_all pass over the flat DFS forest; a gnn group
// (Model::needs_graph()) answers with one batched predict_graphs pass over
// the concatenated batch.  Batched results are bit-identical to
// one-at-a-time predict() for both families — batching changes scheduling,
// never values (tests/test_serve.cpp, tests/test_model_iface.cpp).
//
// The registry snapshot for a batch is taken once per model group, so a
// concurrent hot-swap (reload/install) flips predictions between two valid
// model versions at a batch boundary — never mid-batch and never torn.
//
// Failure model: per-request errors (unknown model, malformed AIG, feature
// width mismatch) surface as exceptions on that request's future; they
// never affect neighbouring requests in the same batch.
//
// Two submission flavours share the queue:
//   * future-based submit()/submit_features() — the original blocking API,
//     which rides the coalescing window above;
//   * callback-based submit_async()/submit_features_async() with
//     `immediate = true` — the continuous-batching path used by
//     serve::BatchServer.  Immediate requests collapse the coalescing wait:
//     while the drainer is busy with the current batch new arrivals pile up
//     in the queue, and the moment it finishes it takes everything pending
//     as the next batch.  Batches form from service occupancy instead of a
//     timer, so an idle service answers a lone request with no added
//     latency while a loaded one still gets wide predict_all batches.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig.hpp"
#include "serve/registry.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace aigml::serve {

struct ServiceParams {
  int max_batch = 64;       ///< most requests coalesced into one batch
  int batch_wait_us = 200;  ///< coalescing window after the first request
  int num_threads = 0;      ///< extraction pool width; 0 = default_num_threads()
};

struct ServiceStats {
  /// Batch sizes bucketed by log2: 1, 2-3, 4-7, ... 64-127, 128+.  Shows at
  /// a glance whether continuous batching is actually coalescing load.
  static constexpr std::size_t kBatchHistBuckets = 8;

  std::uint64_t requests = 0;   ///< submitted
  std::uint64_t completed = 0;  ///< futures fulfilled with a value
  std::uint64_t failed = 0;     ///< futures fulfilled with an exception
  std::uint64_t batches = 0;    ///< drain passes executed
  std::uint64_t max_batch = 0;  ///< largest batch observed
  double busy_seconds = 0.0;    ///< drainer time spent extracting + predicting
  /// Enqueue→fulfillment service time per request (success and failure
  /// alike), recorded under the same stats-before-fulfillment rule as the
  /// counters: once a caller observes its result, the histogram includes it.
  LatencyHistogram latency;
  std::array<std::uint64_t, kBatchHistBuckets> batch_hist{};
  /// Successful predictions answered per model name — paired with the
  /// registry's per-model version in the STATS reply, this is how an
  /// operator (or the `aigml learn` daemon) sees which model a retrain
  /// actually refreshed and whether traffic moved onto it.
  std::map<std::string, std::uint64_t> predictions;
};

class PredictService {
 public:
  /// Completion callback for the async API.  Exactly one of the two cases
  /// fires, on the drainer thread (or inline on the submitting thread when
  /// the service is already stopping): (value, nullptr) on success,
  /// (unspecified, eptr) on failure.
  using CompletionFn = std::function<void(double, std::exception_ptr)>;

  explicit PredictService(ModelRegistry& registry, ServiceParams params = {});
  /// Completes every queued request before returning (late submits fail).
  ~PredictService();

  PredictService(const PredictService&) = delete;
  PredictService& operator=(const PredictService&) = delete;

  /// Queues delay prediction of `graph` under `model`.
  [[nodiscard]] std::future<double> submit(std::string model, aig::Aig graph);
  /// Same, for a pre-extracted feature row (width must match the model).
  [[nodiscard]] std::future<double> submit_features(std::string model,
                                                    std::vector<double> features);

  /// Callback flavours.  Never throw: a submit against a stopping service
  /// delivers the error through `done` on the calling thread.  `immediate`
  /// skips the coalescing window (continuous batching).
  void submit_async(std::string model, aig::Aig graph, CompletionFn done,
                    bool immediate = true);
  void submit_features_async(std::string model, std::vector<double> features,
                             CompletionFn done, bool immediate = true);

  /// Blocking conveniences over submit().
  [[nodiscard]] double predict(const std::string& model, const aig::Aig& graph);
  /// Submits all graphs before waiting on any — the batch path.
  [[nodiscard]] std::vector<double> predict_batch(const std::string& model,
                                                  std::span<const aig::Aig> graphs);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceParams& params() const noexcept { return params_; }

 private:
  struct Request {
    std::string model;
    std::optional<aig::Aig> graph;  ///< extraction path when set ...
    std::vector<double> features;   ///< ... else a pre-extracted row
    std::promise<double> promise;   ///< fulfilled when `done` is empty ...
    CompletionFn done;              ///< ... else invoked instead
    bool immediate = false;
    std::chrono::steady_clock::time_point enqueued_at{};
  };

  [[nodiscard]] std::future<double> enqueue(Request request);
  void enqueue_async(Request request);
  void drainer_loop();
  void process_batch(std::vector<Request>& batch);
  static void fulfill_value(Request& request, double value);
  static void fulfill_error(Request& request, std::exception_ptr error);

  ModelRegistry& registry_;
  const ServiceParams params_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  std::size_t immediate_pending_ = 0;  ///< queued requests that skip the window
  bool stopping_ = false;
  ServiceStats stats_;

  std::thread drainer_;  ///< last member: joins before the rest tears down
};

}  // namespace aigml::serve
