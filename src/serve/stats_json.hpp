#pragma once
// One STATS JSON renderer for both servers (DESIGN.md §11).  The legacy
// PredictServer and the event-loop BatchServer answer STATS with the same
// document so operators and tests can point one parser at either; the
// BatchServer additionally passes a SlotStats snapshot, which shows up as a
// "slots" object.  Single line, no trailing newline — both protocols wrap
// it themselves (text: "OK <json>\n", binary: a TEXT frame).

#include <string>

#include "net/slots.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace aigml::serve {

/// Renders the STATS payload: registry generation + per-model info joined
/// with per-model prediction counts, service counters, the service-latency
/// percentiles/histogram, and the batch-size histogram.  `slots` adds the
/// BatchServer's occupancy block when non-null.
[[nodiscard]] std::string render_stats_json(const ModelRegistry& registry,
                                            const ServiceStats& stats,
                                            const net::SlotStats* slots = nullptr);

}  // namespace aigml::serve
