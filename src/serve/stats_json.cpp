#include "serve/stats_json.hpp"

#include <sstream>

#include "serve/protocol.hpp"

namespace aigml::serve {

std::string render_stats_json(const ModelRegistry& registry, const ServiceStats& stats,
                              const net::SlotStats* slots) {
  std::ostringstream out;
  // "version" is the per-model reload generation (bumps on every RELOAD that
  // picked up a changed file / every install), "predictions" the successful
  // answers served by that model name; "generation" is the registry-wide
  // swap counter LiveMlCost polls.
  out << "{\"generation\":" << registry.generation() << ",\"models\":[";
  bool first = true;
  for (const ModelInfo& info : registry.list()) {
    const auto it = stats.predictions.find(info.name);
    const std::uint64_t predictions = it == stats.predictions.end() ? 0 : it->second;
    // "format" tells the operator which loader answered: "v2" (mmap
    // container), "text" (a registry that silently fell back to re-parsing
    // .gbdt), or "memory" (install()ed); "load_ms" is that load's wall time.
    out << (first ? "" : ",") << "{\"name\":\"" << json_escape(info.name)
        << "\",\"family\":\"" << json_escape(info.family) << "\",\"version\":" << info.version
        << ",\"trees\":" << info.num_trees
        << ",\"features\":" << info.num_features << ",\"format\":\"" << json_escape(info.format)
        << "\",\"load_ms\":" << format_double(info.load_seconds * 1e3)
        << ",\"predictions\":" << predictions << "}";
    first = false;
  }
  out << "],\"requests\":" << stats.requests << ",\"completed\":" << stats.completed
      << ",\"failed\":" << stats.failed << ",\"batches\":" << stats.batches
      << ",\"max_batch\":" << stats.max_batch << ",\"busy_seconds\":" << stats.busy_seconds;

  out << ",\"latency_us\":{\"count\":" << stats.latency.count()
      << ",\"mean\":" << format_double(stats.latency.mean_us())
      << ",\"p50\":" << format_double(stats.latency.percentile_us(50))
      << ",\"p90\":" << format_double(stats.latency.percentile_us(90))
      << ",\"p99\":" << format_double(stats.latency.percentile_us(99))
      << ",\"max\":" << format_double(stats.latency.max_us()) << ",\"buckets\":[";
  for (std::size_t i = 0; i < stats.latency.buckets().size(); ++i) {
    out << (i == 0 ? "" : ",") << stats.latency.buckets()[i];
  }
  out << "]}";

  out << ",\"batch_hist\":[";
  for (std::size_t i = 0; i < stats.batch_hist.size(); ++i) {
    out << (i == 0 ? "" : ",") << stats.batch_hist[i];
  }
  out << "]";

  if (slots != nullptr) {
    out << ",\"slots\":{\"total\":" << slots->total << ",\"busy\":" << slots->busy
        << ",\"peak_busy\":" << slots->peak_busy << ",\"admitted\":" << slots->admitted
        << ",\"completed\":" << slots->completed << ",\"shed_conn_cap\":" << slots->shed_conn_cap
        << ",\"parked_waits\":" << slots->parked_waits << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace aigml::serve
