#include "serve/batch_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "aig/aiger.hpp"
#include "serve/protocol.hpp"
#include "serve/stats_json.hpp"
#include "util/fault.hpp"

namespace aigml::serve {

bool BatchServer::Router::post(std::function<void()> fn) {
  const std::lock_guard lock(mutex);
  if (loop == nullptr) return false;
  loop->post(std::move(fn));
  return true;
}

BatchServer::BatchServer(ModelRegistry& registry, PredictService& service,
                         BatchServerParams params)
    : registry_(registry),
      service_(service),
      params_(std::move(params)),
      loop_(params_.backend),
      sched_(params_.slots),
      router_(std::make_shared<Router>()) {
  router_->loop = &loop_;
}

BatchServer::~BatchServer() { stop(); }

void BatchServer::start() {
  listener_ = std::make_unique<TcpListener>(params_.host, params_.port);
  // The reactor accepts; the fd must never block it.
  const int fd = listener_->fd();
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("BatchServer: listener O_NONBLOCK failed");
  }
  loop_.add(fd, /*want_read=*/true, /*want_write=*/false, this);
  started_ = true;
  loop_thread_ = std::thread([this] { loop_.run(); });
}

std::uint16_t BatchServer::port() const {
  if (listener_ == nullptr) throw std::logic_error("BatchServer::port: not started");
  return listener_->port();
}

void BatchServer::wait() {
  const std::lock_guard lock(join_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void BatchServer::stop() {
  const std::lock_guard lifecycle(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  loop_.stop();
  wait();
  {
    // Completions that arrive from here on are dropped at the router.
    const std::lock_guard lock(router_->mutex);
    router_->loop = nullptr;
  }
  // The loop is down: this thread is the only one touching conns now.
  for (auto& [id, conn] : conns_) conn->sock->close();
  conns_.clear();
  graveyard_.clear();
  if (listener_ != nullptr) listener_->close();
}

void BatchServer::drain() {
  if (!started_) return;
  router_->post([this] {
    if (draining_) return;
    draining_ = true;
    if (listener_ != nullptr) {
      loop_.remove(listener_->fd());
      listener_->close();
    }
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& c = *it->second;
      // No new requests: undecoded input is discarded, in-flight work is
      // completed and flushed, then maybe_close() hangs up.
      c.close_after_flush = true;
      maybe_close(c);
    }
    maybe_finish_drain();
  });
  wait();
  stop();  // releases the remaining resources; the loop has already exited
}

net::SlotStats BatchServer::slot_stats() const {
  auto promise = std::make_shared<std::promise<net::SlotStats>>();
  auto future = promise->get_future();
  auto* self = const_cast<BatchServer*>(this);
  if (!self->router_->post([self, promise] { promise->set_value(self->sched_.stats()); })) {
    return sched_.stats();  // loop stopped: reads race nothing
  }
  if (future.wait_for(std::chrono::seconds(5)) != std::future_status::ready) {
    return sched_.stats();  // loop died mid-request; best effort
  }
  return future.get();
}

// ---- accept -----------------------------------------------------------------

void BatchServer::on_readable() {
  while (true) {
    const int fd = ::accept(listener_->fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient error: wait for the next edge
    }
    if (fault::fire(fault::Site::kNetAccept)) {
      // Chaos: the connection vanishes right after the TCP handshake — the
      // client sees an immediate EOF, exactly like an acceptor crash.
      ::close(fd);
      continue;
    }
    if (params_.max_connections > 0 && conns_.size() >= params_.max_connections) {
      // Shed loudly, like the legacy server: a silent drop is
      // indistinguishable from a crash.  Best-effort, non-blocking.
      const std::string line = "BUSY connections=" + std::to_string(conns_.size()) + "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>();
    conn->sock = std::make_unique<net::Connection>(loop_, fd, id);
    conn->sock->on_data = [this](net::Connection& s) { handle_data(s.id()); };
    conn->sock->on_eof = [this](net::Connection& s) { handle_eof(s.id()); };
    conn->sock->on_write_drained = [this](net::Connection& s) { handle_write_drained(s.id()); };
    conn->sock->on_io_error = [this](net::Connection& s, const std::string&) {
      handle_io_error(s.id());
    };
    conns_.emplace(id, std::move(conn));
  }
}

// ---- connection events ------------------------------------------------------

void BatchServer::handle_data(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (!c.in_ready && !c.parked && !c.close_after_flush && has_complete_message(c)) {
    sched_.push_ready(id);
    c.in_ready = true;
  }
  pump();
}

void BatchServer::handle_eof(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // Half-close: the peer is done sending but still wants its answers.
  // Decoding of already-buffered requests continues; maybe_close() hangs up
  // once everything decoded has been answered and flushed.
  maybe_close(*it->second);
}

void BatchServer::handle_write_drained(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (c.bp_paused && !c.close_after_flush) {
    c.bp_paused = false;
    c.sock->resume_reading();  // may re-enter handle_data(); pump() is guarded
  }
  maybe_close(c);
}

void BatchServer::handle_io_error(std::uint64_t id) { close_conn(id); }

// ---- decode / dispatch ------------------------------------------------------

bool BatchServer::has_complete_message(const Conn& c) const {
  const auto& ring = const_cast<Conn&>(c).sock->read_ring();
  if (ring.empty()) return false;
  switch (c.mode) {
    case Mode::kDetect:
      return true;  // one byte decides the dialect
    case Mode::kText:
      return ring.readable().find('\n') != std::string_view::npos ||
             (params_.max_line_bytes > 0 && ring.size() > params_.max_line_bytes);
    case Mode::kBinary: {
      net::FrameHeader header;
      std::string error;
      const net::DecodeStatus status =
          net::decode_header(ring.readable(), header, error, params_.max_payload_bytes);
      if (status == net::DecodeStatus::kMalformed) return true;  // "message" = the error
      if (status == net::DecodeStatus::kNeedMore) return false;
      return ring.size() >= net::kFrameHeaderBytes + header.payload_len;
    }
  }
  return false;
}

void BatchServer::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (const std::optional<std::uint64_t> id = sched_.pop_ready()) {
    const auto it = conns_.find(*id);
    if (it == conns_.end()) continue;
    it->second->in_ready = false;
    if (it->second->parked || it->second->close_after_flush) continue;
    process_one(*it->second);
    // Re-look-up: processing may have closed (and reaped) the connection.
    const auto again = conns_.find(*id);
    if (again == conns_.end()) continue;
    Conn& c = *again->second;
    if (!c.in_ready && !c.parked && !c.close_after_flush && has_complete_message(c)) {
      sched_.push_ready(*id);
      c.in_ready = true;
    } else {
      maybe_close(c);  // EOF + ring exhausted + nothing in flight => hang up
    }
  }
  pumping_ = false;
}

void BatchServer::process_one(Conn& c) {
  net::ByteRing& ring = c.sock->read_ring();
  if (c.mode == Mode::kDetect) {
    c.mode = static_cast<unsigned char>(ring.readable().front()) == net::kFrameMagic
                 ? Mode::kBinary
                 : Mode::kText;
  }

  if (c.mode == Mode::kText) {
    const std::string_view view = ring.readable();
    const std::size_t pos = view.find('\n');
    if (pos == std::string_view::npos) {
      if (params_.max_line_bytes > 0 && ring.size() > params_.max_line_bytes) {
        // Same contract as LineReader's std::length_error path: explain,
        // then drop — the stream position is unrecoverable.
        text_reply(c, "ERR request line exceeds " + std::to_string(params_.max_line_bytes) +
                          " bytes");
        c.close_after_flush = true;
        ring.clear();
        maybe_close(c);
      }
      return;
    }
    std::string line(view.substr(0, pos));
    ring.consume(pos + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) return;
    process_text_line(c, line);
    return;
  }

  net::FrameHeader header;
  std::string error;
  const net::DecodeStatus status =
      net::decode_header(ring.readable(), header, error, params_.max_payload_bytes);
  if (status == net::DecodeStatus::kMalformed) {
    frame_reply(c, net::Opcode::kError, 0, "malformed frame: " + error);
    c.close_after_flush = true;
    ring.clear();
    maybe_close(c);
    return;
  }
  if (status == net::DecodeStatus::kNeedMore ||
      ring.size() < net::kFrameHeaderBytes + header.payload_len) {
    return;
  }
  std::string payload(ring.readable().substr(net::kFrameHeaderBytes, header.payload_len));
  ring.consume(net::kFrameHeaderBytes + header.payload_len);
  process_binary_frame(c, header, std::move(payload));
}

void BatchServer::process_text_line(Conn& c, const std::string& line) {
  const RequestLine request = split_request_line(line);
  try {
    if (request.command == "PING") return text_reply(c, "OK pong");
    if (request.command == "QUIT") {
      c.close_after_flush = true;
      text_reply(c, "OK bye");
      return maybe_close(c);
    }
    if (request.command == "RELOAD") {
      // Inline on the reactor thread: a rare admin operation; requests
      // queued behind it wait out the (model-load-sized) pause.
      const ReloadReport report = registry_.reload();
      std::string response = "OK loaded=" + std::to_string(report.loaded) +
                             " unchanged=" + std::to_string(report.unchanged) +
                             " errors=" + std::to_string(report.errors.size());
      for (const std::string& e : report.errors) response += " [" + sanitize_message(e) + "]";
      return text_reply(c, std::move(response));
    }
    if (request.command == "STATS") return text_reply(c, "OK " + stats_reply());

    if (request.command == "FAMILY") {
      if (request.arg.empty()) return text_reply(c, "ERR usage: FAMILY <model>");
      const auto snapshot = registry_.try_get(request.arg);
      if (snapshot == nullptr) {
        return text_reply(c, "ERR unknown model '" + sanitize_message(request.arg) + "'");
      }
      return text_reply(c, std::string("OK ") + ml::to_string(snapshot->family()));
    }

    if (request.command == "PREDICT") {
      if (request.arg.empty() || request.payload.empty()) {
        return text_reply(c, "ERR usage: PREDICT <model> <escaped-aag>");
      }
      Pending p;
      p.model = request.arg;
      p.graph = aig::from_aiger_string(unescape_line(request.payload));
      return admit_or_park(c, std::move(p));
    }
    if (request.command == "FEATURES") {
      if (request.arg.empty() || request.payload.empty()) {
        return text_reply(c, "ERR usage: FEATURES <model> <f0> <f1> ...");
      }
      std::istringstream in(request.payload);
      std::vector<double> row;
      double v = 0.0;
      while (in >> v) row.push_back(v);
      if (!in.eof()) return text_reply(c, "ERR FEATURES: non-numeric feature value");
      Pending p;
      p.features = true;
      p.model = request.arg;
      p.row = std::move(row);
      return admit_or_park(c, std::move(p));
    }

    return text_reply(c, "ERR unknown command '" + sanitize_message(request.command) + "'");
  } catch (const std::exception& e) {
    return text_reply(c, "ERR " + sanitize_message(e.what()));
  }
}

void BatchServer::process_binary_frame(Conn& c, const net::FrameHeader& header,
                                       std::string payload) {
  const std::uint32_t rid = header.request_id;
  try {
    switch (header.opcode) {
      case net::Opcode::kPing:
        return frame_reply(c, net::Opcode::kText, rid, "pong");
      case net::Opcode::kQuit:
        c.close_after_flush = true;
        frame_reply(c, net::Opcode::kBye, rid, "");
        return maybe_close(c);
      case net::Opcode::kStats:
        return frame_reply(c, net::Opcode::kText, rid, stats_reply());
      case net::Opcode::kReload: {
        const ReloadReport report = registry_.reload();
        std::string response = "loaded=" + std::to_string(report.loaded) +
                               " unchanged=" + std::to_string(report.unchanged) +
                               " errors=" + std::to_string(report.errors.size());
        for (const std::string& e : report.errors) response += " [" + sanitize_message(e) + "]";
        return frame_reply(c, net::Opcode::kText, rid, response);
      }
      case net::Opcode::kPredict: {
        net::PredictPayload body;
        std::string error;
        if (!net::parse_predict_payload(payload, body, error)) {
          return frame_reply(c, net::Opcode::kError, rid, error);
        }
        Pending p;
        p.binary = true;
        p.rid = rid;
        p.model = std::move(body.model);
        p.graph = aig::from_aiger_string(body.aag);
        return admit_or_park(c, std::move(p));
      }
      case net::Opcode::kFeatures: {
        net::FeaturesPayload body;
        std::string error;
        if (!net::parse_features_payload(payload, body, error)) {
          return frame_reply(c, net::Opcode::kError, rid, error);
        }
        Pending p;
        p.features = true;
        p.binary = true;
        p.rid = rid;
        p.model = std::move(body.model);
        p.row = std::move(body.row);
        return admit_or_park(c, std::move(p));
      }
      default:
        // A response opcode sent as a request: well-framed, so the stream
        // stays in sync — answer and keep the connection.
        return frame_reply(c, net::Opcode::kError, rid, "opcode is not a request");
    }
  } catch (const std::exception& e) {
    return frame_reply(c, net::Opcode::kError, rid, sanitize_message(e.what()));
  }
}

void BatchServer::admit_or_park(Conn& c, Pending p) {
  if (c.inflight >= params_.max_inflight_per_conn) {
    // Per-connection cap: explicit shed, the client backs off and retries.
    sched_.count_conn_cap_shed();
    if (p.binary) {
      frame_reply(c, net::Opcode::kBusy, p.rid,
                  "inflight=" + std::to_string(c.inflight));
    } else {
      text_reply(c, "BUSY inflight=" + std::to_string(c.inflight));
    }
    return;
  }
  if (!p.binary) p.seq = reserve_seq(c);
  if (!sched_.acquire()) {
    // All slots busy: hold the decoded request and this connection's place
    // in line; decoding from this connection stalls until a slot frees.
    c.parked = true;
    c.parked_req = std::move(p);
    sched_.park(c.sock->id());
    return;
  }
  submit_admitted(c, std::move(p));
}

void BatchServer::submit_admitted(Conn& c, Pending p) {
  ++c.inflight;
  const std::uint64_t id = c.sock->id();
  auto router = router_;
  auto complete = [this, router, id, binary = p.binary, rid = p.rid,
                   seq = p.seq](double value, std::exception_ptr eptr) {
    // Drainer thread.  net.slot_stall delays *delivery*, after the service
    // already finished the work — the reactor and its other connections
    // keep flowing while this completion sits on the fault clock.
    fault::maybe_delay(fault::Site::kNetSlotStall);
    std::string error;
    const bool failed = eptr != nullptr;
    if (failed) {
      try {
        std::rethrow_exception(eptr);
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown error";
      }
    }
    (void)router->post([this, id, binary, rid, seq, value, failed, error = std::move(error)] {
      on_completion(id, binary, rid, seq, value, failed, error);
    });
  };
  if (p.features) {
    service_.submit_features_async(std::move(p.model), std::move(p.row), std::move(complete));
  } else {
    service_.submit_async(std::move(p.model), std::move(*p.graph), std::move(complete));
  }
}

void BatchServer::on_completion(std::uint64_t id, bool binary, std::uint32_t rid,
                                std::uint64_t seq, double value, bool failed,
                                const std::string& error) {
  sched_.release();
  unpark_one();  // the freed slot goes to the longest-parked connection first
  const auto it = conns_.find(id);
  if (it != conns_.end() && fault::fire(fault::Site::kServerKill)) {
    // Same chaos contract as the legacy server: vanish instead of replying.
    close_conn(id);
    pump();
    return;
  }
  if (it != conns_.end()) {
    Conn& c = *it->second;
    if (c.inflight > 0) --c.inflight;
    if (binary) {
      if (failed) {
        frame_reply(c, net::Opcode::kError, rid, sanitize_message(error));
      } else {
        frame_reply(c, net::Opcode::kValue, rid, net::make_value_payload(value));
      }
    } else {
      fill_ordered(c, seq,
                   failed ? "ERR " + sanitize_message(error) : "OK " + format_double(value));
    }
    maybe_close(c);
  }
  pump();  // an unparked connection may have more buffered requests
}

void BatchServer::unpark_one() {
  while (const std::optional<std::uint64_t> id = sched_.pop_parked()) {
    const auto it = conns_.find(*id);
    if (it == conns_.end()) continue;  // died while parked; try the next one
    Conn& c = *it->second;
    c.parked = false;
    if (c.parked_req.has_value()) {
      if (!sched_.acquire()) {
        c.parked = true;
        sched_.park_front(*id);
        return;
      }
      Pending p = std::move(*c.parked_req);
      c.parked_req.reset();
      submit_admitted(c, std::move(p));
    }
    if (!c.in_ready && !c.close_after_flush && has_complete_message(c)) {
      sched_.push_ready(*id);
      c.in_ready = true;
    }
    return;
  }
}

// ---- responses --------------------------------------------------------------

std::uint64_t BatchServer::reserve_seq(Conn& c) {
  c.ordered.emplace_back(std::nullopt);
  return c.next_seq++;
}

void BatchServer::fill_ordered(Conn& c, std::uint64_t seq, std::string line) {
  const std::uint64_t index = seq - c.base_seq;
  if (index >= c.ordered.size()) return;  // closed/reset connection
  c.ordered[index] = std::move(line);
  flush_ordered(c);
}

void BatchServer::flush_ordered(Conn& c) {
  std::string out;
  while (!c.ordered.empty() && c.ordered.front().has_value()) {
    out += *c.ordered.front();
    out += '\n';
    c.ordered.pop_front();
    ++c.base_seq;
  }
  if (!out.empty()) send_to(c, out);
}

void BatchServer::text_reply(Conn& c, std::string line) {
  const std::uint64_t seq = reserve_seq(c);
  fill_ordered(c, seq, std::move(line));
}

void BatchServer::frame_reply(Conn& c, net::Opcode op, std::uint32_t rid,
                              std::string_view payload) {
  std::string out;
  net::append_frame(out, op, rid, payload);
  send_to(c, out);
}

void BatchServer::send_to(Conn& c, std::string_view bytes) {
  if (c.sock->closed()) return;
  c.sock->queue_write(bytes);
  if (!c.sock->closed() && !c.bp_paused && !c.sock->read_paused() &&
      c.sock->write_pending() > params_.max_write_buffer) {
    // Socket-level backpressure: the peer is not reading its responses, so
    // stop reading its requests — TCP pushes back on the peer from here.
    c.bp_paused = true;
    c.sock->pause_reading();
  }
}

std::string BatchServer::stats_reply() {
  const net::SlotStats slots = sched_.stats();
  return render_stats_json(registry_, service_.stats(), &slots);
}

// ---- lifecycle --------------------------------------------------------------

void BatchServer::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second->sock->close();
  // Defer destruction: we may be inside one of this connection's callbacks.
  graveyard_.push_back(std::move(it->second));
  conns_.erase(it);
  if (graveyard_.size() == 1) {
    (void)router_->post([this] { graveyard_.clear(); });
  }
  maybe_finish_drain();
}

void BatchServer::maybe_close(Conn& c) {
  if (c.sock->closed()) return;
  const bool done_reading = c.close_after_flush || c.sock->eof_seen();
  if (!done_reading) return;
  if (!c.close_after_flush && has_complete_message(c)) return;  // still decodable input
  if (c.inflight > 0 || c.parked_req.has_value()) return;
  if (!c.ordered.empty() || c.sock->write_pending() > 0) return;
  close_conn(c.sock->id());
}

void BatchServer::maybe_finish_drain() {
  if (draining_ && conns_.empty()) loop_.stop();
}

}  // namespace aigml::serve
