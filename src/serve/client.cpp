#include "serve/client.hpp"

#include <stdexcept>
#include <string>

#include "aig/aiger.hpp"
#include "serve/protocol.hpp"

namespace aigml::serve {

Client::Client(const std::string& host, std::uint16_t port, ClientOptions options)
    : socket_(tcp_connect(host, port, options.connect_timeout_ms)), reader_(socket_) {
  socket_.set_read_timeout_ms(options.io_timeout_ms);
  socket_.set_write_timeout_ms(options.io_timeout_ms);
}

std::string Client::request(const std::string& line) {
  socket_.send_all(line + "\n");
  std::string response;
  if (!reader_.read_line(response)) {
    throw std::runtime_error("serve::Client: server closed the connection");
  }
  if (response.rfind("OK", 0) == 0) {
    return response.size() > 3 ? response.substr(3) : std::string();
  }
  if (response.rfind("BUSY", 0) == 0) {
    throw ServerBusy("server busy" +
                     (response.size() > 5 ? " (" + response.substr(5) + ")" : std::string()));
  }
  if (response.rfind("ERR ", 0) == 0) {
    throw std::runtime_error("server: " + response.substr(4));
  }
  throw std::runtime_error("serve::Client: malformed response '" + response + "'");
}

double Client::predict(const std::string& model, const aig::Aig& g) {
  const std::string payload =
      request("PREDICT " + model + " " + escape_line(aig::to_aiger_string(g)));
  return std::stod(payload);
}

double Client::predict_features(const std::string& model, std::span<const double> row) {
  std::string line = "FEATURES " + model;
  for (const double v : row) line += " " + format_double(v);
  return std::stod(request(line));
}

std::string Client::family(const std::string& model) { return request("FAMILY " + model); }

std::string Client::reload() { return request("RELOAD"); }

std::string Client::stats() { return request("STATS"); }

std::string Client::ping() { return request("PING"); }

void Client::quit() { (void)request("QUIT"); }

}  // namespace aigml::serve
