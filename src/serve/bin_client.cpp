#include "serve/bin_client.hpp"

#include <stdexcept>
#include <vector>

#include "aig/aiger.hpp"

namespace aigml::serve {

BinClient::BinClient(const std::string& host, std::uint16_t port, ClientOptions options)
    : socket_(tcp_connect(host, port, options.connect_timeout_ms)) {
  socket_.set_read_timeout_ms(options.io_timeout_ms);
  socket_.set_write_timeout_ms(options.io_timeout_ms);
}

std::string BinClient::read_exact(std::size_t n) {
  std::string out(n, '\0');
  std::size_t have = 0;
  while (have < n) {
    const std::size_t got = socket_.recv_some(out.data() + have, n - have);
    if (got == 0) {
      throw std::runtime_error("BinClient: server closed the connection mid-frame");
    }
    have += got;
  }
  return out;
}

std::pair<net::Opcode, std::string> BinClient::roundtrip(net::Opcode op,
                                                         std::string_view payload) {
  const std::uint32_t id = next_id_++;
  std::string frame;
  net::append_frame(frame, op, id, payload);
  socket_.send_all(frame);
  while (true) {
    const std::string header_bytes = read_exact(net::kFrameHeaderBytes);
    net::FrameHeader header;
    std::string error;
    const net::DecodeStatus status = net::decode_header(header_bytes, header, error, 0);
    if (status != net::DecodeStatus::kFrame) {
      throw std::runtime_error("BinClient: " +
                               (error.empty() ? std::string("short frame header") : error));
    }
    std::string body = read_exact(header.payload_len);
    // A lone client never pipelines, but be strict anyway: a response to an
    // id we did not just send means the stream is out of sync.
    if (header.request_id != id) {
      throw std::runtime_error("BinClient: response id " + std::to_string(header.request_id) +
                               " does not match request id " + std::to_string(id));
    }
    if (header.opcode == net::Opcode::kBusy) throw ServerBusy("BUSY " + body);
    if (header.opcode == net::Opcode::kError) throw std::runtime_error(body);
    return {header.opcode, std::move(body)};
  }
}

double BinClient::predict(const std::string& model, const aig::Aig& g) {
  const auto [op, body] =
      roundtrip(net::Opcode::kPredict, net::make_predict_payload(model, aig::to_aiger_string(g)));
  if (op != net::Opcode::kValue) throw std::runtime_error("BinClient: PREDICT expected VALUE");
  return net::parse_value_payload(body);
}

double BinClient::predict_features(const std::string& model, std::span<const double> row) {
  const std::vector<double> copy(row.begin(), row.end());
  const auto [op, body] =
      roundtrip(net::Opcode::kFeatures, net::make_features_payload(model, copy));
  if (op != net::Opcode::kValue) throw std::runtime_error("BinClient: FEATURES expected VALUE");
  return net::parse_value_payload(body);
}

std::string BinClient::reload() { return roundtrip(net::Opcode::kReload, "").second; }

std::string BinClient::stats() { return roundtrip(net::Opcode::kStats, "").second; }

std::string BinClient::ping() { return roundtrip(net::Opcode::kPing, "").second; }

void BinClient::quit() { (void)roundtrip(net::Opcode::kQuit, ""); }

}  // namespace aigml::serve
