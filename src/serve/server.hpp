#pragma once
// PredictServer — TCP front end over (ModelRegistry, PredictService).
//
// One accept thread, one handler thread per connection; every handler
// submits into the shared PredictService, so requests from independent
// clients coalesce into the same micro-batches.  The protocol grammar
// lives in serve/protocol.hpp (and DESIGN.md §6).
//
// stop() is thread-safe and idempotent: it closes the listener (waking the
// accept loop), shuts down live connections (waking their read loops), and
// joins every thread before returning.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "util/socket.hpp"

namespace aigml::serve {

struct ServerParams {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (query via port())
  /// Request-size bound (OOM guard): a connection whose line exceeds this is
  /// answered with ERR and dropped.  0 = unbounded.  1 MiB comfortably fits
  /// the largest PREDICT payloads the bench circuits produce.
  std::size_t max_line_bytes = 1 << 20;
  /// Mid-request read deadline (slow-loris guard): once the first byte of a
  /// request has arrived, the rest must follow within this budget.  An idle
  /// keepalive connection *between* requests is never timed out.  0 = none.
  int mid_line_timeout_ms = 10000;
  /// Overload shedding: beyond this many live connections, new ones are
  /// answered with an explicit "BUSY ..." line and closed (clients retry or
  /// degrade; a silent drop looks like a crash).  0 = unlimited.
  std::size_t max_connections = 64;
};

class PredictServer {
 public:
  PredictServer(ModelRegistry& registry, PredictService& service, ServerParams params = {});
  ~PredictServer();

  PredictServer(const PredictServer&) = delete;
  PredictServer& operator=(const PredictServer&) = delete;

  /// Binds and starts the accept loop; throws when the port is taken.
  void start();
  /// Port actually bound (after start()).
  [[nodiscard]] std::uint16_t port() const;
  /// Blocks until stop() is called from another thread (or forever).
  void wait();
  void stop();
  /// Graceful drain (SIGTERM semantics): stops accepting, half-closes every
  /// live connection's read side so handlers finish the requests already in
  /// their buffers and then see EOF, and joins everything.  Idempotent, and
  /// stop() after drain() is a no-op.
  void drain();

  /// Handles one already-parsed request line (the same dispatcher the
  /// socket path uses — exposed for protocol tests without a socket).
  [[nodiscard]] std::string handle_request(const std::string& line);

 private:
  void accept_loop();
  void handle_connection(std::shared_ptr<Socket> socket);

  ModelRegistry& registry_;
  PredictService& service_;
  ServerParams params_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;

  struct Connection {
    std::thread thread;
    std::shared_ptr<Socket> socket;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conn_mutex_;
  std::vector<Connection> connections_;
  bool stopping_ = false;
  std::mutex join_mutex_;  ///< serializes wait()/stop() joining the accept thread
};

}  // namespace aigml::serve
